// Scheduler-engine differential suite (ctest label `sched-fuzz`): the three
// sched plugins — DRR, H-FSC and Eiffel — checked against each other and
// against closed-form references.
//
//  * Jain-index fairness parity: an Eiffel vtime instance must allocate
//    weighted byte shares as fairly as DRR on identical adversarial
//    backlogs (the ISSUE acceptance bound: indices within 1%).
//  * Curve conformance: a shaped Eiffel deadline instance must release
//    packets at the times the H-FSC RuntimeSc machinery computes for the
//    same two-piece curve (the same random_curve distribution
//    test_hfsc_curves.cpp sweeps), to within one bucket of quantization.
//  * Seeded no-loss/no-reorder fuzz: random enqueue/dequeue interleavings
//    through every engine; every accepted packet comes out exactly once and
//    intra-flow order is preserved (packets carry a per-flow sequence number
//    in their arrival stamp).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "netbase/rng.hpp"
#include "sched/drr.hpp"
#include "sched/eiffel.hpp"
#include "sched/hfsc.hpp"
#include "tgen/workload.hpp"

namespace rp::sched {
namespace {

using netbase::Rng;
using netbase::SimTime;
using netbase::Status;

pkt::PacketPtr flow_pkt(std::uint16_t flow, std::size_t payload) {
  pkt::UdpSpec s;
  s.src = netbase::IpAddr(netbase::Ipv4Addr(
      10, 0, static_cast<std::uint8_t>(flow >> 8),
      static_cast<std::uint8_t>(flow)));
  s.dst = netbase::IpAddr(netbase::Ipv4Addr(20, 0, 0, 1));
  s.sport = flow;
  s.dport = 80;
  s.payload_len = payload;
  return pkt::build_udp(s);
}

std::string flow_filter(std::uint16_t flow) {
  return "<10.0." + std::to_string(flow >> 8) + "." +
         std::to_string(flow & 255) + ", *, udp, *, *, *>";
}

void set_weight(core::OutputScheduler& s, std::uint16_t flow,
                std::uint32_t w) {
  plugin::PluginMsg msg;
  msg.custom_name = "setweight";
  msg.args.set("filter", flow_filter(flow));
  msg.args.set("weight", std::to_string(w));
  plugin::PluginReply reply;
  ASSERT_EQ(s.handle_message(msg, reply), Status::ok);
}

double jain(const std::vector<double>& x) {
  double sum = 0, sumsq = 0;
  for (double v : x) {
    sum += v;
    sumsq += v * v;
  }
  if (sumsq == 0) return 0;
  return (sum * sum) / (static_cast<double>(x.size()) * sumsq);
}

// Same curve distribution test_hfsc_curves.cpp sweeps, quantized to the
// integer bps/us units the setcurve message carries so the reference
// RuntimeSc sees bit-identical parameters.
ServiceCurve random_message_curve(Rng& rng, std::int64_t* m1_bps,
                                  std::int64_t* d_us, std::int64_t* m2_bps) {
  const double m1 = 1e5 + rng.uniform01() * 1e8;  // bytes/sec
  const double m2 = 1e5 + rng.uniform01() * 1e8;
  const double d = rng.uniform01() * 50e6;  // ns
  *m1_bps = static_cast<std::int64_t>(m1 * 8.0);
  *d_us = static_cast<std::int64_t>(d / 1000.0);
  *m2_bps = static_cast<std::int64_t>(m2 * 8.0);
  return ServiceCurve{static_cast<double>(*m1_bps) / 8.0,
                      static_cast<double>(*d_us) * 1000.0,
                      static_cast<double>(*m2_bps) / 8.0};
}

// ---------------------------------------------------------------------------
// Jain-index fairness parity: Eiffel vtime vs DRR.

TEST(SchedFuzz, JainParityEiffelVsDrr) {
  for (std::uint64_t seed : {11u, 42u, 97u}) {
    Rng rng(seed);
    const int kFlows = 40;
    const int kPerFlow = 200;

    std::vector<std::uint32_t> weight(kFlows);
    for (auto& w : weight) w = 1 + static_cast<std::uint32_t>(rng.below(8));
    // One shared workload: (flow, payload) in arrival order.
    std::vector<std::pair<std::uint16_t, std::size_t>> arrivals;
    for (int i = 0; i < kPerFlow; ++i)
      for (std::uint16_t f = 0; f < kFlows; ++f)
        arrivals.emplace_back(f, 100 + rng.below(1300));
    // Adversarial: cluster arrivals so heavy flows burst together.
    for (std::size_t i = arrivals.size(); i > 1; --i)
      std::swap(arrivals[i - 1], arrivals[rng.below(i)]);

    std::vector<void*> soft_d(kFlows, nullptr), soft_e(kFlows, nullptr);
    DrrInstance::Config dc;
    dc.per_flow_limit = kPerFlow + 1;
    DrrInstance drr(dc);
    EiffelInstance::Config ec;  // rank=vtime
    ec.per_flow_limit = kPerFlow + 1;
    EiffelInstance eiffel(ec);
    for (std::uint16_t f = 0; f < kFlows; ++f) {
      set_weight(drr, f, weight[f]);
      set_weight(eiffel, f, weight[f]);
    }
    std::size_t total_bytes = 0;
    for (const auto& [f, payload] : arrivals) {
      auto a = flow_pkt(f, payload);
      auto b = flow_pkt(f, payload);
      total_bytes += a->size();
      ASSERT_TRUE(drr.enqueue(std::move(a), &soft_d[f], 0));
      ASSERT_TRUE(eiffel.enqueue(std::move(b), &soft_e[f], 0));
    }

    // Serve 40% of the backlog so every flow stays backlogged through the
    // whole measurement window (a weight-8 flow's fair share of the served
    // bytes is still below what it has queued).
    const std::size_t serve = arrivals.size() * 2 / 5;
    std::vector<double> share_d(kFlows, 0), share_e(kFlows, 0);
    for (std::size_t i = 0; i < serve; ++i) {
      auto pd = drr.dequeue(0);
      auto pe = eiffel.dequeue(0);
      ASSERT_NE(pd, nullptr);
      ASSERT_NE(pe, nullptr);
      share_d[pd->key.sport] += static_cast<double>(pd->size());
      share_e[pe->key.sport] += static_cast<double>(pe->size());
    }
    // Weight-normalized shares: perfectly fair service gives every flow the
    // same bytes-per-weight, i.e. a Jain index of 1.
    for (int f = 0; f < kFlows; ++f) {
      share_d[static_cast<std::size_t>(f)] /= weight[static_cast<std::size_t>(f)];
      share_e[static_cast<std::size_t>(f)] /= weight[static_cast<std::size_t>(f)];
    }
    const double jd = jain(share_d), je = jain(share_e);
    EXPECT_GT(jd, 0.95) << "seed " << seed;
    EXPECT_GT(je, 0.95) << "seed " << seed;
    EXPECT_NEAR(je, jd, 0.01) << "seed " << seed;

    std::string why;
    EXPECT_TRUE(eiffel.validate(&why)) << why;
    (void)total_bytes;
  }
}

// ---------------------------------------------------------------------------
// Curve conformance: shaped Eiffel deadline releases vs the H-FSC RuntimeSc.

TEST(SchedFuzz, CurveConformanceVsHfscRuntime) {
  // Same seed range as the CurveProperty sweeps in test_hfsc_curves.cpp.
  for (std::uint64_t seed = 1; seed <= 9; ++seed) {
    Rng rng(seed);
    std::int64_t m1_bps = 0, d_us = 0, m2_bps = 0;
    const ServiceCurve curve =
        random_message_curve(rng, &m1_bps, &d_us, &m2_bps);

    void* soft = nullptr;
    EiffelInstance::Config cfg;
    cfg.rank = EiffelInstance::RankFn::deadline;
    cfg.shaped = true;
    EiffelInstance e(cfg);
    const std::uint64_t gran = e.debug().gran;
    {
      plugin::PluginMsg msg;
      msg.custom_name = "setcurve";
      msg.args.set("filter", flow_filter(1));
      msg.args.set("m1_bps", std::to_string(m1_bps));
      msg.args.set("d_us", std::to_string(d_us));
      msg.args.set("m2_bps", std::to_string(m2_bps));
      plugin::PluginReply reply;
      ASSERT_EQ(e.handle_message(msg, reply), Status::ok);
    }

    const SimTime t0 = 1'000'000;
    const int kPkts = 40;
    for (int i = 0; i < kPkts; ++i)
      ASSERT_TRUE(e.enqueue(flow_pkt(1, 1172), &soft, t0));
    const auto pkt_size = static_cast<double>(flow_pkt(1, 1172)->size());

    // The reference deadline curve, anchored exactly as the engine anchors
    // it on first activation: the H-FSC rtsc machinery itself.
    RuntimeSc ref;
    ref.init(curve, static_cast<double>(t0), 0);

    SimTime now = t0;
    double cum = 0;
    for (int i = 0; i < kPkts; ++i) {
      pkt::PacketPtr p;
      int guard = 0;
      while (!(p = e.dequeue(now))) {
        const SimTime wake = e.next_wakeup(now);
        ASSERT_GT(wake, now) << "seed " << seed << " pkt " << i;
        now = wake;
        ASSERT_LT(++guard, 1000) << "seed " << seed << " pkt " << i;
      }
      cum += pkt_size;
      const double deadline = ref.y2x(cum);
      // The engine shapes at bucket granularity: a packet is released at
      // its deadline rounded down to the bucket edge, never after the exact
      // deadline and never more than one bucket early.
      EXPECT_LE(static_cast<double>(now), deadline + 1.0)
          << "seed " << seed << " pkt " << i;
      EXPECT_GE(static_cast<double>(now) + static_cast<double>(gran) + 1.0,
                deadline)
          << "seed " << seed << " pkt " << i;
    }
    EXPECT_TRUE(e.empty());
  }
}

// ---------------------------------------------------------------------------
// Seeded no-loss/no-reorder fuzz across every engine.

struct EngineUnderTest {
  std::string name;
  std::unique_ptr<core::OutputScheduler> sched;
};

std::vector<EngineUnderTest> make_engines() {
  std::vector<EngineUnderTest> out;
  {
    DrrInstance::Config c;
    c.per_flow_limit = 32;
    out.push_back({"drr", std::make_unique<DrrInstance>(c)});
  }
  {
    // H-FSC with the HSF extension: one leaf running per-flow DRR, so the
    // fuzz exercises the sub-queue machinery rather than a plain FIFO.
    HfscInstance::Config c;
    c.link_rate_bps = 1e9;
    c.leaf_limit = 4096;
    auto h = std::make_unique<HfscInstance>(c);
    const ServiceCurve rate{12.5e6, 0, 12.5e6};  // 100 Mbit/s
    EXPECT_EQ(h->add_class("bulk", "root", rate, rate, {},
                           HfscInstance::LeafQdisc::drr, 1500),
              Status::ok);
    auto all = aiu::Filter::parse("<*, *, udp, *, *, *>");
    EXPECT_TRUE(all.has_value());
    EXPECT_EQ(h->bind_class(*all, "bulk"), Status::ok);
    out.push_back({"hfsc", std::move(h)});
  }
  for (auto rank : {EiffelInstance::RankFn::prio, EiffelInstance::RankFn::vtime,
                    EiffelInstance::RankFn::deadline}) {
    EiffelInstance::Config c;
    c.rank = rank;
    c.per_flow_limit = 32;
    const char* n = rank == EiffelInstance::RankFn::prio     ? "eiffel-prio"
                    : rank == EiffelInstance::RankFn::vtime ? "eiffel-vtime"
                                                            : "eiffel-deadline";
    out.push_back({n, std::make_unique<EiffelInstance>(c)});
  }
  return out;
}

TEST(SchedFuzz, NoLossNoReorderAllEngines) {
  for (std::uint64_t seed : {7u, 21u}) {
    // Slots outlive the engines (their destructors clear them).
    const std::uint16_t kFlows = 48;
    std::vector<std::vector<void*>> soft;
    auto engines = make_engines();
    soft.assign(engines.size(), std::vector<void*>(kFlows, nullptr));

    for (std::size_t ei = 0; ei < engines.size(); ++ei) {
      auto& eng = *engines[ei].sched;
      Rng rng(seed);
      std::vector<SimTime> seq(kFlows, 0);     // per-flow sequence stamp
      std::vector<SimTime> last(kFlows, 0);    // last stamp dequeued
      std::vector<std::uint64_t> enq_ok(kFlows, 0), served(kFlows, 0);
      SimTime now = 1000;

      for (int op = 0; op < 30'000; ++op) {
        now += 1 + static_cast<SimTime>(rng.below(2000));
        if (rng.below(100) < 60) {
          const auto f = static_cast<std::uint16_t>(rng.below(kFlows));
          auto p = flow_pkt(f, 50 + rng.below(1200));
          p->arrival = ++seq[f];  // per-flow sequence, not a timestamp
          if (eng.enqueue(std::move(p), &soft[ei][f], now)) ++enq_ok[f];
        } else if (auto p = eng.dequeue(now)) {
          const std::uint16_t f = p->key.sport;
          ASSERT_LT(f, kFlows) << engines[ei].name;
          EXPECT_GT(p->arrival, last[f])
              << engines[ei].name << " reordered flow " << f << " seed "
              << seed;
          last[f] = p->arrival;
          ++served[f];
        }
      }
      // Drain: every accepted packet must come out exactly once, in order.
      while (auto p = eng.dequeue(std::numeric_limits<SimTime>::max() / 2)) {
        const std::uint16_t f = p->key.sport;
        EXPECT_GT(p->arrival, last[f]) << engines[ei].name;
        last[f] = p->arrival;
        ++served[f];
      }
      EXPECT_EQ(eng.backlog_packets(), 0u) << engines[ei].name;
      for (std::uint16_t f = 0; f < kFlows; ++f)
        EXPECT_EQ(served[f], enq_ok[f])
            << engines[ei].name << " flow " << f << " seed " << seed;
      if (auto* eif = dynamic_cast<EiffelInstance*>(&eng)) {
        std::string why;
        EXPECT_TRUE(eif->validate(&why)) << engines[ei].name << ": " << why;
      }
    }
  }
}

}  // namespace
}  // namespace rp::sched

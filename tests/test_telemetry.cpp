// Tests for the telemetry subsystem: histogram bucket math, sampling
// cadence, the trace ring, flow-export sinks and the metric registry (unit),
// plus end-to-end round trips through RouterKernel + pmgr `telemetry`
// commands (TelemetryE2e, labelled integration).
#include <gtest/gtest.h>

#include <atomic>

#include <cstdio>

#include "core/router.hpp"
#include "mgmt/pmgr.hpp"
#include "mgmt/register_all.hpp"
#include "mgmt/rplib.hpp"
#include "pkt/builder.hpp"
#include "telemetry/telemetry.hpp"

namespace rp {
namespace {

using netbase::Status;

// ---------------------------------------------------------------- histogram

TEST(LatencyHistogram, BucketMathIsLog2) {
  using H = telemetry::LatencyHistogram;
  EXPECT_EQ(H::bucket_of(0), 0u);
  EXPECT_EQ(H::bucket_of(1), 1u);
  EXPECT_EQ(H::bucket_of(2), 2u);
  EXPECT_EQ(H::bucket_of(3), 2u);
  EXPECT_EQ(H::bucket_of(4), 3u);
  EXPECT_EQ(H::bucket_of(1023), 10u);
  EXPECT_EQ(H::bucket_of(1024), 11u);
  // Saturates in the last bucket rather than indexing out of range.
  EXPECT_EQ(H::bucket_of(~0ULL), H::kBuckets - 1);
  // bucket_floor is the inverse boundary: value v lands in a bucket whose
  // floor is <= v.
  for (std::uint64_t v : {1ULL, 2ULL, 7ULL, 100ULL, 65536ULL}) {
    const std::size_t b = H::bucket_of(v);
    EXPECT_LE(H::bucket_floor(b), v);
    if (b + 1 < H::kBuckets) {
      EXPECT_GT(H::bucket_floor(b + 1), v);
    }
  }
}

TEST(LatencyHistogram, RecordMeanQuantileReset) {
  telemetry::LatencyHistogram h;
  for (int i = 0; i < 90; ++i) h.record(10);
  for (int i = 0; i < 10; ++i) h.record(1000);
  EXPECT_EQ(h.samples, 100u);
  EXPECT_EQ(h.max, 1000u);
  EXPECT_DOUBLE_EQ(h.mean(), (90.0 * 10 + 10.0 * 1000) / 100);
  // p50 falls in the [8,16) bucket, p99 in the bucket holding 1000.
  EXPECT_LT(h.quantile(0.50), 16u);
  EXPECT_GE(h.quantile(0.99), 1000u);
  EXPECT_NE(h.to_string().find("samples=100"), std::string::npos);

  h.reset();
  EXPECT_EQ(h.samples, 0u);
  EXPECT_EQ(h.max, 0u);
  EXPECT_EQ(h.quantile(0.99), 0u);
}

// ----------------------------------------------------------------- sampling

TEST(TelemetrySampling, FirstPacketThenEveryNth) {
  telemetry::Telemetry::Options opt;
  opt.sample_every = 4;
  telemetry::Telemetry tel(opt);
  // The first packet after enabling is sampled, then every 4th.
  std::vector<int> sampled;
  for (int i = 0; i < 12; ++i)
    if (tel.sample_tick()) sampled.push_back(i);
  EXPECT_EQ(sampled, (std::vector<int>{0, 4, 8}));
}

TEST(TelemetrySampling, OffMeansNever) {
  telemetry::Telemetry::Options opt;
  opt.sample_every = 0;
  telemetry::Telemetry tel(opt);
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(tel.sample_tick());
  // Turning it on mid-stream samples the very next packet.
  tel.set_sample_every(2);
  EXPECT_TRUE(tel.sample_tick());
  EXPECT_FALSE(tel.sample_tick());
  EXPECT_TRUE(tel.sample_tick());
  // And off again stops immediately.
  tel.set_sample_every(0);
  for (int i = 0; i < 10; ++i) EXPECT_FALSE(tel.sample_tick());
}

// --------------------------------------------------------------- trace ring

TEST(TraceRing, WrapKeepsMostRecent) {
  telemetry::TraceRing ring(4);
  EXPECT_EQ(ring.capacity(), 4u);
  for (std::uint64_t i = 0; i < 6; ++i) {
    telemetry::TraceRecord* r = ring.begin_record();
    ASSERT_NE(r, nullptr);
    EXPECT_EQ(r->seq, i);
    r->total_cycles = 100 + i;
  }
  EXPECT_EQ(ring.captured(), 6u);
  EXPECT_EQ(ring.stored(), 4u);
  // recent(0) is the newest; the two oldest were overwritten.
  EXPECT_EQ(ring.recent(0).seq, 5u);
  EXPECT_EQ(ring.recent(3).seq, 2u);
  // begin_record wipes the slot it reuses.
  EXPECT_EQ(ring.recent(0).n_steps, 0u);

  ring.reset();
  EXPECT_EQ(ring.captured(), 0u);
  EXPECT_EQ(ring.stored(), 0u);
}

TEST(TraceRing, StepsClipAtMax) {
  telemetry::TraceRecord r;
  for (std::size_t i = 0; i < telemetry::TraceRecord::kMaxSteps + 3; ++i)
    r.add_step(plugin::PluginType::ipsec, 0, i);
  EXPECT_EQ(r.n_steps, telemetry::TraceRecord::kMaxSteps);
  // Cycle counts clip to 32 bits instead of wrapping.
  telemetry::TraceRecord big;
  big.add_step(plugin::PluginType::stats, 0, ~0ULL);
  EXPECT_EQ(big.steps[0].cycles, 0xffffffffU);
}

// -------------------------------------------------------------------- sinks

telemetry::FlowExportRecord record(std::uint16_t sport, std::uint64_t pkts) {
  telemetry::FlowExportRecord r;
  r.key.sport = sport;
  r.packets = pkts;
  r.bytes = pkts * 100;
  r.first_seen = 10;
  r.last_seen = 20;
  r.reason = telemetry::ExportReason::expired;
  return r;
}

TEST(FlowSinks, MemorySinkOverwritesOldest) {
  telemetry::MemorySink sink(2);
  sink.write(record(1, 1));
  sink.write(record(2, 2));
  sink.write(record(3, 3));
  EXPECT_EQ(sink.written(), 3u);
  EXPECT_EQ(sink.stored(), 2u);
  EXPECT_EQ(sink.recent(0).key.sport, 3u);
  EXPECT_EQ(sink.recent(1).key.sport, 2u);
  EXPECT_NE(sink.describe().find("written=3"), std::string::npos);
}

TEST(FlowSinks, JsonlFileSinkWritesOneObjectPerLine) {
  const std::string path =
      ::testing::TempDir() + "rp_telemetry_flows_test.jsonl";
  std::remove(path.c_str());
  {
    telemetry::JsonlFileSink sink(path);
    ASSERT_TRUE(sink.ok());
    sink.write(record(42, 7));
    sink.write(record(43, 8));
    sink.flush();
    EXPECT_EQ(sink.written(), 2u);
  }
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char buf[512];
  ASSERT_NE(std::fgets(buf, sizeof buf, f), nullptr);
  const std::string line(buf);
  EXPECT_NE(line.find("\"packets\":7"), std::string::npos);
  EXPECT_NE(line.find("\"reason\":\"expired\""), std::string::npos);
  ASSERT_NE(std::fgets(buf, sizeof buf, f), nullptr);  // second record
  std::fclose(f);
  std::remove(path.c_str());
}

TEST(FlowSinks, JsonlFileSinkIsInertOnBadPath) {
  telemetry::JsonlFileSink sink("/nonexistent-dir/x/y/flows.jsonl");
  EXPECT_FALSE(sink.ok());
  sink.write(record(1, 1));  // must not crash
  EXPECT_EQ(sink.written(), 0u);
  EXPECT_NE(sink.describe().find("UNWRITABLE"), std::string::npos);
}

// ---------------------------------------------------------- metric registry

TEST(MetricRegistry, AddReportRemoveOwner) {
  telemetry::MetricRegistry reg;
  std::atomic<std::uint64_t> a{5}, b{7};
  int owner1, owner2;
  reg.add("x.a", &a, &owner1);
  reg.add("x.b", &b, &owner2);
  EXPECT_EQ(reg.size(), 2u);
  a = 6;  // live pointer: report sees the current value
  const std::string rep = reg.report();
  EXPECT_NE(rep.find("x.a=6"), std::string::npos);
  EXPECT_NE(rep.find("x.b=7"), std::string::npos);
  reg.remove_owner(&owner1);
  EXPECT_EQ(reg.size(), 1u);
  EXPECT_EQ(reg.report().find("x.a"), std::string::npos);
}

// -------------------------------------------------- end-to-end (integration)

pkt::PacketPtr flow_udp(std::uint16_t sport, std::uint8_t src_octet = 1,
                        std::size_t payload = 100) {
  pkt::UdpSpec s;
  s.src = netbase::IpAddr(netbase::Ipv4Addr(10, 0, 0, src_octet));
  s.dst = netbase::IpAddr(netbase::Ipv4Addr(20, 0, 0, 1));
  s.sport = sport;
  s.dport = 80;
  s.payload_len = payload;
  return pkt::build_udp(s);
}

class TelemetryE2e : public ::testing::Test {
 protected:
  TelemetryE2e() : lib_(kernel_), pmgr_(lib_) {
    mgmt::register_builtin_modules();
    kernel_.add_interface("if0");
    kernel_.add_interface("if1");
    auto r = pmgr_.run_script(R"(
route add 20.0.0.0/8 if1
telemetry sample 1
)");
    EXPECT_TRUE(r.ok()) << r.text;
  }

  // Injects `n` packets of one flow starting at virtual time `at`.
  void offer(std::uint16_t sport, int n, netbase::SimTime at = 0) {
    for (int i = 0; i < n; ++i)
      kernel_.inject(at + i * netbase::kNsPerMs, 0, flow_udp(sport));
  }

  core::RouterKernel kernel_;
  mgmt::RouterPluginLib lib_;
  mgmt::PluginManager pmgr_;
};

#if RP_TELEMETRY

TEST_F(TelemetryE2e, HistogramTraceSummaryRoundTrip) {
  offer(1111, 20);
  kernel_.run_until(100 * netbase::kNsPerMs);

  // Summary reflects the sampled packets and the core counters.
  auto sum = pmgr_.exec("telemetry");
  ASSERT_TRUE(sum.ok());
  EXPECT_NE(sum.text.find("sampling: 1-in-1"), std::string::npos);
  EXPECT_NE(sum.text.find("received=20"), std::string::npos);

  // Pipeline histogram saw every packet (sampling 1-in-1).
  auto hist = pmgr_.exec("telemetry hist");
  ASSERT_TRUE(hist.ok());
  EXPECT_NE(hist.text.find("samples=20"), std::string::npos);

  // Traces carry the flow key and the queued disposition with the output
  // interface the route lookup chose.
  auto tr = pmgr_.exec("telemetry trace 3");
  ASSERT_TRUE(tr.ok());
  EXPECT_NE(tr.text.find(flow_udp(1111)->key.to_string()), std::string::npos);
  EXPECT_NE(tr.text.find("queued"), std::string::npos);
  EXPECT_NE(tr.text.find("->if1"), std::string::npos);

  // Unknown gate name is rejected, valid one accepted.
  EXPECT_FALSE(pmgr_.exec("telemetry hist bogus").ok());
  EXPECT_TRUE(pmgr_.exec("telemetry hist ipsec").ok());
}

TEST_F(TelemetryE2e, GateHistogramAndVerdictInTraces) {
  auto r = pmgr_.run_script(R"(
modload firewall
create firewall policy=deny
bind firewall 1 <10.0.0.66, *, udp, *, *, *>
)");
  ASSERT_TRUE(r.ok()) << r.text;
  offer(2222, 5);            // forwarded flow
  for (int i = 0; i < 5; ++i)  // denied flow
    kernel_.inject(i * netbase::kNsPerMs, 0, flow_udp(3333, 66));
  kernel_.run_until(100 * netbase::kNsPerMs);

  // The firewall gate ran (and was timed) for the denied packets only.
  auto hist = pmgr_.exec("telemetry hist firewall");
  ASSERT_TRUE(hist.ok());
  EXPECT_NE(hist.text.find("samples=5"), std::string::npos);

  // Drop reason is spelled out by name both in traces and the summary.
  auto tr = pmgr_.exec("telemetry trace 20");
  ASSERT_TRUE(tr.ok());
  EXPECT_NE(tr.text.find("dropped(policy)"), std::string::npos);
  EXPECT_NE(tr.text.find("firewall: drop"), std::string::npos);
  auto sum = pmgr_.exec("telemetry");
  EXPECT_NE(sum.text.find("policy=5"), std::string::npos);
}

TEST_F(TelemetryE2e, SamplingRateChangesCadence) {
  ASSERT_TRUE(pmgr_.exec("telemetry sample 4").ok());
  offer(4444, 16);
  kernel_.run_until(100 * netbase::kNsPerMs);
  // 1-in-4 with the first packet sampled: packets 0,4,8,12 -> 4 samples.
  EXPECT_EQ(kernel_.telemetry().samples(), 4u);

  ASSERT_TRUE(pmgr_.exec("telemetry sample off").ok());
  offer(4444, 16, 200 * netbase::kNsPerMs);
  kernel_.run_until(400 * netbase::kNsPerMs);
  EXPECT_EQ(kernel_.telemetry().samples(), 4u);  // unchanged
}

#endif  // RP_TELEMETRY

TEST_F(TelemetryE2e, FlowExportOnDemandAndOnExpiry) {
  offer(5555, 4);
  offer(6666, 2);
  kernel_.run_until(100 * netbase::kNsPerMs);  // flows still cached

  // On-demand snapshot of the two live flows.
  auto ex = pmgr_.exec("telemetry export");
  ASSERT_TRUE(ex.ok());
  EXPECT_NE(ex.text.find("exported 2 live flows"), std::string::npos);
  auto& mem = static_cast<telemetry::MemorySink&>(kernel_.telemetry().sink());
  ASSERT_GE(mem.stored(), 2u);
  EXPECT_EQ(mem.recent(0).reason, telemetry::ExportReason::on_demand);
  // Byte accounting from the AIU: 4 packets * (100 payload + 28 hdr).
  bool found = false;
  for (std::size_t i = 0; i < mem.stored(); ++i) {
    const auto& r = mem.recent(i);
    if (r.key.sport == 5555) {
      found = true;
      EXPECT_EQ(r.packets, 4u);
      EXPECT_EQ(r.bytes, 4u * flow_udp(5555)->size());
    }
  }
  EXPECT_TRUE(found);

  // Let the idle sweep evict: the same flows come back as reason=expired.
  kernel_.run_to_completion();
  EXPECT_EQ(kernel_.aiu().flow_table().active(), 0u);
  EXPECT_GE(kernel_.telemetry().flows_exported(), 4u);
  EXPECT_EQ(mem.recent(0).reason, telemetry::ExportReason::expired);
}

TEST_F(TelemetryE2e, JsonlSinkViaCli) {
  const std::string path = ::testing::TempDir() + "rp_telemetry_e2e.jsonl";
  std::remove(path.c_str());
  ASSERT_FALSE(pmgr_.exec("telemetry sink jsonl /no/such/dir/f.jsonl").ok());
  ASSERT_TRUE(pmgr_.exec("telemetry sink jsonl " + path).ok());

  offer(7777, 3);
  kernel_.run_until(50 * netbase::kNsPerMs);
  ASSERT_TRUE(pmgr_.exec("telemetry export").ok());

  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char buf[512];
  ASSERT_NE(std::fgets(buf, sizeof buf, f), nullptr);
  EXPECT_NE(std::string(buf).find("\"reason\":\"on-demand\""),
            std::string::npos);
  std::fclose(f);
  std::remove(path.c_str());

  // Back to the memory sink for the rest of the kernel's lifetime (the
  // teardown sweep writes records; they must not land in the closed file).
  ASSERT_TRUE(pmgr_.exec("telemetry sink mem").ok());
}

TEST_F(TelemetryE2e, MetricsCommandSeesPluginCounters) {
  auto r = pmgr_.run_script(R"(
modload stats
create stats mode=bytes
bind stats 1 <*, *, *, *, *, *>
)");
  ASSERT_TRUE(r.ok()) << r.text;
  offer(8888, 6);
  kernel_.run_until(50 * netbase::kNsPerMs);

  auto m = pmgr_.exec("telemetry metrics");
  ASSERT_TRUE(m.ok());
  EXPECT_NE(m.text.find("total_packets=6"), std::string::npos);
  EXPECT_NE(m.text.find("total_bytes="), std::string::npos);
}

TEST_F(TelemetryE2e, ResetClearsHistogramsTracesAndCoreCounters) {
  offer(9999, 10);
  kernel_.run_until(50 * netbase::kNsPerMs);
  ASSERT_TRUE(pmgr_.exec("telemetry reset").ok());
  EXPECT_EQ(kernel_.telemetry().samples(), 0u);
  EXPECT_EQ(kernel_.telemetry().traces().captured(), 0u);
  EXPECT_EQ(kernel_.core().counters().received, 0u);
  EXPECT_EQ(kernel_.core().counters().bursts, 0u);
#if RP_TELEMETRY
  // Sampling stays configured: the next packet is traced again.
  offer(9999, 1, 100 * netbase::kNsPerMs);
  kernel_.run_until(200 * netbase::kNsPerMs);
  EXPECT_EQ(kernel_.telemetry().samples(), 1u);
#endif
}

}  // namespace
}  // namespace rp

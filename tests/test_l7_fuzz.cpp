// Adversarial differential fuzz for the stateful L7 inspection subsystem.
//
// The evasion mutator (tgen::tcp_stream_evasion) applies segment-level
// rewrites — bounded reordering, tiny-segment splitting, exact-duplicate
// retransmits, garbage overlap copies, and misaligned spanning rewrites
// (an in-order copy spanning a buffered piece with different boundaries) —
// constrained so a first-wins reassembler provably reconstructs the
// original stream. These tests hold
// the subsystem to that proof against a trivial oracle that never sees
// segments at all:
//
//   * L7Fuzz.ReassemblerReconstructsEvadedStreams feeds the mutated segment
//     list straight into a StreamReassembler per direction and demands the
//     delivered byte stream equal the original payload byte for byte.
//   * L7Fuzz.IdsHitsMatchFullStreamOracle plays the mutated conversation
//     through a real IpCore + AIU + l7ids gate and compares the engine's
//     full hit log against an Aho-Corasick scan of the original payloads.
//   * L7FuzzShard.* replays multi-connection evaded traffic through a
//     ShardedDatapath with N ∈ {1, 2, 4} workers. The two directions of one
//     connection hash to independent shards, so direction indices are
//     shard-local; per-direction-distinct pattern strings make the
//     aggregated (pattern, end-offset) multiset direction-unambiguous.
//
// Suite names matter: ctest's l7-fuzz label runs L7Fuzz.* (also under
// ASan), and l7-fuzz-parallel-tsan runs L7FuzzShard.* under TSan against
// real worker threads.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "aiu/flow_table.hpp"
#include "core/ip_core.hpp"
#include "l7/aho_corasick.hpp"
#include "l7/l7_plugins.hpp"
#include "l7/reassembler.hpp"
#include "parallel/sharded_datapath.hpp"
#include "pkt/headers.hpp"
#include "tgen/tcp_stream.hpp"

namespace rp::l7 {
namespace {

using netbase::Status;
using plugin::PluginType;

constexpr std::uint8_t kTcp = static_cast<std::uint8_t>(pkt::IpProto::tcp);
constexpr std::uint8_t kSyn = 0x02;

// xorshift-style mixer so offsets/sizes derive deterministically from seeds.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e9b5ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

tgen::EvasionSpec evasion_for(std::uint64_t seed) {
  tgen::EvasionSpec ev;
  ev.seed = seed;
  ev.reorder_window = 1 + seed % 7;
  ev.tiny_split_prob = 0.15 + 0.05 * static_cast<double>(seed % 5);
  ev.dup_prob = 0.10 + 0.05 * static_cast<double>(seed % 3);
  ev.overlap_rewrite_prob = 0.15 + 0.05 * static_cast<double>(seed % 4);
  ev.span_rewrite_prob = 0.15 + 0.05 * static_cast<double>(seed % 6);
  return ev;
}

// Plants each pattern `copies` times at deterministic pseudo-random offsets.
// Overlapping plants are fine — the oracle scans the bytes that actually
// ended up in the stream, not the plant list.
std::vector<std::uint8_t> planted_stream(
    std::size_t bytes, std::uint64_t seed,
    const std::vector<std::string>& patterns, std::size_t copies) {
  std::vector<std::pair<std::size_t, std::string>> plants;
  std::uint64_t s = seed * 1315423911ull + 7;
  for (const std::string& pat : patterns)
    for (std::size_t i = 0; i < copies; ++i) {
      s = mix(s);
      if (bytes > pat.size())
        plants.emplace_back(s % (bytes - pat.size()), pat);
    }
  return tgen::plant(bytes, seed, plants);
}

tgen::TcpStreamSpec fuzz_spec(std::uint16_t sport, std::uint64_t seed,
                              const std::vector<std::string>& fwd_pats,
                              const std::vector<std::string>& rev_pats) {
  tgen::TcpStreamSpec sp;
  sp.ep.src = *netbase::IpAddr::parse("10.0.0.1");
  sp.ep.dst = *netbase::IpAddr::parse("20.0.0.1");
  sp.ep.proto = kTcp;
  sp.ep.sport = sport;
  sp.ep.dport = 80;
  sp.ep.in_iface = 0;
  sp.mss = 256 + mix(seed) % 512;
  sp.client_isn = static_cast<std::uint32_t>(mix(seed + 1));
  sp.server_isn = static_cast<std::uint32_t>(mix(seed + 2));
  sp.payload = planted_stream(2048 + mix(seed + 3) % 6144, seed + 4, fwd_pats,
                              /*copies=*/3);
  sp.reverse_payload = planted_stream(1024 + mix(seed + 5) % 4096, seed + 6,
                                      rev_pats, /*copies=*/3);
  return sp;
}

// ---------------------------------------------------------------------------
// Oracle 1: the reassembled stream equals the original payload. The mutated
// segment list is parsed back out of the wire-format packets and fed to a
// bare StreamReassembler per direction — no engine, no flow table.

struct ByteSink {
  std::vector<std::uint8_t> bytes;
  auto fn() {
    return [this](const std::uint8_t* d, std::size_t n, std::uint64_t off) {
      ASSERT_EQ(off, bytes.size()) << "non-contiguous delivery";
      for (std::size_t i = 0; i < n; ++i) bytes.push_back(d[i]);
    };
  }
};

TEST(L7Fuzz, ReassemblerReconstructsEvadedStreams) {
  for (std::uint64_t seed = 1; seed <= 48; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    tgen::TcpStreamSpec sp = fuzz_spec(5000, seed, {}, {});
    sp.fin = seed % 2 == 0;
    auto arrivals = tgen::tcp_stream_evasion(sp, evasion_for(seed));

    StreamReassembler rs[2] = {StreamReassembler(1 << 20),
                               StreamReassembler(1 << 20)};
    ByteSink sinks[2];
    for (const auto& a : arrivals) {
      const pkt::Packet& p = *a.p;
      pkt::TcpHeader th;
      ASSERT_TRUE(th.parse({p.data() + p.l4_offset, p.size() - p.l4_offset}));
      const unsigned dir = th.sport == sp.ep.sport ? 0 : 1;
      if (th.flags & kSyn) {
        rs[dir].on_syn(th.seq);
        continue;
      }
      const std::size_t hdr = th.header_len();
      const std::uint8_t* payload = p.data() + p.l4_offset + hdr;
      const std::size_t len = p.size() - p.l4_offset - hdr;
      EXPECT_TRUE(rs[dir].segment(th.seq, payload, len, sinks[dir].fn()));
    }
    EXPECT_EQ(sinks[0].bytes, sp.payload);
    EXPECT_EQ(sinks[1].bytes, sp.reverse_payload);
    EXPECT_FALSE(rs[0].stats().overflowed);
    EXPECT_FALSE(rs[1].stats().overflowed);
  }
}

// ---------------------------------------------------------------------------
// Oracle 2: the l7ids gate behind a real IpCore finds exactly the matches an
// Aho-Corasick scan of the original (never-segmented) payloads finds.

const std::vector<std::string>& fwd_patterns() {
  static const std::vector<std::string> v{"EVILCORP", std::string("\x90\x90\x90\x90", 4),
                                          "needle"};
  return v;
}
const std::vector<std::string>& rev_patterns() {
  static const std::vector<std::string> v{"SERVEREVIL", "HONEYTOKEN"};
  return v;
}
std::vector<std::string> all_patterns() {
  std::vector<std::string> v = fwd_patterns();
  v.insert(v.end(), rev_patterns().begin(), rev_patterns().end());
  return v;
}

AhoCorasick build_matcher(const std::vector<std::string>& pats) {
  AhoCorasick ac;
  for (const std::string& p : pats) ac.add(p);
  ac.build();
  return ac;
}

// Hits a full-stream scan predicts for one direction's payload.
std::vector<MatchHit> oracle_hits(const AhoCorasick& ac,
                                  const std::vector<std::uint8_t>& payload,
                                  std::uint8_t dir) {
  std::vector<MatchHit> hits;
  ac.scan(AhoCorasick::kRoot, payload.data(), payload.size(), 0,
          [&](std::uint32_t id, std::uint64_t end) {
            hits.push_back({id, dir, end});
          });
  return hits;
}

bool hit_less(const MatchHit& a, const MatchHit& b) {
  return std::tuple(a.dir, a.end, a.pattern) <
         std::tuple(b.dir, b.end, b.pattern);
}

// Minimal manual stack: PCU + AIU + IpCore with the l7ids gate bound to all
// TCP, mirroring RouterKernel wiring without the event loop.
struct FuzzL7Stack {
  netbase::SimClock clock;
  plugin::PluginControlUnit pcu;
  std::unique_ptr<aiu::Aiu> aiu;
  route::RoutingTable routes{"bsl"};
  netdev::InterfaceTable ifs;
  std::unique_ptr<core::IpCore> core;
  IdsInstance* ids{nullptr};

  explicit FuzzL7Stack(plugin::Config cfg) {
    aiu = std::make_unique<aiu::Aiu>(pcu, clock);
    ifs.add("if0");
    ifs.add("if1");
    routes.add(*netbase::IpPrefix::parse("0.0.0.0/0"), {1, {}});
    core = std::make_unique<core::IpCore>(*aiu, routes, ifs, clock,
                                          core::CoreConfig{});
    pcu.register_plugin(std::make_unique<IdsPlugin>());
    plugin::InstanceId id = plugin::kNoInstance;
    EXPECT_EQ(pcu.find("l7ids")->create_instance(std::move(cfg), id),
              Status::ok);
    ids = static_cast<IdsInstance*>(pcu.find("l7ids")->instance(id));
    EXPECT_EQ(aiu->create_filter(PluginType::l7,
                                 *aiu::Filter::parse("<*, *, tcp, *, *, *>"),
                                 ids),
              Status::ok);
  }
};

std::string pattern_spec(const std::vector<std::string>& pats) {
  std::string spec;
  for (const std::string& p : pats) {
    if (!spec.empty()) spec += ',';
    spec += format_pattern(p);  // format escapes \xNN; parse undoes it
  }
  return spec;
}

TEST(L7Fuzz, IdsHitsMatchFullStreamOracle) {
  const AhoCorasick oracle = build_matcher(all_patterns());
  for (std::uint64_t seed = 1; seed <= 24; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    FuzzL7Stack s({{"patterns", pattern_spec(all_patterns())},
                   {"alert_on_match", "0"},
                   {"log_hits", "1"},
                   {"inspect_limit", "0"},
                   {"per_flow_budget", "1048576"}});
    tgen::TcpStreamSpec sp =
        fuzz_spec(5000, seed, fwd_patterns(), rev_patterns());
    auto arrivals = tgen::tcp_stream_evasion(sp, evasion_for(seed));
    for (auto& a : arrivals) s.core->process(std::move(a.p));

    std::vector<MatchHit> want = oracle_hits(oracle, sp.payload, 0);
    const auto rev = oracle_hits(oracle, sp.reverse_payload, 1);
    want.insert(want.end(), rev.begin(), rev.end());
    std::vector<MatchHit> got = s.ids->hit_log();
    std::sort(want.begin(), want.end(), hit_less);
    std::sort(got.begin(), got.end(), hit_less);
    EXPECT_GT(want.size(), 0u) << "oracle found nothing — plants broken";
    EXPECT_EQ(got, want);
    EXPECT_EQ(s.ids->counters().verdict_overflow.load(), 0u);
  }
}

// The evasion mutator must not smuggle extra copies of a pattern into the
// normalized stream either: a garbage overlap copy that *contains* a planted
// pattern would be a false positive if first-wins ever let it through. The
// exact-equality check above already proves this; this test just cranks the
// mutation rates to their extremes to hunt for budget-order bugs.
TEST(L7Fuzz, AggressiveMutationStillExact) {
  const AhoCorasick oracle = build_matcher(all_patterns());
  for (std::uint64_t seed = 100; seed < 112; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    FuzzL7Stack s({{"patterns", pattern_spec(all_patterns())},
                   {"alert_on_match", "0"},
                   {"log_hits", "1"},
                   {"inspect_limit", "0"},
                   {"per_flow_budget", "4194304"}});
    tgen::TcpStreamSpec sp =
        fuzz_spec(5000, seed, fwd_patterns(), rev_patterns());
    sp.mss = 64;  // many small segments → deep reorder interleavings
    tgen::EvasionSpec ev;
    ev.seed = seed;
    ev.reorder_window = 17;
    ev.tiny_split_prob = 0.9;
    ev.dup_prob = 0.5;
    ev.overlap_rewrite_prob = 0.9;
    ev.span_rewrite_prob = 0.9;
    auto arrivals = tgen::tcp_stream_evasion(sp, ev);
    for (auto& a : arrivals) s.core->process(std::move(a.p));

    std::vector<MatchHit> want = oracle_hits(oracle, sp.payload, 0);
    const auto rev = oracle_hits(oracle, sp.reverse_payload, 1);
    want.insert(want.end(), rev.begin(), rev.end());
    std::vector<MatchHit> got = s.ids->hit_log();
    std::sort(want.begin(), want.end(), hit_less);
    std::sort(got.begin(), got.end(), hit_less);
    EXPECT_EQ(got, want);
    EXPECT_EQ(s.ids->counters().verdict_overflow.load(), 0u);
  }
}

// ---------------------------------------------------------------------------
// Sharded: same oracle through a ShardedDatapath. Each shard owns a private
// replicated stack (own AIU, own l7ids instance); the two directions of a
// connection may land on different shards, so hits are aggregated across
// shards as a (pattern-string, end-offset) multiset — direction indices are
// shard-local and pattern strings are per-direction distinct by design.

using HitSet = std::map<std::pair<std::string, std::uint64_t>, std::size_t>;

void run_l7_shard_fuzz(std::uint32_t workers, std::uint64_t seed) {
  SCOPED_TRACE("workers=" + std::to_string(workers) +
               " seed=" + std::to_string(seed));
  const std::string spec_str = pattern_spec(all_patterns());

  std::vector<IdsInstance*> ids(workers, nullptr);
  parallel::ShardedDatapath::Options opt;
  opt.workers = workers;
  opt.ring_capacity = 256;
  parallel::ShardedDatapath dp(opt, [&](parallel::ShardContext& ctx) {
    ctx.interfaces().add("if0");
    ctx.interfaces().add("if1");
    ctx.routes().add(*netbase::IpPrefix::parse("20.0.0.0/8"), {1, {}});
    ctx.routes().add(*netbase::IpPrefix::parse("10.0.0.0/8"), {0, {}});
    ctx.pcu().register_plugin(std::make_unique<IdsPlugin>());
    plugin::InstanceId iid = plugin::kNoInstance;
    ASSERT_EQ(ctx.pcu().find("l7ids")->create_instance(
                  {{"patterns", spec_str},
                   {"alert_on_match", "0"},
                   {"log_hits", "1"},
                   {"inspect_limit", "0"},
                   {"per_flow_budget", "1048576"}},
                  iid),
              Status::ok);
    ids[ctx.id()] =
        static_cast<IdsInstance*>(ctx.pcu().find("l7ids")->instance(iid));
    ASSERT_EQ(ctx.aiu().create_filter(
                  PluginType::l7, *aiu::Filter::parse("<*, *, tcp, *, *, *>"),
                  ids[ctx.id()]),
              Status::ok);
  });
  dp.set_tx_handler(
      [](parallel::ShardContext&, pkt::IfIndex, pkt::PacketPtr) {});

  const AhoCorasick oracle = build_matcher(all_patterns());
  HitSet want;
  constexpr std::uint16_t kConns = 6;
  for (std::uint16_t c = 0; c < kConns; ++c) {
    const std::uint64_t cseed = seed * 100 + c;
    tgen::TcpStreamSpec sp = fuzz_spec(static_cast<std::uint16_t>(6000 + c),
                                       cseed, fwd_patterns(), rev_patterns());
    for (std::uint8_t dir : {0, 1})
      for (const MatchHit& h : oracle_hits(
               oracle, dir == 0 ? sp.payload : sp.reverse_payload, dir))
        ++want[{oracle.pattern(h.pattern), h.end}];
    for (auto& a : tgen::tcp_stream_evasion(sp, evasion_for(cseed)))
      dp.submit(std::move(a.p));
  }
  dp.quiesce();
  dp.stop();

  HitSet got;
  for (std::uint32_t i = 0; i < workers; ++i) {
    ASSERT_NE(ids[i], nullptr);
    for (const MatchHit& h : ids[i]->hit_log())
      ++got[{ids[i]->matcher().pattern(h.pattern), h.end}];
    EXPECT_EQ(ids[i]->counters().verdict_overflow.load(), 0u) << "shard " << i;
  }
  EXPECT_GT(want.size(), 0u);
  EXPECT_EQ(got, want);
}

TEST(L7FuzzShard, OneWorkerMatchesOracle) {
  for (std::uint64_t seed : {3ull, 42ull}) run_l7_shard_fuzz(1, seed);
}

TEST(L7FuzzShard, TwoWorkersMatchOracle) {
  for (std::uint64_t seed : {3ull, 42ull}) run_l7_shard_fuzz(2, seed);
}

TEST(L7FuzzShard, FourWorkersMatchOracle) {
  for (std::uint64_t seed : {3ull, 42ull, 1337ull}) run_l7_shard_fuzz(4, seed);
}

}  // namespace
}  // namespace rp::l7

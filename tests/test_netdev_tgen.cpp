// Unit tests for the simulated NIC / interface table and the workload
// generators (determinism, Zipf skew, filter validity).
#include <gtest/gtest.h>

#include <map>

#include "netdev/iftable.hpp"
#include "tgen/workload.hpp"

namespace rp {
namespace {

TEST(SimNic, RxRingTimestampsAndOverflow) {
  netdev::SimNic nic("t0", 3, 155'000'000, 0, 2);
  auto mk = [] { return pkt::make_packet(64); };
  nic.deliver(mk(), 100);
  nic.deliver(mk(), 200);
  nic.deliver(mk(), 300);  // ring full -> dropped
  EXPECT_EQ(nic.counters().rx_packets, 2u);
  EXPECT_EQ(nic.counters().rx_drops, 1u);

  auto p = nic.rx_pop();
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->arrival, 100);
  EXPECT_EQ(p->in_iface, 3);
  EXPECT_EQ(nic.rx_depth(), 1u);
  nic.rx_pop();
  EXPECT_EQ(nic.rx_pop(), nullptr);
}

TEST(SimNic, TxSerializationModel) {
  netdev::SimNic nic("t0", 0, 1'000'000);  // 1 Mb/s
  EXPECT_EQ(nic.tx_duration(125), 1'000'000);  // 1000 bits -> 1 ms

  std::vector<netbase::SimTime> done;
  nic.set_tx_sink([&](pkt::PacketPtr, netbase::SimTime t) { done.push_back(t); });
  EXPECT_TRUE(nic.tx_idle(0));
  auto end1 = nic.transmit(pkt::make_packet(125), 0);
  EXPECT_EQ(end1, 1'000'000);
  EXPECT_FALSE(nic.tx_idle(500'000));
  EXPECT_TRUE(nic.tx_idle(1'000'000));
  // Transmit while busy: queues behind (starts at busy_until).
  auto end2 = nic.transmit(pkt::make_packet(125), 500'000);
  EXPECT_EQ(end2, 2'000'000);
  ASSERT_EQ(done.size(), 2u);
  EXPECT_EQ(done[0], 1'000'000);
  EXPECT_EQ(done[1], 2'000'000);
  EXPECT_EQ(nic.counters().tx_bytes, 250u);
}

TEST(SimNic, PropagationDelayAddsToDelivery) {
  netdev::SimNic nic("t0", 0, 1'000'000, 5'000'000);
  netbase::SimTime delivered = 0;
  nic.set_tx_sink([&](pkt::PacketPtr, netbase::SimTime t) { delivered = t; });
  nic.transmit(pkt::make_packet(125), 0);
  EXPECT_EQ(delivered, 1'000'000 + 5'000'000);
}

TEST(InterfaceTable, IndexAndNameLookup) {
  netdev::InterfaceTable t;
  auto& a = t.add("eth0");
  auto& b = t.add("atm0", 622'000'000);
  EXPECT_EQ(a.index(), 0);
  EXPECT_EQ(b.index(), 1);
  EXPECT_EQ(t.by_index(1), &b);
  EXPECT_EQ(t.by_index(9), nullptr);
  EXPECT_EQ(t.by_name("eth0"), &a);
  EXPECT_EQ(t.by_name("nope"), nullptr);
  EXPECT_EQ(t.size(), 2u);
}

TEST(Tgen, GeneratorsAreDeterministic) {
  tgen::MixSpec spec;
  spec.n_flows = 20;
  spec.n_packets = 100;
  spec.seed = 42;
  auto a = tgen::flow_mix(spec);
  auto b = tgen::flow_mix(spec);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].t, b[i].t);
    ASSERT_TRUE(pkt::extract_flow_key(*a[i].p));
    ASSERT_TRUE(pkt::extract_flow_key(*b[i].p));
    EXPECT_EQ(a[i].p->key, b[i].p->key);
  }
}

TEST(Tgen, ZipfSkewsFlowPopularity) {
  tgen::MixSpec spec;
  spec.n_flows = 50;
  spec.n_packets = 5000;
  spec.burst_len = 1;
  spec.seed = 9;
  spec.zipf_s = 1.2;
  auto arrivals = tgen::flow_mix(spec);
  std::map<std::uint64_t, int> per_flow;
  for (auto& a : arrivals) per_flow[a.p->key.hash()]++;
  int max_count = 0;
  for (auto& [k, c] : per_flow) max_count = std::max(max_count, c);
  // The most popular flow must dominate far beyond the uniform share.
  EXPECT_GT(max_count, 3 * 5000 / 50);

  spec.zipf_s = 0;
  auto uniform = tgen::flow_mix(spec);
  per_flow.clear();
  for (auto& a : uniform) per_flow[a.p->key.hash()]++;
  max_count = 0;
  for (auto& [k, c] : per_flow) max_count = std::max(max_count, c);
  EXPECT_LT(max_count, 3 * 5000 / 50);
}

TEST(Tgen, RandomFiltersAreValidAndMatchable) {
  tgen::FilterSetSpec spec;
  spec.count = 200;
  spec.seed = 5;
  auto filters = tgen::random_filters(spec);
  ASSERT_EQ(filters.size(), 200u);
  netbase::Rng rng(6);
  for (const auto& f : filters) {
    // Round-trips through the textual form.
    auto parsed = aiu::Filter::parse(f.to_string());
    ASSERT_TRUE(parsed) << f.to_string();
    EXPECT_EQ(*parsed, f);
    // matching_key really matches.
    for (int i = 0; i < 3; ++i)
      EXPECT_TRUE(f.matches(tgen::matching_key(f, rng))) << f.to_string();
  }
}

TEST(Tgen, CbrSpacingAndCount) {
  tgen::CbrSpec spec;
  spec.count = 10;
  spec.start = 500;
  spec.interval = 100;
  auto a = tgen::cbr(spec);
  ASSERT_EQ(a.size(), 10u);
  EXPECT_EQ(a.front().t, 500);
  EXPECT_EQ(a.back().t, 500 + 9 * 100);
}

TEST(Tgen, MergeSortsByTime) {
  tgen::CbrSpec s1;
  s1.count = 3;
  s1.start = 0;
  s1.interval = 100;
  tgen::CbrSpec s2;
  s2.count = 3;
  s2.start = 50;
  s2.interval = 100;
  std::vector<std::vector<tgen::Arrival>> streams;
  streams.push_back(tgen::cbr(s1));
  streams.push_back(tgen::cbr(s2));
  auto merged = tgen::merge(std::move(streams));
  ASSERT_EQ(merged.size(), 6u);
  for (std::size_t i = 1; i < merged.size(); ++i)
    EXPECT_LE(merged[i - 1].t, merged[i].t);
}

}  // namespace
}  // namespace rp

// Unit tests for the netbase foundation: U128, addresses/prefixes,
// checksums, RNG determinism, memory-access accounting.
#include <gtest/gtest.h>

#include "netbase/byteorder.hpp"
#include "netbase/checksum.hpp"
#include "netbase/ip.hpp"
#include "netbase/memaccess.hpp"
#include "netbase/rng.hpp"
#include "netbase/u128.hpp"

namespace rp::netbase {
namespace {

TEST(U128, ShiftsAndMasks) {
  U128 one{0, 1};
  EXPECT_EQ(one << 1, (U128{0, 2}));
  EXPECT_EQ(one << 64, (U128{1, 0}));
  EXPECT_EQ(one << 127, (U128{0x8000000000000000ULL, 0}));
  EXPECT_EQ(one << 128, (U128{}));
  U128 top{0x8000000000000000ULL, 0};
  EXPECT_EQ(top >> 64, (U128{0, 0x8000000000000000ULL}));
  EXPECT_EQ(top >> 127, one);

  EXPECT_EQ(U128::prefix_mask(0), (U128{}));
  EXPECT_EQ(U128::prefix_mask(64), (U128{~0ULL, 0}));
  EXPECT_EQ(U128::prefix_mask(128), (U128{~0ULL, ~0ULL}));
  EXPECT_EQ(U128::prefix_mask(8), (U128{0xff00000000000000ULL, 0}));
  EXPECT_EQ(U128::prefix_mask(72), (U128{~0ULL, 0xff00000000000000ULL}));
}

TEST(U128, BitIndexing) {
  U128 v{0x8000000000000000ULL, 1};
  EXPECT_TRUE(v.bit(0));
  EXPECT_FALSE(v.bit(1));
  EXPECT_TRUE(v.bit(127));
  EXPECT_FALSE(v.bit(126));
}

TEST(U128, Ordering) {
  EXPECT_LT((U128{0, 5}), (U128{1, 0}));
  EXPECT_LT((U128{1, 1}), (U128{1, 2}));
  EXPECT_EQ((U128{3, 4}), (U128{3, 4}));
}

TEST(Ipv4Addr, ParseFormat) {
  auto a = Ipv4Addr::parse("192.168.1.200");
  ASSERT_TRUE(a);
  EXPECT_EQ(a->to_string(), "192.168.1.200");
  EXPECT_EQ(a->v, 0xc0a801c8u);
  EXPECT_FALSE(Ipv4Addr::parse("256.1.1.1"));
  EXPECT_FALSE(Ipv4Addr::parse("1.2.3"));
  EXPECT_FALSE(Ipv4Addr::parse("1.2.3.4.5"));
  EXPECT_FALSE(Ipv4Addr::parse("a.b.c.d"));
  EXPECT_FALSE(Ipv4Addr::parse(""));
}

TEST(Ipv6Addr, ParseFormat) {
  auto a = Ipv6Addr::parse("2001:db8::1");
  ASSERT_TRUE(a);
  EXPECT_EQ(a->to_string(), "2001:db8::1");
  EXPECT_EQ(a->v.hi, 0x20010db800000000ULL);
  EXPECT_EQ(a->v.lo, 1u);

  EXPECT_EQ(Ipv6Addr::parse("::")->to_string(), "::");
  EXPECT_EQ(Ipv6Addr::parse("::1")->to_string(), "::1");
  EXPECT_EQ(Ipv6Addr::parse("fe80::")->to_string(), "fe80::");
  EXPECT_EQ(
      Ipv6Addr::parse("1:2:3:4:5:6:7:8")->to_string(), "1:2:3:4:5:6:7:8");
  EXPECT_FALSE(Ipv6Addr::parse("1:2:3"));
  EXPECT_FALSE(Ipv6Addr::parse("1:2:3:4:5:6:7:8:9"));
  EXPECT_FALSE(Ipv6Addr::parse(":::"));
  EXPECT_FALSE(Ipv6Addr::parse("2001:db8::10000"));
}

TEST(Ipv6Addr, ByteRoundTrip) {
  auto a = *Ipv6Addr::parse("2001:db8:1234:5678:9abc:def0:1122:3344");
  std::uint8_t bytes[16];
  a.to_bytes(bytes);
  EXPECT_EQ(bytes[0], 0x20);
  EXPECT_EQ(bytes[15], 0x44);
  EXPECT_EQ(Ipv6Addr::from_bytes(bytes), a);
}

TEST(IpAddr, KeyAlignment) {
  IpAddr v4(Ipv4Addr(10, 0, 0, 1));
  // IPv4 keys are left-aligned in the 128-bit space.
  EXPECT_EQ(v4.key(), (U128{0x0a00000100000000ULL, 0}));
  EXPECT_EQ(v4.width(), 32u);
  IpAddr v6(*Ipv6Addr::parse("2001::"));
  EXPECT_EQ(v6.key().hi, 0x2001000000000000ULL);
  EXPECT_EQ(v6.width(), 128u);
}

TEST(IpPrefix, Normalization) {
  IpPrefix p(IpAddr(Ipv4Addr(129, 42, 7, 9)), 8);
  EXPECT_EQ(p.to_string(), "129.0.0.0/8");
  EXPECT_TRUE(p.contains(IpAddr(Ipv4Addr(129, 200, 1, 1))));
  EXPECT_FALSE(p.contains(IpAddr(Ipv4Addr(130, 0, 0, 1))));
}

TEST(IpPrefix, CoversNesting) {
  auto p8 = *IpPrefix::parse("10.0.0.0/8");
  auto p16 = *IpPrefix::parse("10.1.0.0/16");
  auto other = *IpPrefix::parse("11.0.0.0/8");
  EXPECT_TRUE(p8.covers(p16));
  EXPECT_FALSE(p16.covers(p8));
  EXPECT_TRUE(p8.covers(p8));
  EXPECT_FALSE(p8.covers(other));
}

TEST(IpPrefix, WildcardMatchesBothFamilies) {
  IpPrefix wild;  // len 0
  EXPECT_TRUE(wild.contains(IpAddr(Ipv4Addr(1, 2, 3, 4))));
  EXPECT_TRUE(wild.contains(IpAddr(*Ipv6Addr::parse("2001::1"))));
  EXPECT_TRUE(wild.covers(*IpPrefix::parse("2001::/16")));
}

TEST(IpPrefix, ParseForms) {
  EXPECT_EQ(IpPrefix::parse("10.0.0.0/8")->len, 8);
  EXPECT_EQ(IpPrefix::parse("10.1.2.3")->len, 32);  // bare address: full len
  EXPECT_EQ(IpPrefix::parse("*")->len, 0);
  EXPECT_EQ(IpPrefix::parse("2001:db8::/32")->len, 32);
  EXPECT_FALSE(IpPrefix::parse("10.0.0.0/33"));
  EXPECT_FALSE(IpPrefix::parse("10.0.0.0/x"));
}

TEST(Checksum, KnownVector) {
  // Classic example from RFC 1071 materials.
  const std::uint8_t data[] = {0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7};
  EXPECT_EQ(checksum_partial(data, sizeof data), 0xddf2);
  EXPECT_EQ(checksum(data, sizeof data), static_cast<std::uint16_t>(~0xddf2));
}

TEST(Checksum, OddLength) {
  const std::uint8_t data[] = {0x12, 0x34, 0x56};
  // Pads with a zero byte: 0x1234 + 0x5600
  EXPECT_EQ(checksum_partial(data, 3), 0x1234 + 0x5600);
}

TEST(Checksum, IncrementalUpdateMatchesRecompute) {
  std::uint8_t hdr[20] = {0x45, 0, 0, 100, 0x12, 0x34, 0, 0, 64, 17,
                          0,    0, 10, 0,  0,    1,    10, 0, 0,  2};
  // Compute the initial checksum.
  store_be16(&hdr[10], checksum(hdr, sizeof hdr));
  ASSERT_EQ(checksum_partial(hdr, sizeof hdr), 0xffff);
  // Decrement the TTL (byte 8) and update incrementally.
  std::uint16_t old_word = load_be16(&hdr[8]);
  --hdr[8];
  std::uint16_t new_word = load_be16(&hdr[8]);
  std::uint16_t old_ck = load_be16(&hdr[10]);
  store_be16(&hdr[10], checksum_update16(old_ck, old_word, new_word));
  EXPECT_EQ(checksum_partial(hdr, sizeof hdr), 0xffff);
}

TEST(Rng, DeterministicAndSeedSensitive) {
  Rng a(1), b(1), c(2);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
  bool differs = false;
  Rng a2(1);
  for (int i = 0; i < 100; ++i) differs |= a2.next() != c.next();
  EXPECT_TRUE(differs);
}

TEST(Rng, RangesAreBounded) {
  Rng r(3);
  for (int i = 0; i < 1000; ++i) {
    auto v = r.range(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
    auto u = r.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(MemAccess, CountsAndScopes) {
  MemAccess::reset();
  MemAccess::count();
  MemAccess::count(5);
  EXPECT_EQ(MemAccess::total(), 6u);
  MemAccessScope scope;
  MemAccess::count(3);
  EXPECT_EQ(scope.elapsed(), 3u);
}

TEST(ByteOrder, RoundTrips) {
  std::uint8_t buf[8];
  store_be16(buf, 0xbeef);
  EXPECT_EQ(load_be16(buf), 0xbeef);
  store_be32(buf, 0xdeadbeef);
  EXPECT_EQ(load_be32(buf), 0xdeadbeefu);
  store_be64(buf, 0x0123456789abcdefULL);
  EXPECT_EQ(load_be64(buf), 0x0123456789abcdefULL);
  EXPECT_EQ(buf[0], 0x01);
  EXPECT_EQ(buf[7], 0xef);
}

}  // namespace
}  // namespace rp::netbase

// Differential proof for grouped (batch-native) gate dispatch (PR 6
// tentpole): with the same gate order and the same trace, batch_gates=on
// must be observationally identical to batch_gates=off — same counters,
// same per-reason drops, same per-instance invocation totals, same
// per-flow soft state, and byte-identical egress in identical order — for
// both the runtime-grouped path and the compile-time fused 3-gate chain,
// including mid-burst verdict splits (drop/consume at different gates),
// ICMP error re-entry, and the default handle_burst shim.
//
// The sharded and adversarial variants live in the ShardDiff / WireFuzz
// suites (names chosen so ctest's parallel-diff-tsan and fuzz labels pick
// them up): ShardDiff.GateBatch* replays a seeded trace through a
// batch-off single stack and a batch-on N-worker ShardedDatapath,
// N ∈ {1, 2, 4}; WireFuzz.GateBatch* drives identically-seeded
// adversarial streams through a batch-on and a batch-off core and demands
// identical counters and egress.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <map>
#include <random>
#include <string>
#include <vector>

#include "core/ip_core.hpp"
#include "parallel/sharded_datapath.hpp"
#include "pkt/builder.hpp"
#include "pkt/headers.hpp"
#include "plugin/pcu.hpp"
#include "telemetry/flow_export.hpp"
#include "tgen/adversarial.hpp"

namespace rp::core {
namespace {

using netbase::IpAddr;
using plugin::PluginType;
using plugin::Verdict;

// Batch-native instance with a per-packet policy: drop one dport, consume
// another, pass the rest — so one handle_burst call can split a group
// mid-run. Per-flow soft state is a counter smuggled through the void*
// slot; both paths must leave identical counts behind. handle_packet and
// handle_burst share judge(), so the per-packet path, the grouped path,
// and the default shim all apply the same policy.
class JudgeInstance final : public plugin::PluginInstance {
 public:
  JudgeInstance(std::uint16_t drop_dport, std::uint16_t consume_dport)
      : drop_dport_(drop_dport), consume_dport_(consume_dport) {}

  Verdict handle_packet(pkt::Packet& p, void** soft) override {
    ++packet_calls;
    return judge(p, soft);
  }
  void handle_burst(plugin::PacketRun& run) override {
    ++burst_calls;
    burst_pkts += run.size();
    for (std::size_t i = 0; i < run.size(); ++i)
      run.set_verdict(i, judge(run.packet(i), run.soft(i)));
  }

  std::uint64_t judged{0};
  std::uint64_t consumed_n{0};
  std::uint64_t packet_calls{0};
  std::uint64_t burst_calls{0};
  std::uint64_t burst_pkts{0};

 private:
  Verdict judge(pkt::Packet& p, void** soft) {
    ++judged;
    if (soft)
      *soft = reinterpret_cast<void*>(
          reinterpret_cast<std::uintptr_t>(*soft) + 1);
    if (drop_dport_ && p.key.dport == drop_dport_) return Verdict::drop;
    if (consume_dport_ && p.key.dport == consume_dport_) {
      ++consumed_n;
      return Verdict::consumed;
    }
    return Verdict::cont;
  }

  std::uint16_t drop_dport_;
  std::uint16_t consume_dport_;
};

class JudgePlugin final : public plugin::Plugin {
 public:
  JudgePlugin(std::string name, PluginType type, std::uint16_t drop_dport,
              std::uint16_t consume_dport)
      : Plugin(std::move(name), type),
        drop_dport_(drop_dport),
        consume_dport_(consume_dport) {}

 protected:
  std::unique_ptr<plugin::PluginInstance> make_instance(
      const plugin::Config&) override {
    return std::make_unique<JudgeInstance>(drop_dport_, consume_dport_);
  }

 private:
  std::uint16_t drop_dport_;
  std::uint16_t consume_dport_;
};

// A plugin that does NOT override handle_burst: the grouped path must fall
// back to the default shim (loop handle_packet) with unchanged semantics.
class ShimOnlyInstance final : public plugin::PluginInstance {
 public:
  Verdict handle_packet(pkt::Packet& p, void** soft) override {
    ++calls;
    if (soft)
      *soft = reinterpret_cast<void*>(
          reinterpret_cast<std::uintptr_t>(*soft) + 1);
    return p.key.dport == 80 ? Verdict::drop : Verdict::cont;
  }
  std::uint64_t calls{0};
};

class ShimOnlyPlugin final : public plugin::Plugin {
 public:
  ShimOnlyPlugin(std::string name, PluginType type)
      : Plugin(std::move(name), type) {}

 protected:
  std::unique_ptr<plugin::PluginInstance> make_instance(
      const plugin::Config&) override {
    return std::make_unique<ShimOnlyInstance>();
  }
};

// Fused chain order; any permutation forces the runtime-grouped path.
const std::vector<PluginType> kFusedOrder = {PluginType::ipopt,
                                             PluginType::ipsec,
                                             PluginType::stats};
const std::vector<PluginType> kRuntimeOrder = {PluginType::stats,
                                               PluginType::ipsec,
                                               PluginType::ipopt};

JudgeInstance* add_judge(plugin::PluginControlUnit& pcu, aiu::Aiu& aiu,
                         const char* name, PluginType type,
                         std::uint16_t drop_dport,
                         std::uint16_t consume_dport, const char* filter) {
  pcu.register_plugin(
      std::make_unique<JudgePlugin>(name, type, drop_dport, consume_dport));
  plugin::InstanceId id = plugin::kNoInstance;
  pcu.find(name)->create_instance({}, id);
  auto* inst = static_cast<JudgeInstance*>(pcu.find(name)->instance(id));
  aiu.create_filter(type, *aiu::Filter::parse(filter), inst);
  return inst;
}

// Three judge gates exercising every group shape: ipopt binds every flow
// (catch-all) and drops dport 80; ipsec binds only dst 20.0.0.0/24 (so
// chunks mix bound and unbound packets) and consumes dport 81; stats
// splits flows across TWO instances by dst /24 (mixed-instance groups at
// one gate), the first of which drops dport 82.
struct JudgeTaps {
  JudgeInstance* ipopt{nullptr};
  JudgeInstance* ipsec{nullptr};
  JudgeInstance* stats_a{nullptr};
  JudgeInstance* stats_b{nullptr};

  std::uint64_t judged_sum() const {
    return ipopt->judged + ipsec->judged + stats_a->judged + stats_b->judged;
  }
};

JudgeTaps install_judges(plugin::PluginControlUnit& pcu, aiu::Aiu& aiu) {
  JudgeTaps t;
  t.ipopt = add_judge(pcu, aiu, "opt", PluginType::ipopt, 80, 0,
                      "<*, *, *, *, *, *>");
  t.ipsec = add_judge(pcu, aiu, "sec", PluginType::ipsec, 0, 81,
                      "<*, 20.0.0.0/24, *, *, *, *>");
  t.stats_a = add_judge(pcu, aiu, "stA", PluginType::stats, 82, 0,
                        "<*, 20.0.0.0/24, *, *, *, *>");
  t.stats_b = add_judge(pcu, aiu, "stB", PluginType::stats, 0, 0,
                        "<*, 20.0.1.0/24, *, *, *, *>");
  return t;
}

// One complete datapath with the judge gates above, if1 at a small MTU to
// force fragmentation, and a return route so generated ICMP errors (dst =
// offender's src) egress via if0 instead of being dropped no_route.
struct Rig {
  netbase::SimClock clock;
  plugin::PluginControlUnit pcu;
  std::unique_ptr<aiu::Aiu> aiu;
  route::RoutingTable routes{"bsl"};
  netdev::InterfaceTable ifs;
  std::unique_ptr<IpCore> core;
  JudgeTaps taps;

  Rig(bool batch_gates, const std::vector<PluginType>& order,
      bool icmp_errors = false) {
    aiu = std::make_unique<aiu::Aiu>(pcu, clock);
    ifs.add("if0");
    ifs.add("if1").set_mtu(600);
    routes.add(*netbase::IpPrefix::parse("20.0.0.0/8"), {1, {}});
    routes.add(*netbase::IpPrefix::parse("10.0.0.0/8"), {0, {}});

    CoreConfig cfg;
    cfg.input_gates = order;
    cfg.batch_gates = batch_gates;
    cfg.emit_icmp_errors = icmp_errors;
    core = std::make_unique<IpCore>(*aiu, routes, ifs, clock, cfg);
    taps = install_judges(pcu, *aiu);
  }

  std::vector<std::vector<std::uint8_t>> drain(pkt::IfIndex iface) {
    std::vector<std::vector<std::uint8_t>> out;
    while (auto p = core->next_for_tx(iface, 0))
      out.emplace_back(p->data(), p->data() + p->size());
    return out;
  }

  // Final per-flow soft-state counters: flow key -> per-gate counts.
  std::map<std::string, std::vector<std::uintptr_t>> soft_state() {
    std::map<std::string, std::vector<std::uintptr_t>> m;
    aiu::FlowTable& ft = aiu->flow_table();
    for (std::size_t i = 0; i < ft.capacity(); ++i) {
      const aiu::FlowRecord& r = ft.rec(static_cast<pkt::FlowIndex>(i));
      if (!r.in_use) continue;
      std::vector<std::uintptr_t>& v = m[r.key.to_string()];
      for (std::size_t g = 0; g < aiu::kNumGates; ++g)
        v.push_back(reinterpret_cast<std::uintptr_t>(r.gates[g].soft));
    }
    return m;
  }
};

pkt::PacketPtr udp(std::uint8_t src_lo, const char* dst, std::uint8_t ttl,
                   std::uint16_t dport, std::size_t payload = 64) {
  pkt::UdpSpec s;
  s.src = IpAddr(netbase::Ipv4Addr(10, 0, 0, src_lo));
  s.dst = *IpAddr::parse(dst);
  s.sport = 1000;
  s.dport = dport;
  s.payload_len = payload;
  s.ttl = ttl;
  return pkt::build_udp(s);
}

void set_df(pkt::Packet& p) {
  std::uint8_t* h = p.data();
  h[6] |= 0x40;  // DF
  pkt::Ipv4Header::finalize_checksum(h, 20);
}

// Seeded trace in per-flow trains across both dst /24s, mixing every
// outcome the grouped path must split on: forwards, gate drops (dport 80),
// gate consumes (dport 81), second-gate drops (dport 82), TTL expiry, bad
// checksums, runts, no-route, fragmentation, and DF-too-big.
std::vector<pkt::PacketPtr> make_trace(std::uint64_t seed, int n) {
  std::mt19937_64 rng(seed);
  std::vector<pkt::PacketPtr> t;
  t.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const auto flow = static_cast<std::uint8_t>(1 + i / 3 % 8);  // trains
    const char* dst = (flow % 2) ? "20.0.0.5" : "20.0.1.5";
    switch (rng() % 16) {
      case 0:
        t.push_back(udp(flow, dst, 1, 9000));  // ttl_expired (+ICMP)
        break;
      case 1: {
        auto p = udp(flow, dst, 64, 9000);
        p->data()[10] ^= 0xff;  // bad_checksum
        t.push_back(std::move(p));
        break;
      }
      case 2: {
        auto p = pkt::make_packet(6);  // malformed runt (no flow key)
        p->data()[0] = 0x00;
        t.push_back(std::move(p));
        break;
      }
      case 3:
        t.push_back(udp(flow, "99.0.0.5", 64, 9000));  // no_route (+ICMP)
        break;
      case 4:
        t.push_back(udp(flow, dst, 64, 80));  // gate-1 drop
        break;
      case 5:
        t.push_back(udp(flow, dst, 64, 81));  // gate-2 consume
        break;
      case 6:
        t.push_back(udp(flow, dst, 64, 82));  // gate-3 drop (dst .0/24)
        break;
      case 7:
        t.push_back(udp(flow, dst, 64, 9000, 1400));  // fragmented
        break;
      case 8: {
        auto p = udp(flow, dst, 64, 9000, 1400);  // DF too-big (+ICMP)
        set_df(*p);
        t.push_back(std::move(p));
        break;
      }
      default:
        t.push_back(udp(flow, dst, 64,
                        static_cast<std::uint16_t>(9000 + rng() % 4)));
    }
  }
  return t;
}

void expect_counters_equal(const CoreCounters& a, const CoreCounters& b) {
  EXPECT_EQ(a.received, b.received);
  EXPECT_EQ(a.forwarded, b.forwarded);
  EXPECT_EQ(a.gate_calls, b.gate_calls);
  EXPECT_EQ(a.icmp_errors_sent, b.icmp_errors_sent);
  EXPECT_EQ(a.fragments_created, b.fragments_created);
  for (std::size_t r = 0; r < static_cast<std::size_t>(DropReason::kCount);
       ++r)
    EXPECT_EQ(a.drops[r], b.drops[r]) << "drop reason " << r;
}

void expect_taps_equal(const JudgeTaps& a, const JudgeTaps& b) {
  EXPECT_EQ(a.ipopt->judged, b.ipopt->judged);
  EXPECT_EQ(a.ipsec->judged, b.ipsec->judged);
  EXPECT_EQ(a.stats_a->judged, b.stats_a->judged);
  EXPECT_EQ(a.stats_b->judged, b.stats_b->judged);
  EXPECT_EQ(a.ipsec->consumed_n, b.ipsec->consumed_n);
}

// Same trace, same gate order, same chunking: batch off vs batch on.
void expect_equivalent(const std::vector<PluginType>& order, bool fused,
                       bool icmp_errors) {
  SCOPED_TRACE(std::string(fused ? "fused" : "runtime") +
               (icmp_errors ? "+icmp" : ""));
  Rig off(false, order, icmp_errors), on(true, order, icmp_errors);
  auto trace = make_trace(fused ? 7 : 11, 600);

  std::vector<pkt::PacketPtr> a, b;
  for (const auto& p : trace) {
    a.push_back(pkt::clone_packet(*p));
    b.push_back(pkt::clone_packet(*p));
  }

  // Irregular chunking, including chunks above Aiu::kMaxBurst so internal
  // re-chunking and single-survivor fallback chunks both occur.
  const std::size_t sizes[] = {1, 2, 3, 5, 8, 13, 21, 32, 40};
  for (auto* batch : {&a, &b}) {
    IpCore& core = batch == &a ? *off.core : *on.core;
    std::size_t o = 0, s = 0;
    while (o < batch->size()) {
      const std::size_t n =
          std::min(sizes[s++ % std::size(sizes)], batch->size() - o);
      core.process_burst({batch->data() + o, n});
      o += n;
    }
  }

  expect_counters_equal(off.core->counters(), on.core->counters());
  expect_taps_equal(off.taps, on.taps);
  EXPECT_EQ(off.soft_state(), on.soft_state());

  // The batch-off rig must never see handle_burst; the batch-on rig must
  // dispatch groups natively (per-packet calls remain only for
  // single-survivor fallback chunks).
  EXPECT_EQ(off.taps.ipopt->burst_calls, 0u);
  EXPECT_GT(on.taps.ipopt->burst_calls, 0u);
  EXPECT_GT(on.taps.stats_b->burst_calls, 0u);

  // Group accounting: every group histogrammed, sizes add up, and the
  // fused chain engaged exactly when the gate order matches it.
  const CoreCounters& cc = on.core->counters();
  EXPECT_GT(cc.gate_groups, 0u);
  std::uint64_t hist_sum = 0;
  for (auto h : cc.group_size_hist) hist_sum += h;
  EXPECT_EQ(hist_sum, cc.gate_groups);
  EXPECT_GE(cc.gate_group_pkts, cc.gate_groups);
  if (fused)
    EXPECT_GT(cc.fused_bursts, 0u);
  else
    EXPECT_EQ(cc.fused_bursts, 0u);
  EXPECT_EQ(off.core->counters().gate_groups, 0u);

  // Sanity: the trace really exercised every outcome, including mid-burst
  // splits at three different gates and (optionally) ICMP generation.
  const CoreCounters& ca = off.core->counters();
  EXPECT_GT(ca.forwarded, 0u);
  EXPECT_GT(ca.fragments_created, 0u);
  EXPECT_GT(ca.dropped(DropReason::ttl_expired), 0u);
  EXPECT_GT(ca.dropped(DropReason::bad_checksum), 0u);
  EXPECT_GT(ca.dropped(DropReason::malformed), 0u);
  EXPECT_GT(ca.dropped(DropReason::no_route), 0u);
  EXPECT_GT(ca.dropped(DropReason::policy), 0u);
  EXPECT_GT(off.taps.ipsec->consumed_n, 0u);
  EXPECT_GT(off.taps.stats_a->judged, 0u);
  EXPECT_GT(off.taps.stats_b->judged, 0u);
  if (icmp_errors) {
    EXPECT_GT(ca.icmp_errors_sent, 0u);
  }

  // Byte-identical egress in identical order on both interfaces (if0
  // carries re-entered ICMP errors when enabled).
  for (pkt::IfIndex ifx : {pkt::IfIndex{0}, pkt::IfIndex{1}}) {
    auto oa = off.drain(ifx);
    auto ob = on.drain(ifx);
    ASSERT_EQ(oa.size(), ob.size()) << "iface " << ifx;
    for (std::size_t i = 0; i < oa.size(); ++i)
      EXPECT_EQ(oa[i], ob[i]) << "iface " << ifx << " packet " << i;
  }
}

TEST(GateBatch, GroupedMatchesPerPacket) {
  expect_equivalent(kRuntimeOrder, /*fused=*/false, /*icmp_errors=*/false);
}

TEST(GateBatch, FusedChainMatchesPerPacket) {
  expect_equivalent(kFusedOrder, /*fused=*/true, /*icmp_errors=*/false);
}

TEST(GateBatch, IcmpReentryMatchesPerPacket) {
  expect_equivalent(kFusedOrder, /*fused=*/true, /*icmp_errors=*/true);
  expect_equivalent(kRuntimeOrder, /*fused=*/false, /*icmp_errors=*/true);
}

// A plugin without handle_burst must go through the default shim with
// identical behaviour: same calls, same verdicts, same counters.
TEST(GateBatch, DefaultShimMatchesPerPacket) {
  struct Stack {
    netbase::SimClock clock;
    plugin::PluginControlUnit pcu;
    std::unique_ptr<aiu::Aiu> aiu;
    route::RoutingTable routes{"bsl"};
    netdev::InterfaceTable ifs;
    std::unique_ptr<IpCore> core;
    ShimOnlyInstance* inst{nullptr};

    explicit Stack(bool batch) {
      aiu = std::make_unique<aiu::Aiu>(pcu, clock);
      ifs.add("if0");
      ifs.add("if1");
      routes.add(*netbase::IpPrefix::parse("20.0.0.0/8"), {1, {}});
      CoreConfig cfg;
      cfg.input_gates = kFusedOrder;
      cfg.batch_gates = batch;
      core = std::make_unique<IpCore>(*aiu, routes, ifs, clock, cfg);
      pcu.register_plugin(
          std::make_unique<ShimOnlyPlugin>("shim", PluginType::ipopt));
      plugin::InstanceId id = plugin::kNoInstance;
      pcu.find("shim")->create_instance({}, id);
      inst = static_cast<ShimOnlyInstance*>(pcu.find("shim")->instance(id));
      aiu->create_filter(PluginType::ipopt,
                         *aiu::Filter::parse("<*, *, *, *, *, *>"), inst);
    }
  };
  Stack off(false), on(true);

  std::vector<pkt::PacketPtr> a, b;
  for (int i = 0; i < 96; ++i) {
    auto p = udp(static_cast<std::uint8_t>(1 + i % 5), "20.0.0.5", 64,
                 static_cast<std::uint16_t>(i % 7 == 3 ? 80 : 9000));
    a.push_back(pkt::clone_packet(*p));
    b.push_back(std::move(p));
  }
  for (std::size_t o = 0; o < a.size(); o += 32) {
    off.core->process_burst({a.data() + o, 32});
    on.core->process_burst({b.data() + o, 32});
  }

  expect_counters_equal(off.core->counters(), on.core->counters());
  EXPECT_EQ(off.inst->calls, on.inst->calls);
  EXPECT_GT(off.inst->calls, 0u);
  EXPECT_GT(on.core->counters().gate_groups, 0u);  // shimmed, still grouped
}

// Full same-flow bursts: exact group accounting. 3 bound gates x 2 chunks
// of 32 identical-flow packets = 6 groups of 32, all in the 17+ bucket,
// and every chunk taken by the fused chain.
TEST(GateBatch, GroupCountersExact) {
  Rig rig(true, kFusedOrder);
  std::vector<pkt::PacketPtr> batch;
  for (int i = 0; i < 64; ++i) batch.push_back(udp(1, "20.0.0.5", 64, 9000));
  rig.core->process_burst({batch.data(), 32});
  rig.core->process_burst({batch.data() + 32, 32});

  const CoreCounters& cc = rig.core->counters();
  EXPECT_EQ(cc.gate_groups, 6u);
  EXPECT_EQ(cc.gate_group_pkts, 192u);
  EXPECT_EQ(cc.fused_bursts, 2u);
  EXPECT_EQ(cc.group_size_hist[CoreCounters::group_hist_bucket(32)], 6u);
  EXPECT_EQ(rig.taps.ipopt->burst_calls, 2u);
  EXPECT_EQ(rig.taps.ipopt->burst_pkts, 64u);
  EXPECT_EQ(rig.taps.ipopt->packet_calls, 0u);
  EXPECT_EQ(cc.forwarded, 64u);
}

// ---------------------------------------------------------------------------
// Sharded differential: batch-off single stack vs batch-on N-worker
// ShardedDatapath on the same seeded trace. The suite name keeps these
// under ctest's parallel-diff-tsan label, so grouped dispatch runs under
// TSan against real worker threads. Per-flow dispositions are compared as
// multisets: the grouped path may retire a chunk's drops before its
// forwards, so cross-path trace order within a flow is not specified.

struct FlowObs {
  std::uint64_t packets{0};
  std::uint64_t bytes{0};
  std::vector<std::pair<std::uint8_t, std::uint8_t>> dispositions;
  std::vector<std::vector<std::uint8_t>> egress;
};
using FlowMap = std::map<std::string, FlowObs>;

void record_exports(FlowMap& m, const telemetry::MemorySink& sink) {
  for (std::size_t i = sink.stored(); i-- > 0;) {
    const telemetry::FlowExportRecord& r = sink.recent(i);
    FlowObs& o = m[r.key.to_string()];
    o.packets += r.packets;
    o.bytes += r.bytes;
  }
}

void record_traces(FlowMap& m, const telemetry::TraceRing& ring) {
  ASSERT_LE(ring.captured(), ring.capacity()) << "trace ring overflowed";
  for (std::size_t i = ring.stored(); i-- > 0;) {
    const telemetry::TraceRecord& r = ring.recent(i);
    m[r.key.to_string()].dispositions.emplace_back(
        static_cast<std::uint8_t>(r.disposition), r.drop_reason);
  }
}

void record_egress(FlowMap& m, const std::uint8_t* data, std::size_t size) {
  auto p = pkt::make_packet(size);
  std::copy(data, data + size, p->data());
  std::string key =
      pkt::extract_flow_key(*p) ? p->key.to_string() : std::string("?");
  m[key].egress.emplace_back(data, data + size);
}

void expect_flowmaps_equal(FlowMap& ref, FlowMap& dut) {
  for (auto* m : {&ref, &dut})
    for (auto& [key, o] : *m)
      std::sort(o.dispositions.begin(), o.dispositions.end());
  ASSERT_EQ(ref.size(), dut.size());
  for (auto& [key, a] : ref) {
    auto it = dut.find(key);
    ASSERT_NE(it, dut.end()) << "flow missing in batch-on path: " << key;
    FlowObs& b = it->second;
    EXPECT_EQ(a.packets, b.packets) << key;
    EXPECT_EQ(a.bytes, b.bytes) << key;
    EXPECT_EQ(a.dispositions, b.dispositions) << key;
    ASSERT_EQ(a.egress.size(), b.egress.size()) << key;
    for (std::size_t i = 0; i < a.egress.size(); ++i)
      EXPECT_EQ(a.egress[i], b.egress[i]) << key << " egress #" << i;
  }
}

parallel::ShardOptions gb_shard_options(bool batch_gates) {
  parallel::ShardOptions opt;
  opt.core.input_gates = kFusedOrder;
  opt.core.batch_gates = batch_gates;
  opt.telemetry.sample_every = 1;  // trace every classified packet
  opt.telemetry.trace_ring = 4096;
  opt.telemetry.memory_sink_cap = 4096;
  return opt;
}

JudgeTaps setup_shard_stack(parallel::ShardContext& ctx) {
  ctx.interfaces().add("if0");
  ctx.interfaces().add("if1").set_mtu(600);
  ctx.routes().add(*netbase::IpPrefix::parse("20.0.0.0/8"), {1, {}});
  ctx.routes().add(*netbase::IpPrefix::parse("10.0.0.0/8"), {0, {}});
  return install_judges(ctx.pcu(), ctx.aiu());
}

constexpr netbase::SimTime kSweepAll =
    std::numeric_limits<netbase::SimTime>::max();

void run_gb_shard_diff(std::uint32_t workers, std::uint64_t seed) {
  SCOPED_TRACE("workers=" + std::to_string(workers) +
               " seed=" + std::to_string(seed));
  auto trace = make_trace(seed, 600);

  // ---- reference: one private stack, batch_gates OFF ----
  parallel::ShardContext ref(0, gb_shard_options(false));
  JudgeTaps ref_taps = setup_shard_stack(ref);
  FlowMap ref_map;
  {
    std::vector<pkt::PacketPtr> burst;
    for (const auto& p : trace) {
      burst.push_back(pkt::clone_packet(*p));
      if (burst.size() == 32) {
        ref.core().process_burst(burst);
        burst.clear();
      }
    }
    if (!burst.empty()) ref.core().process_burst(burst);
    for (pkt::IfIndex ifx : {pkt::IfIndex{0}, pkt::IfIndex{1}})
      while (auto p = ref.core().next_for_tx(ifx, ref.clock().now()))
        record_egress(ref_map, p->data(), p->size());
    ref.aiu().flow_table().expire_idle(kSweepAll);
    record_exports(ref_map, static_cast<const telemetry::MemorySink&>(
                                ref.telemetry().sink()));
    record_traces(ref_map, ref.telemetry().traces());
  }

  // ---- device under test: N workers, batch_gates ON ----
  std::vector<JudgeTaps> taps(workers);
  parallel::ShardedDatapath::Options opt;
  opt.workers = workers;
  opt.ring_capacity = 256;
  opt.shard = gb_shard_options(true);
  parallel::ShardedDatapath dp(opt, [&taps](parallel::ShardContext& ctx) {
    taps[ctx.id()] = setup_shard_stack(ctx);
  });

  struct Egress {
    std::vector<std::vector<std::uint8_t>> packets;
  };
  std::vector<Egress> egress(workers);
  dp.set_tx_handler(
      [&egress](parallel::ShardContext& ctx, pkt::IfIndex, pkt::PacketPtr p) {
        egress[ctx.id()].packets.emplace_back(p->data(),
                                              p->data() + p->size());
      });

  for (const auto& p : trace) dp.submit(pkt::clone_packet(*p));
  dp.quiesce();
  dp.sweep_flows(kSweepAll);
  const CoreCounters dut_counters = dp.aggregate_counters();

  dp.stop();
  FlowMap dut_map;
  for (std::uint32_t i = 0; i < workers; ++i) {
    parallel::ShardContext& ctx = dp.worker(i).ctx();
    record_exports(dut_map, static_cast<const telemetry::MemorySink&>(
                                ctx.telemetry().sink()));
    record_traces(dut_map, ctx.telemetry().traces());
  }
  for (const auto& e : egress)
    for (const auto& bytes : e.packets)
      record_egress(dut_map, bytes.data(), bytes.size());

  // ---- equivalence ----
  expect_flowmaps_equal(ref_map, dut_map);
  expect_counters_equal(ref.core().counters(), dut_counters);

  std::uint64_t judged = 0, burst_calls = 0;
  for (const auto& t : taps) {
    judged += t.judged_sum();
    burst_calls += t.ipopt->burst_calls + t.ipsec->burst_calls +
                   t.stats_a->burst_calls + t.stats_b->burst_calls;
  }
  EXPECT_EQ(ref_taps.judged_sum(), judged);
  EXPECT_GT(burst_calls, 0u);
  EXPECT_GT(dut_counters.gate_groups, 0u);
  EXPECT_GT(dut_counters.fused_bursts, 0u);
  EXPECT_EQ(ref.core().counters().gate_groups, 0u);
}

TEST(ShardDiff, GateBatchOneWorkerMatchesPerPacket) {
  for (std::uint64_t seed : {3ull, 42ull}) run_gb_shard_diff(1, seed);
}

TEST(ShardDiff, GateBatchTwoWorkersMatchPerPacket) {
  for (std::uint64_t seed : {3ull, 42ull}) run_gb_shard_diff(2, seed);
}

TEST(ShardDiff, GateBatchFourWorkersMatchPerPacket) {
  for (std::uint64_t seed : {3ull, 42ull, 1337ull}) run_gb_shard_diff(4, seed);
}

// ---------------------------------------------------------------------------
// Adversarial differential: identically-seeded AdversarialGen streams
// through a batch-on (fused) core and a batch-off core; counters and
// egress must stay identical packet for packet. The suite name keeps this
// under ctest's fuzz label.

struct FuzzStack {
  netbase::SimClock clock;
  plugin::PluginControlUnit pcu;
  std::unique_ptr<aiu::Aiu> aiu;
  route::RoutingTable routes{"bsl"};
  netdev::InterfaceTable ifs;
  std::unique_ptr<IpCore> core;
  JudgeInstance* taps[3] = {};

  explicit FuzzStack(bool batch_gates) {
    aiu = std::make_unique<aiu::Aiu>(pcu, clock);
    ifs.add("if0");
    ifs.add("if1");
    // Default routes for both families: every well-formed mutant has
    // somewhere to go, so the gates see the full surviving stream.
    routes.add(*netbase::IpPrefix::parse("0.0.0.0/0"), {1, {}});
    routes.add(*netbase::IpPrefix::parse("::/0"), {1, {}});

    CoreConfig cfg;
    cfg.input_gates = kFusedOrder;
    cfg.batch_gates = batch_gates;
    core = std::make_unique<IpCore>(*aiu, routes, ifs, clock, cfg);
    const char* names[] = {"f1", "f2", "f3"};
    for (std::size_t g = 0; g < 3; ++g)
      taps[g] = add_judge(pcu, *aiu, names[g], kFusedOrder[g], 0, 0,
                          "<*, *, *, *, *, *>");
  }
};

TEST(WireFuzz, GateBatchFusedDifferential) {
  for (std::uint64_t seed : {1ull, 42ull}) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    FuzzStack off(false), on(true);
    tgen::AdversarialGen ga(seed), gb(seed);

    constexpr std::size_t kPackets = 25000;
    std::vector<pkt::PacketPtr> a(32), b(32);
    for (std::size_t done = 0; done < kPackets; done += 32) {
      for (std::size_t i = 0; i < 32; ++i) {
        a[i] = ga.next();
        b[i] = gb.next();
      }
      off.core->process_burst(a);
      on.core->process_burst(b);
      // Drain and compare in lockstep so the port FIFOs never overflow
      // and a divergence is reported at the burst that caused it.
      for (pkt::IfIndex ifx : {pkt::IfIndex{0}, pkt::IfIndex{1}}) {
        for (;;) {
          auto pa = off.core->next_for_tx(ifx, 0);
          auto pb = on.core->next_for_tx(ifx, 0);
          ASSERT_EQ(pa != nullptr, pb != nullptr)
              << "egress count diverged at packet " << done;
          if (!pa) break;
          ASSERT_EQ(std::vector<std::uint8_t>(pa->data(),
                                              pa->data() + pa->size()),
                    std::vector<std::uint8_t>(pb->data(),
                                              pb->data() + pb->size()))
              << "egress bytes diverged at packet " << done;
        }
      }
    }

    expect_counters_equal(off.core->counters(), on.core->counters());
    for (std::size_t g = 0; g < 3; ++g)
      EXPECT_EQ(off.taps[g]->judged, on.taps[g]->judged) << "gate " << g;
    EXPECT_GT(on.core->counters().gate_groups, 0u);
    EXPECT_GT(on.core->counters().fused_bursts, 0u);
    EXPECT_GT(off.core->counters().forwarded, 0u);
  }
}

}  // namespace
}  // namespace rp::core

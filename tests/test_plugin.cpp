// Tests for the plugin framework: PCU registration and dispatch, plugin
// codes, instance lifecycle, the loader (modload/modunload), and hooks.
#include <gtest/gtest.h>

#include "plugin/loader.hpp"
#include "plugin/pcu.hpp"

namespace rp::plugin {
namespace {

class NullInstance final : public PluginInstance {
 public:
  Verdict handle_packet(pkt::Packet&, void**) override { return Verdict::cont; }
  Status handle_message(const PluginMsg& msg, PluginReply& reply) override {
    if (msg.custom_name == "ping") {
      reply.text = "pong";
      return Status::ok;
    }
    return Status::unsupported;
  }
};

class TestPlugin final : public Plugin {
 public:
  explicit TestPlugin(std::string name, PluginType type = PluginType::stats)
      : Plugin(std::move(name), type) {}

  Status handle_message(const PluginMsg& msg, PluginReply& reply) override {
    if (msg.custom_name == "whoami") {
      reply.text = name();
      return Status::ok;
    }
    return Status::unsupported;
  }

 protected:
  std::unique_ptr<PluginInstance> make_instance(const Config& cfg) override {
    if (cfg.contains("reject")) return nullptr;
    return std::make_unique<NullInstance>();
  }
};

TEST(PluginCode, PacksTypeAndImpl) {
  PluginCode c(PluginType::sched, 7);
  EXPECT_EQ(c.type(), PluginType::sched);
  EXPECT_EQ(c.impl(), 7);
  EXPECT_EQ(c.raw, (3u << 16) | 7u);
}

TEST(Config, TypedAccessors) {
  Config c{{"iface", "3"}, {"name", "x"}, {"bad", "3x"}};
  EXPECT_EQ(c.get_int("iface"), 3);
  EXPECT_FALSE(c.get_int("bad"));
  EXPECT_FALSE(c.get_int("missing"));
  EXPECT_EQ(c.get_int_or("missing", 9), 9);
  EXPECT_EQ(c.get_or("name", "y"), "x");
  EXPECT_EQ(c.get_or("nope", "y"), "y");
  EXPECT_TRUE(c.contains("bad"));
}

TEST(Pcu, RegisterAssignsPerTypeCodes) {
  PluginControlUnit pcu;
  ASSERT_EQ(pcu.register_plugin(
                std::make_unique<TestPlugin>("a", PluginType::sched)),
            Status::ok);
  ASSERT_EQ(pcu.register_plugin(
                std::make_unique<TestPlugin>("b", PluginType::sched)),
            Status::ok);
  ASSERT_EQ(pcu.register_plugin(
                std::make_unique<TestPlugin>("c", PluginType::ipsec)),
            Status::ok);
  EXPECT_EQ(pcu.find("a")->code().impl(), 1);
  EXPECT_EQ(pcu.find("b")->code().impl(), 2);
  EXPECT_EQ(pcu.find("c")->code().impl(), 1);  // separate counter per type
  EXPECT_EQ(pcu.find(PluginCode(PluginType::sched, 2)), pcu.find("b"));
  EXPECT_EQ(pcu.plugin_names(PluginType::sched).size(), 2u);
}

TEST(Pcu, DuplicateNameRejected) {
  PluginControlUnit pcu;
  pcu.register_plugin(std::make_unique<TestPlugin>("dup"));
  EXPECT_EQ(pcu.register_plugin(std::make_unique<TestPlugin>("dup")),
            Status::already_exists);
}

TEST(Pcu, CreateFreeInstanceViaMessages) {
  PluginControlUnit pcu;
  pcu.register_plugin(std::make_unique<TestPlugin>("p"));

  PluginMsg create;
  create.kind = PluginMsg::Kind::create_instance;
  create.plugin_name = "p";
  auto r = pcu.dispatch(create);
  ASSERT_EQ(r.status, Status::ok);
  EXPECT_NE(r.instance, kNoInstance);
  EXPECT_NE(pcu.find_instance("p", r.instance), nullptr);

  PluginMsg free_msg;
  free_msg.kind = PluginMsg::Kind::free_instance;
  free_msg.plugin_name = "p";
  free_msg.instance = r.instance;
  EXPECT_EQ(pcu.dispatch(free_msg).status, Status::ok);
  EXPECT_EQ(pcu.find_instance("p", r.instance), nullptr);
  EXPECT_EQ(pcu.dispatch(free_msg).status, Status::not_found);
}

TEST(Pcu, RejectedConfigFailsCreate) {
  PluginControlUnit pcu;
  pcu.register_plugin(std::make_unique<TestPlugin>("p"));
  PluginMsg create;
  create.kind = PluginMsg::Kind::create_instance;
  create.plugin_name = "p";
  create.args.set("reject", "1");
  EXPECT_EQ(pcu.dispatch(create).status, Status::invalid_argument);
}

TEST(Pcu, CustomMessagesRouteToPluginOrInstance) {
  PluginControlUnit pcu;
  pcu.register_plugin(std::make_unique<TestPlugin>("p"));
  PluginMsg create;
  create.kind = PluginMsg::Kind::create_instance;
  create.plugin_name = "p";
  auto id = pcu.dispatch(create).instance;

  PluginMsg plugin_msg;
  plugin_msg.plugin_name = "p";
  plugin_msg.custom_name = "whoami";
  EXPECT_EQ(pcu.dispatch(plugin_msg).text, "p");

  PluginMsg inst_msg;
  inst_msg.plugin_name = "p";
  inst_msg.instance = id;
  inst_msg.custom_name = "ping";
  EXPECT_EQ(pcu.dispatch(inst_msg).text, "pong");

  PluginMsg unknown;
  unknown.plugin_name = "p";
  unknown.custom_name = "nope";
  EXPECT_EQ(pcu.dispatch(unknown).status, Status::unsupported);

  PluginMsg missing;
  missing.plugin_name = "ghost";
  EXPECT_EQ(pcu.dispatch(missing).status, Status::not_found);
}

TEST(Pcu, RegisterHooksInvoked) {
  PluginControlUnit pcu;
  pcu.register_plugin(std::make_unique<TestPlugin>("p"));
  PluginMsg create;
  create.kind = PluginMsg::Kind::create_instance;
  create.plugin_name = "p";
  auto id = pcu.dispatch(create).instance;

  std::string seen_spec;
  PluginInstance* seen_inst = nullptr;
  pcu.set_register_hook([&](PluginInstance* inst, const std::string& spec) {
    seen_inst = inst;
    seen_spec = spec;
    return Status::ok;
  });

  PluginMsg reg;
  reg.kind = PluginMsg::Kind::register_instance;
  reg.plugin_name = "p";
  reg.instance = id;
  reg.filter_spec = "<*, *, tcp, *, *, *>";
  EXPECT_EQ(pcu.dispatch(reg).status, Status::ok);
  EXPECT_EQ(seen_spec, "<*, *, tcp, *, *, *>");
  EXPECT_EQ(seen_inst, pcu.find_instance("p", id));

  // Without a deregister hook the message is unsupported.
  PluginMsg dereg;
  dereg.kind = PluginMsg::Kind::deregister_instance;
  dereg.plugin_name = "p";
  dereg.instance = id;
  EXPECT_EQ(pcu.dispatch(dereg).status, Status::unsupported);
}

TEST(Pcu, PurgeHookRunsOnFreeAndUnregister) {
  PluginControlUnit pcu;
  pcu.register_plugin(std::make_unique<TestPlugin>("p"));
  PluginMsg create;
  create.kind = PluginMsg::Kind::create_instance;
  create.plugin_name = "p";
  auto id1 = pcu.dispatch(create).instance;
  pcu.dispatch(create);

  int purged = 0;
  pcu.add_purge_hook([&](PluginInstance*) { ++purged; });

  PluginMsg free_msg;
  free_msg.kind = PluginMsg::Kind::free_instance;
  free_msg.plugin_name = "p";
  free_msg.instance = id1;
  pcu.dispatch(free_msg);
  EXPECT_EQ(purged, 1);

  // Unregistering the whole plugin purges the remaining instance.
  EXPECT_EQ(pcu.unregister_plugin("p"), Status::ok);
  EXPECT_EQ(purged, 2);
  EXPECT_EQ(pcu.find("p"), nullptr);
}

TEST(Loader, LoadUnloadLifecycle) {
  PluginLoader::register_module(
      "loadertest", [] { return std::make_unique<TestPlugin>("loadertest"); });
  PluginControlUnit pcu;
  PluginLoader loader(pcu);
  EXPECT_EQ(loader.load("nonexistent"), Status::not_found);
  ASSERT_EQ(loader.load("loadertest"), Status::ok);
  EXPECT_TRUE(loader.loaded("loadertest"));
  EXPECT_NE(pcu.find("loadertest"), nullptr);
  EXPECT_EQ(loader.load("loadertest"), Status::already_exists);
  ASSERT_EQ(loader.unload("loadertest"), Status::ok);
  EXPECT_EQ(pcu.find("loadertest"), nullptr);
  EXPECT_EQ(loader.unload("loadertest"), Status::not_found);
  // Reload after unload works (the module is still "on disk").
  EXPECT_EQ(loader.load("loadertest"), Status::ok);
}

TEST(Loader, NameMismatchRejected) {
  PluginLoader::register_module(
      "alias", [] { return std::make_unique<TestPlugin>("realname"); });
  PluginControlUnit pcu;
  PluginLoader loader(pcu);
  EXPECT_EQ(loader.load("alias"), Status::invalid_argument);
}

}  // namespace
}  // namespace rp::plugin

// Tests for the grid-of-tries 2D classifier: agreement with the linear
// reference on random two-dimensional filter sets, switch-pointer cases
// where the best filter lives in a skipped ancestor trie, and the
// O(W_src + W_dst) access bound that motivates the structure.
#include <gtest/gtest.h>

#include "aiu/grid_of_tries.hpp"
#include "netbase/memaccess.hpp"
#include "tgen/workload.hpp"

namespace rp::aiu {
namespace {

using netbase::MemAccess;
using netbase::Rng;

pkt::FlowKey key(const char* src, const char* dst) {
  return {*netbase::IpAddr::parse(src), *netbase::IpAddr::parse(dst), 17, 1, 1,
          0};
}

Filter F2(const char* src, const char* dst) {
  Filter f;
  f.src = *netbase::IpPrefix::parse(src);
  f.dst = *netbase::IpPrefix::parse(dst);
  return f;
}

TEST(GridOfTries, RejectsNon2DFilters) {
  GridOfTries t;
  EXPECT_EQ(t.insert(*Filter::parse("10.0.0.0/8 * tcp * * *"), nullptr),
            nullptr);
  EXPECT_EQ(t.insert(*Filter::parse("10.0.0.0/8 * * 80 * *"), nullptr),
            nullptr);
  EXPECT_EQ(t.insert(*Filter::parse("* * * * * 2"), nullptr), nullptr);
  EXPECT_NE(t.insert(*Filter::parse("10.0.0.0/8 * * * * *"), nullptr),
            nullptr);
  EXPECT_EQ(t.size(), 1u);
}

TEST(GridOfTries, BasicLongestMatch) {
  GridOfTries t;
  auto* a = t.insert(F2("10.0.0.0/8", "*"), nullptr);
  auto* b = t.insert(F2("10.1.0.0/16", "*"), nullptr);
  auto* c = t.insert(F2("10.1.0.0/16", "20.0.0.0/8"), nullptr);
  EXPECT_EQ(t.lookup(key("10.9.0.1", "9.9.9.9")), a);
  EXPECT_EQ(t.lookup(key("10.1.0.1", "9.9.9.9")), b);
  EXPECT_EQ(t.lookup(key("10.1.0.1", "20.1.1.1")), c);
  EXPECT_EQ(t.lookup(key("11.0.0.1", "20.1.1.1")), nullptr);
}

TEST(GridOfTries, SrcMajorSpecificity) {
  // Longer src must beat longer dst (lexicographic field order).
  GridOfTries t;
  auto* long_src = t.insert(F2("10.1.1.0/24", "*"), nullptr);
  t.insert(F2("10.0.0.0/8", "20.2.2.2"), nullptr);
  EXPECT_EQ(t.lookup(key("10.1.1.5", "20.2.2.2")), long_src);
}

TEST(GridOfTries, SwitchPointerReachesAncestorTrie) {
  // Filter in a shorter-src trie with a deeper dst must be found after the
  // walk leaves the longest-src trie.
  GridOfTries t;
  t.insert(F2("10.1.1.0/24", "20.0.0.0/8"), nullptr);
  auto* deep_dst = t.insert(F2("10.0.0.0/8", "20.3.0.0/16"), nullptr);
  // Packet matches both; src-major prefers the /24... which matches too:
  auto* hit = t.lookup(key("10.1.1.5", "20.3.1.1"));
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->filter.src.len, 24);  // /24 + dst/8 wins over /8 + dst/16
  // A packet outside the /24 finds the ancestor filter via the normal walk.
  EXPECT_EQ(t.lookup(key("10.9.9.9", "20.3.1.1")), deep_dst);
}

TEST(GridOfTries, SkippedTrieFilterStillWins) {
  // The regression the stored-filter propagation exists for: the middle
  // trie has no dst extension, so the switch pointer skips it — but its
  // filter matches and must be reported via `stored`.
  GridOfTries t;
  t.insert(F2("10.1.1.0/24", "20.0.0.0/8"), nullptr);   // visited first
  auto* mid = t.insert(F2("10.1.0.0/16", "20.0.0.0/8"), nullptr);  // skipped
  t.insert(F2("10.0.0.0/8", "20.1.0.0/16"), nullptr);   // jump target
  // Packet inside /16 but outside /24: best is `mid` (src /16 > src /8).
  EXPECT_EQ(t.lookup(key("10.1.2.3", "20.1.1.1")), mid);
}

TEST(GridOfTries, WildcardsAndFamilies) {
  GridOfTries t;
  auto* any = t.insert(F2("*", "*"), nullptr);
  auto* v6 = t.insert(F2("2001:db8::/32", "*"), nullptr);
  EXPECT_EQ(t.lookup(key("1.2.3.4", "5.6.7.8")), any);
  EXPECT_EQ(t.lookup(key("2001:db8::1", "2001::2")), v6);
  EXPECT_EQ(t.lookup(key("2002::1", "2001::2")), any);
}

TEST(GridOfTries, RemoveAndPurge) {
  GridOfTries t;
  auto* inst = reinterpret_cast<plugin::PluginInstance*>(2);
  t.insert(F2("10.0.0.0/8", "*"), inst);
  t.insert(F2("11.0.0.0/8", "*"), nullptr);
  EXPECT_EQ(t.remove(F2("11.0.0.0/8", "*")), Status::ok);
  EXPECT_EQ(t.remove(F2("11.0.0.0/8", "*")), Status::not_found);
  EXPECT_EQ(t.purge_instance(inst), 1u);
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.lookup(key("10.0.0.1", "1.1.1.1")), nullptr);
}

class GridEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GridEquivalence, AgreesWithLinearOn2DSets) {
  const std::uint64_t seed = GetParam();
  tgen::FilterSetSpec spec;
  spec.count = 150;
  spec.seed = seed;
  spec.p_wild_proto = 1.0;  // force 2D shapes
  spec.p_port_exact = 0.0;
  spec.p_port_range = 0.0;
  spec.p_wild_src = 0.25;
  spec.p_wild_dst = 0.25;
  auto filters = tgen::random_filters(spec);
  for (auto& f : filters) f.in_iface = IfaceSpec::any();

  GridOfTries grid;
  LinearFilterTable lin;
  for (const auto& f : filters) {
    ASSERT_NE(grid.insert(f, nullptr), nullptr);
    lin.insert(f, nullptr);
  }

  Rng rng(seed ^ 0x9999);
  for (int i = 0; i < 500; ++i) {
    pkt::FlowKey k = (i % 2) ? tgen::random_key(rng)
                             : tgen::matching_key(
                                   filters[rng.below(filters.size())], rng);
    const auto* g = grid.lookup(k);
    const auto* l = lin.lookup(k);
    ASSERT_EQ(g == nullptr, l == nullptr) << k.to_string();
    if (g && g != l) {
      ASSERT_TRUE(g->filter.matches(k));
      ASSERT_EQ(compare_specificity(g->filter, l->filter), 0)
          << "grid=" << g->filter.to_string()
          << " lin=" << l->filter.to_string() << " key=" << k.to_string();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GridEquivalence,
                         ::testing::Range<std::uint64_t>(1, 13));

TEST(GridOfTries, AccessBoundLinearInWidths) {
  GridOfTries t;
  tgen::FilterSetSpec spec;
  spec.count = 2000;
  spec.seed = 3;
  spec.p_wild_proto = 1.0;
  spec.p_port_exact = 0.0;
  spec.p_port_range = 0.0;
  for (auto f : tgen::random_filters(spec)) {
    f.in_iface = IfaceSpec::any();
    ASSERT_NE(t.insert(f, nullptr), nullptr);
  }
  t.prepare();
  Rng rng(4);
  for (int i = 0; i < 500; ++i) {
    MemAccess::reset();
    t.lookup(tgen::random_key(rng));
    // One access per visited node: at most W_src + W_dst + start.
    EXPECT_LE(MemAccess::total(), 32u + 32u + 2u);
  }
}

}  // namespace
}  // namespace rp::aiu

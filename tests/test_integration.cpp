// Integration tests across the whole system: the EISR router configured via
// pmgr with multiple plugin types active simultaneously, dynamic loading /
// unloading while traffic is in flight (the paper's headline capability),
// a VPN built from two routers with ESP plugins, and end-to-end DRR
// link-sharing through the event loop.
#include <gtest/gtest.h>

#include <map>

#include "core/router.hpp"
#include "mgmt/pmgr.hpp"
#include "mgmt/register_all.hpp"
#include "mgmt/rplib.hpp"
#include "pkt/builder.hpp"
#include "sched/drr.hpp"
#include "tgen/workload.hpp"

namespace rp {
namespace {

using netbase::SimTime;
using netbase::Status;

pkt::PacketPtr udp(std::uint16_t sport, std::uint8_t src = 1,
                   std::size_t payload = 472) {
  pkt::UdpSpec s;
  s.src = netbase::IpAddr(netbase::Ipv4Addr(10, 0, 0, src));
  s.dst = netbase::IpAddr(netbase::Ipv4Addr(20, 0, 0, 1));
  s.sport = sport;
  s.dport = 80;
  s.payload_len = payload;
  return pkt::build_udp(s);
}

TEST(Integration, MultiPluginPipeline) {
  // stats + firewall + DRR all active on distinct (and overlapping) flows.
  core::RouterKernel k;
  mgmt::register_builtin_modules();
  k.add_interface("in0");
  auto& out = k.add_interface("out0");
  mgmt::RouterPluginLib lib(k);
  mgmt::PluginManager pmgr(lib);

  auto r = pmgr.run_script(R"(
route add 20.0.0.0/8 if1
modload stats
modload firewall
modload drr
create stats mode=bytes
bind stats 1 <*, *, *, *, *, *>
create firewall policy=deny
bind firewall 1 <10.0.0.99, *, *, *, *, *>
create drr
attach drr 1 if1
)");
  ASSERT_TRUE(r.ok()) << r.text;

  std::size_t delivered = 0;
  out.set_tx_sink([&](pkt::PacketPtr, SimTime) { ++delivered; });

  for (int i = 0; i < 10; ++i) k.inject(i * 1000, 0, udp(1, 1));
  for (int i = 0; i < 5; ++i) k.inject(i * 1000 + 500, 0, udp(2, 99));
  k.run_to_completion();

  EXPECT_EQ(delivered, 10u);
  EXPECT_EQ(k.core().counters().dropped(core::DropReason::policy), 5u);
  // The stats instance saw every packet (it runs before the firewall drop?
  // gate order is ipopt, ipsec, firewall, stats — so stats sees only the
  // forwarded ones).
  auto rep = pmgr.exec("msg stats 1 report");
  ASSERT_TRUE(rep.ok());
  EXPECT_NE(rep.text.find("total_packets=10"), std::string::npos);
}

TEST(Integration, DynamicLoadUnloadUnderTraffic) {
  core::RouterKernel k;
  mgmt::register_builtin_modules();
  k.add_interface("in0");
  k.add_interface("out0");
  mgmt::RouterPluginLib lib(k);
  mgmt::PluginManager pmgr(lib);
  ASSERT_TRUE(pmgr.exec("route add 20.0.0.0/8 if1").ok());

  // Phase 1: plain forwarding.
  k.inject(0, 0, udp(1));
  k.run_to_completion();
  EXPECT_EQ(k.core().counters().forwarded, 1u);

  // Phase 2: hot-load a deny firewall for this very flow; cached flow state
  // must be invalidated so the next packet hits the new policy.
  ASSERT_TRUE(pmgr.exec("modload firewall").ok());
  ASSERT_TRUE(pmgr.exec("create firewall policy=deny").ok());
  ASSERT_TRUE(pmgr.exec("bind firewall 1 <10.0.0.1, *, *, *, *, *>").ok());
  k.inject(0, 0, udp(1));
  k.run_to_completion();
  EXPECT_EQ(k.core().counters().dropped(core::DropReason::policy), 1u);

  // Phase 3: unload the module entirely; traffic flows again and no
  // dangling references remain.
  ASSERT_TRUE(pmgr.exec("modunload firewall").ok());
  EXPECT_EQ(k.aiu().filter_table(plugin::PluginType::firewall)->size(), 0u);
  k.inject(0, 0, udp(1));
  k.run_to_completion();
  EXPECT_EQ(k.core().counters().forwarded, 2u);

  // Phase 4: reload works.
  EXPECT_TRUE(pmgr.exec("modload firewall").ok());
}

TEST(Integration, DrrSharesLinkUnderSaturation) {
  core::RouterKernel k;
  mgmt::register_builtin_modules();
  k.add_interface("in0");
  auto& out = k.interfaces().add("out0", 8'000'000);  // 8 Mb/s bottleneck
  mgmt::RouterPluginLib lib(k);
  mgmt::PluginManager pmgr(lib);
  auto r = pmgr.run_script(R"(
route add 20.0.0.0/8 if1
modload drr
create drr quantum=500
attach drr 1 if1
msg drr 1 setweight filter=<10.0.0.3,*,udp,*,*,*> weight=2
)");
  ASSERT_TRUE(r.ok()) << r.text;

  std::map<std::uint8_t, std::size_t> bytes;  // by source octet
  out.set_tx_sink([&](pkt::PacketPtr p, SimTime) {
    bytes[static_cast<std::uint8_t>(p->key.src.v4().v & 0xff)] += p->size();
  });

  // Three sources each offering ~8 Mb/s (3x overload): 500-byte packets
  // every 500 us.
  for (std::uint8_t src = 1; src <= 3; ++src) {
    for (SimTime t = 0; t < 300 * netbase::kNsPerMs; t += 500'000)
      k.inject(t, 0, udp(src, src));
  }
  k.run_until(300 * netbase::kNsPerMs);

  ASSERT_GT(bytes[1], 0u);
  ASSERT_GT(bytes[2], 0u);
  ASSERT_GT(bytes[3], 0u);
  // Equal-weight flows equal; weight-2 flow gets twice the service.
  EXPECT_NEAR(static_cast<double>(bytes[2]) / bytes[1], 1.0, 0.15);
  EXPECT_NEAR(static_cast<double>(bytes[3]) / bytes[1], 2.0, 0.4);
}

TEST(Integration, VpnTunnelBetweenTwoRouters) {
  mgmt::register_builtin_modules();

  // Router A encrypts 10.0.0.0/8 -> 20.0.0.0/8 traffic; router B decrypts.
  auto setup = [](core::RouterKernel& k, const char* mode) {
    k.add_interface("in0");
    k.add_interface("out0");
    mgmt::RouterPluginLib lib(k);
    mgmt::PluginManager pmgr(lib);
    auto r = pmgr.run_script(std::string(R"(
route add 20.0.0.0/8 if1
modload ipsec
msg ipsec - addsa spi=9 auth_key=00112233445566778899aabbccddeeff enc_key=000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f
)") + "create ipsec mode=" + mode + " spi=9\n" +
                             "bind ipsec 1 <10.0.0.0/8, *, *, *, *, *>\n");
    ASSERT_TRUE(r.ok()) << r.text;
  };

  core::RouterKernel a, b;
  setup(a, "esp-encrypt");
  setup(b, "esp-decrypt");

  // Chain: A's out0 feeds B's in0.
  std::vector<pkt::PacketPtr> delivered;
  a.interfaces().by_index(1)->set_tx_sink(
      [&](pkt::PacketPtr p, SimTime t) {
        // Verify the wire format is ESP.
        EXPECT_EQ(p->data()[9], 50);
        // Re-inject into router B as a fresh arrival.
        auto fresh = pkt::make_packet(p->size());
        std::memcpy(fresh->data(), p->data(), p->size());
        b.inject(t, 0, std::move(fresh));
      });
  b.interfaces().by_index(1)->set_tx_sink(
      [&](pkt::PacketPtr p, SimTime) { delivered.push_back(std::move(p)); });

  auto original = udp(1234, 1, 64);
  auto want = pkt::clone_packet(*original);
  a.inject(0, 0, std::move(original));
  a.run_to_completion();
  b.run_to_completion();

  ASSERT_EQ(delivered.size(), 1u);
  // Inner packet restored; TTL decremented twice (two routers).
  auto& got = *delivered[0];
  EXPECT_EQ(got.size(), want->size());
  EXPECT_EQ(got.data()[9], 17);  // UDP again
  EXPECT_EQ(got.data()[8], want->data()[8] - 2);
  // Payload identical.
  EXPECT_EQ(0, std::memcmp(got.data() + 28, want->data() + 28,
                           got.size() - 28));
}

TEST(Integration, VpnDropsTamperedPackets) {
  mgmt::register_builtin_modules();
  core::RouterKernel b;
  b.add_interface("in0");
  b.add_interface("out0");
  mgmt::RouterPluginLib lib(b);
  mgmt::PluginManager pmgr(lib);
  auto r = pmgr.run_script(R"(
route add 20.0.0.0/8 if1
modload ipsec
msg ipsec - addsa spi=9 auth_key=00112233445566778899aabbccddeeff enc_key=000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f
create ipsec mode=esp-decrypt spi=9
bind ipsec 1 <10.0.0.0/8, *, *, *, *, *>
)");
  ASSERT_TRUE(r.ok()) << r.text;

  // A plain (never encrypted) packet arriving at the decryptor is dropped
  // as malformed ESP.
  b.inject(0, 0, udp(1));
  b.run_to_completion();
  EXPECT_EQ(b.core().counters().dropped(core::DropReason::policy), 1u);
}

TEST(Integration, FlowCacheStatsAcrossBursts) {
  core::RouterKernel k;
  mgmt::register_builtin_modules();
  k.add_interface("in0");
  k.add_interface("out0");
  mgmt::RouterPluginLib lib(k);
  mgmt::PluginManager pmgr(lib);
  pmgr.run_script(
      "route add 20.0.0.0/8 if1\nmodload stats\ncreate stats\nbind stats 1 "
      "<*, *, *, *, *, *>");

  // 10 flows x 20 packets: 10 misses (first packets), 190 hits.
  tgen::MixSpec mix;
  mix.n_flows = 10;
  mix.n_packets = 200;
  mix.zipf_s = 0;
  mix.burst_len = 20;
  mix.seed = 3;
  for (auto& a : tgen::flow_mix(mix)) k.inject(a.t, a.iface, std::move(a.p));
  // flow_mix generates random destinations: route everything.
  pmgr.exec("route add 0.0.0.0/0 if1");
  k.run_to_completion();

  const auto& fs = k.aiu().flow_table().stats();
  // One miss per distinct flow (at most 10), everything else cache hits.
  EXPECT_EQ(fs.inserts, fs.misses);
  EXPECT_LE(fs.misses, 10u);
  EXPECT_GE(fs.misses, 2u);
  EXPECT_EQ(fs.hits, 200u - fs.misses);
}

}  // namespace
}  // namespace rp

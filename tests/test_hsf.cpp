// Tests for the Hierarchical Scheduling Framework extension (paper §6/§8
// future work): per-flow DRR queueing inside an H-FSC leaf. With the
// original FIFO leaves, flows sharing a leaf get no isolation ("may result
// in unfair service to different flows"); with qdisc=drr they share the
// leaf's bandwidth fairly.
#include <gtest/gtest.h>

#include <map>

#include "pkt/builder.hpp"
#include "sched/hfsc.hpp"

namespace rp::sched {
namespace {

using netbase::Status;

pkt::PacketPtr flow_pkt(std::uint16_t sport, std::size_t payload = 472) {
  pkt::UdpSpec s;
  s.src = netbase::IpAddr(netbase::Ipv4Addr(10, 0, 0, 1));
  s.dst = netbase::IpAddr(netbase::Ipv4Addr(20, 0, 0, 1));
  s.sport = sport;
  s.dport = 80;
  s.payload_len = payload;
  return pkt::build_udp(s);
}

// Backlogs two flows into one leaf unevenly (flow 1 floods 9:1), serves 100
// packets, and returns per-flow service.
std::map<std::uint16_t, int> run_shared_leaf(const char* qdisc) {
  HfscInstance h({8'000'000, 4096});
  plugin::PluginMsg add;
  add.custom_name = "addclass";
  add.args.set("name", "shared");
  add.args.set("ls_m1", "8000000");
  add.args.set("ls_m2", "8000000");
  add.args.set("qdisc", qdisc);
  add.args.set("drr_quantum", "500");
  plugin::PluginReply reply;
  EXPECT_EQ(h.handle_message(add, reply), Status::ok);
  EXPECT_EQ(h.bind_class(*aiu::Filter::parse("* * udp * * *"), "shared"),
            Status::ok);

  // Flood: 9 packets of flow 1 for each packet of flow 2.
  for (int r = 0; r < 60; ++r) {
    for (int i = 0; i < 9; ++i) EXPECT_TRUE(h.enqueue(flow_pkt(1), nullptr, 0));
    EXPECT_TRUE(h.enqueue(flow_pkt(2), nullptr, 0));
  }
  std::map<std::uint16_t, int> served;
  for (int i = 0; i < 100; ++i) {
    auto p = h.dequeue(i * 1000);
    if (!p) break;
    ++served[p->key.sport];
  }
  return served;
}

TEST(Hsf, FifoLeafLetsFloodDominate) {
  auto served = run_shared_leaf("fifo");
  // FIFO: service proportional to arrival share (~90% flow 1).
  EXPECT_GE(served[1], 80);
  EXPECT_LE(served[2], 20);
}

TEST(Hsf, DrrLeafRestoresPerFlowFairness) {
  auto served = run_shared_leaf("drr");
  // Per-flow DRR in the leaf: both flows served equally while both are
  // backlogged.
  EXPECT_NEAR(served[1], served[2], 10);
  EXPECT_GE(served[2], 40);
}

TEST(Hsf, DrrLeafDrainsCompletely) {
  HfscInstance h({8'000'000, 4096});
  ASSERT_EQ(h.add_class("l", "root", {}, {1e6, 0, 1e6}, {},
                        HfscInstance::LeafQdisc::drr, 500),
            Status::ok);
  ASSERT_EQ(h.bind_class(*aiu::Filter::parse("* * udp * * *"), "l"),
            Status::ok);
  for (std::uint16_t f = 1; f <= 3; ++f)
    for (int i = 0; i < 7; ++i) ASSERT_TRUE(h.enqueue(flow_pkt(f), nullptr, 0));
  int n = 0;
  while (auto p = h.dequeue(n * 1000)) ++n;
  EXPECT_EQ(n, 21);
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.backlog_packets(), 0u);
}

TEST(Hsf, BadQdiscRejected) {
  HfscInstance h({8'000'000, 64});
  plugin::PluginMsg add;
  add.custom_name = "addclass";
  add.args.set("name", "x");
  add.args.set("ls_m2", "1000000");
  add.args.set("qdisc", "wfq");
  plugin::PluginReply reply;
  EXPECT_EQ(h.handle_message(add, reply), Status::invalid_argument);
}

TEST(Hsf, MixedLeavesCoexist) {
  // One FIFO leaf and one DRR leaf under the same parent, both active.
  HfscInstance h({8'000'000, 4096});
  ASSERT_EQ(h.add_class("fifoL", "root", {}, {4e5, 0, 4e5}, {}), Status::ok);
  ASSERT_EQ(h.add_class("drrL", "root", {}, {4e5, 0, 4e5}, {},
                        HfscInstance::LeafQdisc::drr, 500),
            Status::ok);
  ASSERT_EQ(h.bind_class(*aiu::Filter::parse("* * udp 1 * *"), "fifoL"),
            Status::ok);
  ASSERT_EQ(h.bind_class(*aiu::Filter::parse("* * udp 2 * *"), "drrL"),
            Status::ok);
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(h.enqueue(flow_pkt(1), nullptr, 0));
    EXPECT_TRUE(h.enqueue(flow_pkt(2), nullptr, 0));
  }
  std::map<std::uint16_t, int> served;
  for (int i = 0; i < 40; ++i) {
    auto p = h.dequeue(i * 1000);
    ASSERT_NE(p, nullptr);
    ++served[p->key.sport];
  }
  EXPECT_EQ(served[1], 20);
  EXPECT_EQ(served[2], 20);
}

}  // namespace
}  // namespace rp::sched

// Tests for the stateful L7 inspection subsystem (PR 7): the Aho-Corasick
// multi-pattern matcher, the per-direction TCP stream reassembler, the HTTP
// request classifier, the L7Engine verdict cache + flow offload through a
// full RouterKernel, the pmgr `l7` control surface, and the DirHandle
// exactly-once lifecycle audit across every flow-table removal path
// (expiry sweep, LRU recycle, explicit remove, clear, purge, filter flip,
// offload, engine-side eviction, and stack teardown). The adversarial
// differential variants live in test_l7_fuzz.cpp (L7Fuzz / L7FuzzShard).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "aiu/flow_table.hpp"
#include "core/ip_core.hpp"
#include "core/router.hpp"
#include "l7/aho_corasick.hpp"
#include "l7/http_parser.hpp"
#include "l7/l7_plugins.hpp"
#include "l7/reassembler.hpp"
#include "mgmt/pmgr.hpp"
#include "mgmt/register_all.hpp"
#include "mgmt/rplib.hpp"
#include "pkt/headers.hpp"
#include "tgen/tcp_stream.hpp"

namespace rp::l7 {
namespace {

using netbase::Status;
using plugin::PluginType;

// ---------------------------------------------------------------------------
// Aho-Corasick

struct Hit {
  std::uint32_t id;
  std::uint64_t end;
  friend bool operator==(const Hit&, const Hit&) = default;
  friend bool operator<(const Hit& a, const Hit& b) {
    return std::pair(a.end, a.id) < std::pair(b.end, b.id);
  }
};

std::vector<Hit> scan_all(const AhoCorasick& ac, std::string_view text) {
  std::vector<Hit> hits;
  ac.scan(AhoCorasick::kRoot,
          reinterpret_cast<const std::uint8_t*>(text.data()), text.size(), 0,
          [&](std::uint32_t id, std::uint64_t end) {
            hits.push_back({id, end});
          });
  std::sort(hits.begin(), hits.end());
  return hits;
}

TEST(AhoCorasick, ClassicOverlappingPatternSet) {
  AhoCorasick ac;
  const std::uint32_t he = ac.add("he");
  const std::uint32_t she = ac.add("she");
  const std::uint32_t his = ac.add("his");
  const std::uint32_t hers = ac.add("hers");
  ac.build();
  EXPECT_EQ(ac.pattern_count(), 4u);
  EXPECT_EQ(ac.generation(), 1u);

  // "ushers": she ends at 4, he (failure closure of she) at 4, hers at 6.
  std::vector<Hit> expect = {{he, 4}, {she, 4}, {hers, 6}};
  std::sort(expect.begin(), expect.end());
  EXPECT_EQ(scan_all(ac, "ushers"), expect);
  EXPECT_EQ(scan_all(ac, "this"), std::vector<Hit>({{his, 4}}));
  EXPECT_EQ(scan_all(ac, "xyz"), std::vector<Hit>());
}

TEST(AhoCorasick, StreamingStateCarriesAcrossChunks) {
  AhoCorasick ac;
  ac.add("needle");
  ac.build();
  const std::string text = "say: nee" + std::string("dle here");
  std::vector<Hit> hits;
  AhoCorasick::State s = AhoCorasick::kRoot;
  // Feed byte-at-a-time with absolute base offsets: the match must fire
  // exactly once, at the absolute stream offset, despite the split.
  for (std::size_t i = 0; i < text.size(); ++i)
    s = ac.scan(s, reinterpret_cast<const std::uint8_t*>(text.data()) + i, 1,
                i, [&](std::uint32_t id, std::uint64_t end) {
                  hits.push_back({id, end});
                });
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], (Hit{0, 11}));  // "needle" ends at offset 11
}

TEST(AhoCorasick, EmptyAndRebuiltRuleSets) {
  AhoCorasick ac;
  ac.build();  // zero patterns: scan never matches, never crashes
  EXPECT_EQ(scan_all(ac, "anything"), std::vector<Hit>());
  EXPECT_EQ(ac.generation(), 1u);

  ac.add("abc");
  ac.build();
  EXPECT_EQ(ac.generation(), 2u);
  EXPECT_EQ(scan_all(ac, "xxabcxx").size(), 1u);

  ac.clear();
  ac.add("xx");
  ac.build();
  EXPECT_EQ(ac.generation(), 3u);
  // Old rule gone, new rule matches (twice in "xxx": ends 2 and 3).
  EXPECT_EQ(scan_all(ac, "abc"), std::vector<Hit>());
  EXPECT_EQ(scan_all(ac, "xxx"), std::vector<Hit>({{0, 2}, {0, 3}}));
}

TEST(AhoCorasick, ParsePatternsEscapes) {
  std::vector<std::string> out;
  ASSERT_TRUE(parse_patterns("abc,de", out));
  EXPECT_EQ(out, std::vector<std::string>({"abc", "de"}));

  out.clear();
  ASSERT_TRUE(parse_patterns("a\\x00b,\\xff,\\x2c,\\x5c", out));
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out[0], std::string("a\0b", 3));
  EXPECT_EQ(out[1], "\xff");
  EXPECT_EQ(out[2], ",");
  EXPECT_EQ(out[3], "\\");

  // Malformed: empty elements, trailing comma, broken escapes.
  for (const char* bad : {"", "a,,b", "a,", ",a", "\\xg1", "a\\x1", "a\\y00"}) {
    out.clear();
    EXPECT_FALSE(parse_patterns(bad, out)) << bad;
  }

  // format_pattern renders separators and non-printables as escapes.
  EXPECT_EQ(format_pattern("a,b"), "a\\x2cb");
  EXPECT_EQ(format_pattern(std::string("\x01", 1)), "\\x01");
}

// ---------------------------------------------------------------------------
// StreamReassembler

struct Sink {
  std::vector<std::uint8_t> bytes;
  std::uint64_t next{0};
  bool contiguous{true};

  auto fn() {
    return [this](const std::uint8_t* d, std::size_t n, std::uint64_t off) {
      if (off != next) contiguous = false;
      next = off + n;
      for (std::size_t i = 0; i < n; ++i) bytes.push_back(d[i]);
    };
  }
  std::string str() const { return {bytes.begin(), bytes.end()}; }
};

const std::uint8_t* u8(const char* s) {
  return reinterpret_cast<const std::uint8_t*>(s);
}

TEST(Reassembler, InOrderDelivery) {
  StreamReassembler rs(1024);
  Sink sink;
  EXPECT_TRUE(rs.segment(100, u8("hello "), 6, sink.fn()));
  EXPECT_TRUE(rs.segment(106, u8("world"), 5, sink.fn()));
  EXPECT_EQ(sink.str(), "hello world");
  EXPECT_TRUE(sink.contiguous);
  EXPECT_EQ(rs.delivered(), 11u);
  EXPECT_EQ(rs.stats().buffered_bytes, 0u);
  EXPECT_EQ(rs.stats().ooo_segments, 0u);
}

TEST(Reassembler, OutOfOrderBuffersAndDrains) {
  StreamReassembler rs(1024);
  Sink sink;
  rs.on_syn(99);  // seq 100 == stream offset 0
  // Arrivals: [6,11) [16,20) [0,6) [11,16) — two gaps filled in turn.
  EXPECT_TRUE(rs.segment(106, u8("world"), 5, sink.fn()));
  EXPECT_TRUE(rs.segment(116, u8("gain"), 4, sink.fn()));
  EXPECT_EQ(sink.bytes.size(), 0u);
  EXPECT_EQ(rs.stats().buffered_bytes, 9u);
  EXPECT_EQ(rs.stats().ooo_segments, 2u);

  EXPECT_TRUE(rs.segment(100, u8("hello "), 6, sink.fn()));
  EXPECT_EQ(sink.str(), "hello world");  // first gap closed, second held
  EXPECT_TRUE(rs.segment(111, u8(" off "), 5, sink.fn()));
  EXPECT_EQ(sink.str(), "hello world off gain");
  EXPECT_TRUE(sink.contiguous);
  EXPECT_EQ(rs.stats().buffered_bytes, 0u);
}

TEST(Reassembler, FirstWinsAgainstDeliveredWatermark) {
  StreamReassembler rs(1024);
  Sink sink;
  EXPECT_TRUE(rs.segment(100, u8("trueDATA"), 8, sink.fn()));
  // Full retransmit with different content: every byte already delivered,
  // so the rewrite is discarded wholesale.
  EXPECT_TRUE(rs.segment(100, u8("EVILDATA"), 8, sink.fn()));
  EXPECT_EQ(sink.str(), "trueDATA");
  EXPECT_EQ(rs.stats().trimmed_bytes, 8u);
  // Partial overlap: the overlapping prefix is trimmed, the novel suffix
  // (never seen before) is delivered — its first copy is this one.
  EXPECT_TRUE(rs.segment(104, u8("DATAmore"), 8, sink.fn()));
  EXPECT_EQ(sink.str(), "trueDATAmore");
  EXPECT_EQ(rs.stats().trimmed_bytes, 12u);
  EXPECT_TRUE(sink.contiguous);
}

TEST(Reassembler, FirstWinsAgainstBufferedPieces) {
  StreamReassembler rs(1024);
  Sink sink;
  rs.on_syn(99);  // seq 100 == stream offset 0
  // Buffer a true out-of-order piece at [10,16).
  EXPECT_TRUE(rs.segment(110, u8("MIDDLE"), 6, sink.fn()));
  // A later segment spanning [5,21) with garbage in the middle: the
  // buffered piece wins its range, only the flanks survive.
  EXPECT_TRUE(rs.segment(105, u8("lhs..XXXXXX..rhs"), 16, sink.fn()));
  EXPECT_EQ(rs.stats().buffered_bytes, 16u);  // [5,10) + [10,16) + [16,21)
  EXPECT_EQ(rs.stats().trimmed_bytes, 6u);
  // Close the head gap; everything drains in offset order, garbage gone.
  EXPECT_TRUE(rs.segment(100, u8("head!"), 5, sink.fn()));
  EXPECT_EQ(sink.str(), "head!lhs..MIDDLE..rhs");
  EXPECT_TRUE(sink.contiguous);
  EXPECT_EQ(rs.stats().buffered_bytes, 0u);
}

// Regression (review): an *in-order* segment spanning an already-buffered
// out-of-order piece must not rewrite it. This is the overlap-rewrite IDS
// evasion with misaligned boundaries: the OOO piece carries the first
// (true) copy, a later in-order segment spans it with different bytes —
// only the flanks of the spanning copy are new.
TEST(Reassembler, InOrderSegmentSpanningBufferedPieceIsClipped) {
  StreamReassembler rs(1024);
  Sink sink;
  rs.on_syn(99);  // seq 100 == stream offset 0
  // First copy of [10,16) arrives out of order.
  EXPECT_TRUE(rs.segment(110, u8("ATTACK"), 6, sink.fn()));
  EXPECT_EQ(sink.bytes.size(), 0u);
  // In-order [0,20): true head [0,10), a rewrite of [10,16), novel tail.
  EXPECT_TRUE(rs.segment(100, u8("0123456789cover!tail"), 20, sink.fn()));
  EXPECT_EQ(sink.str(), "0123456789ATTACKtail");
  EXPECT_TRUE(sink.contiguous);
  EXPECT_EQ(rs.delivered(), 20u);
  EXPECT_EQ(rs.stats().trimmed_bytes, 6u);
  EXPECT_EQ(rs.stats().buffered_bytes, 0u);
}

// Same evasion through several buffered pieces at once: the spanning
// segment fills each gap from its own bytes but every buffered range keeps
// its first-arrived content.
TEST(Reassembler, InOrderSegmentSpanningMultiplePiecesIsClipped) {
  StreamReassembler rs(1024);
  Sink sink;
  rs.on_syn(99);
  EXPECT_TRUE(rs.segment(104, u8("EE"), 2, sink.fn()));  // [4,6)
  EXPECT_TRUE(rs.segment(109, u8("NN"), 2, sink.fn()));  // [9,11)
  EXPECT_TRUE(rs.segment(100, u8("abcdxxghixxlmn"), 14, sink.fn()));
  EXPECT_EQ(sink.str(), "abcdEEghiNNlmn");
  EXPECT_TRUE(sink.contiguous);
  EXPECT_EQ(rs.stats().trimmed_bytes, 4u);
  EXPECT_EQ(rs.stats().buffered_bytes, 0u);
}

TEST(Reassembler, BufferedPieceStraddlingWatermarkIsClipped) {
  StreamReassembler rs(1024);
  Sink sink;
  rs.on_syn(99);  // seq 100 == stream offset 0
  // Buffer [5,15), then deliver [0,10): the drain must skip the already-
  // delivered half of the buffered piece and emit only [10,15).
  EXPECT_TRUE(rs.segment(105, u8("5678901234"), 10, sink.fn()));
  EXPECT_TRUE(rs.segment(100, u8("0123456789"), 10, sink.fn()));
  EXPECT_EQ(sink.str(), "012345678901234");
  EXPECT_TRUE(sink.contiguous);
  EXPECT_EQ(rs.delivered(), 15u);
  EXPECT_EQ(rs.stats().trimmed_bytes, 5u);
}

TEST(Reassembler, SynConsumesOneSequenceNumber) {
  StreamReassembler rs(1024);
  Sink sink;
  rs.on_syn(1000);
  rs.on_syn(1000);  // retransmitted SYN: idempotent
  rs.on_syn(4242);  // different ISN after sync: ignored
  EXPECT_TRUE(rs.segment(1001, u8("abc"), 3, sink.fn()));
  EXPECT_EQ(sink.str(), "abc");
  EXPECT_EQ(sink.next, 3u);  // first payload byte is stream offset 0
}

TEST(Reassembler, MidStreamPickupSyncsOnFirstSegment) {
  StreamReassembler rs(1024);
  Sink sink;
  EXPECT_TRUE(rs.segment(555000, u8("pickup"), 6, sink.fn()));
  EXPECT_EQ(sink.str(), "pickup");
  EXPECT_TRUE(rs.stats().synced);
  EXPECT_TRUE(rs.segment(555006, u8(" later"), 6, sink.fn()));
  EXPECT_EQ(sink.str(), "pickup later");
}

TEST(Reassembler, SequenceNumberWraparound) {
  StreamReassembler rs(1024);
  Sink sink;
  const std::uint32_t base = 0xFFFFFFFAu;  // 6 bytes below the wrap
  rs.on_syn(base - 1);                     // payload starts at `base`
  EXPECT_TRUE(rs.segment(base, u8("abcdef"), 6, sink.fn()));  // ends at 0
  EXPECT_TRUE(rs.segment(0, u8("ghij"), 4, sink.fn()));       // post-wrap
  EXPECT_EQ(sink.str(), "abcdefghij");
  EXPECT_TRUE(sink.contiguous);
  EXPECT_EQ(rs.delivered(), 10u);
}

// Regression (review): stream offsets are unwrapped to 64 bits, so a
// direction carrying 4 GiB+ keeps delivering across the sequence-number
// wrap instead of silently trimming everything after it (a fail-open on
// long-lived flows with inspect_limit=0).
TEST(Reassembler, MultiGigabyteStreamSurvivesSequenceWrap) {
  StreamReassembler rs(1024);
  std::uint64_t delivered = 0;
  bool contiguous = true;
  auto count = [&](const std::uint8_t*, std::size_t n, std::uint64_t off) {
    if (off != delivered) contiguous = false;
    delivered += n;
  };
  const std::uint32_t isn = 0xFFFF0000u;  // the seq space wraps almost at once
  rs.on_syn(isn);
  std::vector<std::uint8_t> chunk(1 << 20, 0xab);
  const std::uint64_t total = 5ull << 30;  // 5 GiB > one full seq cycle
  for (std::uint64_t off = 0; off < total; off += chunk.size()) {
    const std::uint32_t seq = static_cast<std::uint32_t>(isn + 1 + off);
    ASSERT_TRUE(rs.segment(seq, chunk.data(), chunk.size(), count));
  }
  EXPECT_EQ(rs.delivered(), total);
  EXPECT_EQ(delivered, total);
  EXPECT_TRUE(contiguous);
  EXPECT_FALSE(rs.stats().overflowed);
  // A late retransmit from a pre-wrap sequence trims below the watermark
  // instead of buffering ~4 GiB in the future.
  ASSERT_TRUE(rs.segment(isn + 1 + 1000, chunk.data(), 64, count));
  EXPECT_EQ(rs.stats().buffered_bytes, 0u);
  EXPECT_EQ(rs.stats().trimmed_bytes, 64u);
}

// Regression (review): a reordered handshake SYN arriving after its data
// forced a mid-stream sync. Pre-base bytes mapped to ~4 GiB future offsets
// must not sit in the out-of-order buffer until eviction.
TEST(Reassembler, LateSynEvictsImplausiblePreBasePieces) {
  StreamReassembler rs(1024);
  Sink sink;
  // Data outran the SYN: the provisional base anchors at seq 200.
  EXPECT_TRUE(rs.segment(200, u8("anchor"), 6, sink.fn()));
  // Bytes from before the provisional base buffer at an implausible offset.
  EXPECT_TRUE(rs.segment(150, u8("early"), 5, sink.fn()));
  EXPECT_EQ(rs.stats().buffered_bytes, 5u);
  rs.on_syn(99);  // the true ISN: first payload byte is seq 100
  EXPECT_EQ(rs.stats().buffered_bytes, 0u);  // stranded piece evicted
  EXPECT_EQ(rs.stats().trimmed_bytes, 5u);
  // Delivery continues from the provisional base.
  EXPECT_TRUE(rs.segment(206, u8(" next"), 5, sink.fn()));
  EXPECT_EQ(sink.str(), "anchor next");
  EXPECT_TRUE(sink.contiguous);
}

// When the provisional sync came from a zero-length probe, nothing was
// numbered yet, so the late SYN's ISN is adopted outright and offset 0
// lands on the true first payload byte.
TEST(Reassembler, LateSynAfterEmptySegmentSyncAdoptsIsn) {
  StreamReassembler rs(1024);
  Sink sink;
  EXPECT_TRUE(rs.segment(999, nullptr, 0, sink.fn()));  // keepalive probe
  EXPECT_TRUE(rs.stats().synced);
  rs.on_syn(999);  // first payload byte is seq 1000
  EXPECT_TRUE(rs.segment(1000, u8("abc"), 3, sink.fn()));
  EXPECT_EQ(sink.str(), "abc");
  EXPECT_EQ(sink.next, 3u);  // delivered at offset 0, not buffered at 1
}

TEST(Reassembler, BudgetOverflowFailsOpen) {
  StreamReassembler rs(8);  // tiny out-of-order budget
  Sink sink;
  rs.on_syn(99);  // seq 100 == stream offset 0
  EXPECT_TRUE(rs.segment(108, u8("12345678"), 8, sink.fn()));  // fills it
  EXPECT_EQ(rs.stats().buffered_bytes, 8u);
  // One more out-of-order byte blows the budget: overflow, buffers freed,
  // and the direction stops delivering.
  EXPECT_FALSE(rs.segment(120, u8("x"), 1, sink.fn()));
  EXPECT_TRUE(rs.stats().overflowed);
  EXPECT_EQ(rs.stats().buffered_bytes, 0u);
  EXPECT_FALSE(rs.segment(100, u8("ignored!"), 8, sink.fn()));
  EXPECT_EQ(sink.bytes.size(), 0u);
}

// ---------------------------------------------------------------------------
// HttpParser

TEST(HttpParser, ParsesRequestByteAtATime) {
  const std::string req =
      "GET /index.html HTTP/1.1\r\nHost: example.com\r\n"
      "User-Agent: rp-test\r\nX-Extra: 1\r\n\r\n";
  HttpParser hp;
  for (char c : req) {
    const bool wants_more = hp.feed(reinterpret_cast<const std::uint8_t*>(&c),
                                    1);
    if (hp.done()) {
      EXPECT_FALSE(wants_more);
    }
  }
  EXPECT_TRUE(hp.done());
  EXPECT_EQ(hp.method(), "GET");
  EXPECT_EQ(hp.target(), "/index.html");
  EXPECT_EQ(hp.version(), "HTTP/1.1");
  EXPECT_EQ(hp.host(), "example.com");
  EXPECT_EQ(hp.user_agent(), "rp-test");
  EXPECT_EQ(hp.header_count(), 3u);
}

TEST(HttpParser, RejectsNonHttp) {
  HttpParser hp;
  const std::string junk = "\x16\x03\x01 not http at all\n";
  hp.feed(reinterpret_cast<const std::uint8_t*>(junk.data()), junk.size());
  EXPECT_EQ(hp.state(), HttpParser::State::not_http);

  HttpParser hp2;  // over-long first line, no newline ever
  std::vector<std::uint8_t> line(HttpParser::kMaxLine + 10, 'A');
  EXPECT_FALSE(hp2.feed(line.data(), line.size()));
  EXPECT_EQ(hp2.state(), HttpParser::State::not_http);
}

TEST(HttpParser, ToleratesLeadingCrlf) {
  const std::string req = "\r\nPOST /s HTTP/1.0\r\nHOST: UP.example\r\n\r\n";
  HttpParser hp;
  hp.feed(reinterpret_cast<const std::uint8_t*>(req.data()), req.size());
  EXPECT_TRUE(hp.done());
  EXPECT_EQ(hp.method(), "POST");
  EXPECT_EQ(hp.host(), "UP.example");  // name matched case-insensitively
}

// ---------------------------------------------------------------------------
// Engine integration through a full RouterKernel

constexpr std::uint8_t kTcp = static_cast<std::uint8_t>(pkt::IpProto::tcp);

class L7KernelTest : public ::testing::Test {
 protected:
  L7KernelTest() {
    kernel_.add_interface("if0");
    kernel_.add_interface("if1");
    kernel_.routes().add(*netbase::IpPrefix::parse("10.0.0.0/8"), {0, {}});
    kernel_.routes().add(*netbase::IpPrefix::parse("20.0.0.0/8"), {1, {}});
  }

  template <class P, class I>
  I* add_instance(const char* name, const plugin::Config& cfg) {
    auto& pcu = kernel_.pcu();
    if (!pcu.find(name)) pcu.register_plugin(std::make_unique<P>());
    plugin::InstanceId id = plugin::kNoInstance;
    EXPECT_EQ(pcu.find(name)->create_instance(cfg, id), Status::ok);
    auto* inst = static_cast<I*>(pcu.find(name)->instance(id));
    EXPECT_EQ(kernel_.aiu().create_filter(
                  PluginType::l7, *aiu::Filter::parse("<*, *, tcp, *, *, *>"),
                  inst),
              Status::ok);
    return inst;
  }

  IdsInstance* add_ids(const plugin::Config& cfg) {
    return add_instance<IdsPlugin, IdsInstance>("l7ids", cfg);
  }
  HttpInstance* add_http(const plugin::Config& cfg) {
    return add_instance<HttpPlugin, HttpInstance>("l7http", cfg);
  }

  tgen::TcpStreamSpec spec(std::uint16_t sport = 4000) {
    tgen::TcpStreamSpec s;
    s.ep.src = *netbase::IpAddr::parse("10.0.0.1");
    s.ep.dst = *netbase::IpAddr::parse("20.0.0.1");
    s.ep.proto = kTcp;
    s.ep.sport = sport;
    s.ep.dport = 80;
    s.ep.in_iface = 0;
    return s;
  }

  // Runs the arrivals but stops short of the periodic idle sweep, so flow
  // entries are still inspectable afterwards (run_to_completion would sweep
  // the table empty before returning).
  std::size_t play(std::vector<tgen::Arrival> arrivals) {
    const std::size_t n = arrivals.size();
    netbase::SimTime last = 0;
    for (auto& a : arrivals) {
      last = std::max(last, a.t);
      kernel_.inject(a.t, a.iface, std::move(a.p));
    }
    kernel_.run_until(last + 1000 * 1000);  // +1ms: well before the 1s sweep
    return n;
  }

  core::RouterKernel kernel_;
};

TEST_F(L7KernelTest, IdsMatchesPatternsStraddlingSegments) {
  // alert_on_match off: the connection keeps being inspected after the
  // first hit, so the reverse-direction plant is reached too.
  IdsInstance* ids = add_ids({{"patterns", "EVIL1"},
                              {"log_hits", "1"},
                              {"alert_on_match", "0"},
                              {"inspect_limit", "0"}});
  auto sp = spec();
  // Both plants straddle an MSS boundary (mss=512): the match only exists
  // across a segment join, so finding it proves cross-segment state carry.
  sp.payload = tgen::plant(8192, 1, {{510, "EVIL1"}});
  sp.reverse_payload = tgen::plant(4096, 2, {{1022, "EVIL1"}});
  sp.mss = 512;
  play(tgen::tcp_stream(sp));

  EXPECT_EQ(ids->matches(), 2u);
  ASSERT_EQ(ids->hit_log().size(), 2u);
  std::vector<MatchHit> hits = ids->hit_log();
  std::sort(hits.begin(), hits.end(), [](const MatchHit& a, const MatchHit& b) {
    return a.dir < b.dir;
  });
  EXPECT_EQ(hits[0], (MatchHit{0, 0, 515}));   // client dir, 510 + 5
  EXPECT_EQ(hits[1], (MatchHit{0, 1, 1027}));  // server dir, 1022 + 5

  const auto& c = ids->counters();
  EXPECT_EQ(c.verdict_alert.load(), 0u);  // alerting disabled above
  EXPECT_EQ(c.delivered_bytes.load(), 0u + 8192 + 4096);
  EXPECT_EQ(c.buffered_bytes.load(), 0u);  // settled after the verdict
  EXPECT_EQ(kernel_.core().counters().dropped(core::DropReason::policy), 0u);
}

TEST_F(L7KernelTest, CleanVerdictOffloadsFlowViaBoundMask) {
  IdsInstance* ids = add_ids({{"patterns", "EVIL1"},
                              {"inspect_limit", "1024"}});
  auto sp = spec();
  sp.payload = tgen::plant(16 * 1024, 3, {});
  sp.reverse_payload = tgen::plant(16 * 1024, 4, {});
  const std::size_t total = play(tgen::tcp_stream(sp));

  const auto& c = ids->counters();
  EXPECT_EQ(c.verdict_clean.load(), 1u);
  EXPECT_EQ(c.handles_offloaded.load(), 2u);  // both direction flow entries
  EXPECT_EQ(c.offload_fail.load(), 0u);
  EXPECT_EQ(kernel_.aiu().stats().flows_offloaded, 2u);
  // The verdict cache pays off: post-offload packets skip the gate.
  EXPECT_LT(c.packets.load(), total);

  // Both flow entries' l7 bindings are gone and the mask bit is clear.
  aiu::FlowTable& ft = kernel_.aiu().flow_table();
  pkt::FlowKey fwd = sp.ep.key();
  pkt::FlowKey rev{sp.ep.dst, sp.ep.src, kTcp, sp.ep.dport,
                   sp.ep.sport, sp.reverse_iface};
  const std::size_t gi = aiu::gate_index(PluginType::l7);
  for (const pkt::FlowKey& k : {fwd, rev}) {
    pkt::FlowIndex fix = ft.lookup(k, kernel_.clock().now());
    ASSERT_NE(fix, pkt::kNoFlow) << k.to_string();
    EXPECT_EQ(ft.rec(fix).gates[gi].instance, nullptr);
    EXPECT_EQ(ft.rec(fix).gates[gi].soft, nullptr);
    EXPECT_EQ(ft.rec(fix).bound_mask & (1u << gi), 0u);
  }
}

TEST_F(L7KernelTest, OffloadDisabledKeepsInspectingEveryPacket) {
  IdsInstance* ids = add_ids({{"patterns", "EVIL1"},
                              {"inspect_limit", "1024"},
                              {"offload", "0"}});
  auto sp = spec();
  sp.payload = tgen::plant(16 * 1024, 3, {});
  const std::size_t total = play(tgen::tcp_stream(sp));

  const auto& c = ids->counters();
  EXPECT_EQ(c.verdict_clean.load(), 1u);
  EXPECT_EQ(c.handles_offloaded.load(), 0u);
  EXPECT_EQ(kernel_.aiu().stats().flows_offloaded, 0u);
  EXPECT_EQ(c.packets.load(), total);  // every packet still hits the gate
}

TEST_F(L7KernelTest, DropOnAlertActsAsInlineIps) {
  IdsInstance* ids = add_ids({{"patterns", "EVIL1"},
                              {"drop_on_alert", "1"},
                              {"inspect_limit", "0"}});
  auto sp = spec();
  sp.payload = tgen::plant(8192, 5, {{100, "EVIL1"}});
  sp.reverse_payload = tgen::plant(2048, 6, {});
  play(tgen::tcp_stream(sp));

  const auto& c = ids->counters();
  EXPECT_EQ(c.verdict_alert.load(), 1u);
  EXPECT_GT(c.alert_drops.load(), 0u);
  // Every alert drop surfaces as a policy drop in the core, and the
  // connection stays blocked (verdict cache) for the rest of the stream.
  EXPECT_EQ(kernel_.core().counters().dropped(core::DropReason::policy),
            c.alert_drops.load());
  EXPECT_GT(kernel_.core().counters().forwarded, 0u);  // pre-match packets
}

TEST_F(L7KernelTest, ReassemblyOverflowFailsOpen) {
  IdsInstance* ids = add_ids({{"patterns", "EVIL1"},
                              {"per_flow_budget", "256"},
                              {"inspect_limit", "0"}});
  auto sp = spec();
  sp.payload = tgen::plant(8192, 7, {});
  auto arrivals = tgen::tcp_stream(sp);
  // Drop the first client data segment (index 3, after the handshake):
  // everything after it buffers out of order until the 256-byte budget
  // blows, which must fail open — overflow verdict, traffic unharmed.
  arrivals.erase(arrivals.begin() + 3);
  play(std::move(arrivals));

  const auto& c = ids->counters();
  EXPECT_EQ(c.verdict_overflow.load(), 1u);
  EXPECT_EQ(c.buffered_bytes.load(), 0u);  // buffers reclaimed
  EXPECT_EQ(kernel_.core().counters().dropped(core::DropReason::policy), 0u);
  EXPECT_GT(kernel_.core().counters().forwarded, 0u);
}

TEST_F(L7KernelTest, HttpClassifierVerdicts) {
  HttpInstance* http = add_http({{"alert_host", "evil.example"}});

  auto ok = spec(5000);
  ok.payload = tgen::http_request("GET", "/index.html", "ok.example");
  play(tgen::tcp_stream(ok));
  EXPECT_EQ(http->requests(), 1u);
  EXPECT_EQ(http->counters().verdict_clean.load(), 1u);

  auto evil = spec(5001);
  evil.payload = tgen::http_request("POST", "/exfil", "evil.example");
  play(tgen::tcp_stream(evil));
  EXPECT_EQ(http->requests(), 2u);
  EXPECT_EQ(http->counters().verdict_alert.load(), 1u);

  auto junk = spec(5002);
  const std::string j = "SSH-2.0-OpenSSH_9.6\r\n";
  junk.payload.assign(j.begin(), j.end());
  play(tgen::tcp_stream(junk));
  EXPECT_EQ(http->non_http(), 1u);
  EXPECT_EQ(http->counters().verdict_clean.load(), 2u);

  // Clean verdicts offloaded their flows; the alerted one stayed bound.
  EXPECT_EQ(http->counters().handles_offloaded.load(), 4u);
}

// ---------------------------------------------------------------------------
// DirHandle exactly-once lifecycle audit (satellite 1). Every path that can
// remove a flow-table entry — or release engine state — must account each
// handle exactly once:
//   handles_created == handles_flow_removed + handles_offloaded
//                      + handles_released        (at quiescence)

constexpr netbase::SimTime kSweepAll =
    std::numeric_limits<netbase::SimTime>::max();

std::uint64_t outstanding(const L7Engine::Counters& c) {
  return c.handles_created.load() -
         (c.handles_flow_removed.load() + c.handles_offloaded.load() +
          c.handles_released.load());
}

// A complete datapath with explicit member destruction order so teardown
// paths can be exercised step by step (the Aiu — and with it the flow table
// firing flow_removed — dies before the PCU that owns the instances).
struct L7Stack {
  netbase::SimClock clock;
  plugin::PluginControlUnit pcu;
  std::unique_ptr<aiu::Aiu> aiu;
  route::RoutingTable routes{"bsl"};
  netdev::InterfaceTable ifs;
  std::unique_ptr<core::IpCore> core;
  IdsInstance* ids{nullptr};

  explicit L7Stack(plugin::Config cfg = {{"patterns", "ZZTOP"},
                                         {"inspect_limit", "0"}},
                   aiu::Aiu::Options aopt = {}) {
    aiu = std::make_unique<aiu::Aiu>(pcu, clock, aopt);
    ifs.add("if0");
    ifs.add("if1");
    routes.add(*netbase::IpPrefix::parse("0.0.0.0/0"), {1, {}});
    core = std::make_unique<core::IpCore>(*aiu, routes, ifs, clock,
                                          core::CoreConfig{});
    pcu.register_plugin(std::make_unique<IdsPlugin>());
    plugin::InstanceId id = plugin::kNoInstance;
    EXPECT_EQ(pcu.find("l7ids")->create_instance(std::move(cfg), id),
              Status::ok);
    ids = static_cast<IdsInstance*>(pcu.find("l7ids")->instance(id));
    EXPECT_EQ(aiu->create_filter(PluginType::l7,
                                 *aiu::Filter::parse("<*, *, tcp, *, *, *>"),
                                 ids),
              Status::ok);
  }

  void play(std::vector<tgen::Arrival> arrivals) {
    for (auto& a : arrivals) core->process(std::move(a.p));
  }
};

tgen::TcpStreamSpec stream_spec(std::uint16_t sport, std::size_t bytes = 4096,
                                std::uint64_t seed = 11) {
  tgen::TcpStreamSpec s;
  s.ep.src = *netbase::IpAddr::parse("10.0.0.1");
  s.ep.dst = *netbase::IpAddr::parse("20.0.0.1");
  s.ep.proto = kTcp;
  s.ep.sport = sport;
  s.ep.dport = 80;
  s.ep.in_iface = 0;
  s.payload = tgen::plant(bytes, seed, {});
  s.reverse_payload = tgen::plant(bytes / 2, seed + 1, {});
  return s;
}

TEST(L7HandleLifecycle, IdleExpirySweep) {
  L7Stack s;
  s.play(tgen::tcp_stream(stream_spec(4000)));
  const auto& c = s.ids->counters();
  EXPECT_EQ(c.handles_created.load(), 2u);
  EXPECT_EQ(outstanding(c), 2u);  // both live until the sweep
  s.aiu->flow_table().expire_idle(kSweepAll);
  EXPECT_EQ(c.handles_flow_removed.load(), 2u);
  EXPECT_EQ(outstanding(c), 0u);
}

TEST(L7HandleLifecycle, ExplicitRemoveBothDirections) {
  L7Stack s;
  auto sp = stream_spec(4001);
  s.play(tgen::tcp_stream(sp));
  aiu::FlowTable& ft = s.aiu->flow_table();
  pkt::FlowKey rev{sp.ep.dst, sp.ep.src, kTcp, sp.ep.dport, sp.ep.sport,
                   sp.reverse_iface};
  for (const pkt::FlowKey& k : {sp.ep.key(), rev}) {
    pkt::FlowIndex fix = ft.lookup(k, s.clock.now());
    ASSERT_NE(fix, pkt::kNoFlow);
    ft.remove(fix);
  }
  const auto& c = s.ids->counters();
  EXPECT_EQ(c.handles_flow_removed.load(), 2u);
  EXPECT_EQ(outstanding(c), 0u);
}

TEST(L7HandleLifecycle, TableClear) {
  L7Stack s;
  s.play(tgen::tcp_stream(stream_spec(4002)));
  s.aiu->flow_table().clear();
  EXPECT_EQ(s.ids->counters().handles_flow_removed.load(), 2u);
  EXPECT_EQ(outstanding(s.ids->counters()), 0u);
}

TEST(L7HandleLifecycle, PurgeInstance) {
  L7Stack s;
  s.play(tgen::tcp_stream(stream_spec(4003)));
  EXPECT_EQ(s.aiu->flow_table().purge_instance(s.ids), 2u);
  EXPECT_EQ(s.ids->counters().handles_flow_removed.load(), 2u);
  EXPECT_EQ(outstanding(s.ids->counters()), 0u);
}

TEST(L7HandleLifecycle, MidTrafficFilterFlip) {
  L7Stack s;
  auto sp = stream_spec(4004, 8192);
  auto arrivals = tgen::tcp_stream(sp);
  const std::size_t half = arrivals.size() / 2;
  std::vector<tgen::Arrival> first(std::make_move_iterator(arrivals.begin()),
                                   std::make_move_iterator(arrivals.begin() +
                                                           half));
  std::vector<tgen::Arrival> rest(std::make_move_iterator(arrivals.begin() +
                                                          half),
                                  std::make_move_iterator(arrivals.end()));
  s.play(std::move(first));
  const auto& c = s.ids->counters();
  EXPECT_EQ(c.handles_created.load(), 2u);

  // Removing the filter flushes the flow cache: both handles come back
  // through flow_removed. Traffic keeps flowing unbound...
  ASSERT_EQ(s.aiu->remove_filter(PluginType::l7,
                                 *aiu::Filter::parse("<*, *, tcp, *, *, *>")),
            Status::ok);
  EXPECT_EQ(c.handles_flow_removed.load(), 2u);
  EXPECT_EQ(outstanding(c), 0u);

  // ...and re-binding mid-stream attaches fresh handles to the same Conn.
  ASSERT_EQ(s.aiu->create_filter(PluginType::l7,
                                 *aiu::Filter::parse("<*, *, tcp, *, *, *>"),
                                 s.ids),
            Status::ok);
  s.play(std::move(rest));
  EXPECT_EQ(c.handles_created.load(), 4u);
  s.aiu->flow_table().expire_idle(kSweepAll);
  EXPECT_EQ(outstanding(c), 0u);
  EXPECT_EQ(s.ids->conn_count(), 1u);  // one Conn across the flip
}

TEST(L7HandleLifecycle, LruRecycleAndEngineEviction) {
  aiu::Aiu::Options aopt;
  aopt.initial_flows = 16;
  aopt.max_flows = 16;  // flow-table LRU recycling kicks in fast
  L7Stack s({{"patterns", "ZZTOP"}, {"inspect_limit", "0"},
             {"max_conns", "8"}},  // engine-side eviction too
            aopt);
  for (std::uint16_t i = 0; i < 50; ++i)
    s.play(tgen::tcp_stream(stream_spec(static_cast<std::uint16_t>(5000 + i),
                                        512)));
  const auto& c = s.ids->counters();
  // Both removal machineries really fired...
  EXPECT_GT(c.handles_flow_removed.load(), 0u);  // table LRU recycle
  EXPECT_GT(c.handles_released.load(), 0u);      // engine max_conns evict
  EXPECT_LE(s.ids->conn_count(), 8u);
  // ...and after draining the table, every handle is accounted exactly once.
  s.aiu->flow_table().expire_idle(kSweepAll);
  EXPECT_EQ(outstanding(c), 0u);
}

TEST(L7HandleLifecycle, OffloadAccountsHandles) {
  L7Stack s({{"patterns", "ZZTOP"}, {"inspect_limit", "1024"}});
  s.play(tgen::tcp_stream(stream_spec(4006, 8192)));
  const auto& c = s.ids->counters();
  EXPECT_EQ(c.handles_offloaded.load(), 2u);
  EXPECT_EQ(outstanding(c), 0u);
  // The offloaded entries are unbound: expiring them must not double-count.
  s.aiu->flow_table().expire_idle(kSweepAll);
  EXPECT_EQ(c.handles_flow_removed.load(), 0u);
  EXPECT_EQ(outstanding(c), 0u);
}

TEST(L7HandleLifecycle, StackTeardownOrder) {
  L7Stack s;
  s.play(tgen::tcp_stream(stream_spec(4007)));
  EXPECT_EQ(outstanding(s.ids->counters()), 2u);
  // Tear the datapath down the way the kernel does: core first, then the
  // Aiu (whose flow-table destructor fires flow_removed into the still-live
  // instances owned by the PCU).
  s.core.reset();
  s.aiu.reset();
  EXPECT_EQ(s.ids->counters().handles_flow_removed.load(), 2u);
  EXPECT_EQ(outstanding(s.ids->counters()), 0u);
}

TEST(L7HandleLifecycle, EngineResetReleasesEverything) {
  L7Stack s;
  s.play(tgen::tcp_stream(stream_spec(4008)));
  plugin::PluginMsg msg;
  msg.custom_name = "reset";
  plugin::PluginReply reply;
  ASSERT_EQ(s.ids->handle_message(msg, reply), Status::ok);
  EXPECT_EQ(s.ids->conn_count(), 0u);
  EXPECT_EQ(s.ids->counters().handles_released.load(), 2u);
  EXPECT_EQ(outstanding(s.ids->counters()), 0u);
  // The nulled soft slots mean later table removal has nothing to call.
  s.aiu->flow_table().expire_idle(kSweepAll);
  EXPECT_EQ(s.ids->counters().handles_flow_removed.load(), 0u);
}

// ---------------------------------------------------------------------------
// pmgr `l7` control surface

class L7PmgrTest : public ::testing::Test {
 protected:
  L7PmgrTest() : lib_(kernel_), pmgr_(lib_) {
    mgmt::register_builtin_modules();
    kernel_.add_interface("if0");
    kernel_.add_interface("if1");
  }

  core::RouterKernel kernel_;
  mgmt::RouterPluginLib lib_;
  mgmt::PluginManager pmgr_;
};

TEST_F(L7PmgrTest, EndToEndConfigurationAndVerdicts) {
  const char* script = R"(
route add 10.0.0.0/8 if0
route add 20.0.0.0/8 if1
modload l7ids
create l7ids patterns=EVIL1 inspect_limit=0 log_hits=1
bind l7ids 1 <*, *, tcp, *, *, *>
)";
  auto r = pmgr_.run_script(script);
  ASSERT_TRUE(r.ok()) << r.text;

  tgen::TcpStreamSpec sp;
  sp.ep.src = *netbase::IpAddr::parse("10.0.0.1");
  sp.ep.dst = *netbase::IpAddr::parse("20.0.0.1");
  sp.ep.proto = kTcp;
  sp.ep.sport = 4000;
  sp.ep.dport = 80;
  sp.payload = tgen::plant(4096, 9, {{1000, "EVIL1"}});
  for (auto& a : tgen::tcp_stream(sp))
    kernel_.inject(a.t, a.iface, std::move(a.p));
  kernel_.run_to_completion();

  auto v = pmgr_.exec("l7 verdicts");
  ASSERT_TRUE(v.ok()) << v.text;
  EXPECT_NE(v.text.find("alert=1"), std::string::npos) << v.text;
  EXPECT_NE(v.text.find("match id=0"), std::string::npos) << v.text;

  auto st = pmgr_.exec("l7 status");
  ASSERT_TRUE(st.ok());
  EXPECT_NE(st.text.find("l7ids#1:"), std::string::npos) << st.text;
  EXPECT_NE(st.text.find("conns=1"), std::string::npos) << st.text;
}

TEST_F(L7PmgrTest, RuleManagement) {
  ASSERT_TRUE(pmgr_.exec("modload l7ids").ok());
  ASSERT_TRUE(pmgr_.exec("create l7ids patterns=EVIL1").ok());

  auto list = pmgr_.exec("l7 rules l7ids 1 list");
  ASSERT_TRUE(list.ok()) << list.text;
  EXPECT_NE(list.text.find("EVIL1"), std::string::npos);

  ASSERT_TRUE(pmgr_.exec("l7 rules l7ids 1 add BADPAT").ok());
  list = pmgr_.exec("l7 rules l7ids 1 list");
  EXPECT_NE(list.text.find("EVIL1"), std::string::npos);
  EXPECT_NE(list.text.find("BADPAT"), std::string::npos);

  ASSERT_TRUE(pmgr_.exec("l7 rules l7ids 1 set ONE,TWO").ok());
  list = pmgr_.exec("l7 rules l7ids 1 list");
  EXPECT_EQ(list.text.find("EVIL1"), std::string::npos);
  EXPECT_NE(list.text.find("ONE"), std::string::npos);
  EXPECT_NE(list.text.find("TWO"), std::string::npos);

  ASSERT_TRUE(pmgr_.exec("l7 rules l7ids 1 clear").ok());

  // Malformed pattern lists and bad targets fail loudly.
  EXPECT_FALSE(pmgr_.exec("l7 rules l7ids 1 set a,,b").ok());
  EXPECT_FALSE(pmgr_.exec("l7 rules nosuch 1 list").ok());
  EXPECT_FALSE(pmgr_.exec("l7 rules l7ids 99 list").ok());
  EXPECT_FALSE(pmgr_.exec("l7 bogus").ok());
}

TEST_F(L7PmgrTest, BudgetAndReset) {
  ASSERT_TRUE(pmgr_.exec("modload l7ids").ok());
  ASSERT_TRUE(pmgr_.exec("create l7ids patterns=EVIL1").ok());

  auto b = pmgr_.exec("l7 budget inspect_limit=2048 per_flow_budget=4096");
  ASSERT_TRUE(b.ok()) << b.text;
  EXPECT_NE(b.text.find("inspect_limit=2048"), std::string::npos) << b.text;
  EXPECT_NE(b.text.find("per_flow_budget=4096"), std::string::npos) << b.text;

  auto rs = pmgr_.exec("l7 reset");
  ASSERT_TRUE(rs.ok());
  EXPECT_NE(rs.text.find("reset 0 conns"), std::string::npos) << rs.text;
}

}  // namespace
}  // namespace rp::l7

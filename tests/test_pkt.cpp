// Unit tests for the packet layer: header codecs, the mbuf-like buffer, and
// flow-key extraction.
#include <gtest/gtest.h>

#include <cstring>

#include "netbase/byteorder.hpp"
#include "pkt/builder.hpp"
#include "pkt/headers.hpp"
#include "pkt/packet.hpp"

namespace rp::pkt {
namespace {

using netbase::IpAddr;
using netbase::Ipv4Addr;
using netbase::Ipv6Addr;
using netbase::IpVersion;

TEST(Packet, PrependPullAppendTrim) {
  Packet p(10);
  EXPECT_EQ(p.size(), 10u);
  EXPECT_EQ(p.headroom(), Packet::kDefaultHeadroom);

  std::uint8_t* front = p.prepend(4);
  EXPECT_EQ(front, p.data());
  EXPECT_EQ(p.size(), 14u);
  EXPECT_EQ(p.headroom(), Packet::kDefaultHeadroom - 4);

  p.pull(4);
  EXPECT_EQ(p.size(), 10u);

  std::uint8_t* tail = p.append(6);
  EXPECT_EQ(tail, p.data() + 10);
  EXPECT_EQ(p.size(), 16u);
  p.trim(6);
  EXPECT_EQ(p.size(), 10u);
}

TEST(Packet, PrependBeyondHeadroomReallocates) {
  Packet p(8, 4);
  p.data()[0] = 0xab;
  p.prepend(100);  // forces growth
  EXPECT_EQ(p.size(), 108u);
  EXPECT_EQ(p.data()[100], 0xab);
}

TEST(Packet, PullAndTrimClampToSize) {
  Packet p(5);
  p.pull(100);
  EXPECT_EQ(p.size(), 0u);
  Packet q(5);
  q.trim(100);
  EXPECT_EQ(q.size(), 0u);
}

TEST(Ipv4HeaderCodec, RoundTrip) {
  Ipv4Header h;
  h.tos = 0x20;
  h.total_len = 1500;
  h.id = 0x1234;
  h.flags = 2;  // DF
  h.frag_off = 0;
  h.ttl = 61;
  h.proto = 17;
  h.src = Ipv4Addr(10, 1, 2, 3);
  h.dst = Ipv4Addr(192, 168, 0, 1);

  // parse() validates total_len against the capture, so parse from a
  // buffer as long as the datagram the header claims.
  std::uint8_t buf[1500] = {};
  h.write(buf);
  Ipv4Header::finalize_checksum(buf, 20);
  EXPECT_TRUE(Ipv4Header::verify_checksum({buf, 20}));

  Ipv4Header r;
  ASSERT_TRUE(r.parse(buf));
  EXPECT_EQ(r.tos, h.tos);
  EXPECT_EQ(r.total_len, h.total_len);
  EXPECT_EQ(r.id, h.id);
  EXPECT_EQ(r.flags, h.flags);
  EXPECT_EQ(r.ttl, h.ttl);
  EXPECT_EQ(r.proto, h.proto);
  EXPECT_EQ(r.src, h.src);
  EXPECT_EQ(r.dst, h.dst);
}

TEST(Ipv4HeaderCodec, RejectsBadInput) {
  std::uint8_t buf[20] = {};
  Ipv4Header h;
  EXPECT_FALSE(h.parse({buf, 10}));   // truncated
  buf[0] = 0x62;                       // version 6
  EXPECT_FALSE(h.parse(buf));
  buf[0] = 0x43;                       // ihl 3 < 5
  EXPECT_FALSE(h.parse(buf));
  buf[0] = 0x4f;                       // ihl 15 -> 60 bytes > span
  EXPECT_FALSE(h.parse(buf));
}

// Regression (wire hardening): the total-length field is validated against
// both the header it must contain and the capture it must fit in.
TEST(Ipv4HeaderCodec, RejectsLyingTotalLength) {
  std::uint8_t buf[64] = {};
  Ipv4Header h;
  h.total_len = 64;
  h.proto = 17;
  h.write(buf);
  Ipv4Header r;
  ASSERT_TRUE(r.parse(buf));

  netbase::store_be16(&buf[2], 19);  // < header_len
  EXPECT_FALSE(r.parse(buf));
  netbase::store_be16(&buf[2], 65);  // > capture
  EXPECT_FALSE(r.parse(buf));
  netbase::store_be16(&buf[2], 40);  // < capture: fine (padding trimmable)
  EXPECT_TRUE(r.parse(buf));
}

// Regression (wire hardening): a UDP length below its own header size is
// always rejected at the codec level.
TEST(TcpUdpCodec, RejectsRuntUdpLength) {
  UdpHeader u{1234, 80, 7, 0};
  std::uint8_t ub[8];
  u.write(ub);
  UdpHeader r;
  EXPECT_FALSE(r.parse(ub));
  netbase::store_be16(&ub[4], 8);
  EXPECT_TRUE(r.parse(ub));
}

TEST(Ipv6HeaderCodec, RoundTrip) {
  Ipv6Header h;
  h.traffic_class = 0xb8;
  h.flow_label = 0x12345;
  h.payload_len = 4096;
  h.next_header = 17;
  h.hop_limit = 61;
  h.src = *Ipv6Addr::parse("2001:db8::1");
  h.dst = *Ipv6Addr::parse("2001:db8::2");

  std::uint8_t buf[40];
  h.write(buf);
  Ipv6Header r;
  ASSERT_TRUE(r.parse(buf));
  EXPECT_EQ(r.traffic_class, h.traffic_class);
  EXPECT_EQ(r.flow_label, h.flow_label);
  EXPECT_EQ(r.payload_len, h.payload_len);
  EXPECT_EQ(r.next_header, h.next_header);
  EXPECT_EQ(r.hop_limit, h.hop_limit);
  EXPECT_EQ(r.src, h.src);
  EXPECT_EQ(r.dst, h.dst);
}

TEST(TcpUdpCodec, RoundTrip) {
  UdpHeader u{1234, 80, 100, 0};
  std::uint8_t ub[8];
  u.write(ub);
  UdpHeader ur;
  ASSERT_TRUE(ur.parse(ub));
  EXPECT_EQ(ur.sport, 1234);
  EXPECT_EQ(ur.dport, 80);
  EXPECT_EQ(ur.length, 100);

  TcpHeader t;
  t.sport = 4000;
  t.dport = 443;
  t.seq = 0xdeadbeef;
  t.ack = 0x1;
  t.flags = 0x18;
  t.window = 8192;
  std::uint8_t tb[20];
  t.write(tb);
  TcpHeader tr;
  ASSERT_TRUE(tr.parse(tb));
  EXPECT_EQ(tr.sport, 4000);
  EXPECT_EQ(tr.dport, 443);
  EXPECT_EQ(tr.seq, 0xdeadbeefu);
  EXPECT_EQ(tr.flags, 0x18);
  EXPECT_EQ(tr.window, 8192);
}

TEST(FlowKeyExtract, UdpV4) {
  UdpSpec s;
  s.src = IpAddr(Ipv4Addr(10, 0, 0, 1));
  s.dst = IpAddr(Ipv4Addr(10, 0, 0, 2));
  s.sport = 5000;
  s.dport = 53;
  s.payload_len = 64;
  auto p = build_udp(s);
  p->in_iface = 2;
  p->key_valid = false;  // force re-extraction with the iface set
  ASSERT_TRUE(extract_flow_key(*p));
  EXPECT_EQ(p->ip_version, IpVersion::v4);
  EXPECT_EQ(p->key.src.v4().to_string(), "10.0.0.1");
  EXPECT_EQ(p->key.dst.v4().to_string(), "10.0.0.2");
  EXPECT_EQ(p->key.proto, 17);
  EXPECT_EQ(p->key.sport, 5000);
  EXPECT_EQ(p->key.dport, 53);
  EXPECT_EQ(p->key.in_iface, 2);
  EXPECT_EQ(p->l4_offset, 20);
}

TEST(FlowKeyExtract, TcpV6) {
  TcpSpec s;
  s.src = IpAddr(*Ipv6Addr::parse("2001:db8::a"));
  s.dst = IpAddr(*Ipv6Addr::parse("2001:db8::b"));
  s.sport = 3333;
  s.dport = 22;
  s.payload_len = 10;
  auto p = build_tcp(s);
  ASSERT_TRUE(p->key_valid);
  EXPECT_EQ(p->ip_version, IpVersion::v6);
  EXPECT_EQ(p->key.proto, 6);
  EXPECT_EQ(p->key.sport, 3333);
  EXPECT_EQ(p->key.dport, 22);
  EXPECT_EQ(p->l4_offset, 40);
}

TEST(FlowKeyExtract, V6HopByHopSkipsToTransport) {
  UdpSpec s;
  s.src = IpAddr(*Ipv6Addr::parse("fe80::1"));
  s.dst = IpAddr(*Ipv6Addr::parse("fe80::2"));
  s.sport = 7;
  s.dport = 9;
  s.payload_len = 4;
  const std::uint8_t alert[] = {5, 2, 0, 0};  // router alert option
  auto p = build_udp6_hopopts(s, alert);
  ASSERT_TRUE(p->key_valid);
  EXPECT_EQ(p->key.proto, 17);
  EXPECT_EQ(p->key.sport, 7);
  EXPECT_EQ(p->l4_offset, 48);  // 40 + 8 (one hbh unit)
}

TEST(FlowKeyExtract, V4FragmentHasNoPorts) {
  UdpSpec s;
  s.src = IpAddr(Ipv4Addr(1, 1, 1, 1));
  s.dst = IpAddr(Ipv4Addr(2, 2, 2, 2));
  s.sport = 1000;
  s.dport = 2000;
  s.payload_len = 16;
  auto p = build_udp(s);
  // Mark as a non-first fragment.
  std::uint8_t* h = p->data();
  netbase::store_be16(&h[6], 0x0080);  // frag offset 128
  Ipv4Header::finalize_checksum(h, 20);
  p->key_valid = false;
  ASSERT_TRUE(extract_flow_key(*p));
  EXPECT_EQ(p->key.sport, 0);
  EXPECT_EQ(p->key.dport, 0);
  EXPECT_EQ(p->key.proto, 17);
}

TEST(FlowKeyExtract, RejectsGarbage) {
  auto p = make_packet(3);
  p->data()[0] = 0x99;  // version 9
  EXPECT_FALSE(extract_flow_key(*p));
  auto empty = make_packet(0);
  EXPECT_FALSE(extract_flow_key(*empty));
}

TEST(Builders, ChecksumsAreValid) {
  UdpSpec s;
  s.src = IpAddr(Ipv4Addr(10, 0, 0, 1));
  s.dst = IpAddr(Ipv4Addr(10, 0, 0, 2));
  s.sport = 1;
  s.dport = 2;
  s.payload_len = 33;  // odd length exercises checksum padding
  auto p = build_udp(s);
  EXPECT_TRUE(Ipv4Header::verify_checksum({p->data(), 20}));
  // The stored L4 checksum must match recomputation.
  EXPECT_EQ(netbase::load_be16(p->data() + p->l4_offset + 6), l4_checksum(*p));
}

TEST(Builders, V6UdpChecksum) {
  UdpSpec s;
  s.src = IpAddr(*Ipv6Addr::parse("2001::1"));
  s.dst = IpAddr(*Ipv6Addr::parse("2001::2"));
  s.sport = 9999;
  s.dport = 80;
  s.payload_len = 100;
  auto p = build_udp(s);
  EXPECT_EQ(netbase::load_be16(p->data() + p->l4_offset + 6), l4_checksum(*p));
}

TEST(Packet, ClonePreservesBytesAndMetadata) {
  UdpSpec s;
  s.src = IpAddr(Ipv4Addr(10, 0, 0, 1));
  s.dst = IpAddr(Ipv4Addr(10, 0, 0, 2));
  s.payload_len = 21;
  auto p = build_udp(s);
  p->fix = 42;
  p->in_iface = 3;
  auto c = clone_packet(*p);
  EXPECT_EQ(c->size(), p->size());
  EXPECT_EQ(0, memcmp(c->data(), p->data(), p->size()));
  EXPECT_EQ(c->fix, 42);
  EXPECT_EQ(c->in_iface, 3);
  // Mutating the clone leaves the original alone.
  c->data()[0] ^= 0xff;
  EXPECT_NE(c->data()[0], p->data()[0]);
}

TEST(FlowKeyHash, EqualKeysEqualHashes) {
  FlowKey a{IpAddr(Ipv4Addr(1, 2, 3, 4)), IpAddr(Ipv4Addr(5, 6, 7, 8)),
            17, 1000, 2000, 0};
  FlowKey b = a;
  EXPECT_EQ(a.hash(), b.hash());
  b.dport = 2001;
  EXPECT_NE(a, b);
  EXPECT_NE(a.hash(), b.hash());  // overwhelmingly likely
}

TEST(Ipv6ExtHeaders, BoundedAndValidated) {
  // Chain: hopopts -> dstopts -> udp
  std::uint8_t buf[32] = {};
  buf[0] = 60;  // next: dstopts
  buf[1] = 0;   // 8 bytes
  buf[8] = 17;  // next: udp
  buf[9] = 0;
  std::size_t l4 = 0;
  auto nh = skip_ipv6_ext_headers({buf, 32}, 0 /*hopopt*/, l4);
  ASSERT_TRUE(nh);
  EXPECT_EQ(*nh, 17);
  EXPECT_EQ(l4, 16u);
  // Truncated extension header fails.
  EXPECT_FALSE(skip_ipv6_ext_headers({buf, 4}, 0, l4));
}

// Regression (wire hardening): the Fragment header (44) is an extension
// header with a fixed 8-byte layout — byte 1 is reserved, not a length —
// and must never be returned as the L4 protocol.
TEST(Ipv6ExtHeaders, FragmentHeaderRecognized) {
  std::uint8_t buf[16] = {};
  buf[0] = 17;    // next: udp
  buf[1] = 0xff;  // reserved byte; a length-style read would walk 2KiB
  netbase::store_be16(&buf[2], (176 << 3) | 1);  // frag_off 176, MF
  Ipv6ExtWalk w;
  ASSERT_TRUE(walk_ipv6_ext_headers(
      {buf, 16}, static_cast<std::uint8_t>(IpProto::ipv6_frag), w));
  EXPECT_EQ(w.l4_proto, 17);
  EXPECT_EQ(w.l4_offset, 8u);
  EXPECT_TRUE(w.has_fragment);
  EXPECT_EQ(w.frag_off, 176);
  EXPECT_TRUE(w.frag_more);
}

// Regression (wire hardening): AH (51) measures its length in 4-byte units
// ((payload_len + 2) * 4), unlike the 8-byte units of the options headers.
TEST(Ipv6ExtHeaders, AhLengthUnits) {
  std::uint8_t buf[32] = {};
  buf[0] = 6;  // next: tcp
  buf[1] = 4;  // (4 + 2) * 4 = 24 bytes
  Ipv6ExtWalk w;
  ASSERT_TRUE(walk_ipv6_ext_headers(
      {buf, 32}, static_cast<std::uint8_t>(IpProto::ah), w));
  EXPECT_EQ(w.l4_proto, 6);
  EXPECT_EQ(w.l4_offset, 24u);
  // An AH that runs past the chain is rejected, not misparsed.
  EXPECT_FALSE(walk_ipv6_ext_headers(
      {buf, 20}, static_cast<std::uint8_t>(IpProto::ah), w));
}

// Regression (wire hardening): a non-first v6 fragment gets the same
// no-L4 treatment as a v4 fragment — previously the fragment header's
// bytes were read as TCP/UDP ports.
TEST(FlowKeyExtract, V6NonFirstFragmentHasNoPorts) {
  auto p = make_packet(Ipv6Header::kSize + 8 + 32);
  Ipv6Header ip;
  ip.payload_len = 8 + 32;
  ip.next_header = static_cast<std::uint8_t>(IpProto::ipv6_frag);
  ip.src = *Ipv6Addr::parse("2001:db8::1");
  ip.dst = *Ipv6Addr::parse("2001:db8::2");
  ip.write(p->data());
  std::uint8_t* frag = p->data() + Ipv6Header::kSize;
  frag[0] = 17;  // inner proto udp
  frag[1] = 0;
  netbase::store_be16(&frag[2], (16 << 3) | 1);  // offset 16, MF
  // Payload bytes that would misparse as huge ports.
  std::memset(p->data() + Ipv6Header::kSize + 8, 0xee, 32);
  ASSERT_TRUE(extract_flow_key(*p));
  EXPECT_EQ(p->key.proto, 17);
  EXPECT_EQ(p->key.sport, 0);
  EXPECT_EQ(p->key.dport, 0);
}

// Regression (wire hardening): extract_flow_key fails closed on length
// lies instead of returning a half-parsed key.
TEST(FlowKeyExtract, FailsClosedOnLengthLies) {
  UdpSpec s;
  s.src = IpAddr(Ipv4Addr(10, 0, 0, 1));
  s.dst = IpAddr(Ipv4Addr(10, 0, 0, 2));
  s.sport = 5000;
  s.dport = 53;
  s.payload_len = 32;
  {
    auto p = build_udp(s);  // UDP length past the datagram end
    netbase::store_be16(p->data() + p->l4_offset + 4, 200);
    p->key_valid = false;
    EXPECT_FALSE(extract_flow_key(*p));
  }
  {
    auto p = build_udp(s);  // UDP length below its own header
    netbase::store_be16(p->data() + p->l4_offset + 4, 4);
    p->key_valid = false;
    EXPECT_FALSE(extract_flow_key(*p));
  }
  {
    auto p = build_udp(s);  // v4 total_len past the capture
    netbase::store_be16(p->data() + 2, 1400);
    p->key_valid = false;
    EXPECT_FALSE(extract_flow_key(*p));
  }
  {
    TcpSpec t;
    t.src = s.src;
    t.dst = s.dst;
    t.sport = 1;
    t.dport = 2;
    auto p = build_tcp(t);  // TCP data offset past the datagram end
    p->data()[p->l4_offset + 12] = 0xf0;
    p->key_valid = false;
    EXPECT_FALSE(extract_flow_key(*p));
  }
  {
    UdpSpec v6 = s;  // v6 payload_len past the capture
    v6.src = IpAddr(*Ipv6Addr::parse("2001:db8::a"));
    v6.dst = IpAddr(*Ipv6Addr::parse("2001:db8::b"));
    auto p = build_udp(v6);
    netbase::store_be16(p->data() + 4, 2000);
    p->key_valid = false;
    EXPECT_FALSE(extract_flow_key(*p));
  }
}

}  // namespace
}  // namespace rp::pkt

// Tests for the IP security stack: SHA-256 / HMAC / ChaCha20 against
// published test vectors, the SA database and anti-replay window, and the
// AH/ESP plugin transforms (round trip, tamper detection, replay drops).
#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "ipsec/chacha20.hpp"
#include "ipsec/hmac.hpp"
#include "ipsec/ipsec_plugins.hpp"
#include "ipsec/sha256.hpp"
#include "pkt/builder.hpp"
#include "pkt/headers.hpp"

namespace rp::ipsec {
namespace {

using netbase::Status;
using plugin::Verdict;

std::string hex(std::span<const std::uint8_t> d) {
  static const char* k = "0123456789abcdef";
  std::string out;
  for (auto b : d) {
    out += k[b >> 4];
    out += k[b & 0xf];
  }
  return out;
}

std::span<const std::uint8_t> bytes_of(const char* s) {
  return {reinterpret_cast<const std::uint8_t*>(s), std::strlen(s)};
}

TEST(Sha256, Fips180Vectors) {
  EXPECT_EQ(hex(Sha256::digest(bytes_of(""))),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(hex(Sha256::digest(bytes_of("abc"))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(
      hex(Sha256::digest(bytes_of(
          "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Sha256 h;
  std::uint8_t block[1000];
  std::memset(block, 'a', sizeof block);
  for (int i = 0; i < 1000; ++i) h.update(block, sizeof block);
  EXPECT_EQ(hex(h.finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, StreamingMatchesOneShot) {
  std::uint8_t data[517];
  for (std::size_t i = 0; i < sizeof data; ++i)
    data[i] = static_cast<std::uint8_t>(i * 7);
  auto one_shot = Sha256::digest(data);
  Sha256 h;
  h.update(data, 100);
  h.update(data + 100, 1);
  h.update(data + 101, 416);
  EXPECT_EQ(h.finish(), one_shot);
}

TEST(HmacSha256, Rfc4231Vectors) {
  // Test case 1.
  std::uint8_t key1[20];
  std::memset(key1, 0x0b, sizeof key1);
  EXPECT_EQ(hex(HmacSha256::mac(key1, bytes_of("Hi There"))),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
  // Test case 2: key "Jefe".
  EXPECT_EQ(
      hex(HmacSha256::mac(bytes_of("Jefe"),
                          bytes_of("what do ya want for nothing?"))),
      "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacSha256, LongKeyIsHashedFirst) {
  std::uint8_t key[131];
  std::memset(key, 0xaa, sizeof key);
  // RFC 4231 test case 6.
  EXPECT_EQ(
      hex(HmacSha256::mac(
          key, bytes_of("Test Using Larger Than Block-Size Key - Hash Key "
                        "First"))),
      "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(MacEqual, ConstantTimeCompareSemantics) {
  std::uint8_t a[4] = {1, 2, 3, 4};
  std::uint8_t b[4] = {1, 2, 3, 4};
  std::uint8_t c[4] = {1, 2, 3, 5};
  EXPECT_TRUE(mac_equal(a, b));
  EXPECT_FALSE(mac_equal(a, c));
  EXPECT_FALSE(mac_equal({a, 3}, {b, 4}));
}

TEST(HmacSha256, Rfc4231CombinedKeyAndData) {
  // RFC 4231 test cases 3 and 4: repeated-byte keys and data.
  std::vector<std::uint8_t> key3(20, 0xaa), data3(50, 0xdd);
  EXPECT_EQ(hex(HmacSha256::mac(key3, data3)),
            "773ea91e36800e46854db8ebd09181a7"
            "2959098b3ef8c122d9635514ced565fe");
  std::vector<std::uint8_t> key4;
  for (std::uint8_t b = 0x01; b <= 0x19; ++b) key4.push_back(b);
  std::vector<std::uint8_t> data4(50, 0xcd);
  EXPECT_EQ(hex(HmacSha256::mac(key4, data4)),
            "82558a389a443c0ea4cc819899f2083a"
            "85f0faa3e578f8077a2e3ff46729665b");
}

TEST(HmacSha256, Rfc4231TruncatedTag) {
  // RFC 4231 test case 5: the output is truncated to 128 bits, as AH-style
  // transforms do. Only the first 16 digest bytes are specified.
  std::vector<std::uint8_t> key(20, 0x0c);
  auto d = HmacSha256::mac(key, bytes_of("Test With Truncation"));
  EXPECT_EQ(hex({d.data(), 16}), "a3b6167473100ee06e0c796c2955552b");
}

TEST(HmacSha256, Rfc4231LargeKeyAndLargeData) {
  // RFC 4231 test case 7: both key and data exceed the SHA-256 block size.
  std::vector<std::uint8_t> key(131, 0xaa);
  EXPECT_EQ(hex(HmacSha256::mac(
                key, bytes_of("This is a test using a larger than "
                              "block-size key and a larger than block-size "
                              "data. The key needs to be hashed before "
                              "being used by the HMAC algorithm."))),
            "9b09ffa71b942fcb27635fbcd5b0e944"
            "bfdc63644f0713938a7f51535c3a35e2");
}

// Keystream extraction: crypt() XORs the keystream into the buffer, so
// encrypting zeros yields the raw keystream block.
std::string keystream_hex(std::span<const std::uint8_t> key,
                          std::span<const std::uint8_t> nonce,
                          std::uint32_t counter, std::size_t len) {
  std::vector<std::uint8_t> buf(len, 0);
  ChaCha20 c(key, nonce, counter);
  c.crypt(buf.data(), buf.size());
  return hex(buf);
}

TEST(ChaCha20, Rfc8439BlockFunctionVectors) {
  // RFC 8439 appendix A.1, test vectors 1 and 2: all-zero key and nonce at
  // block counters 0 and 1.
  std::uint8_t zkey[32] = {};
  std::uint8_t znonce[12] = {};
  EXPECT_EQ(keystream_hex(zkey, znonce, 0, 64),
            "76b8e0ada0f13d90405d6ae55386bd28"
            "bdd219b8a08ded1aa836efcc8b770dc7"
            "da41597c5157488d7724e03fb8d84a37"
            "6a43b8f41518a11cc387b669b2ee6586");
  EXPECT_EQ(keystream_hex(zkey, znonce, 1, 64),
            "9f07e7be5551387a98ba977c732d080d"
            "cb0f29a048e3656912c6533e32ee7aed"
            "29b721769ce64e43d57133b074d839d5"
            "31ed1f28510afb45ace10a1f4b794d6f");
  // RFC 8439 section 2.3.2: sequential key, structured nonce.
  std::uint8_t key[32];
  for (int i = 0; i < 32; ++i) key[i] = static_cast<std::uint8_t>(i);
  std::uint8_t nonce[12] = {0, 0, 0, 9, 0, 0, 0, 0x4a, 0, 0, 0, 0};
  EXPECT_EQ(keystream_hex(key, nonce, 1, 64),
            "10f1e7e4d13b5915500fdd1fa32071c4"
            "c7d1f4c733c068030422aa9ac3d46c4e"
            "d2826446079faa0914c2d705d98b02a2"
            "b5129cd1de164eb9cbd083e8a2503c4e");
}

TEST(ChaCha20, Rfc8439Vector) {
  // RFC 8439 §2.4.2.
  std::uint8_t key[32];
  for (int i = 0; i < 32; ++i) key[i] = static_cast<std::uint8_t>(i);
  std::uint8_t nonce[12] = {0, 0, 0, 0, 0, 0, 0, 0x4a, 0, 0, 0, 0};
  const char* msg =
      "Ladies and Gentlemen of the class of '99: If I could offer you only "
      "one tip for the future, sunscreen would be it.";
  std::vector<std::uint8_t> buf(
      reinterpret_cast<const std::uint8_t*>(msg),
      reinterpret_cast<const std::uint8_t*>(msg) + std::strlen(msg));
  ChaCha20 c(key, nonce, 1);
  c.crypt(buf.data(), buf.size());
  // Full 114-byte ciphertext from RFC 8439 section 2.4.2 (spans two
  // keystream blocks, so it also exercises the block-boundary refill).
  ASSERT_EQ(buf.size(), 114u);
  EXPECT_EQ(hex(buf),
            "6e2e359a2568f98041ba0728dd0d6981"
            "e97e7aec1d4360c20a27afccfd9fae0b"
            "f91b65c5524733ab8f593dabcd62b357"
            "1639d624e65152ab8f530c359f0861d8"
            "07ca0dbf500d6a6156a38e088a22b65e"
            "52bc514d16ccf806818ce91ab7793736"
            "5af90bbf74a35be6b40b8eedf2785e42"
            "874d");
  // Decrypt restores the plaintext.
  ChaCha20 d(key, nonce, 1);
  d.crypt(buf.data(), buf.size());
  EXPECT_EQ(std::memcmp(buf.data(), msg, buf.size()), 0);
}

TEST(ParseHexKey, Validation) {
  EXPECT_EQ(parse_hex_key("0aff").size(), 2u);
  EXPECT_EQ(parse_hex_key("0aff")[0], 0x0a);
  EXPECT_EQ(parse_hex_key("0aff")[1], 0xff);
  EXPECT_TRUE(parse_hex_key("0af").empty());   // odd length
  EXPECT_TRUE(parse_hex_key("zz").empty());    // bad digit
}

TEST(ReplayWindow, AcceptsFreshRejectsReplayAndStale) {
  SecurityAssociation sa;
  EXPECT_TRUE(sa.replay_check_and_update(5));
  EXPECT_FALSE(sa.replay_check_and_update(5));   // exact replay
  EXPECT_TRUE(sa.replay_check_and_update(3));    // in-window, fresh
  EXPECT_FALSE(sa.replay_check_and_update(3));
  EXPECT_TRUE(sa.replay_check_and_update(100));  // window advances
  EXPECT_FALSE(sa.replay_check_and_update(36));  // fell off the 64 window
  EXPECT_TRUE(sa.replay_check_and_update(37));   // oldest in-window slot
  EXPECT_FALSE(sa.replay_check_and_update(0));   // seq 0 invalid
}

// ---------------------------------------------------------------------------

class IpsecFixture : public ::testing::Test {
 protected:
  IpsecFixture() {
    plugin::PluginMsg addsa;
    addsa.custom_name = "addsa";
    addsa.args.set("spi", "1000");
    addsa.args.set("auth_key", "00112233445566778899aabbccddeeff");
    addsa.args.set("enc_key",
                   "000102030405060708090a0b0c0d0e0f"
                   "101112131415161718191a1b1c1d1e1f");
    plugin::PluginReply reply;
    EXPECT_EQ(plugin_.handle_message(addsa, reply), Status::ok);
  }

  IpsecInstance* instance(IpsecMode mode) {
    instances_.push_back(std::make_unique<IpsecInstance>(plugin_, mode, 1000));
    return instances_.back().get();
  }

  static pkt::PacketPtr sample_packet(std::uint8_t fill = 0x5a) {
    pkt::UdpSpec s;
    s.src = netbase::IpAddr(netbase::Ipv4Addr(10, 0, 0, 1));
    s.dst = netbase::IpAddr(netbase::Ipv4Addr(20, 0, 0, 2));
    s.sport = 4000;
    s.dport = 500;
    s.payload_len = 64;
    s.payload_fill = fill;
    return pkt::build_udp(s);
  }

  IpsecPlugin plugin_;
  std::vector<std::unique_ptr<IpsecInstance>> instances_;
};

TEST_F(IpsecFixture, AhAddVerifyRoundTrip) {
  auto* add = instance(IpsecMode::ah_add);
  auto* verify = instance(IpsecMode::ah_verify);

  auto p = sample_packet();
  auto orig = pkt::clone_packet(*p);
  ASSERT_EQ(add->handle_packet(*p, nullptr), Verdict::cont);
  EXPECT_EQ(p->size(), orig->size() + 28);
  EXPECT_EQ(p->data()[9], 51);  // proto = AH
  EXPECT_TRUE(pkt::Ipv4Header::verify_checksum({p->data(), 20}));

  ASSERT_EQ(verify->handle_packet(*p, nullptr), Verdict::cont);
  EXPECT_EQ(p->size(), orig->size());
  EXPECT_EQ(0, std::memcmp(p->data(), orig->data(), orig->size()));
  EXPECT_EQ(verify->counters().auth_failures, 0u);
}

TEST_F(IpsecFixture, AhVerifyDetectsTamper) {
  auto* add = instance(IpsecMode::ah_add);
  auto* verify = instance(IpsecMode::ah_verify);
  auto p = sample_packet();
  add->handle_packet(*p, nullptr);
  p->data()[p->size() - 1] ^= 0x01;  // flip a payload bit
  EXPECT_EQ(verify->handle_packet(*p, nullptr), Verdict::drop);
  EXPECT_EQ(verify->counters().auth_failures, 1u);
}

TEST_F(IpsecFixture, AhReplayDropped) {
  auto* add = instance(IpsecMode::ah_add);
  auto* verify = instance(IpsecMode::ah_verify);
  auto p = sample_packet();
  add->handle_packet(*p, nullptr);
  auto replay = pkt::clone_packet(*p);
  EXPECT_EQ(verify->handle_packet(*p, nullptr), Verdict::cont);
  EXPECT_EQ(verify->handle_packet(*replay, nullptr), Verdict::drop);
  EXPECT_EQ(verify->counters().replay_drops, 1u);
}

TEST_F(IpsecFixture, EspEncryptDecryptRoundTrip) {
  auto* enc = instance(IpsecMode::esp_encrypt);
  auto* dec = instance(IpsecMode::esp_decrypt);
  auto p = sample_packet(0x11);
  auto orig = pkt::clone_packet(*p);

  ASSERT_EQ(enc->handle_packet(*p, nullptr), Verdict::cont);
  EXPECT_EQ(p->data()[9], 50);  // proto = ESP
  EXPECT_EQ(p->size(), orig->size() + 8 + 2 + 16);
  // The payload must actually be encrypted (differs from plaintext).
  EXPECT_NE(0, std::memcmp(p->data() + 28, orig->data() + 20, 20));

  ASSERT_EQ(dec->handle_packet(*p, nullptr), Verdict::cont);
  EXPECT_EQ(p->size(), orig->size());
  EXPECT_EQ(0, std::memcmp(p->data(), orig->data(), orig->size()));
}

TEST_F(IpsecFixture, EspDetectsCiphertextTamper) {
  auto* enc = instance(IpsecMode::esp_encrypt);
  auto* dec = instance(IpsecMode::esp_decrypt);
  auto p = sample_packet();
  enc->handle_packet(*p, nullptr);
  p->data()[30] ^= 0xff;
  EXPECT_EQ(dec->handle_packet(*p, nullptr), Verdict::drop);
  EXPECT_EQ(dec->counters().auth_failures, 1u);
}

TEST_F(IpsecFixture, EspReplayDropped) {
  auto* enc = instance(IpsecMode::esp_encrypt);
  auto* dec = instance(IpsecMode::esp_decrypt);
  auto p = sample_packet();
  enc->handle_packet(*p, nullptr);
  auto replay = pkt::clone_packet(*p);
  EXPECT_EQ(dec->handle_packet(*p, nullptr), Verdict::cont);
  EXPECT_EQ(dec->handle_packet(*replay, nullptr), Verdict::drop);
}

TEST_F(IpsecFixture, WrongSpiDropsAsMalformed) {
  auto* enc = instance(IpsecMode::esp_encrypt);
  auto p = sample_packet();
  enc->handle_packet(*p, nullptr);
  instances_.push_back(
      std::make_unique<IpsecInstance>(plugin_, IpsecMode::esp_decrypt, 77));
  auto* dec = instances_.back().get();
  EXPECT_EQ(dec->handle_packet(*p, nullptr), Verdict::drop);  // no SA 77
}

TEST_F(IpsecFixture, Ipv6AhRoundTrip) {
  auto* add = instance(IpsecMode::ah_add);
  auto* verify = instance(IpsecMode::ah_verify);
  pkt::UdpSpec s;
  s.src = *netbase::IpAddr::parse("2001:db8::1");
  s.dst = *netbase::IpAddr::parse("2001:db8::2");
  s.sport = 1;
  s.dport = 2;
  s.payload_len = 40;
  auto p = pkt::build_udp(s);
  auto orig = pkt::clone_packet(*p);
  ASSERT_EQ(add->handle_packet(*p, nullptr), Verdict::cont);
  EXPECT_EQ(p->data()[6], 51);
  ASSERT_EQ(verify->handle_packet(*p, nullptr), Verdict::cont);
  EXPECT_EQ(0, std::memcmp(p->data(), orig->data(), orig->size()));
}

TEST(IpsecPlugin, InstanceConfigValidation) {
  IpsecPlugin p;
  plugin::InstanceId id = plugin::kNoInstance;
  EXPECT_EQ(p.create_instance({{"mode", "ah-add"}, {"spi", "5"}}, id),
            Status::ok);
  EXPECT_EQ(p.create_instance({{"mode", "bogus"}, {"spi", "5"}}, id),
            Status::invalid_argument);
  EXPECT_EQ(p.create_instance({{"mode", "ah-add"}}, id),
            Status::invalid_argument);
  plugin::PluginMsg bad;
  bad.custom_name = "addsa";
  bad.args.set("spi", "1");
  bad.args.set("auth_key", "zz");
  plugin::PluginReply reply;
  EXPECT_EQ(p.handle_message(bad, reply), Status::invalid_argument);
}

}  // namespace
}  // namespace rp::ipsec

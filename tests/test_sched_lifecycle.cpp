// Scheduler soft-state lifecycle against the flow table (§5.2): every way a
// flow-table entry can die — explicit removal, idle expiry, LRU recycling at
// the record cap, filter/instance purge — must end with the scheduler's
// per-flow state freed once the queue drains, and never before the queued
// packets are served. This is the regression net over the DRR/H-FSC/Eiffel
// `flow_removed` paths (drained-queue destruction, orphan draining, fallback
// sweeping, H-FSC sub-queue erasure).
#include <gtest/gtest.h>

#include <vector>

#include "aiu/flow_table.hpp"
#include "sched/drr.hpp"
#include "sched/eiffel.hpp"
#include "sched/hfsc.hpp"
#include "tgen/workload.hpp"

namespace rp::sched {
namespace {

using netbase::Status;

constexpr std::size_t kSchedGate = aiu::gate_index(plugin::PluginType::sched);

pkt::PacketPtr flow_pkt(std::uint16_t flow, std::size_t payload) {
  pkt::UdpSpec s;
  s.src = netbase::IpAddr(netbase::Ipv4Addr(
      10, 0, static_cast<std::uint8_t>(flow >> 8),
      static_cast<std::uint8_t>(flow)));
  s.dst = netbase::IpAddr(netbase::Ipv4Addr(20, 0, 0, 1));
  s.sport = flow;
  s.dport = 80;
  s.payload_len = payload;
  return pkt::build_udp(s);
}

// Binds `eng` at the sched gate of a fresh flow-table entry for `flow` and
// backlogs `pkts` packets through the entry's soft slot, exactly as the
// core's gate dispatch does.
pkt::FlowIndex bind_and_backlog(aiu::FlowTable& t, core::OutputScheduler& eng,
                                std::uint16_t flow, int pkts) {
  auto p0 = flow_pkt(flow, 100);
  const pkt::FlowIndex i = t.insert(p0->key, /*now=*/flow);
  aiu::GateBinding& g = t.rec(i).gates[kSchedGate];
  g.instance = &eng;
  for (int k = 0; k < pkts; ++k)
    EXPECT_TRUE(eng.enqueue(flow_pkt(flow, 100), &g.soft, 0));
  return i;
}

template <typename Engine>
void expiry_frees_state() {
  // Engine before table: ~FlowTable fires flow_removed on bound instances,
  // so the engine must outlive it (the order the kernel guarantees).
  // initial == max records: the table never grows, so gate-slot addresses
  // are stable for the whole test (the same invariant the kernel keeps by
  // purging before any reallocation-inducing reconfiguration).
  Engine eng{typename Engine::Config{}};
  aiu::FlowTable t(64, 32, 32);

  // Flows 0..4 are idle (drained) when the sweep fires and must be freed
  // immediately; 5..9 are still backlogged and must be kept as orphans
  // until served. Drain 0..4 before 5..9 exist so the order is engine-
  // independent.
  for (std::uint16_t f = 0; f < 5; ++f) bind_and_backlog(t, eng, f, 1);
  for (int k = 0; k < 5; ++k) ASSERT_NE(eng.dequeue(0), nullptr);
  for (std::uint16_t f = 5; f < 10; ++f) bind_and_backlog(t, eng, f, 2);
  EXPECT_EQ(eng.queue_count(), 10u);

  EXPECT_EQ(t.expire_idle(1000), 10u);
  // Drained flows were freed by their flow_removed; backlogged ones remain.
  EXPECT_EQ(eng.queue_count(), 5u);
  EXPECT_EQ(eng.backlog_packets(), 10u);
  for (int k = 0; k < 10; ++k) ASSERT_NE(eng.dequeue(0), nullptr);
  EXPECT_EQ(eng.queue_count(), 0u);  // orphans freed the moment they drained
  EXPECT_TRUE(eng.empty());
}

TEST(SchedHandleLifecycle, DrrExpirySweepFreesPerFlowState) {
  expiry_frees_state<DrrInstance>();
}
TEST(SchedHandleLifecycle, EiffelExpirySweepFreesPerFlowState) {
  expiry_frees_state<EiffelInstance>();
}

template <typename Engine>
void eviction_frees_state() {
  // Cap the table at 4 records: the 5th insert recycles the LRU entry and
  // must fire flow_removed for its scheduler binding. Engine declared
  // first so it outlives the table's teardown callbacks.
  Engine eng{typename Engine::Config{}};
  aiu::FlowTable t(64, 4, 4);
  for (std::uint16_t f = 0; f < 4; ++f) bind_and_backlog(t, eng, f, 1);
  EXPECT_EQ(eng.queue_count(), 4u);

  bind_and_backlog(t, eng, 100, 1);
  EXPECT_EQ(t.stats().recycled, 1u);
  // Flow 0 (the LRU victim) is orphaned but still holds its packet.
  EXPECT_EQ(eng.queue_count(), 5u);
  EXPECT_EQ(eng.backlog_packets(), 5u);
  for (int k = 0; k < 5; ++k) ASSERT_NE(eng.dequeue(0), nullptr);
  // The victim's orphan died on drain; the four still-bound flows keep
  // their (idle) queues until their table entries go.
  EXPECT_EQ(eng.queue_count(), 4u);
  t.clear();
  EXPECT_EQ(eng.queue_count(), 0u);
}

TEST(SchedHandleLifecycle, DrrEvictionRecycleFreesState) {
  eviction_frees_state<DrrInstance>();
}
TEST(SchedHandleLifecycle, EiffelEvictionRecycleFreesState) {
  eviction_frees_state<EiffelInstance>();
}

template <typename Engine>
void filter_flip_frees_state() {
  Engine eng{typename Engine::Config{}};
  aiu::FlowTable t(64, 32, 32);
  // Two filters; flipping (removing) one must only purge its own flows.
  aiu::FilterRecord keep{}, flip{};
  for (std::uint16_t f = 0; f < 6; ++f) {
    const pkt::FlowIndex i = bind_and_backlog(t, eng, f, 1);
    t.rec(i).gates[kSchedGate].filter = (f < 3) ? &flip : &keep;
  }
  EXPECT_EQ(t.purge_filter(&flip), 3u);
  EXPECT_EQ(t.active(), 3u);
  EXPECT_EQ(eng.backlog_packets(), 6u);  // queued packets still serviced
  for (int k = 0; k < 6; ++k) ASSERT_NE(eng.dequeue(0), nullptr);
  EXPECT_EQ(eng.queue_count(), 3u);  // surviving (bound, idle) flows only
  EXPECT_EQ(t.purge_instance(&eng), 3u);
  EXPECT_EQ(eng.queue_count(), 0u);  // idle at purge: freed immediately
}

TEST(SchedHandleLifecycle, DrrFilterFlipPurgesOnlyItsFlows) {
  filter_flip_frees_state<DrrInstance>();
}
TEST(SchedHandleLifecycle, EiffelFilterFlipPurgesOnlyItsFlows) {
  filter_flip_frees_state<EiffelInstance>();
}

TEST(SchedHandleLifecycle, HfscSubqueuesEraseOnDrainAcrossRemoval) {
  // Engine before table: the last three flow entries stay in the table
  // until its destructor, which fires flow_removed on the bound engine.
  HfscInstance::Config cfg;
  HfscInstance eng(cfg);
  aiu::FlowTable t(64, 32, 32);
  const ServiceCurve rate{12.5e6, 0, 12.5e6};
  ASSERT_EQ(eng.add_class("bulk", "root", rate, rate, {},
                          HfscInstance::LeafQdisc::drr, 1500),
            Status::ok);
  auto all = aiu::Filter::parse("<*, *, udp, *, *, *>");
  ASSERT_TRUE(all.has_value());
  ASSERT_EQ(eng.bind_class(*all, "bulk"), Status::ok);

  for (std::uint16_t f = 0; f < 8; ++f) bind_and_backlog(t, eng, f, 2);
  EXPECT_EQ(eng.subqueue_count(), 8u);

  // H-FSC's per-flow state is the leaf sub-queue, keyed by flow — removal
  // of the table entry is a no-op for it (the soft slot caches the leaf
  // class, shared by construction), but draining must erase it.
  EXPECT_EQ(t.expire_idle(1000), 8u);
  EXPECT_EQ(eng.subqueue_count(), 8u);  // still backlogged
  for (int k = 0; k < 16; ++k) ASSERT_NE(eng.dequeue(1'000'000'000), nullptr);
  EXPECT_EQ(eng.subqueue_count(), 0u);  // every drained sub-queue erased
  EXPECT_TRUE(eng.empty());

  // A fresh burst after total drain re-creates sub-queues from scratch.
  for (std::uint16_t f = 0; f < 3; ++f) bind_and_backlog(t, eng, f, 1);
  EXPECT_EQ(eng.subqueue_count(), 3u);
  for (int k = 0; k < 3; ++k) ASSERT_NE(eng.dequeue(2'000'000'000), nullptr);
  EXPECT_EQ(eng.subqueue_count(), 0u);
}

TEST(SchedHandleLifecycle, DrrFallbackSweepBoundsSelfClassifiedState) {
  // Self-classified (null-soft) DRR queues survive a drain (their weights
  // are cheap to keep) but must not accrete without bound: the sweep
  // watermark caps the idle population.
  DrrInstance::Config cfg;
  DrrInstance eng(cfg);
  for (std::uint32_t f = 0; f < 6000; ++f) {
    auto p = flow_pkt(static_cast<std::uint16_t>(f), 64);
    ASSERT_TRUE(eng.enqueue(std::move(p), nullptr, 0));
    ASSERT_NE(eng.dequeue(0), nullptr);  // drain immediately: all idle
  }
  // The 4096-entry watermark fired at least once on the way to 6000.
  EXPECT_LT(eng.queue_count(), 4200u);
  EXPECT_TRUE(eng.empty());
}

}  // namespace
}  // namespace rp::sched

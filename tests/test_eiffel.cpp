// Property suite for the Eiffel scheduler (src/sched/eiffel.*): rank
// functions against a naive sorted-list oracle, FFS-bitmap structure
// invariants after every operation under a seeded million-flow churn soak,
// and the window edge cases (rank past the horizon, all-buckets-drain,
// rotation/wraparound reuse of bucket storage).
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "netbase/rng.hpp"
#include "sched/eiffel.hpp"
#include "tgen/workload.hpp"

namespace rp::sched {
namespace {

using netbase::Rng;
using netbase::Status;

pkt::PacketPtr flow_pkt(std::uint16_t flow, std::size_t payload) {
  pkt::UdpSpec s;
  s.src = netbase::IpAddr(netbase::Ipv4Addr(10, 0, static_cast<std::uint8_t>(flow >> 8),
                                            static_cast<std::uint8_t>(flow)));
  s.dst = netbase::IpAddr(netbase::Ipv4Addr(20, 0, 0, 1));
  s.sport = flow;
  s.dport = 80;
  s.payload_len = payload;
  return pkt::build_udp(s);
}

plugin::PluginReply send(EiffelInstance& e, const char* name,
                         std::initializer_list<std::pair<const char*, std::string>> kv,
                         Status expect = Status::ok) {
  plugin::PluginMsg msg;
  msg.custom_name = name;
  for (const auto& [k, v] : kv) msg.args.set(k, v);
  plugin::PluginReply reply;
  EXPECT_EQ(e.handle_message(msg, reply), expect) << name;
  return reply;
}

// ---------------------------------------------------------------------------
// Rank functions vs a naive sorted-list oracle: one packet per flow, so the
// serve order must equal a stable sort of (bucket, enqueue order).

TEST(Eiffel, PrioMatchesSortedOracle) {
  EiffelInstance::Config cfg;
  cfg.rank = EiffelInstance::RankFn::prio;
  const int kFlows = 200;
  // Soft slots must outlive the instance (its destructor clears them), so
  // they are declared first — the same contract the flow table honours.
  std::vector<void*> soft(kFlows, nullptr);
  EiffelInstance e(cfg);
  Rng rng(1);

  std::vector<std::pair<std::uint64_t, std::uint16_t>> oracle;  // (rank, flow)
  for (std::uint16_t f = 0; f < kFlows; ++f) {
    const auto prio = static_cast<std::uint32_t>(rng.below(5000));  // > horizon
    send(e, "setprio",
         {{"filter", "<10.0." + std::to_string(f >> 8) + "." +
                         std::to_string(f & 255) + ", *, udp, *, *, *>"},
          {"prio", std::to_string(prio)}});
    oracle.emplace_back(std::min<std::uint64_t>(prio, e.debug().horizon - 1), f);
  }
  for (std::uint16_t f = 0; f < kFlows; ++f)
    ASSERT_TRUE(e.enqueue(flow_pkt(f, 100), &soft[f], 0));
  std::stable_sort(oracle.begin(), oracle.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  for (int i = 0; i < kFlows; ++i) {
    auto p = e.dequeue(0);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(p->key.sport, oracle[static_cast<std::size_t>(i)].second)
        << "position " << i;
  }
  EXPECT_TRUE(e.empty());
  std::string why;
  EXPECT_TRUE(e.validate(&why)) << why;
}

TEST(Eiffel, VtimeMatchesSortedOracle) {
  EiffelInstance::Config cfg;  // rank=vtime by default
  const int kFlows = 300;
  std::vector<void*> soft(kFlows, nullptr);  // must outlive the instance
  EiffelInstance e(cfg);
  Rng rng(2);
  const std::uint64_t gran = e.debug().gran;

  std::vector<std::pair<std::uint64_t, std::uint16_t>> oracle;
  for (std::uint16_t f = 0; f < kFlows; ++f) {
    const auto w = static_cast<std::uint32_t>(1 + rng.below(8));
    if (w != 1)
      send(e, "setweight",
           {{"filter", "<10.0." + std::to_string(f >> 8) + "." +
                           std::to_string(f & 255) + ", *, udp, *, *, *>"},
            {"weight", std::to_string(w)}});
    auto p = flow_pkt(f, 64 + rng.below(1400));
    // First packet of a fresh flow: start tag = vtime (0), finish tag =
    // len*256/weight, bucket = finish/gran — the vtime rank function.
    const std::uint64_t vlen =
        std::max<std::uint64_t>(1, p->size() * 256ull / w);
    oracle.emplace_back(vlen / gran, f);
    ASSERT_TRUE(e.enqueue(std::move(p), &soft[f], 0));
  }
  std::stable_sort(oracle.begin(), oracle.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  for (int i = 0; i < kFlows; ++i) {
    auto p = e.dequeue(0);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(p->key.sport, oracle[static_cast<std::size_t>(i)].second)
        << "position " << i;
  }
  std::string why;
  EXPECT_TRUE(e.validate(&why)) << why;
}

TEST(Eiffel, DeadlineMatchesSortedOracle) {
  EiffelInstance::Config cfg;
  cfg.rank = EiffelInstance::RankFn::deadline;
  const int kFlows = 120;
  std::vector<void*> soft(kFlows, nullptr);  // must outlive the instance
  EiffelInstance e(cfg);
  Rng rng(3);
  const std::uint64_t gran = e.debug().gran;
  const netbase::SimTime now = 1'000'000;

  std::vector<std::pair<std::uint64_t, std::uint16_t>> oracle;
  for (std::uint16_t f = 0; f < kFlows; ++f) {
    // Random per-flow rate 1..80 Mbit/s via setcurve (hfsc units).
    const std::uint64_t bps = 1'000'000 + rng.below(79'000'000);
    send(e, "setcurve",
         {{"filter", "<10.0." + std::to_string(f >> 8) + "." +
                         std::to_string(f & 255) + ", *, udp, *, *, *>"},
          {"m1_bps", std::to_string(bps)},
          {"m2_bps", std::to_string(bps)}});
    auto p = flow_pkt(f, 200 + rng.below(1200));
    // Reference deadline: the same RuntimeSc machinery H-FSC uses.
    RuntimeSc ref;
    ref.init(ServiceCurve{static_cast<double>(bps) / 8.0, 0,
                          static_cast<double>(bps) / 8.0},
             static_cast<double>(now), 0);
    const double dl = ref.y2x(static_cast<double>(p->size()));
    oracle.emplace_back(static_cast<std::uint64_t>(dl) / gran, f);
    ASSERT_TRUE(e.enqueue(std::move(p), &soft[f], now));
  }
  std::stable_sort(oracle.begin(), oracle.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  for (int i = 0; i < kFlows; ++i) {
    auto p = e.dequeue(now);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(p->key.sport, oracle[static_cast<std::size_t>(i)].second)
        << "position " << i;
  }
  std::string why;
  EXPECT_TRUE(e.validate(&why)) << why;
}

// ---------------------------------------------------------------------------
// Window edge cases.

TEST(Eiffel, RankPastHorizonParksInFarListAndDrains) {
  EiffelInstance::Config cfg;
  cfg.horizon = 64;
  cfg.gran = 1;  // 1 byte per bucket: big packets overshoot the window
  EiffelInstance e(cfg);
  void* a = nullptr;
  void* b = nullptr;

  ASSERT_TRUE(e.enqueue(flow_pkt(1, 72), &a, 0));    // ~100B -> near base
  ASSERT_TRUE(e.enqueue(flow_pkt(2, 3972), &b, 0));  // ~4000B -> past 2H
  EXPECT_EQ(e.debug().far, 1u);
  std::string why;
  ASSERT_TRUE(e.validate(&why)) << why;

  auto p1 = e.dequeue(0);
  ASSERT_NE(p1, nullptr);
  EXPECT_EQ(p1->key.sport, 1);
  auto p2 = e.dequeue(0);  // forces the window jump to the far rank
  ASSERT_NE(p2, nullptr);
  EXPECT_EQ(p2->key.sport, 2);
  EXPECT_GE(e.rotations(), 1u);
  EXPECT_EQ(e.debug().far, 0u);
  EXPECT_TRUE(e.empty());
  ASSERT_TRUE(e.validate(&why)) << why;
}

TEST(Eiffel, AllBucketsDrainThenWindowSnapsOnReuse) {
  EiffelInstance::Config cfg;
  cfg.horizon = 64;
  cfg.gran = 64;
  std::vector<void*> soft(32, nullptr);  // must outlive the instance
  EiffelInstance e(cfg);
  for (std::uint16_t f = 0; f < 32; ++f)
    ASSERT_TRUE(e.enqueue(flow_pkt(f, 64 + f * 40u), &soft[f], 0));
  int served = 0;
  while (auto p = e.dequeue(0)) ++served;
  EXPECT_EQ(served, 32);
  EXPECT_TRUE(e.empty());
  EXPECT_EQ(e.debug().active_flows, 0u);

  // Re-activation after a full drain: ranks continue from the flows' stale
  // finish tags, far beyond the old window — the window must snap, not spin.
  const auto rot_before = e.rotations();
  for (std::uint16_t f = 0; f < 32; ++f)
    ASSERT_TRUE(e.enqueue(flow_pkt(f, 500), &soft[f], 0));
  served = 0;
  while (auto p = e.dequeue(0)) ++served;
  EXPECT_EQ(served, 32);
  EXPECT_LE(e.rotations() - rot_before, 8u);  // snapped, not rotated H-wise
  std::string why;
  EXPECT_TRUE(e.validate(&why)) << why;
}

TEST(Eiffel, WraparoundReusesBucketStorage) {
  EiffelInstance::Config cfg;
  cfg.horizon = 64;
  cfg.gran = 32;
  cfg.per_flow_limit = 100000;
  EiffelInstance e(cfg);
  void* soft[2] = {};
  std::map<std::uint16_t, std::uint64_t> last_seq;
  std::map<std::uint16_t, std::uint64_t> next_seq;
  // Long alternating run: every packet advances the finish tag by ~15-45
  // buckets, so the 64-bucket rings rotate thousands of times.
  for (int i = 0; i < 4000; ++i) {
    for (std::uint16_t f = 0; f < 2; ++f) {
      auto p = flow_pkt(f, 500 + 480u * f);
      p->arrival = static_cast<netbase::SimTime>(++next_seq[f]);
      ASSERT_TRUE(e.enqueue(std::move(p), &soft[f], 0));
    }
    if (i % 2 == 0) {
      auto p = e.dequeue(0);
      ASSERT_NE(p, nullptr);
      // Intra-flow FIFO must survive rotation.
      EXPECT_GT(static_cast<std::uint64_t>(p->arrival), last_seq[p->key.sport]);
      last_seq[p->key.sport] = static_cast<std::uint64_t>(p->arrival);
    }
  }
  while (auto p = e.dequeue(0)) {
    EXPECT_GT(static_cast<std::uint64_t>(p->arrival), last_seq[p->key.sport]);
    last_seq[p->key.sport] = static_cast<std::uint64_t>(p->arrival);
  }
  EXPECT_TRUE(e.empty());
  EXPECT_GT(e.rotations(), 100u);
  std::string why;
  EXPECT_TRUE(e.validate(&why)) << why;
}

TEST(Eiffel, EmptyDequeueAndPerFlowLimit) {
  EiffelInstance::Config cfg;
  cfg.per_flow_limit = 4;
  EiffelInstance e(cfg);
  EXPECT_EQ(e.dequeue(0), nullptr);
  void* soft = nullptr;
  for (int i = 0; i < 4; ++i)
    EXPECT_TRUE(e.enqueue(flow_pkt(1, 100), &soft, 0));
  EXPECT_FALSE(e.enqueue(flow_pkt(1, 100), &soft, 0));
  EXPECT_FALSE(e.enqueue(flow_pkt(1, 100), &soft, 0));
  EXPECT_EQ(e.drops(), 2u);
  EXPECT_EQ(e.backlog_packets(), 4u);
}

TEST(Eiffel, FallbackQueuesFreeOnDrain) {
  EiffelInstance::Config cfg;
  EiffelInstance e(cfg);
  // Flow-less traffic (no soft slot): self-classified per-flow queues...
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(e.enqueue(flow_pkt(7, 100), nullptr, 0));
    ASSERT_TRUE(e.enqueue(flow_pkt(8, 100), nullptr, 0));
  }
  EXPECT_EQ(e.fallback_count(), 2u);
  EXPECT_EQ(e.queue_count(), 2u);
  // ...that are freed the moment they drain, so churn cannot accrete state.
  while (auto p = e.dequeue(0)) {
  }
  EXPECT_EQ(e.fallback_count(), 0u);
  EXPECT_EQ(e.queue_count(), 0u);
}

TEST(Eiffel, FlowRemovedFreesStateAndClearsSlot) {
  EiffelInstance::Config cfg;
  EiffelInstance e(cfg);
  // Idle flow: freed immediately.
  void* a = nullptr;
  ASSERT_TRUE(e.enqueue(flow_pkt(1, 100), &a, 0));
  ASSERT_NE(e.dequeue(0), nullptr);
  ASSERT_NE(a, nullptr);
  e.flow_removed(a);
  EXPECT_EQ(e.queue_count(), 0u);

  // Backlogged flow: orphaned, kept until it drains, then freed.
  void* b = nullptr;
  for (int i = 0; i < 3; ++i)
    ASSERT_TRUE(e.enqueue(flow_pkt(2, 100), &b, 0));
  e.flow_removed(b);
  EXPECT_EQ(e.queue_count(), 1u);
  for (int i = 0; i < 3; ++i) ASSERT_NE(e.dequeue(0), nullptr);
  EXPECT_EQ(e.queue_count(), 0u);
  EXPECT_TRUE(e.empty());
  std::string why;
  EXPECT_TRUE(e.validate(&why)) << why;
}

TEST(Eiffel, BurstEnqueueMatchesLoopEnqueue) {
  EiffelInstance::Config cfg_a, cfg_b;
  cfg_a.per_flow_limit = cfg_b.per_flow_limit = 6;
  std::vector<void*> soft_loop(16, nullptr), soft_burst(16, nullptr);
  EiffelInstance loop_e(cfg_a), burst_e(cfg_b);
  Rng rng(11);

  for (int round = 0; round < 50; ++round) {
    const std::size_t n = 1 + rng.below(32);
    std::vector<pkt::PacketPtr> a(n), b(n);
    std::vector<void**> softs(n);
    std::vector<char> accepted_loop(n);
    std::unique_ptr<bool[]> acc(new bool[n]);
    for (std::size_t i = 0; i < n; ++i) {
      const auto f = static_cast<std::uint16_t>(rng.below(16));
      const std::size_t len = 64 + rng.below(800);
      a[i] = flow_pkt(f, len);
      b[i] = flow_pkt(f, len);
      const bool has_soft = rng.chance(0.8);
      softs[i] = has_soft ? &soft_burst[f] : nullptr;
      accepted_loop[i] = loop_e.enqueue(
          std::move(a[i]), has_soft ? &soft_loop[f] : nullptr, 0);
    }
    burst_e.enqueue_burst(b.data(), softs.data(), acc.get(), n, 0);
    for (std::size_t i = 0; i < n; ++i)
      ASSERT_EQ(static_cast<bool>(accepted_loop[i]), acc[i]) << i;
    // Drain a few from both; order must be identical.
    for (int d = 0; d < 8; ++d) {
      auto pl = loop_e.dequeue(0);
      auto pb = burst_e.dequeue(0);
      ASSERT_EQ(pl == nullptr, pb == nullptr);
      if (!pl) break;
      ASSERT_EQ(pl->key.sport, pb->key.sport);
      ASSERT_EQ(pl->size(), pb->size());
    }
  }
  std::string why;
  EXPECT_TRUE(loop_e.validate(&why)) << why;
  EXPECT_TRUE(burst_e.validate(&why)) << why;
}

TEST(Eiffel, ShapedDeadlineHonorsReleaseTimes) {
  EiffelInstance::Config cfg;
  cfg.rank = EiffelInstance::RankFn::deadline;
  cfg.shaped = true;
  cfg.default_curve = ServiceCurve{1.25e6, 0, 1.25e6};  // 10 Mbit/s
  EiffelInstance e(cfg);
  const std::uint64_t gran = e.debug().gran;
  void* soft = nullptr;
  const netbase::SimTime t0 = 1'000'000;
  std::size_t len = 0;
  for (int i = 0; i < 4; ++i) {
    auto p = flow_pkt(1, 1172);  // 1200B on the wire
    len = p->size();
    ASSERT_TRUE(e.enqueue(std::move(p), &soft, t0));
  }
  // 1200 bytes at 1.25 MB/s = 960 us per packet.
  const double per_pkt_ns = static_cast<double>(len) / 1.25e6 * 1e9;
  netbase::SimTime now = t0;
  for (int i = 1; i <= 4; ++i) {
    EXPECT_EQ(e.dequeue(now), nullptr);
    const netbase::SimTime wake = e.next_wakeup(now);
    ASSERT_GT(wake, now);
    const double expect = static_cast<double>(t0) + i * per_pkt_ns;
    EXPECT_NEAR(static_cast<double>(wake), expect,
                static_cast<double>(2 * gran));
    now = wake;
    auto p = e.dequeue(now);
    ASSERT_NE(p, nullptr);
  }
  EXPECT_TRUE(e.empty());
  EXPECT_EQ(e.next_wakeup(now), -1);
}

TEST(Eiffel, MessagesReportStateAndRejectBadArgs) {
  EiffelInstance::Config cfg;
  EiffelInstance e(cfg);
  void* soft = nullptr;
  ASSERT_TRUE(e.enqueue(flow_pkt(1, 100), &soft, 0));

  auto stats = send(e, "stats", {});
  EXPECT_NE(stats.text.find("backlog_pkts=1"), std::string::npos) << stats.text;
  EXPECT_NE(stats.text.find("rotations="), std::string::npos);
  auto ranks = send(e, "ranks", {});
  EXPECT_NE(ranks.text.find("rank=vtime"), std::string::npos) << ranks.text;
  EXPECT_NE(ranks.text.find("horizon=2048"), std::string::npos);
  auto occ = send(e, "occupancy", {});
  EXPECT_NE(occ.text.find("active_flows=1"), std::string::npos) << occ.text;

  send(e, "setweight", {{"filter", "<10.0.0.1, *, udp, *, *, *>"}},
       Status::invalid_argument);  // missing weight
  send(e, "setweight", {{"filter", "nonsense"}, {"weight", "2"}},
       Status::invalid_argument);
  send(e, "setprio", {{"filter", "<10.0.0.1, *, udp, *, *, *>"}},
       Status::invalid_argument);
  send(e, "setcurve", {{"filter", "<10.0.0.1, *, udp, *, *, *>"}},
       Status::invalid_argument);  // zero curve
  plugin::PluginMsg unknown;
  unknown.custom_name = "nope";
  plugin::PluginReply r;
  EXPECT_EQ(e.handle_message(unknown, r), Status::unsupported);
}

// ---------------------------------------------------------------------------
// The headline property: O(1)-structure invariants hold after *every*
// operation across a seeded churn soak over a million distinct flows —
// enqueue, dequeue, and flow-table-style removal interleaved.

TEST(SchedSoak, EiffelMillionFlowChurnBitmapConsistent) {
  EiffelInstance::Config cfg;
  cfg.per_flow_limit = 4;
  constexpr std::uint32_t kFlows = 1'000'000;
  constexpr std::uint64_t kOps = 2'000'000;
  std::vector<void*> soft(kFlows, nullptr);  // must outlive the instance
  EiffelInstance e(cfg);
  Rng rng(0xE1FFE1);

  auto key_pkt = [](std::uint32_t f) {
    pkt::UdpSpec s;
    s.src = netbase::IpAddr(netbase::Ipv4Addr(f | 0x0100'0000u));
    s.dst = netbase::IpAddr(netbase::Ipv4Addr(20, 0, 0, 1));
    s.sport = static_cast<std::uint16_t>(f);
    s.dport = static_cast<std::uint16_t>(f >> 16);
    s.payload_len = 36 + (f & 255);
    return pkt::build_udp(s);
  };

  std::uint64_t enq_ok = 0, enq_drop = 0, deq = 0, removed_pkts = 0;
  std::string why;
  for (std::uint64_t op = 0; op < kOps; ++op) {
    const auto dice = rng.below(100);
    if (dice < 55) {  // enqueue a random flow (first packet activates it)
      const std::uint32_t f = static_cast<std::uint32_t>(rng.below(kFlows));
      if (e.enqueue(key_pkt(f), &soft[f], 0))
        ++enq_ok;
      else
        ++enq_drop;
    } else if (dice < 90) {  // dequeue
      if (e.dequeue(0)) ++deq;
    } else {  // flow-table churn: evict a random bound flow
      const std::uint32_t f = static_cast<std::uint32_t>(rng.below(kFlows));
      if (soft[f]) {
        // Orphaned queues drain their backlog before dying; the packets are
        // still counted against the scheduler until served.
        e.flow_removed(soft[f]);
        soft[f] = nullptr;
      }
    }
    // The O(1) promise: the two-level bitmap stays coherent after every op.
    if (!e.validate(&why, /*deep=*/false))
      FAIL() << "op " << op << ": " << why;
    if (op % 500'000 == 0 && !e.validate(&why, /*deep=*/true))
      FAIL() << "deep, op " << op << ": " << why;
  }
  ASSERT_TRUE(e.validate(&why, /*deep=*/true)) << why;

  // Full drain: conservation must hold exactly.
  while (auto p = e.dequeue(0)) ++deq;
  EXPECT_EQ(deq, enq_ok);
  EXPECT_EQ(e.backlog_packets(), 0u);
  EXPECT_EQ(e.backlog_bytes(), 0u);
  EXPECT_EQ(e.drops(), enq_drop);
  (void)removed_pkts;

  // Tear down every surviving flow exactly as the flow table would; all
  // per-flow state must be gone afterwards.
  for (std::uint32_t f = 0; f < kFlows; ++f)
    if (soft[f]) {
      e.flow_removed(soft[f]);
      soft[f] = nullptr;
    }
  EXPECT_EQ(e.queue_count(), 0u);
  EXPECT_EQ(e.fallback_count(), 0u);
  ASSERT_TRUE(e.validate(&why, /*deep=*/true)) << why;
}

}  // namespace
}  // namespace rp::sched

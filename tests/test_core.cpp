// Tests for the IP core data path: validation, TTL/checksum handling, gate
// invocation and verdicts, routing (table + L4-switching plugin), ICMP
// error generation, output queueing, and the BestEffortCore baseline.
#include <gtest/gtest.h>

#include "core/best_effort.hpp"
#include "core/ip_core.hpp"
#include "netbase/byteorder.hpp"
#include "pkt/builder.hpp"
#include "pkt/headers.hpp"
#include "plugin/pcu.hpp"
#include "route/route_plugin.hpp"

namespace rp::core {
namespace {

using netbase::IpAddr;
using netbase::Ipv4Addr;
using plugin::PluginType;

class VerdictInstance final : public plugin::PluginInstance {
 public:
  explicit VerdictInstance(plugin::Verdict v) : verdict_(v) {}
  plugin::Verdict handle_packet(pkt::Packet&, void**) override {
    ++calls;
    return verdict_;
  }
  int calls{0};

 private:
  plugin::Verdict verdict_;
};

class VerdictPlugin final : public plugin::Plugin {
 public:
  VerdictPlugin(std::string name, PluginType type, plugin::Verdict v)
      : Plugin(std::move(name), type), verdict_(v) {}

 protected:
  std::unique_ptr<plugin::PluginInstance> make_instance(
      const plugin::Config&) override {
    return std::make_unique<VerdictInstance>(verdict_);
  }

 private:
  plugin::Verdict verdict_;
};

pkt::PacketPtr udp(const char* src, const char* dst, std::uint8_t ttl = 64,
                   std::uint16_t dport = 80) {
  pkt::UdpSpec s;
  s.src = *IpAddr::parse(src);
  s.dst = *IpAddr::parse(dst);
  s.sport = 1000;
  s.dport = dport;
  s.payload_len = 64;
  s.ttl = ttl;
  return pkt::build_udp(s);
}

class CoreTest : public ::testing::Test {
 protected:
  CoreTest()
      : aiu_(pcu_, clock_), core_(aiu_, routes_, ifs_, clock_) {
    ifs_.add("if0");
    ifs_.add("if1");
    routes_.add(*netbase::IpPrefix::parse("20.0.0.0/8"), {1, {}});
  }

  VerdictInstance* add_plugin(const char* name, PluginType type,
                              plugin::Verdict v, const char* filter) {
    pcu_.register_plugin(std::make_unique<VerdictPlugin>(name, type, v));
    plugin::InstanceId id = plugin::kNoInstance;
    pcu_.find(name)->create_instance({}, id);
    auto* inst =
        static_cast<VerdictInstance*>(pcu_.find(name)->instance(id));
    aiu_.create_filter(type, *aiu::Filter::parse(filter), inst);
    return inst;
  }

  netbase::SimClock clock_;
  plugin::PluginControlUnit pcu_;
  aiu::Aiu aiu_;
  route::RoutingTable routes_{"bsl"};
  netdev::InterfaceTable ifs_;
  IpCore core_;
};

TEST_F(CoreTest, ForwardsAndDecrementsTtlWithValidChecksum) {
  auto p = udp("10.0.0.1", "20.0.0.5", 64);
  core_.process(std::move(p));
  EXPECT_EQ(core_.counters().forwarded, 1u);
  auto out = core_.next_for_tx(1, 0);
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(out->out_iface, 1);
  pkt::Ipv4Header h;
  ASSERT_TRUE(h.parse(out->bytes()));
  EXPECT_EQ(h.ttl, 63);
  EXPECT_TRUE(pkt::Ipv4Header::verify_checksum({out->data(), 20}));
}

TEST_F(CoreTest, ResetCountersZeroesEveryFieldOnBothEntryPoints) {
  add_plugin("e1", PluginType::ipsec, plugin::Verdict::cont,
             "10.0.0.0/8 * udp * * *");
  // Drive both entry points: single-packet process() and a multi-packet
  // burst, with a mix of forwards and drops.
  core_.process(udp("10.0.0.1", "20.0.0.5"));
  core_.process(udp("10.0.0.1", "99.0.0.5"));  // no_route drop
  pkt::PacketPtr burst[3] = {udp("10.0.0.2", "20.0.0.5"),
                             udp("10.0.0.3", "20.0.0.5"),
                             udp("10.0.0.4", "20.0.0.5")};
  core_.process_burst({burst, 3});

  const CoreCounters& c = core_.counters();
  EXPECT_EQ(c.received, 5u);
  EXPECT_EQ(c.forwarded, 4u);
  EXPECT_EQ(c.total_drops(), 1u);
  EXPECT_GT(c.gate_calls, 0u);
  // process() is a burst of one: 2 single + 1 real burst = 3 chunks.
  EXPECT_EQ(c.bursts, 3u);
  EXPECT_EQ(c.burst_packets, 5u);

  core_.reset_counters();

  // Every field must read zero — including the counters the burst path
  // maintains (bursts, burst_packets, gate_calls), which a measurement
  // window started after reset depends on.
  EXPECT_EQ(c.received, 0u);
  EXPECT_EQ(c.forwarded, 0u);
  EXPECT_EQ(c.total_drops(), 0u);
  EXPECT_EQ(c.gate_calls, 0u);
  EXPECT_EQ(c.icmp_errors_sent, 0u);
  EXPECT_EQ(c.fragments_created, 0u);
  EXPECT_EQ(c.bursts, 0u);
  EXPECT_EQ(c.burst_packets, 0u);
  for (std::size_t r = 0; r < static_cast<std::size_t>(DropReason::kCount); ++r)
    EXPECT_EQ(c.drops[r], 0u) << "drop reason " << r;

  // Counting resumes cleanly on both paths after the reset.
  core_.process(udp("10.0.0.5", "20.0.0.5"));
  pkt::PacketPtr again[2] = {udp("10.0.0.6", "20.0.0.5"),
                             udp("10.0.0.7", "20.0.0.5")};
  core_.process_burst({again, 2});
  EXPECT_EQ(c.received, 3u);
  EXPECT_EQ(c.bursts, 2u);
  EXPECT_EQ(c.burst_packets, 3u);
}

TEST_F(CoreTest, DropsOnNoRoute) {
  core_.process(udp("10.0.0.1", "99.0.0.5"));
  EXPECT_EQ(core_.counters().dropped(DropReason::no_route), 1u);
  EXPECT_EQ(core_.counters().forwarded, 0u);
}

TEST_F(CoreTest, DropsOnTtlExpiry) {
  core_.process(udp("10.0.0.1", "20.0.0.5", 1));
  EXPECT_EQ(core_.counters().dropped(DropReason::ttl_expired), 1u);
}

TEST_F(CoreTest, DropsOnBadChecksum) {
  auto p = udp("10.0.0.1", "20.0.0.5");
  p->data()[10] ^= 0xff;  // corrupt the header checksum
  core_.process(std::move(p));
  EXPECT_EQ(core_.counters().dropped(DropReason::bad_checksum), 1u);
}

TEST_F(CoreTest, DropsMalformed) {
  auto p = pkt::make_packet(6);
  p->data()[0] = 0x00;
  core_.process(std::move(p));
  EXPECT_EQ(core_.counters().dropped(DropReason::malformed), 1u);
}

TEST_F(CoreTest, GateDropVerdictEnforcesPolicy) {
  auto* fw = add_plugin("fw", PluginType::firewall, plugin::Verdict::drop,
                        "<*, *, udp, *, 80, *>");
  core_.process(udp("10.0.0.1", "20.0.0.5", 64, 80));
  core_.process(udp("10.0.0.1", "20.0.0.5", 64, 443));
  EXPECT_EQ(fw->calls, 1);  // only the dport-80 flow hits the filter
  EXPECT_EQ(core_.counters().dropped(DropReason::policy), 1u);
  EXPECT_EQ(core_.counters().forwarded, 1u);
}

TEST_F(CoreTest, GateContinueInvokesPluginPerPacket) {
  auto* mon = add_plugin("mon", PluginType::stats, plugin::Verdict::cont,
                         "<*, *, *, *, *, *>");
  for (int i = 0; i < 5; ++i) core_.process(udp("10.0.0.1", "20.0.0.5"));
  EXPECT_EQ(mon->calls, 5);
  EXPECT_EQ(core_.counters().forwarded, 5u);
}

TEST_F(CoreTest, RoutingPluginOverridesTableLookup) {
  pcu_.register_plugin(std::make_unique<route::RoutePlugin>());
  plugin::InstanceId id = plugin::kNoInstance;
  plugin::Config cfg;
  cfg.set("iface", "0");
  ASSERT_EQ(pcu_.find("l4route")->create_instance(cfg, id), netbase::Status::ok);
  auto* inst = pcu_.find("l4route")->instance(id);
  // Route dport-80 flows out if0 even though the table says if1.
  aiu_.create_filter(PluginType::routing,
                     *aiu::Filter::parse("* * udp * 80 *"), inst);

  core_.process(udp("10.0.0.1", "20.0.0.5", 64, 80));
  core_.process(udp("10.0.0.1", "20.0.0.5", 64, 443));
  auto p80 = core_.next_for_tx(0, 0);
  ASSERT_NE(p80, nullptr);
  auto p443 = core_.next_for_tx(1, 0);
  ASSERT_NE(p443, nullptr);
}

TEST_F(CoreTest, IcmpTimeExceededEmitted) {
  core_.config().emit_icmp_errors = true;
  routes_.add(*netbase::IpPrefix::parse("10.0.0.0/8"), {0, {}});
  core_.process(udp("10.0.0.1", "20.0.0.5", 1));
  EXPECT_EQ(core_.counters().icmp_errors_sent, 1u);
  // The error is routed back toward the source out if0.
  auto icmp = core_.next_for_tx(0, 0);
  ASSERT_NE(icmp, nullptr);
  pkt::Ipv4Header h;
  ASSERT_TRUE(h.parse(icmp->bytes()));
  EXPECT_EQ(h.proto, 1);
  EXPECT_EQ(h.dst.to_string(), "10.0.0.1");
  pkt::IcmpHeader ih;
  ASSERT_TRUE(ih.parse(icmp->bytes().subspan(20)));
  EXPECT_EQ(ih.type, 11);
}

TEST_F(CoreTest, PortFifoLimitDropsExcess) {
  core_.config().port_fifo_limit = 2;
  for (int i = 0; i < 5; ++i) core_.process(udp("10.0.0.1", "20.0.0.5"));
  EXPECT_EQ(core_.counters().forwarded, 2u);
  EXPECT_EQ(core_.counters().dropped(DropReason::queue_full), 3u);
}

TEST_F(CoreTest, Ipv6ForwardingDecrementsHopLimit) {
  routes_.add(*netbase::IpPrefix::parse("2001:db8::/32"), {1, {}});
  pkt::UdpSpec s;
  s.src = *IpAddr::parse("2001:db8::1");
  s.dst = *IpAddr::parse("2001:db8::2");
  s.sport = 5;
  s.dport = 6;
  s.payload_len = 40;
  core_.process(pkt::build_udp(s));
  auto out = core_.next_for_tx(1, 0);
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(out->data()[7], 63);  // hop limit decremented
}

TEST(BestEffortCore, MatchesEisrForwardingBehaviour) {
  route::RoutingTable routes("bsl");
  netdev::InterfaceTable ifs;
  ifs.add("if0");
  ifs.add("if1");
  routes.add(*netbase::IpPrefix::parse("20.0.0.0/8"), {1, {}});
  BestEffortCore core(routes, ifs);

  core.process(udp("10.0.0.1", "20.0.0.5", 64));
  EXPECT_EQ(core.counters().forwarded, 1u);
  auto out = core.next_for_tx(1, 0);
  ASSERT_NE(out, nullptr);
  pkt::Ipv4Header h;
  ASSERT_TRUE(h.parse(out->bytes()));
  EXPECT_EQ(h.ttl, 63);
  EXPECT_TRUE(pkt::Ipv4Header::verify_checksum({out->data(), 20}));

  core.process(udp("10.0.0.1", "99.0.0.5"));
  EXPECT_EQ(core.counters().dropped(DropReason::no_route), 1u);
  core.process(udp("10.0.0.1", "20.0.0.5", 1));
  EXPECT_EQ(core.counters().dropped(DropReason::ttl_expired), 1u);
  EXPECT_FALSE(core.tx_backlog(0));
}

}  // namespace
}  // namespace rp::core

// Differential proof for the sharded datapath (PR 4 tentpole): replaying
// the same seeded trace through the single-threaded burst path and through
// the N-worker ShardedDatapath (N ∈ {1, 2, 4}) must yield, after quiesce:
//   * identical per-flow packet and byte counts (flow-export records),
//   * identical per-flow disposition sequences (every classified packet is
//     traced at sample_every=1; order within a flow is preserved because a
//     flow's packets always land on one worker in submission order),
//   * identical per-flow egress payload sequences, byte for byte,
//   * identical aggregate counters (excluding bursts/burst_packets, whose
//     chunking legitimately differs).
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <map>
#include <random>
#include <string>
#include <vector>

#include "parallel/sharded_datapath.hpp"
#include "pkt/builder.hpp"
#include "sched/eiffel.hpp"
#include "telemetry/flow_export.hpp"

namespace rp::parallel {
namespace {

using netbase::IpAddr;
using plugin::PluginType;

class CountingInstance final : public plugin::PluginInstance {
 public:
  explicit CountingInstance(plugin::Verdict v) : verdict_(v) {}
  plugin::Verdict handle_packet(pkt::Packet&, void**) override {
    ++calls;
    return verdict_;
  }
  std::uint64_t calls{0};

 private:
  plugin::Verdict verdict_;
};

class CountingPlugin final : public plugin::Plugin {
 public:
  CountingPlugin(std::string name, PluginType type, plugin::Verdict v)
      : Plugin(std::move(name), type), verdict_(v) {}

 protected:
  std::unique_ptr<plugin::PluginInstance> make_instance(
      const plugin::Config&) override {
    return std::make_unique<CountingInstance>(verdict_);
  }

 private:
  plugin::Verdict verdict_;
};

ShardOptions shard_options() {
  ShardOptions opt;
  opt.core.input_gates = {PluginType::stats, PluginType::firewall};
  opt.telemetry.sample_every = 1;  // trace every classified packet
  opt.telemetry.trace_ring = 4096;
  opt.telemetry.memory_sink_cap = 4096;
  return opt;
}

// Identical control state on every stack: two interfaces (if1 with a small
// MTU to force fragmentation), one route, a stats tap on all flows and a
// firewall dropping udp dport 80.
CountingInstance* add_gate(ShardContext& ctx, const char* name,
                           PluginType type, plugin::Verdict v,
                           const char* filter) {
  ctx.pcu().register_plugin(
      std::make_unique<CountingPlugin>(name, type, v));
  plugin::InstanceId id = plugin::kNoInstance;
  ctx.pcu().find(name)->create_instance({}, id);
  auto* inst =
      static_cast<CountingInstance*>(ctx.pcu().find(name)->instance(id));
  ctx.aiu().create_filter(type, *aiu::Filter::parse(filter), inst);
  return inst;
}

struct GateTaps {
  CountingInstance* stats{nullptr};
  CountingInstance* fw{nullptr};
};

GateTaps setup_stack(ShardContext& ctx, bool with_eiffel = false) {
  ctx.interfaces().add("if0");
  ctx.interfaces().add("if1").set_mtu(600);
  ctx.routes().add(*netbase::IpPrefix::parse("20.0.0.0/8"), {1, {}});
  GateTaps t;
  t.stats = add_gate(ctx, "st", PluginType::stats, plugin::Verdict::cont,
                     "<*, *, *, *, *, *>");
  t.fw = add_gate(ctx, "fw", PluginType::firewall, plugin::Verdict::drop,
                  "<*, *, udp, *, 80, *>");
  if (with_eiffel) {
    // Eiffel (vtime) on the egress port: forwarded packets go through the
    // batch enqueue ABI with per-flow soft slots and come back out of the
    // FFS rings, so the diff proves the whole scheduler path is
    // shard-count-invariant. The limit is high enough that no admission
    // drop can depend on drain timing (shards drain after every burst, the
    // reference only at the end).
    ctx.pcu().register_plugin(std::make_unique<sched::EiffelPlugin>());
    plugin::InstanceId id = plugin::kNoInstance;
    plugin::Config cfg{{"rank", "vtime"}, {"limit", "4096"}};
    ctx.pcu().find("eiffel")->create_instance(cfg, id);
    auto* inst = static_cast<sched::EiffelInstance*>(
        ctx.pcu().find("eiffel")->instance(id));
    EXPECT_NE(inst, nullptr);
    ctx.core().set_port_scheduler(1, inst);
  }
  return t;
}

pkt::PacketPtr udp(std::uint8_t src_lo, const char* dst, std::uint8_t ttl,
                   std::uint16_t dport, std::size_t payload = 64) {
  pkt::UdpSpec s;
  s.src = IpAddr(netbase::Ipv4Addr(10, 0, 0, src_lo));
  s.dst = *IpAddr::parse(dst);
  s.sport = 1000;
  s.dport = dport;
  s.payload_len = payload;
  s.ttl = ttl;
  return pkt::build_udp(s);
}

// Seeded trace over 24 flows mixing every path outcome: forwards, TTL
// expiry, corrupted checksums, malformed runts, no-route, firewall drops,
// and datagrams above if1's MTU.
std::vector<pkt::PacketPtr> make_trace(std::uint64_t seed, int n,
                                       bool allow_frags = true) {
  std::mt19937_64 rng(seed);
  std::vector<pkt::PacketPtr> t;
  t.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const auto flow = static_cast<std::uint8_t>(1 + rng() % 24);
    switch (rng() % 16) {
      case 0:
        t.push_back(udp(flow, "20.0.0.5", 1, 9000));  // ttl_expired
        break;
      case 1: {
        auto p = udp(flow, "20.0.0.5", 64, 9000);
        p->data()[10] ^= 0xff;  // bad_checksum
        t.push_back(std::move(p));
        break;
      }
      case 2: {
        auto p = pkt::make_packet(6);  // malformed runt (no flow key)
        p->data()[0] = 0x00;
        t.push_back(std::move(p));
        break;
      }
      case 3:
        t.push_back(udp(flow, "99.0.0.5", 64, 9000));  // no_route
        break;
      case 4:
        t.push_back(udp(flow, "20.0.0.5", 64, 80));  // firewall drop
        break;
      case 5:
        if (allow_frags) {
          t.push_back(udp(flow, "20.0.0.5", 64, 9000, 1400));  // fragmented
          break;
        }
        // A first fragment keeps the datagram's ports in its flow key but
        // reaches a port scheduler through a different queue than the
        // unfragmented packets of that flow, so cross-queue interleaving
        // would not be shard-invariant; the scheduler diffs keep every
        // datagram under if1's MTU instead.
        [[fallthrough]];
      default:
        t.push_back(
            udp(flow, "20.0.0.5", 64,
                static_cast<std::uint16_t>(9000 + rng() % 4)));
    }
  }
  return t;
}

// ---- per-flow observations, keyed by FlowKey::to_string() ----

struct FlowObs {
  std::uint64_t packets{0};
  std::uint64_t bytes{0};
  // (disposition, drop_reason) per classified packet, in flow order.
  std::vector<std::pair<std::uint8_t, std::uint8_t>> dispositions;
  // egress payloads in flow order (fragments form their own ports-0 key).
  std::vector<std::vector<std::uint8_t>> egress;
};
using FlowMap = std::map<std::string, FlowObs>;

void record_exports(FlowMap& m, const telemetry::MemorySink& sink) {
  for (std::size_t i = sink.stored(); i-- > 0;) {
    const telemetry::FlowExportRecord& r = sink.recent(i);
    FlowObs& o = m[r.key.to_string()];
    o.packets += r.packets;
    o.bytes += r.bytes;
  }
}

void record_traces(FlowMap& m, const telemetry::TraceRing& ring) {
  ASSERT_LE(ring.captured(), ring.capacity()) << "trace ring overflowed";
  for (std::size_t i = ring.stored(); i-- > 0;) {
    const telemetry::TraceRecord& r = ring.recent(i);
    m[r.key.to_string()].dispositions.emplace_back(
        static_cast<std::uint8_t>(r.disposition), r.drop_reason);
  }
}

void record_egress(FlowMap& m, const std::uint8_t* data, std::size_t size) {
  auto p = pkt::make_packet(size);
  std::copy(data, data + size, p->data());
  std::string key =
      pkt::extract_flow_key(*p) ? p->key.to_string() : std::string("?");
  m[key].egress.emplace_back(data, data + size);
}

void expect_flowmaps_equal(const FlowMap& ref, const FlowMap& dut) {
  ASSERT_EQ(ref.size(), dut.size());
  for (const auto& [key, a] : ref) {
    auto it = dut.find(key);
    ASSERT_NE(it, dut.end()) << "flow missing in sharded path: " << key;
    const FlowObs& b = it->second;
    EXPECT_EQ(a.packets, b.packets) << key;
    EXPECT_EQ(a.bytes, b.bytes) << key;
    EXPECT_EQ(a.dispositions, b.dispositions) << key;
    ASSERT_EQ(a.egress.size(), b.egress.size()) << key;
    for (std::size_t i = 0; i < a.egress.size(); ++i)
      EXPECT_EQ(a.egress[i], b.egress[i]) << key << " egress #" << i;
  }
}

void expect_counters_equal(const core::CoreCounters& a,
                           const core::CoreCounters& b) {
  EXPECT_EQ(a.received, b.received);
  EXPECT_EQ(a.forwarded, b.forwarded);
  EXPECT_EQ(a.gate_calls, b.gate_calls);
  EXPECT_EQ(a.icmp_errors_sent, b.icmp_errors_sent);
  EXPECT_EQ(a.fragments_created, b.fragments_created);
  for (std::size_t r = 0;
       r < static_cast<std::size_t>(core::DropReason::kCount); ++r)
    EXPECT_EQ(a.drops[r], b.drops[r]) << "drop reason " << r;
}

constexpr netbase::SimTime kSweepAll =
    std::numeric_limits<netbase::SimTime>::max();

void run_diff(std::uint32_t workers, std::uint64_t seed,
              bool with_eiffel = false,
              ShardedDatapath::IoOptions io = {}) {
  const bool multiq =
      io.mode == ShardedDatapath::IoOptions::Mode::multiq;
  SCOPED_TRACE("workers=" + std::to_string(workers) +
               " seed=" + std::to_string(seed) +
               (with_eiffel ? " eiffel" : "") + (multiq ? " multiq" : ""));
  auto trace = make_trace(seed, 600, /*allow_frags=*/!with_eiffel);

  // ---- reference: one private stack driven synchronously ----
  ShardContext ref(0, shard_options());
  GateTaps ref_taps = setup_stack(ref, with_eiffel);
  FlowMap ref_map;
  {
    std::vector<pkt::PacketPtr> burst;
    for (const auto& p : trace) {
      burst.push_back(pkt::clone_packet(*p));
      if (burst.size() == 32) {
        ref.core().process_burst(burst);
        burst.clear();
      }
    }
    if (!burst.empty()) ref.core().process_burst(burst);
    for (pkt::IfIndex ifx : {pkt::IfIndex{0}, pkt::IfIndex{1}})
      while (auto p = ref.core().next_for_tx(ifx, ref.clock().now()))
        record_egress(ref_map, p->data(), p->size());
    ref.aiu().flow_table().expire_idle(kSweepAll);
    record_exports(ref_map, static_cast<const telemetry::MemorySink&>(
                                ref.telemetry().sink()));
    record_traces(ref_map, ref.telemetry().traces());
  }

  // ---- device under test: the N-worker sharded datapath ----
  std::vector<GateTaps> taps(workers);
  ShardedDatapath::Options opt;
  opt.workers = workers;
  opt.ring_capacity = 256;
  opt.shard = shard_options();
  opt.io = io;
  ShardedDatapath dp(opt, [&taps, with_eiffel](ShardContext& ctx) {
    taps[ctx.id()] = setup_stack(ctx, with_eiffel);
  });

  // Each worker thread appends only to its own slot: no synchronisation
  // needed beyond the stop/join barrier.
  struct Egress {
    std::vector<std::vector<std::uint8_t>> packets;
  };
  std::vector<Egress> egress(workers);
  dp.set_tx_handler(
      [&egress](ShardContext& ctx, pkt::IfIndex, pkt::PacketPtr p) {
        egress[ctx.id()].packets.emplace_back(p->data(),
                                              p->data() + p->size());
      });

  for (const auto& p : trace) dp.submit(pkt::clone_packet(*p));
  dp.quiesce();
  dp.sweep_flows(kSweepAll);
  const core::CoreCounters dut_counters = dp.aggregate_counters();

  // Workers are joined by stop(); their private telemetry can then be read
  // from this thread without synchronisation.
  dp.stop();
  FlowMap dut_map;
  for (std::uint32_t i = 0; i < workers; ++i) {
    ShardContext& ctx = dp.worker(i).ctx();
    record_exports(dut_map, static_cast<const telemetry::MemorySink&>(
                                ctx.telemetry().sink()));
    record_traces(dut_map, ctx.telemetry().traces());
  }
  for (const auto& e : egress)
    for (const auto& bytes : e.packets)
      record_egress(dut_map, bytes.data(), bytes.size());

  // ---- equivalence ----
  expect_flowmaps_equal(ref_map, dut_map);
  expect_counters_equal(ref.core().counters(), dut_counters);

  std::uint64_t stats_calls = 0, fw_calls = 0;
  for (const auto& t : taps) {
    stats_calls += t.stats->calls;
    fw_calls += t.fw->calls;
  }
  EXPECT_EQ(ref_taps.stats->calls, stats_calls);
  EXPECT_EQ(ref_taps.fw->calls, fw_calls);

  // Sanity: the seeded trace really exercised every outcome.
  const core::CoreCounters& c = ref.core().counters();
  EXPECT_GT(c.forwarded, 0u);
  if (!with_eiffel) EXPECT_GT(c.fragments_created, 0u);
  EXPECT_GT(c.dropped(core::DropReason::ttl_expired), 0u);
  EXPECT_GT(c.dropped(core::DropReason::bad_checksum), 0u);
  EXPECT_GT(c.dropped(core::DropReason::malformed), 0u);
  EXPECT_GT(c.dropped(core::DropReason::no_route), 0u);
  EXPECT_GT(c.dropped(core::DropReason::policy), 0u);
}

TEST(ShardDiff, OneWorkerMatchesSingleThreaded) {
  for (std::uint64_t seed : {1ull, 42ull}) run_diff(1, seed);
}

TEST(ShardDiff, TwoWorkersMatchSingleThreaded) {
  for (std::uint64_t seed : {1ull, 42ull}) run_diff(2, seed);
}

// Non-power-of-two shard count: the fixed-point steering map
// ((hash >> 32) * n) >> 32 replaced (hash >> 56) % n, whose modulo bias
// and 256-value key space skewed non-power-of-two shard loads. N = 3 holds
// the new map to the same bit-equality as the power-of-two counts.
TEST(ShardDiff, ThreeWorkersMatchSingleThreaded) {
  for (std::uint64_t seed : {1ull, 42ull}) run_diff(3, seed);
}

TEST(ShardDiff, FourWorkersMatchSingleThreaded) {
  for (std::uint64_t seed : {1ull, 42ull, 1337ull}) run_diff(4, seed);
}

// The multi-queue backend (RETA steering, per-worker rx queue pairs, no
// central ingress ring) must be observationally identical to the steered
// mode — and therefore to the single-threaded reference. Migration stays
// off: it preserves aggregates but moves per-flow soft state across shards.
TEST(ShardDiff, MultiqWorkersMatchSingleThreaded) {
  ShardedDatapath::IoOptions io;
  io.mode = ShardedDatapath::IoOptions::Mode::multiq;
  for (std::uint32_t n : {1u, 2u, 3u, 4u})
    run_diff(n, 42, /*with_eiffel=*/false, io);
}

// Same differential with an Eiffel (vtime) scheduler on the egress port:
// per-flow egress byte totals and disposition sequences must be identical
// to the synchronous reference for every shard count.
TEST(ShardDiff, EiffelOneWorkerMatchesSingleThreaded) {
  run_diff(1, 7, /*with_eiffel=*/true);
}

TEST(ShardDiff, EiffelTwoWorkersMatchSingleThreaded) {
  run_diff(2, 7, /*with_eiffel=*/true);
}

TEST(ShardDiff, EiffelFourWorkersMatchSingleThreaded) {
  for (std::uint64_t seed : {7ull, 99ull}) run_diff(4, seed, true);
}

}  // namespace
}  // namespace rp::parallel

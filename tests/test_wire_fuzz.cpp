// Wire-path fuzz (ctest labels: fuzz / fuzz-parallel-tsan; run under
// ASan/UBSan in scripts/ci.sh): pushes >= 100k structure-aware adversarial
// packets per seed (tgen/adversarial.hpp — truncation, length-field lies,
// ext-header chain abuse, fragment overlap/teardrop/oversize) through the
// RouterKernel burst path, the ShardedDatapath, and the reassembler, and
// checks the hardening invariants — zero crashes, exact packet accounting
// (forwarded + dropped == injected), no counter drift, bounded reassembly
// state. Failures print a REPLAY line; the seed reproduces the byte-exact
// stream (same discipline as test_filter_fuzz).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/router.hpp"
#include "parallel/sharded_datapath.hpp"
#include "pkt/builder.hpp"
#include "pkt/reassembly.hpp"
#include "tgen/adversarial.hpp"

namespace rp {
namespace {

constexpr std::uint64_t kSeeds[] = {1, 7, 42, 20260806};
constexpr std::size_t kPacketsPerSeed = 100000;

// The accounting identity now spans the driver layer too: packets the NIC
// rx ring dropped on overflow never reach the core, so the wire-level
// balance is received + nic_rx_drops == injected (rx overflows used to be
// counted on the NIC but surfaced nowhere, leaving an invisible loss class).
void check_accounting(const core::CoreCounters& c, std::uint64_t injected,
                      std::uint64_t seed, const char* what,
                      std::uint64_t nic_rx_drops = 0) {
  if (c.received + nic_rx_drops != injected ||
      c.forwarded + c.total_drops() != c.received ||
      c.total_sanitize_drops() >
          c.dropped(core::DropReason::malformed) ||
      c.fragments_created != 0 || c.icmp_errors_sent != 0) {
    ADD_FAILURE() << "REPLAY: seed=" << seed << " " << what
                  << " injected=" << injected << " received=" << c.received
                  << " forwarded=" << c.forwarded
                  << " nic_rx_drops=" << nic_rx_drops
                  << " drops=" << c.total_drops()
                  << " sanitize=" << c.total_sanitize_drops()
                  << " malformed=" << c.dropped(core::DropReason::malformed)
                  << " frags=" << c.fragments_created
                  << " icmp=" << c.icmp_errors_sent;
  }
}

// Minimal stack the mutants are thrown at: two interfaces and default
// routes for both families, so every *well-formed* packet has somewhere to
// go and every drop is attributable to validation (or TTL/queueing), never
// to missing configuration.
void add_default_routes(route::RoutingTable& rt) {
  rt.add(*netbase::IpPrefix::parse("0.0.0.0/0"), {1, {}});
  rt.add(*netbase::IpPrefix::parse("::/0"), {1, {}});
}

TEST(WireFuzz, KernelSoakExactAccounting) {
  for (std::uint64_t seed : kSeeds) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    core::RouterKernel kernel;
    kernel.add_interface("if0");
    kernel.add_interface("if1");
    add_default_routes(kernel.routes());

    tgen::AdversarialGen gen(seed);
    std::vector<pkt::PacketPtr> batch;
    for (std::size_t i = 0; i < kPacketsPerSeed; ++i) {
      batch.push_back(gen.next());
      if (batch.size() == 32) {
        kernel.core().process_burst({batch.data(), batch.size()});
        batch.clear();
        while (kernel.core().next_for_tx(1, kernel.clock().now())) {
        }
      }
    }
    if (!batch.empty())
      kernel.core().process_burst({batch.data(), batch.size()});
    while (kernel.core().next_for_tx(1, kernel.clock().now())) {
    }
    check_accounting(kernel.core().counters(), kPacketsPerSeed, seed,
                     "kernel", kernel.interfaces().totals().rx_drops);
  }
}

// The clean control group must actually traverse: a sanitizer that dropped
// everything would also pass the accounting identity.
TEST(WireFuzz, CleanTrafficStillForwards) {
  core::RouterKernel kernel;
  kernel.add_interface("if0");
  kernel.add_interface("if1");
  add_default_routes(kernel.routes());

  tgen::AdversarialGen gen(kSeeds[0]);
  std::vector<pkt::PacketPtr> batch;
  for (std::size_t i = 0; i < 20000; ++i) {
    auto p = gen.next();
    if (gen.last_kind() == tgen::MutationKind::clean)
      batch.push_back(std::move(p));
    if (batch.size() == 32) {
      kernel.core().process_burst({batch.data(), batch.size()});
      batch.clear();
      while (kernel.core().next_for_tx(1, kernel.clock().now())) {
      }
    }
  }
  if (!batch.empty())
    kernel.core().process_burst({batch.data(), batch.size()});
  const auto& c = kernel.core().counters();
  EXPECT_GT(c.received, 0u);
  EXPECT_EQ(c.forwarded, c.received);  // clean packets all forward
  EXPECT_EQ(c.total_sanitize_drops(), 0u);
}

// Every v4 mutant is also fed to the reassembler, which must neither crash
// nor let adversarial series grow its state past the configured budgets.
TEST(WireFuzz, ReassemblerSoakBoundedState) {
  for (std::uint64_t seed : kSeeds) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    pkt::Ipv4Reassembler r;
    tgen::AdversarialGen gen(seed);
    netbase::SimTime now = 0;
    for (std::size_t i = 0; i < kPacketsPerSeed; ++i) {
      now += netbase::kNsPerMs;
      auto p = gen.next();
      if (!p->size() || (p->data()[0] >> 4) != 4) continue;
      r.feed(std::move(p), now);
      if (r.pending() > pkt::Ipv4Reassembler::kDefaultMaxPartials ||
          r.buffered_bytes() > pkt::Ipv4Reassembler::kDefaultMaxBytes) {
        ADD_FAILURE() << "REPLAY: seed=" << seed << " case=" << i
                      << " pending=" << r.pending()
                      << " buffered=" << r.buffered_bytes();
        break;
      }
      if (i % 4096 == 0) r.expire(now);
    }
  }
}

void shard_soak(std::uint32_t n_workers, std::uint64_t seed,
                parallel::ShardedDatapath::IoOptions io) {
  parallel::ShardedDatapath::Options opt;
  opt.workers = n_workers;
  opt.io = io;
  parallel::ShardedDatapath dp(opt, [](parallel::ShardContext& ctx) {
    ctx.interfaces().add("if0");
    ctx.interfaces().add("if1");
    add_default_routes(ctx.routes());
  });

  tgen::AdversarialGen gen(seed);
  for (std::size_t i = 0; i < kPacketsPerSeed; ++i) dp.submit(gen.next());
  dp.quiesce();
  const auto c = dp.aggregate_counters();
  check_accounting(c, kPacketsPerSeed, seed,
                   ("shard-n" + std::to_string(n_workers)).c_str(),
                   dp.aggregate_nic_counters().rx_drops);
  dp.stop();
}

TEST(WireFuzzShard, ShardSoakExactAccounting) {
  for (std::uint32_t n_workers : {2u, 4u})
    for (std::uint64_t seed : {kSeeds[0], kSeeds[3]}) {
      SCOPED_TRACE("workers=" + std::to_string(n_workers) +
                   " seed=" + std::to_string(seed));
      shard_soak(n_workers, seed, {});
    }
}

// Same soak through the multi-queue backend — adversarial bytes through the
// RETA steer, worker-owned rx drains, and the lossless retry loop, with the
// accounting identity extended by the per-shard NIC drop totals.
TEST(WireFuzzShard, MultiqSoakExactAccounting) {
  parallel::ShardedDatapath::IoOptions io;
  io.mode = parallel::ShardedDatapath::IoOptions::Mode::multiq;
  for (std::uint32_t n_workers : {2u, 4u}) {
    SCOPED_TRACE("workers=" + std::to_string(n_workers));
    shard_soak(n_workers, kSeeds[0], io);
  }
}

}  // namespace
}  // namespace rp

// Tests for the statistics plugin (the network-monitoring use case) and the
// routing table / L4-switching route plugin.
#include <gtest/gtest.h>

#include "pkt/builder.hpp"
#include "route/route_plugin.hpp"
#include "route/routing_table.hpp"
#include "stats/stats_plugin.hpp"

namespace rp {
namespace {

using netbase::Status;
using plugin::Verdict;

pkt::PacketPtr udp(std::uint16_t sport, std::size_t payload = 100) {
  pkt::UdpSpec s;
  s.src = netbase::IpAddr(netbase::Ipv4Addr(10, 0, 0, 1));
  s.dst = netbase::IpAddr(netbase::Ipv4Addr(20, 0, 0, 1));
  s.sport = sport;
  s.dport = 80;
  s.payload_len = payload;
  return pkt::build_udp(s);
}

TEST(StatsPlugin, PerFlowCountersInSoftState) {
  stats::StatsInstance inst(stats::StatsInstance::Mode::bytes);
  void* soft_a = nullptr;
  void* soft_b = nullptr;
  for (int i = 0; i < 3; ++i) {
    auto p = udp(1);
    inst.handle_packet(*p, &soft_a);
  }
  auto p = udp(2, 200);
  inst.handle_packet(*p, &soft_b);

  EXPECT_EQ(inst.total_packets(), 4u);
  EXPECT_EQ(inst.tracked_flows(), 2u);
  auto* fa = static_cast<stats::StatsInstance::FlowCounter*>(soft_a);
  ASSERT_NE(fa, nullptr);
  EXPECT_EQ(fa->packets, 3u);
  EXPECT_EQ(fa->bytes, 3u * 128u);
}

TEST(StatsPlugin, FlowRemovedDropsPerFlowRecordKeepsTotals) {
  stats::StatsInstance inst(stats::StatsInstance::Mode::packets);
  void* soft = nullptr;
  auto p = udp(1);
  inst.handle_packet(*p, &soft);
  inst.flow_removed(soft);
  EXPECT_EQ(inst.tracked_flows(), 0u);
  EXPECT_EQ(inst.total_packets(), 1u);
}

TEST(StatsPlugin, RuntimeModeChangeAndReport) {
  stats::StatsInstance inst(stats::StatsInstance::Mode::packets);
  void* soft = nullptr;
  auto p1 = udp(1);
  inst.handle_packet(*p1, &soft);
  auto* fc = static_cast<stats::StatsInstance::FlowCounter*>(soft);
  EXPECT_EQ(fc->bytes, 0u);  // packets mode does not count bytes

  plugin::PluginMsg setmode;
  setmode.custom_name = "setmode";
  setmode.args.set("mode", "sizes");
  plugin::PluginReply reply;
  ASSERT_EQ(inst.handle_message(setmode, reply), Status::ok);
  auto p2 = udp(1, 2000);
  inst.handle_packet(*p2, &soft);
  EXPECT_GT(fc->bytes, 0u);
  EXPECT_EQ(fc->size_hist[3], 1u);  // 2028 bytes -> <=4096 bucket

  plugin::PluginMsg report;
  report.custom_name = "report";
  ASSERT_EQ(inst.handle_message(report, reply), Status::ok);
  EXPECT_NE(reply.text.find("total_packets=2"), std::string::npos);

  plugin::PluginMsg reset;
  reset.custom_name = "reset";
  ASSERT_EQ(inst.handle_message(reset, reply), Status::ok);
  EXPECT_EQ(inst.total_packets(), 0u);
  EXPECT_EQ(fc->packets, 0u);

  setmode.args.set("mode", "bogus");
  EXPECT_EQ(inst.handle_message(setmode, reply), Status::invalid_argument);
}

TEST(RoutingTable, LongestPrefixWins) {
  route::RoutingTable t("bsl");
  t.add(*netbase::IpPrefix::parse("0.0.0.0/0"), {0, {}});
  t.add(*netbase::IpPrefix::parse("20.0.0.0/8"), {1, {}});
  t.add(*netbase::IpPrefix::parse("20.1.0.0/16"), {2, {}});
  EXPECT_EQ(t.lookup(*netbase::IpAddr::parse("20.1.2.3"))->out_iface, 2);
  EXPECT_EQ(t.lookup(*netbase::IpAddr::parse("20.9.2.3"))->out_iface, 1);
  EXPECT_EQ(t.lookup(*netbase::IpAddr::parse("50.1.2.3"))->out_iface, 0);
  EXPECT_EQ(t.remove(*netbase::IpPrefix::parse("20.1.0.0/16")), Status::ok);
  EXPECT_EQ(t.lookup(*netbase::IpAddr::parse("20.1.2.3"))->out_iface, 1);
}

TEST(RoutingTable, DualStack) {
  route::RoutingTable t("patricia");
  t.add(*netbase::IpPrefix::parse("10.0.0.0/8"), {1, {}});
  t.add(*netbase::IpPrefix::parse("2001:db8::/32"), {2, {}});
  EXPECT_EQ(t.lookup(*netbase::IpAddr::parse("10.1.1.1"))->out_iface, 1);
  EXPECT_EQ(t.lookup(*netbase::IpAddr::parse("2001:db8::9"))->out_iface, 2);
  EXPECT_EQ(t.lookup(*netbase::IpAddr::parse("11.0.0.1")), nullptr);
  EXPECT_EQ(t.size(), 2u);
}

TEST(RoutePlugin, InstanceSetsOutputInterface) {
  route::RoutePlugin plugin;
  plugin::InstanceId id = plugin::kNoInstance;
  ASSERT_EQ(plugin.create_instance({{"iface", "3"}}, id), Status::ok);
  auto* inst = static_cast<route::RouteInstance*>(plugin.instance(id));
  auto p = udp(1);
  EXPECT_EQ(inst->handle_packet(*p, nullptr), Verdict::cont);
  EXPECT_EQ(p->out_iface, 3);

  plugin::PluginMsg msg;
  msg.custom_name = "stats";
  plugin::PluginReply reply;
  EXPECT_EQ(inst->handle_message(msg, reply), Status::ok);
  EXPECT_NE(reply.text.find("routed=1"), std::string::npos);

  EXPECT_EQ(plugin.create_instance({}, id), Status::invalid_argument);
  EXPECT_EQ(plugin.create_instance({{"iface", "70000"}}, id),
            Status::invalid_argument);
}

}  // namespace
}  // namespace rp

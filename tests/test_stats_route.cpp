// Tests for the statistics plugin (the network-monitoring use case) and the
// routing table / L4-switching route plugin.
#include <gtest/gtest.h>

#include "aiu/flow_table.hpp"
#include "pkt/builder.hpp"
#include "route/route_plugin.hpp"
#include "route/routing_table.hpp"
#include "stats/stats_plugin.hpp"
#include "telemetry/telemetry.hpp"

namespace rp {
namespace {

using netbase::Status;
using plugin::Verdict;

pkt::PacketPtr udp(std::uint16_t sport, std::size_t payload = 100) {
  pkt::UdpSpec s;
  s.src = netbase::IpAddr(netbase::Ipv4Addr(10, 0, 0, 1));
  s.dst = netbase::IpAddr(netbase::Ipv4Addr(20, 0, 0, 1));
  s.sport = sport;
  s.dport = 80;
  s.payload_len = payload;
  return pkt::build_udp(s);
}

TEST(StatsPlugin, PerFlowCountersInSoftState) {
  stats::StatsInstance inst(stats::StatsInstance::Mode::bytes);
  void* soft_a = nullptr;
  void* soft_b = nullptr;
  for (int i = 0; i < 3; ++i) {
    auto p = udp(1);
    inst.handle_packet(*p, &soft_a);
  }
  auto p = udp(2, 200);
  inst.handle_packet(*p, &soft_b);

  EXPECT_EQ(inst.total_packets(), 4u);
  EXPECT_EQ(inst.tracked_flows(), 2u);
  auto* fa = static_cast<stats::StatsInstance::FlowCounter*>(soft_a);
  ASSERT_NE(fa, nullptr);
  EXPECT_EQ(fa->packets, 3u);
  EXPECT_EQ(fa->bytes, 3u * 128u);
}

TEST(StatsPlugin, FlowRemovedDropsPerFlowRecordKeepsTotals) {
  stats::StatsInstance inst(stats::StatsInstance::Mode::packets);
  void* soft = nullptr;
  auto p = udp(1);
  inst.handle_packet(*p, &soft);
  inst.flow_removed(soft);
  EXPECT_EQ(inst.tracked_flows(), 0u);
  EXPECT_EQ(inst.total_packets(), 1u);
}

TEST(StatsPlugin, RuntimeModeChangeAndReport) {
  stats::StatsInstance inst(stats::StatsInstance::Mode::packets);
  void* soft = nullptr;
  auto p1 = udp(1);
  inst.handle_packet(*p1, &soft);
  auto* fc = static_cast<stats::StatsInstance::FlowCounter*>(soft);
  EXPECT_EQ(fc->bytes, 0u);  // packets mode does not count bytes

  plugin::PluginMsg setmode;
  setmode.custom_name = "setmode";
  setmode.args.set("mode", "sizes");
  plugin::PluginReply reply;
  ASSERT_EQ(inst.handle_message(setmode, reply), Status::ok);
  auto p2 = udp(1, 2000);
  inst.handle_packet(*p2, &soft);
  EXPECT_GT(fc->bytes, 0u);
  EXPECT_EQ(fc->size_hist[3], 1u);  // 2028 bytes -> <=4096 bucket

  plugin::PluginMsg report;
  report.custom_name = "report";
  ASSERT_EQ(inst.handle_message(report, reply), Status::ok);
  EXPECT_NE(reply.text.find("total_packets=2"), std::string::npos);

  plugin::PluginMsg reset;
  reset.custom_name = "reset";
  ASSERT_EQ(inst.handle_message(reset, reply), Status::ok);
  EXPECT_EQ(inst.total_packets(), 0u);
  EXPECT_EQ(fc->packets, 0u);

  setmode.args.set("mode", "bogus");
  EXPECT_EQ(inst.handle_message(setmode, reply), Status::invalid_argument);
}

TEST(StatsPlugin, ReportListsEveryTrackedFlow) {
  stats::StatsInstance inst(stats::StatsInstance::Mode::bytes);
  void* soft_a = nullptr;
  void* soft_b = nullptr;
  auto pa = udp(1111);
  auto pb = udp(2222);
  inst.handle_packet(*pa, &soft_a);
  inst.handle_packet(*pb, &soft_b);

  plugin::PluginMsg report;
  report.custom_name = "report";
  plugin::PluginReply reply;
  ASSERT_EQ(inst.handle_message(report, reply), Status::ok);
  EXPECT_NE(reply.text.find("flows=2"), std::string::npos);
  EXPECT_NE(reply.text.find(pa->key.to_string()), std::string::npos);
  EXPECT_NE(reply.text.find(pb->key.to_string()), std::string::npos);
}

TEST(StatsPlugin, UnknownMessageIsUnsupported) {
  stats::StatsInstance inst(stats::StatsInstance::Mode::packets);
  plugin::PluginMsg msg;
  msg.custom_name = "frobnicate";
  plugin::PluginReply reply;
  EXPECT_EQ(inst.handle_message(msg, reply), Status::unsupported);
}

TEST(StatsPlugin, SetmodeSwitchesCountingAtRuntime) {
  stats::StatsInstance inst(stats::StatsInstance::Mode::packets);
  void* soft = nullptr;
  auto p1 = udp(1, 300);
  inst.handle_packet(*p1, &soft);
  auto* fc = static_cast<stats::StatsInstance::FlowCounter*>(soft);
  EXPECT_EQ(fc->bytes, 0u);

  plugin::PluginMsg setmode;
  setmode.custom_name = "setmode";
  setmode.args.set("mode", "bytes");
  plugin::PluginReply reply;
  ASSERT_EQ(inst.handle_message(setmode, reply), Status::ok);
  auto p2 = udp(1, 300);
  inst.handle_packet(*p2, &soft);
  EXPECT_EQ(fc->bytes, p2->size());  // only the post-switch packet counted

  setmode.args.set("mode", "packets");
  ASSERT_EQ(inst.handle_message(setmode, reply), Status::ok);
  auto p3 = udp(1, 300);
  inst.handle_packet(*p3, &soft);
  EXPECT_EQ(fc->bytes, p2->size());  // back to packets: bytes frozen
  EXPECT_EQ(fc->packets, 3u);
}

// flow_removed driven the way the router drives it: through a flow-table
// entry carrying the instance's soft state in its gate slot.
TEST(StatsPlugin, FlowTableRemovalCleansSoftState) {
  stats::StatsInstance inst(stats::StatsInstance::Mode::packets);
  aiu::FlowTable table(64, 8, 64);
  auto p = udp(7777);
  pkt::FlowIndex fix = table.insert(p->key, 0);
  aiu::GateBinding& b = table.rec(fix).gates[aiu::gate_index(
      plugin::PluginType::stats)];
  b.instance = &inst;
  inst.handle_packet(*p, &b.soft);
  ASSERT_NE(b.soft, nullptr);
  EXPECT_EQ(inst.tracked_flows(), 1u);

  table.remove(fix);  // must call inst.flow_removed(b.soft)
  EXPECT_EQ(inst.tracked_flows(), 0u);
  EXPECT_EQ(inst.total_packets(), 1u);  // totals survive the flow
}

TEST(StatsPlugin, RegistersAggregateCountersWithTelemetry) {
  const std::size_t before = telemetry::metrics().size();
  {
    stats::StatsInstance inst(stats::StatsInstance::Mode::packets);
    EXPECT_EQ(telemetry::metrics().size(), before + 2);
    void* soft = nullptr;
    auto p = udp(1);
    inst.handle_packet(*p, &soft);
    const std::string report = telemetry::metrics().report();
    EXPECT_NE(report.find("total_packets=1"), std::string::npos);
    EXPECT_NE(report.find("total_bytes="), std::string::npos);
  }
  // Destruction must deregister (the registry stores raw pointers).
  EXPECT_EQ(telemetry::metrics().size(), before);
}

TEST(RoutingTable, LongestPrefixWins) {
  route::RoutingTable t("bsl");
  t.add(*netbase::IpPrefix::parse("0.0.0.0/0"), {0, {}});
  t.add(*netbase::IpPrefix::parse("20.0.0.0/8"), {1, {}});
  t.add(*netbase::IpPrefix::parse("20.1.0.0/16"), {2, {}});
  EXPECT_EQ(t.lookup(*netbase::IpAddr::parse("20.1.2.3"))->out_iface, 2);
  EXPECT_EQ(t.lookup(*netbase::IpAddr::parse("20.9.2.3"))->out_iface, 1);
  EXPECT_EQ(t.lookup(*netbase::IpAddr::parse("50.1.2.3"))->out_iface, 0);
  EXPECT_EQ(t.remove(*netbase::IpPrefix::parse("20.1.0.0/16")), Status::ok);
  EXPECT_EQ(t.lookup(*netbase::IpAddr::parse("20.1.2.3"))->out_iface, 1);
}

TEST(RoutingTable, DualStack) {
  route::RoutingTable t("patricia");
  t.add(*netbase::IpPrefix::parse("10.0.0.0/8"), {1, {}});
  t.add(*netbase::IpPrefix::parse("2001:db8::/32"), {2, {}});
  EXPECT_EQ(t.lookup(*netbase::IpAddr::parse("10.1.1.1"))->out_iface, 1);
  EXPECT_EQ(t.lookup(*netbase::IpAddr::parse("2001:db8::9"))->out_iface, 2);
  EXPECT_EQ(t.lookup(*netbase::IpAddr::parse("11.0.0.1")), nullptr);
  EXPECT_EQ(t.size(), 2u);
}

TEST(RoutePlugin, InstanceSetsOutputInterface) {
  route::RoutePlugin plugin;
  plugin::InstanceId id = plugin::kNoInstance;
  ASSERT_EQ(plugin.create_instance({{"iface", "3"}}, id), Status::ok);
  auto* inst = static_cast<route::RouteInstance*>(plugin.instance(id));
  auto p = udp(1);
  EXPECT_EQ(inst->handle_packet(*p, nullptr), Verdict::cont);
  EXPECT_EQ(p->out_iface, 3);

  plugin::PluginMsg msg;
  msg.custom_name = "stats";
  plugin::PluginReply reply;
  EXPECT_EQ(inst->handle_message(msg, reply), Status::ok);
  EXPECT_NE(reply.text.find("routed=1"), std::string::npos);

  EXPECT_EQ(plugin.create_instance({}, id), Status::invalid_argument);
  EXPECT_EQ(plugin.create_instance({{"iface", "70000"}}, id),
            Status::invalid_argument);
}

}  // namespace
}  // namespace rp

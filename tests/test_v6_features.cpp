// Tests for the IPv6 feature set: flow-label classification (distinct
// labels are distinct flows) and ICMPv6 error generation (hop limit
// exceeded, packet too big with the next-hop MTU).
#include <gtest/gtest.h>

#include "aiu/aiu.hpp"
#include "core/router.hpp"
#include "netbase/byteorder.hpp"
#include "netbase/checksum.hpp"
#include "pkt/builder.hpp"
#include "pkt/headers.hpp"
#include "plugin/pcu.hpp"

namespace rp {
namespace {

using netbase::SimTime;

pkt::PacketPtr v6_udp(std::uint32_t flow_label, std::uint8_t hop_limit = 64,
                      std::size_t payload = 64) {
  pkt::UdpSpec s;
  s.src = *netbase::IpAddr::parse("2001:db8::1");
  s.dst = *netbase::IpAddr::parse("2001:db8:ffff::2");
  s.sport = 1000;
  s.dport = 2000;
  s.payload_len = payload;
  s.ttl = hop_limit;
  s.flow_label = flow_label;
  return pkt::build_udp(s);
}

TEST(FlowLabel, CarriedIntoFlowKey) {
  auto p = v6_udp(0x12345);
  ASSERT_TRUE(p->key_valid);
  EXPECT_EQ(p->key.flow_label, 0x12345u);
  // And survives the wire round trip.
  pkt::Ipv6Header h;
  ASSERT_TRUE(h.parse(p->bytes()));
  EXPECT_EQ(h.flow_label, 0x12345u);
}

TEST(FlowLabel, DistinctLabelsAreDistinctFlows) {
  netbase::SimClock clock;
  plugin::PluginControlUnit pcu;
  aiu::Aiu aiu(pcu, clock);

  auto a = v6_udp(100);
  auto b = v6_udp(200);  // identical 5-tuple, different label
  auto a2 = v6_udp(100);

  aiu.gate_lookup(*a, plugin::PluginType::stats);
  aiu.gate_lookup(*b, plugin::PluginType::stats);
  aiu.gate_lookup(*a2, plugin::PluginType::stats);

  EXPECT_EQ(aiu.flow_table().active(), 2u);  // two label flows
  EXPECT_EQ(aiu.flow_table().stats().hits, 1u);  // a2 hit a's entry
  EXPECT_EQ(a2->fix, a->fix);
  EXPECT_NE(b->fix, a->fix);
}

TEST(FlowLabel, V4KeysUnaffected) {
  pkt::UdpSpec s;
  s.src = *netbase::IpAddr::parse("10.0.0.1");
  s.dst = *netbase::IpAddr::parse("10.0.0.2");
  s.payload_len = 10;
  auto p = pkt::build_udp(s);
  EXPECT_EQ(p->key.flow_label, 0u);
}

class Icmpv6Test : public ::testing::Test {
 protected:
  Icmpv6Test() : kernel_(make_options()) {
    kernel_.add_interface("in0");
    out_ = &kernel_.add_interface("out0");
    kernel_.routes().add(*netbase::IpPrefix::parse("2001:db8:ffff::/48"),
                         {1, {}});
    // Return path for the errors.
    kernel_.routes().add(*netbase::IpPrefix::parse("2001:db8::/48"), {0, {}});
    kernel_.interfaces().by_index(0)->set_tx_sink(
        [this](pkt::PacketPtr p, SimTime) { back_.push_back(std::move(p)); });
  }

  static core::RouterKernel::Options make_options() {
    core::RouterKernel::Options opt;
    opt.core.emit_icmp_errors = true;
    return opt;
  }

  // Validates the ICMPv6 checksum of a reply.
  static bool icmp6_checksum_ok(const pkt::Packet& p) {
    pkt::Ipv6Header h;
    if (!h.parse(p.bytes())) return false;
    std::uint8_t ph[40];
    h.src.to_bytes(&ph[0]);
    h.dst.to_bytes(&ph[16]);
    netbase::store_be32(&ph[32], h.payload_len);
    ph[36] = ph[37] = ph[38] = 0;
    ph[39] = 58;
    std::uint32_t sum = netbase::checksum_partial(ph, sizeof ph);
    sum = netbase::checksum_partial(p.data() + 40, h.payload_len, sum);
    return sum == 0xffff;
  }

  core::RouterKernel kernel_;
  netdev::SimNic* out_;
  std::vector<pkt::PacketPtr> back_;
};

TEST_F(Icmpv6Test, HopLimitExceeded) {
  kernel_.inject(0, 0, v6_udp(0, /*hop_limit=*/1));
  kernel_.run_to_completion();
  EXPECT_EQ(kernel_.core().counters().dropped(core::DropReason::ttl_expired),
            1u);
  ASSERT_EQ(back_.size(), 1u);
  const auto& e = *back_[0];
  EXPECT_EQ(e.data()[6], 58);      // ICMPv6
  EXPECT_EQ(e.data()[40], 3);      // time exceeded
  EXPECT_EQ(e.data()[41], 0);
  EXPECT_TRUE(icmp6_checksum_ok(e));
  // Destination is the offender's source.
  pkt::Ipv6Header h;
  ASSERT_TRUE(h.parse(e.bytes()));
  EXPECT_EQ(h.dst.to_string(), "2001:db8::1");
}

TEST_F(Icmpv6Test, PacketTooBigCarriesMtu) {
  out_->set_mtu(1280);
  kernel_.inject(0, 0, v6_udp(0, 64, /*payload=*/1400));
  kernel_.run_to_completion();
  EXPECT_EQ(kernel_.core().counters().dropped(core::DropReason::too_big), 1u);
  ASSERT_EQ(back_.size(), 1u);
  const auto& e = *back_[0];
  EXPECT_EQ(e.data()[40], 2);  // packet too big
  EXPECT_EQ(netbase::load_be32(e.data() + 44), 1280u);
  EXPECT_TRUE(icmp6_checksum_ok(e));
  // Quoted original is capped at the 1280-byte minimum MTU.
  EXPECT_LE(e.size(), 1280u);
}

TEST_F(Icmpv6Test, NoIcmpAboutIcmpError) {
  // An ICMPv6 packet with hop limit 1 is dropped silently.
  auto p = v6_udp(0, 1);
  p->data()[6] = 58;  // pretend it's ICMPv6
  p->key_valid = false;
  kernel_.inject(0, 0, std::move(p));
  kernel_.run_to_completion();
  EXPECT_EQ(kernel_.core().counters().dropped(core::DropReason::ttl_expired),
            1u);
  EXPECT_EQ(back_.size(), 0u);
}

}  // namespace
}  // namespace rp

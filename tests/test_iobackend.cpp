// I/O backend + packet pool tests (PR 10):
//   * Steering.*        — the fixed-point shard map: chi-square uniformity at
//     N ∈ {2, 3, 4, 7}, full-high-32-bit sensitivity (the old map read only
//     the top byte), and the seeded Zipf imbalance snapshots.
//   * IoBackend.*       — SimNic rx-overflow accounting (drops were counted
//     but surfaced nowhere), ceil-rounded serialization time over a
//     million-packet mix, MemQueueBackend RETA semantics.
//   * SpscRing.*        — exact capacity for power-of-two requests (the ring
//     silently over-allocated 2x before) and a threaded wraparound soak
//     (runs under TSan via the parallel label).
//   * PacketPool.*      — pool lifecycle: recycle-preserves-headroom,
//     cross-thread free, exhaustion falls back to heap without leaking,
//     packets outliving their pool (the ASan lane is the leak gate).
//   * ParallelMemQueue.* — producer/consumer threads through the multi-queue
//     backend, flow migration under zipf load, and the pmgr `shard io`
//     surface (TSan via the parallel label).
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstring>
#include <map>
#include <thread>
#include <vector>

#include "core/router.hpp"
#include "io/io_backend.hpp"
#include "mgmt/pmgr.hpp"
#include "mgmt/register_all.hpp"
#include "mgmt/rplib.hpp"
#include "netbase/rng.hpp"
#include "parallel/sharded_datapath.hpp"
#include "parallel/spsc_ring.hpp"
#include "pkt/builder.hpp"
#include "pkt/packet_pool.hpp"
#include "tgen/workload.hpp"

namespace rp {
namespace {

using parallel::shard_index;

// ---------------------------------------------------------------------------
// Steering

// p = 0.001 chi-square critical values by degrees of freedom (N - 1).
double chi2_crit(std::uint32_t df) {
  static const std::map<std::uint32_t, double> crit = {
      {1, 10.83}, {2, 13.82}, {3, 16.27}, {6, 22.46}};
  return crit.at(df);
}

TEST(Steering, FixedPointMapIsUnbiased) {
  // The replaced map, (hash >> 56) % N, carried modulo bias for every
  // non-power-of-two N (256 values cannot split evenly over 3 or 7) on top
  // of collapsing the key space to the top byte. The fixed-point range map
  // must be statistically uniform for all of these.
  constexpr std::size_t kSamples = 200000;
  for (std::uint32_t n : {2u, 3u, 4u, 7u}) {
    SCOPED_TRACE("n=" + std::to_string(n));
    netbase::Rng rng(0xfeedULL + n);
    std::vector<std::uint64_t> bins(n, 0);
    for (std::size_t i = 0; i < kSamples; ++i) {
      const std::uint32_t s = shard_index(rng.next(), n);
      ASSERT_LT(s, n);
      ++bins[s];
    }
    const double expect = static_cast<double>(kSamples) / n;
    double chi2 = 0;
    for (std::uint64_t b : bins) {
      const double d = static_cast<double>(b) - expect;
      chi2 += d * d / expect;
    }
    EXPECT_LT(chi2, chi2_crit(n - 1)) << "chi2=" << chi2;
  }
}

TEST(Steering, UsesFullHighWordNotJustTopByte) {
  // The old map `(h >> 56) % n` could never separate two hashes that agree
  // in the top byte — it collapsed the key space to 256 classes. The
  // fixed-point range map partitions the full high word, so at n = 3 the
  // shard boundary 2^32/3 = 0x55555555.33 falls *inside* the top-byte-0x55
  // class: hashes sharing that top byte split between shards 0 and 1 by
  // the bits below it, ~1/3 : 2/3 (0x555555.33 of the 0x1000000-wide
  // remainder lies below the boundary).
  constexpr std::size_t kSamples = 60000;
  netbase::Rng rng(7);
  std::uint64_t bins[3] = {0, 0, 0};
  for (std::size_t i = 0; i < kSamples; ++i) {
    const std::uint64_t h =
        (0x55ULL << 56) | (rng.next() & 0x00ffffffffffffffULL);
    ++bins[shard_index(h, 3)];
  }
  EXPECT_EQ(bins[2], 0u);  // the 0x55 slice ends well before 2/3
  const double lo = static_cast<double>(bins[0]) / kSamples;
  EXPECT_GT(lo, 0.30);  // ~1/3 below the boundary...
  EXPECT_LT(lo, 0.37);
  EXPECT_EQ(bins[0] + bins[1], kSamples);  // ...rest above, none lost
}

TEST(Steering, ZipfSamplerIsSeededAndSkewed) {
  // Fixed-seed snapshot: two samplers with the same seed emit the identical
  // rank sequence, and the rank histogram has the Zipf(1.1) head (rank 0
  // near 1/H_{1.1}(1000) ≈ 17% of draws) that the steering benches rely on
  // to load one RSS queue.
  constexpr std::size_t kDraws = 100000;
  tgen::ZipfSampler a(1000, 1.1, 42), b(1000, 1.1, 42);
  std::vector<std::uint64_t> hist(1000, 0);
  for (std::size_t i = 0; i < kDraws; ++i) {
    const std::size_t r = a.next();
    ASSERT_EQ(r, b.next()) << "draw " << i;
    ASSERT_LT(r, 1000u);
    ++hist[r];
  }
  const double head = static_cast<double>(hist[0]) / kDraws;
  EXPECT_GT(head, 0.12);
  EXPECT_LT(head, 0.22);
  EXPECT_GT(hist[0], hist[1]);
  EXPECT_GT(hist[1], hist[9]);

  // s = 0 degenerates to uniform: the hottest rank stays near 1/n.
  tgen::ZipfSampler u(1000, 0.0, 42);
  std::vector<std::uint64_t> uh(1000, 0);
  for (std::size_t i = 0; i < kDraws; ++i) ++uh[u.next()];
  std::uint64_t umax = 0;
  for (std::uint64_t c : uh) umax = std::max(umax, c);
  EXPECT_LT(umax, 3 * kDraws / 1000);
}

TEST(Steering, ZipfTrafficSkewsQueueLoad) {
  // The imbalance story end to end: zipf(1.1) ranks hashed through the RETA
  // concentrate load on one queue; uniform ranks do not. (This is the
  // skew the migration policy exists to shave.)
  constexpr std::uint32_t kQueues = 4;
  constexpr std::size_t kDraws = 50000;
  auto spread = [&](double s) {
    tgen::ZipfSampler pick(512, s, 99);
    // Rank -> stable synthetic flow hash.
    std::vector<std::uint64_t> hash_of(512);
    netbase::Rng rng(1234);
    for (auto& h : hash_of) h = rng.next();
    std::vector<std::uint64_t> load(kQueues, 0);
    for (std::size_t i = 0; i < kDraws; ++i)
      ++load[shard_index(hash_of[pick.next()], kQueues)];
    std::uint64_t mx = 0;
    for (std::uint64_t l : load) mx = std::max(mx, l);
    return static_cast<double>(mx) * kQueues / kDraws;  // 1.0 = balanced
  };
  EXPECT_GT(spread(1.1), 1.35);  // one queue well above its fair share
  EXPECT_LT(spread(0.0), 1.15);
}

// ---------------------------------------------------------------------------
// IoBackend

pkt::PacketPtr routed_udp(std::uint16_t sport) {
  pkt::UdpSpec s;
  s.src = netbase::IpAddr(netbase::Ipv4Addr(10, 0, 0, 1));
  s.dst = netbase::IpAddr(netbase::Ipv4Addr(20, 0, 0, 1));
  s.sport = sport;
  s.dport = 9000;
  s.payload_len = 64;
  return pkt::build_udp(s);
}

TEST(IoBackend, NicOverflowSurfacedAndAccounted) {
  // Regression for the invisible-loss class: rx ring overflows were counted
  // on the NIC but never aggregated or included in any accounting identity,
  // so wire-level loss was indistinguishable from generator undercount.
  core::RouterKernel kernel;
  kernel.interfaces().add("tiny", 155'000'000, 0, /*rx_ring=*/8);
  kernel.add_interface("if1");
  kernel.routes().add(*netbase::IpPrefix::parse("20.0.0.0/8"), {1, {}});

  constexpr std::size_t kOffered = 20;
  io::IoBackend& io = kernel.io();
  std::size_t accepted = 0;
  for (std::size_t i = 0; i < kOffered; ++i) {
    auto p = routed_udp(static_cast<std::uint16_t>(1000 + i));
    if (io.try_deliver(0, p, 0)) ++accepted;
  }
  EXPECT_EQ(accepted, 8u);
  const auto nt = kernel.interfaces().totals();
  EXPECT_EQ(nt.rx_drops, kOffered - 8);
  EXPECT_EQ(io.queue_stats(0).rx_drops, kOffered - 8);
  EXPECT_EQ(io.rx_depth(0), 8u);

  // Drain through the core: received + nic rx_drops == offered closes the
  // wire-level balance, and forwarded + core drops == received as before.
  std::array<pkt::PacketPtr, 8> burst;
  while (io.rx_pending(0)) {
    const std::size_t n = io.rx_burst(0, burst);
    kernel.core().process_burst({burst.data(), n});
  }
  const auto& cc = kernel.core().counters();
  EXPECT_EQ(cc.received + nt.rx_drops, kOffered);
  EXPECT_EQ(cc.forwarded + cc.total_drops(), cc.received);
}

TEST(IoBackend, SimNicQueueStatsTrackRing) {
  netdev::InterfaceTable ifs;
  ifs.add("if0");
  io::SimNicBackend be(ifs);
  EXPECT_EQ(be.name(), "simnic");
  ASSERT_EQ(be.n_queues(), 1u);
  EXPECT_EQ(be.steer(0xdeadbeefULL), 0u);

  for (int i = 0; i < 5; ++i) {
    auto p = routed_udp(static_cast<std::uint16_t>(i));
    ASSERT_TRUE(be.try_deliver(0, p, 7));
    EXPECT_EQ(p, nullptr);  // consumed
  }
  auto s = be.queue_stats(0);
  EXPECT_EQ(s.rx_enqueued, 5u);
  EXPECT_EQ(s.rx_drained, 0u);
  std::array<pkt::PacketPtr, 3> burst;
  EXPECT_EQ(be.rx_burst(0, burst), 3u);
  EXPECT_EQ(burst[0]->arrival, 7u);  // driver timestamping preserved
  s = be.queue_stats(0);
  EXPECT_EQ(s.rx_drained, 3u);
  EXPECT_EQ(be.rx_depth(0), 2u);
}

TEST(IoBackend, TxDurationCeilNeverUndershootsWire) {
  // A link may never transmit faster than its bit rate: over any packet mix
  // the summed serialization time must be >= bytes * 8 / bps, and each
  // duration must be the exact ceiling (one ns less would undershoot).
  // Truncation lost ~3ns per 64B cell at OC-3 — a systematic virtual-time
  // drift that let schedulers over-admit. One million packets, three rates.
  netbase::Rng rng(13);
  for (std::uint64_t bps : {155'000'000ULL, 622'000'000ULL, 1'000'000'007ULL}) {
    SCOPED_TRACE("bps=" + std::to_string(bps));
    netdev::SimNic nic("t", 0, bps);
    unsigned __int128 total_bits_ns = 0;
    unsigned __int128 total_dur = 0;
    constexpr std::size_t kPackets = 1'000'000;
    for (std::size_t i = 0; i < kPackets; ++i) {
      const std::size_t bytes = 40 + rng.below(9141);  // 40..9180 (ATM MTU)
      const netbase::SimTime d = nic.tx_duration(bytes);
      const unsigned __int128 bits_ns =
          static_cast<unsigned __int128>(bytes) * 8 * netbase::kNsPerSec;
      // Exact ceiling: d * bps covers the bits, (d - 1) * bps must not.
      ASSERT_GE(static_cast<unsigned __int128>(d) * bps, bits_ns);
      ASSERT_LT(static_cast<unsigned __int128>(d - 1) * bps, bits_ns);
      total_bits_ns += bits_ns;
      total_dur += d;
    }
    EXPECT_GE(total_dur * bps, total_bits_ns);
  }
}

TEST(IoBackend, MemQueueRetaSpreadsLikeShardIndex) {
  // The initial RETA must steer like shard_index so switching a datapath
  // from steered to multiq does not re-home flows. When the queue count
  // divides the 256-bucket table (powers of two) the match is exact; at
  // other counts the only divergence is quantization at the buckets the
  // shard boundary cuts through (≤ n-1 of 256 buckets, so < 2% of hashes).
  for (std::uint32_t n : {1u, 2u, 4u}) {
    SCOPED_TRACE("queues=" + std::to_string(n));
    io::MemQueueBackend be({.queues = n, .ring_capacity = 16});
    netbase::Rng rng(5);
    for (int i = 0; i < 10000; ++i) {
      const std::uint64_t h = rng.next();
      EXPECT_EQ(be.steer(h), shard_index(h, n));
    }
  }
  {
    SCOPED_TRACE("queues=3 (boundary-bucket quantization only)");
    io::MemQueueBackend be({.queues = 3, .ring_capacity = 16});
    // Balanced partition: each queue owns 256/3 buckets give or take one.
    std::uint32_t owned[3] = {0, 0, 0};
    for (std::uint32_t b = 0; b < io::MemQueueBackend::kRetaSize; ++b) {
      ASSERT_LT(be.reta(b), 3u);
      ++owned[be.reta(b)];
      if (b) {
        ASSERT_GE(be.reta(b), be.reta(b - 1));  // contiguous ranges
      }
    }
    for (std::uint32_t q = 0; q < 3; ++q) {
      EXPECT_GE(owned[q], 85u);
      EXPECT_LE(owned[q], 86u);
    }
    netbase::Rng rng(5);
    int mismatches = 0;
    for (int i = 0; i < 10000; ++i) {
      const std::uint64_t h = rng.next();
      if (be.steer(h) != shard_index(h, 3)) ++mismatches;
    }
    EXPECT_LT(mismatches, 200);  // 2 boundary buckets of 256 ≈ 0.8%
  }
}

TEST(IoBackend, MemQueueMigrationCountersAndWaits) {
  io::MemQueueBackend be({.queues = 2, .ring_capacity = 4});
  // Fill queue 0 to capacity; the next try_deliver must refuse, keep the
  // packet, and count a wait — not a drop (drops are the producer's explicit
  // give-up via note_drop).
  for (int i = 0; i < 4; ++i) {
    auto p = routed_udp(static_cast<std::uint16_t>(i));
    ASSERT_TRUE(be.try_deliver(0, p, 0));
  }
  auto p = routed_udp(99);
  EXPECT_FALSE(be.try_deliver(0, p, 0));
  ASSERT_NE(p, nullptr);  // still ours to retry
  auto s0 = be.queue_stats(0);
  EXPECT_EQ(s0.rx_enqueued, 4u);
  EXPECT_EQ(s0.rx_waits, 1u);
  EXPECT_EQ(s0.rx_drops, 0u);
  be.note_drop(0);
  EXPECT_EQ(be.queue_stats(0).rx_drops, 1u);

  // Rebinding a bucket counts one migration out of the old owner and one
  // into the new one.
  const std::uint32_t bucket = io::MemQueueBackend::bucket_of(0);
  const std::uint32_t from = be.reta(bucket);
  be.set_reta(bucket, 1 - from);
  EXPECT_EQ(be.reta(bucket), 1 - from);
  EXPECT_EQ(be.queue_stats(from).migrations_out, 1u);
  EXPECT_EQ(be.queue_stats(1 - from).migrations_in, 1u);
}

// ---------------------------------------------------------------------------
// SpscRing (suite name joins the parallel-tsan label set)

TEST(SpscRing, ExactCapacityForPowerOfTwoRequests) {
  // The ring used to sacrifice one slot and round up, so a power-of-two
  // request silently doubled its allocation (capacity(1024) -> 2048 slots).
  for (std::size_t want : {1u, 2u, 7u, 64u, 1000u, 1024u}) {
    parallel::SpscRing<int> ring(want);
    EXPECT_EQ(ring.capacity(), std::max<std::size_t>(want, 1));
    // Exactly `want` pushes fit, not one more.
    std::size_t pushed = 0;
    while (ring.try_push(static_cast<int>(pushed))) ++pushed;
    EXPECT_EQ(pushed, ring.capacity()) << "want=" << want;
    int v;
    ASSERT_TRUE(ring.try_pop(v));
    EXPECT_EQ(v, 0);
    EXPECT_TRUE(ring.try_push(-1));   // freed slot is reusable
    EXPECT_FALSE(ring.try_push(-2));  // and only that one
  }
}

TEST(SpscRing, WraparoundBoundaryThreaded) {
  // Free-running indices: push/pop 64k items through a 4-slot ring from two
  // threads so the indices wrap the slot mask thousands of times. FIFO
  // order and zero loss prove the masking; TSan (parallel label) proves the
  // acquire/release pairing.
  parallel::SpscRing<std::uint32_t> ring(4);
  constexpr std::uint32_t kItems = 65536;
  std::thread producer([&ring] {
    for (std::uint32_t i = 0; i < kItems;) {
      if (ring.try_push(std::uint32_t{i}))
        ++i;
      else
        std::this_thread::yield();
    }
  });
  std::uint32_t expect = 0;
  while (expect < kItems) {
    std::uint32_t v;
    if (ring.try_pop(v)) {
      ASSERT_EQ(v, expect);
      ++expect;
    } else {
      std::this_thread::yield();
    }
  }
  producer.join();
  EXPECT_TRUE(ring.empty());
}

// ---------------------------------------------------------------------------
// PacketPool (own label: pool-parallel-tsan; ASan lane is the leak gate)

TEST(PacketPool, AllocRecycleRoundTrip) {
  pkt::PacketPool pool({.chunks = 4, .buf_bytes = 512});
  {
    auto p = pool.alloc(100);
    ASSERT_NE(p, nullptr);
    EXPECT_TRUE(p->pooled());
    EXPECT_EQ(p->size(), 100u);
    EXPECT_EQ(p->headroom(), pkt::Packet::kDefaultHeadroom);
    std::memset(p->data(), 0xaa, p->size());
  }
  auto s = pool.stats();
  EXPECT_EQ(s.allocs, 1u);
  EXPECT_EQ(s.pool_hits, 1u);
  EXPECT_EQ(s.recycles, 1u);
  EXPECT_EQ(s.outstanding, 0u);
}

TEST(PacketPool, RecycleRestoresHeadroomAndZeroes) {
  pkt::PacketPool pool({.chunks = 1, .buf_bytes = 512});
  {
    auto p = pool.alloc(64);
    std::memset(p->data(), 0xff, p->size());
    p->prepend(100);  // consume most of the headroom
    EXPECT_EQ(p->headroom(), pkt::Packet::kDefaultHeadroom - 100);
    EXPECT_TRUE(p->pooled());  // fits in the chunk, no detach
  }
  // The same chunk comes back with full headroom and a zeroed payload view
  // (alloc() zeroes the handed-out region like the heap constructor does).
  auto p = pool.alloc(64);
  EXPECT_TRUE(p->pooled());
  EXPECT_EQ(p->headroom(), pkt::Packet::kDefaultHeadroom);
  for (std::size_t i = 0; i < p->size(); ++i)
    ASSERT_EQ(p->data()[i], 0) << "byte " << i;
  EXPECT_EQ(pool.stats().pool_hits, 2u);
}

TEST(PacketPool, ExhaustionFallsBackToHeapWithoutLoss) {
  pkt::PacketPool pool({.chunks = 2, .buf_bytes = 512});
  std::vector<pkt::PacketPtr> held;
  for (int i = 0; i < 5; ++i) held.push_back(pool.alloc(64));
  EXPECT_TRUE(held[0]->pooled());
  EXPECT_TRUE(held[1]->pooled());
  EXPECT_FALSE(held[2]->pooled());  // exhausted -> heap, never null
  auto s = pool.stats();
  EXPECT_EQ(s.pool_hits, 2u);
  EXPECT_EQ(s.heap_fallbacks, 3u);

  // Oversize requests bypass the pool even with chunks free.
  held.clear();
  auto big = pool.alloc(4096);
  ASSERT_NE(big, nullptr);
  EXPECT_FALSE(big->pooled());
  EXPECT_EQ(big->size(), 4096u);

  // After release everything is allocatable again.
  big.reset();
  auto again = pool.alloc(64);
  EXPECT_TRUE(again->pooled());
}

TEST(PacketPool, GrowDetachesToHeapButChunkStillRecycles) {
  pkt::PacketPool pool({.chunks = 1, .buf_bytes = 256});
  {
    auto p = pool.alloc(64, /*headroom=*/16);
    ASSERT_TRUE(p->pooled());
    std::memset(p->data(), 0x5a, p->size());
    p->prepend(64);  // outgrows the 16B headroom -> detach to heap
    EXPECT_EQ(p->size(), 128u);
    // Original bytes preserved after the detach copy.
    for (std::size_t i = 0; i < 64; ++i) ASSERT_EQ(p->data()[64 + i], 0x5a);
  }
  auto s = pool.stats();
  EXPECT_EQ(s.grows_detached, 1u);
  EXPECT_EQ(s.recycles, 1u);  // chunk still came home
  EXPECT_TRUE(pool.alloc(64)->pooled());
}

TEST(PacketPool, CrossThreadFreeReturnsChunks) {
  pkt::PacketPool pool({.chunks = 8, .buf_bytes = 512});
  parallel::SpscRing<pkt::PacketPtr> ring(16);
  std::atomic<bool> done{false};
  // Consumer thread: free every packet from the "wrong" thread — the MPSC
  // return stack must hand the chunks back to the owner.
  std::thread consumer([&] {
    while (!done.load(std::memory_order_acquire) || !ring.empty()) {
      pkt::PacketPtr p;
      if (ring.try_pop(p))
        p.reset();
      else
        std::this_thread::yield();
    }
  });
  constexpr int kRounds = 20000;
  for (int i = 0; i < kRounds; ++i) {
    auto p = pool.alloc(64);
    while (!ring.try_push(std::move(p))) std::this_thread::yield();
  }
  done.store(true, std::memory_order_release);
  consumer.join();
  auto s = pool.stats();
  EXPECT_EQ(s.allocs, static_cast<std::uint64_t>(kRounds));
  // With 8 chunks against 20k allocs, recycling must carry at least every
  // other alloc (exactly half in the worst lockstep interleaving, where the
  // return stack is drained empty on alternating allocs).
  EXPECT_GE(s.pool_hits, static_cast<std::uint64_t>(kRounds) / 2);
  // Every chunk came home: with all packets released, 8 fresh allocs must
  // all be pool hits (draining whatever is parked on the return stack).
  std::vector<pkt::PacketPtr> all;
  for (int i = 0; i < 8; ++i) {
    all.push_back(pool.alloc(64));
    EXPECT_TRUE(all.back()->pooled()) << "chunk " << i << " lost";
  }
  all.clear();
  EXPECT_EQ(pool.stats().outstanding, 0u);
}

TEST(PacketPool, PacketsMayOutliveThePool) {
  pkt::PacketPtr survivor;
  {
    pkt::PacketPool pool({.chunks = 2, .buf_bytes = 512});
    survivor = pool.alloc(64);
    std::memset(survivor->data(), 0x42, survivor->size());
  }  // pool destroyed with one chunk outstanding
  ASSERT_NE(survivor, nullptr);
  EXPECT_EQ(survivor->data()[0], 0x42);  // arena still alive (refcounted)
  survivor->prepend(4);                  // even growth is safe
  survivor.reset();                      // last ref frees the arena (ASan)
}

TEST(PacketPool, MakePacketRoutesThroughScopedPool) {
  pkt::PacketPool pool({.chunks = 4, .buf_bytes = 2048});
  {
    pkt::PacketPool::Use scope(pool);
    EXPECT_EQ(pkt::PacketPool::current(), &pool);
    auto pooled = pkt::make_packet(100);
    EXPECT_TRUE(pooled->pooled());
    // Builders allocate through make_packet, so whole packets come pooled.
    auto built = routed_udp(1);
    EXPECT_TRUE(built->pooled());
    // clone_packet of a pooled packet allocates from the pool too.
    auto clone = pkt::clone_packet(*built);
    EXPECT_TRUE(clone->pooled());
    EXPECT_EQ(clone->size(), built->size());
    EXPECT_EQ(0,
              std::memcmp(clone->data(), built->data(), built->size()));
  }
  EXPECT_EQ(pkt::PacketPool::current(), nullptr);
  EXPECT_FALSE(pkt::make_packet(100)->pooled());
}

// ---------------------------------------------------------------------------
// ParallelMemQueue (suite name joins the parallel-tsan label set)

TEST(ParallelMemQueue, ProducerConsumerCountsBalance) {
  io::MemQueueBackend be({.queues = 2, .ring_capacity = 64});
  constexpr std::uint64_t kPerQueue = 30000;
  std::array<std::uint64_t, 2> drained{0, 0};
  std::vector<std::thread> consumers;
  for (std::uint32_t q = 0; q < 2; ++q)
    consumers.emplace_back([&be, &drained, q] {
      std::array<pkt::PacketPtr, 16> burst;
      while (drained[q] < kPerQueue) {
        const std::size_t n = be.rx_burst(q, burst);
        if (!n) {
          std::this_thread::yield();
          continue;
        }
        for (std::size_t i = 0; i < n; ++i) burst[i].reset();
        drained[q] += n;
      }
    });
  for (std::uint64_t i = 0; i < kPerQueue; ++i)
    for (std::uint32_t q = 0; q < 2; ++q) {
      auto p = pkt::make_packet(64);
      while (!be.try_deliver(q, p, 0)) std::this_thread::yield();
    }
  for (auto& c : consumers) c.join();
  for (std::uint32_t q = 0; q < 2; ++q) {
    const auto s = be.queue_stats(q);
    EXPECT_EQ(s.rx_enqueued, kPerQueue);
    EXPECT_EQ(s.rx_drained, kPerQueue);
    EXPECT_EQ(s.rx_drops, 0u);
    EXPECT_EQ(s.occupancy_samples, kPerQueue);
    EXPECT_EQ(be.rx_depth(q), 0u);
  }
}

void setup_min_stack(parallel::ShardContext& ctx) {
  ctx.interfaces().add("if0");
  ctx.interfaces().add("if1");
  ctx.routes().add(*netbase::IpPrefix::parse("20.0.0.0/8"), {1, {}});
}

TEST(ParallelMemQueue, WorkStealingMigratesHotBucketLosslessly) {
  // Zipf-popular flows through a small-ring multiq datapath: the hot
  // bucket's queue backs up, the migration policy rebinds it at a burst
  // boundary, and — the actual property — not a single packet is lost or
  // double-counted across the move.
  parallel::ShardedDatapath::Options opt;
  opt.workers = 2;
  opt.ring_capacity = 32;
  opt.io.mode = parallel::ShardedDatapath::IoOptions::Mode::multiq;
  opt.io.migrate_threshold = 0.25;
  parallel::ShardedDatapath dp(opt, setup_min_stack);
  dp.set_tx_handler(
      [](parallel::ShardContext&, pkt::IfIndex, pkt::PacketPtr) {});

  tgen::MixSpec mix;
  mix.n_flows = 64;
  mix.n_packets = 40000;
  mix.zipf_s = 1.3;
  mix.seed = 11;
  auto arrivals = tgen::flow_mix(mix);
  for (auto& a : arrivals) dp.submit(std::move(a.p));
  dp.quiesce();

  const auto cc = dp.aggregate_counters();
  EXPECT_EQ(cc.received, static_cast<std::uint64_t>(mix.n_packets));
  EXPECT_EQ(cc.forwarded + cc.total_drops(), cc.received);
  std::uint64_t enq = 0, drained = 0, mig_in = 0;
  for (std::uint32_t q = 0; q < 2; ++q) {
    const auto s = dp.queue_stats(q);
    enq += s.rx_enqueued;
    drained += s.rx_drained;
    mig_in += s.migrations_in;
  }
  EXPECT_EQ(enq, static_cast<std::uint64_t>(mix.n_packets));
  EXPECT_EQ(drained, enq);
  EXPECT_EQ(mig_in, dp.migrations());
  dp.stop();
}

TEST(ParallelMemQueue, PmgrShardIoSurface) {
  core::RouterKernel kernel;
  mgmt::RouterPluginLib lib(kernel);
  mgmt::PluginManager pmgr(lib);

  parallel::ShardedDatapath::Options opt;
  opt.workers = 2;
  opt.io.mode = parallel::ShardedDatapath::IoOptions::Mode::multiq;
  parallel::ShardedDatapath dp(opt, setup_min_stack);
  pmgr.attach_sharded(&dp);

  for (int i = 0; i < 1000; ++i)
    dp.submit(routed_udp(static_cast<std::uint16_t>(i)));
  dp.quiesce();

  auto r = pmgr.exec("shard io");
  ASSERT_TRUE(r.ok()) << r.text;
  EXPECT_NE(r.text.find("backend=memq"), std::string::npos) << r.text;
  EXPECT_NE(r.text.find("queues=2"), std::string::npos) << r.text;
  EXPECT_NE(r.text.find("q1:"), std::string::npos) << r.text;

  auto c = pmgr.exec("shard counters");
  ASSERT_TRUE(c.ok()) << c.text;
  EXPECT_NE(c.text.find("nics:"), std::string::npos) << c.text;
  EXPECT_FALSE(pmgr.exec("shard io extra").ok());
  dp.stop();
}

// The kernel-side pmgr surface: `telemetry` now reports NIC totals.
TEST(IoBackend, TelemetrySummaryShowsNicTotals) {
  core::RouterKernel kernel;
  mgmt::RouterPluginLib lib(kernel);
  mgmt::PluginManager pmgr(lib);
  kernel.add_interface("if0");
  kernel.add_interface("if1");
  kernel.routes().add(*netbase::IpPrefix::parse("20.0.0.0/8"), {1, {}});
  for (int i = 0; i < 10; ++i)
    kernel.inject(i, 0, routed_udp(static_cast<std::uint16_t>(i)));
  kernel.run_to_completion();
  auto r = pmgr.exec("telemetry");
  ASSERT_TRUE(r.ok()) << r.text;
  EXPECT_NE(r.text.find("nics: rx=10"), std::string::npos) << r.text;
  EXPECT_NE(r.text.find("rx_drops=0"), std::string::npos) << r.text;
}

}  // namespace
}  // namespace rp

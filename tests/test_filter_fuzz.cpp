// Seeded deterministic fuzz for the classifier (§5.1): random filter
// databases, random + guaranteed-matching keys, and a naive linear-scan
// best-matching-filter oracle over the six-tuple. Both classifier
// implementations (the DAG with each BMP engine, and the linear table) must
// agree with the oracle on every lookup — same hit/miss, and on a hit a
// filter that matches the key and ties the oracle's best for specificity
// (tie-breaking between equally-specific filters is implementation-defined).
// 10k cases per seed; every failure message carries the seed so the exact
// run replays with a one-line test filter.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "aiu/filter_table.hpp"
#include "netbase/rng.hpp"
#include "tgen/workload.hpp"

namespace rp::aiu {
namespace {

// The oracle: scan every installed filter, keep the most specific match by
// compare_specificity (the reference order). Returns nullptr on miss.
const Filter* oracle_lookup(const std::vector<Filter>& filters,
                            const pkt::FlowKey& key) {
  const Filter* best = nullptr;
  for (const Filter& f : filters) {
    if (!f.matches(key)) continue;
    if (!best || compare_specificity(f, *best) > 0) best = &f;
  }
  return best;
}

void check_case(const FilterTableBase& table,
                const std::vector<Filter>& filters, const pkt::FlowKey& key,
                const std::string& where) {
  const Filter* want = oracle_lookup(filters, key);
  const FilterRecord* got = table.lookup(key);
  if (!want) {
    EXPECT_EQ(got, nullptr) << where << " key=" << key.to_string()
                            << " oracle=miss got=" << got->filter.to_string();
    return;
  }
  ASSERT_NE(got, nullptr) << where << " key=" << key.to_string()
                          << " oracle=" << want->to_string() << " got=miss";
  EXPECT_TRUE(got->filter.matches(key))
      << where << " key=" << key.to_string()
      << " returned non-matching filter " << got->filter.to_string();
  EXPECT_EQ(compare_specificity(got->filter, *want), 0)
      << where << " key=" << key.to_string() << "\n  oracle "
      << want->to_string() << "\n  got    " << got->filter.to_string();
}

void fuzz_one_seed(std::uint64_t seed, netbase::IpVersion ver) {
  // Replays with: --gtest_filter=FilterFuzz.* plus this seed in the source.
  SCOPED_TRACE("seed=" + std::to_string(seed) +
               " ver=" + (ver == netbase::IpVersion::v4 ? "v4" : "v6"));

  tgen::FilterSetSpec spec;
  spec.count = 200;  // small enough that overlap/ties are common
  spec.ver = ver;
  spec.seed = seed;
  auto filters = tgen::random_filters(spec);

  // One table per implementation, all holding the same database.
  std::vector<std::pair<std::string, std::unique_ptr<FilterTableBase>>>
      tables;
  for (const char* engine : {"bsl", "patricia", "cpe"})
    tables.emplace_back(
        std::string("dag/") + engine,
        std::make_unique<DagFilterTable>(DagFilterTable::Options{engine}));
  tables.emplace_back("linear", std::make_unique<LinearFilterTable>());
  for (auto& [name, t] : tables)
    for (const Filter& f : filters) t->insert(f, nullptr);

  netbase::Rng rng(seed ^ 0xf1172f0221ULL);
  constexpr int kCases = 10000;
  for (int i = 0; i < kCases; ++i) {
    // Half the keys are drawn to hit a random installed filter (random in
    // its wildcarded dimensions), half are uniform (mostly misses, and the
    // occasional accidental wildcard hit).
    const pkt::FlowKey key =
        (i & 1) ? tgen::matching_key(filters[rng.below(filters.size())], rng)
                : tgen::random_key(rng, ver);
    for (auto& [name, t] : tables) {
      check_case(*t, filters, key, name);
      if (::testing::Test::HasFailure()) {
        ADD_FAILURE() << "REPLAY: seed=" << seed << " case=" << i
                      << " table=" << name;
        return;  // first divergence is enough; the seed replays the rest
      }
    }
  }
}

TEST(FilterFuzz, DagAndLinearMatchOracleV4) {
  for (std::uint64_t seed : {1ull, 7ull, 42ull, 20260805ull})
    fuzz_one_seed(seed, netbase::IpVersion::v4);
}

TEST(FilterFuzz, DagAndLinearMatchOracleV6) {
  for (std::uint64_t seed : {3ull, 1337ull}) fuzz_one_seed(seed, netbase::IpVersion::v6);
}

// Removing a random half of the database must leave lookups agreeing with
// an oracle over the surviving filters (exercises DAG node teardown).
TEST(FilterFuzz, AgreesAfterRandomRemovals) {
  for (std::uint64_t seed : {5ull, 99ull}) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    tgen::FilterSetSpec spec;
    spec.count = 150;
    spec.seed = seed;
    auto generated = tgen::random_filters(spec);
    // Dedupe: remove(f) takes out one record per unique filter, so a
    // duplicate split across kept/removed would make the oracle diverge
    // from the table for reasons that have nothing to do with lookup.
    std::vector<Filter> filters;
    for (const Filter& f : generated)
      if (std::find(filters.begin(), filters.end(), f) == filters.end())
        filters.push_back(f);

    DagFilterTable dag;
    LinearFilterTable lin;
    for (const Filter& f : filters) {
      dag.insert(f, nullptr);
      lin.insert(f, nullptr);
    }

    netbase::Rng rng(seed * 2654435761ULL + 1);
    std::vector<Filter> kept;
    for (const Filter& f : filters) {
      if (rng.chance(0.5)) {
        dag.remove(f);
        lin.remove(f);
      } else {
        kept.push_back(f);
      }
    }

    for (int i = 0; i < 2000; ++i) {
      const pkt::FlowKey key =
          (!kept.empty() && (i & 1))
              ? tgen::matching_key(kept[rng.below(kept.size())], rng)
              : tgen::random_key(rng);
      check_case(dag, kept, key, "dag-after-remove");
      check_case(lin, kept, key, "linear-after-remove");
      if (::testing::Test::HasFailure()) {
        ADD_FAILURE() << "REPLAY: seed=" << seed << " case=" << i;
        return;
      }
    }
  }
}

}  // namespace
}  // namespace rp::aiu

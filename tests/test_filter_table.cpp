// Tests for the DAG classifier against the linear-scan reference, including
// the paper's own Table 1 example, set-pruning correctness, ambiguity
// resolution on overlapping port ranges, and randomized equivalence sweeps
// parameterized over BMP engines and the collapse optimization.
#include <gtest/gtest.h>

#include "aiu/filter_table.hpp"
#include "netbase/memaccess.hpp"
#include "tgen/workload.hpp"

namespace rp::aiu {
namespace {

using netbase::MemAccess;
using netbase::Rng;

pkt::FlowKey key(const char* src, const char* dst, std::uint8_t proto,
                 std::uint16_t sp, std::uint16_t dp, pkt::IfIndex ifc = 0) {
  return {*netbase::IpAddr::parse(src), *netbase::IpAddr::parse(dst),
          proto, sp, dp, ifc};
}

Filter F(const char* spec) {
  auto f = Filter::parse(spec);
  EXPECT_TRUE(f) << spec;
  return *f;
}

TEST(DagFilterTable, PaperTable1Example) {
  // Table 1 of the paper (source, destination, protocol; other fields *):
  //  1: 129.*            192.94.233.10    TCP
  //  2: 128.252.153.1    128.252.153.7    UDP
  //  3: 128.252.153.1    128.252.153.7    TCP
  //  4: 128.252.153.*    *                UDP
  DagFilterTable t;
  auto* f1 = t.insert(F("129.0.0.0/8 192.94.233.10 tcp * * *"), nullptr);
  auto* f2 = t.insert(F("128.252.153.1 128.252.153.7 udp * * *"), nullptr);
  auto* f3 = t.insert(F("128.252.153.1 128.252.153.7 tcp * * *"), nullptr);
  auto* f4 = t.insert(F("128.252.153.0/24 * udp * * *"), nullptr);
  ASSERT_EQ(t.size(), 4u);

  // The paper's lookup walk: <128.252.153.1, 128.252.153.7, UDP> -> filter 2.
  EXPECT_EQ(t.lookup(key("128.252.153.1", "128.252.153.7", 17, 5, 5)), f2);
  EXPECT_EQ(t.lookup(key("128.252.153.1", "128.252.153.7", 6, 5, 5)), f3);
  EXPECT_EQ(t.lookup(key("129.4.5.6", "192.94.233.10", 6, 5, 5)), f1);
  // Filter 2 is a proper subset of filter 4: other 128.252.153.* UDP
  // traffic falls back to filter 4.
  EXPECT_EQ(t.lookup(key("128.252.153.9", "128.252.153.7", 17, 5, 5)), f4);
  EXPECT_EQ(t.lookup(key("128.252.153.1", "1.2.3.4", 17, 5, 5)), f4);
  // Disjoint from everything: no match.
  EXPECT_EQ(t.lookup(key("5.5.5.5", "6.6.6.6", 6, 5, 5)), nullptr);
  // TCP from 128.252.153.9 matches nothing (filter 4 is UDP-only).
  EXPECT_EQ(t.lookup(key("128.252.153.9", "128.252.153.7", 6, 5, 5)), nullptr);
}

TEST(DagFilterTable, SetPruningReplication) {
  // A less specific filter must remain reachable under a more specific
  // source edge chosen by the LPM (no backtracking in set-pruning tries).
  DagFilterTable t;
  auto* wide = t.insert(F("10.0.0.0/8 * * * * *"), nullptr);
  t.insert(F("10.1.1.1 99.99.99.99 tcp * * *"), nullptr);
  // Key matches the /32 source edge but not the narrow filter's dst: the
  // wide filter must still win.
  EXPECT_EQ(t.lookup(key("10.1.1.1", "1.2.3.4", 17, 1, 1)), wide);
}

TEST(DagFilterTable, MostSpecificWinsLexicographically) {
  DagFilterTable t;
  t.insert(F("10.0.0.0/8 20.0.0.0/8 * * * *"), nullptr);
  auto* more = t.insert(F("10.0.0.0/16 * * * * *"), nullptr);
  // Longer source prefix wins even though the other filter has a longer dst.
  EXPECT_EQ(t.lookup(key("10.0.1.1", "20.1.1.1", 6, 1, 1)), more);
}

TEST(DagFilterTable, OverlappingPortRangesResolveToIntersection) {
  DagFilterTable t;
  auto* a = t.insert(F("* * * 0-100 * *"), nullptr);
  auto* b = t.insert(F("* * * 50-150 * *"), nullptr);
  // Inside the intersection either could match; the tie-break (equal
  // specificity by width? no: 0-100 and 50-150 have equal width, first
  // installed wins).
  auto* hit = t.lookup(key("1.1.1.1", "2.2.2.2", 6, 75, 1));
  EXPECT_EQ(hit, a);
  EXPECT_EQ(t.lookup(key("1.1.1.1", "2.2.2.2", 6, 25, 1)), a);
  EXPECT_EQ(t.lookup(key("1.1.1.1", "2.2.2.2", 6, 125, 1)), b);
  EXPECT_EQ(t.lookup(key("1.1.1.1", "2.2.2.2", 6, 175, 1)), nullptr);
}

TEST(DagFilterTable, ExactPortBeatsRange) {
  DagFilterTable t;
  auto* range = t.insert(F("* * * 0-1023 * *"), nullptr);
  auto* exact = t.insert(F("* * * 53 * *"), nullptr);
  EXPECT_EQ(t.lookup(key("1.1.1.1", "2.2.2.2", 17, 53, 9)), exact);
  EXPECT_EQ(t.lookup(key("1.1.1.1", "2.2.2.2", 17, 54, 9)), range);
}

TEST(DagFilterTable, InterfaceField) {
  DagFilterTable t;
  auto* if1 = t.insert(F("* * * * * 1"), nullptr);
  auto* any = t.insert(F("* * tcp * * *"), nullptr);
  EXPECT_EQ(t.lookup(key("1.1.1.1", "2.2.2.2", 17, 1, 1, 1)), if1);
  EXPECT_EQ(t.lookup(key("1.1.1.1", "2.2.2.2", 17, 1, 1, 2)), nullptr);
  EXPECT_EQ(t.lookup(key("1.1.1.1", "2.2.2.2", 6, 1, 1, 2)), any);
}

TEST(DagFilterTable, RebindUpdatesInstancePointer) {
  DagFilterTable t;
  auto* r1 = t.insert(F("* * udp * * *"), nullptr);
  auto* r2 =
      t.insert(F("* * udp * * *"), reinterpret_cast<plugin::PluginInstance*>(4));
  EXPECT_EQ(r1, r2);  // same record, rebound
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(r1->instance, reinterpret_cast<plugin::PluginInstance*>(4));
}

TEST(DagFilterTable, RemoveAndPurge) {
  DagFilterTable t;
  auto* inst = reinterpret_cast<plugin::PluginInstance*>(8);
  t.insert(F("10.0.0.0/8 * * * * *"), inst);
  t.insert(F("11.0.0.0/8 * * * * *"), nullptr);
  EXPECT_EQ(t.remove(F("10.0.0.0/8 * * * * *")), Status::ok);
  EXPECT_EQ(t.remove(F("10.0.0.0/8 * * * * *")), Status::not_found);
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.lookup(key("10.1.1.1", "2.2.2.2", 6, 1, 1)), nullptr);

  t.insert(F("12.0.0.0/8 * * * * *"), inst);
  t.insert(F("13.0.0.0/8 * * * * *"), inst);
  EXPECT_EQ(t.purge_instance(inst), 2u);
  EXPECT_EQ(t.size(), 1u);
}

TEST(DagFilterTable, EmptyTable) {
  DagFilterTable t;
  EXPECT_EQ(t.lookup(key("1.1.1.1", "2.2.2.2", 6, 1, 1)), nullptr);
  EXPECT_EQ(t.size(), 0u);
}

TEST(DagFilterTable, MixedFamilies) {
  DagFilterTable t;
  auto* v4 = t.insert(F("10.0.0.0/8 * * * * *"), nullptr);
  auto* v6 = t.insert(F("2001:db8::/32 * * * * *"), nullptr);
  auto* any = t.insert(F("* * icmp * * *"), nullptr);
  EXPECT_EQ(t.lookup(key("10.1.1.1", "9.9.9.9", 6, 1, 1)), v4);
  EXPECT_EQ(t.lookup(key("2001:db8::5", "2001::1", 6, 1, 1)), v6);
  EXPECT_EQ(t.lookup(key("8.8.8.8", "9.9.9.9", 1, 0, 0)), any);
  EXPECT_EQ(t.lookup(key("2002::1", "2001::1", 1, 0, 0)), any);
}

TEST(LinearFilterTable, AgreesOnPaperExample) {
  LinearFilterTable t;
  auto* f1 = t.insert(F("129.0.0.0/8 192.94.233.10 tcp * * *"), nullptr);
  auto* f2 = t.insert(F("128.252.153.1 128.252.153.7 udp * * *"), nullptr);
  t.insert(F("128.252.153.1 128.252.153.7 tcp * * *"), nullptr);
  auto* f4 = t.insert(F("128.252.153.0/24 * udp * * *"), nullptr);
  EXPECT_EQ(t.lookup(key("128.252.153.1", "128.252.153.7", 17, 5, 5)), f2);
  EXPECT_EQ(t.lookup(key("129.4.5.6", "192.94.233.10", 6, 5, 5)), f1);
  EXPECT_EQ(t.lookup(key("128.252.153.9", "128.252.153.7", 17, 5, 5)), f4);
}


TEST(DagFilterTable, DumpDotIsWellFormed) {
  DagFilterTable t;
  t.insert(F("10.0.0.0/8 * tcp * * *"), nullptr);
  t.insert(F("* * udp 53 * *"), nullptr);
  std::string dot = t.dump_dot();
  EXPECT_NE(dot.find("digraph filter_dag"), std::string::npos);
  EXPECT_NE(dot.find("src"), std::string::npos);
  EXPECT_NE(dot.find("shape=box"), std::string::npos);  // leaves present
  // Balanced braces, ends with newline.
  EXPECT_EQ(dot.front(), 'd');
  EXPECT_NE(dot.find("}\n"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Randomized equivalence: the DAG must return a filter of identical
// specificity to the linear reference for every key, across BMP engines and
// with/without the collapse optimization.

struct EquivParam {
  const char* engine;
  bool collapse;
  netbase::IpVersion ver;
  std::uint64_t seed;
};

class DagEquivalence : public ::testing::TestWithParam<EquivParam> {};

TEST_P(DagEquivalence, MatchesLinearReference) {
  const auto& prm = GetParam();
  DagFilterTable::Options opt;
  opt.bmp_engine = prm.engine;
  opt.collapse = prm.collapse;
  DagFilterTable dag(opt);
  LinearFilterTable lin;

  tgen::FilterSetSpec spec;
  spec.count = 60;
  spec.ver = prm.ver;
  spec.seed = prm.seed;
  auto filters = tgen::random_filters(spec);
  for (const auto& f : filters) {
    dag.insert(f, nullptr);
    lin.insert(f, nullptr);
  }

  Rng rng(prm.seed ^ 0xabcdef);
  for (int i = 0; i < 400; ++i) {
    pkt::FlowKey k;
    if (i % 2) {
      k = tgen::random_key(rng, prm.ver);
    } else {
      k = tgen::matching_key(filters[rng.below(filters.size())], rng);
    }
    const FilterRecord* d = dag.lookup(k);
    const FilterRecord* l = lin.lookup(k);
    ASSERT_EQ(d == nullptr, l == nullptr) << k.to_string();
    if (d && d != l) {
      // Both must match, with identical specificity (distinct filters can
      // tie; the DAG and the scan may break ties differently only if the
      // records differ but compare equal — require equal specificity AND
      // both actually matching).
      EXPECT_TRUE(d->filter.matches(k)) << k.to_string();
      EXPECT_TRUE(l->filter.matches(k)) << k.to_string();
      EXPECT_EQ(compare_specificity(d->filter, l->filter), 0)
          << "dag=" << d->filter.to_string() << " lin=" << l->filter.to_string()
          << " key=" << k.to_string();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DagEquivalence,
    ::testing::Values(
        EquivParam{"bsl", true, netbase::IpVersion::v4, 1},
        EquivParam{"bsl", false, netbase::IpVersion::v4, 2},
        EquivParam{"patricia", true, netbase::IpVersion::v4, 3},
        EquivParam{"cpe", true, netbase::IpVersion::v4, 4},
        EquivParam{"bsl", true, netbase::IpVersion::v6, 5},
        EquivParam{"patricia", false, netbase::IpVersion::v6, 6},
        EquivParam{"cpe", false, netbase::IpVersion::v6, 7},
        EquivParam{"bsl", true, netbase::IpVersion::v4, 8},
        EquivParam{"bsl", true, netbase::IpVersion::v4, 9}));

TEST(DagFilterTable, LookupCostIndependentOfFilterCount) {
  // The headline property: memory accesses per lookup do not grow with the
  // number of installed filters (compare 100 vs 2000 filters).
  auto measure = [](std::size_t n) {
    DagFilterTable t;
    tgen::FilterSetSpec spec;
    spec.count = n;
    spec.seed = 42;
    spec.p_wild_src = 0;  // fully-specified prefixes stress the LPM
    spec.p_wild_dst = 0;
    for (const auto& f : tgen::random_filters(spec)) t.insert(f, nullptr);
    Rng rng(7);
    std::uint64_t worst = 0;
    for (int i = 0; i < 200; ++i) {
      auto k = tgen::random_key(rng);
      MemAccess::reset();
      t.lookup(k);
      worst = std::max(worst, MemAccess::total());
    }
    return worst;
  };
  auto small = measure(100);
  auto large = measure(2000);
  // Allow a small slack (one extra hash level), but no O(n) growth.
  EXPECT_LE(large, small + 6);
}

TEST(DagFilterTable, CollapseReducesNodeCount) {
  tgen::FilterSetSpec spec;
  spec.count = 100;
  spec.seed = 77;
  spec.p_wild_proto = 1.0;  // everything wildcards proto: collapsible level
  auto filters = tgen::random_filters(spec);

  DagFilterTable::Options with, without;
  with.collapse = true;
  without.collapse = false;
  DagFilterTable a(with), b(without);
  for (const auto& f : filters) {
    a.insert(f, nullptr);
    b.insert(f, nullptr);
  }
  EXPECT_LT(a.node_count(), b.node_count());
}

}  // namespace
}  // namespace rp::aiu

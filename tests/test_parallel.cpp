// The sharded datapath's building blocks, plus the mid-traffic control
// regression: SPSC ring ordering under real concurrency, epoch-protected
// snapshot consistency, and the quiesce-hook guarantee that
// IpCore::reset_counters and FlowTable eviction-export are safe while a
// worker is mid-burst (they run only at burst boundaries, and nothing is
// lost or double-counted across a reset/sweep).
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <map>
#include <thread>
#include <vector>

#include "core/router.hpp"
#include "l7/l7_plugins.hpp"
#include "mgmt/pmgr.hpp"
#include "mgmt/rplib.hpp"
#include "parallel/sharded_datapath.hpp"
#include "pkt/builder.hpp"
#include "telemetry/flow_export.hpp"

namespace rp::parallel {
namespace {

// ---------------------------------------------------------------------------
// SpscRing

TEST(SpscRing, SingleThreadFullEmpty) {
  SpscRing<int> r(4);
  EXPECT_GE(r.capacity(), 4u);
  EXPECT_TRUE(r.empty());
  int v = 0;
  EXPECT_FALSE(r.try_pop(v));
  std::size_t pushed = 0;
  for (int i = 0; i < 100; ++i) {
    if (!r.try_push(i)) break;
    ++pushed;
  }
  EXPECT_EQ(pushed, r.capacity());
  for (std::size_t i = 0; i < pushed; ++i) {
    ASSERT_TRUE(r.try_pop(v));
    EXPECT_EQ(v, static_cast<int>(i));
  }
  EXPECT_TRUE(r.empty());
}

TEST(SpscRing, TwoThreadsPreserveOrder) {
  SpscRing<std::uint64_t> r(64);
  constexpr std::uint64_t kN = 200000;
  std::thread producer([&r] {
    for (std::uint64_t i = 0; i < kN; ++i) {
      while (!r.try_push(std::uint64_t{i})) std::this_thread::yield();
    }
  });
  std::uint64_t expect = 0;
  while (expect < kN) {
    std::uint64_t v;
    if (!r.try_pop(v)) {
      std::this_thread::yield();
      continue;
    }
    ASSERT_EQ(v, expect);
    ++expect;
  }
  producer.join();
  EXPECT_TRUE(r.empty());
}

TEST(SpscRing, BurstApiRoundTrips) {
  SpscRing<std::uint64_t> r(32);
  std::vector<std::uint64_t> in(20), out(64);
  for (std::size_t i = 0; i < in.size(); ++i) in[i] = i;
  EXPECT_EQ(r.push_burst(in), in.size());
  EXPECT_EQ(r.size_approx(), in.size());
  const std::size_t n = r.pop_burst(out);
  ASSERT_EQ(n, in.size());
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(out[i], i);
}

// ---------------------------------------------------------------------------
// Epoch / Versioned

TEST(Epoch, ReadersNeverSeeTornOrFreedSnapshots) {
  struct Snap {
    std::uint64_t a;
    std::uint64_t b;  // invariant: b == a * 2
  };
  EpochDomain d;
  Versioned<Snap> v(d);
  const std::size_t slot0 = d.register_reader();
  const std::size_t slot1 = d.register_reader();
  std::atomic<bool> stop{false};

  auto reader = [&](std::size_t slot) {
    while (!stop.load(std::memory_order_acquire)) {
      EpochGuard g(d, slot);
      if (const Snap* s = v.load()) {
        ASSERT_EQ(s->b, s->a * 2);
      }
    }
  };
  std::thread r0(reader, slot0), r1(reader, slot1);
  for (std::uint64_t i = 1; i <= 20000; ++i)
    v.publish(std::make_unique<Snap>(Snap{i, i * 2}));
  stop.store(true, std::memory_order_release);
  r0.join();
  r1.join();
  d.reclaim_all();
  EXPECT_EQ(d.limbo_size(), 0u);
}

// ---------------------------------------------------------------------------
// Mid-traffic control-path mutations (the quiesce-hook regression)

pkt::PacketPtr small_udp(std::uint8_t flow) {
  pkt::UdpSpec s;
  s.src = netbase::IpAddr(netbase::Ipv4Addr(10, 0, 0, flow));
  s.dst = *netbase::IpAddr::parse("20.0.0.5");
  s.sport = 1000;
  s.dport = 9000;
  s.payload_len = 32;
  s.ttl = 64;
  return pkt::build_udp(s);
}

// A flow sink that accumulates per-flow totals across many eviction sweeps
// (each worker gets its own — written only from that worker's thread).
class AccumSink final : public telemetry::FlowSink {
 public:
  void write(const telemetry::FlowExportRecord& r) override {
    auto& [pkts, bytes] = flows_[r.key.to_string()];
    pkts += r.packets;
    bytes += r.bytes;
  }
  std::string describe() const override { return "accum"; }
  std::map<std::string, std::pair<std::uint64_t, std::uint64_t>> flows_;
};

TEST(Parallel, ResetAndSweepAreSafeMidTraffic) {
  constexpr std::uint32_t kWorkers = 2;
  constexpr std::uint64_t kPackets = 20000;
  constexpr int kFlows = 8;
  constexpr netbase::SimTime kSweepAll =
      std::numeric_limits<netbase::SimTime>::max();

  std::vector<AccumSink*> sinks(kWorkers, nullptr);
  ShardedDatapath::Options opt;
  opt.workers = kWorkers;
  opt.ring_capacity = 128;
  ShardedDatapath dp(opt, [&sinks](ShardContext& ctx) {
    ctx.interfaces().add("if0");
    ctx.interfaces().add("if1");
    ctx.routes().add(*netbase::IpPrefix::parse("20.0.0.0/8"), {1, {}});
    auto sink = std::make_unique<AccumSink>();
    sinks[ctx.id()] = sink.get();
    ctx.telemetry().set_sink(std::move(sink));
  });

  std::thread producer([&dp] {
    for (std::uint64_t i = 0; i < kPackets; ++i)
      dp.submit(small_udp(static_cast<std::uint8_t>(1 + i % kFlows)));
  });

  // Hammer the control path while traffic flows: capture-and-reset the
  // counters and evict every flow (export sweep), 40 times. Any packet
  // charged twice, lost at a reset boundary, or exported twice would break
  // the exact totals below.
  std::vector<core::CoreCounters> captured(kWorkers);
  auto capture_and_reset = [&captured](ShardContext& ctx) {
    const core::CoreCounters& c = ctx.core().counters();
    captured[ctx.id()].received += c.received;
    captured[ctx.id()].forwarded += c.forwarded;
    ctx.core().reset_counters();
  };
  for (int round = 0; round < 40; ++round) {
    dp.gather(capture_and_reset);
    dp.sweep_flows(kSweepAll);
  }

  producer.join();
  dp.quiesce();
  dp.gather(capture_and_reset);
  dp.sweep_flows(kSweepAll);
  dp.stop();

  std::uint64_t received = 0, forwarded = 0;
  for (const auto& c : captured) {
    received += c.received;
    forwarded += c.forwarded;
  }
  EXPECT_EQ(received, kPackets);
  EXPECT_EQ(forwarded, kPackets);

  // Every packet appears in exactly one export record.
  std::uint64_t exported_pkts = 0;
  std::map<std::string, std::uint64_t> per_flow;
  for (const AccumSink* s : sinks)
    for (const auto& [key, pb] : s->flows_) {
      exported_pkts += pb.first;
      per_flow[key] += pb.first;
    }
  EXPECT_EQ(exported_pkts, kPackets);
  EXPECT_EQ(per_flow.size(), static_cast<std::size_t>(kFlows));
  for (const auto& [key, pkts] : per_flow)
    EXPECT_EQ(pkts, kPackets / kFlows) << key;
}

// Lock-free status snapshots stay readable and monotone while traffic flows.
TEST(Parallel, StatusSnapshotsAreLockFreeAndMonotone) {
  ShardedDatapath::Options opt;
  opt.workers = 2;
  opt.ring_capacity = 128;
  ShardedDatapath dp(opt, [](ShardContext& ctx) {
    ctx.interfaces().add("if0");
    ctx.interfaces().add("if1");
    ctx.routes().add(*netbase::IpPrefix::parse("20.0.0.0/8"), {1, {}});
  });

  std::vector<std::uint64_t> last(dp.workers(), 0);
  for (int i = 0; i < 5000; ++i) {
    dp.submit(small_udp(static_cast<std::uint8_t>(1 + i % 5)));
    if (i % 64 == 0) {
      for (std::uint32_t w = 0; w < dp.workers(); ++w) {
        const ShardSnapshot s = dp.status(w);
        EXPECT_GE(s.packets_processed, last[w]);
        last[w] = s.packets_processed;
      }
    }
  }
  dp.quiesce();
  dp.stop();
  std::uint64_t total = 0;
  for (const ShardSnapshot& s : dp.status_all()) total += s.packets_processed;
  EXPECT_EQ(total, 5000u);  // final snapshots published at join are exact
}

// The operator surface: pmgr's `shard` family aggregates per-worker state
// on demand (exact via gather) or reads the lock-free snapshots (status).
TEST(Parallel, PmgrShardCommandsAggregateAcrossWorkers) {
  core::RouterKernel kernel;
  mgmt::RouterPluginLib lib(kernel);
  mgmt::PluginManager pmgr(lib);
  EXPECT_FALSE(pmgr.exec("shard status").ok());  // nothing attached yet

  ShardedDatapath::Options opt;
  opt.workers = 2;
  opt.ring_capacity = 128;
  opt.shard.telemetry.sample_every = 4;
  ShardedDatapath dp(opt, [](ShardContext& ctx) {
    ctx.interfaces().add("if0");
    ctx.interfaces().add("if1");
    ctx.routes().add(*netbase::IpPrefix::parse("20.0.0.0/8"), {1, {}});
  });
  pmgr.attach_sharded(&dp);

  for (int i = 0; i < 4000; ++i)
    dp.submit(small_udp(static_cast<std::uint8_t>(1 + i % 6)));
  dp.quiesce();

  auto st = pmgr.exec("shard status");
  ASSERT_TRUE(st.ok()) << st.text;
  EXPECT_NE(st.text.find("workers=2"), std::string::npos) << st.text;
  EXPECT_NE(st.text.find("submitted=4000"), std::string::npos) << st.text;
  EXPECT_NE(st.text.find("shard1:"), std::string::npos) << st.text;

  auto cc = pmgr.exec("shard counters");
  ASSERT_TRUE(cc.ok()) << cc.text;
  EXPECT_NE(cc.text.find("received=4000"), std::string::npos) << cc.text;
  EXPECT_NE(cc.text.find("forwarded=4000"), std::string::npos) << cc.text;

  auto tel = pmgr.exec("shard telemetry");
  ASSERT_TRUE(tel.ok()) << tel.text;
  // 1-in-4 sampling on each shard: the merged histogram has samples and the
  // summary line carries the cross-shard sum.
  EXPECT_NE(tel.text.find("pipeline: samples="), std::string::npos) << tel.text;
  EXPECT_EQ(tel.text.find("samples=0 "), std::string::npos) << tel.text;

  auto res = pmgr.exec("shard resilience");
  ASSERT_TRUE(res.ok()) << res.text;
  EXPECT_NE(res.text.find("faults: total=0"), std::string::npos) << res.text;
  EXPECT_NE(res.text.find("shard0:"), std::string::npos) << res.text;

  ASSERT_TRUE(pmgr.exec("shard reset").ok());
  auto cc2 = pmgr.exec("shard counters");
  ASSERT_TRUE(cc2.ok()) << cc2.text;
  EXPECT_NE(cc2.text.find("received=0"), std::string::npos) << cc2.text;

  auto sw = pmgr.exec("shard sweep 9223372036854775807");
  ASSERT_TRUE(sw.ok()) << sw.text;
  EXPECT_FALSE(pmgr.exec("shard bogus").ok());

  dp.stop();  // join publishes final exact snapshots
  for (const ShardSnapshot& s : dp.status_all())
    EXPECT_EQ(s.flows_active, 0u);
}

// Regression (review): `pmgr l7 rules` mutations must reach the
// shard-private l7 instances that actually see traffic, through the same
// quiesce-safe gather path as budget/reset — not just the main kernel's
// PCU (which here deliberately has no l7 instance at all).
TEST(Parallel, PmgrL7RulesReachShardInstances) {
  core::RouterKernel kernel;
  mgmt::RouterPluginLib lib(kernel);
  mgmt::PluginManager pmgr(lib);

  ShardedDatapath::Options opt;
  opt.workers = 2;
  opt.ring_capacity = 64;
  ShardedDatapath dp(opt, [](ShardContext& ctx) {
    ctx.interfaces().add("if0");
    ctx.pcu().register_plugin(std::make_unique<l7::IdsPlugin>());
    plugin::InstanceId iid = plugin::kNoInstance;
    ASSERT_EQ(ctx.pcu().find("l7ids")->create_instance({{"patterns", "EVIL1"}},
                                                       iid),
              netbase::Status::ok);
    ASSERT_EQ(iid, 1u);  // the id the operator command below targets
  });
  pmgr.attach_sharded(&dp);

  auto add = pmgr.exec("l7 rules l7ids 1 add BADPAT");
  ASSERT_TRUE(add.ok()) << add.text;

  auto list = pmgr.exec("l7 rules l7ids 1 list");
  ASSERT_TRUE(list.ok()) << list.text;
  EXPECT_NE(list.text.find("shard0:"), std::string::npos) << list.text;
  EXPECT_NE(list.text.find("shard1:"), std::string::npos) << list.text;
  // Every shard's rule set carries both the original and the added pattern.
  std::size_t hits = 0;
  for (std::size_t at = list.text.find("BADPAT"); at != std::string::npos;
       at = list.text.find("BADPAT", at + 1))
    ++hits;
  EXPECT_EQ(hits, 2u) << list.text;
  EXPECT_NE(list.text.find("EVIL1"), std::string::npos) << list.text;

  // set replaces on every shard; a malformed pattern list still fails.
  ASSERT_TRUE(pmgr.exec("l7 rules l7ids 1 set ONE,TWO").ok());
  list = pmgr.exec("l7 rules l7ids 1 list");
  EXPECT_EQ(list.text.find("BADPAT"), std::string::npos) << list.text;
  EXPECT_NE(list.text.find("TWO"), std::string::npos) << list.text;
  EXPECT_FALSE(pmgr.exec("l7 rules l7ids 1 set a,,b").ok());
  EXPECT_FALSE(pmgr.exec("l7 rules nosuch 1 list").ok());

  dp.quiesce();
  dp.stop();
}

}  // namespace
}  // namespace rp::parallel

// Tests for IPv4 reassembly, including a property sweep: fragment at random
// MTUs through the core, reassemble at the receiver, compare byte-for-byte.
#include <gtest/gtest.h>

#include "core/router.hpp"
#include "netbase/byteorder.hpp"
#include "pkt/builder.hpp"
#include "pkt/headers.hpp"
#include "pkt/reassembly.hpp"

namespace rp::pkt {
namespace {

PacketPtr udp(std::size_t payload, std::uint16_t id = 0x77) {
  UdpSpec s;
  s.src = *netbase::IpAddr::parse("10.0.0.1");
  s.dst = *netbase::IpAddr::parse("20.0.0.1");
  s.sport = 5;
  s.dport = 6;
  s.payload_len = payload;
  s.payload_fill = 0x3c;
  auto p = build_udp(s);
  netbase::store_be16(p->data() + 4, id);
  Ipv4Header::finalize_checksum(p->data(), 20);
  return p;
}

// Splits by hand with the core's fragmentation via a router.
std::vector<PacketPtr> fragment_via_router(PacketPtr p, std::size_t mtu) {
  core::RouterKernel k;
  k.add_interface("in0");
  auto& out = k.add_interface("out0");
  out.set_mtu(mtu);
  k.routes().add(*netbase::IpPrefix::parse("20.0.0.0/8"), {1, {}});
  std::vector<PacketPtr> frags;
  out.set_tx_sink(
      [&](PacketPtr f, netbase::SimTime) { frags.push_back(std::move(f)); });
  k.inject(0, 0, std::move(p));
  k.run_to_completion();
  return frags;
}

TEST(Reassembly, UnfragmentedPassesThrough) {
  Ipv4Reassembler r;
  auto p = udp(100);
  auto out = r.feed(std::move(p), 0);
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(out->size(), 128u);
  EXPECT_EQ(r.pending(), 0u);
}

TEST(Reassembly, InOrderFragments) {
  auto original = udp(2000);
  auto want = clone_packet(*original);
  auto frags = fragment_via_router(std::move(original), 576);
  ASSERT_GE(frags.size(), 3u);

  Ipv4Reassembler r;
  PacketPtr done;
  for (auto& f : frags) {
    auto res = r.feed(std::move(f), 0);
    if (res) {
      EXPECT_EQ(done, nullptr);
      done = std::move(res);
    }
  }
  ASSERT_NE(done, nullptr);
  // TTL decremented by the router; compare payload and addresses.
  EXPECT_EQ(done->size(), want->size());
  EXPECT_EQ(0, std::memcmp(done->data() + 12, want->data() + 12,
                           want->size() - 12));
  EXPECT_TRUE(Ipv4Header::verify_checksum({done->data(), 20}));
  EXPECT_EQ(r.completed(), 1u);
}

TEST(Reassembly, OutOfOrderAndDuplicateFragments) {
  auto original = udp(3000);
  auto want = clone_packet(*original);
  auto frags = fragment_via_router(std::move(original), 576);
  ASSERT_GE(frags.size(), 4u);

  Ipv4Reassembler r;
  // Feed in reverse, then duplicate the first two.
  PacketPtr done;
  for (auto it = frags.rbegin(); it != frags.rend(); ++it) {
    auto copy = clone_packet(**it);
    auto res = r.feed(std::move(copy), 0);
    if (res) done = std::move(res);
  }
  ASSERT_NE(done, nullptr);
  EXPECT_EQ(0, std::memcmp(done->data() + 20, want->data() + 20,
                           want->size() - 20));
  // Duplicates of a finished datagram just open a new partial.
  r.feed(clone_packet(*frags[0]), 0);
  EXPECT_EQ(r.pending(), 1u);
}

TEST(Reassembly, InterleavedDatagramsKeptApart) {
  auto a = udp(1500, 0x100);
  auto b = udp(1500, 0x200);
  auto fa = fragment_via_router(std::move(a), 576);
  auto fb = fragment_via_router(std::move(b), 576);
  Ipv4Reassembler r;
  int done = 0;
  for (std::size_t i = 0; i < std::max(fa.size(), fb.size()); ++i) {
    if (i < fa.size() && r.feed(std::move(fa[i]), 0)) ++done;
    if (i < fb.size() && r.feed(std::move(fb[i]), 0)) ++done;
  }
  EXPECT_EQ(done, 2);
  EXPECT_EQ(r.pending(), 0u);
}

TEST(Reassembly, TimeoutDiscardsPartials) {
  auto original = udp(2000);
  auto frags = fragment_via_router(std::move(original), 576);
  Ipv4Reassembler r(netbase::kNsPerSec);
  r.feed(std::move(frags[0]), 0);
  EXPECT_EQ(r.pending(), 1u);
  EXPECT_EQ(r.expire(netbase::kNsPerMs), 0u);  // too early
  EXPECT_EQ(r.expire(2 * netbase::kNsPerSec), 1u);
  EXPECT_EQ(r.pending(), 0u);
}

TEST(Reassembly, MalformedFragmentsRejected) {
  Ipv4Reassembler r;
  // Middle fragment whose length is not a multiple of 8.
  auto p = udp(100);
  netbase::store_be16(p->data() + 6, 0x2000 | 4);  // MF, offset 32
  Ipv4Header::finalize_checksum(p->data(), 20);
  EXPECT_EQ(r.feed(std::move(p), 0), nullptr);
  EXPECT_EQ(r.malformed(), 1u);
  EXPECT_EQ(r.feed(nullptr, 0), nullptr);
}

// Hand-built fragment for the adversarial cases (the router's fragmenter
// never lies, so these must be crafted).
PacketPtr make_frag(std::uint16_t id, std::size_t off_units, std::size_t len,
                    bool mf, std::uint8_t fill, std::uint8_t ihl = 5) {
  const std::size_t hlen = std::size_t{ihl} * 4;
  auto p = make_packet(hlen + len);
  Ipv4Header h;
  h.ihl = ihl;
  h.total_len = static_cast<std::uint16_t>(hlen + len);
  h.id = id;
  h.flags = mf ? 1 : 0;
  h.frag_off = static_cast<std::uint16_t>(off_units);
  h.proto = 17;
  h.src = netbase::Ipv4Addr(10, 0, 0, 1);
  h.dst = netbase::Ipv4Addr(20, 0, 0, 1);
  h.write(p->data());
  std::memset(p->data() + 20, 0, hlen - 20);  // options all zero (EOL)
  Ipv4Header::finalize_checksum(p->data(), hlen);
  std::memset(p->data() + hlen, fill, len);
  return p;
}

// Regression (wire hardening): fragment payload length comes from
// total_len, not the capture, so trailing capture padding cannot inflate
// the reassembled datagram.
TEST(Reassembly, LyingCaptureUsesTotalLen) {
  Ipv4Reassembler r;
  auto first = make_frag(0x9a, 0, 16, true, 0x11);
  std::memset(first->append(64), 0xff, 64);  // capture padding
  EXPECT_EQ(r.feed(std::move(first), 0), nullptr);
  auto last = make_frag(0x9a, 2, 8, false, 0x22);
  auto out = r.feed(std::move(last), 0);
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(out->size(), 20u + 24u);  // not 20 + 80
  for (std::size_t i = 0; i < 16; ++i) EXPECT_EQ(out->data()[20 + i], 0x11);
}

// Regression (wire hardening): a fragment that rewrites already-received
// bytes with different content (teardrop family) discards the datagram;
// byte-identical retransmissions stay accepted.
TEST(Reassembly, OverlapRewriteDiscardsDatagram) {
  Ipv4Reassembler r;
  EXPECT_EQ(r.feed(make_frag(0x42, 0, 16, true, 0x11), 0), nullptr);
  EXPECT_EQ(r.feed(make_frag(0x42, 0, 16, true, 0x11), 0), nullptr);  // dup ok
  EXPECT_EQ(r.overlaps(), 0u);
  EXPECT_EQ(r.feed(make_frag(0x42, 1, 16, true, 0x99), 0), nullptr);
  EXPECT_EQ(r.overlaps(), 1u);
  EXPECT_EQ(r.pending(), 0u);  // the whole partial is gone
  // The datagram cannot complete afterwards.
  EXPECT_EQ(r.feed(make_frag(0x42, 4, 8, false, 0x22), 0), nullptr);
  EXPECT_EQ(r.completed(), 0u);
}

// Regression (wire hardening): a second "last" fragment that contradicts
// the established datagram end poisons the datagram.
TEST(Reassembly, ConflictingLastFragmentDiscards) {
  Ipv4Reassembler r;
  EXPECT_EQ(r.feed(make_frag(0x43, 0, 16, true, 0x11), 0), nullptr);
  EXPECT_EQ(r.feed(make_frag(0x43, 4, 8, false, 0x22), 0), nullptr);  // end=40
  EXPECT_EQ(r.feed(make_frag(0x43, 8, 8, false, 0x33), 0), nullptr);  // end=72
  EXPECT_EQ(r.overlaps(), 1u);
  EXPECT_EQ(r.pending(), 0u);
}

// Regression (wire hardening): per-fragment bounds use each fragment's own
// header length, so an offset-0 fragment with options can still push
// header+payload past 65535 — the rebuild must reject, never truncate the
// 16-bit total-length field.
TEST(Reassembly, OversizeReassemblyRejected) {
  Ipv4Reassembler r;
  // Offset-0 fragment carries 24B of header (ihl 6).
  EXPECT_EQ(r.feed(make_frag(0x44, 0, 8, true, 0x11, 6), 0), nullptr);
  // Payload end at 65512; 20+65512 fits, but 24+65512 = 65536 does not.
  EXPECT_EQ(r.feed(make_frag(0x44, 1, 65504, false, 0x22), 0), nullptr);
  EXPECT_EQ(r.oversize(), 1u);
  EXPECT_EQ(r.completed(), 0u);
  EXPECT_EQ(r.pending(), 0u);
}

// Regression (wire hardening): state-exhaustion guards — partial-datagram
// count and byte budgets evict the oldest partial instead of growing
// without bound.
TEST(Reassembly, PartialCountCapEvictsOldest) {
  Ipv4Reassembler r;
  for (std::uint16_t id = 0; id < 300; ++id)
    r.feed(make_frag(id, 0, 8, true, 0x11), id);
  EXPECT_LE(r.pending(), Ipv4Reassembler::kDefaultMaxPartials);
  EXPECT_EQ(r.evicted(), 300 - Ipv4Reassembler::kDefaultMaxPartials);
  // The survivors are the newest ones: completing id 299 still works.
  auto out = r.feed(make_frag(299, 1, 8, false, 0x22), 1000);
  ASSERT_NE(out, nullptr);
}

TEST(Reassembly, ByteBudgetEvicts) {
  Ipv4Reassembler r(30 * netbase::kNsPerSec, 1000, 4096);
  for (std::uint16_t id = 0; id < 8; ++id)
    r.feed(make_frag(id, 0, 1024, true, 0x11), id);
  EXPECT_LE(r.buffered_bytes(), 4096u);
  EXPECT_GE(r.evicted(), 4u);
}

// Growing an *existing* partial past the byte budget must evict others
// (never the one being fed), not slip past the new-partial check.
TEST(Reassembly, ByteBudgetEvictsOnPartialGrowth) {
  Ipv4Reassembler r(30 * netbase::kNsPerSec, 1000, 4096);
  for (std::uint16_t id = 0; id < 3; ++id)
    r.feed(make_frag(id, 0, 1024, true, 0x11), id);
  EXPECT_EQ(r.evicted(), 0u);
  // Extend datagram 0 to 3KiB: 3 * 1024 + 2048 extra > 4096.
  r.feed(make_frag(0, 128, 2048, true, 0x22), 10);
  EXPECT_LE(r.buffered_bytes(), 4096u);
  EXPECT_GE(r.evicted(), 1u);
  EXPECT_EQ(r.pending(), 2u);  // ids 0 (grown) and 2 survive; 1 evicted
}

class FragRoundTrip : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(FragRoundTrip, FragmentsReassembleExactly) {
  auto [payload, mtu] = GetParam();
  auto original = udp(static_cast<std::size_t>(payload));
  auto want = clone_packet(*original);
  auto frags =
      fragment_via_router(std::move(original), static_cast<std::size_t>(mtu));
  ASSERT_FALSE(frags.empty());
  for (const auto& f : frags) ASSERT_LE(f->size(), static_cast<std::size_t>(mtu));

  Ipv4Reassembler r;
  PacketPtr done;
  for (auto& f : frags) {
    auto res = r.feed(std::move(f), 0);
    if (res) done = std::move(res);
  }
  ASSERT_NE(done, nullptr) << "payload=" << payload << " mtu=" << mtu;
  ASSERT_EQ(done->size(), want->size());
  EXPECT_EQ(0, std::memcmp(done->data() + 20, want->data() + 20,
                           want->size() - 20));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FragRoundTrip,
    ::testing::Combine(::testing::Values(100, 557, 1400, 2901, 8000),
                       ::testing::Values(68, 576, 1500)));

}  // namespace
}  // namespace rp::pkt

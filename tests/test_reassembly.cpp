// Tests for IPv4 reassembly, including a property sweep: fragment at random
// MTUs through the core, reassemble at the receiver, compare byte-for-byte.
#include <gtest/gtest.h>

#include "core/router.hpp"
#include "netbase/byteorder.hpp"
#include "pkt/builder.hpp"
#include "pkt/headers.hpp"
#include "pkt/reassembly.hpp"

namespace rp::pkt {
namespace {

PacketPtr udp(std::size_t payload, std::uint16_t id = 0x77) {
  UdpSpec s;
  s.src = *netbase::IpAddr::parse("10.0.0.1");
  s.dst = *netbase::IpAddr::parse("20.0.0.1");
  s.sport = 5;
  s.dport = 6;
  s.payload_len = payload;
  s.payload_fill = 0x3c;
  auto p = build_udp(s);
  netbase::store_be16(p->data() + 4, id);
  Ipv4Header::finalize_checksum(p->data(), 20);
  return p;
}

// Splits by hand with the core's fragmentation via a router.
std::vector<PacketPtr> fragment_via_router(PacketPtr p, std::size_t mtu) {
  core::RouterKernel k;
  k.add_interface("in0");
  auto& out = k.add_interface("out0");
  out.set_mtu(mtu);
  k.routes().add(*netbase::IpPrefix::parse("20.0.0.0/8"), {1, {}});
  std::vector<PacketPtr> frags;
  out.set_tx_sink(
      [&](PacketPtr f, netbase::SimTime) { frags.push_back(std::move(f)); });
  k.inject(0, 0, std::move(p));
  k.run_to_completion();
  return frags;
}

TEST(Reassembly, UnfragmentedPassesThrough) {
  Ipv4Reassembler r;
  auto p = udp(100);
  auto out = r.feed(std::move(p), 0);
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(out->size(), 128u);
  EXPECT_EQ(r.pending(), 0u);
}

TEST(Reassembly, InOrderFragments) {
  auto original = udp(2000);
  auto want = clone_packet(*original);
  auto frags = fragment_via_router(std::move(original), 576);
  ASSERT_GE(frags.size(), 3u);

  Ipv4Reassembler r;
  PacketPtr done;
  for (auto& f : frags) {
    auto res = r.feed(std::move(f), 0);
    if (res) {
      EXPECT_EQ(done, nullptr);
      done = std::move(res);
    }
  }
  ASSERT_NE(done, nullptr);
  // TTL decremented by the router; compare payload and addresses.
  EXPECT_EQ(done->size(), want->size());
  EXPECT_EQ(0, std::memcmp(done->data() + 12, want->data() + 12,
                           want->size() - 12));
  EXPECT_TRUE(Ipv4Header::verify_checksum({done->data(), 20}));
  EXPECT_EQ(r.completed(), 1u);
}

TEST(Reassembly, OutOfOrderAndDuplicateFragments) {
  auto original = udp(3000);
  auto want = clone_packet(*original);
  auto frags = fragment_via_router(std::move(original), 576);
  ASSERT_GE(frags.size(), 4u);

  Ipv4Reassembler r;
  // Feed in reverse, then duplicate the first two.
  PacketPtr done;
  for (auto it = frags.rbegin(); it != frags.rend(); ++it) {
    auto copy = clone_packet(**it);
    auto res = r.feed(std::move(copy), 0);
    if (res) done = std::move(res);
  }
  ASSERT_NE(done, nullptr);
  EXPECT_EQ(0, std::memcmp(done->data() + 20, want->data() + 20,
                           want->size() - 20));
  // Duplicates of a finished datagram just open a new partial.
  r.feed(clone_packet(*frags[0]), 0);
  EXPECT_EQ(r.pending(), 1u);
}

TEST(Reassembly, InterleavedDatagramsKeptApart) {
  auto a = udp(1500, 0x100);
  auto b = udp(1500, 0x200);
  auto fa = fragment_via_router(std::move(a), 576);
  auto fb = fragment_via_router(std::move(b), 576);
  Ipv4Reassembler r;
  int done = 0;
  for (std::size_t i = 0; i < std::max(fa.size(), fb.size()); ++i) {
    if (i < fa.size() && r.feed(std::move(fa[i]), 0)) ++done;
    if (i < fb.size() && r.feed(std::move(fb[i]), 0)) ++done;
  }
  EXPECT_EQ(done, 2);
  EXPECT_EQ(r.pending(), 0u);
}

TEST(Reassembly, TimeoutDiscardsPartials) {
  auto original = udp(2000);
  auto frags = fragment_via_router(std::move(original), 576);
  Ipv4Reassembler r(netbase::kNsPerSec);
  r.feed(std::move(frags[0]), 0);
  EXPECT_EQ(r.pending(), 1u);
  EXPECT_EQ(r.expire(netbase::kNsPerMs), 0u);  // too early
  EXPECT_EQ(r.expire(2 * netbase::kNsPerSec), 1u);
  EXPECT_EQ(r.pending(), 0u);
}

TEST(Reassembly, MalformedFragmentsRejected) {
  Ipv4Reassembler r;
  // Middle fragment whose length is not a multiple of 8.
  auto p = udp(100);
  netbase::store_be16(p->data() + 6, 0x2000 | 4);  // MF, offset 32
  Ipv4Header::finalize_checksum(p->data(), 20);
  EXPECT_EQ(r.feed(std::move(p), 0), nullptr);
  EXPECT_EQ(r.malformed(), 1u);
  EXPECT_EQ(r.feed(nullptr, 0), nullptr);
}

class FragRoundTrip : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(FragRoundTrip, FragmentsReassembleExactly) {
  auto [payload, mtu] = GetParam();
  auto original = udp(static_cast<std::size_t>(payload));
  auto want = clone_packet(*original);
  auto frags =
      fragment_via_router(std::move(original), static_cast<std::size_t>(mtu));
  ASSERT_FALSE(frags.empty());
  for (const auto& f : frags) ASSERT_LE(f->size(), static_cast<std::size_t>(mtu));

  Ipv4Reassembler r;
  PacketPtr done;
  for (auto& f : frags) {
    auto res = r.feed(std::move(f), 0);
    if (res) done = std::move(res);
  }
  ASSERT_NE(done, nullptr) << "payload=" << payload << " mtu=" << mtu;
  ASSERT_EQ(done->size(), want->size());
  EXPECT_EQ(0, std::memcmp(done->data() + 20, want->data() + 20,
                           want->size() - 20));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FragRoundTrip,
    ::testing::Combine(::testing::Values(100, 557, 1400, 2901, 8000),
                       ::testing::Values(68, 576, 1500)));

}  // namespace
}  // namespace rp::pkt

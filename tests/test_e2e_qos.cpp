// End-to-end QoS scenarios through the full router event loop:
//  * an RSVP reservation actually shapes bandwidth on a congested link
//    (not just installs state), and its expiry returns the flow to
//    best-effort treatment;
//  * IPv6 hop-by-hop router-alert packets flow through the ipopt gate and
//    are counted by the rtalert plugin while normal v6 traffic passes.
#include <gtest/gtest.h>

#include <map>

#include "core/router.hpp"
#include "mgmt/pmgr.hpp"
#include "mgmt/register_all.hpp"
#include "mgmt/rsvp.hpp"
#include "pkt/builder.hpp"

namespace rp {
namespace {

using netbase::SimTime;

TEST(E2eQos, RsvpReservationShapesBandwidthAndExpires) {
  const std::uint64_t kLink = 8'000'000;
  core::RouterKernel k;
  mgmt::register_builtin_modules();
  k.add_interface("in0");
  auto& out = k.interfaces().add("out0", kLink);
  mgmt::RouterPluginLib lib(k);
  mgmt::PluginManager pmgr(lib);
  auto r = pmgr.run_script(R"(
route add 20.0.0.0/8 if1
modload drr
create drr quantum=500
attach drr 1 if1
)");
  ASSERT_TRUE(r.ok()) << r.text;

  mgmt::RsvpDaemon::Config cfg;
  cfg.weight_unit_bps = 1'000'000;
  cfg.refresh_period = netbase::kNsPerSec;
  mgmt::RsvpDaemon rsvp(lib, cfg);

  mgmt::RsvpSession sess{*netbase::IpAddr::parse("20.0.0.1"), 17, 80};
  mgmt::RsvpSender video{*netbase::IpAddr::parse("10.0.0.1"), 1};
  ASSERT_EQ(rsvp.path(sess, video, {6'000'000, 8192}, 0),
            netbase::Status::ok);
  ASSERT_EQ(rsvp.resv(sess, video, 6'000'000, 0), netbase::Status::ok);

  std::map<std::uint16_t, std::uint64_t> bytes;
  out.set_tx_sink([&](pkt::PacketPtr p, SimTime) {
    bytes[p->key.sport] += p->size();
  });

  // Two greedy flows; flow 1 (sport 1) holds a 6 Mb/s reservation (weight
  // 6), flow 2 is best-effort (weight 1): expect ~6:1 under saturation.
  auto offer = [&](std::uint16_t sport, std::uint8_t src, SimTime from,
                   SimTime until) {
    pkt::UdpSpec s;
    s.src = netbase::IpAddr(netbase::Ipv4Addr(10, 0, 0, src));
    s.dst = *netbase::IpAddr::parse("20.0.0.1");
    s.sport = sport;
    s.dport = 80;
    s.payload_len = 472;
    for (SimTime t = from; t < until; t += 500'000)
      k.inject(t, 0, pkt::build_udp(s));
  };
  offer(1, 1, 0, 500 * netbase::kNsPerMs);
  offer(2, 2, 0, 500 * netbase::kNsPerMs);
  k.run_until(500 * netbase::kNsPerMs);

  ASSERT_GT(bytes[2], 0u);
  double ratio = static_cast<double>(bytes[1]) / bytes[2];
  EXPECT_NEAR(ratio, 6.0, 1.0);

  // No refresh: the reservation times out; afterwards both flows are
  // best-effort and share ~1:1.
  EXPECT_GE(rsvp.tick(20 * netbase::kNsPerSec), 1u);
  EXPECT_FALSE(rsvp.has_resv(sess, video));
  bytes.clear();
  offer(1, 1, 30 * netbase::kNsPerSec,
        30 * netbase::kNsPerSec + 500 * netbase::kNsPerMs);
  offer(2, 2, 30 * netbase::kNsPerSec,
        30 * netbase::kNsPerSec + 500 * netbase::kNsPerMs);
  k.run_until(31 * netbase::kNsPerSec);
  ASSERT_GT(bytes[2], 0u);
  EXPECT_NEAR(static_cast<double>(bytes[1]) / bytes[2], 1.0, 0.2);
}

TEST(E2eQos, RouterAlertCountedAtIpoptGate) {
  core::RouterKernel k;
  mgmt::register_builtin_modules();
  k.add_interface("in0");
  auto& out = k.add_interface("out0");
  mgmt::RouterPluginLib lib(k);
  mgmt::PluginManager pmgr(lib);
  auto r = pmgr.run_script(R"(
route add 2001:db8::/32 if1
modload rtalert
create rtalert
bind rtalert 1 <*, *, *, *, *, *>
)");
  ASSERT_TRUE(r.ok()) << r.text;

  std::size_t delivered = 0;
  out.set_tx_sink([&](pkt::PacketPtr, SimTime) { ++delivered; });

  pkt::UdpSpec s;
  s.src = *netbase::IpAddr::parse("2001:db8::1");
  s.dst = *netbase::IpAddr::parse("2001:db8::2");
  s.sport = 1;
  s.dport = 2;
  s.payload_len = 32;
  const std::uint8_t alert[] = {5, 2, 0, 0};  // router alert (RSVP)
  k.inject(0, 0, pkt::build_udp6_hopopts(s, alert));
  k.inject(1000, 0, pkt::build_udp(s));  // plain v6
  k.run_to_completion();

  EXPECT_EQ(delivered, 2u);  // both forwarded
  auto stats = pmgr.exec("msg rtalert 1 stats");
  ASSERT_TRUE(stats.ok());
  EXPECT_NE(stats.text.find("packets=2"), std::string::npos) << stats.text;
  EXPECT_NE(stats.text.find("alerts=1"), std::string::npos) << stats.text;
}

}  // namespace
}  // namespace rp

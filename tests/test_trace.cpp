// Tests for trace capture/replay: round trips, hand-written traces,
// malformed input, and replay into a router.
#include <gtest/gtest.h>

#include "core/router.hpp"
#include "tgen/trace.hpp"

namespace rp::tgen {
namespace {

TEST(Trace, RoundTripPreservesEverything) {
  MixSpec mix;
  mix.n_flows = 8;
  mix.n_packets = 60;
  mix.seed = 4;
  auto original = flow_mix(mix);

  std::string text;
  ASSERT_EQ(write_trace(original, text), 60u);

  std::vector<Arrival> replayed;
  ASSERT_TRUE(read_trace(text, replayed));
  ASSERT_EQ(replayed.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(replayed[i].t, original[i].t);
    EXPECT_EQ(replayed[i].iface, original[i].iface);
    EXPECT_EQ(replayed[i].p->key, original[i].p->key);
    EXPECT_EQ(replayed[i].p->size(), original[i].p->size());
  }
}

TEST(Trace, HandWrittenTraceWithCommentsAndTtl) {
  const char* text = R"(# two packets, one with explicit ttl
0 0 udp 10.0.0.1 20.0.0.1 1000 53 64
# tcp with ttl 9
500000 1 tcp 2001:db8::1 2001:db8::2 4000 80 100 9
)";
  std::vector<Arrival> out;
  ASSERT_TRUE(read_trace(text, out));
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].p->key.proto, 17);
  EXPECT_EQ(out[0].p->key.dport, 53);
  EXPECT_EQ(out[1].iface, 1);
  EXPECT_EQ(out[1].p->data()[7], 9);  // v6 hop limit
}

TEST(Trace, MalformedLinesReportLineNumber) {
  std::vector<Arrival> out;
  std::size_t line = 0;
  EXPECT_FALSE(read_trace("0 0 udp 10.0.0.1 20.0.0.1 1000\n", out, &line));
  EXPECT_EQ(line, 1u);
  EXPECT_FALSE(read_trace("# ok\n0 0 frob 1.1.1.1 2.2.2.2 1 2 3\n", out, &line));
  EXPECT_EQ(line, 2u);
  EXPECT_FALSE(
      read_trace("0 0 udp 10.0.0.1 2001::1 1 2 3\n", out, &line));  // mixed AF
  EXPECT_FALSE(read_trace("0 0 udp x.y 2.2.2.2 1 2 3\n", out, &line));
  EXPECT_FALSE(read_trace("0 0 udp 1.1.1.1 2.2.2.2 99999 2 3\n", out, &line));
}

TEST(Trace, ReplayIntoRouter) {
  const char* text =
      "0 0 udp 10.0.0.1 20.0.0.1 5 80 100\n"
      "1000 0 udp 10.0.0.2 20.0.0.1 6 80 100\n";
  std::vector<Arrival> out;
  ASSERT_TRUE(read_trace(text, out));
  core::RouterKernel k;
  k.add_interface("in0");
  k.add_interface("out0");
  k.routes().add(*netbase::IpPrefix::parse("20.0.0.0/8"), {1, {}});
  for (auto& a : out) k.inject(a.t, a.iface, std::move(a.p));
  k.run_to_completion();
  EXPECT_EQ(k.core().counters().forwarded, 2u);
}

}  // namespace
}  // namespace rp::tgen

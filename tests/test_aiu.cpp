// Tests for the AIU facade: the cached/uncached data path of Section 3.2
// (flow-table hit, FIX fast path, n-gate classification on a miss), cache
// flushing on filter changes, the PCU hook wiring, and the no-cache
// ablation mode.
#include <gtest/gtest.h>

#include "aiu/aiu.hpp"
#include "pkt/builder.hpp"
#include "plugin/pcu.hpp"

namespace rp::aiu {
namespace {

using plugin::PluginType;

class CountingInstance final : public plugin::PluginInstance {
 public:
  plugin::Verdict handle_packet(pkt::Packet&, void**) override {
    ++calls;
    return plugin::Verdict::cont;
  }
  int calls{0};
};

class DummyPlugin final : public plugin::Plugin {
 public:
  explicit DummyPlugin(std::string name, PluginType type)
      : Plugin(std::move(name), type) {}

 protected:
  std::unique_ptr<plugin::PluginInstance> make_instance(
      const plugin::Config&) override {
    return std::make_unique<CountingInstance>();
  }
};

pkt::PacketPtr udp_packet(std::uint8_t last_octet, std::uint16_t dport = 80) {
  pkt::UdpSpec s;
  s.src = netbase::IpAddr(netbase::Ipv4Addr(10, 0, 0, last_octet));
  s.dst = netbase::IpAddr(netbase::Ipv4Addr(20, 0, 0, 1));
  s.sport = 1000;
  s.dport = dport;
  s.payload_len = 32;
  return pkt::build_udp(s);
}

class AiuTest : public ::testing::Test {
 protected:
  AiuTest() : aiu_(pcu_, clock_) {
    pcu_.register_plugin(
        std::make_unique<DummyPlugin>("sec", PluginType::ipsec));
    pcu_.register_plugin(
        std::make_unique<DummyPlugin>("mon", PluginType::stats));
    plugin::InstanceId id = plugin::kNoInstance;
    pcu_.find("sec")->create_instance({}, id);
    sec_ = static_cast<CountingInstance*>(pcu_.find("sec")->instance(id));
    pcu_.find("mon")->create_instance({}, id);
    mon_ = static_cast<CountingInstance*>(pcu_.find("mon")->instance(id));
  }

  Filter F(const char* spec) { return *Filter::parse(spec); }

  netbase::SimClock clock_;
  plugin::PluginControlUnit pcu_;
  Aiu aiu_;
  CountingInstance* sec_;
  CountingInstance* mon_;
};

TEST_F(AiuTest, UncachedMissCreatesFlowEntryWithAllGates) {
  ASSERT_EQ(aiu_.create_filter(PluginType::ipsec, F("10.0.0.0/8 * * * * *"),
                               sec_),
            Status::ok);
  ASSERT_EQ(aiu_.create_filter(PluginType::stats, F("* * udp * * *"), mon_),
            Status::ok);

  auto p = udp_packet(1);
  auto* b = aiu_.gate_lookup(*p, PluginType::ipsec);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->instance, sec_);
  EXPECT_NE(p->fix, pkt::kNoFlow);

  // One flow entry, with n filter-table lookups for the n active gates.
  EXPECT_EQ(aiu_.stats().uncached_classifications, 1u);
  EXPECT_EQ(aiu_.stats().filter_lookups, 2u);

  // The second gate hits the same flow entry via the FIX without another
  // classification.
  auto* b2 = aiu_.gate_lookup(*p, PluginType::stats);
  EXPECT_EQ(b2->instance, mon_);
  EXPECT_EQ(aiu_.stats().filter_lookups, 2u);
  EXPECT_EQ(aiu_.stats().uncached_classifications, 1u);
}

TEST_F(AiuTest, SecondPacketHitsFlowCache) {
  aiu_.create_filter(PluginType::ipsec, F("10.0.0.0/8 * * * * *"), sec_);
  auto p1 = udp_packet(1);
  aiu_.gate_lookup(*p1, PluginType::ipsec);
  auto p2 = udp_packet(1);  // same flow
  auto* b = aiu_.gate_lookup(*p2, PluginType::ipsec);
  EXPECT_EQ(b->instance, sec_);
  EXPECT_EQ(aiu_.stats().uncached_classifications, 1u);
  EXPECT_EQ(aiu_.flow_table().stats().hits, 1u);
  // A different flow misses again.
  auto p3 = udp_packet(2);
  aiu_.gate_lookup(*p3, PluginType::ipsec);
  EXPECT_EQ(aiu_.stats().uncached_classifications, 2u);
}

TEST_F(AiuTest, SoftStatePersistsAcrossPacketsOfAFlow) {
  aiu_.create_filter(PluginType::ipsec, F("* * * * * *"), sec_);
  auto p1 = udp_packet(3);
  auto* b1 = aiu_.gate_lookup(*p1, PluginType::ipsec);
  int marker = 7;
  b1->soft = &marker;
  auto p2 = udp_packet(3);
  auto* b2 = aiu_.gate_lookup(*p2, PluginType::ipsec);
  EXPECT_EQ(b2->soft, &marker);
}

TEST_F(AiuTest, NoMatchYieldsNullInstanceBinding) {
  aiu_.create_filter(PluginType::ipsec, F("99.0.0.0/8 * * * * *"), sec_);
  auto p = udp_packet(1);
  auto* b = aiu_.gate_lookup(*p, PluginType::ipsec);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->instance, nullptr);  // gate simply continues
}

TEST_F(AiuTest, FilterChangeFlushesCache) {
  aiu_.create_filter(PluginType::ipsec, F("* * udp * * *"), sec_);
  auto p1 = udp_packet(1);
  aiu_.gate_lookup(*p1, PluginType::ipsec);
  EXPECT_EQ(aiu_.flow_table().active(), 1u);

  // Installing a more specific filter must invalidate cached bindings.
  aiu_.create_filter(PluginType::ipsec, F("10.0.0.1 * udp * * *"), mon_);
  EXPECT_EQ(aiu_.flow_table().active(), 0u);
  EXPECT_GE(aiu_.stats().cache_flushes, 1u);

  auto p2 = udp_packet(1);
  auto* b = aiu_.gate_lookup(*p2, PluginType::ipsec);
  EXPECT_EQ(b->instance, mon_);  // new binding wins for 10.0.0.1
}

TEST_F(AiuTest, RemoveFilterFlushesAndUnbinds) {
  aiu_.create_filter(PluginType::ipsec, F("* * udp * * *"), sec_);
  auto p1 = udp_packet(1);
  aiu_.gate_lookup(*p1, PluginType::ipsec);
  ASSERT_EQ(aiu_.remove_filter(PluginType::ipsec, F("* * udp * * *")),
            Status::ok);
  auto p2 = udp_packet(1);
  auto* b = aiu_.gate_lookup(*p2, PluginType::ipsec);
  EXPECT_EQ(b->instance, nullptr);
  EXPECT_EQ(aiu_.remove_filter(PluginType::ipsec, F("* * udp * * *")),
            Status::not_found);
}

TEST_F(AiuTest, PcuRegisterHookInstallsFilter) {
  // register_instance via the PCU must land in the right gate's table.
  plugin::PluginMsg reg;
  reg.kind = plugin::PluginMsg::Kind::register_instance;
  reg.plugin_name = "sec";
  reg.instance = sec_->id();
  reg.filter_spec = "<10.0.0.0/8, *, udp, *, *, *>";
  ASSERT_EQ(pcu_.dispatch(reg).status, Status::ok);
  auto p = udp_packet(1);
  EXPECT_EQ(aiu_.gate_lookup(*p, PluginType::ipsec)->instance, sec_);

  reg.kind = plugin::PluginMsg::Kind::deregister_instance;
  ASSERT_EQ(pcu_.dispatch(reg).status, Status::ok);
  auto p2 = udp_packet(1);
  EXPECT_EQ(aiu_.gate_lookup(*p2, PluginType::ipsec)->instance, nullptr);
}

TEST_F(AiuTest, PurgeHookDropsFlowAndFilterState) {
  aiu_.create_filter(PluginType::ipsec, F("* * * * * *"), sec_);
  auto p = udp_packet(1);
  aiu_.gate_lookup(*p, PluginType::ipsec);
  ASSERT_EQ(aiu_.flow_table().active(), 1u);

  plugin::PluginMsg free_msg;
  free_msg.kind = plugin::PluginMsg::Kind::free_instance;
  free_msg.plugin_name = "sec";
  free_msg.instance = sec_->id();
  ASSERT_EQ(pcu_.dispatch(free_msg).status, Status::ok);
  EXPECT_EQ(aiu_.flow_table().active(), 0u);
  EXPECT_EQ(aiu_.filter_table(PluginType::ipsec)->size(), 0u);
}

TEST_F(AiuTest, BadPacketReturnsNull) {
  auto p = pkt::make_packet(2);
  p->data()[0] = 0xff;
  EXPECT_EQ(aiu_.gate_lookup(*p, PluginType::ipsec), nullptr);
}

TEST(AiuNoCache, AblationClassifiesPerGate) {
  netbase::SimClock clock;
  plugin::PluginControlUnit pcu;
  Aiu::Options opt;
  opt.flow_cache_enabled = false;
  Aiu aiu(pcu, clock, opt);

  pcu.register_plugin(std::make_unique<DummyPlugin>("sec", PluginType::ipsec));
  plugin::InstanceId id = plugin::kNoInstance;
  pcu.find("sec")->create_instance({}, id);
  auto* inst = pcu.find("sec")->instance(id);

  aiu.create_filter(PluginType::ipsec, *Filter::parse("* * udp * * *"), inst);
  for (int i = 0; i < 3; ++i) {
    auto p = udp_packet(1);
    auto* b = aiu.gate_lookup(*p, PluginType::ipsec);
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(b->instance, inst);
    EXPECT_EQ(p->fix, pkt::kNoFlow);  // no flow entry is ever created
  }
  // Every packet pays a filter lookup: no caching.
  EXPECT_EQ(aiu.stats().filter_lookups, 3u);
  EXPECT_EQ(aiu.flow_table().active(), 0u);
}

TEST(AiuLinear, LinearClassifierOptionWorks) {
  netbase::SimClock clock;
  plugin::PluginControlUnit pcu;
  Aiu::Options opt;
  opt.classifier = "linear";
  Aiu aiu(pcu, clock, opt);
  pcu.register_plugin(std::make_unique<DummyPlugin>("sec", PluginType::ipsec));
  plugin::InstanceId id = plugin::kNoInstance;
  pcu.find("sec")->create_instance({}, id);
  auto* inst = pcu.find("sec")->instance(id);
  aiu.create_filter(PluginType::ipsec, *Filter::parse("10.0.0.0/8 * * * * *"),
                    inst);
  auto p = udp_packet(1);
  EXPECT_EQ(aiu.gate_lookup(*p, PluginType::ipsec)->instance, inst);
}

}  // namespace
}  // namespace rp::aiu

// Tests for the management plane: pmgr command parsing, configuration
// scripts (the paper's §6.1 DRR setup), the Router Plugin Library, the SSP
// daemon, and the firewall plugin.
#include <gtest/gtest.h>

#include "core/router.hpp"
#include "mgmt/firewall_plugin.hpp"
#include "mgmt/pmgr.hpp"
#include "mgmt/register_all.hpp"
#include "mgmt/rplib.hpp"
#include "mgmt/ssp.hpp"
#include "netbase/byteorder.hpp"
#include "pkt/builder.hpp"

namespace rp::mgmt {
namespace {

using netbase::Status;

pkt::PacketPtr udp(std::uint16_t sport, std::uint8_t src_octet = 1) {
  pkt::UdpSpec s;
  s.src = netbase::IpAddr(netbase::Ipv4Addr(10, 0, 0, src_octet));
  s.dst = netbase::IpAddr(netbase::Ipv4Addr(20, 0, 0, 1));
  s.sport = sport;
  s.dport = 80;
  s.payload_len = 100;
  return pkt::build_udp(s);
}

class MgmtTest : public ::testing::Test {
 protected:
  MgmtTest() : lib_(kernel_), pmgr_(lib_) {
    register_builtin_modules();
    kernel_.add_interface("if0");
    kernel_.add_interface("if1");
  }

  core::RouterKernel kernel_;
  RouterPluginLib lib_;
  PluginManager pmgr_;
};

TEST_F(MgmtTest, PaperStyleDrrConfigurationScript) {
  // The §6.1 flavour: load DRR, create an instance for the output
  // interface, bind flows, give one a reservation weight.
  const char* script = R"(
# boot-time configuration
route add 20.0.0.0/8 if1
modload drr
create drr quantum=1500
attach drr 1 if1
bind drr 1 <10.0.0.0/8, *, udp, *, *, *>
msg drr 1 setweight filter=<10.0.0.2,*,udp,*,*,*> weight=10
)";
  auto r = pmgr_.run_script(script);
  ASSERT_TRUE(r.ok()) << r.text;
  EXPECT_TRUE(kernel_.loader().loaded("drr"));
  EXPECT_NE(kernel_.core().port_scheduler(1), nullptr);
  EXPECT_EQ(kernel_.aiu()
                .filter_table(plugin::PluginType::sched)
                ->size(),
            1u);
}

TEST_F(MgmtTest, ExecErrors) {
  EXPECT_FALSE(pmgr_.exec("frobnicate").ok());
  EXPECT_FALSE(pmgr_.exec("modload").ok());
  EXPECT_FALSE(pmgr_.exec("modload no_such_module").ok());
  EXPECT_FALSE(pmgr_.exec("create ghost").ok());
  EXPECT_FALSE(pmgr_.exec("bind drr x <..>").ok());
  EXPECT_FALSE(pmgr_.exec("attach drr 1 if9").ok());
  EXPECT_FALSE(pmgr_.exec("route add bogus if0").ok());
  EXPECT_TRUE(pmgr_.exec("# just a comment").ok());
  EXPECT_TRUE(pmgr_.exec("").ok());
}

TEST_F(MgmtTest, RejectsTrailingGarbageOnBareCommands) {
  // Commands that take no arguments must not silently ignore extras.
  EXPECT_FALSE(pmgr_.exec("lsmod extra").ok());
  EXPECT_FALSE(pmgr_.exec("aiu extra").ok());
  EXPECT_FALSE(pmgr_.exec("telemetry metrics extra").ok());
  EXPECT_FALSE(pmgr_.exec("telemetry export now").ok());
  EXPECT_FALSE(pmgr_.exec("telemetry reset please").ok());
}

TEST_F(MgmtTest, TelemetryUnknownSubcommandIsAnError) {
  auto r = pmgr_.exec("telemetry bogus");
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.text.find("unknown telemetry subcommand"), std::string::npos);
  // Malformed numeric arguments must fail loudly, not no-op.
  EXPECT_FALSE(pmgr_.exec("telemetry sample abc").ok());
  EXPECT_FALSE(pmgr_.exec("telemetry trace xyz").ok());
}

TEST_F(MgmtTest, CtrlUnknownSubcommandIsAnError) {
  auto r = pmgr_.exec("ctrl bogus");
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.text.find("unknown ctrl subcommand"), std::string::npos);
  // Strict parsing throughout the family: wrong arity and malformed
  // operands fail loudly instead of half-applying a batch.
  EXPECT_FALSE(pmgr_.exec("ctrl status extra").ok());
  EXPECT_FALSE(pmgr_.exec("ctrl route-batch").ok());
  EXPECT_FALSE(pmgr_.exec("ctrl route-batch add 10.0.0.0/8").ok());
  EXPECT_FALSE(pmgr_.exec("ctrl route-batch frob 10.0.0.0/8 if1").ok());
  EXPECT_FALSE(pmgr_.exec("ctrl route-batch add 10.0.0.0/99 if1").ok());
  EXPECT_FALSE(pmgr_.exec("ctrl route-batch withdraw").ok());
  EXPECT_FALSE(pmgr_.exec("ctrl filter-batch").ok());
  EXPECT_FALSE(
      pmgr_.exec("ctrl filter-batch fw nan add=<*,*,udp,*,80,*>").ok());
  EXPECT_FALSE(
      pmgr_.exec("ctrl filter-batch fw 1 frob=<*,*,udp,*,80,*>").ok());
  EXPECT_FALSE(pmgr_.exec("ctrl filter-batch fw 1 add=<garbage>").ok());
  EXPECT_FALSE(pmgr_.exec("ctrl upgrade").ok());
  EXPECT_FALSE(pmgr_.exec("ctrl upgrade stats 1").ok());
  EXPECT_FALSE(pmgr_.exec("ctrl upgrade stats one 2").ok());
  EXPECT_FALSE(pmgr_.exec("ctrl upgrade stats 1 2 maybe").ok());
}

TEST_F(MgmtTest, CtrlCommandsEndToEnd) {
  // One atomic route batch: two adds and a withdraw of one of them.
  auto r = pmgr_.exec(
      "ctrl route-batch add 10.0.0.0/8 if1 add 20.0.0.0/8 if0 "
      "withdraw 20.0.0.0/8");
  ASSERT_TRUE(r.ok()) << r.text;
  EXPECT_EQ(kernel_.routes().size(), 1u);
  auto s = pmgr_.exec("ctrl status");
  ASSERT_TRUE(s.ok());
  EXPECT_NE(s.text.find("route_batches=1"), std::string::npos) << s.text;

  // Batched filter churn against a live firewall instance.
  ASSERT_TRUE(pmgr_.exec("modload firewall").ok());
  ASSERT_TRUE(pmgr_.exec("create firewall policy=deny").ok());
  r = pmgr_.exec(
      "ctrl filter-batch firewall 1 add=<10.0.0.0/8,*,udp,*,80,*> "
      "add=<10.0.0.0/8,*,tcp,*,80,*> remove=<10.0.0.0/8,*,udp,*,80,*>");
  ASSERT_TRUE(r.ok()) << r.text;
  EXPECT_EQ(
      kernel_.aiu().filter_table(plugin::PluginType::firewall)->size(), 1u);

  // Resolution failures are reported, not silently dropped.
  EXPECT_FALSE(
      pmgr_.exec("ctrl filter-batch ghost 1 add=<*,*,udp,*,80,*>").ok());
  EXPECT_FALSE(pmgr_.exec("ctrl upgrade ghost 1 2").ok());
  EXPECT_FALSE(pmgr_.exec("ctrl upgrade firewall 1 9").ok());
}

TEST_F(MgmtTest, SanitizeCountersCommand) {
  ASSERT_TRUE(pmgr_.exec("route add 20.0.0.0/8 if1").ok());

  auto bad = udp(1234);
  netbase::store_be16(bad->data() + 2, 19);  // total_len < header
  bad->key_valid = false;
  bad->invalidate_flow_hash();
  kernel_.core().process(std::move(bad));

  auto r = pmgr_.exec("sanitize");
  ASSERT_TRUE(r.ok());
  EXPECT_NE(r.text.find("dropped=1"), std::string::npos) << r.text;
  EXPECT_NE(r.text.find("v4-total-len=1"), std::string::npos) << r.text;
  EXPECT_NE(r.text.find("state: on"), std::string::npos) << r.text;

  // The telemetry summary carries the same line.
  auto t = pmgr_.exec("telemetry");
  ASSERT_TRUE(t.ok());
  EXPECT_NE(t.text.find("sanitize: dropped=1"), std::string::npos) << t.text;

  EXPECT_TRUE(pmgr_.exec("sanitize off").ok());
  EXPECT_FALSE(kernel_.core().config().sanitize);
  EXPECT_TRUE(pmgr_.exec("sanitize on").ok());
  EXPECT_TRUE(kernel_.core().config().sanitize);
  EXPECT_FALSE(pmgr_.exec("sanitize bogus").ok());
}

TEST_F(MgmtTest, LsmodListsModules) {
  pmgr_.exec("modload fifo");
  auto r = pmgr_.exec("lsmod");
  ASSERT_TRUE(r.ok());
  EXPECT_NE(r.text.find("drr"), std::string::npos);
  EXPECT_NE(r.text.find("loaded: fifo"), std::string::npos);
}

TEST_F(MgmtTest, ScriptStopsAtFirstError) {
  auto r = pmgr_.run_script("modload fifo\nmodload nope\nmodload drr");
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.text.find("modload nope"), std::string::npos);
  EXPECT_FALSE(kernel_.loader().loaded("drr"));  // stopped before
}

TEST_F(MgmtTest, CreateFreeInstanceViaLibrary) {
  ASSERT_EQ(lib_.modload("fifo"), Status::ok);
  plugin::InstanceId id = plugin::kNoInstance;
  ASSERT_EQ(lib_.create_instance("fifo", {}, id), Status::ok);
  EXPECT_NE(kernel_.pcu().find_instance("fifo", id), nullptr);
  ASSERT_EQ(lib_.free_instance("fifo", id), Status::ok);
  EXPECT_EQ(kernel_.pcu().find_instance("fifo", id), nullptr);
}

TEST_F(MgmtTest, AttachRejectsNonScheduler) {
  ASSERT_EQ(lib_.modload("stats"), Status::ok);
  plugin::InstanceId id = plugin::kNoInstance;
  ASSERT_EQ(lib_.create_instance("stats", {}, id), Status::ok);
  EXPECT_EQ(lib_.attach_scheduler("stats", id, 0), Status::invalid_argument);
}

TEST_F(MgmtTest, FirewallPolicyEndToEnd) {
  pmgr_.exec("route add 20.0.0.0/8 if1");
  ASSERT_TRUE(pmgr_.exec("modload firewall").ok());
  ASSERT_TRUE(pmgr_.exec("create firewall policy=deny").ok());
  ASSERT_TRUE(pmgr_.exec("bind firewall 1 <10.0.0.66, *, *, *, *, *>").ok());

  kernel_.inject(0, 0, udp(1, 66));  // blocked source
  kernel_.inject(0, 0, udp(1, 1));   // allowed source
  kernel_.run_to_completion();
  EXPECT_EQ(kernel_.core().counters().dropped(core::DropReason::policy), 1u);
  EXPECT_EQ(kernel_.core().counters().forwarded, 1u);

  auto r = pmgr_.exec("msg firewall 1 stats");
  ASSERT_TRUE(r.ok());
  EXPECT_NE(r.text.find("deny hits=1"), std::string::npos);
}

TEST_F(MgmtTest, SspReservationLifecycle) {
  pmgr_.exec("route add 20.0.0.0/8 if1");
  ASSERT_TRUE(pmgr_.exec("modload drr").ok());
  ASSERT_TRUE(pmgr_.exec("create drr").ok());
  ASSERT_TRUE(pmgr_.exec("attach drr 1 if1").ok());

  SspDaemon ssp(lib_, "drr", 1, 1'000'000);  // weight unit: 1 Mb/s
  // RESV without PATH state fails.
  EXPECT_EQ(ssp.resv(7, 5'000'000), Status::not_found);

  ASSERT_EQ(ssp.path(7, "<10.0.0.1, 20.0.0.1, udp, 1000, 80, *>"), Status::ok);
  ASSERT_EQ(ssp.resv(7, 5'000'000), Status::ok);
  const auto* sess = ssp.session(7);
  ASSERT_NE(sess, nullptr);
  EXPECT_TRUE(sess->reserved);
  EXPECT_EQ(sess->weight, 5u);
  // The reservation installed a filter at the scheduling gate.
  EXPECT_EQ(kernel_.aiu().filter_table(plugin::PluginType::sched)->size(), 1u);

  ASSERT_EQ(ssp.teardown(7), Status::ok);
  EXPECT_EQ(kernel_.aiu().filter_table(plugin::PluginType::sched)->size(), 0u);
  EXPECT_EQ(ssp.teardown(7), Status::not_found);
  EXPECT_EQ(ssp.session_count(), 0u);
}

TEST_F(MgmtTest, SspRejectsBadFilter) {
  SspDaemon ssp(lib_, "drr", 1);
  EXPECT_EQ(ssp.path(1, "garbage"), Status::invalid_argument);
}


TEST_F(MgmtTest, AiuIntrospectionCommand) {
  pmgr_.exec("route add 20.0.0.0/8 if1");
  pmgr_.exec("modload firewall");
  pmgr_.exec("create firewall policy=deny");
  pmgr_.exec("bind firewall 1 <10.0.0.66, *, *, *, *, *>");
  kernel_.inject(0, 0, udp(1, 1));
  kernel_.inject(100, 0, udp(1, 1));
  kernel_.run_to_completion();

  auto r = pmgr_.exec("aiu");
  ASSERT_TRUE(r.ok());
  EXPECT_NE(r.text.find("hits=1"), std::string::npos) << r.text;
  EXPECT_NE(r.text.find("misses=1"), std::string::npos) << r.text;
  EXPECT_NE(r.text.find("firewall=1"), std::string::npos) << r.text;
}

TEST(Firewall, InstancePolicies) {
  FirewallPlugin p;
  plugin::InstanceId permit_id = plugin::kNoInstance, deny_id = plugin::kNoInstance;
  ASSERT_EQ(p.create_instance({{"policy", "permit"}}, permit_id), Status::ok);
  ASSERT_EQ(p.create_instance({{"policy", "deny"}}, deny_id), Status::ok);
  plugin::InstanceId bad;
  EXPECT_EQ(p.create_instance({}, bad), Status::invalid_argument);

  auto pkt = udp(1);
  EXPECT_EQ(p.instance(permit_id)->handle_packet(*pkt, nullptr),
            plugin::Verdict::cont);
  EXPECT_EQ(p.instance(deny_id)->handle_packet(*pkt, nullptr),
            plugin::Verdict::drop);
}

TEST(PluginSocket, CountsMessages) {
  core::RouterKernel k;
  RouterPluginLib lib(k);
  register_builtin_modules();
  lib.modload("fifo");
  plugin::InstanceId id = plugin::kNoInstance;
  lib.create_instance("fifo", {}, id);
  EXPECT_EQ(lib.socket().messages_sent(), 1u);
}

TEST_F(MgmtTest, SchedCommandReportsEngineState) {
  // Before any scheduler exists the command still succeeds (nothing to
  // report is not an error).
  auto r = pmgr_.exec("sched");
  ASSERT_TRUE(r.ok()) << r.text;
  EXPECT_NE(r.text.find("no sched instances"), std::string::npos);

  auto boot = pmgr_.run_script(R"(
route add 20.0.0.0/8 if1
modload drr
modload eiffel
create drr quantum=1500
create eiffel rank=vtime
attach eiffel 1 if1
)");
  ASSERT_TRUE(boot.ok()) << boot.text;

  // `sched` defaults to `sched status`: every engine answers its stats.
  r = pmgr_.exec("sched");
  ASSERT_TRUE(r.ok()) << r.text;
  EXPECT_NE(r.text.find("drr#1:"), std::string::npos) << r.text;
  EXPECT_NE(r.text.find("eiffel#1:"), std::string::npos) << r.text;
  EXPECT_NE(r.text.find("backlog_pkts"), std::string::npos) << r.text;
  EXPECT_EQ(pmgr_.exec("sched status").text, r.text);

  // ranks / occupancy are Eiffel-specific: DRR skips them silently.
  r = pmgr_.exec("sched ranks");
  ASSERT_TRUE(r.ok()) << r.text;
  EXPECT_NE(r.text.find("eiffel#1: rank=vtime"), std::string::npos) << r.text;
  EXPECT_EQ(r.text.find("drr#1"), std::string::npos) << r.text;
  EXPECT_NE(r.text.find("horizon="), std::string::npos) << r.text;

  r = pmgr_.exec("sched occupancy");
  ASSERT_TRUE(r.ok()) << r.text;
  EXPECT_NE(r.text.find("eiffel#1: cur_buckets="), std::string::npos)
      << r.text;
  EXPECT_NE(r.text.find("active_flows="), std::string::npos) << r.text;

  // Strict parsing: unknown subcommands and trailing garbage fail with the
  // usage line instead of half-working.
  r = pmgr_.exec("sched bogus");
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.text.find("sched [status|ranks|occupancy]"), std::string::npos)
      << r.text;
  EXPECT_FALSE(pmgr_.exec("sched status extra").ok());
}

}  // namespace
}  // namespace rp::mgmt

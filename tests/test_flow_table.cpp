// Tests for the flow table: hashing, chaining, the §5.2 free-list growth
// sequence (1024, 2048, 4096, ...), LRU recycling at the record cap, idle
// expiry, and the flow_removed soft-state callback.
#include <gtest/gtest.h>

#include <algorithm>

#include "aiu/flow_table.hpp"
#include "netbase/memaccess.hpp"
#include "tgen/workload.hpp"

namespace rp::aiu {
namespace {

using netbase::MemAccess;
using netbase::Rng;

pkt::FlowKey mk(std::uint32_t i) {
  pkt::FlowKey k;
  k.src = netbase::IpAddr(netbase::Ipv4Addr(i));
  k.dst = netbase::IpAddr(netbase::Ipv4Addr(~i));
  k.proto = 17;
  k.sport = static_cast<std::uint16_t>(i);
  k.dport = 80;
  k.in_iface = 0;
  return k;
}

// Counts flow_removed callbacks and remembers the soft pointers it saw.
class RecordingInstance final : public plugin::PluginInstance {
 public:
  plugin::Verdict handle_packet(pkt::Packet&, void**) override {
    return plugin::Verdict::cont;
  }
  void flow_removed(void* soft) override {
    ++removed;
    last_soft = soft;
  }
  int removed{0};
  void* last_soft{nullptr};
};

TEST(FlowTable, InsertLookupRemove) {
  FlowTable t(1024, 16, 4096);
  EXPECT_EQ(t.lookup(mk(1), 0), pkt::kNoFlow);
  auto i = t.insert(mk(1), 100);
  ASSERT_NE(i, pkt::kNoFlow);
  EXPECT_EQ(t.active(), 1u);
  EXPECT_EQ(t.lookup(mk(1), 200), i);
  EXPECT_EQ(t.rec(i).last_used, 200);
  EXPECT_EQ(t.rec(i).packets, 1u);
  t.remove(i);
  EXPECT_EQ(t.active(), 0u);
  EXPECT_EQ(t.lookup(mk(1), 300), pkt::kNoFlow);
}

TEST(FlowTable, CollisionChainsResolve) {
  // 1-bucket table: everything collides; all entries must still be found.
  FlowTable t(1, 8, 1024);
  std::vector<pkt::FlowIndex> idx;
  for (std::uint32_t i = 0; i < 50; ++i) idx.push_back(t.insert(mk(i), i));
  for (std::uint32_t i = 0; i < 50; ++i) EXPECT_EQ(t.lookup(mk(i), 99), idx[i]);
  // Remove the middle of chains and re-check.
  for (std::uint32_t i = 0; i < 50; i += 2) t.remove(idx[i]);
  for (std::uint32_t i = 1; i < 50; i += 2) EXPECT_EQ(t.lookup(mk(i), 99), idx[i]);
  for (std::uint32_t i = 0; i < 50; i += 2)
    EXPECT_EQ(t.lookup(mk(i), 99), pkt::kNoFlow);
}

TEST(FlowTable, GrowthSequenceDoubles) {
  FlowTable t(256, 4, 64);
  EXPECT_EQ(t.capacity(), 4u);
  for (std::uint32_t i = 0; i < 5; ++i) t.insert(mk(i), i);
  EXPECT_EQ(t.capacity(), 8u);  // 4 -> 8
  for (std::uint32_t i = 5; i < 9; ++i) t.insert(mk(i), i);
  EXPECT_EQ(t.capacity(), 16u);  // 8 -> 16
  EXPECT_EQ(t.stats().grown, 2u);
}

TEST(FlowTable, RecyclesLruAtCap) {
  FlowTable t(256, 4, 8);  // hard cap at 8 records
  for (std::uint32_t i = 0; i < 8; ++i) t.insert(mk(i), i);
  EXPECT_EQ(t.active(), 8u);
  // Touch flow 0 so it is no longer the LRU victim.
  EXPECT_NE(t.lookup(mk(0), 100), pkt::kNoFlow);
  // Next insert must evict flow 1 (the oldest untouched).
  t.insert(mk(100), 101);
  EXPECT_EQ(t.active(), 8u);
  EXPECT_EQ(t.stats().recycled, 1u);
  EXPECT_EQ(t.lookup(mk(1), 102), pkt::kNoFlow);   // evicted
  EXPECT_NE(t.lookup(mk(0), 102), pkt::kNoFlow);   // survived
  EXPECT_NE(t.lookup(mk(100), 102), pkt::kNoFlow);
}

TEST(FlowTable, FlowRemovedCallbackFiresWithSoftState) {
  FlowTable t(64, 4, 64);
  RecordingInstance inst;
  auto i = t.insert(mk(5), 0);
  int marker = 42;
  t.rec(i).gates[gate_index(plugin::PluginType::sched)] = {&inst, &marker,
                                                           nullptr};
  t.remove(i);
  EXPECT_EQ(inst.removed, 1);
  EXPECT_EQ(inst.last_soft, &marker);
}

TEST(FlowTable, PurgeInstanceRemovesOnlyItsFlows) {
  FlowTable t(64, 8, 64);
  RecordingInstance a, b;
  auto ia = t.insert(mk(1), 0);
  auto ib = t.insert(mk(2), 0);
  t.insert(mk(3), 0);  // unbound flow
  t.rec(ia).gates[1] = {&a, nullptr, nullptr};
  t.rec(ib).gates[2] = {&b, nullptr, nullptr};
  EXPECT_EQ(t.purge_instance(&a), 1u);
  EXPECT_EQ(t.active(), 2u);
  EXPECT_EQ(t.lookup(mk(1), 9), pkt::kNoFlow);
  EXPECT_NE(t.lookup(mk(2), 9), pkt::kNoFlow);
}

TEST(FlowTable, PurgeFilterRemovesDerivedFlows) {
  FlowTable t(64, 8, 64);
  FilterRecord fr;
  auto i1 = t.insert(mk(1), 0);
  t.insert(mk(2), 0);
  t.rec(i1).gates[3] = {nullptr, nullptr, &fr};
  EXPECT_EQ(t.purge_filter(&fr), 1u);
  EXPECT_EQ(t.active(), 1u);
}

TEST(FlowTable, ExpireIdleRemovesOldFlows) {
  FlowTable t(64, 8, 64);
  t.insert(mk(1), 100);
  t.insert(mk(2), 200);
  t.insert(mk(3), 300);
  t.lookup(mk(1), 400);  // refresh flow 1
  EXPECT_EQ(t.expire_idle(250), 1u);  // only flow 2 is older than 250
  EXPECT_EQ(t.active(), 2u);
  EXPECT_EQ(t.lookup(mk(2), 500), pkt::kNoFlow);
}

TEST(FlowTable, HitMissStats) {
  FlowTable t(64, 8, 64);
  t.lookup(mk(1), 0);
  t.insert(mk(1), 0);
  t.lookup(mk(1), 1);
  t.lookup(mk(2), 1);
  EXPECT_EQ(t.stats().hits, 1u);
  EXPECT_EQ(t.stats().misses, 2u);
  EXPECT_EQ(t.stats().inserts, 1u);
}

TEST(FlowTable, LookupCostOneProbePlusChain) {
  // In a well-sized table a hit costs the bucket probe plus one entry fetch.
  FlowTable t(32768, 1024, 1 << 20);
  Rng rng(3);
  std::vector<pkt::FlowKey> keys;
  for (int i = 0; i < 100; ++i) {
    keys.push_back(tgen::random_key(rng));
    t.insert(keys.back(), 0);
  }
  std::uint64_t worst = 0;
  for (const auto& k : keys) {
    MemAccess::reset();
    ASSERT_NE(t.lookup(k, 1), pkt::kNoFlow);
    worst = std::max(worst, MemAccess::total());
  }
  EXPECT_LE(worst, 4u);  // 100 flows in 32768 buckets: chains are tiny
}

TEST(FlowTable, ClearEmptiesEverything) {
  FlowTable t(64, 8, 64);
  for (std::uint32_t i = 0; i < 20; ++i) t.insert(mk(i), i);
  t.clear();
  EXPECT_EQ(t.active(), 0u);
  for (std::uint32_t i = 0; i < 20; ++i)
    EXPECT_EQ(t.lookup(mk(i), 99), pkt::kNoFlow);
  // Table remains usable after clear.
  EXPECT_NE(t.insert(mk(5), 1), pkt::kNoFlow);
}

TEST(FlowTable, ChurnAtCapStaysConsistent) {
  // Sustained churn far past the record cap: the free list never grows past
  // max_records, every insert beyond it recycles the LRU entry, and the
  // most recent kCap keys always remain resolvable (two-stage lookup, as
  // the burst path probes).
  constexpr std::uint32_t kCap = 64;
  FlowTable t(256, 4, kCap);
  netbase::SimTime now = 0;
  for (std::uint32_t i = 0; i < 10 * kCap; ++i) {
    auto k = mk(i);
    t.insert(k, k.hash(), ++now);
    ASSERT_LE(t.active(), kCap);
    ASSERT_LE(t.capacity(), kCap);
  }
  EXPECT_EQ(t.active(), kCap);
  EXPECT_EQ(t.stats().recycled, 9 * kCap);
  // The newest kCap flows survived; everything older was recycled.
  for (std::uint32_t i = 9 * kCap; i < 10 * kCap; ++i) {
    auto k = mk(i);
    EXPECT_NE(t.lookup(k, k.hash(), now), pkt::kNoFlow) << i;
  }
  for (std::uint32_t i = 0; i < kCap; ++i) {
    auto k = mk(i);
    EXPECT_EQ(t.lookup(k, k.hash(), now), pkt::kNoFlow) << i;
  }
}

TEST(FlowTable, ExpireIdleThenPrecomputedHashLookup) {
  // expire_idle must unchain records such that the two-stage (precomputed
  // hash) probe agrees with the key-only probe, and reinsertion after
  // expiry produces a findable record with the stored hash refreshed.
  FlowTable t(64, 8, 64);
  auto k1 = mk(1), k2 = mk(2), k3 = mk(3);
  t.insert(k1, k1.hash(), 100);
  t.insert(k2, k2.hash(), 200);
  t.insert(k3, k3.hash(), 300);
  t.lookup(k1, k1.hash(), 400);        // refresh flow 1
  EXPECT_EQ(t.expire_idle(250), 1u);   // only flow 2 idle since before 250
  EXPECT_EQ(t.lookup(k2, k2.hash(), 500), pkt::kNoFlow);
  EXPECT_EQ(t.lookup(k2, 500), pkt::kNoFlow);
  auto i2 = t.insert(k2, k2.hash(), 600);
  ASSERT_NE(i2, pkt::kNoFlow);
  EXPECT_EQ(t.rec(i2).hash, k2.hash());
  EXPECT_EQ(t.lookup(k2, k2.hash(), 700), i2);
}

TEST(FlowTable, TouchMatchesLookupHitAccounting) {
  // The burst path's last-flow memo refreshes via touch(); its effect on
  // the record and the stats must be indistinguishable from a lookup hit.
  FlowTable t(64, 8, 64);
  auto k = mk(7);
  auto i = t.insert(k, k.hash(), 10);
  t.touch(i, 20);
  EXPECT_EQ(t.rec(i).last_used, 20);
  EXPECT_EQ(t.rec(i).packets, 1u);
  EXPECT_EQ(t.stats().hits, 1u);
  t.lookup(k, k.hash(), 30);
  EXPECT_EQ(t.rec(i).packets, 2u);
  EXPECT_EQ(t.stats().hits, 2u);
  // touch() refreshes LRU position: with the cap full, the touched entry
  // must not be the recycling victim.
  FlowTable t2(64, 4, 4);
  pkt::FlowIndex first = t2.insert(mk(0), 0);
  for (std::uint32_t i2 = 1; i2 < 4; ++i2) t2.insert(mk(i2), i2);
  t2.touch(first, 50);
  t2.insert(mk(99), 60);  // must evict mk(1), not the touched mk(0)
  EXPECT_NE(t2.lookup(mk(0), 70), pkt::kNoFlow);
  EXPECT_EQ(t2.lookup(mk(1), 70), pkt::kNoFlow);
}

TEST(FlowTable, PrefetchHasNoObservableEffect) {
  // prefetch()/prefetch_record() are pure performance hints: legal on any
  // hash (empty bucket, populated bucket) and invisible to stats/state.
  FlowTable t(64, 8, 64);
  auto k = mk(3);
  t.prefetch(k.hash());
  t.prefetch_record(k.hash());  // empty bucket: must not dereference
  auto i = t.insert(k, k.hash(), 1);
  t.prefetch(k.hash());
  t.prefetch_record(k.hash());
  EXPECT_EQ(t.stats().hits, 0u);
  EXPECT_EQ(t.stats().misses, 0u);
  EXPECT_EQ(t.rec(i).packets, 0u);
  EXPECT_EQ(t.lookup(k, k.hash(), 2), i);
}

TEST(FlowKeyHash, SensitiveToEveryField) {
  // Each component of the six-tuple must perturb the hash — the flow table
  // compares stored hashes before keys, so a field the hash ignores would
  // silently degrade every chain with near-identical keys.
  pkt::FlowKey base = mk(42);
  const std::uint64_t h = base.hash();
  auto differs = [&](pkt::FlowKey k) { return k.hash() != h; };
  pkt::FlowKey k = base;
  k.src = netbase::IpAddr(netbase::Ipv4Addr(9, 9, 9, 9));
  EXPECT_TRUE(differs(k));
  k = base;
  k.dst = netbase::IpAddr(netbase::Ipv4Addr(9, 9, 9, 9));
  EXPECT_TRUE(differs(k));
  k = base;
  k.proto = 6;
  EXPECT_TRUE(differs(k));
  k = base;
  k.sport = static_cast<std::uint16_t>(base.sport + 1);
  EXPECT_TRUE(differs(k));
  k = base;
  k.dport = static_cast<std::uint16_t>(base.dport + 1);
  EXPECT_TRUE(differs(k));
}

TEST(FlowKeyHash, LowBitsDistributeSequentialFlows) {
  // bucket_of() masks the low bits, so sequential flows (the common
  // pattern: one host, incrementing ports) must spread across buckets
  // rather than pile up. Bound the worst chain at ~4x the ideal load.
  constexpr std::size_t kBuckets = 1024;
  constexpr std::size_t kKeys = 16 * kBuckets;
  std::vector<std::uint32_t> load(kBuckets, 0);
  pkt::FlowKey k = mk(1);
  for (std::size_t i = 0; i < kKeys; ++i) {
    k.sport = static_cast<std::uint16_t>(i);
    k.dport = static_cast<std::uint16_t>(i >> 16);
    ++load[k.hash() & (kBuckets - 1)];
  }
  const std::uint32_t worst = *std::max_element(load.begin(), load.end());
  const std::size_t empty =
      static_cast<std::size_t>(std::count(load.begin(), load.end(), 0u));
  EXPECT_LE(worst, 64u);                // ideal 16; allow 4x skew
  EXPECT_LE(empty, kBuckets / 8);       // at most 12.5% empty buckets
}

TEST(FlowTable, StressRandomOpsAgainstReference) {
  FlowTable t(64, 4, 128);
  std::map<std::uint32_t, pkt::FlowIndex> ref;  // key id -> index
  Rng rng(17);
  netbase::SimTime now = 0;
  for (int op = 0; op < 5000; ++op) {
    ++now;
    std::uint32_t id = static_cast<std::uint32_t>(rng.below(200));
    if (rng.chance(0.6)) {
      auto want = ref.find(id);
      auto got = t.lookup(mk(id), now);
      if (want != ref.end()) {
        // May have been recycled under the cap; accept either agreement or
        // a recorded eviction.
        if (got == pkt::kNoFlow) {
          ref.erase(want);
        } else {
          EXPECT_EQ(got, want->second);
        }
      } else if (got == pkt::kNoFlow) {
        ref[id] = t.insert(mk(id), now);
      }
    } else if (!ref.empty() && rng.chance(0.3)) {
      auto it = ref.begin();
      std::advance(it, rng.below(ref.size()));
      // Use the index from a fresh lookup: the stored one may have been
      // recycled and reused by another flow under the record cap.
      auto cur = t.lookup(mk(it->first), now);
      if (cur != pkt::kNoFlow) t.remove(cur);
      ref.erase(it);
    }
    ASSERT_LE(t.active(), 128u);
  }
}

}  // namespace
}  // namespace rp::aiu

// Chaos soak (ctest label: chaos, run under ASan/UBSan in scripts/ci.sh):
// drives >= 100k packets through a router with ~1% faults injected across
// every gate type and all three fault kinds, and checks the containment
// invariants — zero crashes, every packet accounted for
// (received == forwarded + drops), and the supervisor's counters balance.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/router.hpp"
#include "mgmt/pmgr.hpp"
#include "mgmt/register_all.hpp"
#include "mgmt/rplib.hpp"
#include "pkt/builder.hpp"
#include "resilience/resilience.hpp"

namespace rp::resilience {
namespace {

using netbase::Status;
using plugin::PluginType;

// A well-behaved plugin: every fault in this suite is injected, so any
// crash or unbalanced counter is the supervisor's bug, not the plugin's.
class BenignInstance : public plugin::PluginInstance {
 public:
  plugin::Verdict handle_packet(pkt::Packet&, void**) override {
    return plugin::Verdict::cont;
  }
};

class BenignPlugin : public plugin::Plugin {
 public:
  using Plugin::Plugin;

 protected:
  std::unique_ptr<plugin::PluginInstance> make_instance(
      const plugin::Config&) override {
    return std::make_unique<BenignInstance>();
  }
};

pkt::PacketPtr udp(std::uint32_t i) {
  pkt::UdpSpec s;
  // ~256 flows cycling, so the soak exercises flow creation, the FIX fast
  // path, and rebinding after breaker opens.
  s.src = netbase::IpAddr(
      netbase::Ipv4Addr(10, 0, static_cast<std::uint8_t>(i >> 8),
                        static_cast<std::uint8_t>(i)));
  s.dst = netbase::IpAddr(netbase::Ipv4Addr(20, 0, 0, 1));
  s.sport = static_cast<std::uint16_t>(1024 + (i % 251));
  s.dport = 80;
  s.payload_len = 64;
  return pkt::build_udp(s);
}

class ChaosSoak : public ::testing::Test {
 protected:
  core::RouterKernel kernel_;
  mgmt::RouterPluginLib lib_;
  mgmt::PluginManager pmgr_;

  ChaosSoak() : lib_(kernel_), pmgr_(lib_) {
    mgmt::register_builtin_modules();
    kernel_.add_interface("if0");
    kernel_.add_interface("if1");
    EXPECT_TRUE(pmgr_.exec("route add 20.0.0.0/8 if1").ok());
    // One benign instance on every input gate plus the routing gate, and a
    // real scheduler plugin on the output port.
    for (PluginType gate :
         {PluginType::ipopt, PluginType::ipsec, PluginType::firewall,
          PluginType::congestion, PluginType::stats, PluginType::routing}) {
      const std::string name = "soak_" + std::string(plugin::to_string(gate));
      kernel_.pcu().register_plugin(
          std::make_unique<BenignPlugin>(name, gate));
      plugin::InstanceId id = plugin::kNoInstance;
      EXPECT_EQ(kernel_.pcu().find(name)->create_instance({}, id), Status::ok);
      EXPECT_EQ(kernel_.aiu().create_filter(
                    gate, *aiu::Filter::parse("10.0.0.0/8 * udp * * *"),
                    kernel_.pcu().find(name)->instance(id)),
                Status::ok);
    }
    EXPECT_TRUE(pmgr_.exec("modload fifo").ok());
    EXPECT_TRUE(pmgr_.exec("create fifo limit=1000000").ok());
    EXPECT_TRUE(pmgr_.exec("attach fifo 1 if1").ok());
  }

  // Runs n packets through the burst path and drains the output port.
  void soak(std::uint32_t n) {
    std::vector<pkt::PacketPtr> batch;
    for (std::uint32_t i = 0; i < n; ++i) {
      batch.push_back(udp(i));
      if (batch.size() == 32) {
        kernel_.core().process_burst({batch.data(), batch.size()});
        batch.clear();
        // Drain periodically so queues don't hold 100k packets.
        while (auto p = kernel_.core().next_for_tx(1, kernel_.clock().now())) {
        }
      }
    }
    if (!batch.empty())
      kernel_.core().process_burst({batch.data(), batch.size()});
    while (auto p = kernel_.core().next_for_tx(1, kernel_.clock().now())) {
    }
  }

  Supervisor& res() { return kernel_.resilience(); }
  const core::CoreCounters& cc() { return kernel_.core().counters(); }

  void check_invariants() {
    // Packet conservation: every received packet was forwarded or dropped
    // (benign plugins never consume; injected sched throws fire before the
    // enqueue so nothing is lost in transit).
    EXPECT_EQ(cc().received, cc().forwarded + cc().total_drops());
    // Fault ledger balances: kind totals and per-gate histogram cells both
    // sum to the grand total, and everything here was injected.
    std::uint64_t by_kind = 0, by_cell = 0;
    for (std::size_t k = 0; k < kFaultKinds; ++k)
      by_kind += res().fault_kind_total(static_cast<FaultKind>(k));
    for (std::uint16_t t = 1; t < aiu::kNumGates; ++t)
      for (std::size_t k = 0; k < kFaultKinds; ++k)
        by_cell += res().gate_faults(static_cast<PluginType>(t),
                                     static_cast<FaultKind>(k));
    EXPECT_EQ(by_kind, res().faults_total());
    EXPECT_EQ(by_cell, res().faults_total());
    EXPECT_EQ(res().faults_injected(), res().faults_total());
    EXPECT_LE(res().events().size(), 128u);  // ring stays bounded
  }
};

TEST_F(ChaosSoak, ProbabilisticFaultsAcrossAllGates) {
  // ~1% fault rate at every gate, all kinds represented.
  res().reseed_injection(0xc4a05);
  res().set_injection(PluginType::ipopt, FaultKind::exception,
                      {.probability = 0.01});
  res().set_injection(PluginType::ipsec, FaultKind::exception,
                      {.probability = 0.005});
  res().set_injection(PluginType::ipsec, FaultKind::bad_verdict,
                      {.probability = 0.005});
  res().set_injection(PluginType::firewall, FaultKind::bad_verdict,
                      {.probability = 0.01});
  res().set_injection(PluginType::congestion, FaultKind::budget_overrun,
                      {.probability = 0.01});
  res().set_injection(PluginType::stats, FaultKind::exception,
                      {.probability = 0.01});
  res().set_injection(PluginType::routing, FaultKind::bad_verdict,
                      {.probability = 0.01});
  res().set_injection(PluginType::sched, FaultKind::exception,
                      {.probability = 0.01});

  constexpr std::uint32_t kPackets = 100'000;
  soak(kPackets);

  EXPECT_EQ(cc().received, kPackets);
  check_invariants();
  // With 8 rules at ~1% each the soak must have seen thousands of faults.
  EXPECT_GT(res().faults_total(), 1000u);
  EXPECT_GT(res().fault_kind_total(FaultKind::exception), 0u);
  EXPECT_GT(res().fault_kind_total(FaultKind::bad_verdict), 0u);
  EXPECT_GT(res().fault_kind_total(FaultKind::budget_overrun), 0u);
  // ipsec faults fail closed; everything else failed open, so drops must be
  // well below the fault count.
  EXPECT_GE(cc().dropped(core::DropReason::plugin_fault),
            res().fallback_drops() > 0 ? 1u : 0u);
  // The status surface survives a long soak.
  EXPECT_TRUE(pmgr_.exec("resilience status").ok());
}

TEST_F(ChaosSoak, BreakersCycleUnderSustainedFaults) {
  // Deterministic every-8 faults at one gate with a tight error budget:
  // the breaker must open, recover through half-open, and re-open many
  // times over the soak without wedging the router. The window is measured
  // in router-wide gate dispatches (~7 per packet here), so 1024 ticks
  // spans ~18 firewall faults' worth of traffic.
  res().breaker_config() = {.window = 1024, .max_faults = 4, .cooldown = 16,
                            .probes = 2};
  res().set_injection(PluginType::firewall, FaultKind::exception,
                      {.every = 8});
  constexpr std::uint32_t kPackets = 100'000;
  soak(kPackets);

  EXPECT_EQ(cc().received, kPackets);
  check_invariants();
  EXPECT_GT(res().breaker_opens(), 10u);
  EXPECT_GT(res().bypassed_total(), 0u);
  EXPECT_GT(res().flows_rebound(), 0u);
  // The gate kept working: the vast majority of traffic still forwarded.
  EXPECT_GT(cc().forwarded, kPackets * 9 / 10);
}

}  // namespace
}  // namespace rp::resilience

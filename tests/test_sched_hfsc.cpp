// Tests for the H-FSC plugin: runtime service-curve math, class hierarchy
// management, link-sharing proportional to fsc curves, real-time guarantees
// with delay/bandwidth decoupling, and the upper-limit (non-work-conserving)
// behaviour with kernel wakeups.
#include <gtest/gtest.h>

#include <map>

#include "core/router.hpp"
#include "mgmt/register_all.hpp"
#include "mgmt/rplib.hpp"
#include "pkt/builder.hpp"
#include "sched/hfsc.hpp"

namespace rp::sched {
namespace {

using netbase::Status;

TEST(RuntimeSc, TwoPieceMapping) {
  // 8 Mb/s (1e6 B/s) for 1 ms, then 0.8 Mb/s (1e5 B/s).
  ServiceCurve sc{1e6, 1'000'000.0, 1e5};
  RuntimeSc r;
  r.init(sc, 0, 0);
  EXPECT_DOUBLE_EQ(r.x2y(0), 0);
  EXPECT_DOUBLE_EQ(r.x2y(500'000), 500.0);       // within the m1 segment
  EXPECT_DOUBLE_EQ(r.x2y(1'000'000), 1000.0);    // knee
  EXPECT_DOUBLE_EQ(r.x2y(2'000'000), 1100.0);    // m2 afterwards
  EXPECT_DOUBLE_EQ(r.y2x(500), 500'000.0);
  EXPECT_DOUBLE_EQ(r.y2x(1100), 2'000'000.0);
}

TEST(RuntimeSc, AnchorOffsets) {
  ServiceCurve sc{1e6, 0, 1e6};  // linear 1 MB/s
  RuntimeSc r;
  r.init(sc, 5'000'000, 200);
  EXPECT_DOUBLE_EQ(r.x2y(4'000'000), 200);  // before the anchor: y0
  EXPECT_DOUBLE_EQ(r.x2y(6'000'000), 1200);
  EXPECT_DOUBLE_EQ(r.y2x(1200), 6'000'000);
  EXPECT_DOUBLE_EQ(r.y2x(100), 5'000'000);  // at or below y0: x0
}

TEST(RuntimeSc, MinWithConcaveReanchors) {
  // Concave curve (burst then sustained), reactivated later with less
  // cumulative service than the old curve would allow: curve must clamp.
  ServiceCurve sc{2e6, 1'000'000.0, 1e6};
  RuntimeSc r;
  r.init(sc, 0, 0);
  double before = r.x2y(3'000'000);
  r.min_with(sc, 1'000'000, 500);  // re-anchor at (1 ms, 500 B served)
  // The new curve at any time must not exceed the old one.
  EXPECT_LE(r.x2y(3'000'000), before);
  // And it must pass through (or below) the new anchor.
  EXPECT_LE(r.x2y(1'000'000), 500 + 1e-6);
}

TEST(Hfsc, ClassManagement) {
  HfscInstance h({8'000'000, 64});
  ServiceCurve half{500'000, 0, 500'000};
  EXPECT_EQ(h.add_class("a", "root", {}, half, {}), Status::ok);
  EXPECT_EQ(h.add_class("a", "root", {}, half, {}), Status::already_exists);
  EXPECT_EQ(h.add_class("b", "ghost", {}, half, {}), Status::not_found);
  EXPECT_EQ(h.add_class("c", "root", {}, {}, {}), Status::invalid_argument);
  EXPECT_EQ(h.bind_class(*aiu::Filter::parse("* * udp * * *"), "a"),
            Status::ok);
  EXPECT_EQ(h.bind_class(*aiu::Filter::parse("* * udp * * *"), "nope"),
            Status::not_found);
}

// Runs a saturated two-class link-sharing scenario through the full router
// kernel and returns bytes delivered per flow (keyed by sport).
std::map<std::uint16_t, std::size_t> run_two_class(double rate_a,
                                                   double rate_b,
                                                   std::uint64_t link_bps,
                                                   netbase::SimTime dur) {
  core::RouterKernel k;
  mgmt::register_builtin_modules();
  k.add_interface("in0");
  auto& out = k.interfaces().add("out0", link_bps);
  k.routes().add(*netbase::IpPrefix::parse("20.0.0.0/8"), {1, {}});

  mgmt::RouterPluginLib lib(k);
  EXPECT_EQ(lib.modload("hfsc"), Status::ok);
  plugin::InstanceId id = plugin::kNoInstance;
  plugin::Config cfg;
  cfg.set("bandwidth_bps", std::to_string(link_bps));
  EXPECT_EQ(lib.create_instance("hfsc", cfg, id), Status::ok);
  EXPECT_EQ(lib.attach_scheduler("hfsc", id, 1), Status::ok);

  auto addclass = [&](const char* name, double bps) {
    plugin::Config c;
    c.set("name", name);
    c.set("ls_m1", std::to_string(static_cast<std::int64_t>(bps)));
    c.set("ls_m2", std::to_string(static_cast<std::int64_t>(bps)));
    EXPECT_EQ(lib.message("hfsc", id, "addclass", c).status, Status::ok);
  };
  addclass("A", rate_a);
  addclass("B", rate_b);
  auto bindclass = [&](const char* cls, std::uint16_t sport) {
    plugin::Config c;
    c.set("class", cls);
    c.set("filter",
          "<*, *, udp, " + std::to_string(sport) + ", *, *>");
    EXPECT_EQ(lib.message("hfsc", id, "bindclass", c).status, Status::ok);
  };
  bindclass("A", 1);
  bindclass("B", 2);

  std::map<std::uint16_t, std::size_t> delivered;
  out.set_tx_sink([&](pkt::PacketPtr p, netbase::SimTime) {
    delivered[p->key.sport] += p->size();
  });

  // Saturate: both flows send at the full link rate.
  for (std::uint16_t f = 1; f <= 2; ++f) {
    pkt::UdpSpec s;
    s.src = netbase::IpAddr(netbase::Ipv4Addr(10, 0, 0, f));
    s.dst = netbase::IpAddr(netbase::Ipv4Addr(20, 0, 0, 1));
    s.sport = f;
    s.dport = 80;
    s.payload_len = 972;  // 1000-byte packets
    const netbase::SimTime interval =
        static_cast<netbase::SimTime>(1000.0 * 8 * 1e9 / link_bps);
    for (netbase::SimTime t = 0; t < dur; t += interval)
      k.inject(t, 0, pkt::build_udp(s));
  }
  k.run_until(dur);
  return delivered;
}

TEST(Hfsc, LinkShareSplitsProportionally) {
  // 75% / 25% split of an 8 Mb/s link.
  auto bytes =
      run_two_class(6'000'000, 2'000'000, 8'000'000, 500 * netbase::kNsPerMs);
  ASSERT_GT(bytes[1], 0u);
  ASSERT_GT(bytes[2], 0u);
  double ratio = static_cast<double>(bytes[1]) / bytes[2];
  EXPECT_NEAR(ratio, 3.0, 0.5);
}

TEST(Hfsc, ExcessGoesToActiveClass) {
  // Only class A sends: it must get (nearly) the whole link despite a 25%
  // share — link-sharing is work conserving without upper limits.
  core::RouterKernel k;
  mgmt::register_builtin_modules();
  k.add_interface("in0");
  auto& out = k.interfaces().add("out0", 8'000'000);
  k.routes().add(*netbase::IpPrefix::parse("20.0.0.0/8"), {1, {}});
  mgmt::RouterPluginLib lib(k);
  lib.modload("hfsc");
  plugin::InstanceId id = plugin::kNoInstance;
  plugin::Config cfg;
  cfg.set("bandwidth_bps", "8000000");
  lib.create_instance("hfsc", cfg, id);
  lib.attach_scheduler("hfsc", id, 1);
  plugin::Config c;
  c.set("name", "A");
  c.set("ls_m1", "2000000");
  c.set("ls_m2", "2000000");
  ASSERT_EQ(lib.message("hfsc", id, "addclass", c).status, Status::ok);
  plugin::Config b;
  b.set("class", "A");
  b.set("filter", "<*, *, udp, *, *, *>");
  ASSERT_EQ(lib.message("hfsc", id, "bindclass", b).status, Status::ok);

  std::size_t delivered = 0;
  out.set_tx_sink(
      [&](pkt::PacketPtr p, netbase::SimTime) { delivered += p->size(); });
  pkt::UdpSpec s;
  s.src = netbase::IpAddr(netbase::Ipv4Addr(10, 0, 0, 1));
  s.dst = netbase::IpAddr(netbase::Ipv4Addr(20, 0, 0, 1));
  s.sport = 1;
  s.dport = 80;
  s.payload_len = 972;
  for (netbase::SimTime t = 0; t < 500 * netbase::kNsPerMs; t += 1'000'000)
    k.inject(t, 0, pkt::build_udp(s));  // 8 Mb/s offered
  k.run_until(500 * netbase::kNsPerMs);
  // 0.5 s at 8 Mb/s = 500 kB; expect most of it (not just the 25% share).
  EXPECT_GT(delivered, 400'000u);
}

TEST(Hfsc, UpperLimitCapsThroughputViaWakeups) {
  core::RouterKernel k;
  mgmt::register_builtin_modules();
  k.add_interface("in0");
  auto& out = k.interfaces().add("out0", 8'000'000);
  k.routes().add(*netbase::IpPrefix::parse("20.0.0.0/8"), {1, {}});
  mgmt::RouterPluginLib lib(k);
  lib.modload("hfsc");
  plugin::InstanceId id = plugin::kNoInstance;
  plugin::Config cfg;
  cfg.set("bandwidth_bps", "8000000");
  lib.create_instance("hfsc", cfg, id);
  lib.attach_scheduler("hfsc", id, 1);
  plugin::Config c;
  c.set("name", "A");
  c.set("ls_m1", "8000000");
  c.set("ls_m2", "8000000");
  c.set("ul_m1", "1000000");  // capped to 1 Mb/s
  c.set("ul_m2", "1000000");
  ASSERT_EQ(lib.message("hfsc", id, "addclass", c).status, Status::ok);
  plugin::Config b;
  b.set("class", "A");
  b.set("filter", "<*, *, udp, *, *, *>");
  ASSERT_EQ(lib.message("hfsc", id, "bindclass", b).status, Status::ok);

  std::size_t delivered = 0;
  out.set_tx_sink(
      [&](pkt::PacketPtr p, netbase::SimTime) { delivered += p->size(); });
  pkt::UdpSpec s;
  s.src = netbase::IpAddr(netbase::Ipv4Addr(10, 0, 0, 1));
  s.dst = netbase::IpAddr(netbase::Ipv4Addr(20, 0, 0, 1));
  s.sport = 1;
  s.dport = 80;
  s.payload_len = 972;
  for (netbase::SimTime t = 0; t < netbase::kNsPerSec; t += 1'000'000)
    k.inject(t, 0, pkt::build_udp(s));  // 8 Mb/s offered for 1 s
  k.run_until(netbase::kNsPerSec);
  // 1 Mb/s cap = 125 kB/s; allow slack for the trailing burst window.
  EXPECT_LT(delivered, 180'000u);
  EXPECT_GT(delivered, 80'000u);
}

TEST(Hfsc, RealTimeCurveDecouplesDelayFromBandwidth) {
  // A low-bandwidth real-time class with a steep m1 segment gets its head
  // packet out quickly even while a heavy best-effort class is backlogged.
  HfscInstance h({8'000'000, 1024});
  // RT class: burst 8 Mb/s for 2 ms, then only 0.4 Mb/s sustained.
  ASSERT_EQ(h.add_class("rt", "root", {8e6 / 8.0 * 1.0, 2e6, 4e5 / 8.0},
                        {4e5 / 8.0, 0, 4e5 / 8.0}, {}),
            Status::ok);
  // BE class: 7.6 Mb/s link share, no rt guarantee.
  ASSERT_EQ(h.add_class("be", "root", {}, {7.6e6 / 8.0, 0, 7.6e6 / 8.0}, {}),
            Status::ok);
  ASSERT_EQ(h.bind_class(*aiu::Filter::parse("* * udp 1 * *"), "rt"),
            Status::ok);
  ASSERT_EQ(h.bind_class(*aiu::Filter::parse("* * udp 2 * *"), "be"),
            Status::ok);

  auto mk = [](std::uint16_t sport) {
    pkt::UdpSpec s;
    s.src = netbase::IpAddr(netbase::Ipv4Addr(10, 0, 0, 1));
    s.dst = netbase::IpAddr(netbase::Ipv4Addr(20, 0, 0, 1));
    s.sport = sport;
    s.dport = 80;
    s.payload_len = 972;
    return pkt::build_udp(s);
  };
  // Backlog 50 BE packets, then one RT packet arrives.
  for (int i = 0; i < 50; ++i) ASSERT_TRUE(h.enqueue(mk(2), nullptr, 0));
  ASSERT_TRUE(h.enqueue(mk(1), nullptr, 0));
  // Dequeue at "now": the RT packet must be served within the first few
  // slots thanks to its m1 burst allowance, despite its tiny m2 share.
  int rt_position = -1;
  for (int i = 0; i < 10; ++i) {
    auto p = h.dequeue(1000);
    ASSERT_NE(p, nullptr);
    if (p->key.sport == 1) {
      rt_position = i;
      break;
    }
  }
  ASSERT_GE(rt_position, 0);
  EXPECT_LE(rt_position, 2);
}

TEST(Hfsc, DefaultLeafAbsorbsUnboundTraffic) {
  HfscInstance h({8'000'000, 64});
  pkt::UdpSpec s;
  s.src = netbase::IpAddr(netbase::Ipv4Addr(1, 1, 1, 1));
  s.dst = netbase::IpAddr(netbase::Ipv4Addr(2, 2, 2, 2));
  s.sport = 9;
  s.dport = 9;
  s.payload_len = 100;
  ASSERT_TRUE(h.enqueue(pkt::build_udp(s), nullptr, 0));
  auto p = h.dequeue(0);
  ASSERT_NE(p, nullptr);
  bool saw_default = false;
  for (const auto& cs : h.class_stats())
    if (cs.name == "default" && cs.pkts_sent == 1) saw_default = true;
  EXPECT_TRUE(saw_default);
}

TEST(Hfsc, LeafLimitDrops) {
  HfscInstance h({8'000'000, 2});
  pkt::UdpSpec s;
  s.src = netbase::IpAddr(netbase::Ipv4Addr(1, 1, 1, 1));
  s.dst = netbase::IpAddr(netbase::Ipv4Addr(2, 2, 2, 2));
  s.payload_len = 100;
  EXPECT_TRUE(h.enqueue(pkt::build_udp(s), nullptr, 0));
  EXPECT_TRUE(h.enqueue(pkt::build_udp(s), nullptr, 0));
  EXPECT_FALSE(h.enqueue(pkt::build_udp(s), nullptr, 0));
}

}  // namespace
}  // namespace rp::sched

// Differential churn proof for the live control plane (docs/control_plane.md):
// while traffic keeps flowing, batched route updates, batched filter churn
// and versioned plugin upgrades must never misroute, misclassify or drop a
// legitimate packet — on a single stack (ChurnDiff) and across sharded
// datapaths with real worker threads (ChurnShard, TSan lane). The
// property sweeps (RouteChurnProperty) check the incremental routing table
// against a from-scratch rebuild oracle across many seeds; every sweep is
// seeded, so a failing seed replays exactly.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "bmp/cpe.hpp"
#include "core/router.hpp"
#include "ctrl/control_plane.hpp"
#include "mgmt/pmgr.hpp"
#include "mgmt/register_all.hpp"
#include "mgmt/rplib.hpp"
#include "parallel/sharded_datapath.hpp"
#include "pkt/builder.hpp"
#include "stats/stats_plugin.hpp"
#include "tgen/churn.hpp"
#include "tgen/workload.hpp"

namespace rp {
namespace {

using netbase::IpAddr;
using netbase::IpPrefix;
using netbase::Rng;
using netbase::Status;
using netbase::U128;
using plugin::PluginType;

// ---------------------------------------------------------------------------
// Brute-force longest-prefix-match oracle over the test's own live set.

struct RouteOracle {
  // (masked key, plen) -> out iface.
  std::map<std::pair<U128, std::uint8_t>, pkt::IfIndex> live;

  void add(const IpPrefix& p, pkt::IfIndex iface) {
    live[{p.addr.key() & U128::prefix_mask(p.len), p.len}] = iface;
  }
  void apply(const route::RouteOp& op) {
    const auto k = std::make_pair(
        op.prefix.addr.key() & U128::prefix_mask(op.prefix.len),
        op.prefix.len);
    if (op.kind == route::RouteOp::Kind::add)
      live[k] = op.hop.out_iface;
    else
      live.erase(k);
  }
  std::optional<pkt::IfIndex> lookup(const IpAddr& dst) const {
    const U128 key = dst.key();
    std::optional<pkt::IfIndex> best;
    int best_len = -1;
    for (const auto& [k, iface] : live) {
      if (static_cast<int>(k.second) > best_len &&
          (key & U128::prefix_mask(k.second)) == k.first) {
        best = iface;
        best_len = k.second;
      }
    }
    return best;
  }
};

// A v4 address inside `p` with random host bits.
std::uint32_t addr_in(const IpPrefix& p, Rng& rng) {
  const std::uint32_t base = p.addr.v4().v;
  const std::uint32_t host_bits = 32u - p.len;
  const std::uint32_t mask =
      host_bits >= 32 ? 0xffffffffu : ((1u << host_bits) - 1);
  return base | (static_cast<std::uint32_t>(rng.next()) & mask);
}

// ---------------------------------------------------------------------------
// Property sweep: incremental table == from-scratch rebuild, all engines.

class RouteChurnProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RouteChurnProperty, IncrementalTableMatchesFreshRebuild) {
  const std::uint64_t seed = GetParam();
  for (const char* engine : {"cpe", "bsl", "patricia"}) {
    SCOPED_TRACE(std::string("engine=") + engine +
                 " seed=" + std::to_string(seed));
    tgen::RouteChurnSpec spec;
    spec.base_prefixes = 300;
    spec.ops = 600;
    spec.batch_size = 64;
    spec.min_len = 12;
    spec.max_len = 28;
    spec.seed = seed;
    const tgen::RouteChurn churn = tgen::route_churn(spec);

    route::RoutingTable inc(engine);
    RouteOracle oracle;
    for (std::size_t i = 0; i < churn.base.size(); ++i) {
      ASSERT_EQ(inc.add(churn.base[i], churn.base_hops[i]), Status::ok);
      oracle.add(churn.base[i], churn.base_hops[i].out_iface);
    }

    Rng rng(seed ^ 0x9d5f);
    for (std::size_t b = 0; b < churn.batches.size(); ++b) {
      const auto& batch = churn.batches[b];
      const route::RouteBatchResult res = inc.apply_batch(batch);
      EXPECT_EQ(res.failed, 0u) << "batch " << b;
      for (const auto& op : batch) oracle.apply(op);
      ASSERT_EQ(inc.size(), oracle.live.size()) << "batch " << b;

      // Rebuild an independent table from the oracle's live set and compare
      // both against each other and against brute force.
      route::RoutingTable fresh(engine);
      for (const auto& [k, iface] : oracle.live) {
        IpAddr a;
        a.v = k.first >> 96;  // v4 keys are left-aligned
        ASSERT_EQ(fresh.add(IpPrefix(a, k.second), {iface, {}}), Status::ok);
      }

      std::vector<std::uint32_t> probes;
      for (int i = 0; i < 64; ++i)
        probes.push_back(static_cast<std::uint32_t>(rng.next()));
      for (const auto& [k, iface] : oracle.live) {
        if (!rng.chance(0.25)) continue;  // sample live prefixes
        IpAddr a;
        a.v = k.first >> 96;
        probes.push_back(addr_in(IpPrefix(a, k.second), rng));
      }
      for (std::uint32_t raw : probes) {
        const IpAddr dst{netbase::Ipv4Addr(raw)};
        const route::NextHop* hi = inc.lookup(dst);
        const route::NextHop* hf = fresh.lookup(dst);
        const auto expect = oracle.lookup(dst);
        ASSERT_EQ(hi != nullptr, expect.has_value())
            << "batch " << b << " dst " << dst.to_string();
        ASSERT_EQ(hf != nullptr, expect.has_value())
            << "batch " << b << " dst " << dst.to_string();
        if (expect) {
          EXPECT_EQ(hi->out_iface, *expect) << dst.to_string();
          EXPECT_EQ(hf->out_iface, *expect) << dst.to_string();
        }
      }
    }
  }
}

// The CPE trie's remove must be genuinely incremental: exact results under
// insert/remove/readd cycling with covering/covered prefixes, and zero
// from-scratch rebuilds.
TEST_P(RouteChurnProperty, CpeRemoveIsIncrementalAndExact) {
  const std::uint64_t seed = GetParam();
  bmp::CpeTrie trie(32);
  std::map<std::pair<U128, std::uint8_t>, bmp::LpmValue> raw;

  Rng rng(seed * 0x51ed'2705 + 3);
  // A small universe with many covering relations (short plens are common)
  // so removes constantly expose shallower ancestors. Includes the default
  // route, which exercises the level-0 special case.
  std::vector<std::pair<U128, std::uint8_t>> universe{{U128{}, 0}};
  while (universe.size() < 160) {
    const auto len = static_cast<std::uint8_t>(1 + rng.below(32));
    const IpAddr a{netbase::Ipv4Addr(static_cast<std::uint32_t>(rng.next()))};
    universe.emplace_back(a.key() & U128::prefix_mask(len), len);
  }

  auto brute = [&raw](U128 key) -> std::optional<bmp::LpmMatch> {
    std::optional<bmp::LpmMatch> best;
    for (const auto& [k, v] : raw) {
      if ((key & U128::prefix_mask(k.second)) != k.first) continue;
      if (!best || k.second >= best->plen) best = bmp::LpmMatch{v, k.second};
    }
    return best;
  };

  bmp::LpmValue next_value = 1;
  for (int op = 0; op < 1200; ++op) {
    const auto& [key, plen] = universe[rng.below(universe.size())];
    if (auto it = raw.find({key, plen}); it != raw.end()) {
      ASSERT_EQ(trie.remove(key, plen), Status::ok);
      raw.erase(it);
    } else {
      const bmp::LpmValue v = next_value++;
      ASSERT_EQ(trie.insert(key, plen, v), Status::ok);
      raw[{key, plen}] = v;
    }
    ASSERT_EQ(trie.size(), raw.size());
    for (int probe = 0; probe < 16; ++probe) {
      const auto& u = universe[rng.below(universe.size())];
      U128 key_p = u.first | (IpAddr{netbase::Ipv4Addr(
                                  static_cast<std::uint32_t>(rng.next()))}
                                  .key() &
                              ~U128::prefix_mask(u.second));
      bmp::LpmMatch got{};
      const bool hit = trie.lookup(key_p, got);
      const auto want = brute(key_p);
      ASSERT_EQ(hit, want.has_value()) << "op " << op << " seed " << seed;
      if (want) {
        ASSERT_EQ(got.plen, want->plen) << "op " << op << " seed " << seed;
        ASSERT_EQ(got.value, want->value) << "op " << op << " seed " << seed;
      }
    }
  }
  // The whole sweep must have stayed on the incremental path.
  EXPECT_EQ(trie.rebuild_count(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RouteChurnProperty,
                         ::testing::Range<std::uint64_t>(1, 9));

// ---------------------------------------------------------------------------
// Single-stack differential churn under live traffic (ctest label: churn).

class CountingInstance final : public plugin::PluginInstance {
 public:
  explicit CountingInstance(plugin::Verdict v) : verdict_(v) {}
  plugin::Verdict handle_packet(pkt::Packet&, void**) override {
    ++calls;
    return verdict_;
  }
  std::uint64_t calls{0};

 private:
  plugin::Verdict verdict_;
};

class CountingPlugin final : public plugin::Plugin {
 public:
  CountingPlugin(std::string name, PluginType type, plugin::Verdict v)
      : Plugin(std::move(name), type), verdict_(v) {}

 protected:
  std::unique_ptr<plugin::PluginInstance> make_instance(
      const plugin::Config&) override {
    return std::make_unique<CountingInstance>(verdict_);
  }

 private:
  plugin::Verdict verdict_;
};

pkt::PacketPtr packet_to(std::uint32_t dst_raw, std::uint16_t sport) {
  pkt::UdpSpec s;
  s.src = IpAddr(netbase::Ipv4Addr(10, 0, 0, 1));
  s.dst = IpAddr(netbase::Ipv4Addr(dst_raw));
  s.sport = sport;
  s.dport = 7777;
  s.payload_len = 64;
  return pkt::build_udp(s);
}

pkt::PacketPtr packet_for_key(const pkt::FlowKey& k) {
  tgen::FlowEndpoints ep;
  ep.src = k.src;
  ep.dst = k.dst;
  ep.proto = k.proto;
  ep.sport = k.sport;
  ep.dport = k.dport;
  ep.in_iface = k.in_iface;
  return tgen::packet_for(ep, 64);
}

// Route batches applied between bursts: every probe's egress interface must
// match the brute-force oracle for the then-current live set, and traffic
// under never-churned prefixes must never be dropped.
TEST(ChurnDiff, RouteBatchesNeverMisrouteLiveTraffic) {
  core::RouterKernel::Options opt;
  opt.route_engine = "cpe";
  core::RouterKernel kernel(opt);
  for (const char* n : {"if0", "if1", "if2", "if3"}) kernel.add_interface(n);
  ctrl::ControlPlane cp(kernel);

  // Pinned prefixes: 32 /16s under 200.0.0.0/8, never part of any batch, so
  // probes under them always have a route (a churn prefix may shadow one
  // with a longer match — the oracle predicts the winner either way).
  RouteOracle oracle;
  std::vector<IpPrefix> pinned;
  for (std::uint32_t i = 0; i < 32; ++i) {
    const IpPrefix p(IpAddr(netbase::Ipv4Addr(200, std::uint8_t(i), 0, 0)),
                     16);
    const auto iface = static_cast<pkt::IfIndex>(1 + i % 3);
    ASSERT_EQ(kernel.routes().add(p, {iface, {}}), Status::ok);
    oracle.add(p, iface);
    pinned.push_back(p);
  }

  tgen::RouteChurnSpec spec;
  spec.base_prefixes = 400;
  spec.ops = 800;
  spec.batch_size = 64;
  spec.min_len = 17;  // longer than the pinned /16s: no alias can withdraw one
  spec.max_len = 28;
  spec.ifaces = 3;  // hops if0..if2 — all exist
  spec.seed = 77;
  const tgen::RouteChurn churn = tgen::route_churn(spec);
  {
    std::vector<route::RouteOp> base;
    for (std::size_t i = 0; i < churn.base.size(); ++i)
      base.push_back({route::RouteOp::Kind::add, churn.base[i],
                      {static_cast<pkt::IfIndex>(1 + churn.base_hops[i]
                                                         .out_iface %
                                                     3),
                       {}}});
    for (const auto& op : base) oracle.apply(op);
    ASSERT_EQ(cp.apply_route_batch(base).failed, 0u);
  }

  Rng rng(4242);
  std::uint64_t pinned_probes = 0;
  std::uint64_t expected_no_route = 0;
  auto probe_round = [&](const std::vector<route::RouteOp>* batch) {
    if (batch) {
      const auto res = cp.apply_route_batch(*batch);
      EXPECT_EQ(res.failed, 0u);
      for (const auto& op : *batch) oracle.apply(op);
    }
    // Probe pinned destinations plus random addresses; remember each
    // packet's expected egress by destination address.
    std::map<std::uint32_t, std::optional<pkt::IfIndex>> expect;
    std::vector<pkt::PacketPtr> burst;
    for (int i = 0; i < 12; ++i) {
      const std::uint32_t dst = addr_in(pinned[rng.below(pinned.size())], rng);
      if (!expect.contains(dst)) {
        expect[dst] = oracle.lookup(IpAddr{netbase::Ipv4Addr(dst)});
        ASSERT_TRUE(expect[dst].has_value());  // pinned => always routable
        ++pinned_probes;
        burst.push_back(packet_to(dst, 1000));
      }
    }
    for (int i = 0; i < 12; ++i) {
      const auto dst = static_cast<std::uint32_t>(rng.next());
      if (expect.contains(dst)) continue;
      expect[dst] = oracle.lookup(IpAddr{netbase::Ipv4Addr(dst)});
      if (!expect[dst]) ++expected_no_route;
      burst.push_back(packet_to(dst, 1000));
    }
    const std::size_t n = burst.size();
    kernel.core().process_burst(burst);
    std::size_t egressed = 0;
    for (pkt::IfIndex ifx = 0; ifx < 4; ++ifx) {
      while (auto p = kernel.core().next_for_tx(ifx, kernel.clock().now())) {
        ASSERT_TRUE(p->key_valid || pkt::extract_flow_key(*p));
        const std::uint32_t dst = p->key.dst.v4().v;
        auto it = expect.find(dst);
        ASSERT_NE(it, expect.end());
        ASSERT_TRUE(it->second.has_value()) << "forwarded with no route";
        EXPECT_EQ(ifx, *it->second)
            << "misroute for " << p->key.dst.to_string();
        ++egressed;
      }
    }
    const std::size_t expected_fwd =
        n - static_cast<std::size_t>(
                std::count_if(expect.begin(), expect.end(),
                              [](const auto& e) { return !e.second; }));
    EXPECT_EQ(egressed, expected_fwd);
  };

  probe_round(nullptr);  // pre-churn baseline
  for (const auto& batch : churn.batches) probe_round(&batch);

  const auto& cc = kernel.core().counters();
  // Every probe either egressed on the oracle's interface or was an
  // expected no-route drop; nothing else may drop.
  EXPECT_EQ(cc.dropped(core::DropReason::no_route), expected_no_route);
  EXPECT_EQ(cc.total_drops(), expected_no_route);
  EXPECT_GT(pinned_probes, 0u);
  // Steady-state churn recycles hop slots instead of growing the table.
  EXPECT_LT(kernel.routes().hop_slots(),
            oracle.live.size() + spec.ops + 8);
}

// Filter batches applied between bursts: re-probing a fixed key population
// after every batch, the drop/forward split must match the live filter set
// exactly (stale flow-cache bindings would get this wrong), with no full
// cache flush.
TEST(ChurnDiff, FilterBatchesNeverMisclassifyCachedFlows) {
  core::RouterKernel::Options opt;
  opt.core.input_gates = {PluginType::firewall};
  core::RouterKernel kernel(opt);
  // Four interfaces: churn filters and probe keys name ingress ifaces 0..3.
  for (const char* n : {"if0", "if1", "if2", "if3"}) kernel.add_interface(n);
  ASSERT_EQ(kernel.routes().add(IpPrefix{}, {1, {}}), Status::ok);

  kernel.pcu().register_plugin(std::make_unique<CountingPlugin>(
      "fw", PluginType::firewall, plugin::Verdict::drop));
  plugin::InstanceId fw_id = plugin::kNoInstance;
  ASSERT_EQ(kernel.pcu().find("fw")->create_instance({}, fw_id), Status::ok);

  ctrl::ControlPlane cp(kernel);

  tgen::FilterChurnSpec spec;
  spec.base.count = 40;
  spec.base.p_wild_src = 0.0;
  spec.base.p_wild_dst = 0.0;
  spec.base.p_wild_proto = 0.0;  // keys stay udp/tcp => buildable packets
  spec.base.seed = 21;
  spec.ops = 240;
  spec.batch_size = 16;
  spec.seed = 5;
  const tgen::FilterChurn churn = tgen::filter_churn(spec);

  // The full filter universe this run can ever install.
  std::vector<aiu::Filter> universe = churn.base;
  for (const auto& batch : churn.batches)
    for (const auto& op : batch)
      if (!op.remove) universe.push_back(op.filter);

  Rng rng(99);
  std::vector<pkt::FlowKey> keys;
  for (int i = 0; i < 24; ++i)  // covered: match some universe filter
    keys.push_back(
        tgen::matching_key(universe[rng.below(universe.size())], rng));
  std::size_t legit = 0;
  while (legit < 24) {  // legit: match no universe filter, ever
    tgen::FlowEndpoints ep = tgen::random_flow(rng);
    const pkt::FlowKey k = ep.key();
    bool clean = true;
    for (const auto& f : universe)
      if (f.matches(k)) {
        clean = false;
        break;
      }
    if (!clean) continue;
    keys.push_back(k);
    ++legit;
  }

  std::vector<aiu::Filter> live = churn.base;
  {
    std::vector<ctrl::FilterSpecOp> base_ops;
    for (const auto& f : churn.base)
      base_ops.push_back(
          {aiu::Aiu::FilterOp::Kind::add, "fw", fw_id, f});
    ASSERT_EQ(cp.apply_filter_batch(base_ops), Status::ok);
  }

  auto matched_by_live = [&live](const pkt::FlowKey& k) {
    for (const auto& f : live)
      if (f.matches(k)) return true;
    return false;
  };

  std::uint64_t last_drops = 0, last_fwd = 0;
  auto probe_round = [&] {
    std::vector<pkt::PacketPtr> burst;
    std::size_t expect_drop = 0;
    for (const auto& k : keys) {
      burst.push_back(packet_for_key(k));
      if (matched_by_live(k)) ++expect_drop;
    }
    kernel.core().process_burst(burst);
    while (kernel.core().next_for_tx(1, kernel.clock().now())) {
    }
    const auto& cc = kernel.core().counters();
    const std::uint64_t drops = cc.dropped(core::DropReason::policy);
    EXPECT_EQ(drops - last_drops, expect_drop);
    EXPECT_EQ(cc.forwarded - last_fwd, keys.size() - expect_drop);
    last_drops = drops;
    last_fwd = cc.forwarded;
  };

  probe_round();
  for (const auto& batch : churn.batches) {
    std::vector<ctrl::FilterSpecOp> ops;
    for (const auto& op : batch) {
      ops.push_back({op.remove ? aiu::Aiu::FilterOp::Kind::remove
                               : aiu::Aiu::FilterOp::Kind::add,
                     "fw", fw_id, op.filter});
      if (op.remove)
        std::erase_if(live, [&](const aiu::Filter& f) {
          return f == op.filter;
        });
      else
        live.push_back(op.filter);
    }
    std::string detail;
    ASSERT_EQ(cp.apply_filter_batch(ops, &detail), Status::ok) << detail;
    probe_round();
  }

  // Selective invalidation, not a sledgehammer: flows were invalidated,
  // but the cache was never flushed wholesale.
  EXPECT_GT(cp.stats().flows_invalidated, 0u);
  EXPECT_EQ(kernel.aiu().stats().cache_flushes, 0u);
  EXPECT_EQ(kernel.aiu().filter_table(PluginType::firewall)->size(),
            live.size());
}

// Versioned upgrade through the management surface: stats v1 -> v2
// mid-stream hands off per-flow counters and aggregate totals; no packet
// and no flow entry is lost, and the old instance retires cleanly.
TEST(ChurnDiff, UpgradeMigratesStatsStateWithZeroLoss) {
  core::RouterKernel::Options opt;
  opt.core.input_gates = {PluginType::stats};
  core::RouterKernel kernel(opt);
  mgmt::RouterPluginLib lib(kernel);
  mgmt::PluginManager pmgr(lib);
  mgmt::register_builtin_modules();
  kernel.add_interface("if0");
  kernel.add_interface("if1");

  ASSERT_TRUE(pmgr.run_script(R"(
route add 20.0.0.0/8 if1
modload stats
create stats
create stats
bind stats 1 <*, *, udp, *, *, *>
)").ok());

  auto send = [&](int rounds) {
    for (int r = 0; r < rounds; ++r)
      for (std::uint8_t f = 0; f < 8; ++f) {
        pkt::UdpSpec s;
        s.src = IpAddr(netbase::Ipv4Addr(10, 0, 0, f));
        s.dst = IpAddr(netbase::Ipv4Addr(20, 0, 0, 1));
        s.sport = 1000;
        s.dport = 80;
        s.payload_len = 100;
        kernel.core().process(pkt::build_udp(s));
      }
  };
  send(5);  // 40 packets over 8 flows, counted by v1

  auto* v1 = dynamic_cast<stats::StatsInstance*>(
      kernel.pcu().find_instance("stats", 1));
  auto* v2 = dynamic_cast<stats::StatsInstance*>(
      kernel.pcu().find_instance("stats", 2));
  ASSERT_NE(v1, nullptr);
  ASSERT_NE(v2, nullptr);
  EXPECT_EQ(v1->total_packets(), 40u);
  EXPECT_EQ(v1->tracked_flows(), 8u);
  const std::size_t flows_before = kernel.aiu().flow_table().active();

  auto r = pmgr.exec("ctrl upgrade stats 1 2 retire");
  ASSERT_TRUE(r.ok()) << r.text;
  EXPECT_NE(r.text.find("flows_rebound=8"), std::string::npos) << r.text;
  EXPECT_NE(r.text.find("state_migrated=8"), std::string::npos) << r.text;
  EXPECT_NE(r.text.find("state_dropped=0"), std::string::npos) << r.text;
  EXPECT_NE(r.text.find("retired"), std::string::npos) << r.text;

  // v1 is gone; v2 owns the full history; no flow entry was purged.
  EXPECT_EQ(kernel.pcu().find_instance("stats", 1), nullptr);
  EXPECT_EQ(v2->total_packets(), 40u);
  EXPECT_EQ(v2->tracked_flows(), 8u);
  EXPECT_EQ(kernel.aiu().flow_table().active(), flows_before);

  send(5);  // 40 more packets, now counted by v2 on the same flow entries
  EXPECT_EQ(v2->total_packets(), 80u);
  EXPECT_EQ(v2->tracked_flows(), 8u);
  EXPECT_EQ(kernel.core().counters().forwarded, 80u);
  EXPECT_EQ(kernel.core().counters().total_drops(), 0u);

  auto s = pmgr.exec("ctrl status");
  ASSERT_TRUE(s.ok());
  EXPECT_NE(s.text.find("upgrades=1"), std::string::npos) << s.text;
  EXPECT_NE(s.text.find("state_migrated=8"), std::string::npos) << s.text;
}

// An instance that keeps soft state but does NOT implement migrate_flow:
// the handoff must release the old state exactly once, keep the flow
// entries bound to the new instance, and lose no packets.
class SoftCounterInstance final : public plugin::PluginInstance {
 public:
  plugin::Verdict handle_packet(pkt::Packet&, void** flow_soft) override {
    if (flow_soft) {
      if (!*flow_soft) *flow_soft = new std::uint64_t{0};
      ++*static_cast<std::uint64_t*>(*flow_soft);
    }
    ++calls;
    return plugin::Verdict::cont;
  }
  void flow_removed(void* flow_soft) override {
    delete static_cast<std::uint64_t*>(flow_soft);
    ++releases;
  }
  std::uint64_t calls{0};
  std::uint64_t releases{0};
};

class SoftCounterPlugin final : public plugin::Plugin {
 public:
  SoftCounterPlugin() : Plugin("softctr", PluginType::firewall) {}

 protected:
  std::unique_ptr<plugin::PluginInstance> make_instance(
      const plugin::Config&) override {
    return std::make_unique<SoftCounterInstance>();
  }
};

TEST(ChurnDiff, UpgradeWithoutMigrateHookDropsSoftStateSafely) {
  core::RouterKernel::Options opt;
  opt.core.input_gates = {PluginType::firewall};
  core::RouterKernel kernel(opt);
  kernel.add_interface("if0");
  kernel.add_interface("if1");
  ASSERT_EQ(kernel.routes().add(IpPrefix{}, {1, {}}), Status::ok);

  kernel.pcu().register_plugin(std::make_unique<SoftCounterPlugin>());
  plugin::Plugin* pl = kernel.pcu().find("softctr");
  plugin::InstanceId id1 = plugin::kNoInstance, id2 = plugin::kNoInstance;
  ASSERT_EQ(pl->create_instance({}, id1), Status::ok);
  ASSERT_EQ(pl->create_instance({}, id2), Status::ok);
  auto* v1 = static_cast<SoftCounterInstance*>(pl->instance(id1));
  auto* v2 = static_cast<SoftCounterInstance*>(pl->instance(id2));
  ASSERT_EQ(kernel.aiu().create_filter(PluginType::firewall,
                                       *aiu::Filter::parse("<*,*,udp,*,*,*>"),
                                       v1),
            Status::ok);

  auto send = [&](int n) {
    for (int i = 0; i < n; ++i)
      for (std::uint8_t f = 0; f < 6; ++f) {
        pkt::UdpSpec s;
        s.src = IpAddr(netbase::Ipv4Addr(10, 1, 0, f));
        s.dst = IpAddr(netbase::Ipv4Addr(20, 0, 0, 1));
        s.sport = 2000;
        s.dport = 53;
        s.payload_len = 64;
        kernel.core().process(pkt::build_udp(s));
      }
  };
  send(4);  // 24 packets over 6 flows, soft state on v1

  const auto res = kernel.aiu().handoff_instance(v1, v2);
  EXPECT_EQ(res.filters_rebound, 1u);
  EXPECT_EQ(res.flows_rebound, 6u);
  EXPECT_EQ(res.state_migrated, 0u);  // default migrate_flow declines
  EXPECT_EQ(res.state_dropped, 6u);
  EXPECT_EQ(v1->releases, 6u);  // released exactly once, by v1

  send(4);  // same flows keep flowing, now building fresh state on v2
  EXPECT_EQ(v1->calls + v2->calls, 48u);
  EXPECT_EQ(v2->calls, 24u);
  EXPECT_EQ(kernel.core().counters().forwarded, 48u);
  EXPECT_EQ(kernel.core().counters().total_drops(), 0u);
}

// ---------------------------------------------------------------------------
// Sharded churn under live worker-thread traffic (label churn-parallel-tsan).

struct ShardTaps {
  stats::StatsInstance* v2{nullptr};
  CountingInstance* tap{nullptr};
};

constexpr std::uint32_t kStablePrefixes = 48;

// Identical control state on the kernel template and every shard: three
// interfaces, 48 stable /16 routes, a stats gate (v1 live, v2 standby) and
// a counting firewall tap whose filters the control plane churns.
template <class Stack>
ShardTaps setup_churn_stack(Stack& s) {
  s.interfaces().add("if0");
  s.interfaces().add("if1");
  s.interfaces().add("if2");
  for (std::uint32_t i = 0; i < kStablePrefixes; ++i) {
    const IpPrefix p(IpAddr(netbase::Ipv4Addr(50, std::uint8_t(i), 0, 0)),
                     16);
    s.routes().add(p, {static_cast<pkt::IfIndex>(1 + i % 2), {}});
  }
  ShardTaps t;
  s.pcu().register_plugin(std::make_unique<stats::StatsPlugin>());
  plugin::Plugin* st = s.pcu().find("stats");
  plugin::InstanceId id1 = plugin::kNoInstance, id2 = plugin::kNoInstance;
  st->create_instance({}, id1);
  st->create_instance({}, id2);
  t.v2 = static_cast<stats::StatsInstance*>(st->instance(id2));
  s.aiu().create_filter(PluginType::stats,
                        *aiu::Filter::parse("<*, *, *, *, *, *>"),
                        st->instance(id1));
  s.pcu().register_plugin(std::make_unique<CountingPlugin>(
      "fwtap", PluginType::firewall, plugin::Verdict::cont));
  plugin::InstanceId tid = plugin::kNoInstance;
  s.pcu().find("fwtap")->create_instance({}, tid);
  t.tap = static_cast<CountingInstance*>(s.pcu().find("fwtap")->instance(tid));
  return t;
}

parallel::ShardOptions churn_shard_options() {
  parallel::ShardOptions opt;
  opt.core.input_gates = {PluginType::stats, PluginType::firewall};
  opt.route_engine = "cpe";
  return opt;
}

void run_shard_churn(std::uint32_t workers, std::uint64_t seed) {
  SCOPED_TRACE("workers=" + std::to_string(workers) +
               " seed=" + std::to_string(seed));

  core::RouterKernel::Options kopt;
  kopt.core.input_gates = {PluginType::stats, PluginType::firewall};
  kopt.route_engine = "cpe";
  core::RouterKernel kernel(kopt);
  setup_churn_stack(kernel);

  std::vector<ShardTaps> taps(workers);
  parallel::ShardedDatapath::Options opt;
  opt.workers = workers;
  opt.ring_capacity = 256;
  opt.shard = churn_shard_options();
  parallel::ShardedDatapath dp(opt, [&taps](parallel::ShardContext& ctx) {
    taps[ctx.id()] = setup_churn_stack(ctx);
  });

  // Consume egress immediately so long runs never hit the port FIFO bound
  // (a queue_full drop would masquerade as churn-induced loss).
  dp.set_tx_handler(
      [](parallel::ShardContext&, pkt::IfIndex, pkt::PacketPtr) {});

  ctrl::ControlPlane cp(kernel);
  cp.attach_sharded(&dp);

  // Route churn outside the stable band never withdraws a stable /16, so
  // every submitted packet keeps a route for the whole run.
  tgen::RouteChurnSpec rspec;
  rspec.base_prefixes = 256;
  rspec.ops = 512;
  rspec.batch_size = 64;
  rspec.min_len = 17;  // can't alias (and so never withdraw) a stable /16
  rspec.max_len = 28;
  rspec.ifaces = 3;
  rspec.seed = seed;
  const tgen::RouteChurn rchurn = tgen::route_churn(rspec);
  {
    std::vector<route::RouteOp> base;
    for (std::size_t i = 0; i < rchurn.base.size(); ++i)
      base.push_back({route::RouteOp::Kind::add, rchurn.base[i],
                      rchurn.base_hops[i]});
    ASSERT_EQ(cp.apply_route_batch(base).failed, 0u);
  }
  tgen::FilterChurnSpec fspec;
  fspec.base.count = 32;
  fspec.base.seed = seed + 1;
  fspec.ops = 160;
  fspec.batch_size = 16;
  fspec.seed = seed + 2;
  const tgen::FilterChurn fchurn = tgen::filter_churn(fspec);
  // Pin every churned filter to a unique dport in 9000+ while traffic uses
  // dport 7777: the DAG still churns under load, but no filter ever matches
  // a live flow, so no stats-bearing flow entry is invalidated mid-run and
  // the migrated packet totals must be exactly conserved. The memo keys on
  // the original filter, so each remove maps to the same transformed filter
  // as its add, and distinct filters stay distinct.
  std::map<std::string, std::uint16_t> churn_port;
  auto disjoint = [&churn_port](const aiu::Filter& f) {
    auto [it, inserted] = churn_port.emplace(
        f.to_string(), static_cast<std::uint16_t>(9000 + churn_port.size()));
    (void)inserted;
    aiu::Filter g = f;
    g.dport = aiu::PortSpec::exact(it->second);
    return g;
  };
  {
    std::vector<ctrl::FilterSpecOp> ops;
    for (const auto& f : fchurn.base)
      ops.push_back({aiu::Aiu::FilterOp::Kind::add, "fwtap", 1, disjoint(f)});
    ASSERT_EQ(cp.apply_filter_batch(ops), Status::ok);
  }

  // Traffic to stable destinations, submitted in tranches interleaved with
  // control-plane batches running concurrently with the workers.
  Rng rng(seed ^ 0xfeed);
  const std::size_t kPackets = 2000;
  const std::size_t rounds =
      std::max(rchurn.batches.size(), fchurn.batches.size()) + 1;
  const std::size_t per_round = kPackets / rounds + 1;
  std::size_t submitted = 0;
  bool upgraded = false;
  for (std::size_t round = 0; round < rounds; ++round) {
    for (std::size_t i = 0; i < per_round && submitted < kPackets; ++i) {
      const auto x = static_cast<std::uint8_t>(rng.below(kStablePrefixes));
      const std::uint32_t dst =
          (50u << 24) | (std::uint32_t{x} << 16) |
          (static_cast<std::uint32_t>(rng.next()) & 0xffffu);
      dp.submit(packet_to(dst, static_cast<std::uint16_t>(
                                   1000 + rng.below(32))));
      ++submitted;
    }
    if (round < rchurn.batches.size())
      ASSERT_EQ(cp.apply_route_batch(rchurn.batches[round]).failed, 0u);
    if (round < fchurn.batches.size()) {
      std::vector<ctrl::FilterSpecOp> ops;
      for (const auto& op : fchurn.batches[round])
        ops.push_back({op.remove ? aiu::Aiu::FilterOp::Kind::remove
                                 : aiu::Aiu::FilterOp::Kind::add,
                       "fwtap", 1, disjoint(op.filter)});
      std::string detail;
      ASSERT_EQ(cp.apply_filter_batch(ops, &detail), Status::ok) << detail;
    }
    if (!upgraded && round >= rounds / 2) {
      std::string detail;
      ASSERT_EQ(cp.upgrade("stats", 1, 2, /*retire=*/true, &detail),
                Status::ok)
          << detail;
      upgraded = true;
    }
  }
  ASSERT_TRUE(upgraded);

  dp.quiesce();
  const core::CoreCounters cc = dp.aggregate_counters();
  // Zero loss: every submitted packet was received and forwarded; churn
  // never dropped a legitimate packet.
  EXPECT_EQ(cc.received, submitted);
  EXPECT_EQ(cc.forwarded, submitted);
  EXPECT_EQ(cc.total_drops(), 0u);

  dp.stop();
  // The retire reached every stack; v2 holds the complete packet history
  // (migrated totals + post-upgrade counting), summed across shards.
  EXPECT_EQ(kernel.pcu().find_instance("stats", 1), nullptr);
  std::uint64_t stats_total = 0;
  for (std::uint32_t i = 0; i < workers; ++i) {
    parallel::ShardContext& ctx = dp.worker(i).ctx();
    EXPECT_EQ(ctx.pcu().find_instance("stats", 1), nullptr)
        << "shard " << i << " still has the retired instance";
    stats_total += taps[i].v2->total_packets();
  }
  EXPECT_EQ(stats_total, submitted);

  // Mirrored control state: every shard's routing table answers exactly
  // like the kernel template's.
  for (int i = 0; i < 200; ++i) {
    const IpAddr dst{netbase::Ipv4Addr(static_cast<std::uint32_t>(
        rng.chance(0.5) ? (50u << 24) | (rng.next() & 0xffffffu)
                        : rng.next()))};
    const route::NextHop* want = kernel.routes().lookup(dst);
    for (std::uint32_t w = 0; w < workers; ++w) {
      const route::NextHop* got = dp.worker(w).ctx().routes().lookup(dst);
      ASSERT_EQ(want != nullptr, got != nullptr)
          << "shard " << w << " dst " << dst.to_string();
      if (want)
        EXPECT_EQ(want->out_iface, got->out_iface)
            << "shard " << w << " dst " << dst.to_string();
    }
  }
  // And every shard's filter table converged to the same live set.
  const std::size_t want_filters =
      kernel.aiu().filter_table(PluginType::firewall)->size();
  for (std::uint32_t w = 0; w < workers; ++w)
    EXPECT_EQ(
        dp.worker(w).ctx().aiu().filter_table(PluginType::firewall)->size(),
        want_filters);

  EXPECT_EQ(cp.stats().upgrades, 1u);
  EXPECT_EQ(cp.stats().route_failures, 0u);
  EXPECT_EQ(cp.stats().filter_failures, 0u);
}

TEST(ChurnShard, TwoWorkersZeroLossUnderFullChurn) {
  for (std::uint64_t seed : {3ull, 1234ull}) run_shard_churn(2, seed);
}

TEST(ChurnShard, FourWorkersZeroLossUnderFullChurn) {
  for (std::uint64_t seed : {3ull, 90210ull}) run_shard_churn(4, seed);
}

}  // namespace
}  // namespace rp

// Tests for the WF²Q+ scheduler (weighted shares, SEFF eligibility, the
// worst-case-fairness property a late-starting flow enjoys) and the
// token-bucket policer plugin (conformance, bursts, marking, per-flow vs
// shared buckets, end-to-end at the congestion gate).
#include <gtest/gtest.h>

#include <map>

#include "core/router.hpp"
#include "mgmt/pmgr.hpp"
#include "mgmt/register_all.hpp"
#include "mgmt/rplib.hpp"
#include "pkt/builder.hpp"
#include "sched/policer.hpp"
#include "sched/wf2q.hpp"

namespace rp::sched {
namespace {

using netbase::Status;
using plugin::Verdict;

pkt::PacketPtr flow_pkt(std::uint16_t sport, std::size_t payload = 472) {
  pkt::UdpSpec s;
  s.src = netbase::IpAddr(netbase::Ipv4Addr(10, 0, 0, 1));
  s.dst = netbase::IpAddr(netbase::Ipv4Addr(20, 0, 0, 1));
  s.sport = sport;
  s.dport = 80;
  s.payload_len = payload;
  return pkt::build_udp(s);
}

TEST(Wf2q, EqualWeightsAlternate) {
  Wf2qInstance w({});
  void* soft[2] = {};
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(w.enqueue(flow_pkt(1), &soft[0], 0));
    ASSERT_TRUE(w.enqueue(flow_pkt(2), &soft[1], 0));
  }
  std::map<std::uint16_t, int> served;
  for (int i = 0; i < 20; ++i) {
    auto p = w.dequeue(0);
    ASSERT_NE(p, nullptr);
    ++served[p->key.sport];
  }
  EXPECT_EQ(served[1], 10);
  EXPECT_EQ(served[2], 10);
}

TEST(Wf2q, WeightedShares) {
  Wf2qInstance::Config wcfg;
  wcfg.per_flow_limit = 512;
  Wf2qInstance w(wcfg);
  plugin::PluginMsg msg;
  msg.custom_name = "setweight";
  msg.args.set("filter", "<*, *, udp, 2, *, *>");
  msg.args.set("weight", "3");
  plugin::PluginReply reply;
  ASSERT_EQ(w.handle_message(msg, reply), Status::ok);

  void* soft[2] = {};
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(w.enqueue(flow_pkt(1), &soft[0], 0));
    ASSERT_TRUE(w.enqueue(flow_pkt(2), &soft[1], 0));
  }
  std::map<std::uint16_t, std::size_t> bytes;
  for (int i = 0; i < 200; ++i) {
    auto p = w.dequeue(0);
    ASSERT_NE(p, nullptr);
    bytes[p->key.sport] += p->size();
  }
  EXPECT_NEAR(static_cast<double>(bytes[2]) / bytes[1], 3.0, 0.4);
}

TEST(Wf2q, LateFlowNotStarvedNorOvercompensated) {
  // Worst-case fairness: a flow that becomes active late starts at the
  // current virtual time — it neither waits behind the whole backlog (as
  // FIFO would) nor grabs the link for a catch-up burst (as virtual-clock
  // schedulers can).
  Wf2qInstance w({});
  void* soft[2] = {};
  for (int i = 0; i < 50; ++i) ASSERT_TRUE(w.enqueue(flow_pkt(1), &soft[0], 0));
  // Serve some of flow 1 alone.
  for (int i = 0; i < 10; ++i) ASSERT_NE(w.dequeue(0), nullptr);
  // Flow 2 wakes up.
  for (int i = 0; i < 20; ++i) ASSERT_TRUE(w.enqueue(flow_pkt(2), &soft[1], 0));
  std::map<std::uint16_t, int> served;
  for (int i = 0; i < 20; ++i) {
    auto p = w.dequeue(0);
    ASSERT_NE(p, nullptr);
    ++served[p->key.sport];
  }
  // From the moment both are backlogged, service alternates ~1:1.
  EXPECT_NEAR(served[1], served[2], 2);
}

TEST(Wf2q, PerFlowLimitAndOrphanDrain) {
  Wf2qInstance::Config cfg;
  cfg.per_flow_limit = 3;
  Wf2qInstance w(cfg);
  void* soft = nullptr;
  for (int i = 0; i < 5; ++i) w.enqueue(flow_pkt(1), &soft, 0);
  EXPECT_EQ(w.backlog_packets(), 3u);
  w.flow_removed(soft);
  EXPECT_EQ(w.queue_count(), 1u);  // drains first
  while (w.dequeue(0)) {
  }
  EXPECT_EQ(w.queue_count(), 0u);
}

// ---------------------------------------------------------------------------

TEST(Policer, BurstThenRateConformance) {
  PolicerInstance::Config cfg;
  cfg.rate_bps = 8'000'000;  // 1 MB/s
  cfg.burst_bytes = 3000;
  cfg.per_flow = false;
  PolicerInstance pol(cfg);

  // Burst: the first ~3000 bytes pass on a full bucket.
  int passed = 0;
  for (int i = 0; i < 10; ++i) {
    auto p = flow_pkt(1, 472);  // 500 B
    p->arrival = 0;
    if (pol.handle_packet(*p, nullptr) == Verdict::cont) ++passed;
  }
  EXPECT_EQ(passed, 6);  // 3000 / 500

  // After 1 ms, 1000 bytes of tokens accumulated: exactly two more packets.
  passed = 0;
  for (int i = 0; i < 5; ++i) {
    auto p = flow_pkt(1, 472);
    p->arrival = netbase::kNsPerMs;
    if (pol.handle_packet(*p, nullptr) == Verdict::cont) ++passed;
  }
  EXPECT_EQ(passed, 2);
  EXPECT_EQ(pol.exceeded(), 4u + 3u);
}

TEST(Policer, MarkActionRemarksInsteadOfDropping) {
  PolicerInstance::Config cfg;
  cfg.rate_bps = 8'000;
  cfg.burst_bytes = 600;
  cfg.per_flow = false;
  cfg.mark = true;
  cfg.mark_dscp = 8;
  PolicerInstance pol(cfg);

  auto p1 = flow_pkt(1, 472);
  p1->arrival = 0;
  EXPECT_EQ(pol.handle_packet(*p1, nullptr), Verdict::cont);
  EXPECT_EQ(p1->data()[1], 0);  // conformant: untouched

  auto p2 = flow_pkt(1, 472);
  p2->arrival = 0;
  EXPECT_EQ(pol.handle_packet(*p2, nullptr), Verdict::cont);  // marked, not dropped
  EXPECT_EQ(p2->data()[1], 8 << 2);
  EXPECT_TRUE(pkt::Ipv4Header::verify_checksum({p2->data(), 20}));
}

TEST(Policer, PerFlowBucketsIsolateFlows) {
  PolicerInstance::Config cfg;
  cfg.rate_bps = 8'000;
  cfg.burst_bytes = 500;
  cfg.per_flow = true;
  PolicerInstance pol(cfg);

  void* soft_a = nullptr;
  void* soft_b = nullptr;
  auto a1 = flow_pkt(1, 472);
  EXPECT_EQ(pol.handle_packet(*a1, &soft_a), Verdict::cont);
  auto a2 = flow_pkt(1, 472);
  EXPECT_EQ(pol.handle_packet(*a2, &soft_a), Verdict::drop);  // a exhausted
  auto b1 = flow_pkt(2, 472);
  EXPECT_EQ(pol.handle_packet(*b1, &soft_b), Verdict::cont);  // b unaffected

  pol.flow_removed(soft_a);
  plugin::PluginMsg msg;
  msg.custom_name = "stats";
  plugin::PluginReply reply;
  ASSERT_EQ(pol.handle_message(msg, reply), Status::ok);
  EXPECT_NE(reply.text.find("buckets=1"), std::string::npos);
}

TEST(Policer, EndToEndAtCongestionGate) {
  core::RouterKernel k;
  mgmt::register_builtin_modules();
  k.add_interface("in0");
  k.add_interface("out0");
  mgmt::RouterPluginLib lib(k);
  mgmt::PluginManager pmgr(lib);
  auto r = pmgr.run_script(R"(
route add 20.0.0.0/8 if1
modload policer
create policer rate_bps=800000 burst=1000 per_flow=1
bind policer 1 <10.0.0.0/8, *, udp, *, *, *>
)");
  ASSERT_TRUE(r.ok()) << r.text;

  // 10 packets of 500 B arrive back-to-back: 2 fit the burst, the rest
  // need 5 ms each at 100 kB/s.
  for (int i = 0; i < 10; ++i) {
    auto p = flow_pkt(1, 472);
    k.inject(i * 1000, 0, std::move(p));
  }
  k.run_to_completion();
  EXPECT_EQ(k.core().counters().forwarded, 2u);
  EXPECT_EQ(k.core().counters().dropped(core::DropReason::policy), 8u);

  auto stats = pmgr.exec("msg policer 1 stats");
  EXPECT_NE(stats.text.find("conformant=2"), std::string::npos);
}

TEST(Policer, SetRateMessage) {
  PolicerInstance pol({});
  plugin::PluginMsg msg;
  msg.custom_name = "setrate";
  plugin::PluginReply reply;
  EXPECT_EQ(pol.handle_message(msg, reply), Status::invalid_argument);
  msg.args.set("rate_bps", "5000000");
  EXPECT_EQ(pol.handle_message(msg, reply), Status::ok);
}

}  // namespace
}  // namespace rp::sched

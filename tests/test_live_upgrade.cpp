// The paper's headline capability, exercised end-to-end: "with the rapid
// rate of protocol development it is becoming increasingly important to
// dynamically upgrade router software in an incremental fashion." A router
// carrying live traffic swaps its packet scheduler (DRR -> WF²Q+), upgrades
// its security transform (AH -> ESP), and replaces its classifier's BMP
// engine — without dropping legitimate traffic or leaving dangling state.
#include <gtest/gtest.h>

#include <map>

#include "core/router.hpp"
#include "mgmt/pmgr.hpp"
#include "mgmt/register_all.hpp"
#include "mgmt/rplib.hpp"
#include "pkt/builder.hpp"

namespace rp {
namespace {

using netbase::SimTime;

pkt::PacketPtr udp(std::uint16_t sport) {
  pkt::UdpSpec s;
  s.src = *netbase::IpAddr::parse("10.0.0.1");
  s.dst = *netbase::IpAddr::parse("20.0.0.1");
  s.sport = sport;
  s.dport = 80;
  s.payload_len = 472;
  return pkt::build_udp(s);
}

TEST(LiveUpgrade, SchedulerSwappedUnderTraffic) {
  core::RouterKernel k;
  mgmt::register_builtin_modules();
  k.add_interface("in0");
  auto& out = k.interfaces().add("out0", 8'000'000);
  mgmt::RouterPluginLib lib(k);
  mgmt::PluginManager pmgr(lib);
  auto r = pmgr.run_script(R"(
route add 20.0.0.0/8 if1
modload drr
create drr quantum=500
attach drr 1 if1
)");
  ASSERT_TRUE(r.ok()) << r.text;

  std::size_t delivered = 0;
  out.set_tx_sink([&](pkt::PacketPtr, SimTime) { ++delivered; });

  // Phase 1: 50 ms of traffic through DRR.
  for (SimTime t = 0; t < 50 * netbase::kNsPerMs; t += 500'000)
    k.inject(t, 0, udp(1));
  k.run_until(50 * netbase::kNsPerMs);
  const auto phase1 = delivered;
  EXPECT_GT(phase1, 0u);

  // Upgrade: load WF²Q+, attach it to the port, retire DRR. The old
  // scheduler still holds queued packets; the port drains the FIFO first
  // and the new scheduler takes over for new arrivals.
  ASSERT_TRUE(pmgr.exec("modload wf2q").ok());
  ASSERT_TRUE(pmgr.exec("create wf2q").ok());
  ASSERT_TRUE(pmgr.exec("attach wf2q 1 if1").ok());
  ASSERT_TRUE(pmgr.exec("free drr 1").ok());
  ASSERT_TRUE(pmgr.exec("modunload drr").ok());
  EXPECT_FALSE(k.loader().loaded("drr"));

  // Phase 2: 50 ms more traffic through WF²Q+.
  for (SimTime t = 60 * netbase::kNsPerMs; t < 110 * netbase::kNsPerMs;
       t += 500'000)
    k.inject(t, 0, udp(2));
  k.run_until(200 * netbase::kNsPerMs);
  EXPECT_GT(delivered, phase1);
  // Everything injected in phase 2 got through the new scheduler.
  EXPECT_EQ(k.core().counters().total_drops(), 0u);

  auto stats = pmgr.exec("msg wf2q 1 stats");
  ASSERT_TRUE(stats.ok());
  EXPECT_NE(stats.text.find("queues="), std::string::npos);
}

TEST(LiveUpgrade, SecurityTransformUpgraded) {
  // AH-protected flow upgraded to ESP: the entry router's binding is
  // re-pointed from the AH instance to an ESP instance; the old instance is
  // freed while other traffic keeps flowing.
  core::RouterKernel k;
  mgmt::register_builtin_modules();
  k.add_interface("in0");
  auto& out = k.add_interface("out0");
  mgmt::RouterPluginLib lib(k);
  mgmt::PluginManager pmgr(lib);
  auto r = pmgr.run_script(R"(
route add 20.0.0.0/8 if1
modload ipsec
msg ipsec - addsa spi=5 auth_key=00112233445566778899aabbccddeeff enc_key=000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f
create ipsec mode=ah-add spi=5
bind ipsec 1 <10.0.0.0/8, *, *, *, *, *>
)");
  ASSERT_TRUE(r.ok()) << r.text;

  std::vector<std::uint8_t> protos;
  out.set_tx_sink([&](pkt::PacketPtr p, SimTime) {
    protos.push_back(p->data()[9]);
  });

  k.inject(0, 0, udp(1));
  k.run_to_completion();
  ASSERT_EQ(protos.size(), 1u);
  EXPECT_EQ(protos[0], 51);  // AH on the wire

  // Upgrade the transform: create the ESP instance, rebind the same
  // filter (rebinding replaces the instance pointer), free the AH one.
  ASSERT_TRUE(pmgr.exec("create ipsec mode=esp-encrypt spi=5").ok());
  ASSERT_TRUE(pmgr.exec("bind ipsec 2 <10.0.0.0/8, *, *, *, *, *>").ok());
  ASSERT_TRUE(pmgr.exec("free ipsec 1").ok());

  k.inject(0, 0, udp(1));
  k.run_to_completion();
  ASSERT_EQ(protos.size(), 2u);
  EXPECT_EQ(protos[1], 50);  // ESP now
  EXPECT_EQ(k.core().counters().total_drops(), 0u);
}

TEST(LiveUpgrade, FreeingAttachedSchedulerDetachesPort) {
  // Freeing a scheduler instance that is still the port discipline must
  // not leave the port with a dangling pointer: the purge hook detaches it
  // and traffic falls back to the port FIFO.
  core::RouterKernel k;
  mgmt::register_builtin_modules();
  k.add_interface("in0");
  auto& out = k.add_interface("out0");
  mgmt::RouterPluginLib lib(k);
  mgmt::PluginManager pmgr(lib);
  auto r = pmgr.run_script(R"(
route add 20.0.0.0/8 if1
modload drr
create drr
attach drr 1 if1
)");
  ASSERT_TRUE(r.ok()) << r.text;
  ASSERT_NE(k.core().port_scheduler(1), nullptr);

  ASSERT_TRUE(pmgr.exec("free drr 1").ok());
  EXPECT_EQ(k.core().port_scheduler(1), nullptr);

  std::size_t delivered = 0;
  out.set_tx_sink([&](pkt::PacketPtr, SimTime) { ++delivered; });
  k.inject(0, 0, udp(1));
  k.run_to_completion();
  EXPECT_EQ(delivered, 1u);  // FIFO fallback carried the packet
}

TEST(LiveUpgrade, ClassifierBmpEngineSelectable) {
  // The per-level match function is itself a plugin (§5.1.1): the same
  // router behaviour with each BMP engine.
  for (const char* engine : {"patricia", "bsl", "cpe"}) {
    core::RouterKernel::Options opt;
    opt.aiu.dag.bmp_engine = engine;
    core::RouterKernel k(opt);
    mgmt::register_builtin_modules();
    k.add_interface("in0");
    k.add_interface("out0");
    mgmt::RouterPluginLib lib(k);
    mgmt::PluginManager pmgr(lib);
    auto r = pmgr.run_script(R"(
route add 20.0.0.0/8 if1
modload firewall
create firewall policy=deny
bind firewall 1 <10.0.0.0/8, *, udp, 666, *, *>
)");
    ASSERT_TRUE(r.ok()) << engine << ": " << r.text;
    k.inject(0, 0, udp(666));
    k.inject(0, 0, udp(1));
    k.run_to_completion();
    EXPECT_EQ(k.core().counters().dropped(core::DropReason::policy), 1u)
        << engine;
    EXPECT_EQ(k.core().counters().forwarded, 1u) << engine;
  }
}

}  // namespace
}  // namespace rp

// Property tests for the H-FSC runtime service-curve machinery: x2y/y2x
// inversion, monotonicity, and the min_with ("rtsc_min") invariants that
// the scheduler's deadline computation depends on.
#include <gtest/gtest.h>

#include <cmath>

#include "netbase/rng.hpp"
#include "sched/hfsc.hpp"

namespace rp::sched {
namespace {

using netbase::Rng;

ServiceCurve random_curve(Rng& rng) {
  // m1, m2 in [0.1 .. 100] MB/s; d in [0 .. 50] ms.
  ServiceCurve sc;
  sc.m1 = 1e5 + rng.uniform01() * 1e8;
  sc.m2 = 1e5 + rng.uniform01() * 1e8;
  sc.d = rng.uniform01() * 50e6;
  return sc;
}

class CurveProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CurveProperty, InversionHoldsOnBothSegments) {
  Rng rng(GetParam());
  for (int i = 0; i < 50; ++i) {
    ServiceCurve sc = random_curve(rng);
    RuntimeSc r;
    double x0 = rng.uniform01() * 1e9;
    double y0 = rng.uniform01() * 1e6;
    r.init(sc, x0, y0);
    for (int j = 0; j < 20; ++j) {
      double t = x0 + rng.uniform01() * 1e8;
      double y = r.x2y(t);
      // y2x(x2y(t)) <= t with equality when slopes are nonzero at t.
      double t2 = r.y2x(y);
      EXPECT_LE(t2, t + 1.0);
      EXPECT_NEAR(r.x2y(t2), y, y * 1e-9 + 1.0);
    }
  }
}

TEST_P(CurveProperty, MonotoneNonDecreasing) {
  Rng rng(GetParam() + 100);
  ServiceCurve sc = random_curve(rng);
  RuntimeSc r;
  r.init(sc, 0, 0);
  double prev = 0;
  for (double t = 0; t < 2e8; t += 1e6) {
    double y = r.x2y(t);
    EXPECT_GE(y, prev);
    prev = y;
  }
}

TEST_P(CurveProperty, MinWithNeverRaisesTheCurveInSchedulerDomain) {
  // rtsc_min's guarantee under its actual call pattern — the class is
  // reactivated at a time past the old anchor with cumulative (real-time)
  // service y0 no higher than what the old curve allowed at that time:
  // the merged deadline curve never grants more service than the old one,
  // and starts exactly at the reactivation point.
  Rng rng(GetParam() + 200);
  for (int i = 0; i < 30; ++i) {
    ServiceCurve sc = random_curve(rng);
    RuntimeSc old_curve;
    old_curve.init(sc, rng.uniform01() * 1e8, rng.uniform01() * 1e5);
    RuntimeSc merged = old_curve;
    const double x0 = old_curve.x + rng.uniform01() * 2e8;
    const double y0 = old_curve.x2y(x0) * rng.uniform01();  // <= old(x0)
    merged.min_with(sc, x0, y0);

    EXPECT_NEAR(merged.x2y(x0), std::min(y0, old_curve.x2y(x0)),
                1.0 + y0 * 1e-9);
    for (int j = 0; j < 40; ++j) {
      double t = x0 + rng.uniform01() * 3e8;
      double tol = 1.0 + old_curve.x2y(t) * 1e-9;
      EXPECT_LE(merged.x2y(t), old_curve.x2y(t) + tol) << "t=" << t;
      EXPECT_GE(merged.x2y(t) + tol, y0) << "t=" << t;  // monotone from y0
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CurveProperty,
                         ::testing::Range<std::uint64_t>(1, 9));

TEST(CurveEdgeCases, ZeroSlopesGiveInfiniteTimes) {
  ServiceCurve sc{0, 0, 0};
  RuntimeSc r;
  r.init(sc, 0, 0);
  EXPECT_EQ(r.x2y(1e9), 0);
  EXPECT_TRUE(std::isinf(r.y2x(1)));
  ServiceCurve burst_only{1e6, 1e6, 0};
  r.init(burst_only, 0, 0);
  EXPECT_GT(r.x2y(1e6), 0);
  EXPECT_TRUE(std::isinf(r.y2x(1e12)));  // beyond the burst
}

}  // namespace
}  // namespace rp::sched

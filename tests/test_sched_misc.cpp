// Tests for FIFO, the ALTQ-WFQ baseline (hash-collision unfairness), and
// the RED congestion-control queue.
#include <gtest/gtest.h>

#include <map>

#include "pkt/builder.hpp"
#include "sched/fifo.hpp"
#include "sched/red.hpp"
#include "sched/wfq_altq.hpp"

namespace rp::sched {
namespace {

pkt::PacketPtr flow_pkt(std::uint16_t sport, std::size_t payload = 472) {
  pkt::UdpSpec s;
  s.src = netbase::IpAddr(netbase::Ipv4Addr(10, 0, 0, 1));
  s.dst = netbase::IpAddr(netbase::Ipv4Addr(20, 0, 0, 1));
  s.sport = sport;
  s.dport = 80;
  s.payload_len = payload;
  return pkt::build_udp(s);
}

TEST(Fifo, OrderPreservedAndLimited) {
  FifoInstance f(3);
  for (std::uint16_t i = 0; i < 5; ++i)
    f.enqueue(flow_pkt(i), nullptr, 0);
  EXPECT_EQ(f.backlog_packets(), 3u);
  EXPECT_EQ(f.drops(), 2u);
  EXPECT_EQ(f.dequeue(0)->key.sport, 0);
  EXPECT_EQ(f.dequeue(0)->key.sport, 1);
  EXPECT_EQ(f.dequeue(0)->key.sport, 2);
  EXPECT_EQ(f.dequeue(0), nullptr);
  EXPECT_TRUE(f.empty());
}

TEST(Fifo, ByteAccounting) {
  FifoInstance f(10);
  f.enqueue(flow_pkt(1, 100), nullptr, 0);
  f.enqueue(flow_pkt(2, 200), nullptr, 0);
  EXPECT_EQ(f.backlog_bytes(), 128u + 228u);
  f.dequeue(0);
  EXPECT_EQ(f.backlog_bytes(), 228u);
}

TEST(AltqWfq, FairAcrossHashQueues) {
  // With enough queues, distinct flows land in distinct queues and share
  // the link equally.
  AltqWfqInstance w(256, 500, 64);
  for (int r = 0; r < 20; ++r)
    for (std::uint16_t f = 1; f <= 4; ++f)
      w.enqueue(flow_pkt(f), nullptr, 0);
  std::map<std::uint16_t, int> served;
  for (int i = 0; i < 40; ++i) {
    auto p = w.dequeue(0);
    ASSERT_NE(p, nullptr);
    ++served[p->key.sport];
  }
  for (std::uint16_t f = 1; f <= 4; ++f) EXPECT_EQ(served[f], 10) << f;
}

TEST(AltqWfq, CollisionsDestroyIsolation) {
  // One queue: all flows collide — the paper's motivation for per-flow DRR.
  AltqWfqInstance w(1, 500, 1024);
  for (int r = 0; r < 10; ++r) {
    // Flow 1 floods 9 packets for every packet of flow 2.
    for (int i = 0; i < 9; ++i) w.enqueue(flow_pkt(1), nullptr, 0);
    w.enqueue(flow_pkt(2), nullptr, 0);
  }
  std::map<std::uint16_t, int> served;
  for (int i = 0; i < 50; ++i) ++served[w.dequeue(0)->key.sport];
  // FIFO within the shared queue: flow 1 keeps ~90% of the service.
  EXPECT_GE(served[1], 40);
}

TEST(Red, BelowMinThresholdNeverDrops) {
  RedInstance::Config cfg;
  cfg.limit = 100;
  cfg.min_th = 20;
  cfg.max_th = 60;
  RedInstance r(cfg);
  for (int i = 0; i < 15; ++i)
    EXPECT_TRUE(r.enqueue(flow_pkt(1), nullptr, 0));
  EXPECT_EQ(r.early_drops(), 0u);
  EXPECT_EQ(r.forced_drops(), 0u);
}

TEST(Red, EarlyDropsRampBetweenThresholds) {
  RedInstance::Config cfg;
  cfg.limit = 400;
  cfg.min_th = 20;
  cfg.max_th = 200;
  cfg.max_p = 0.2;
  cfg.ewma_weight = 0.5;  // fast-moving average for the test
  RedInstance r(cfg);
  int accepted = 0;
  for (int i = 0; i < 300; ++i)
    if (r.enqueue(flow_pkt(1), nullptr, 0)) ++accepted;
  EXPECT_GT(r.early_drops(), 0u);
  EXPECT_GT(accepted, 100);  // far from tail-drop behaviour
  EXPECT_GT(r.avg_queue(), cfg.min_th);
}

TEST(Red, HardLimitAlwaysDrops) {
  RedInstance::Config cfg;
  cfg.limit = 10;
  cfg.min_th = 2;
  cfg.max_th = 8;
  cfg.ewma_weight = 0.0;  // keep avg at 0: only the hard limit fires
  RedInstance r(cfg);
  int accepted = 0;
  for (int i = 0; i < 20; ++i)
    if (r.enqueue(flow_pkt(1), nullptr, 0)) ++accepted;
  EXPECT_EQ(accepted, 10);
  EXPECT_EQ(r.forced_drops(), 10u);
}

TEST(Red, DequeueDrainsInOrder) {
  RedInstance r({});
  r.enqueue(flow_pkt(1), nullptr, 0);
  r.enqueue(flow_pkt(2), nullptr, 0);
  EXPECT_EQ(r.dequeue(0)->key.sport, 1);
  EXPECT_EQ(r.dequeue(0)->key.sport, 2);
  EXPECT_EQ(r.dequeue(0), nullptr);
}

TEST(Red, IdleDecayReducesAverage) {
  RedInstance::Config cfg;
  cfg.ewma_weight = 0.5;
  RedInstance r(cfg);
  for (int i = 0; i < 50; ++i) r.enqueue(flow_pkt(1), nullptr, 0);
  double avg_busy = r.avg_queue();
  while (r.dequeue(1'000'000)) {
  }
  // Re-arrive after a long idle period: the average must have decayed.
  r.enqueue(flow_pkt(1), nullptr, 2'000'000'000);
  EXPECT_LT(r.avg_queue(), avg_busy);
}

}  // namespace
}  // namespace rp::sched

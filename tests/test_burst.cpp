// Equivalence of the batched datapath (PR 1 tentpole): process_burst must
// be observationally identical to per-packet process() on the same trace —
// same counters, same per-reason drops, same plugin invocations, same
// egress packets in the same order — for any chunking of the input, with
// the flow cache on or off.
#include <gtest/gtest.h>

#include <vector>

#include "core/ip_core.hpp"
#include "pkt/builder.hpp"
#include "plugin/pcu.hpp"

namespace rp::core {
namespace {

using netbase::IpAddr;
using plugin::PluginType;

class CountingInstance final : public plugin::PluginInstance {
 public:
  explicit CountingInstance(plugin::Verdict v) : verdict_(v) {}
  plugin::Verdict handle_packet(pkt::Packet&, void**) override {
    ++calls;
    return verdict_;
  }
  int calls{0};

 private:
  plugin::Verdict verdict_;
};

class CountingPlugin final : public plugin::Plugin {
 public:
  CountingPlugin(std::string name, PluginType type, plugin::Verdict v)
      : Plugin(std::move(name), type), verdict_(v) {}

 protected:
  std::unique_ptr<plugin::PluginInstance> make_instance(
      const plugin::Config&) override {
    return std::make_unique<CountingInstance>(verdict_);
  }

 private:
  plugin::Verdict verdict_;
};

// One complete router datapath (own AIU, flow table, routes, interfaces)
// with a stats plugin on every flow and a firewall that drops dport 80.
struct Rig {
  netbase::SimClock clock;
  plugin::PluginControlUnit pcu;
  std::unique_ptr<aiu::Aiu> aiu;
  route::RoutingTable routes{"bsl"};
  netdev::InterfaceTable ifs;
  std::unique_ptr<IpCore> core;
  CountingInstance* stats{nullptr};
  CountingInstance* fw{nullptr};

  explicit Rig(bool flow_cache) {
    aiu::Aiu::Options opt;
    opt.flow_cache_enabled = flow_cache;
    aiu = std::make_unique<aiu::Aiu>(pcu, clock, opt);
    ifs.add("if0");
    ifs.add("if1").set_mtu(600);  // forces fragmentation of large packets
    routes.add(*netbase::IpPrefix::parse("20.0.0.0/8"), {1, {}});

    CoreConfig cfg;
    cfg.input_gates = {PluginType::stats, PluginType::firewall};
    core = std::make_unique<IpCore>(*aiu, routes, ifs, clock, cfg);

    stats = add("st", PluginType::stats, plugin::Verdict::cont,
                "<*, *, *, *, *, *>");
    fw = add("fw", PluginType::firewall, plugin::Verdict::drop,
             "<*, *, udp, *, 80, *>");
  }

  CountingInstance* add(const char* name, PluginType type, plugin::Verdict v,
                        const char* filter) {
    pcu.register_plugin(std::make_unique<CountingPlugin>(name, type, v));
    plugin::InstanceId id = plugin::kNoInstance;
    pcu.find(name)->create_instance({}, id);
    auto* inst = static_cast<CountingInstance*>(pcu.find(name)->instance(id));
    aiu->create_filter(type, *aiu::Filter::parse(filter), inst);
    return inst;
  }

  std::vector<std::vector<std::uint8_t>> drain(pkt::IfIndex iface) {
    std::vector<std::vector<std::uint8_t>> out;
    while (auto p = core->next_for_tx(iface, 0))
      out.emplace_back(p->data(), p->data() + p->size());
    return out;
  }
};

pkt::PacketPtr udp(std::uint8_t src_lo, const char* dst, std::uint8_t ttl,
                   std::uint16_t dport, std::size_t payload = 64) {
  pkt::UdpSpec s;
  s.src = IpAddr(netbase::Ipv4Addr(10, 0, 0, src_lo));
  s.dst = *IpAddr::parse(dst);
  s.sport = 1000;
  s.dport = dport;
  s.payload_len = payload;
  s.ttl = ttl;
  return pkt::build_udp(s);
}

// A trace exercising every path outcome, in per-flow trains so the burst
// memo is hit: forwards, TTL expiry, bad checksum, malformed runts,
// no-route, firewall policy drops, and packets needing fragmentation.
std::vector<pkt::PacketPtr> make_trace() {
  std::vector<pkt::PacketPtr> t;
  for (int i = 0; i < 300; ++i) {
    const auto flow = static_cast<std::uint8_t>(1 + i / 3 % 7);  // trains of 3
    if (i % 11 == 3) {
      t.push_back(udp(flow, "20.0.0.5", 1, 9000));  // ttl_expired
    } else if (i % 13 == 5) {
      auto p = udp(flow, "20.0.0.5", 64, 9000);
      p->data()[10] ^= 0xff;  // bad_checksum
      t.push_back(std::move(p));
    } else if (i % 17 == 7) {
      auto p = pkt::make_packet(6);  // malformed runt
      p->data()[0] = 0x00;
      t.push_back(std::move(p));
    } else if (i % 19 == 9) {
      t.push_back(udp(flow, "99.0.0.5", 64, 9000));  // no_route
    } else if (i % 23 == 11) {
      t.push_back(udp(flow, "20.0.0.5", 64, 80));  // policy (firewall)
    } else if (i % 29 == 13) {
      t.push_back(udp(flow, "20.0.0.5", 64, 9000, 1400));  // fragmented
    } else {
      t.push_back(udp(flow, "20.0.0.5", 64, 9000 + i % 4));
    }
  }
  return t;
}

void expect_equivalent(bool flow_cache) {
  Rig single(flow_cache), burst(flow_cache);
  auto trace = make_trace();

  std::vector<pkt::PacketPtr> a, b;
  for (const auto& p : trace) {
    a.push_back(pkt::clone_packet(*p));
    b.push_back(pkt::clone_packet(*p));
  }

  for (auto& p : a) single.core->process(std::move(p));

  // Irregular chunking, including chunks above Aiu::kMaxBurst so the
  // internal re-chunking runs too.
  const std::size_t sizes[] = {1, 2, 3, 5, 8, 13, 21, 32, 40};
  std::size_t off = 0, s = 0;
  while (off < b.size()) {
    const std::size_t n = std::min(sizes[s++ % std::size(sizes)],
                                   b.size() - off);
    burst.core->process_burst({b.data() + off, n});
    off += n;
  }

  const CoreCounters& ca = single.core->counters();
  const CoreCounters& cb = burst.core->counters();
  EXPECT_EQ(ca.received, cb.received);
  EXPECT_EQ(ca.forwarded, cb.forwarded);
  EXPECT_EQ(ca.gate_calls, cb.gate_calls);
  EXPECT_EQ(ca.fragments_created, cb.fragments_created);
  for (std::size_t r = 0; r < static_cast<std::size_t>(DropReason::kCount);
       ++r) {
    EXPECT_EQ(ca.drops[r], cb.drops[r]) << "drop reason " << r;
  }
  EXPECT_EQ(single.stats->calls, burst.stats->calls);
  EXPECT_EQ(single.fw->calls, burst.fw->calls);

  // Sanity: the trace really exercised every outcome.
  EXPECT_GT(ca.forwarded, 0u);
  EXPECT_GT(ca.fragments_created, 0u);
  EXPECT_GT(ca.dropped(DropReason::ttl_expired), 0u);
  EXPECT_GT(ca.dropped(DropReason::bad_checksum), 0u);
  EXPECT_GT(ca.dropped(DropReason::malformed), 0u);
  EXPECT_GT(ca.dropped(DropReason::no_route), 0u);
  EXPECT_GT(ca.dropped(DropReason::policy), 0u);

  // Byte-identical egress in identical order.
  auto oa = single.drain(1);
  auto ob = burst.drain(1);
  ASSERT_EQ(oa.size(), ob.size());
  for (std::size_t i = 0; i < oa.size(); ++i) EXPECT_EQ(oa[i], ob[i]) << i;
}

TEST(BurstEquivalence, MatchesSinglePacketPathWithFlowCache) {
  expect_equivalent(true);
}

TEST(BurstEquivalence, MatchesSinglePacketPathWithoutFlowCache) {
  expect_equivalent(false);
}

// Null slots (already-consumed packets) in a burst must be skipped, and an
// empty burst is a no-op — the kernel's rx ring drain can hand either over.
TEST(BurstEquivalence, SkipsNullSlotsAndEmptyBursts) {
  Rig rig(true);
  rig.core->process_burst({});
  std::vector<pkt::PacketPtr> batch;
  batch.push_back(nullptr);
  batch.push_back(udp(1, "20.0.0.5", 64, 9000));
  batch.push_back(nullptr);
  rig.core->process_burst(batch);
  EXPECT_EQ(rig.core->counters().received, 1u);
  EXPECT_EQ(rig.core->counters().forwarded, 1u);
}

}  // namespace
}  // namespace rp::core

// Tests for the weighted DRR plugin: per-flow isolation, weighted shares,
// the Shreedhar/Varghese fairness bound, soft-state lifecycle, and the
// plugin messages.
#include <gtest/gtest.h>

#include <map>

#include "sched/drr.hpp"
#include "tgen/workload.hpp"

namespace rp::sched {
namespace {

using netbase::Status;

pkt::PacketPtr flow_pkt(std::uint8_t flow, std::size_t payload) {
  pkt::UdpSpec s;
  s.src = netbase::IpAddr(netbase::Ipv4Addr(10, 0, 0, flow));
  s.dst = netbase::IpAddr(netbase::Ipv4Addr(20, 0, 0, 1));
  s.sport = flow;
  s.dport = 80;
  s.payload_len = payload;
  return pkt::build_udp(s);
}

TEST(Drr, RoundRobinIsFairForEqualWeights) {
  DrrInstance::Config cfg;
  cfg.quantum = 500;  // one 500-byte packet per round visit
  DrrInstance d(cfg);
  void* soft[3] = {};
  // Backlog 30 equal-size packets per flow.
  for (int r = 0; r < 30; ++r)
    for (std::uint8_t f = 0; f < 3; ++f)
      ASSERT_TRUE(d.enqueue(flow_pkt(f, 472), &soft[f], 0));

  // Dequeue 30: each flow must get exactly 10 (perfect fairness for equal
  // packet sizes and weights).
  std::map<std::uint16_t, int> served;
  for (int i = 0; i < 30; ++i) {
    auto p = d.dequeue(0);
    ASSERT_NE(p, nullptr);
    ++served[p->key.sport];
  }
  EXPECT_EQ(served[0], 10);
  EXPECT_EQ(served[1], 10);
  EXPECT_EQ(served[2], 10);
}

TEST(Drr, WeightsSplitBandwidthProportionally) {
  DrrInstance::Config cfg;
  cfg.quantum = 500;
  DrrInstance d(cfg);

  // Give flow 2 weight 3 via the plugin message interface.
  plugin::PluginMsg msg;
  msg.custom_name = "setweight";
  msg.args.set("filter", "<10.0.0.2, *, udp, *, *, *>");
  msg.args.set("weight", "3");
  plugin::PluginReply reply;
  ASSERT_EQ(d.handle_message(msg, reply), Status::ok);

  void* soft[3] = {};
  for (int r = 0; r < 40; ++r)
    for (std::uint8_t f = 0; f < 3; ++f)
      ASSERT_TRUE(d.enqueue(flow_pkt(f, 472), &soft[f], 0));

  std::map<std::uint16_t, std::size_t> bytes;
  for (int i = 0; i < 50; ++i) {
    auto p = d.dequeue(0);
    ASSERT_NE(p, nullptr);
    bytes[p->key.sport] += p->size();
  }
  // Flow 2 must receive ~3x the service of flows 0/1.
  ASSERT_GT(bytes[0], 0u);
  double ratio = static_cast<double>(bytes[2]) / bytes[0];
  EXPECT_NEAR(ratio, 3.0, 0.75);
  EXPECT_NEAR(static_cast<double>(bytes[1]) / bytes[0], 1.0, 0.25);
}

TEST(Drr, FairnessBoundHolds) {
  // Shreedhar/Varghese: for backlogged flows with equal weights, the
  // difference in service between any two flows over any interval is
  // bounded by quantum + max packet size.
  DrrInstance::Config cfg;
  cfg.quantum = 1500;
  cfg.per_flow_limit = 2000;
  DrrInstance d(cfg);
  netbase::Rng rng(5);
  constexpr int kFlows = 4;
  void* soft[kFlows] = {};
  // Random packet sizes, heavily backlogged.
  for (int r = 0; r < 200; ++r)
    for (std::uint8_t f = 0; f < kFlows; ++f)
      ASSERT_TRUE(
          d.enqueue(flow_pkt(f, 28 + rng.below(1400)), &soft[f], 0));

  std::map<std::uint16_t, std::int64_t> bytes;
  for (int i = 0; i < 400; ++i) {
    auto p = d.dequeue(0);
    ASSERT_NE(p, nullptr);
    bytes[p->key.sport] += static_cast<std::int64_t>(p->size());
  }
  std::int64_t lo = INT64_MAX, hi = 0;
  for (auto& [f, b] : bytes) {
    lo = std::min(lo, b);
    hi = std::max(hi, b);
  }
  EXPECT_LE(hi - lo, 1500 + 1456 + 1500);  // quantum + max pkt + slack
}

TEST(Drr, PerFlowLimitDropsOnlyThatFlow) {
  DrrInstance::Config cfg;
  cfg.per_flow_limit = 4;
  DrrInstance d(cfg);
  void* a = nullptr;
  void* b = nullptr;
  for (int i = 0; i < 10; ++i) d.enqueue(flow_pkt(1, 100), &a, 0);
  EXPECT_EQ(d.drops(), 6u);
  EXPECT_TRUE(d.enqueue(flow_pkt(2, 100), &b, 0));  // other flow unaffected
  EXPECT_EQ(d.backlog_packets(), 5u);
}

TEST(Drr, FlowRemovedFreesEmptyQueueImmediately) {
  DrrInstance d({});
  void* soft = nullptr;
  d.enqueue(flow_pkt(1, 100), &soft, 0);
  ASSERT_NE(soft, nullptr);
  ASSERT_NE(d.dequeue(0), nullptr);
  EXPECT_EQ(d.queue_count(), 1u);
  d.flow_removed(soft);
  EXPECT_EQ(d.queue_count(), 0u);
}

TEST(Drr, FlowRemovedWithBacklogDrainsThenFrees) {
  DrrInstance d({});
  void* soft = nullptr;
  d.enqueue(flow_pkt(1, 100), &soft, 0);
  d.enqueue(flow_pkt(1, 100), &soft, 0);
  d.flow_removed(soft);          // flow entry recycled while backlogged
  EXPECT_EQ(d.queue_count(), 1u);  // queue survives to drain
  EXPECT_NE(d.dequeue(0), nullptr);
  EXPECT_NE(d.dequeue(0), nullptr);
  EXPECT_EQ(d.dequeue(0), nullptr);
  EXPECT_EQ(d.queue_count(), 0u);  // freed once drained
}

TEST(Drr, NullSoftSlotTrafficGetsSelfClassifiedQueue) {
  // Port-default traffic (no flow-table binding) still gets per-flow
  // isolation: the plugin keys a queue on the exact flow key itself.
  DrrInstance d({});
  ASSERT_TRUE(d.enqueue(flow_pkt(9, 64), nullptr, 0));
  ASSERT_TRUE(d.enqueue(flow_pkt(9, 64), nullptr, 0));
  ASSERT_TRUE(d.enqueue(flow_pkt(8, 64), nullptr, 0));
  EXPECT_EQ(d.queue_count(), 2u);  // one queue per distinct flow
  auto p = d.dequeue(0);
  ASSERT_NE(p, nullptr);
  // The queue persists for future packets of the flow.
  while (d.dequeue(0)) {
  }
  EXPECT_EQ(d.queue_count(), 2u);
}

TEST(Drr, EmptyDequeueReturnsNull) {
  DrrInstance d({});
  EXPECT_EQ(d.dequeue(0), nullptr);
  EXPECT_TRUE(d.empty());
}

TEST(Drr, LargePacketWaitsForDeficitAccumulation) {
  // quantum 500 and a 1000-byte packet: the flow needs two round visits.
  DrrInstance::Config cfg;
  cfg.quantum = 500;
  DrrInstance d(cfg);
  void* a = nullptr;
  void* b = nullptr;
  d.enqueue(flow_pkt(1, 972), &a, 0);  // 1000 bytes on the wire
  d.enqueue(flow_pkt(2, 72), &b, 0);   // 100 bytes
  // First dequeue: flow 1 lacks deficit (500 < 1000), so flow 2 goes first.
  auto p1 = d.dequeue(0);
  ASSERT_NE(p1, nullptr);
  EXPECT_EQ(p1->key.sport, 2);
  auto p2 = d.dequeue(0);
  ASSERT_NE(p2, nullptr);
  EXPECT_EQ(p2->key.sport, 1);  // second visit: deficit 1000 suffices
}

TEST(Drr, StatsMessage) {
  DrrInstance d({});
  void* soft = nullptr;
  d.enqueue(flow_pkt(1, 100), &soft, 0);
  plugin::PluginMsg msg;
  msg.custom_name = "stats";
  plugin::PluginReply reply;
  ASSERT_EQ(d.handle_message(msg, reply), Status::ok);
  EXPECT_NE(reply.text.find("queues=1"), std::string::npos);
  EXPECT_NE(reply.text.find("backlog_pkts=1"), std::string::npos);
}

TEST(Drr, SetWeightRejectsBadArgs) {
  DrrInstance d({});
  plugin::PluginMsg msg;
  msg.custom_name = "setweight";
  plugin::PluginReply reply;
  EXPECT_EQ(d.handle_message(msg, reply), Status::invalid_argument);
  msg.args.set("filter", "garbage");
  msg.args.set("weight", "2");
  EXPECT_EQ(d.handle_message(msg, reply), Status::invalid_argument);
  msg.args.set("filter", "<*, *, udp, *, *, *>");
  msg.args.set("weight", "0");
  EXPECT_EQ(d.handle_message(msg, reply), Status::invalid_argument);
}

}  // namespace
}  // namespace rp::sched

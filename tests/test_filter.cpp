// Unit tests for Filter: parsing (the paper's six-tuple notation), matching
// semantics, and the specificity order used by best-matching-filter.
#include <gtest/gtest.h>

#include "aiu/filter.hpp"

namespace rp::aiu {
namespace {

using netbase::IpAddr;
using netbase::Ipv4Addr;

pkt::FlowKey key(const char* src, const char* dst, std::uint8_t proto,
                 std::uint16_t sp, std::uint16_t dp, pkt::IfIndex ifc = 0) {
  return {*IpAddr::parse(src), *IpAddr::parse(dst), proto, sp, dp, ifc};
}

TEST(PortSpec, MatchCoverIntersect) {
  auto any = PortSpec::any();
  auto web = PortSpec::exact(80);
  PortSpec low{0, 1023};
  EXPECT_TRUE(any.matches(4242));
  EXPECT_TRUE(web.matches(80));
  EXPECT_FALSE(web.matches(81));
  EXPECT_TRUE(any.covers(web));
  EXPECT_TRUE(low.covers(web));
  EXPECT_FALSE(web.covers(low));
  PortSpec a{0, 100}, b{50, 150};
  EXPECT_TRUE(a.overlaps(b));
  EXPECT_EQ(a.intersect(b), (PortSpec{50, 100}));
  EXPECT_FALSE(a.overlaps(PortSpec{200, 300}));
}

TEST(PortSpec, ParseForms) {
  EXPECT_EQ(*PortSpec::parse("*"), PortSpec::any());
  EXPECT_EQ(*PortSpec::parse("80"), PortSpec::exact(80));
  EXPECT_EQ(*PortSpec::parse("1024-2047"), (PortSpec{1024, 2047}));
  EXPECT_FALSE(PortSpec::parse("99999"));
  EXPECT_FALSE(PortSpec::parse("10-5"));
  EXPECT_FALSE(PortSpec::parse("abc"));
}

TEST(Filter, ParsePaperNotation) {
  // The paper's example: <129.*.*.*, 192.94.233.10, TCP, *, *, *>
  auto f = Filter::parse("<129.0.0.0/8, 192.94.233.10, TCP, *, *, *>");
  ASSERT_TRUE(f);
  EXPECT_EQ(f->src.to_string(), "129.0.0.0/8");
  EXPECT_EQ(f->dst.len, 32);
  EXPECT_FALSE(f->proto.wild);
  EXPECT_EQ(f->proto.value, 6);
  EXPECT_TRUE(f->sport.is_wild());
  EXPECT_TRUE(f->in_iface.wild);

  EXPECT_TRUE(f->matches(key("129.1.2.3", "192.94.233.10", 6, 1, 2)));
  EXPECT_FALSE(f->matches(key("130.1.2.3", "192.94.233.10", 6, 1, 2)));
  EXPECT_FALSE(f->matches(key("129.1.2.3", "192.94.233.11", 6, 1, 2)));
  EXPECT_FALSE(f->matches(key("129.1.2.3", "192.94.233.10", 17, 1, 2)));
}

TEST(Filter, ParseSpaceSeparated) {
  auto f = Filter::parse("10.0.0.0/8 * udp 53 1024-65535 if2");
  ASSERT_TRUE(f);
  EXPECT_EQ(f->src.len, 8);
  EXPECT_EQ(f->dst.len, 0);
  EXPECT_EQ(f->proto.value, 17);
  EXPECT_EQ(f->sport, PortSpec::exact(53));
  EXPECT_EQ(f->dport, (PortSpec{1024, 65535}));
  EXPECT_FALSE(f->in_iface.wild);
  EXPECT_EQ(f->in_iface.value, 2);
}

TEST(Filter, ParseRejectsBadInput) {
  EXPECT_FALSE(Filter::parse(""));
  EXPECT_FALSE(Filter::parse("1.2.3.4 5.6.7.8 tcp * *"));        // 5 fields
  EXPECT_FALSE(Filter::parse("1.2.3.4 5.6.7.8 tcp * * * extra"));
  EXPECT_FALSE(Filter::parse("x.y.z.w * tcp * * *"));
  EXPECT_FALSE(Filter::parse("* * frob * * *"));
  EXPECT_FALSE(Filter::parse("* * tcp 99999 * *"));
}

TEST(Filter, RoundTripThroughToString) {
  const char* specs[] = {
      "<129.0.0.0/8, 192.94.233.10, 6, *, *, *>",
      "<*, *, 17, 53, 1024-2047, 3>",
      "<2001:db8::/32, *, *, *, *, *>",
  };
  for (const char* s : specs) {
    auto f = Filter::parse(s);
    ASSERT_TRUE(f) << s;
    auto g = Filter::parse(f->to_string());
    ASSERT_TRUE(g) << f->to_string();
    EXPECT_EQ(*f, *g) << s;
  }
}

TEST(Filter, FullySpecified) {
  auto full = Filter::parse("1.2.3.4 5.6.7.8 tcp 1000 80 0");
  ASSERT_TRUE(full);
  EXPECT_TRUE(full->fully_specified());
  auto partial = Filter::parse("1.2.3.4 5.6.7.8 tcp 1000 80 *");
  EXPECT_FALSE(partial->fully_specified());
  auto prefixed = Filter::parse("1.2.0.0/16 5.6.7.8 tcp 1000 80 0");
  EXPECT_FALSE(prefixed->fully_specified());
}

TEST(Filter, SpecificityIsLexicographicByField) {
  auto a = *Filter::parse("10.0.0.0/8 * * * * *");
  auto b = *Filter::parse("10.1.0.0/16 * * * * *");
  EXPECT_GT(compare_specificity(b, a), 0);  // longer src wins
  EXPECT_LT(compare_specificity(a, b), 0);

  // src dominates dst: /24 src + wild dst beats /8 src + /32 dst.
  auto c = *Filter::parse("10.1.1.0/24 * * * * *");
  auto d = *Filter::parse("10.0.0.0/8 9.9.9.9 * * * *");
  EXPECT_GT(compare_specificity(c, d), 0);

  // proto beats ports.
  auto e = *Filter::parse("* * tcp * * *");
  auto f = *Filter::parse("* * * 80 80 *");
  EXPECT_GT(compare_specificity(e, f), 0);

  // narrower port range is more specific.
  auto g = *Filter::parse("* * * 0-100 * *");
  auto h = *Filter::parse("* * * 50-60 * *");
  EXPECT_GT(compare_specificity(h, g), 0);

  EXPECT_EQ(compare_specificity(a, a), 0);
}

TEST(Filter, V6Matching) {
  auto f = *Filter::parse("2001:db8::/32 * udp * * *");
  EXPECT_TRUE(f.matches(key("2001:db8::1", "2001:db8::2", 17, 1, 2)));
  EXPECT_FALSE(f.matches(key("2002:db8::1", "2001:db8::2", 17, 1, 2)));
  // A v4 key does not match a v6 prefix.
  EXPECT_FALSE(f.matches(key("1.2.3.4", "5.6.7.8", 17, 1, 2)));
}

TEST(Filter, WildcardMatchesBothFamilies) {
  auto f = *Filter::parse("* * * * * *");
  EXPECT_TRUE(f.matches(key("1.2.3.4", "5.6.7.8", 6, 1, 2)));
  EXPECT_TRUE(f.matches(key("2001::1", "2001::2", 6, 1, 2)));
}

}  // namespace
}  // namespace rp::aiu

// Property-based sweeps (parameterized gtest):
//  * classifier equivalence DAG vs linear across many random seeds/shapes,
//  * end-to-end flow conservation through the router under random mixes,
//  * DRR fairness bound across weights and packet-size distributions,
//  * crypto round-trip properties on random inputs.
#include <gtest/gtest.h>

#include <map>
#include <numeric>

#include "aiu/filter_table.hpp"
#include "core/router.hpp"
#include "ipsec/chacha20.hpp"
#include "ipsec/hmac.hpp"
#include "mgmt/register_all.hpp"
#include "mgmt/rplib.hpp"
#include "sched/drr.hpp"
#include "tgen/workload.hpp"

namespace rp {
namespace {

using netbase::Rng;

// ---------------------------------------------------------------------------
// Classifier equivalence across seeds with varied wildcard density.

class ClassifierProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ClassifierProperty, DagEquivalentToLinearScan) {
  const std::uint64_t seed = GetParam();
  Rng shape(seed);
  tgen::FilterSetSpec spec;
  spec.count = 20 + shape.below(80);
  spec.seed = seed * 31 + 1;
  spec.ver = shape.chance(0.3) ? netbase::IpVersion::v6
                               : netbase::IpVersion::v4;
  spec.p_wild_src = shape.uniform01() * 0.5;
  spec.p_wild_dst = shape.uniform01() * 0.5;
  spec.p_wild_proto = shape.uniform01();
  spec.p_port_exact = shape.uniform01() * 0.6;
  spec.p_port_range = shape.uniform01() * 0.3;

  aiu::DagFilterTable dag;
  aiu::LinearFilterTable lin;
  auto filters = tgen::random_filters(spec);
  for (const auto& f : filters) {
    dag.insert(f, nullptr);
    lin.insert(f, nullptr);
  }

  Rng rng(seed ^ 0x5555);
  for (int i = 0; i < 300; ++i) {
    pkt::FlowKey k = (i % 2) ? tgen::random_key(rng, spec.ver)
                             : tgen::matching_key(
                                   filters[rng.below(filters.size())], rng);
    const auto* d = dag.lookup(k);
    const auto* l = lin.lookup(k);
    ASSERT_EQ(d == nullptr, l == nullptr)
        << "seed=" << seed << " key=" << k.to_string();
    if (d && d != l) {
      ASSERT_TRUE(d->filter.matches(k));
      ASSERT_TRUE(l->filter.matches(k));
      ASSERT_EQ(aiu::compare_specificity(d->filter, l->filter), 0)
          << "seed=" << seed << " dag=" << d->filter.to_string()
          << " lin=" << l->filter.to_string();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClassifierProperty,
                         ::testing::Range<std::uint64_t>(1, 21));

// Mutation property: after random removals, the DAG still agrees.
TEST_P(ClassifierProperty, EquivalenceSurvivesRemovals) {
  const std::uint64_t seed = GetParam();
  tgen::FilterSetSpec spec;
  spec.count = 40;
  spec.seed = seed;
  auto filters = tgen::random_filters(spec);

  aiu::DagFilterTable dag;
  aiu::LinearFilterTable lin;
  for (const auto& f : filters) {
    dag.insert(f, nullptr);
    lin.insert(f, nullptr);
  }
  Rng rng(seed + 99);
  for (std::size_t i = 0; i < filters.size(); i += 2) {
    dag.remove(filters[i]);
    lin.remove(filters[i]);
  }
  for (int i = 0; i < 150; ++i) {
    pkt::FlowKey k = tgen::matching_key(filters[rng.below(filters.size())],
                                        rng);
    const auto* d = dag.lookup(k);
    const auto* l = lin.lookup(k);
    ASSERT_EQ(d == nullptr, l == nullptr);
    if (d && l) {
      ASSERT_EQ(aiu::compare_specificity(d->filter, l->filter), 0);
    }
  }
}

// ---------------------------------------------------------------------------
// Router conservation: packets in == packets out + drops, across mixes.

class RouterConservation
    : public ::testing::TestWithParam<std::tuple<std::size_t, double>> {};

TEST_P(RouterConservation, NothingLostOrDuplicated) {
  auto [flows, zipf] = GetParam();
  core::RouterKernel k;
  k.add_interface("in0");
  auto& out = k.add_interface("out0");
  k.routes().add(netbase::IpPrefix{}, {1, {}});  // default route

  std::size_t delivered = 0;
  out.set_tx_sink([&](pkt::PacketPtr p, netbase::SimTime) {
    ASSERT_NE(p, nullptr);
    ++delivered;
  });

  tgen::MixSpec mix;
  mix.n_flows = flows;
  mix.n_packets = 500;
  mix.zipf_s = zipf;
  mix.seed = flows * 17 + static_cast<std::uint64_t>(zipf * 10);
  for (auto& a : tgen::flow_mix(mix)) k.inject(a.t, a.iface, std::move(a.p));
  k.run_to_completion();

  const auto& c = k.core().counters();
  EXPECT_EQ(c.received, 500u);
  EXPECT_EQ(c.forwarded + c.total_drops(), 500u);
  EXPECT_EQ(delivered, c.forwarded);
  // Flow-cache consistency: hits + misses == received.
  const auto& fs = k.aiu().flow_table().stats();
  EXPECT_EQ(fs.hits + fs.misses, 500u);
  EXPECT_EQ(fs.misses, fs.inserts);
}

INSTANTIATE_TEST_SUITE_P(
    Mixes, RouterConservation,
    ::testing::Combine(::testing::Values<std::size_t>(1, 10, 100, 400),
                       ::testing::Values(0.0, 1.0)));

// ---------------------------------------------------------------------------
// DRR fairness bound across weight vectors.

class DrrFairness
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::size_t>> {
};

TEST_P(DrrFairness, WeightedShareWithinBound) {
  auto [weight, quantum] = GetParam();
  sched::DrrInstance::Config cfg;
  cfg.quantum = quantum;
  cfg.per_flow_limit = 4000;
  sched::DrrInstance d(cfg);

  plugin::PluginMsg msg;
  msg.custom_name = "setweight";
  msg.args.set("filter", "<*, *, udp, 2, *, *>");  // sport 2 gets `weight`
  msg.args.set("weight", std::to_string(weight));
  plugin::PluginReply reply;
  ASSERT_EQ(d.handle_message(msg, reply), netbase::Status::ok);

  Rng rng(weight * 1000 + quantum);
  void* soft[2] = {};
  auto mk = [&](std::uint16_t sport) {
    pkt::UdpSpec s;
    s.src = netbase::IpAddr(netbase::Ipv4Addr(10, 0, 0, 1));
    s.dst = netbase::IpAddr(netbase::Ipv4Addr(20, 0, 0, 1));
    s.sport = sport;
    s.dport = 80;
    s.payload_len = 28 + rng.below(1200);
    return pkt::build_udp(s);
  };
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(d.enqueue(mk(1), &soft[0], 0));
    ASSERT_TRUE(d.enqueue(mk(2), &soft[1], 0));
  }

  std::map<std::uint16_t, double> bytes;
  std::size_t served_bytes = 0;
  while (served_bytes < 400'000) {
    auto p = d.dequeue(0);
    ASSERT_NE(p, nullptr);
    bytes[p->key.sport] += static_cast<double>(p->size());
    served_bytes += p->size();
  }
  // Normalized service difference bounded by one round's worth of slack
  // (Shreedhar/Varghese Theorem 2, scaled by total service).
  double norm1 = bytes[1] / 1.0;
  double norm2 = bytes[2] / static_cast<double>(weight);
  double bound = static_cast<double>(quantum) + 1256 + quantum;
  EXPECT_LE(std::abs(norm1 - norm2), bound)
      << "w=" << weight << " q=" << quantum;
}

INSTANTIATE_TEST_SUITE_P(
    Weights, DrrFairness,
    ::testing::Combine(::testing::Values<std::uint32_t>(1, 2, 5, 10),
                       ::testing::Values<std::size_t>(500, 1500, 4000)));

// ---------------------------------------------------------------------------
// Crypto round-trip properties.

class CryptoProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CryptoProperty, ChaChaRoundTripAndHmacSensitivity) {
  Rng rng(GetParam());
  std::vector<std::uint8_t> key(32), nonce(12), data(1 + rng.below(2000));
  for (auto& b : key) b = static_cast<std::uint8_t>(rng.next());
  for (auto& b : nonce) b = static_cast<std::uint8_t>(rng.next());
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.next());
  auto orig = data;

  ipsec::ChaCha20 enc(key, nonce);
  enc.crypt(data.data(), data.size());
  if (data.size() > 8) {
    EXPECT_NE(data, orig);  // overwhelmingly likely
  }
  ipsec::ChaCha20 dec(key, nonce);
  dec.crypt(data.data(), data.size());
  EXPECT_EQ(data, orig);

  // HMAC changes completely under a single bit flip.
  auto mac1 = ipsec::HmacSha256::mac(key, orig);
  orig[rng.below(orig.size())] ^= 1 << rng.below(8);
  auto mac2 = ipsec::HmacSha256::mac(key, orig);
  EXPECT_NE(mac1, mac2);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CryptoProperty,
                         ::testing::Range<std::uint64_t>(1, 11));

}  // namespace
}  // namespace rp

// Tests for the RSVP daemon: PATH/RESV soft state, admission against the
// sender TSpec, refresh semantics, timeout-driven teardown, and the kernel
// filter/weight state it programs through the Router Plugin Library.
#include <gtest/gtest.h>

#include "core/router.hpp"
#include "mgmt/pmgr.hpp"
#include "mgmt/register_all.hpp"
#include "mgmt/rsvp.hpp"

namespace rp::mgmt {
namespace {

using netbase::SimTime;

class RsvpTest : public ::testing::Test {
 protected:
  RsvpTest() : lib_(kernel_), pmgr_(lib_) {
    register_builtin_modules();
    kernel_.add_interface("if0");
    kernel_.add_interface("if1");
    auto r = pmgr_.run_script(
        "route add 20.0.0.0/8 if1\nmodload drr\ncreate drr\nattach drr 1 if1");
    EXPECT_TRUE(r.ok()) << r.text;

    cfg_.refresh_period = netbase::kNsPerSec;
    cfg_.lifetime_refreshes = 3;
    cfg_.weight_unit_bps = 1'000'000;
  }

  std::size_t sched_filters() {
    auto* t = kernel_.aiu().filter_table(plugin::PluginType::sched);
    return t ? t->size() : 0;
  }

  core::RouterKernel kernel_;
  RouterPluginLib lib_;
  PluginManager pmgr_;
  RsvpDaemon::Config cfg_;

  RsvpSession session_{*netbase::IpAddr::parse("20.0.0.1"), 17, 5004};
  RsvpSender sender_{*netbase::IpAddr::parse("10.0.0.1"), 7000};
};

TEST_F(RsvpTest, ResvRequiresPathState) {
  RsvpDaemon rsvp(lib_, cfg_);
  EXPECT_EQ(rsvp.resv(session_, sender_, 2'000'000, 0), Status::not_found);
  ASSERT_EQ(rsvp.path(session_, sender_, {5'000'000, 8192}, 0), Status::ok);
  EXPECT_EQ(rsvp.resv(session_, sender_, 2'000'000, 0), Status::ok);
  EXPECT_EQ(rsvp.path_count(), 1u);
  EXPECT_EQ(rsvp.resv_count(), 1u);
  EXPECT_EQ(sched_filters(), 1u);
}

TEST_F(RsvpTest, AdmissionAgainstTspec) {
  RsvpDaemon rsvp(lib_, cfg_);
  rsvp.path(session_, sender_, {5'000'000, 8192}, 0);
  // More than the sender's TSpec: rejected.
  EXPECT_EQ(rsvp.resv(session_, sender_, 9'000'000, 0),
            Status::resource_limit);
  EXPECT_EQ(rsvp.resv(session_, sender_, 0, 0), Status::resource_limit);
  EXPECT_EQ(sched_filters(), 0u);
  EXPECT_EQ(rsvp.resv(session_, sender_, 5'000'000, 0), Status::ok);
}

TEST_F(RsvpTest, FfFilterShape) {
  auto f = RsvpDaemon::filter_for(session_, sender_);
  EXPECT_TRUE(f.fully_specified() || f.in_iface.wild);
  EXPECT_EQ(f.src.to_string(), "10.0.0.1/32");
  EXPECT_EQ(f.dst.to_string(), "20.0.0.1/32");
  EXPECT_EQ(f.proto.value, 17);
  EXPECT_EQ(f.sport, aiu::PortSpec::exact(7000));
  EXPECT_EQ(f.dport, aiu::PortSpec::exact(5004));
}

TEST_F(RsvpTest, SoftStateExpiresWithoutRefresh) {
  RsvpDaemon rsvp(lib_, cfg_);
  rsvp.path(session_, sender_, {5'000'000, 8192}, 0);
  rsvp.resv(session_, sender_, 2'000'000, 0);
  ASSERT_EQ(sched_filters(), 1u);

  // Inside the lifetime (3 refresh periods): state survives.
  EXPECT_EQ(rsvp.tick(2 * netbase::kNsPerSec), 0u);
  EXPECT_EQ(rsvp.resv_count(), 1u);

  // Past the lifetime with no refresh: everything evaporates, including
  // the kernel filter.
  EXPECT_GE(rsvp.tick(4 * netbase::kNsPerSec), 2u);
  EXPECT_EQ(rsvp.path_count(), 0u);
  EXPECT_EQ(rsvp.resv_count(), 0u);
  EXPECT_EQ(sched_filters(), 0u);
}

TEST_F(RsvpTest, RefreshKeepsStateAlive) {
  RsvpDaemon rsvp(lib_, cfg_);
  SimTime t = 0;
  rsvp.path(session_, sender_, {5'000'000, 8192}, t);
  rsvp.resv(session_, sender_, 2'000'000, t);
  // Refresh every second for 10 seconds; nothing may expire.
  for (int i = 1; i <= 10; ++i) {
    t = i * netbase::kNsPerSec;
    EXPECT_EQ(rsvp.path(session_, sender_, {5'000'000, 8192}, t), Status::ok);
    EXPECT_EQ(rsvp.resv(session_, sender_, 2'000'000, t), Status::ok);
    EXPECT_EQ(rsvp.tick(t), 0u);
  }
  EXPECT_EQ(rsvp.resv_count(), 1u);
  EXPECT_EQ(sched_filters(), 1u);
}

TEST_F(RsvpTest, ExplicitTears) {
  RsvpDaemon rsvp(lib_, cfg_);
  rsvp.path(session_, sender_, {5'000'000, 8192}, 0);
  rsvp.resv(session_, sender_, 1'000'000, 0);

  EXPECT_EQ(rsvp.resv_tear(session_, sender_), Status::ok);
  EXPECT_EQ(sched_filters(), 0u);
  EXPECT_EQ(rsvp.resv_tear(session_, sender_), Status::not_found);
  EXPECT_EQ(rsvp.path_count(), 1u);  // path state independent

  // PATHTEAR kills a dependent reservation too.
  rsvp.resv(session_, sender_, 1'000'000, 0);
  ASSERT_EQ(sched_filters(), 1u);
  EXPECT_EQ(rsvp.path_tear(session_, sender_), Status::ok);
  EXPECT_EQ(rsvp.resv_count(), 0u);
  EXPECT_EQ(sched_filters(), 0u);
}

TEST_F(RsvpTest, MultipleSendersSameSession) {
  RsvpDaemon rsvp(lib_, cfg_);
  RsvpSender s2{*netbase::IpAddr::parse("10.0.0.2"), 7000};
  rsvp.path(session_, sender_, {5'000'000, 8192}, 0);
  rsvp.path(session_, s2, {3'000'000, 8192}, 0);
  EXPECT_EQ(rsvp.resv(session_, sender_, 4'000'000, 0), Status::ok);
  EXPECT_EQ(rsvp.resv(session_, s2, 3'000'000, 0), Status::ok);
  EXPECT_EQ(rsvp.resv_count(), 2u);
  EXPECT_EQ(sched_filters(), 2u);  // one FF filter per sender
}

}  // namespace
}  // namespace rp::mgmt

// Tests for the three BMP (longest-prefix-match) engines, including a
// parameterized cross-engine agreement sweep against a brute-force
// reference, and the memory-access bounds the paper's Table 2 relies on.
#include <gtest/gtest.h>

#include <map>
#include <optional>

#include "bmp/cpe.hpp"
#include "bmp/lpm.hpp"
#include "bmp/patricia.hpp"
#include "bmp/waldvogel.hpp"
#include "netbase/memaccess.hpp"
#include "tgen/workload.hpp"

namespace rp::bmp {
namespace {

using netbase::IpVersion;
using netbase::MemAccess;
using netbase::Rng;
using netbase::U128;

U128 v4key(std::uint8_t a, std::uint8_t b, std::uint8_t c, std::uint8_t d) {
  return netbase::IpAddr(netbase::Ipv4Addr(a, b, c, d)).key();
}

class EngineTest : public ::testing::TestWithParam<const char*> {};

TEST_P(EngineTest, BasicInsertLookupRemove) {
  auto e = make_lpm_engine(GetParam(), 32);
  ASSERT_TRUE(e);
  EXPECT_EQ(e->insert(v4key(10, 0, 0, 0), 8, 100), Status::ok);
  EXPECT_EQ(e->insert(v4key(10, 1, 0, 0), 16, 200), Status::ok);
  EXPECT_EQ(e->insert(v4key(10, 1, 2, 3), 32, 300), Status::ok);
  EXPECT_EQ(e->size(), 3u);

  LpmMatch m;
  ASSERT_TRUE(e->lookup(v4key(10, 9, 9, 9), m));
  EXPECT_EQ(m.value, 100u);
  EXPECT_EQ(m.plen, 8);
  ASSERT_TRUE(e->lookup(v4key(10, 1, 9, 9), m));
  EXPECT_EQ(m.value, 200u);
  ASSERT_TRUE(e->lookup(v4key(10, 1, 2, 3), m));
  EXPECT_EQ(m.value, 300u);
  EXPECT_FALSE(e->lookup(v4key(11, 0, 0, 1), m));

  EXPECT_EQ(e->remove(v4key(10, 1, 0, 0), 16), Status::ok);
  ASSERT_TRUE(e->lookup(v4key(10, 1, 9, 9), m));
  EXPECT_EQ(m.value, 100u);  // falls back to /8
  EXPECT_EQ(e->remove(v4key(10, 1, 0, 0), 16), Status::not_found);
}

TEST_P(EngineTest, DefaultRoute) {
  auto e = make_lpm_engine(GetParam(), 32);
  EXPECT_EQ(e->insert({}, 0, 7), Status::ok);
  LpmMatch m;
  ASSERT_TRUE(e->lookup(v4key(1, 2, 3, 4), m));
  EXPECT_EQ(m.value, 7u);
  EXPECT_EQ(m.plen, 0);
  e->insert(v4key(1, 0, 0, 0), 8, 9);
  ASSERT_TRUE(e->lookup(v4key(1, 2, 3, 4), m));
  EXPECT_EQ(m.value, 9u);
}

TEST_P(EngineTest, InsertOverwritesValue) {
  auto e = make_lpm_engine(GetParam(), 32);
  e->insert(v4key(10, 0, 0, 0), 8, 1);
  e->insert(v4key(10, 0, 0, 0), 8, 2);
  LpmMatch m;
  ASSERT_TRUE(e->lookup(v4key(10, 0, 0, 1), m));
  EXPECT_EQ(m.value, 2u);
}

TEST_P(EngineTest, Ipv6Prefixes) {
  auto e = make_lpm_engine(GetParam(), 128);
  auto p1 = *netbase::IpPrefix::parse("2001:db8::/32");
  auto p2 = *netbase::IpPrefix::parse("2001:db8:1::/48");
  e->insert(p1.addr.key(), p1.len, 1);
  e->insert(p2.addr.key(), p2.len, 2);
  LpmMatch m;
  auto a1 = netbase::IpAddr(*netbase::Ipv6Addr::parse("2001:db8:2::5"));
  ASSERT_TRUE(e->lookup(a1.key(), m));
  EXPECT_EQ(m.value, 1u);
  auto a2 = netbase::IpAddr(*netbase::Ipv6Addr::parse("2001:db8:1::5"));
  ASSERT_TRUE(e->lookup(a2.key(), m));
  EXPECT_EQ(m.value, 2u);
}

// Cross-engine agreement with a brute-force reference on random databases.
TEST_P(EngineTest, AgreesWithReferenceV4) {
  auto e = make_lpm_engine(GetParam(), 32);
  auto prefixes = tgen::random_prefixes(500, IpVersion::v4, 11);
  std::map<std::pair<U128, unsigned>, LpmValue> ref;
  LpmValue next = 1;
  for (const auto& p : prefixes) {
    ref[{p.addr.key(), p.len}] = next;
    e->insert(p.addr.key(), p.len, next);
    ++next;
  }
  auto ref_lookup = [&](U128 key) -> std::optional<LpmMatch> {
    std::optional<LpmMatch> best;
    for (const auto& [kp, v] : ref) {
      if ((key & U128::prefix_mask(kp.second)) == kp.first) {
        if (!best || kp.second > best->plen)
          best = LpmMatch{v, static_cast<std::uint8_t>(kp.second)};
      }
    }
    return best;
  };

  Rng rng(77);
  for (int i = 0; i < 2000; ++i) {
    // Half the probes are random; half are specializations of a prefix so
    // they actually hit.
    U128 key;
    if (i % 2) {
      key = netbase::IpAddr(
                netbase::Ipv4Addr(static_cast<std::uint32_t>(rng.next())))
                .key();
    } else {
      const auto& p = prefixes[rng.below(prefixes.size())];
      U128 mask = U128::prefix_mask(p.len);
      U128 rnd = netbase::IpAddr(
                     netbase::Ipv4Addr(static_cast<std::uint32_t>(rng.next())))
                     .key();
      key = (p.addr.key() & mask) | (rnd & ~mask);
    }
    auto want = ref_lookup(key);
    LpmMatch got;
    bool found = e->lookup(key, got);
    ASSERT_EQ(found, want.has_value());
    if (want) {
      EXPECT_EQ(got.plen, want->plen);
      EXPECT_EQ(got.value, want->value);
    }
  }
}

TEST_P(EngineTest, RemoveHalfStaysConsistent) {
  auto e = make_lpm_engine(GetParam(), 32);
  auto prefixes = tgen::random_prefixes(200, IpVersion::v4, 13);
  std::map<std::pair<U128, unsigned>, LpmValue> ref;
  for (std::size_t i = 0; i < prefixes.size(); ++i) {
    const auto& p = prefixes[i];
    ref[{p.addr.key(), p.len}] = static_cast<LpmValue>(i);
    e->insert(p.addr.key(), p.len, static_cast<LpmValue>(i));
  }
  // Remove every other distinct prefix.
  std::size_t n = 0;
  for (auto it = ref.begin(); it != ref.end();) {
    if (n++ % 2 == 0) {
      EXPECT_EQ(e->remove(it->first.first,
                          static_cast<std::uint8_t>(it->first.second)),
                Status::ok);
      it = ref.erase(it);
    } else {
      ++it;
    }
  }
  Rng rng(99);
  for (int i = 0; i < 500; ++i) {
    U128 key = netbase::IpAddr(
                   netbase::Ipv4Addr(static_cast<std::uint32_t>(rng.next())))
                   .key();
    std::optional<LpmMatch> want;
    for (const auto& [kp, v] : ref) {
      if ((key & U128::prefix_mask(kp.second)) == kp.first)
        if (!want || kp.second > want->plen)
          want = LpmMatch{v, static_cast<std::uint8_t>(kp.second)};
    }
    LpmMatch got;
    ASSERT_EQ(e->lookup(key, got), want.has_value());
    if (want) {
      EXPECT_EQ(got.value, want->value);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllEngines, EngineTest,
                         ::testing::Values("patricia", "bsl", "cpe"));

TEST(WaldvogelBsl, ProbeBoundAllLengthsPresent) {
  // Binary search over n distinct lengths costs at most ceil(log2(n+1))
  // probes: 6 when every IPv4 length 1..32 is populated.
  WaldvogelBsl e(32);
  Rng rng(5);
  for (unsigned len = 1; len <= 32; ++len)
    for (int i = 0; i < 8; ++i)
      e.insert(U128{rng.next(), 0} & U128::prefix_mask(len), len, len);
  EXPECT_LE(e.max_probes(), 6u);

  LpmMatch m;
  e.lookup(U128{rng.next(), 0}, m);  // force rebuild outside measurement
  for (int i = 0; i < 100; ++i) {
    MemAccess::reset();
    e.lookup(U128{rng.next(), 0}, m);
    EXPECT_LE(MemAccess::total(), 6u);
  }
}

TEST(WaldvogelBsl, ProbeBoundRealisticLengths) {
  // Real filter databases use prefix lengths 8..32 (25 distinct): at most
  // 5 probes — the paper's Table 2 accounting (2 * log2(32)/2 = 10 for two
  // IPv4 address lookups).
  WaldvogelBsl e(32);
  Rng rng(51);
  for (unsigned len = 8; len <= 32; ++len)
    for (int i = 0; i < 8; ++i)
      e.insert(U128{rng.next(), 0} & U128::prefix_mask(len), len, len);
  EXPECT_LE(e.max_probes(), 5u);
  LpmMatch m;
  e.lookup(U128{rng.next(), 0}, m);
  for (int i = 0; i < 100; ++i) {
    MemAccess::reset();
    e.lookup(U128{rng.next(), 0}, m);
    EXPECT_LE(MemAccess::total(), 5u);
  }
}

TEST(WaldvogelBsl, Ipv6ProbeBound) {
  // Realistic IPv6 filter lengths 16..64 (49 distinct): at most 6 probes;
  // the paper's 7-per-address (log2(128)) is the all-lengths upper bound.
  WaldvogelBsl e(128);
  Rng rng(6);
  for (unsigned len = 16; len <= 64; ++len)
    e.insert(U128{rng.next(), rng.next()} & U128::prefix_mask(len), len, len);
  EXPECT_LE(e.max_probes(), 6u);
  LpmMatch m;
  e.lookup(U128{1, 1}, m);
  for (int i = 0; i < 100; ++i) {
    MemAccess::reset();
    e.lookup(U128{rng.next(), rng.next()}, m);
    EXPECT_LE(MemAccess::total(), 7u);
  }
}

TEST(CpeTrie, AccessBoundIsLevels) {
  CpeTrie e(32, 8);
  auto prefixes = tgen::random_prefixes(300, IpVersion::v4, 21);
  for (std::size_t i = 0; i < prefixes.size(); ++i)
    e.insert(prefixes[i].addr.key(), prefixes[i].len,
             static_cast<LpmValue>(i));
  Rng rng(22);
  LpmMatch m;
  for (int i = 0; i < 200; ++i) {
    MemAccess::reset();
    e.lookup(U128{rng.next(), 0}, m);
    EXPECT_LE(MemAccess::total(), 4u);  // 32/8 levels
  }
}

TEST(Patricia, DepthBoundedByWidth) {
  PatriciaTrie e(32);
  auto prefixes = tgen::random_prefixes(1000, IpVersion::v4, 31);
  for (std::size_t i = 0; i < prefixes.size(); ++i)
    e.insert(prefixes[i].addr.key(), prefixes[i].len,
             static_cast<LpmValue>(i));
  EXPECT_LE(e.depth(), 33u);
}

TEST(EngineFactory, UnknownNameIsNull) {
  EXPECT_EQ(make_lpm_engine("nope", 32), nullptr);
}

}  // namespace
}  // namespace rp::bmp

// Tests for the extension features: IPv4 fragmentation at the output MTU,
// the periodic flow-table sweep in the router kernel, and the TCP
// congestion-backoff monitoring plugin.
#include <gtest/gtest.h>

#include "core/router.hpp"
#include "mgmt/register_all.hpp"
#include "mgmt/rplib.hpp"
#include "pkt/builder.hpp"
#include "pkt/headers.hpp"
#include "stats/tcpmon_plugin.hpp"

namespace rp {
namespace {

using netbase::SimTime;

pkt::PacketPtr big_udp(std::size_t payload, bool df = false) {
  pkt::UdpSpec s;
  s.src = *netbase::IpAddr::parse("10.0.0.1");
  s.dst = *netbase::IpAddr::parse("20.0.0.1");
  s.sport = 9;
  s.dport = 10;
  s.payload_len = payload;
  s.payload_fill = 0xa5;
  auto p = pkt::build_udp(s);
  if (df) {
    p->data()[6] = 0x40;  // DF
    pkt::Ipv4Header::finalize_checksum(p->data(), 20);
  }
  return p;
}

TEST(Fragmentation, SplitsAtOutputMtuAndReassembles) {
  core::RouterKernel k;
  k.add_interface("in0");
  auto& out = k.interfaces().add("out0", 155'000'000, 0, 1024);
  out.set_mtu(576);
  k.routes().add(*netbase::IpPrefix::parse("20.0.0.0/8"), {1, {}});

  std::vector<pkt::PacketPtr> wire;
  out.set_tx_sink(
      [&](pkt::PacketPtr p, SimTime) { wire.push_back(std::move(p)); });

  const std::size_t payload = 1400;  // 1428-byte packet
  k.inject(0, 0, big_udp(payload));
  k.run_to_completion();

  ASSERT_GE(wire.size(), 3u);  // 1408 bytes of L3 payload / 552 -> 3 frags
  EXPECT_EQ(k.core().counters().fragments_created, wire.size());

  // Validate and reassemble.
  std::vector<std::uint8_t> reassembled(1408);
  std::size_t got_bytes = 0;
  bool saw_last = false;
  for (const auto& f : wire) {
    ASSERT_LE(f->size(), 576u);
    pkt::Ipv4Header h;
    ASSERT_TRUE(h.parse(f->bytes()));
    EXPECT_TRUE(pkt::Ipv4Header::verify_checksum({f->data(), 20}));
    const std::size_t off = std::size_t{h.frag_off} * 8;
    const std::size_t len = f->size() - 20;
    ASSERT_LE(off + len, reassembled.size());
    std::memcpy(reassembled.data() + off, f->data() + 20, len);
    got_bytes += len;
    if ((h.flags & 0x1) == 0 && h.frag_off != 0) saw_last = true;
    if (h.frag_off != 0) {
      EXPECT_EQ(off % 8, 0u);
    }
  }
  EXPECT_TRUE(saw_last);
  EXPECT_EQ(got_bytes, 1408u);
  // Payload content must survive fragmentation (UDP header + fill bytes).
  auto original = big_udp(payload);
  EXPECT_EQ(0, std::memcmp(reassembled.data(), original->data() + 20, 1408));
}

TEST(Fragmentation, DfPacketDroppedWithIcmp) {
  core::RouterKernel::Options opt;
  opt.core.emit_icmp_errors = true;
  core::RouterKernel k(opt);
  k.add_interface("in0");
  auto& out = k.interfaces().add("out0");
  out.set_mtu(576);
  k.routes().add(*netbase::IpPrefix::parse("20.0.0.0/8"), {1, {}});
  k.routes().add(*netbase::IpPrefix::parse("10.0.0.0/8"), {0, {}});

  std::vector<pkt::PacketPtr> back;
  k.interfaces().by_index(0)->set_tx_sink(
      [&](pkt::PacketPtr p, SimTime) { back.push_back(std::move(p)); });

  k.inject(0, 0, big_udp(1400, /*df=*/true));
  k.run_to_completion();

  EXPECT_EQ(k.core().counters().dropped(core::DropReason::too_big), 1u);
  ASSERT_EQ(back.size(), 1u);  // ICMP "frag needed" toward the source
  pkt::IcmpHeader ih;
  ASSERT_TRUE(ih.parse(back[0]->bytes().subspan(20)));
  EXPECT_EQ(ih.type, 3);
  EXPECT_EQ(ih.code, 4);
}

TEST(Fragmentation, Ipv6NeverFragmentedByRouter) {
  core::RouterKernel k;
  k.add_interface("in0");
  auto& out = k.add_interface("out0");
  out.set_mtu(576);
  k.routes().add(*netbase::IpPrefix::parse("2001::/16"), {1, {}});
  pkt::UdpSpec s;
  s.src = *netbase::IpAddr::parse("2001::1");
  s.dst = *netbase::IpAddr::parse("2001::2");
  s.payload_len = 1400;
  k.inject(0, 0, pkt::build_udp(s));
  k.run_to_completion();
  EXPECT_EQ(k.core().counters().dropped(core::DropReason::too_big), 1u);
  EXPECT_EQ(out.counters().tx_packets, 0u);
}

TEST(FlowSweep, IdleFlowsExpireInVirtualTime) {
  core::RouterKernel::Options opt;
  opt.flow_idle_timeout = 5 * netbase::kNsPerSec;
  opt.flow_sweep_interval = netbase::kNsPerSec;
  core::RouterKernel k(opt);
  mgmt::register_builtin_modules();
  k.add_interface("in0");
  k.add_interface("out0");
  k.routes().add(*netbase::IpPrefix::parse("20.0.0.0/8"), {1, {}});
  // A bound plugin so flows actually enter the table.
  mgmt::RouterPluginLib lib(k);
  lib.modload("stats");
  plugin::InstanceId id = plugin::kNoInstance;
  lib.create_instance("stats", {}, id);
  lib.bind("stats", id, "<*, *, *, *, *, *>");

  k.inject(0, 0, big_udp(100));
  k.run_until(netbase::kNsPerMs);
  EXPECT_EQ(k.aiu().flow_table().active(), 1u);

  // Run past the idle timeout: the sweep must clean the entry up.
  k.run_until(10 * netbase::kNsPerSec);
  EXPECT_EQ(k.aiu().flow_table().active(), 0u);
  EXPECT_GE(k.flows_expired(), 1u);
  EXPECT_TRUE(k.idle());  // and the sweep disarms itself (no livelock)
}

// ---------------------------------------------------------------------------

pkt::PacketPtr tcp_seg(std::uint32_t seq, std::size_t len, SimTime arrival) {
  pkt::TcpSpec s;
  s.src = *netbase::IpAddr::parse("10.0.0.1");
  s.dst = *netbase::IpAddr::parse("20.0.0.1");
  s.sport = 100;
  s.dport = 200;
  s.seq = seq;
  s.payload_len = len;
  auto p = pkt::build_tcp(s);
  p->arrival = arrival;
  return p;
}

TEST(TcpMon, CountsRetransmissions) {
  stats::TcpMonInstance mon;
  void* soft = nullptr;
  SimTime t = 0;
  // In-order data: no retransmits.
  for (std::uint32_t seq = 0; seq < 5000; seq += 1000) {
    auto p = tcp_seg(seq, 1000, t += 1'000'000);
    mon.handle_packet(*p, &soft);
  }
  EXPECT_EQ(mon.total_retransmits(), 0u);

  // Retransmission of an old segment.
  auto r = tcp_seg(2000, 1000, t += 1'000'000);
  mon.handle_packet(*r, &soft);
  EXPECT_EQ(mon.total_retransmits(), 1u);
}

TEST(TcpMon, DetectsExponentialBackoff) {
  stats::TcpMonInstance mon;
  void* soft = nullptr;
  auto first = tcp_seg(0, 1000, 0);
  mon.handle_packet(*first, &soft);
  // The same segment retransmitted with doubling gaps: 100ms, 200ms, 400ms,
  // 800ms — classic RTO backoff.
  SimTime t = 0;
  SimTime gap = 100 * netbase::kNsPerMs;
  for (int i = 0; i < 4; ++i) {
    t += gap;
    gap *= 2;
    auto p = tcp_seg(0, 1000, t);
    mon.handle_packet(*p, &soft);
  }
  EXPECT_EQ(mon.total_retransmits(), 4u);
  EXPECT_GE(mon.total_backoff_events(), 1u);

  plugin::PluginMsg msg;
  msg.custom_name = "report";
  plugin::PluginReply reply;
  ASSERT_EQ(mon.handle_message(msg, reply), netbase::Status::ok);
  EXPECT_NE(reply.text.find("rexmt=4"), std::string::npos);
}

TEST(TcpMon, IgnoresNonTcpAndSeparatesFlows) {
  stats::TcpMonInstance mon;
  void* soft_udp = nullptr;
  pkt::UdpSpec u;
  u.src = *netbase::IpAddr::parse("1.1.1.1");
  u.dst = *netbase::IpAddr::parse("2.2.2.2");
  u.payload_len = 100;
  auto up = pkt::build_udp(u);
  mon.handle_packet(*up, &soft_udp);
  EXPECT_EQ(mon.tracked_flows(), 0u);
  EXPECT_EQ(soft_udp, nullptr);

  void* soft = nullptr;
  auto p = tcp_seg(0, 100, 0);
  mon.handle_packet(*p, &soft);
  EXPECT_EQ(mon.tracked_flows(), 1u);
  mon.flow_removed(soft);
  EXPECT_EQ(mon.tracked_flows(), 0u);
}

TEST(TcpMon, SequenceWraparound) {
  stats::TcpMonInstance mon;
  void* soft = nullptr;
  // Near the 2^32 boundary: the next in-order segment wraps; signed
  // sequence arithmetic must not flag it as a retransmission.
  auto a = tcp_seg(0xfffffc00u, 1024, 0);
  mon.handle_packet(*a, &soft);
  auto b = tcp_seg(0x00000000u, 1024, 1'000'000);  // wrapped, in order
  mon.handle_packet(*b, &soft);
  EXPECT_EQ(mon.total_retransmits(), 0u);
}

}  // namespace
}  // namespace rp

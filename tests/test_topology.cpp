// Multi-router topology integration: a three-hop chain where the middle
// link has a small MTU. Exercises TTL decrement per hop, mid-path
// fragmentation, fragment forwarding through a downstream router, end-host
// reassembly, and per-hop flow caches — the whole substrate cooperating.
#include <gtest/gtest.h>

#include <cstring>

#include "core/router.hpp"
#include "netbase/byteorder.hpp"
#include "mgmt/register_all.hpp"
#include "pkt/builder.hpp"
#include "pkt/headers.hpp"
#include "pkt/reassembly.hpp"

namespace rp {
namespace {

using netbase::SimTime;

// Connects r_from's iface `out` to r_to's iface `in` (packets re-injected
// as fresh arrivals, like a wire).
void wire(core::RouterKernel& from, pkt::IfIndex out, core::RouterKernel& to,
          pkt::IfIndex in) {
  from.interfaces().by_index(out)->set_tx_sink(
      [&to, in](pkt::PacketPtr p, SimTime t) {
        auto fresh = pkt::make_packet(p->size());
        std::memcpy(fresh->data(), p->data(), p->size());
        to.inject(t, in, std::move(fresh));
      });
}

TEST(Topology, ThreeHopChainWithSmallMtuMiddleLink) {
  mgmt::register_builtin_modules();
  core::RouterKernel r1, r2, r3;
  for (auto* r : {&r1, &r2, &r3}) {
    r->add_interface("in");
    r->add_interface("out");
    r->routes().add(*netbase::IpPrefix::parse("20.0.0.0/8"), {1, {}});
  }
  // The middle link (r1 -> r2) has a 576-byte MTU: r1 fragments.
  r1.interfaces().by_index(1)->set_mtu(576);

  wire(r1, 1, r2, 0);
  wire(r2, 1, r3, 0);

  pkt::Ipv4Reassembler sink;
  std::vector<pkt::PacketPtr> delivered;
  r3.interfaces().by_index(1)->set_tx_sink(
      [&](pkt::PacketPtr p, SimTime t) {
        if (auto done = sink.feed(std::move(p), t))
          delivered.push_back(std::move(done));
      });

  // 5 large datagrams from distinct flows.
  for (std::uint16_t f = 1; f <= 5; ++f) {
    pkt::UdpSpec s;
    s.src = *netbase::IpAddr::parse("10.0.0.1");
    s.dst = *netbase::IpAddr::parse("20.0.0.9");
    s.sport = f;
    s.dport = 4321;
    s.payload_len = 2000;
    s.payload_fill = static_cast<std::uint8_t>(f);
    auto p = pkt::build_udp(s);
    netbase::store_be16(p->data() + 4, f);  // distinct IP ids
    pkt::Ipv4Header::finalize_checksum(p->data(), 20);
    r1.inject(f * 1000, 0, std::move(p));
  }
  // Drive the chain to quiescence (sinks inject across kernels, so loop).
  for (int i = 0; i < 10; ++i) {
    r1.run_to_completion();
    r2.run_to_completion();
    r3.run_to_completion();
    if (r1.idle() && r2.idle() && r3.idle()) break;
  }

  // r1 fragmented each 2028-byte datagram into 4 fragments.
  EXPECT_EQ(r1.core().counters().fragments_created, 20u);
  // r2 and r3 forwarded the fragments untouched (they fit the MTU).
  EXPECT_EQ(r2.core().counters().forwarded, 20u);
  EXPECT_EQ(r3.core().counters().forwarded, 20u);

  ASSERT_EQ(delivered.size(), 5u);
  for (auto& d : delivered) {
    pkt::Ipv4Header h;
    ASSERT_TRUE(h.parse(d->bytes()));
    EXPECT_EQ(h.ttl, 64 - 3);  // three hops
    EXPECT_EQ(d->size(), 2028u);
    // Payload intact end to end.
    const std::uint8_t fill = d->data()[28];
    for (std::size_t i = 28; i < d->size(); ++i)
      ASSERT_EQ(d->data()[i], fill);
  }

  // Per-hop flow caches at r2: the 5 first fragments carry ports (5 distinct
  // flows), the 15 non-first fragments have no transport header and share
  // one port-less key — 6 cache entries, everything else hits.
  EXPECT_EQ(r2.aiu().flow_table().stats().misses, 6u);
  EXPECT_EQ(r2.aiu().flow_table().stats().hits, 14u);
}

TEST(Topology, TtlExpiresMidChain) {
  core::RouterKernel r1, r2;
  for (auto* r : {&r1, &r2}) {
    r->add_interface("in");
    r->add_interface("out");
    r->routes().add(*netbase::IpPrefix::parse("20.0.0.0/8"), {1, {}});
  }
  wire(r1, 1, r2, 0);
  int delivered = 0;
  r2.interfaces().by_index(1)->set_tx_sink(
      [&](pkt::PacketPtr, SimTime) { ++delivered; });

  pkt::UdpSpec s;
  s.src = *netbase::IpAddr::parse("10.0.0.1");
  s.dst = *netbase::IpAddr::parse("20.0.0.9");
  s.payload_len = 100;
  s.ttl = 2;  // survives r1, dies at r2
  r1.inject(0, 0, pkt::build_udp(s));
  r1.run_to_completion();
  r2.run_to_completion();
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(r2.core().counters().dropped(core::DropReason::ttl_expired), 1u);

  s.ttl = 3;
  r1.inject(0, 0, pkt::build_udp(s));
  r1.run_to_completion();
  r2.run_to_completion();
  EXPECT_EQ(delivered, 1);
}

}  // namespace
}  // namespace rp

// Resilience subsystem tests: circuit-breaker state machine, fault
// injector, supervised gate dispatch (containment + fallback policies),
// flow rebinding on breaker open, and the pmgr `resilience` family.
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>

#include "core/router.hpp"
#include "mgmt/pmgr.hpp"
#include "mgmt/register_all.hpp"
#include "mgmt/rplib.hpp"
#include "pkt/builder.hpp"
#include "resilience/resilience.hpp"

namespace rp::resilience {
namespace {

using netbase::Status;
using plugin::PluginType;
using plugin::Verdict;

// ---------------------------------------------------------------- breaker

TEST(Breaker, TripsAfterErrorBudget) {
  BreakerConfig cfg{.window = 16, .max_faults = 3, .cooldown = 4, .probes = 2};
  CircuitBreaker b;
  // `now` is the supervisor's invocation clock; three faults close together
  // land in one window and trip the breaker.
  EXPECT_FALSE(b.on_fault(cfg, 10));
  EXPECT_FALSE(b.on_fault(cfg, 12));
  EXPECT_TRUE(b.closed());
  EXPECT_TRUE(b.on_fault(cfg, 14));  // third fault within the window trips
  EXPECT_EQ(b.state, BreakerState::open);
  EXPECT_EQ(b.opens, 1u);
}

TEST(Breaker, WindowTumblesSoSparseFaultsNeverTrip) {
  BreakerConfig cfg{.window = 4, .max_faults = 2, .cooldown = 4, .probes = 2};
  CircuitBreaker b;
  // One fault per 10 clock ticks: each fault lands in a fresh window.
  for (std::uint64_t now = 10; now <= 50; now += 10)
    EXPECT_FALSE(b.on_fault(cfg, now)) << "now " << now;
  EXPECT_TRUE(b.closed());
  // The same number of faults bunched inside one window trips.
  EXPECT_TRUE(b.on_fault(cfg, 61) || b.on_fault(cfg, 62));
  EXPECT_EQ(b.state, BreakerState::open);
}

TEST(Breaker, CooldownHalfOpenRecovery) {
  BreakerConfig cfg{.window = 8, .max_faults = 1, .cooldown = 3, .probes = 2};
  CircuitBreaker b;
  EXPECT_TRUE(b.on_fault(cfg, 1));
  // Open: cooldown bypasses, then the next call is admitted as a probe.
  EXPECT_TRUE(b.should_bypass(cfg));
  EXPECT_TRUE(b.should_bypass(cfg));
  EXPECT_FALSE(b.should_bypass(cfg));  // 3rd consult: falls to half-open
  EXPECT_EQ(b.state, BreakerState::half_open);
  b.on_success(cfg);
  EXPECT_EQ(b.state, BreakerState::half_open);  // 1 of 2 probes
  b.on_success(cfg);
  EXPECT_TRUE(b.closed());  // recovered
}

TEST(Breaker, HalfOpenFaultReopensImmediately) {
  BreakerConfig cfg{.window = 8, .max_faults = 1, .cooldown = 1, .probes = 4};
  CircuitBreaker b;
  b.on_fault(cfg, 1);
  while (b.should_bypass(cfg)) {
  }
  ASSERT_EQ(b.state, BreakerState::half_open);
  EXPECT_TRUE(b.on_fault(cfg, 2));  // probe fault
  EXPECT_EQ(b.state, BreakerState::open);
  EXPECT_EQ(b.opens, 2u);
}

TEST(Breaker, ManualTripAndReset) {
  CircuitBreaker b;
  b.trip();
  EXPECT_EQ(b.state, BreakerState::open);
  b.reset();
  EXPECT_TRUE(b.closed());
  EXPECT_EQ(b.opens, 1u);  // lifetime count survives reset
}

// --------------------------------------------------------------- injector

TEST(Injector, EveryNIsDeterministic) {
  FaultInjector inj;
  inj.set(PluginType::firewall, FaultKind::exception, {.every = 3});
  EXPECT_TRUE(inj.armed());
  int fired = 0;
  FaultKind k{};
  for (int i = 0; i < 9; ++i)
    if (inj.pick(PluginType::firewall, k)) ++fired;
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(k, FaultKind::exception);
  // Other gates are untouched.
  EXPECT_FALSE(inj.pick(PluginType::ipsec, k));
}

TEST(Injector, ProbabilityOneAlwaysFires) {
  FaultInjector inj;
  inj.set(PluginType::ipsec, FaultKind::bad_verdict, {.probability = 1.0});
  FaultKind k{};
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(inj.pick(PluginType::ipsec, k));
    EXPECT_EQ(k, FaultKind::bad_verdict);
  }
}

TEST(Injector, ClearAndInactiveRuleDisarm) {
  FaultInjector inj;
  inj.set(PluginType::sched, FaultKind::budget_overrun, {.every = 2});
  inj.set(PluginType::sched, FaultKind::budget_overrun, {});  // remove
  EXPECT_FALSE(inj.armed());
  inj.set(PluginType::sched, FaultKind::exception, {.probability = 0.5});
  EXPECT_TRUE(inj.armed());
  inj.clear();
  EXPECT_FALSE(inj.armed());
}

// ------------------------------------------------- supervised gate dispatch

class FaultyInstance : public plugin::PluginInstance {
 public:
  enum class Mode { ok, throw_std, throw_odd, bad_verdict, drop, slow };
  Mode mode{Mode::ok};
  int calls{0};

  Verdict handle_packet(pkt::Packet&, void**) override {
    ++calls;
    switch (mode) {
      case Mode::throw_std: throw std::runtime_error("plugin bug");
      case Mode::throw_odd: throw 42;  // not derived from std::exception
      case Mode::bad_verdict: return static_cast<Verdict>(0x7f);
      case Mode::drop: return Verdict::drop;
      case Mode::slow: {  // burn enough time that any cycle budget blows
        volatile unsigned x = 0;
        for (unsigned i = 0; i < 50000; ++i) x = x + i;
        break;
      }
      case Mode::ok: break;
    }
    return Verdict::cont;
  }
};

class FaultyPlugin : public plugin::Plugin {
 public:
  using Plugin::Plugin;

 protected:
  std::unique_ptr<plugin::PluginInstance> make_instance(
      const plugin::Config&) override {
    return std::make_unique<FaultyInstance>();
  }
};

// An output scheduler whose enqueue always throws (after taking ownership —
// the worst case: the packet is gone).
class ThrowingSched : public core::OutputScheduler {
 public:
  bool enqueue(pkt::PacketPtr, void**, netbase::SimTime) override {
    throw std::runtime_error("scheduler bug");
  }
  pkt::PacketPtr dequeue(netbase::SimTime) override { return nullptr; }
  bool empty() const override { return true; }
  std::size_t backlog_packets() const override { return 0; }
  std::size_t backlog_bytes() const override { return 0; }
};

pkt::PacketPtr udp(std::uint16_t sport = 1000, std::uint8_t src_octet = 1) {
  pkt::UdpSpec s;
  s.src = netbase::IpAddr(netbase::Ipv4Addr(10, 0, 0, src_octet));
  s.dst = netbase::IpAddr(netbase::Ipv4Addr(20, 0, 0, 1));
  s.sport = sport;
  s.dport = 80;
  s.payload_len = 64;
  return pkt::build_udp(s);
}

class ResilienceTest : public ::testing::Test {
 protected:
  // Declared before kernel_ so it outlives the supervisor's destructor
  // (which nulls the cached guard slot of every instance it has seen).
  ThrowingSched bad_sched_;
  core::RouterKernel kernel_;
  mgmt::RouterPluginLib lib_;
  mgmt::PluginManager pmgr_;

  ResilienceTest() : lib_(kernel_), pmgr_(lib_) {
    mgmt::register_builtin_modules();
    kernel_.add_interface("if0");
    kernel_.add_interface("if1");
    EXPECT_TRUE(pmgr_.exec("route add 20.0.0.0/8 if1").ok());
  }

  FaultyInstance* install(PluginType gate,
                          const char* filter = "* * udp * * *") {
    const std::string name =
        "faulty_" + std::string(plugin::to_string(gate));
    if (!kernel_.pcu().find(name))
      kernel_.pcu().register_plugin(std::make_unique<FaultyPlugin>(name, gate));
    plugin::InstanceId id = plugin::kNoInstance;
    EXPECT_EQ(kernel_.pcu().find(name)->create_instance({}, id), Status::ok);
    auto* inst =
        static_cast<FaultyInstance*>(kernel_.pcu().find(name)->instance(id));
    EXPECT_EQ(kernel_.aiu().create_filter(gate, *aiu::Filter::parse(filter),
                                          inst),
              Status::ok);
    return inst;
  }

  void send(int n, std::uint16_t sport = 1000) {
    for (int i = 0; i < n; ++i) kernel_.core().process(udp(sport));
  }

  Supervisor& res() { return kernel_.resilience(); }
  const core::CoreCounters& cc() { return kernel_.core().counters(); }
};

TEST_F(ResilienceTest, ThrowingPluginIsContainedFailOpen) {
  auto* inst = install(PluginType::firewall);
  inst->mode = FaultyInstance::Mode::throw_std;
  send(5);
  // fail_open: every packet continued and was forwarded; faults recorded.
  EXPECT_EQ(cc().received, 5u);
  EXPECT_EQ(cc().forwarded, 5u);
  EXPECT_EQ(res().faults_total(), 5u);
  EXPECT_EQ(res().fault_kind_total(FaultKind::exception), 5u);
  EXPECT_EQ(res().gate_faults(PluginType::firewall, FaultKind::exception), 5u);
  ASSERT_FALSE(res().events().empty());
  EXPECT_EQ(res().events().back().detail, "plugin bug");
}

TEST_F(ResilienceTest, NonStdExceptionIsContained) {
  auto* inst = install(PluginType::firewall);
  inst->mode = FaultyInstance::Mode::throw_odd;
  send(1);
  EXPECT_EQ(cc().forwarded, 1u);
  EXPECT_EQ(res().faults_total(), 1u);
  EXPECT_EQ(res().events().back().detail, "non-standard exception");
}

TEST_F(ResilienceTest, BadVerdictIsContained) {
  auto* inst = install(PluginType::firewall);
  inst->mode = FaultyInstance::Mode::bad_verdict;
  send(3);
  EXPECT_EQ(cc().forwarded, 3u);
  EXPECT_EQ(res().fault_kind_total(FaultKind::bad_verdict), 3u);
}

TEST_F(ResilienceTest, LegitimateDropIsNotAFault) {
  auto* inst = install(PluginType::firewall);
  inst->mode = FaultyInstance::Mode::drop;
  send(4);
  EXPECT_EQ(res().faults_total(), 0u);
  EXPECT_EQ(cc().dropped(core::DropReason::policy), 4u);
  EXPECT_EQ(cc().dropped(core::DropReason::plugin_fault), 0u);
}

TEST_F(ResilienceTest, IpsecGateFailsClosed) {
  auto* inst = install(PluginType::ipsec);
  inst->mode = FaultyInstance::Mode::throw_std;
  send(3);
  EXPECT_EQ(cc().forwarded, 0u);
  EXPECT_EQ(cc().dropped(core::DropReason::plugin_fault), 3u);
  EXPECT_EQ(res().fallback_drops(), 3u);
}

TEST_F(ResilienceTest, FallbackPolicyIsConfigurable) {
  auto* inst = install(PluginType::firewall);
  inst->mode = FaultyInstance::Mode::throw_std;
  res().set_fallback(PluginType::firewall, Fallback::fail_closed);
  send(2);
  EXPECT_EQ(cc().dropped(core::DropReason::plugin_fault), 2u);
  res().set_fallback(PluginType::firewall, Fallback::fail_open);
  send(2);
  EXPECT_EQ(cc().forwarded, 2u);
}

TEST_F(ResilienceTest, CycleBudgetOverrunKeepsVerdict) {
  auto* inst = install(PluginType::firewall);
  inst->mode = FaultyInstance::Mode::slow;
  res().set_cycle_budget(PluginType::firewall, 1);  // impossible budget
  send(2);
  // The verdict (cont) stood — packets forwarded — but overruns counted.
  EXPECT_EQ(cc().forwarded, 2u);
  EXPECT_EQ(res().fault_kind_total(FaultKind::budget_overrun), 2u);
  EXPECT_GT(res().events().back().cycles, 1u);
  res().set_cycle_budget(PluginType::firewall, 0);
  send(1);
  EXPECT_EQ(res().faults_total(), 2u);  // disabled budget: no new faults
  EXPECT_EQ(inst->calls, 3);
}

TEST_F(ResilienceTest, BreakerOpensBypassesAndRecovers) {
  res().breaker_config() = {.window = 8, .max_faults = 2, .cooldown = 3,
                            .probes = 2};
  auto* inst = install(PluginType::firewall);
  inst->mode = FaultyInstance::Mode::throw_std;
  send(2);  // trips on the 2nd fault
  const InstanceGuard* g = res().guard(*inst);
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->breaker.state, BreakerState::open);
  EXPECT_EQ(res().breaker_opens(), 1u);

  inst->mode = FaultyInstance::Mode::ok;
  send(2);  // cooldown: bypassed without calling the plugin
  EXPECT_EQ(inst->calls, 2);
  EXPECT_EQ(res().bypassed_total(), 2u);
  send(1);  // 3rd consult falls to half-open; admitted as the first probe
  EXPECT_EQ(g->breaker.state, BreakerState::half_open);
  EXPECT_EQ(inst->calls, 3);
  send(1);  // second successful probe closes it
  EXPECT_EQ(g->breaker.state, BreakerState::closed);
  EXPECT_EQ(inst->calls, 4);
  // Every packet was forwarded throughout (fail_open while bypassed).
  EXPECT_EQ(cc().forwarded, cc().received);
}

TEST_F(ResilienceTest, HalfOpenProbeFaultReopens) {
  res().breaker_config() = {.window = 8, .max_faults = 1, .cooldown = 2,
                            .probes = 4};
  auto* inst = install(PluginType::firewall);
  inst->mode = FaultyInstance::Mode::throw_std;
  send(3);  // fault->open, then 2 bypasses -> half_open on next consult
  send(1);  // probe faults -> reopen
  const InstanceGuard* g = res().guard(*inst);
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->breaker.state, BreakerState::open);
  EXPECT_EQ(res().breaker_opens(), 2u);
}

TEST_F(ResilienceTest, FlowsAreReboundWhenBreakerOpens) {
  res().breaker_config() = {.window = 8, .max_faults = 2, .cooldown = 4,
                            .probes = 2};
  auto* inst = install(PluginType::firewall, "10.0.0.0/8 * udp * * *");
  send(1);  // healthy packet creates and binds the flow
  ASSERT_GE(kernel_.aiu().flow_table().active(), 1u);
  inst->mode = FaultyInstance::Mode::throw_std;
  send(2);  // breaker opens; rebind applies at the burst boundary
  EXPECT_GE(res().flows_rebound(), 1u);
  EXPECT_GE(kernel_.aiu().stats().flows_rebound, 1u);
  EXPECT_EQ(kernel_.aiu().flow_table().active(), 0u);
}

TEST_F(ResilienceTest, SchedulerRealThrowIsAccountedAsPluginFault) {
  kernel_.core().set_port_scheduler(1, &bad_sched_);
  send(1);
  // The packet was consumed mid-throw: counted as a plugin_fault drop so
  // received == forwarded + drops still balances.
  EXPECT_EQ(cc().forwarded, 0u);
  EXPECT_EQ(cc().dropped(core::DropReason::plugin_fault), 1u);
  EXPECT_EQ(res().gate_faults(PluginType::sched, FaultKind::exception), 1u);
  kernel_.core().set_port_scheduler(1, nullptr);
}

TEST_F(ResilienceTest, SchedulerInjectedThrowFallsBackToFifo) {
  ASSERT_TRUE(pmgr_.exec("modload fifo").ok());
  ASSERT_TRUE(pmgr_.exec("create fifo").ok());
  ASSERT_TRUE(pmgr_.exec("attach fifo 1 if1").ok());
  res().set_injection(PluginType::sched, FaultKind::exception, {.every = 1});
  send(1);
  // The injected throw fires before the enqueue: the packet survives and
  // degrades to the port FIFO (best_effort), still counted as forwarded.
  EXPECT_EQ(cc().forwarded, 1u);
  EXPECT_EQ(res().faults_injected(), 1u);
  res().clear_injection();
  auto p = kernel_.core().next_for_tx(1, kernel_.clock().now());
  EXPECT_NE(p, nullptr);  // it is in the FIFO, not the scheduler
}

TEST_F(ResilienceTest, OpenSchedulerBreakerBypassesToFifo) {
  ASSERT_TRUE(pmgr_.exec("modload fifo").ok());
  ASSERT_TRUE(pmgr_.exec("create fifo").ok());
  ASSERT_TRUE(pmgr_.exec("attach fifo 1 if1").ok());
  ASSERT_TRUE(pmgr_.exec("resilience trip fifo 1").ok());
  send(2);
  EXPECT_EQ(cc().forwarded, 2u);
  EXPECT_EQ(res().bypassed_total(), 2u);
  EXPECT_EQ(kernel_.core().port_scheduler(1)->backlog_packets(), 0u);
  // fail_closed at the sched gate drops instead.
  ASSERT_TRUE(
      pmgr_.exec("resilience fallback sched fail_closed").ok());
  send(1);
  EXPECT_EQ(cc().dropped(core::DropReason::plugin_fault), 1u);
}

TEST_F(ResilienceTest, DeterministicInjectionAtInputGate) {
  install(PluginType::firewall);
  res().set_injection(PluginType::firewall, FaultKind::exception, {.every = 3});
  send(9);
  EXPECT_EQ(res().faults_injected(), 3u);
  EXPECT_EQ(cc().forwarded, 9u);  // fail_open
  res().clear_injection();
  EXPECT_FALSE(res().armed());
}

TEST_F(ResilienceTest, DisarmedGuardChangesNothing) {
  auto* inst = install(PluginType::firewall);
  send(10);
  EXPECT_EQ(res().faults_total(), 0u);
  EXPECT_EQ(cc().forwarded, 10u);
  // While the supervisor is quiet (nothing armed, every breaker closed) a
  // healthy instance accrues no per-instance state at all — not even a
  // guard: those materialize on the first fault or non-quiet dispatch.
  EXPECT_EQ(res().guard(*inst), nullptr);
  EXPECT_EQ(res().guard_count(), 0u);
}

TEST_F(ResilienceTest, FreeingInstanceForgetsGuard) {
  ASSERT_TRUE(pmgr_.exec("modload fifo").ok());
  ASSERT_TRUE(pmgr_.exec("create fifo").ok());
  ASSERT_TRUE(pmgr_.exec("attach fifo 1 if1").ok());
  send(1);
  auto* inst = kernel_.pcu().find_instance("fifo", 1);
  ASSERT_NE(inst, nullptr);
  // A quiet dispatch leaves no guard behind; materialize one via a manual
  // trip/reset cycle, then check that freeing the instance drops it.
  ASSERT_TRUE(pmgr_.exec("resilience trip fifo 1").ok());
  ASSERT_TRUE(pmgr_.exec("resilience reset fifo 1").ok());
  EXPECT_NE(res().guard(*inst), nullptr);
  const std::size_t before = res().guard_count();
  ASSERT_TRUE(pmgr_.exec("free fifo 1").ok());
  EXPECT_EQ(res().guard_count(), before - 1);
}

TEST_F(ResilienceTest, CountersExportedThroughMetricRegistry) {
  auto* inst = install(PluginType::firewall);
  inst->mode = FaultyInstance::Mode::throw_std;
  send(2);
  auto r = pmgr_.exec("telemetry metrics");
  ASSERT_TRUE(r.ok());
  EXPECT_NE(r.text.find("resilience.faults_total=2"), std::string::npos);
  EXPECT_NE(r.text.find("resilience.faults.exception=2"), std::string::npos);
}

// ------------------------------------------------------------ pmgr family

TEST_F(ResilienceTest, PmgrStatusAndEvents) {
  auto* inst = install(PluginType::firewall);
  inst->mode = FaultyInstance::Mode::throw_std;
  send(1);
  auto r = pmgr_.exec("resilience status");
  ASSERT_TRUE(r.ok());
  EXPECT_NE(r.text.find("faults: total=1"), std::string::npos);
  EXPECT_NE(r.text.find("faulty_firewall#1"), std::string::npos);
  r = pmgr_.exec("resilience events 4");
  ASSERT_TRUE(r.ok());
  EXPECT_NE(r.text.find("[firewall] exception"), std::string::npos);
  EXPECT_NE(r.text.find("plugin bug"), std::string::npos);
}

TEST_F(ResilienceTest, PmgrBudgetFallbackInject) {
  ASSERT_TRUE(pmgr_.exec("resilience budget 16 4 8 2").ok());
  EXPECT_EQ(res().breaker_config().window, 16u);
  EXPECT_EQ(res().breaker_config().probes, 2u);
  ASSERT_TRUE(pmgr_.exec("resilience budget cycles firewall 5000").ok());
  EXPECT_EQ(res().cycle_budget(PluginType::firewall), 5000u);
  ASSERT_TRUE(pmgr_.exec("resilience budget cycles firewall off").ok());
  EXPECT_EQ(res().cycle_budget(PluginType::firewall), 0u);
  auto r = pmgr_.exec("resilience budget");
  ASSERT_TRUE(r.ok());
  EXPECT_NE(r.text.find("window=16"), std::string::npos);

  ASSERT_TRUE(pmgr_.exec("resilience fallback stats fail_closed").ok());
  EXPECT_EQ(res().fallback(PluginType::stats), Fallback::fail_closed);
  r = pmgr_.exec("resilience fallback");
  EXPECT_NE(r.text.find("stats=fail_closed"), std::string::npos);
  EXPECT_NE(r.text.find("ipsec=fail_closed"), std::string::npos);
  EXPECT_NE(r.text.find("sched=best_effort"), std::string::npos);

  ASSERT_TRUE(
      pmgr_.exec("resilience inject firewall bad_verdict every 7").ok());
  EXPECT_TRUE(res().armed());
  EXPECT_EQ(res().injector().rule(PluginType::firewall,
                                  FaultKind::bad_verdict).every,
            7u);
  ASSERT_TRUE(pmgr_.exec("resilience inject off").ok());
  EXPECT_FALSE(res().armed());
  ASSERT_TRUE(pmgr_.exec("resilience reset all").ok());
}

TEST_F(ResilienceTest, PmgrRejectsMalformedInput) {
  EXPECT_FALSE(pmgr_.exec("resilience bogus").ok());
  EXPECT_NE(pmgr_.exec("resilience bogus").text.find("unknown resilience"),
            std::string::npos);
  EXPECT_FALSE(pmgr_.exec("resilience budget 0 1 2 3").ok());
  EXPECT_FALSE(pmgr_.exec("resilience budget 1 2 3").ok());
  EXPECT_FALSE(pmgr_.exec("resilience budget x y z w").ok());
  EXPECT_FALSE(pmgr_.exec("resilience budget cycles nope 100").ok());
  EXPECT_FALSE(pmgr_.exec("resilience budget cycles firewall abc").ok());
  EXPECT_FALSE(pmgr_.exec("resilience fallback firewall maybe").ok());
  EXPECT_FALSE(pmgr_.exec("resilience fallback nosuchgate fail_open").ok());
  EXPECT_FALSE(pmgr_.exec("resilience inject firewall nope every 3").ok());
  EXPECT_FALSE(pmgr_.exec("resilience inject firewall exception every 0").ok());
  EXPECT_FALSE(
      pmgr_.exec("resilience inject firewall exception prob 1.5").ok());
  EXPECT_FALSE(pmgr_.exec("resilience inject firewall exception prob x").ok());
  EXPECT_FALSE(pmgr_.exec("resilience trip ghost 1").ok());
  EXPECT_FALSE(pmgr_.exec("resilience trip fifo abc").ok());
  EXPECT_FALSE(pmgr_.exec("resilience events abc").ok());
}

}  // namespace
}  // namespace rp::resilience

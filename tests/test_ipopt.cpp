// Tests for the IPv6 option plugins (router alert recognition, option
// validation and RFC 2460 unknown-option handling).
#include <gtest/gtest.h>

#include "ipopt/ipopt_plugins.hpp"
#include "pkt/builder.hpp"
#include "pkt/headers.hpp"

namespace rp::ipopt {
namespace {

using plugin::Verdict;

pkt::PacketPtr v6_with_opts(std::span<const std::uint8_t> opts) {
  pkt::UdpSpec s;
  s.src = *netbase::IpAddr::parse("2001:db8::1");
  s.dst = *netbase::IpAddr::parse("2001:db8::2");
  s.sport = 1;
  s.dport = 2;
  s.payload_len = 16;
  return pkt::build_udp6_hopopts(s, opts);
}

pkt::PacketPtr v6_plain() {
  pkt::UdpSpec s;
  s.src = *netbase::IpAddr::parse("2001:db8::1");
  s.dst = *netbase::IpAddr::parse("2001:db8::2");
  s.sport = 1;
  s.dport = 2;
  s.payload_len = 16;
  return pkt::build_udp(s);
}

TEST(RouterAlert, CountsAlertedPackets) {
  RouterAlertInstance inst;
  const std::uint8_t alert[] = {kOptRouterAlert, 2, 0, 0};  // RSVP alert
  auto p1 = v6_with_opts(alert);
  EXPECT_EQ(inst.handle_packet(*p1, nullptr), Verdict::cont);
  auto p2 = v6_plain();
  EXPECT_EQ(inst.handle_packet(*p2, nullptr), Verdict::cont);
  const std::uint8_t padded[] = {kOptPadN, 2, 0, 0};
  auto p3 = v6_with_opts(padded);
  inst.handle_packet(*p3, nullptr);
  EXPECT_EQ(inst.alerts(), 1u);

  plugin::PluginMsg msg;
  msg.custom_name = "stats";
  plugin::PluginReply reply;
  EXPECT_EQ(inst.handle_message(msg, reply), netbase::Status::ok);
  EXPECT_NE(reply.text.find("packets=3"), std::string::npos);
  EXPECT_NE(reply.text.find("alerts=1"), std::string::npos);
}

TEST(RouterAlert, IgnoresIpv4) {
  RouterAlertInstance inst;
  pkt::UdpSpec s;
  s.src = netbase::IpAddr(netbase::Ipv4Addr(1, 1, 1, 1));
  s.dst = netbase::IpAddr(netbase::Ipv4Addr(2, 2, 2, 2));
  s.payload_len = 8;
  auto p = pkt::build_udp(s);
  EXPECT_EQ(inst.handle_packet(*p, nullptr), Verdict::cont);
  EXPECT_EQ(inst.alerts(), 0u);
}

TEST(OptCheck, AcceptsValidPadding) {
  OptCheckInstance inst;
  const std::uint8_t padn[] = {kOptPadN, 4, 0, 0, 0, 0};
  auto p = v6_with_opts(padn);
  EXPECT_EQ(inst.handle_packet(*p, nullptr), Verdict::cont);
  EXPECT_EQ(inst.malformed(), 0u);
}

TEST(OptCheck, DropsNonZeroPadN) {
  OptCheckInstance inst;
  const std::uint8_t bad[] = {kOptPadN, 2, 0xde, 0xad};
  auto p = v6_with_opts(bad);
  EXPECT_EQ(inst.handle_packet(*p, nullptr), Verdict::drop);
  EXPECT_EQ(inst.malformed(), 1u);
}

TEST(OptCheck, UnknownOptionActionBits) {
  OptCheckInstance inst;
  // Action bits 00 (skip): type 0x1e is unknown but skippable.
  const std::uint8_t skippable[] = {0x1e, 2, 1, 2};
  auto p1 = v6_with_opts(skippable);
  EXPECT_EQ(inst.handle_packet(*p1, nullptr), Verdict::cont);
  // Action bits 01 (0x40 set): discard.
  const std::uint8_t discard[] = {0x5e, 2, 1, 2};
  auto p2 = v6_with_opts(discard);
  EXPECT_EQ(inst.handle_packet(*p2, nullptr), Verdict::drop);
}

TEST(OptCheck, DropsTruncatedOptionArea) {
  OptCheckInstance inst;
  const std::uint8_t alert[] = {kOptRouterAlert, 2, 0, 0};
  auto p = v6_with_opts(alert);
  // Declare a longer hop-by-hop area than the packet carries.
  p->data()[pkt::Ipv6Header::kSize + 1] = 40;
  EXPECT_EQ(inst.handle_packet(*p, nullptr), Verdict::drop);
  EXPECT_EQ(inst.malformed(), 1u);
}

TEST(OptCheck, PassesIpv4AndPlainV6) {
  OptCheckInstance inst;
  auto p = v6_plain();
  EXPECT_EQ(inst.handle_packet(*p, nullptr), Verdict::cont);
}

TEST(ForEachHopopt, WalksAllOptions) {
  // Two options: router alert + skippable unknown.
  const std::uint8_t opts[] = {kOptRouterAlert, 2, 0, 0, 0x1e, 2, 9, 9};
  auto p = v6_with_opts(opts);
  struct Ctx {
    int count{0};
  } ctx;
  bool ok = for_each_hopopt(
      *p,
      [](void* c, std::uint8_t, std::uint8_t, const std::uint8_t*) {
        ++static_cast<Ctx*>(c)->count;
        return true;
      },
      &ctx);
  EXPECT_TRUE(ok);
  // Pad1/PadN fillers added by the builder are included in the walk for
  // PadN but Pad1 is skipped silently; at least our two options are seen.
  EXPECT_GE(ctx.count, 2);
}

}  // namespace
}  // namespace rp::ipopt

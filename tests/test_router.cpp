// End-to-end tests of the RouterKernel event loop: virtual-time arrivals,
// link serialization, tx sinks, scheduler-driven draining.
#include <gtest/gtest.h>

#include "core/router.hpp"
#include "pkt/builder.hpp"
#include "tgen/workload.hpp"

namespace rp::core {
namespace {

using netbase::IpAddr;
using netbase::Ipv4Addr;
using netbase::SimTime;

pkt::PacketPtr udp(std::size_t payload = 100) {
  pkt::UdpSpec s;
  s.src = IpAddr(Ipv4Addr(10, 0, 0, 1));
  s.dst = IpAddr(Ipv4Addr(20, 0, 0, 1));
  s.sport = 1;
  s.dport = 2;
  s.payload_len = payload;
  return pkt::build_udp(s);
}

TEST(RouterKernel, ForwardsInjectedPacketToSink) {
  RouterKernel k;
  k.add_interface("in0");
  auto& out = k.add_interface("out0");
  k.routes().add(*netbase::IpPrefix::parse("20.0.0.0/8"), {1, {}});

  std::vector<SimTime> deliveries;
  out.set_tx_sink([&](pkt::PacketPtr p, SimTime t) {
    ASSERT_NE(p, nullptr);
    deliveries.push_back(t);
  });

  k.inject(1000, 0, udp());
  k.run_to_completion();
  ASSERT_EQ(deliveries.size(), 1u);
  // 128-byte packet on a 155 Mb/s link: ~6.6 us of serialization.
  EXPECT_GT(deliveries[0], 1000);
  EXPECT_EQ(k.core().counters().forwarded, 1u);
  EXPECT_EQ(out.counters().tx_packets, 1u);
}

TEST(RouterKernel, LinkSerializationSpacesBackToBackPackets) {
  RouterKernel k;
  k.add_interface("in0");
  auto& out = k.add_interface("out0", 1'000'000);  // 1 Mb/s: slow link
  k.routes().add(*netbase::IpPrefix::parse("20.0.0.0/8"), {1, {}});

  std::vector<SimTime> deliveries;
  std::size_t wire_bytes = 0;
  out.set_tx_sink([&](pkt::PacketPtr p, SimTime t) {
    wire_bytes = p->size();
    deliveries.push_back(t);
  });

  // Two packets arrive simultaneously; the second must wait for the first
  // to serialize (128-byte packets at 1 Mb/s = 1.024 ms each).
  k.inject(0, 0, udp(100));
  k.inject(0, 0, udp(100));
  k.run_to_completion();
  ASSERT_EQ(deliveries.size(), 2u);
  EXPECT_EQ(wire_bytes, 128u);  // 20 IP + 8 UDP + 100 payload
  SimTime gap = deliveries[1] - deliveries[0];
  EXPECT_EQ(gap, out.tx_duration(wire_bytes));
}

TEST(RouterKernel, RunUntilProcessesOnlyDueEvents) {
  RouterKernel k;
  k.add_interface("in0");
  k.add_interface("out0");
  k.routes().add(*netbase::IpPrefix::parse("20.0.0.0/8"), {1, {}});
  k.inject(100, 0, udp());
  k.inject(10'000'000, 0, udp());
  k.run_until(1'000'000);
  EXPECT_EQ(k.core().counters().received, 1u);
  EXPECT_FALSE(k.idle());
  EXPECT_EQ(k.clock().now(), 1'000'000);
  k.run_to_completion();
  EXPECT_EQ(k.core().counters().received, 2u);
}

TEST(RouterKernel, InjectToUnknownInterfaceIsIgnored) {
  RouterKernel k;
  k.add_interface("in0");
  k.inject(0, 7, udp());
  k.run_to_completion();
  EXPECT_EQ(k.core().counters().received, 0u);
}

TEST(RouterKernel, RxRingOverflowCountsDrops) {
  RouterKernel k;
  auto& in = k.interfaces().add("in0", 155'000'000, 0, 4);  // tiny rx ring
  k.add_interface("out0");
  k.routes().add(*netbase::IpPrefix::parse("20.0.0.0/8"), {1, {}});
  // The kernel drains the ring immediately per arrival event, so overflow
  // needs direct delivery (as a burst from the driver would).
  for (int i = 0; i < 8; ++i) in.deliver(udp(), 0);
  EXPECT_EQ(in.counters().rx_drops, 4u);
  EXPECT_EQ(in.rx_depth(), 4u);
}

TEST(RouterKernel, TgenCbrStreamArrivesAtConfiguredRate) {
  RouterKernel k;
  k.add_interface("in0");
  auto& out = k.add_interface("out0");
  k.routes().add(*netbase::IpPrefix::parse("20.0.0.0/8"), {1, {}});

  tgen::CbrSpec spec;
  spec.ep.src = IpAddr(Ipv4Addr(10, 0, 0, 1));
  spec.ep.dst = IpAddr(Ipv4Addr(20, 0, 0, 1));
  spec.ep.sport = 9;
  spec.ep.dport = 10;
  spec.count = 50;
  spec.interval = netbase::kNsPerMs;
  std::size_t received = 0;
  out.set_tx_sink([&](pkt::PacketPtr, SimTime) { ++received; });
  for (auto& a : tgen::cbr(spec)) k.inject(a.t, a.iface, std::move(a.p));
  k.run_to_completion();
  EXPECT_EQ(received, 50u);
  // 50 packets at 1 ms spacing: the last leaves just after t = 49 ms.
  EXPECT_GE(k.clock().now(), 49 * netbase::kNsPerMs);
}

}  // namespace
}  // namespace rp::core

// Ingress sanitization (pkt/sanitize.hpp) unit tests: every check in
// SanitizeCheck has a named regression here, plus the IpCore wiring —
// per-check counters, the drop/trim policy, and the off switch.
#include <gtest/gtest.h>

#include <cstring>

#include "core/router.hpp"
#include "netbase/byteorder.hpp"
#include "pkt/builder.hpp"
#include "pkt/sanitize.hpp"

namespace rp::pkt {
namespace {

using netbase::IpAddr;
using netbase::Ipv4Addr;
using netbase::Ipv6Addr;

PacketPtr v4udp(std::size_t payload = 32) {
  UdpSpec s;
  s.src = IpAddr(Ipv4Addr(10, 0, 0, 1));
  s.dst = IpAddr(Ipv4Addr(20, 0, 0, 2));
  s.sport = 1000;
  s.dport = 2000;
  s.payload_len = payload;
  return build_udp(s);
}

PacketPtr v6udp(std::size_t payload = 32) {
  UdpSpec s;
  s.src = IpAddr(*Ipv6Addr::parse("2001:db8::1"));
  s.dst = IpAddr(*Ipv6Addr::parse("2001:db8::2"));
  s.sport = 1000;
  s.dport = 2000;
  s.payload_len = payload;
  return build_udp(s);
}

TEST(Sanitize, CleanPacketsPass) {
  auto p4 = v4udp();
  EXPECT_EQ(sanitize_packet(*p4), SanitizeCheck::ok);
  auto p6 = v6udp();
  EXPECT_EQ(sanitize_packet(*p6), SanitizeCheck::ok);
}

TEST(Sanitize, RuntAndBadVersion) {
  auto empty = make_packet(0);
  EXPECT_EQ(sanitize_packet(*empty), SanitizeCheck::runt);
  auto garbage = make_packet(30);
  garbage->data()[0] = 0x95;  // version 9
  EXPECT_EQ(sanitize_packet(*garbage), SanitizeCheck::bad_version);
}

TEST(Sanitize, V4HeaderBounds) {
  auto p = v4udp();
  p->trim(p->size() - 12);  // capture shorter than a minimal header
  EXPECT_EQ(sanitize_packet(*p), SanitizeCheck::v4_header);

  auto q = v4udp();
  q->data()[0] = 0x43;  // IHL 3 < 5
  EXPECT_EQ(sanitize_packet(*q), SanitizeCheck::v4_header);

  auto r = v4udp(0);
  r->data()[0] = 0x4f;  // 60B of options past the 28B capture
  EXPECT_EQ(sanitize_packet(*r), SanitizeCheck::v4_header);
}

TEST(Sanitize, V4TotalLenLies) {
  auto p = v4udp();
  netbase::store_be16(p->data() + 2, 19);  // < header
  EXPECT_EQ(sanitize_packet(*p), SanitizeCheck::v4_total_len);
  netbase::store_be16(p->data() + 2,
                      static_cast<std::uint16_t>(p->size() + 1));  // > capture
  EXPECT_EQ(sanitize_packet(*p), SanitizeCheck::v4_total_len);
}

TEST(Sanitize, V4CapturePaddingIsTrimmed) {
  auto p = v4udp();
  const std::size_t datagram = p->size();
  std::memset(p->append(18), 0, 18);  // Ethernet-style trailing pad
  bool trimmed = false;
  EXPECT_EQ(sanitize_packet(*p, trimmed), SanitizeCheck::ok);
  EXPECT_TRUE(trimmed);
  EXPECT_EQ(p->size(), datagram);
}

TEST(Sanitize, V4OversizeFragmentRejected) {
  auto p = v4udp(64);
  // Offset near the top of the 13-bit space: 0x1fff*8 + payload > 64KiB.
  netbase::store_be16(p->data() + 6, 0x1fff);
  Ipv4Header::finalize_checksum(p->data(), 20);
  EXPECT_EQ(sanitize_packet(*p), SanitizeCheck::v4_frag_range);
}

TEST(Sanitize, L4TcpDataOffset) {
  TcpSpec s;
  s.src = IpAddr(Ipv4Addr(10, 0, 0, 1));
  s.dst = IpAddr(Ipv4Addr(20, 0, 0, 2));
  s.sport = 1;
  s.dport = 2;
  s.payload_len = 8;
  auto p = build_tcp(s);
  p->data()[p->l4_offset + 12] = 0x30;  // data offset 3 < 5
  EXPECT_EQ(sanitize_packet(*p), SanitizeCheck::l4_tcp);
  p->data()[p->l4_offset + 12] = 0xf0;  // 60B header past the datagram
  EXPECT_EQ(sanitize_packet(*p), SanitizeCheck::l4_tcp);
}

TEST(Sanitize, L4UdpLength) {
  auto p = v4udp(16);
  netbase::store_be16(p->data() + p->l4_offset + 4, 7);  // < 8
  EXPECT_EQ(sanitize_packet(*p), SanitizeCheck::l4_udp);
  netbase::store_be16(p->data() + p->l4_offset + 4, 200);  // past the end
  EXPECT_EQ(sanitize_packet(*p), SanitizeCheck::l4_udp);
}

// A first fragment's UDP length describes the reassembled datagram, so the
// containment check must not fire on fragments.
TEST(Sanitize, FirstFragmentUdpLengthExempt) {
  auto p = v4udp(16);
  netbase::store_be16(p->data() + p->l4_offset + 4, 600);  // full datagram
  netbase::store_be16(p->data() + 6, 0x2000);              // MF, offset 0
  Ipv4Header::finalize_checksum(p->data(), 20);
  EXPECT_EQ(sanitize_packet(*p), SanitizeCheck::ok);
}

TEST(Sanitize, V6HeaderAndPayloadLen) {
  auto p = v6udp();
  p->trim(p->size() - 20);  // capture shorter than the fixed header
  EXPECT_EQ(sanitize_packet(*p), SanitizeCheck::v6_header);

  auto q = v6udp();
  netbase::store_be16(q->data() + 4, 4000);  // payload_len > capture
  EXPECT_EQ(sanitize_packet(*q), SanitizeCheck::v6_payload_len);
}

TEST(Sanitize, V6ExtChainAbuse) {
  // hop-by-hop header whose length runs past the payload.
  UdpSpec s;
  s.src = IpAddr(*Ipv6Addr::parse("2001:db8::1"));
  s.dst = IpAddr(*Ipv6Addr::parse("2001:db8::2"));
  s.payload_len = 8;
  const std::uint8_t opts[] = {1, 2, 0, 0};
  auto p = build_udp6_hopopts(s, opts);
  p->data()[Ipv6Header::kSize + 1] = 200;  // hbh claims 1608 bytes
  EXPECT_EQ(sanitize_packet(*p), SanitizeCheck::v6_ext_chain);
}

// ---- IpCore wiring ----

class SanitizeCore : public ::testing::Test {
 protected:
  core::RouterKernel kernel_;

  SanitizeCore() {
    kernel_.add_interface("if0");
    kernel_.add_interface("if1");
    kernel_.routes().add(*netbase::IpPrefix::parse("0.0.0.0/0"), {1, {}});
  }

  void run(PacketPtr p) {
    p->key_valid = false;
    p->invalidate_flow_hash();
    kernel_.core().process(std::move(p));
  }
  const core::CoreCounters& cc() { return kernel_.core().counters(); }
};

TEST_F(SanitizeCore, PerCheckCountersAndMalformedDrop) {
  auto p = v4udp();
  netbase::store_be16(p->data() + 2, 19);
  run(std::move(p));
  EXPECT_EQ(cc().sanitize_dropped(SanitizeCheck::v4_total_len), 1u);
  EXPECT_EQ(cc().dropped(core::DropReason::malformed), 1u);
  EXPECT_EQ(cc().total_sanitize_drops(), 1u);
  EXPECT_EQ(cc().forwarded, 0u);

  auto q = v6udp();
  netbase::store_be16(q->data() + 4, 4000);
  run(std::move(q));
  EXPECT_EQ(cc().sanitize_dropped(SanitizeCheck::v6_payload_len), 1u);
  EXPECT_EQ(cc().total_sanitize_drops(), 2u);

  run(v4udp());  // clean control
  EXPECT_EQ(cc().forwarded, 1u);
  EXPECT_EQ(cc().total_sanitize_drops(), 2u);

  kernel_.core().reset_counters();
  EXPECT_EQ(cc().total_sanitize_drops(), 0u);
  EXPECT_EQ(cc().sanitize_trimmed, 0u);
}

TEST_F(SanitizeCore, TrimCounterAndCanonicalForwarding) {
  auto p = v4udp();
  std::memset(p->append(10), 0xab, 10);
  run(std::move(p));
  EXPECT_EQ(cc().sanitize_trimmed, 1u);
  EXPECT_EQ(cc().forwarded, 1u);
}

TEST_F(SanitizeCore, OffSwitchSkipsChecksButParserStillFailsClosed) {
  kernel_.core().config().sanitize = false;
  auto p = v4udp();
  netbase::store_be16(p->data() + 2, 19);  // total_len lie
  run(std::move(p));
  // No sanitize counter — but extract_flow_key still rejects it.
  EXPECT_EQ(cc().total_sanitize_drops(), 0u);
  EXPECT_EQ(cc().dropped(core::DropReason::malformed), 1u);
}

}  // namespace
}  // namespace rp::pkt

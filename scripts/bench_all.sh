#!/usr/bin/env bash
# Full benchmark sweep: Release build, run every bench binary, scrape each
# one's BENCH_JSON line into a single JSON array.
#
#   scripts/bench_all.sh [out.json]     # default out: BENCH_pr10.json
#
# Every bench prints exactly one line `BENCH_JSON {...}` (bench/bench_json.hpp);
# this script owns the build flags and the collection so "the numbers in
# BENCH_*.json" always means "Release, full iteration counts, this script".
# The first array element is a meta record stamping the git SHA, date, and
# build flags the numbers were produced with.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
out="${1:-$repo/BENCH_pr10.json}"
build="$repo/build-bench"
jobs="$(nproc 2>/dev/null || echo 4)"
build_type="Release"

echo "== bench_all: $build_type build =="
cmake -S "$repo" -B "$build" -DCMAKE_BUILD_TYPE="$build_type" >/dev/null
cmake --build "$build" -j "$jobs" >/dev/null

# Provenance for the emitted numbers. `git describe --dirty` flags a tree
# with uncommitted changes; flags come from the configured cache so they
# match what the binaries were actually compiled with.
sha="$(git -C "$repo" rev-parse --short=12 HEAD 2>/dev/null || echo unknown)"
dirty="$(git -C "$repo" status --porcelain 2>/dev/null | head -1)"
[[ -n "$dirty" ]] && sha="$sha-dirty"
stamp="$(date -u +%Y-%m-%dT%H:%M:%SZ)"
cxx_flags="$(grep -m1 '^CMAKE_CXX_FLAGS_RELEASE:' "$build/CMakeCache.txt" \
  | cut -d= -f2- || true)"
compiler="$(grep -m1 '^CMAKE_CXX_COMPILER:' "$build/CMakeCache.txt" \
  | cut -d= -f2- || true)"
meta="{\"bench\":\"meta\",\"git_sha\":\"$sha\",\"date\":\"$stamp\",\
\"build_type\":\"$build_type\",\"cxx_flags\":\"$cxx_flags\",\
\"compiler\":\"$compiler\"}"

benches=("$build"/bench/bench_*)
lines=("$meta")
for b in "${benches[@]}"; do
  [[ -x "$b" && ! -d "$b" ]] || continue
  name="$(basename "$b")"
  echo "== $name =="
  # Benches must not inherit a stale smoke flag from the environment.
  line="$(env -u RP_BENCH_SMOKE "$b" | grep '^BENCH_JSON ' | tail -1)" || {
    echo "error: $name emitted no BENCH_JSON line" >&2
    exit 1
  }
  echo "   ${line#BENCH_JSON }"
  lines+=("${line#BENCH_JSON }")
done

{
  echo "["
  for i in "${!lines[@]}"; do
    sep=","
    [[ "$i" == "$((${#lines[@]} - 1))" ]] && sep=""
    echo "  ${lines[$i]}$sep"
  done
  echo "]"
} > "$out"

echo "== wrote $out ($((${#lines[@]} - 1)) benches + meta) =="

#!/usr/bin/env bash
# Full benchmark sweep: Release build, run every bench binary, scrape each
# one's BENCH_JSON line into a single JSON array.
#
#   scripts/bench_all.sh [out.json]     # default out: BENCH_pr2.json
#
# Every bench prints exactly one line `BENCH_JSON {...}` (bench/bench_json.hpp);
# this script owns the build flags and the collection so "the numbers in
# BENCH_*.json" always means "Release, full iteration counts, this script".
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
out="${1:-$repo/BENCH_pr2.json}"
build="$repo/build-bench"
jobs="$(nproc 2>/dev/null || echo 4)"

echo "== bench_all: Release build =="
cmake -S "$repo" -B "$build" -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "$build" -j "$jobs" >/dev/null

benches=("$build"/bench/bench_*)
lines=()
for b in "${benches[@]}"; do
  [[ -x "$b" && ! -d "$b" ]] || continue
  name="$(basename "$b")"
  echo "== $name =="
  # Benches must not inherit a stale smoke flag from the environment.
  line="$(env -u RP_BENCH_SMOKE "$b" | grep '^BENCH_JSON ' | tail -1)" || {
    echo "error: $name emitted no BENCH_JSON line" >&2
    exit 1
  }
  echo "   ${line#BENCH_JSON }"
  lines+=("${line#BENCH_JSON }")
done

{
  echo "["
  for i in "${!lines[@]}"; do
    sep=","
    [[ "$i" == "$((${#lines[@]} - 1))" ]] && sep=""
    echo "  ${lines[$i]}$sep"
  done
  echo "]"
} > "$out"

echo "== wrote $out (${#lines[@]} benches) =="

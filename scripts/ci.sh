#!/usr/bin/env bash
# Tier-1 verification plus a sanitizer pass, runnable locally or from CI:
#
#   scripts/ci.sh            # configure+build+ctest, then ASan+UBSan tests
#   scripts/ci.sh --fast     # skip the sanitizer build
#
# Exits non-zero on the first failure. Build trees live under build/ (the
# regular tree) and build-asan/ (the sanitizer tree); both are gitignored.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
jobs="$(nproc 2>/dev/null || echo 4)"
fast=0
[[ "${1:-}" == "--fast" ]] && fast=1

echo "== tier 1: build + tests (RelWithDebInfo) =="
cmake -S "$repo" -B "$repo/build" -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$repo/build" -j "$jobs"
ctest --test-dir "$repo/build" --output-on-failure -LE bench-smoke

echo "== bench smoke: every bench runs 1 iteration and emits BENCH_JSON =="
# RP_BENCH_SMOKE=1 is baked into these tests' environment; this only proves
# the benches build, run, and emit their line. scripts/bench_all.sh produces
# the real numbers.
ctest --test-dir "$repo/build" --output-on-failure -L bench-smoke

if [[ "$fast" == "1" ]]; then
  echo "== skipping sanitizer pass (--fast) =="
  exit 0
fi

echo "== tier 2: ASan + UBSan test build =="
cmake -S "$repo" -B "$repo/build-asan" -DCMAKE_BUILD_TYPE=Debug \
  -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all"
cmake --build "$repo/build-asan" -j "$jobs" --target rp_tests
# Only rp_tests is built in the sanitizer tree; exclude the bench smokes
# and the chaos soaks (the soaks get their own stage below).
ASAN_OPTIONS=detect_leaks=1 ctest --test-dir "$repo/build-asan" \
  --output-on-failure -LE "bench-smoke|chaos"

echo "== chaos: fault-injection soak under ASan/UBSan =="
# The resilience acceptance gate (docs/resilience.md): >= 100k packets with
# ~1% injected faults across every gate type — zero crashes, counters
# balance, breakers cycle. Runs in the sanitizer tree so a contained fault
# that corrupts memory still fails the build.
ASAN_OPTIONS=detect_leaks=1 ctest --test-dir "$repo/build-asan" \
  --output-on-failure -L chaos

echo "== ci: all green =="

#!/usr/bin/env bash
# Tier-1 verification plus the sanitizer passes, runnable locally or from CI:
#
#   scripts/ci.sh            # tier-1, diff, then ASan+UBSan and TSan stages
#   scripts/ci.sh --fast     # skip the sanitizer builds
#
# Exits non-zero on the first failure. Build trees live under build/ (the
# regular tree), build-asan/ and build-tsan/ (the sanitizer trees); all are
# gitignored.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
jobs="$(nproc 2>/dev/null || echo 4)"
fast=0
[[ "${1:-}" == "--fast" ]] && fast=1

echo "== tier 1: build + tests (RelWithDebInfo) =="
cmake -S "$repo" -B "$repo/build" -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$repo/build" -j "$jobs"
ctest --test-dir "$repo/build" --output-on-failure -LE bench-smoke

echo "== bench smoke: every bench runs 1 iteration and emits BENCH_JSON =="
# RP_BENCH_SMOKE=1 is baked into these tests' environment; this only proves
# the benches build, run, and emit their line. scripts/bench_all.sh produces
# the real numbers.
ctest --test-dir "$repo/build" --output-on-failure -L bench-smoke

echo "== bench diff: headline metrics vs previous PR's sweep =="
# Non-strict: prints the t3/t4/t8 headline deltas (and any >10% regression)
# between the last two recorded sweeps without failing a noisy CI box. Run
# scripts/bench_compare.py --strict locally when the numbers must hold.
if [[ -f "$repo/BENCH_pr9.json" && -f "$repo/BENCH_pr10.json" ]]; then
  python3 "$repo/scripts/bench_compare.py" \
    "$repo/BENCH_pr9.json" "$repo/BENCH_pr10.json"
else
  echo "   (skipped: need both BENCH_pr9.json and BENCH_pr10.json)"
fi

echo "== diff: single-threaded vs sharded datapath equivalence =="
# The sharded-datapath acceptance gate: the same seeded traces through the
# 1-worker and N-worker paths must produce identical per-flow and aggregate
# results (tests/test_shard_diff.cpp). Already ran in tier 1; re-run as a
# named stage so a diff regression is called out by the stage banner.
ctest --test-dir "$repo/build" --output-on-failure -L diff

echo "== churn: control-plane differential tests =="
# The live-control-plane acceptance gate (docs/control_plane.md): route
# batches, filter batches, and versioned upgrades applied against live
# traffic must never misroute, misclassify, or drop a legitimate packet.
# Already ran in tier 1; re-run as a named stage so a churn regression is
# called out by the stage banner. Both churn labels also run in the ASan
# lane below (they are not in its exclude list), and the sharded variant
# (churn-parallel-tsan) runs in the TSan lane via -L tsan.
ctest --test-dir "$repo/build" --output-on-failure -L '^churn$'

if [[ "$fast" == "1" ]]; then
  echo "== skipping sanitizer passes (--fast) =="
  exit 0
fi

echo "== tier 2: ASan + UBSan test build =="
cmake -S "$repo" -B "$repo/build-asan" -DCMAKE_BUILD_TYPE=Debug \
  -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all"
cmake --build "$repo/build-asan" -j "$jobs" --target rp_tests
# Only rp_tests is built in the sanitizer tree; exclude the bench smokes
# and the chaos/fuzz soaks (those get their own stages below).
ASAN_OPTIONS=detect_leaks=1 ctest --test-dir "$repo/build-asan" \
  --output-on-failure -LE "bench-smoke|chaos|fuzz"

echo "== chaos: fault-injection soak under ASan/UBSan =="
# The resilience acceptance gate (docs/resilience.md): >= 100k packets with
# ~1% injected faults across every gate type — zero crashes, counters
# balance, breakers cycle. Runs in the sanitizer tree so a contained fault
# that corrupts memory still fails the build.
ASAN_OPTIONS=detect_leaks=1 ctest --test-dir "$repo/build-asan" \
  --output-on-failure -L chaos

echo "== wire fuzz: adversarial packet soak under ASan/UBSan =="
# The wire-hardening acceptance gate (docs/wire_hardening.md): >= 100k
# structure-aware mutants per seed through the kernel and the reassembler —
# zero crashes, forwarded + dropped == injected, bounded reassembly state.
# Seeds are compiled in (tests/test_wire_fuzz.cpp); on failure the test
# prints a "REPLAY:" line with the seed to rerun.
ASAN_OPTIONS=detect_leaks=1 ctest --test-dir "$repo/build-asan" \
  --output-on-failure -L '^fuzz$'

echo "== l7 fuzz: segment-evasion differential under ASan/UBSan =="
# The L7 inspection acceptance gate (docs/l7_inspection.md): evaded TCP
# conversations (reordering, tiny splits, duplicates, overlap rewrites)
# through the reassembler and the l7ids gate must produce exactly the hits
# a full-stream oracle predicts. The sharded variant (l7-fuzz-parallel-tsan)
# runs in the TSan lane below via -L tsan.
ASAN_OPTIONS=detect_leaks=1 ctest --test-dir "$repo/build-asan" \
  --output-on-failure -L '^l7-fuzz$'

echo "== iobackend: packet-pool lifecycle under ASan/UBSan =="
# The pool acceptance gate (docs/io_backends.md §3): recycle preserves
# headroom and zeroing, cross-thread frees return chunks, exhaustion falls
# back to the heap without leaking, packets may outlive the pool. Leak
# detection is the point — a chunk that never comes home or a double-free
# through the MPSC return stack fails here. The multiq differentials
# (ShardDiff.Multiq*, WireFuzzShard.Multiq*, ParallelMemQueue.*) run in the
# TSan lane below via their parallel/diff/fuzz tsan labels.
ASAN_OPTIONS=detect_leaks=1 ctest --test-dir "$repo/build-asan" \
  --output-on-failure -L pool

echo "== sched fuzz: scheduler differential properties under ASan/UBSan =="
# The million-flow scheduler acceptance gate (docs/scheduling.md): seeded
# adversarial flow mixes through all three engines (DRR, H-FSC, Eiffel) —
# Jain fairness parity Eiffel-vs-DRR, service-curve conformance vs the
# H-FSC runtime machinery, and no-loss/no-reorder per flow. Excluded from
# the general ASan lane above (its exclude regex matches "fuzz").
ASAN_OPTIONS=detect_leaks=1 ctest --test-dir "$repo/build-asan" \
  --output-on-failure -L '^sched-fuzz$'

echo "== tier 3: TSan build + parallel/chaos tests =="
# ThreadSanitizer over everything that runs worker threads: the sharded
# datapath suites (SPSC rings, epoch reclamation, differential replay,
# mid-traffic control) plus the chaos soaks. RelWithDebInfo: TSan needs
# optimised code to interleave realistically, debug info for reports.
cmake -S "$repo" -B "$repo/build-tsan" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS="-fsanitize=thread -fno-sanitize-recover=all"
cmake --build "$repo/build-tsan" -j "$jobs" --target rp_tests
TSAN_OPTIONS=halt_on_error=1 ctest --test-dir "$repo/build-tsan" \
  --output-on-failure -L tsan

echo "== ci: all green =="

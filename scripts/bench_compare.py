#!/usr/bin/env python3
"""Compare two BENCH_*.json sweeps and flag headline regressions.

    scripts/bench_compare.py OLD.json NEW.json [--strict] [--threshold PCT]

Both files are scripts/bench_all.sh output: a JSON array whose first element
is a meta record and whose remaining elements each carry a "bench" name.
The comparison focuses on the headline datapath metrics — the numbers the
PR acceptance gates quote — and flags any that moved more than the
threshold (default 10%) in the bad direction. Everything else the two
sweeps share is printed for context but never flags.

Exit status is 0 unless --strict is given and at least one headline metric
regressed. scripts/ci.sh runs the non-strict form so a noisy CI box
surfaces the diff without failing the build; run --strict locally (or in a
perf-gate lane) when the numbers should be load-bearing.
"""

import argparse
import json
import sys

# (bench, field, direction): the headline metrics. direction "lower" means
# smaller is better (ns/packet), "higher" means bigger is better (speedups).
HEADLINE = [
    ("t3_overall", "plugin_3gates_ns", "lower"),
    ("t3_overall", "plugin_drr_ns", "lower"),
    ("t4_burst", "burst_32_ns", "lower"),
    ("t4_burst", "speedup_32_vs_1", "higher"),
    ("t8_sanitize", "on_ns", "lower"),
    ("t9_gatebatch", "grouped_speedup", "higher"),
    ("t9_gatebatch", "fused_speedup", "higher"),
    ("t10_l7", "unbound_overhead_rel", "lower"),
    ("t10_l7", "offload_speedup", "higher"),
    ("t11_churn", "route_update_ns_p99", "lower"),
    ("t11_churn", "filter_churn_ops_per_s", "higher"),
    ("t11_churn", "upgrade_stall_ns", "lower"),
    ("t11_churn", "upgrade_speedup", "higher"),
    ("t12_eiffel", "eiffel_1m_ns", "lower"),
    ("t12_eiffel", "drr_1m_ns", "lower"),
    ("t12_eiffel", "hfsc_1m_ns", "lower"),
    ("t12_eiffel", "eiffel_flatness_1m_vs_10k", "lower"),
    ("t13_iobackend", "speedup_4w_zipf", "higher"),
    ("t13_iobackend", "speedup_4w_uniform", "higher"),
    ("t13_iobackend", "allocs_per_pkt", "lower"),
]


def load(path):
    with open(path) as f:
        rows = json.load(f)
    return {r["bench"]: r for r in rows if r.get("bench") not in (None, "meta")}


def fmt(v):
    return f"{v:.3g}" if isinstance(v, float) else str(v)


def main():
    ap = argparse.ArgumentParser(
        description="Diff two bench_all.sh sweeps; flag headline regressions.")
    ap.add_argument("old")
    ap.add_argument("new")
    ap.add_argument("--strict", action="store_true",
                    help="exit 1 if any headline metric regressed")
    ap.add_argument("--threshold", type=float, default=10.0,
                    help="regression threshold in percent (default 10)")
    args = ap.parse_args()

    old, new = load(args.old), load(args.new)
    regressions = []

    print(f"== headline metrics ({args.old} -> {args.new}, "
          f"threshold {args.threshold:g}%) ==")
    for bench, field, direction in HEADLINE:
        a = old.get(bench, {}).get(field)
        b = new.get(bench, {}).get(field)
        if a is None or b is None or not a:
            print(f"  {bench}.{field}: missing "
                  f"(old={fmt(a) if a is not None else '-'}, "
                  f"new={fmt(b) if b is not None else '-'}) -- skipped")
            continue
        delta = (b - a) / a * 100.0
        worse = delta > args.threshold if direction == "lower" \
            else delta < -args.threshold
        tag = "REGRESSION" if worse else "ok"
        print(f"  {bench}.{field}: {fmt(a)} -> {fmt(b)} "
              f"({delta:+.1f}%, {direction} is better) {tag}")
        if worse:
            regressions.append((bench, field, delta))

    shared = sorted(set(old) & set(new))
    print("\n== all shared numeric fields (context only) ==")
    for bench in shared:
        for field in sorted(set(old[bench]) & set(new[bench]) - {"bench"}):
            a, b = old[bench][field], new[bench][field]
            if not isinstance(a, (int, float)) or not isinstance(b, (int, float)):
                continue
            delta = f" ({(b - a) / a * 100.0:+.1f}%)" if a else ""
            print(f"  {bench}.{field}: {fmt(a)} -> {fmt(b)}{delta}")

    for bench in sorted(set(new) - set(old)):
        print(f"\n== new bench (no baseline): {bench} ==")
        for field, v in sorted(new[bench].items()):
            if field != "bench":
                print(f"  {field}: {fmt(v)}")

    if regressions:
        print(f"\n{len(regressions)} headline regression(s):")
        for bench, field, delta in regressions:
            print(f"  {bench}.{field}: {delta:+.1f}%")
        if args.strict:
            return 1
    else:
        print("\nno headline regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())

// PluginLoader — the user-space stand-in for NetBSD's `modload`.
//
// The paper loads plugins as kernel modules at run time; here, plugin
// implementations register a named factory with the global module registry
// (at static-init time, like an LKM's entry point being linked in), and
// `load` instantiates one into a PCU — at which point it registers its
// callback with the PCU exactly as the paper describes. `unload` quiesces
// and removes it. The lifecycle — load, create instances, bind to flows,
// all while traffic transits — is the paper's headline capability.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "plugin/pcu.hpp"

namespace rp::plugin {

class PluginLoader {
 public:
  using Factory = std::function<std::unique_ptr<Plugin>()>;

  explicit PluginLoader(PluginControlUnit& pcu) : pcu_(pcu) {}

  // The global module registry ("the modules on disk").
  static void register_module(const std::string& name, Factory f);
  static std::vector<std::string> available_modules();

  // modload: instantiate the named module and register it with the PCU.
  Status load(const std::string& name);
  // modunload: purge all instances and unregister.
  Status unload(const std::string& name);

  bool loaded(const std::string& name) const { return loaded_.contains(name); }
  std::vector<std::string> loaded_modules() const {
    return {loaded_.begin(), loaded_.end()};
  }

 private:
  static std::map<std::string, Factory>& registry();

  PluginControlUnit& pcu_;
  std::set<std::string> loaded_;
};

}  // namespace rp::plugin

// Static-registration helper: place
//   RP_REGISTER_PLUGIN(drr, [] { return std::make_unique<DrrPlugin>(); });
// in the plugin's translation unit.
#define RP_REGISTER_PLUGIN(name, factory)                                \
  namespace {                                                            \
  const bool rp_registered_##name = [] {                                 \
    ::rp::plugin::PluginLoader::register_module(#name, factory);         \
    return true;                                                         \
  }();                                                                   \
  }  // namespace


// Plugin and PluginInstance base classes.
//
// A Plugin is a loadable code module implementing one EISR function (one
// PluginType). A PluginInstance is a specific run-time configuration of a
// plugin (Section 3: "An instance is a specific run-time configuration of an
// individual plugin"); instances are what filters bind to and what gates
// call on the data path.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "netbase/status.hpp"
#include "pkt/packet.hpp"
#include "plugin/code.hpp"
#include "plugin/message.hpp"

namespace rp::plugin {

using netbase::Status;

class Plugin;
class PluginControlUnit;

// What the gate should do with the packet after the instance returns.
enum class Verdict : std::uint8_t {
  cont,      // continue along the IP core path
  consumed,  // instance took ownership (e.g. scheduler queued it)
  drop,      // discard (policy/authentication failure, RED drop, ...)
};

// A run of packets that all resolved to the *same* plugin instance at one
// gate (the batch-native gate ABI). The IP core partitions each burst by
// resolved binding after the one-pass AIU classification and hands every
// group to the instance as one call, so dispatch, soft-state access and
// instruction-cache warmth amortize across the run instead of being paid
// per packet.
//
// Contract (docs/plugin_authoring.md §11):
//   * packets appear in arrival order; all packets of one flow that are in
//     the burst are in the run, in order (grouping never splits a flow);
//   * `soft(i)` is packet i's per-flow soft-state slot for this gate — the
//     same pointer handle_packet would have received. Different packets of
//     the run may belong to different flows, so slots differ per packet;
//   * verdicts are prefilled with Verdict::cont; an implementation only
//     writes the exceptions (drop/consumed). Ownership follows the same
//     rules as handle_packet: `consumed` means the core releases the packet.
class PacketRun {
 public:
  PacketRun(pkt::Packet* const* pkts, void** const* softs, Verdict* verdicts,
            std::size_t n) noexcept
      : pkts_(pkts), softs_(softs), verdicts_(verdicts), n_(n) {}

  std::size_t size() const noexcept { return n_; }
  pkt::Packet& packet(std::size_t i) const noexcept { return *pkts_[i]; }
  // Per-flow soft-state slot for packet i; null for flow-less packets.
  void** soft(std::size_t i) const noexcept { return softs_[i]; }

  void set_verdict(std::size_t i, Verdict v) noexcept { verdicts_[i] = v; }
  Verdict verdict(std::size_t i) const noexcept { return verdicts_[i]; }

 private:
  pkt::Packet* const* pkts_;
  void** const* softs_;
  Verdict* verdicts_;
  std::size_t n_;
};

class PluginInstance {
 public:
  virtual ~PluginInstance() = default;

  // The main packet processing function called at the gate (data path).
  // `flow_soft` points at this flow's per-gate soft-state slot in the flow
  // table (null when the packet has no flow entry); plugins may store
  // per-flow state there — e.g. the DRR plugin keeps its per-flow queue
  // pointer in it (Section 5.2).
  virtual Verdict handle_packet(pkt::Packet& p, void** flow_soft) = 0;

  // Burst entry point: one call for a whole run of packets bound to this
  // instance at one gate. The default shim loops handle_packet, so every
  // existing plugin keeps working unchanged; hot plugins override this to
  // hoist per-call work (mode checks, SA lookups, counter updates) out of
  // the per-packet loop. See PacketRun for the ordering/soft-state contract.
  virtual void handle_burst(PacketRun& run) {
    for (std::size_t i = 0; i < run.size(); ++i)
      run.set_verdict(i, handle_packet(run.packet(i), run.soft(i)));
  }

  // Called by the AIU when a flow-table entry bound to this instance is
  // removed/recycled, so the instance can release its per-flow soft state.
  virtual void flow_removed(void* flow_soft) { (void)flow_soft; }

  // Versioned-upgrade state handoff (docs/plugin_authoring.md §13): the AIU
  // is rebinding a flow from `from` onto this instance and offers the flow's
  // per-gate soft state for adoption. `*flow_soft` is the state `from` owns;
  // an implementation that understands it takes ownership (it may also
  // replace the pointer to convert representation) and returns true — after
  // which `from` must no longer free or touch it. Returning false (the
  // default) declines: the AIU then has `from` release the state through
  // flow_removed and the flow restarts stateless under the new instance.
  // Control path only, called between bursts.
  virtual bool migrate_flow(PluginInstance* from, const pkt::FlowKey& key,
                            void** flow_soft) {
    (void)from;
    (void)key;
    (void)flow_soft;
    return false;
  }

  // Called by the AIU when a filter bound to this instance is removed; the
  // opaque pointer is the instance's private per-filter (hard) state.
  virtual void filter_removed(void* filter_state) { (void)filter_state; }

  // Plugin-specific per-instance message (PCU forwards unknown messages
  // that carry an instance id here).
  virtual Status handle_message(const PluginMsg& msg, PluginReply& reply) {
    (void)msg;
    (void)reply;
    return Status::unsupported;
  }

  Plugin* owner() const noexcept { return owner_; }
  InstanceId id() const noexcept { return id_; }

  // Opaque per-instance slot owned by the resilience supervisor: it caches
  // the instance's guard (circuit breaker + fault counters) here so gate
  // dispatch dereferences one pointer instead of probing a map. Null until
  // the supervisor first sees the instance; the supervisor nulls it again
  // when the instance is forgotten or the supervisor dies.
  void* resil_slot() const noexcept { return resil_slot_; }
  void set_resil_slot(void* s) noexcept { resil_slot_ = s; }

 private:
  friend class Plugin;
  Plugin* owner_{nullptr};
  InstanceId id_{kNoInstance};
  void* resil_slot_{nullptr};
};

class Plugin {
 public:
  Plugin(std::string name, PluginType type)
      : name_(std::move(name)), type_(type) {}
  virtual ~Plugin() = default;

  Plugin(const Plugin&) = delete;
  Plugin& operator=(const Plugin&) = delete;

  const std::string& name() const noexcept { return name_; }
  PluginType type() const noexcept { return type_; }
  PluginCode code() const noexcept { return code_; }
  // The PCU this plugin is registered with (set at registration, null
  // before). Instances reach kernel services published as PCU hooks — e.g.
  // the AIU's flow-offload hook — through owner()->pcu().
  PluginControlUnit* pcu() const noexcept { return pcu_; }

  // -- standardized messages (Section 4) --

  // create_instance: allocates instance data structures from `cfg`.
  Status create_instance(const Config& cfg, InstanceId& out) {
    auto inst = make_instance(cfg);
    if (!inst) return Status::invalid_argument;
    inst->owner_ = this;
    inst->id_ = next_id_++;
    out = inst->id_;
    instances_[out] = std::move(inst);
    return Status::ok;
  }

  // free_instance: removes all instance-specific data structures. The PCU
  // ensures the AIU has dropped all flow/filter references first.
  Status free_instance(InstanceId id) {
    return instances_.erase(id) ? Status::ok : Status::not_found;
  }

  PluginInstance* instance(InstanceId id) noexcept {
    auto it = instances_.find(id);
    return it == instances_.end() ? nullptr : it->second.get();
  }

  std::size_t instance_count() const noexcept { return instances_.size(); }

  // Plugin-specific message not tied to one instance.
  virtual Status handle_message(const PluginMsg& msg, PluginReply& reply) {
    (void)msg;
    (void)reply;
    return Status::unsupported;
  }

  // Iteration support (used by PCU teardown).
  auto begin() { return instances_.begin(); }
  auto end() { return instances_.end(); }

 protected:
  // Factory for a configured instance; nullptr rejects the configuration.
  virtual std::unique_ptr<PluginInstance> make_instance(const Config& cfg) = 0;

 private:
  friend class PluginControlUnit;
  std::string name_;
  PluginType type_;
  PluginCode code_{};  // assigned by the PCU at registration
  PluginControlUnit* pcu_{nullptr};  // set by the PCU at registration
  InstanceId next_id_{1};
  std::map<InstanceId, std::unique_ptr<PluginInstance>> instances_;
};

}  // namespace rp::plugin

#include "plugin/pcu.hpp"

namespace rp::plugin {

Status PluginControlUnit::register_plugin(std::unique_ptr<Plugin> p) {
  std::lock_guard lock(mu_);
  if (!p) return Status::invalid_argument;
  if (plugins_.contains(p->name())) return Status::already_exists;
  auto type_raw = static_cast<std::uint16_t>(p->type());
  p->code_ = PluginCode(p->type(), ++next_impl_[type_raw]);
  p->pcu_ = this;
  plugins_[p->name()] = std::move(p);
  return Status::ok;
}

Status PluginControlUnit::unregister_plugin(const std::string& name) {
  std::unique_ptr<Plugin> victim;
  {
    std::lock_guard lock(mu_);
    auto it = plugins_.find(name);
    if (it == plugins_.end()) return Status::not_found;
    victim = std::move(it->second);
    plugins_.erase(it);
  }
  // Drop every dangling data-path reference before the code goes away —
  // the kernel equivalent of quiescing before module unload.
  for (auto& [id, inst] : *victim) run_purge_hooks(inst.get());
  return Status::ok;
}

Plugin* PluginControlUnit::find(const std::string& name) noexcept {
  std::lock_guard lock(mu_);
  auto it = plugins_.find(name);
  return it == plugins_.end() ? nullptr : it->second.get();
}

Plugin* PluginControlUnit::find(PluginCode code) noexcept {
  std::lock_guard lock(mu_);
  for (auto& [n, p] : plugins_)
    if (p->code() == code) return p.get();
  return nullptr;
}

PluginInstance* PluginControlUnit::find_instance(const std::string& name,
                                                 InstanceId id) noexcept {
  Plugin* p = find(name);
  return p ? p->instance(id) : nullptr;
}

std::vector<std::string> PluginControlUnit::plugin_names() const {
  std::lock_guard lock(mu_);
  std::vector<std::string> out;
  out.reserve(plugins_.size());
  for (auto& [n, p] : plugins_) out.push_back(n);
  return out;
}

std::vector<std::string> PluginControlUnit::plugin_names(PluginType type) const {
  std::lock_guard lock(mu_);
  std::vector<std::string> out;
  for (auto& [n, p] : plugins_)
    if (p->type() == type) out.push_back(n);
  return out;
}

PluginReply PluginControlUnit::dispatch(const PluginMsg& msg) {
  PluginReply reply;
  Plugin* p = find(msg.plugin_name);
  if (!p) {
    reply.status = Status::not_found;
    reply.text = "no such plugin: " + msg.plugin_name;
    return reply;
  }

  switch (msg.kind) {
    case PluginMsg::Kind::create_instance:
      reply.status = p->create_instance(msg.args, reply.instance);
      break;

    case PluginMsg::Kind::free_instance: {
      PluginInstance* inst = p->instance(msg.instance);
      if (!inst) {
        reply.status = Status::not_found;
        break;
      }
      run_purge_hooks(inst);
      reply.status = p->free_instance(msg.instance);
      break;
    }

    case PluginMsg::Kind::register_instance: {
      PluginInstance* inst = p->instance(msg.instance);
      if (!inst) {
        reply.status = Status::not_found;
        break;
      }
      reply.status = register_hook_ ? register_hook_(inst, msg.filter_spec)
                                    : Status::unsupported;
      break;
    }

    case PluginMsg::Kind::deregister_instance: {
      PluginInstance* inst = p->instance(msg.instance);
      if (!inst) {
        reply.status = Status::not_found;
        break;
      }
      reply.status = deregister_hook_ ? deregister_hook_(inst, msg.filter_spec)
                                      : Status::unsupported;
      break;
    }

    case PluginMsg::Kind::custom: {
      // Instance-scoped custom messages go to the instance; others to the
      // plugin itself.
      if (msg.instance != kNoInstance) {
        PluginInstance* inst = p->instance(msg.instance);
        if (!inst) {
          reply.status = Status::not_found;
          break;
        }
        reply.status = inst->handle_message(msg, reply);
      } else {
        reply.status = p->handle_message(msg, reply);
      }
      break;
    }
  }
  return reply;
}

}  // namespace rp::plugin

// Plugin Control Unit (Section 4).
//
// The PCU manages loaded plugins — a table per plugin type storing names and
// dispatch entry points — and forwards control messages to them, from other
// kernel components and from user space (Plugin Manager, daemons). It is
// deliberately small: the paper's PCU is ~200 lines of C.
//
// register/deregister messages result in calls to registration functions
// published by the AIU; the AIU installs those here as hooks so that the
// plugin layer does not depend on the classifier.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "plugin/plugin.hpp"

namespace rp::plugin {

class PluginControlUnit {
 public:
  // Binds `inst` to the filter described by `spec` (textual six-tuple) at
  // the instance's gate. Installed by the AIU.
  using RegisterHook =
      std::function<Status(PluginInstance* inst, const std::string& spec)>;
  using DeregisterHook = RegisterHook;
  // Purges all flow-table and filter-table references to an instance;
  // called before free_instance and before unload.
  using PurgeHook = std::function<void(PluginInstance* inst)>;
  // Clears one flow's binding to `inst` at `gate` (and its bound_mask bit)
  // so the flow bypasses the gate from the next chunk on — the L7 verdict
  // cache's "mark clean, offload to the fast path". `expected_soft` must
  // match the binding's current soft pointer: a stale flow index (the entry
  // was recycled, or the same instance is bound to a different flow there)
  // then fails closed. Returns false when the hook refuses (no flow cache,
  // bad index, soft/instance mismatch). The caller must have released the
  // soft state already: the hook clears the slot without calling
  // flow_removed. Installed by the AIU; same-thread with gate dispatch.
  using FlowOffloadHook = std::function<bool(
      pkt::FlowIndex fix, PluginInstance* inst, PluginType gate,
      void* expected_soft)>;

  // -- loading-time interface (used by PluginLoader / modload equivalent) --

  // Registers a loaded plugin; assigns its 32-bit plugin code.
  Status register_plugin(std::unique_ptr<Plugin> p);

  // Unregisters and destroys the plugin; purges all instances first.
  Status unregister_plugin(const std::string& name);

  // -- lookup --

  Plugin* find(const std::string& name) noexcept;
  Plugin* find(PluginCode code) noexcept;
  PluginInstance* find_instance(const std::string& name, InstanceId id) noexcept;
  std::vector<std::string> plugin_names() const;
  std::vector<std::string> plugin_names(PluginType type) const;

  // -- control-path dispatch --

  PluginReply dispatch(const PluginMsg& msg);

  void set_register_hook(RegisterHook h) { register_hook_ = std::move(h); }
  void set_deregister_hook(DeregisterHook h) { deregister_hook_ = std::move(h); }
  void set_flow_offload_hook(FlowOffloadHook h) {
    flow_offload_hook_ = std::move(h);
  }
  // Data-path entry for plugins (via owner()->pcu()): see FlowOffloadHook.
  bool offload_flow(pkt::FlowIndex fix, PluginInstance* inst, PluginType gate,
                    void* expected_soft) {
    return flow_offload_hook_ &&
           flow_offload_hook_(fix, inst, gate, expected_soft);
  }
  // Purge hooks chain: the AIU drops flow/filter references, the core
  // detaches port schedulers, etc. All run before an instance is freed.
  void add_purge_hook(PurgeHook h) { purge_hooks_.push_back(std::move(h)); }

 private:
  void run_purge_hooks(PluginInstance* inst) {
    for (auto& h : purge_hooks_) h(inst);
  }

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Plugin>> plugins_;
  std::map<std::uint16_t, std::uint16_t> next_impl_;  // per-type id counter

  RegisterHook register_hook_;
  DeregisterHook deregister_hook_;
  FlowOffloadHook flow_offload_hook_;
  std::vector<PurgeHook> purge_hooks_;
};

}  // namespace rp::plugin

#include "plugin/loader.hpp"

namespace rp::plugin {

std::map<std::string, PluginLoader::Factory>& PluginLoader::registry() {
  static std::map<std::string, Factory> modules;
  return modules;
}

void PluginLoader::register_module(const std::string& name, Factory f) {
  registry()[name] = std::move(f);
}

std::vector<std::string> PluginLoader::available_modules() {
  std::vector<std::string> out;
  for (auto& [n, f] : registry()) out.push_back(n);
  return out;
}

Status PluginLoader::load(const std::string& name) {
  if (loaded_.contains(name)) return Status::already_exists;
  auto it = registry().find(name);
  if (it == registry().end()) return Status::not_found;
  auto plugin = it->second();
  if (!plugin) return Status::error;
  // The module name is the plugin name; the PCU routes messages on it.
  if (plugin->name() != name) return Status::invalid_argument;
  if (Status s = pcu_.register_plugin(std::move(plugin)); s != Status::ok)
    return s;
  loaded_.insert(name);
  return Status::ok;
}

Status PluginLoader::unload(const std::string& name) {
  if (!loaded_.contains(name)) return Status::not_found;
  if (Status s = pcu_.unregister_plugin(name); s != Status::ok) return s;
  loaded_.erase(name);
  return Status::ok;
}

}  // namespace rp::plugin

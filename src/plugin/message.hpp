// Control-path messages (Section 4).
//
// All control communication with plugins goes through the PCU as messages.
// The standardized set — create_instance / free_instance / register_instance
// / deregister_instance — is what guarantees interoperability; anything else
// is a plugin-specific message identified by name.
#pragma once

#include <charconv>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>

#include "netbase/status.hpp"

namespace rp::plugin {

using InstanceId = std::uint32_t;
constexpr InstanceId kNoInstance = 0;

// Key-value configuration arguments, e.g. {"iface","1"},{"weight","10"}.
class Config {
 public:
  Config() = default;
  Config(std::initializer_list<std::pair<const std::string, std::string>> init)
      : kv_(init) {}

  void set(std::string key, std::string value) {
    kv_[std::move(key)] = std::move(value);
  }

  std::optional<std::string_view> get(std::string_view key) const {
    auto it = kv_.find(std::string(key));
    if (it == kv_.end()) return std::nullopt;
    return it->second;
  }

  std::optional<std::int64_t> get_int(std::string_view key) const {
    auto v = get(key);
    if (!v) return std::nullopt;
    std::int64_t out = 0;
    auto [p, ec] = std::from_chars(v->data(), v->data() + v->size(), out);
    if (ec != std::errc{} || p != v->data() + v->size()) return std::nullopt;
    return out;
  }

  std::int64_t get_int_or(std::string_view key, std::int64_t dflt) const {
    auto v = get_int(key);
    return v ? *v : dflt;
  }

  std::string get_or(std::string_view key, std::string_view dflt) const {
    auto v = get(key);
    return std::string(v ? *v : dflt);
  }

  bool contains(std::string_view key) const {
    return kv_.contains(std::string(key));
  }

  auto begin() const { return kv_.begin(); }
  auto end() const { return kv_.end(); }
  std::size_t size() const { return kv_.size(); }

 private:
  std::map<std::string, std::string> kv_;
};

struct PluginMsg {
  enum class Kind {
    create_instance,
    free_instance,
    register_instance,    // bind instance to a filter at its gate
    deregister_instance,  // remove one filter binding
    custom,               // plugin-specific message
  };

  Kind kind{Kind::custom};
  std::string plugin_name;   // target plugin (PCU routes on this)
  InstanceId instance{kNoInstance};
  std::string filter_spec;   // register/deregister: textual six-tuple filter
  std::string custom_name;   // custom message discriminator
  Config args;
};

struct PluginReply {
  netbase::Status status{netbase::Status::ok};
  InstanceId instance{kNoInstance};  // create_instance result
  std::string text;                  // human-readable detail / query results
};

}  // namespace rp::plugin

// Plugin identification (Section 4).
//
// Each plugin is identified by a 32-bit code: the upper 16 bits give the
// plugin *type* — which corresponds one-to-one with a gate in the IP core —
// and the lower 16 bits distinguish implementations of that type.
#pragma once

#include <cstdint>
#include <string_view>

namespace rp::plugin {

enum class PluginType : std::uint16_t {
  none = 0,
  ipopt = 1,      // IPv6 option processing gate
  ipsec = 2,      // IP security gate
  sched = 3,      // packet scheduling gate (output side)
  bmp = 4,        // best-matching-prefix engines used by classifier/routing
  routing = 5,    // routing-as-classification (L4 switching, future work §8)
  stats = 6,      // statistics gathering (network management use case)
  congestion = 7, // congestion control, e.g. RED
  firewall = 8,   // firewall / ALG policy
  l7 = 9,         // stateful L7 inspection (stream reassembly + IDS/HTTP)
};

constexpr std::string_view to_string(PluginType t) noexcept {
  switch (t) {
    case PluginType::none: return "none";
    case PluginType::ipopt: return "ipopt";
    case PluginType::ipsec: return "ipsec";
    case PluginType::sched: return "sched";
    case PluginType::bmp: return "bmp";
    case PluginType::routing: return "routing";
    case PluginType::stats: return "stats";
    case PluginType::congestion: return "congestion";
    case PluginType::firewall: return "firewall";
    case PluginType::l7: return "l7";
  }
  return "unknown";
}

struct PluginCode {
  std::uint32_t raw{0};

  constexpr PluginCode() = default;
  constexpr PluginCode(PluginType type, std::uint16_t impl)
      : raw((std::uint32_t{static_cast<std::uint16_t>(type)} << 16) | impl) {}

  constexpr PluginType type() const noexcept {
    return static_cast<PluginType>(raw >> 16);
  }
  constexpr std::uint16_t impl() const noexcept {
    return static_cast<std::uint16_t>(raw & 0xffff);
  }

  friend constexpr bool operator==(PluginCode, PluginCode) = default;
};

}  // namespace rp::plugin

#include "pkt/packet.hpp"

namespace rp::pkt {

PacketPtr clone_packet(const Packet& p) {
  auto c = make_packet(p.size(), p.headroom());
  std::memcpy(c->data(), p.data(), p.size());
  c->arrival = p.arrival;
  c->in_iface = p.in_iface;
  c->out_iface = p.out_iface;
  c->fix = p.fix;
  c->key = p.key;
  c->key_valid = p.key_valid;
  c->ip_version = p.ip_version;
  c->l4_offset = p.l4_offset;
  return c;
}

}  // namespace rp::pkt

#include "pkt/packet.hpp"

namespace rp::pkt {

// Both grow paths detach to a fresh zero-filled heap buffer (matching the
// zero-fill the old vector-backed buffer gave new bytes). A pooled packet
// keeps its pool_ pointer: the chunk's inline buffer goes idle, and release
// still recycles the chunk while ~Packet frees the detached buffer.

void Packet::grow_front(std::size_t n) {
  const std::size_t grow = n - head_ + kDefaultHeadroom;
  const std::size_t ncap = cap_ + grow;
  auto* nb = new std::uint8_t[ncap]();
  std::memcpy(nb + grow + head_, buf_ + head_, len_);
  if (buf_owned_) delete[] buf_;
  if (pool_ && !buf_owned_) detail::note_pool_grow(pool_);
  buf_ = nb;
  cap_ = ncap;
  head_ += grow;
  buf_owned_ = true;
}

void Packet::grow_back(std::size_t n) {
  const std::size_t ncap = head_ + len_ + n;
  auto* nb = new std::uint8_t[ncap]();
  std::memcpy(nb, buf_, head_ + len_);
  if (buf_owned_) delete[] buf_;
  if (pool_ && !buf_owned_) detail::note_pool_grow(pool_);
  buf_ = nb;
  cap_ = ncap;
  buf_owned_ = true;
}

PacketPtr clone_packet(const Packet& p) {
  auto c = make_packet(p.size(), p.headroom());
  std::memcpy(c->data(), p.data(), p.size());
  c->arrival = p.arrival;
  c->in_iface = p.in_iface;
  c->out_iface = p.out_iface;
  c->fix = p.fix;
  c->key = p.key;
  c->key_valid = p.key_valid;
  c->ip_version = p.ip_version;
  c->l4_offset = p.l4_offset;
  return c;
}

}  // namespace rp::pkt

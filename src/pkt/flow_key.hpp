// The six-tuple that identifies a flow:
//   <source address, destination address, protocol,
//    source port, destination port, incoming interface>
//
// This is the paper's flow/filter key (Section 3). FlowKey always holds
// fully-specified values; wildcards and prefixes live in aiu::Filter.
#pragma once

#include <cstdint>
#include <string>

#include "netbase/ip.hpp"

namespace rp::pkt {

using IfIndex = std::uint16_t;
constexpr IfIndex kAnyIface = 0xffff;

enum class IpProto : std::uint8_t {
  hopopt = 0,
  icmp = 1,
  tcp = 6,
  udp = 17,
  ipv6_route = 43,
  ipv6_frag = 44,
  esp = 50,
  ah = 51,
  icmpv6 = 58,
  ipv6_none = 59,
  ipv6_dstopts = 60,
};

struct FlowKey {
  netbase::IpAddr src{};
  netbase::IpAddr dst{};
  std::uint8_t proto{0};
  std::uint16_t sport{0};
  std::uint16_t dport{0};
  IfIndex in_iface{0};
  // IPv6 flow label (0 when absent/IPv4). Table 3 of the paper measured
  // with the "IPv6 flow label NOT used"; carrying it in the key lets two
  // label-distinct streams between the same endpoints be distinct flows,
  // the intended IPv6 fast path.
  std::uint32_t flow_label{0};

  friend bool operator==(const FlowKey&, const FlowKey&) = default;

  // Fast flow hash. The paper reports a 17-cycle hash on a Pentium over the
  // 5-tuple; we use the same spirit — a handful of multiplies and xors over
  // the tuple words, cheap relative to a memory access.
  std::uint64_t hash() const noexcept {
    std::uint64_t h = src.v.hi ^ (src.v.lo * 0x9e3779b97f4a7c15ULL);
    h ^= dst.v.hi * 0xc2b2ae3d27d4eb4fULL;
    h ^= dst.v.lo + 0x165667b19e3779f9ULL + (h << 6) + (h >> 2);
    std::uint64_t ports = (std::uint64_t{sport} << 32) |
                          (std::uint64_t{dport} << 16) | proto;
    h ^= ports * 0xff51afd7ed558ccdULL;
    if (flow_label) h ^= (std::uint64_t{flow_label} << 20) * 0x9e3779b1ULL;
    h ^= h >> 33;
    h *= 0xc4ceb9fe1a85ec53ULL;
    h ^= h >> 29;
    return h;
  }

  std::string to_string() const;
};

}  // namespace rp::pkt

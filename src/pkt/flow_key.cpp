#include "pkt/flow_key.hpp"

namespace rp::pkt {

std::string FlowKey::to_string() const {
  std::string out = "<" + src.to_string() + ", " + dst.to_string() + ", " +
                    std::to_string(proto) + ", " + std::to_string(sport) +
                    ", " + std::to_string(dport) + ", if" +
                    std::to_string(in_iface);
  if (flow_label) out += ", fl=" + std::to_string(flow_label);
  return out + ">";
}

}  // namespace rp::pkt

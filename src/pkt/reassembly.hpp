// IPv4 datagram reassembly (RFC 791 §3.2 example algorithm) — the end-host
// counterpart of the core's output fragmentation; used by tests and
// examples that terminate traffic behind a small-MTU path.
//
// Fragments are keyed by <src, dst, proto, id>; holes are tracked with a
// block bitmap in 8-byte units. Incomplete datagrams are discarded after
// `timeout` of (virtual) time.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "netbase/clock.hpp"
#include "pkt/packet.hpp"

namespace rp::pkt {

class Ipv4Reassembler {
 public:
  // State-exhaustion guards: at most `max_partials` in-flight datagrams and
  // `max_bytes` of buffered payload; the oldest partial is evicted (and
  // counted) when either budget would be exceeded by a new fragment.
  static constexpr std::size_t kDefaultMaxPartials = 256;
  static constexpr std::size_t kDefaultMaxBytes = 1u << 20;  // 1 MiB

  explicit Ipv4Reassembler(netbase::SimTime timeout = 30 * netbase::kNsPerSec,
                           std::size_t max_partials = kDefaultMaxPartials,
                           std::size_t max_bytes = kDefaultMaxBytes)
      : timeout_(timeout), max_partials_(max_partials), max_bytes_(max_bytes) {}

  // Feeds one packet. Unfragmented packets come straight back. If the
  // packet completes a datagram, the reassembled datagram is returned;
  // otherwise nullptr. Malformed fragments are counted and dropped.
  PacketPtr feed(PacketPtr p, netbase::SimTime now);

  // Discards partial datagrams older than the timeout; returns how many.
  std::size_t expire(netbase::SimTime now);

  std::size_t pending() const noexcept { return partials_.size(); }
  std::size_t buffered_bytes() const noexcept { return buffered_bytes_; }
  std::uint64_t completed() const noexcept { return completed_; }
  std::uint64_t malformed() const noexcept { return malformed_; }
  // Datagrams discarded because a fragment rewrote already-received bytes
  // with different content (teardrop-style overlap) or contradicted the
  // established datagram end.
  std::uint64_t overlaps() const noexcept { return overlaps_; }
  // Datagrams discarded because header + payload would exceed 65535.
  std::uint64_t oversize() const noexcept { return oversize_; }
  // Partials evicted by the count/byte budgets.
  std::uint64_t evicted() const noexcept { return evicted_; }

 private:
  struct Key {
    netbase::U128 src, dst;
    std::uint8_t proto;
    std::uint16_t id;
    friend bool operator<(const Key& a, const Key& b) {
      if (!(a.src == b.src)) return a.src < b.src;
      if (!(a.dst == b.dst)) return a.dst < b.dst;
      if (a.proto != b.proto) return a.proto < b.proto;
      return a.id < b.id;
    }
  };
  struct Partial {
    std::vector<std::uint8_t> payload;   // grows as fragments land
    std::vector<bool> have;              // per 8-byte block
    std::size_t total_len{0};            // 0 until the last fragment arrives
    std::vector<std::uint8_t> header;    // from the offset-0 fragment
    netbase::SimTime first_seen{0};
    bool complete() const;
  };

  using PartialMap = std::map<Key, Partial>;
  PartialMap::iterator erase_partial(PartialMap::iterator it);
  // Evicts the oldest partial (skipping `keep`, if given).
  void evict_for_budget(const Key* keep = nullptr);

  netbase::SimTime timeout_;
  std::size_t max_partials_;
  std::size_t max_bytes_;
  std::size_t buffered_bytes_{0};
  PartialMap partials_;
  std::uint64_t completed_{0};
  std::uint64_t malformed_{0};
  std::uint64_t overlaps_{0};
  std::uint64_t oversize_{0};
  std::uint64_t evicted_{0};
};

}  // namespace rp::pkt

// PacketPool — per-worker recycling packet allocator (the fastclick
// allocator/bufferpool idea ported onto Packet).
//
// The heap path costs every packet two allocations (the Packet object and
// its buffer) plus the allocator's locks; at millions of packets per second
// that is the datapath's single biggest fixed tax. A pool preallocates a
// fixed set of chunks, each laid out as
//
//     [ chunk header | Packet object storage | inline buffer ]
//
// so one freelist pop hands out both the object and its buffer, and one
// push recycles them with full headroom restored (the placement-new on the
// next alloc resets head_/len_, so recycle after prepend/pull is free).
//
// Threading contract (mirrors a NIC queue pair):
//   * alloc()   — one thread at a time (the queue's producer);
//   * release   — ANY thread: dropping a PacketPtr pushes the chunk onto a
//     lock-free MPSC return stack (Treiber push; the owner drains it
//     wholesale with one exchange, so there is no ABA window);
//   * exhaustion/oversize fall back to plain heap packets — never blocks,
//     never fails, just stops being free.
//
// Lifetime: the pool handle and every outstanding packet each hold one
// reference on the shared core; whichever drops last frees the arena. A
// packet may therefore outlive its pool, but its buffer memory is only
// reclaimed when that last reference goes.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "pkt/packet.hpp"

namespace rp::pkt {

struct PoolChunk;  // [ header | Packet storage | inline buffer ], in the cpp

struct PoolStats {
  std::uint64_t allocs{0};           // alloc() calls
  std::uint64_t pool_hits{0};        // served from a chunk
  std::uint64_t heap_fallbacks{0};   // exhausted or oversize -> heap packet
  std::uint64_t recycles{0};         // chunks returned by released packets
  std::uint64_t grows_detached{0};   // pooled packets that outgrew the chunk
  std::size_t outstanding{0};        // chunks currently held by live packets
  std::size_t free_chunks{0};        // chunks ready in the owner freelist
};

class PacketPool {
 public:
  struct Options {
    std::size_t chunks{1024};     // fixed chunk count; the pool never grows
    std::size_t buf_bytes{2048};  // inline buffer per chunk (headroom+data)
  };

  PacketPool();
  explicit PacketPool(const Options& opt);
  ~PacketPool();

  PacketPool(const PacketPool&) = delete;
  PacketPool& operator=(const PacketPool&) = delete;

  // Pooled when a chunk is free and len+headroom fits the inline buffer;
  // heap fallback otherwise. Producer-side (one thread at a time).
  PacketPtr alloc(std::size_t len,
                  std::size_t headroom = Packet::kDefaultHeadroom);

  std::size_t buf_bytes() const noexcept { return buf_bytes_; }
  std::size_t chunks() const noexcept { return n_chunks_; }

  // Owner-thread / quiescent-state snapshot. free_chunks counts only the
  // drained owner freelist; chunks parked on the MPSC return stack are
  // counted by neither outstanding nor free_chunks until an alloc drains
  // them (so outstanding + free_chunks <= chunks()).
  PoolStats stats() const noexcept;

  // RAII scope: route make_packet() on the current thread through this
  // pool, so builders/tgen/clone allocate pooled without knowing it.
  class Use {
   public:
    explicit Use(PacketPool& p) noexcept;
    ~Use();
    Use(const Use&) = delete;
    Use& operator=(const Use&) = delete;

   private:
    PacketPool* prev_;
  };
  static PacketPool* current() noexcept;

 private:
  PoolChunk* pop_free() noexcept;  // owner freelist, refilled from MPSC stack

  PoolCore* core_;
  std::size_t buf_bytes_;
  std::size_t n_chunks_;

  // Owner-thread state (alloc side only).
  PoolChunk* free_{nullptr};
  std::size_t free_count_{0};
  std::uint64_t allocs_{0};
  std::uint64_t hits_{0};
  std::uint64_t fallbacks_{0};
};

}  // namespace rp::pkt

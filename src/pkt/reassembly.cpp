#include "pkt/reassembly.hpp"

#include <algorithm>
#include <cstring>

#include "netbase/byteorder.hpp"
#include "pkt/builder.hpp"
#include "pkt/headers.hpp"

namespace rp::pkt {

bool Ipv4Reassembler::Partial::complete() const {
  if (total_len == 0 || header.empty()) return false;
  const std::size_t blocks = (total_len + 7) / 8;
  if (have.size() < blocks) return false;
  for (std::size_t i = 0; i < blocks; ++i)
    if (!have[i]) return false;
  return true;
}

Ipv4Reassembler::PartialMap::iterator Ipv4Reassembler::erase_partial(
    PartialMap::iterator it) {
  buffered_bytes_ -= it->second.payload.size();
  return partials_.erase(it);
}

// Frees room by dropping the oldest partial; `keep` (the datagram being
// fed) is never the victim.
void Ipv4Reassembler::evict_for_budget(const Key* keep) {
  auto oldest = partials_.end();
  for (auto it = partials_.begin(); it != partials_.end(); ++it) {
    if (&it->first == keep) continue;
    if (oldest == partials_.end() ||
        it->second.first_seen < oldest->second.first_seen)
      oldest = it;
  }
  if (oldest != partials_.end()) {
    erase_partial(oldest);
    ++evicted_;
  }
}

PacketPtr Ipv4Reassembler::feed(PacketPtr p, netbase::SimTime now) {
  Ipv4Header h;
  if (!p || !h.parse(p->bytes())) {
    ++malformed_;
    return nullptr;
  }
  const bool mf = (h.flags & 0x1) != 0;
  if (h.frag_off == 0 && !mf) return p;  // not fragmented

  const std::size_t hlen = h.header_len();
  // Payload length comes from the length *field*, not the capture: parse()
  // guarantees hlen <= total_len <= capture, so a padded capture cannot
  // inflate the fragment.
  const std::size_t frag_len = h.total_len - hlen;
  const std::size_t off = std::size_t{h.frag_off} * 8;
  if (frag_len == 0 || (mf && frag_len % 8 != 0) ||
      hlen + off + frag_len > 65535) {
    ++malformed_;
    return nullptr;
  }

  Key k{netbase::IpAddr(h.src).key(), netbase::IpAddr(h.dst).key(), h.proto,
        h.id};
  auto it = partials_.find(k);
  if (it == partials_.end()) {
    while (partials_.size() >= max_partials_ ||
           (!partials_.empty() &&
            buffered_bytes_ + off + frag_len > max_bytes_))
      evict_for_budget();
    it = partials_.emplace(k, Partial{}).first;
    it->second.first_seen = now;
  }
  Partial& part = it->second;

  // A fragment may not contradict the established datagram end: no data at
  // or past a recorded total_len, and no second, different "last" fragment.
  if (part.total_len != 0 &&
      (off + frag_len > part.total_len ||
       (!mf && off + frag_len != part.total_len))) {
    erase_partial(it);
    ++overlaps_;
    return nullptr;
  }

  if (part.payload.size() < off + frag_len) {
    buffered_bytes_ += off + frag_len - part.payload.size();
    part.payload.resize(off + frag_len);
    // Growth of an existing partial counts against the byte budget too
    // (a single partial may exceed it alone — bounded by 64KiB).
    while (buffered_bytes_ > max_bytes_ && partials_.size() > 1)
      evict_for_budget(&it->first);
  }
  // Overlap policy: byte-identical retransmissions are fine; a fragment
  // that rewrites already-received bytes with different content (teardrop
  // family) poisons the whole datagram, which is discarded.
  const std::size_t first_block = off / 8;
  const std::size_t blocks = (frag_len + 7) / 8;
  for (std::size_t i = 0; i < blocks; ++i) {
    if (first_block + i >= part.have.size() || !part.have[first_block + i])
      continue;
    const std::size_t lo = off + i * 8;
    const std::size_t n = std::min<std::size_t>(8, off + frag_len - lo);
    if (std::memcmp(part.payload.data() + lo, p->data() + hlen + (lo - off),
                    n) != 0) {
      erase_partial(it);
      ++overlaps_;
      return nullptr;
    }
  }
  std::memcpy(part.payload.data() + off, p->data() + hlen, frag_len);
  if (part.have.size() < first_block + blocks)
    part.have.resize(first_block + blocks);
  for (std::size_t i = 0; i < blocks; ++i) part.have[first_block + i] = true;

  if (!mf) part.total_len = off + frag_len;
  if (h.frag_off == 0)
    part.header.assign(p->data(), p->data() + hlen);

  if (!part.complete()) return nullptr;

  // The rebuilt total length must fit its 16-bit field; per-fragment checks
  // bound each fragment's own hlen, but the kept header is the offset-0
  // fragment's and may be longer.
  if (part.header.size() + part.total_len > 65535) {
    erase_partial(it);
    ++oversize_;
    return nullptr;
  }

  // Rebuild the datagram: original header (offset-0 fragment's), cleared
  // fragment fields, recomputed checksum.
  auto out = make_packet(part.header.size() + part.total_len);
  std::memcpy(out->data(), part.header.data(), part.header.size());
  std::memcpy(out->data() + part.header.size(), part.payload.data(),
              part.total_len);
  netbase::store_be16(out->data() + 2,
                      static_cast<std::uint16_t>(out->size()));
  netbase::store_be16(out->data() + 6, 0);  // no flags, offset 0
  Ipv4Header::finalize_checksum(out->data(), part.header.size());
  erase_partial(it);
  ++completed_;
  extract_flow_key(*out);
  return out;
}

std::size_t Ipv4Reassembler::expire(netbase::SimTime now) {
  std::size_t n = 0;
  for (auto it = partials_.begin(); it != partials_.end();) {
    if (now - it->second.first_seen >= timeout_) {
      it = erase_partial(it);
      ++n;
    } else {
      ++it;
    }
  }
  return n;
}

}  // namespace rp::pkt

#include "pkt/reassembly.hpp"

#include <cstring>

#include "netbase/byteorder.hpp"
#include "pkt/builder.hpp"
#include "pkt/headers.hpp"

namespace rp::pkt {

bool Ipv4Reassembler::Partial::complete() const {
  if (total_len == 0 || header.empty()) return false;
  const std::size_t blocks = (total_len + 7) / 8;
  if (have.size() < blocks) return false;
  for (std::size_t i = 0; i < blocks; ++i)
    if (!have[i]) return false;
  return true;
}

PacketPtr Ipv4Reassembler::feed(PacketPtr p, netbase::SimTime now) {
  Ipv4Header h;
  if (!p || !h.parse(p->bytes())) {
    ++malformed_;
    return nullptr;
  }
  const bool mf = (h.flags & 0x1) != 0;
  if (h.frag_off == 0 && !mf) return p;  // not fragmented

  const std::size_t hlen = h.header_len();
  const std::size_t frag_len = p->size() - hlen;
  const std::size_t off = std::size_t{h.frag_off} * 8;
  if (frag_len == 0 || (mf && frag_len % 8 != 0) ||
      off + frag_len > 65535) {
    ++malformed_;
    return nullptr;
  }

  Key k{netbase::IpAddr(h.src).key(), netbase::IpAddr(h.dst).key(), h.proto,
        h.id};
  Partial& part = partials_[k];
  if (part.first_seen == 0) part.first_seen = now;

  if (part.payload.size() < off + frag_len) part.payload.resize(off + frag_len);
  std::memcpy(part.payload.data() + off, p->data() + hlen, frag_len);
  const std::size_t first_block = off / 8;
  const std::size_t blocks = (frag_len + 7) / 8;
  if (part.have.size() < first_block + blocks)
    part.have.resize(first_block + blocks);
  for (std::size_t i = 0; i < blocks; ++i) part.have[first_block + i] = true;

  if (!mf) part.total_len = off + frag_len;
  if (h.frag_off == 0)
    part.header.assign(p->data(), p->data() + hlen);

  if (!part.complete()) return nullptr;

  // Rebuild the datagram: original header (offset-0 fragment's), cleared
  // fragment fields, recomputed checksum.
  auto out = make_packet(part.header.size() + part.total_len);
  std::memcpy(out->data(), part.header.data(), part.header.size());
  std::memcpy(out->data() + part.header.size(), part.payload.data(),
              part.total_len);
  netbase::store_be16(out->data() + 2,
                      static_cast<std::uint16_t>(out->size()));
  netbase::store_be16(out->data() + 6, 0);  // no flags, offset 0
  Ipv4Header::finalize_checksum(out->data(), part.header.size());
  partials_.erase(k);
  ++completed_;
  extract_flow_key(*out);
  return out;
}

std::size_t Ipv4Reassembler::expire(netbase::SimTime now) {
  std::size_t n = 0;
  for (auto it = partials_.begin(); it != partials_.end();) {
    if (now - it->second.first_seen >= timeout_) {
      it = partials_.erase(it);
      ++n;
    } else {
      ++it;
    }
  }
  return n;
}

}  // namespace rp::pkt

#include "pkt/builder.hpp"

#include <cassert>
#include <cstring>

#include "netbase/byteorder.hpp"
#include "netbase/checksum.hpp"

namespace rp::pkt {

using netbase::IpVersion;
using netbase::load_be16;
using netbase::store_be16;

namespace {

// One's-complement sum of the v4/v6 pseudo header.
std::uint32_t pseudo_header_sum(const Packet& p, std::uint8_t proto,
                                std::size_t l4_len) noexcept {
  std::uint32_t sum = 0;
  if (p.ip_version == IpVersion::v4) {
    std::uint8_t ph[12];
    netbase::store_be32(&ph[0], static_cast<std::uint32_t>(p.key.src.v.lo));
    netbase::store_be32(&ph[4], static_cast<std::uint32_t>(p.key.dst.v.lo));
    ph[8] = 0;
    ph[9] = proto;
    store_be16(&ph[10], static_cast<std::uint16_t>(l4_len));
    sum = netbase::checksum_partial(ph, sizeof ph);
  } else {
    std::uint8_t ph[40];
    netbase::Ipv6Addr(p.key.src.v).to_bytes(&ph[0]);
    netbase::Ipv6Addr(p.key.dst.v).to_bytes(&ph[16]);
    netbase::store_be32(&ph[32], static_cast<std::uint32_t>(l4_len));
    ph[36] = ph[37] = ph[38] = 0;
    ph[39] = proto;
    sum = netbase::checksum_partial(ph, sizeof ph);
  }
  return sum;
}

void write_ip_header(Packet& p, const netbase::IpAddr& src,
                     const netbase::IpAddr& dst, std::uint8_t proto,
                     std::uint8_t ttl, std::uint8_t tos,
                     std::size_t l4_and_payload, std::uint32_t flow_label = 0) {
  if (src.ver == IpVersion::v4) {
    Ipv4Header ip;
    ip.tos = tos;
    ip.total_len =
        static_cast<std::uint16_t>(Ipv4Header::kMinSize + l4_and_payload);
    ip.ttl = ttl;
    ip.proto = proto;
    ip.src = src.v4();
    ip.dst = dst.v4();
    ip.write(p.data());
    Ipv4Header::finalize_checksum(p.data(), Ipv4Header::kMinSize);
    p.ip_version = IpVersion::v4;
    p.l4_offset = Ipv4Header::kMinSize;
  } else {
    Ipv6Header ip;
    ip.traffic_class = tos;
    ip.flow_label = flow_label & 0xfffff;
    ip.payload_len = static_cast<std::uint16_t>(l4_and_payload);
    ip.next_header = proto;
    ip.hop_limit = ttl;
    ip.src = src.v6();
    ip.dst = dst.v6();
    ip.write(p.data());
    p.ip_version = IpVersion::v6;
    p.l4_offset = Ipv6Header::kSize;
  }
}

}  // namespace

PacketPtr build_udp(const UdpSpec& spec) {
  assert(spec.src.ver == spec.dst.ver);
  const std::size_t l3 = spec.src.ver == IpVersion::v4 ? Ipv4Header::kMinSize
                                                       : Ipv6Header::kSize;
  const std::size_t l4_len = UdpHeader::kSize + spec.payload_len;
  auto p = make_packet(l3 + l4_len);
  write_ip_header(*p, spec.src, spec.dst,
                  static_cast<std::uint8_t>(IpProto::udp), spec.ttl, spec.tos,
                  l4_len, spec.flow_label);

  UdpHeader udp;
  udp.sport = spec.sport;
  udp.dport = spec.dport;
  udp.length = static_cast<std::uint16_t>(l4_len);
  udp.write(p->data() + p->l4_offset);
  std::memset(p->data() + p->l4_offset + UdpHeader::kSize, spec.payload_fill,
              spec.payload_len);

  extract_flow_key(*p);
  store_be16(p->data() + p->l4_offset + 6, l4_checksum(*p));
  return p;
}

PacketPtr build_tcp(const TcpSpec& spec) {
  assert(spec.src.ver == spec.dst.ver);
  const std::size_t l3 = spec.src.ver == IpVersion::v4 ? Ipv4Header::kMinSize
                                                       : Ipv6Header::kSize;
  const std::size_t l4_len = TcpHeader::kMinSize + spec.payload_len;
  auto p = make_packet(l3 + l4_len);
  write_ip_header(*p, spec.src, spec.dst,
                  static_cast<std::uint8_t>(IpProto::tcp), spec.ttl, 0,
                  l4_len);

  TcpHeader tcp;
  tcp.sport = spec.sport;
  tcp.dport = spec.dport;
  tcp.seq = spec.seq;
  tcp.ack = spec.ack;
  tcp.flags = spec.flags;
  tcp.window = 65535;
  tcp.write(p->data() + p->l4_offset);
  if (spec.payload)
    std::memcpy(p->data() + p->l4_offset + TcpHeader::kMinSize, spec.payload,
                spec.payload_len);
  else
    std::memset(p->data() + p->l4_offset + TcpHeader::kMinSize, 0,
                spec.payload_len);

  extract_flow_key(*p);
  store_be16(p->data() + p->l4_offset + 16, l4_checksum(*p));
  return p;
}

PacketPtr build_udp6_hopopts(const UdpSpec& spec,
                             std::span<const std::uint8_t> options) {
  assert(spec.src.ver == IpVersion::v6);
  // Hop-by-hop header: 2 fixed bytes + options, padded to multiple of 8.
  std::size_t opt_area = 2 + options.size();
  std::size_t hbh_len = (opt_area + 7) / 8 * 8;
  const std::size_t l4_len = UdpHeader::kSize + spec.payload_len;
  auto p = make_packet(Ipv6Header::kSize + hbh_len + l4_len);

  Ipv6Header ip;
  ip.traffic_class = spec.tos;
  ip.payload_len = static_cast<std::uint16_t>(hbh_len + l4_len);
  ip.next_header = static_cast<std::uint8_t>(IpProto::hopopt);
  ip.hop_limit = spec.ttl;
  ip.src = spec.src.v6();
  ip.dst = spec.dst.v6();
  ip.write(p->data());

  std::uint8_t* hbh = p->data() + Ipv6Header::kSize;
  hbh[0] = static_cast<std::uint8_t>(IpProto::udp);
  hbh[1] = static_cast<std::uint8_t>(hbh_len / 8 - 1);
  std::memcpy(hbh + 2, options.data(), options.size());
  // Pad with Pad1 (0x00) options.
  std::memset(hbh + 2 + options.size(), 0, hbh_len - 2 - options.size());

  UdpHeader udp;
  udp.sport = spec.sport;
  udp.dport = spec.dport;
  udp.length = static_cast<std::uint16_t>(l4_len);
  udp.write(p->data() + Ipv6Header::kSize + hbh_len);
  std::memset(p->data() + Ipv6Header::kSize + hbh_len + UdpHeader::kSize,
              spec.payload_fill, spec.payload_len);

  extract_flow_key(*p);
  store_be16(p->data() + p->l4_offset + 6, l4_checksum(*p));
  return p;
}

bool extract_flow_key(Packet& p) noexcept {
  if (p.key_valid) return true;
  p.invalidate_flow_hash();
  auto b = p.bytes();
  if (b.empty()) return false;

  std::uint8_t proto = 0;
  std::size_t l4 = 0;
  std::size_t limit = 0;    // end of the L3 datagram within the capture
  bool fragmented = false;  // part of a fragment series (first or later)
  if ((b[0] >> 4) == 4) {
    Ipv4Header ip;
    if (!ip.parse(b)) return false;  // enforces total_len bounds
    p.ip_version = IpVersion::v4;
    p.key.src = netbase::IpAddr(ip.src);
    p.key.dst = netbase::IpAddr(ip.dst);
    proto = ip.proto;
    l4 = ip.header_len();
    limit = ip.total_len;
    fragmented = ip.frag_off != 0 || (ip.flags & 0x1) != 0;
    // Fragments other than the first carry no L4 header.
    if (ip.frag_off != 0) {
      p.key.proto = proto;
      p.key.sport = p.key.dport = 0;
      p.key.in_iface = p.in_iface;
      p.l4_offset = static_cast<std::uint16_t>(l4);
      p.key_valid = true;
      return true;
    }
  } else if ((b[0] >> 4) == 6) {
    Ipv6Header ip;
    if (!ip.parse(b)) return false;
    p.ip_version = IpVersion::v6;
    p.key.src = netbase::IpAddr(ip.src);
    p.key.dst = netbase::IpAddr(ip.dst);
    p.key.flow_label = ip.flow_label;
    // The ext-header walk is bounded by payload_len, not the capture: a
    // lying payload_len must not let the walk read padding bytes.
    if (Ipv6Header::kSize + std::size_t{ip.payload_len} > b.size())
      return false;
    Ipv6ExtWalk walk;
    if (!walk_ipv6_ext_headers(
            b.subspan(Ipv6Header::kSize, ip.payload_len), ip.next_header,
            walk))
      return false;
    proto = walk.l4_proto;
    l4 = Ipv6Header::kSize + walk.l4_offset;
    limit = Ipv6Header::kSize + ip.payload_len;
    fragmented = walk.has_fragment;
    // Non-first v6 fragments carry no L4 header: same treatment as v4.
    if (walk.has_fragment && walk.frag_off != 0) {
      p.key.proto = proto;
      p.key.sport = p.key.dport = 0;
      p.key.in_iface = p.in_iface;
      p.l4_offset = static_cast<std::uint16_t>(l4);
      p.key_valid = true;
      return true;
    }
  } else {
    return false;
  }

  p.key.proto = proto;
  p.key.sport = p.key.dport = 0;
  if (proto == static_cast<std::uint8_t>(IpProto::udp) ||
      proto == static_cast<std::uint8_t>(IpProto::tcp)) {
    // Fail closed: a TCP/UDP packet whose ports don't fit inside the
    // datagram is malformed, not a portless flow.
    if (l4 + 4 > limit) return false;
    p.key.sport = load_be16(&b[l4]);
    p.key.dport = load_be16(&b[l4 + 2]);
    if (!fragmented) {
      if (proto == static_cast<std::uint8_t>(IpProto::udp)) {
        // UDP length must cover its own header and fit in the datagram.
        // Fragments are exempt: the first fragment's UDP length describes
        // the reassembled datagram, not this piece.
        if (l4 + UdpHeader::kSize > limit) return false;
        const std::size_t ulen = load_be16(&b[l4 + 4]);
        if (ulen < UdpHeader::kSize || l4 + ulen > limit) return false;
      } else {
        if (l4 + TcpHeader::kMinSize > limit) return false;
        const std::size_t doff = std::size_t{b[l4 + 12] >> 4} * 4;
        if (doff < TcpHeader::kMinSize || l4 + doff > limit) return false;
      }
    }
  }
  p.key.in_iface = p.in_iface;
  p.l4_offset = static_cast<std::uint16_t>(l4);
  p.key_valid = true;
  return true;
}

std::uint16_t l4_checksum(const Packet& p) noexcept {
  const std::size_t l4 = p.l4_offset;
  if (l4 >= p.size()) return 0;
  const std::size_t l4_len = p.size() - l4;
  std::uint32_t sum = pseudo_header_sum(p, p.key.proto, l4_len);
  // Sum the transport header + payload with the checksum field zeroed.
  const std::uint8_t* d = p.data() + l4;
  std::size_t ck_off;
  if (p.key.proto == static_cast<std::uint8_t>(IpProto::udp)) {
    ck_off = 6;
  } else if (p.key.proto == static_cast<std::uint8_t>(IpProto::tcp)) {
    ck_off = 16;
  } else {
    return 0;
  }
  sum = netbase::checksum_partial(d, ck_off, sum);
  sum = netbase::checksum_partial(d + ck_off + 2, l4_len - ck_off - 2, sum);
  std::uint16_t result = static_cast<std::uint16_t>(~sum);
  return result == 0 ? 0xffff : result;
}

}  // namespace rp::pkt

// Packet construction and header extraction helpers.
//
// Builders produce fully-formed, checksum-correct packets; they are used by
// the traffic generators, examples, and tests. `extract_flow_key` is the
// core's single header parse that fills the packet's six-tuple (Section 3.2:
// flow table entries are identified by the same six-tuple as filters).
#pragma once

#include <cstdint>
#include <span>

#include "pkt/headers.hpp"
#include "pkt/packet.hpp"

namespace rp::pkt {

struct UdpSpec {
  netbase::IpAddr src{};
  netbase::IpAddr dst{};
  std::uint16_t sport{0};
  std::uint16_t dport{0};
  std::size_t payload_len{0};
  std::uint8_t ttl{64};           // hop limit for v6
  std::uint8_t tos{0};            // traffic class for v6
  std::uint32_t flow_label{0};    // IPv6 only (20 bits)
  std::uint8_t payload_fill{0};
};

struct TcpSpec {
  netbase::IpAddr src{};
  netbase::IpAddr dst{};
  std::uint16_t sport{0};
  std::uint16_t dport{0};
  std::uint32_t seq{0};
  std::uint32_t ack{0};
  std::uint8_t flags{0x10};  // ACK
  std::size_t payload_len{0};
  // Payload content: when non-null, payload_len bytes are copied from here
  // (the stateful TCP generator carries real stream bytes); null zero-fills.
  const std::uint8_t* payload{nullptr};
  std::uint8_t ttl{64};
};

// Builds an IPv4 or IPv6 UDP/TCP packet depending on the address family of
// spec.src (families must match).
PacketPtr build_udp(const UdpSpec& spec);
PacketPtr build_tcp(const TcpSpec& spec);

// Builds an IPv6 UDP packet with a hop-by-hop options extension header whose
// option area is given by `options` (padded to 8-byte alignment).
PacketPtr build_udp6_hopopts(const UdpSpec& spec,
                             std::span<const std::uint8_t> options);

// Parses L3 (+v6 extension headers) and L4 to fill p.key / p.ip_version /
// p.l4_offset. Returns false on malformed packets. Idempotent.
bool extract_flow_key(Packet& p) noexcept;

// Transport checksum over the IPv4/IPv6 pseudo header; used by builders and
// verified by tests.
std::uint16_t l4_checksum(const Packet& p) noexcept;

}  // namespace rp::pkt

// Packet — the user-space equivalent of the BSD mbuf chain the paper's
// kernel implementation manipulates.
//
// A Packet owns one contiguous buffer with reserved headroom so plugins
// (e.g. ESP) can prepend headers without copying, mirroring how mbufs allow
// M_PREPEND. The metadata block plays the role of the mbuf packet header
// plus the paper's additions: most importantly the **flow index (FIX)** —
// the pointer into the AIU flow table that lets every gate after the first
// reach its plugin instance with a single indirect call (Section 3.2).
//
// Buffer ownership comes in two flavors, chosen at allocation time and
// invisible to every consumer because `PacketPtr`'s deleter routes both:
//   * heap packets own a `new[]`ed buffer (the default, and the only mode
//     before packet pools existed);
//   * pooled packets (pkt/packet_pool.hpp) live inside a fixed-size pool
//     chunk and borrow the chunk's inline buffer — releasing the PacketPtr
//     recycles the chunk instead of touching the allocator. A pooled packet
//     that outgrows its chunk detaches to a heap buffer transparently.
#pragma once

#include <cstdint>
#include <cstring>
#include <memory>
#include <span>

#include "netbase/clock.hpp"
#include "pkt/flow_key.hpp"

namespace rp::pkt {

// Index of a flow-table row; carried in the packet like the FIX in the mbuf.
using FlowIndex = std::int32_t;
constexpr FlowIndex kNoFlow = -1;

class PacketPool;
struct PoolCore;

namespace detail {
// Out-of-line pool bookkeeping (defined in packet_pool.cpp) so packet.cpp
// never needs the pool's internals.
void note_pool_grow(PoolCore* core) noexcept;
}  // namespace detail

class Packet {
 public:
  static constexpr std::size_t kDefaultHeadroom = 128;

  Packet() : Packet(0) {}
  explicit Packet(std::size_t len, std::size_t headroom = kDefaultHeadroom)
      : buf_(new std::uint8_t[headroom + len]()),
        cap_(headroom + len),
        head_(headroom),
        len_(len) {}

  ~Packet() {
    if (buf_owned_) delete[] buf_;
  }

  Packet(const Packet&) = delete;
  Packet& operator=(const Packet&) = delete;
  // Moves are deleted: a pooled packet's buffer belongs to its chunk, so a
  // moved-to object could not take ownership. Nothing moves Packets by value
  // — PacketPtr moves the pointer.
  Packet(Packet&&) = delete;
  Packet& operator=(Packet&&) = delete;

  std::uint8_t* data() noexcept { return buf_ + head_; }
  const std::uint8_t* data() const noexcept { return buf_ + head_; }
  std::size_t size() const noexcept { return len_; }
  std::span<std::uint8_t> bytes() noexcept { return {data(), len_}; }
  std::span<const std::uint8_t> bytes() const noexcept { return {data(), len_}; }

  std::size_t headroom() const noexcept { return head_; }
  std::size_t tailroom() const noexcept { return cap_ - head_ - len_; }

  // True when the buffer is a pool chunk's inline storage.
  bool pooled() const noexcept { return pool_ != nullptr; }

  // Grow the packet at the front (M_PREPEND). Returns pointer to the new
  // first byte. Reallocates only if headroom is exhausted.
  std::uint8_t* prepend(std::size_t n) {
    if (n > head_) grow_front(n);
    head_ -= n;
    len_ += n;
    return data();
  }

  // Drop n bytes from the front (m_adj positive).
  void pull(std::size_t n) noexcept {
    if (n > len_) n = len_;
    head_ += n;
    len_ -= n;
  }

  // Grow the packet at the tail; returns pointer to the appended region.
  // The appended bytes are uninitialized (a recycled pool chunk's tailroom
  // keeps its old contents) — callers must write the full region.
  std::uint8_t* append(std::size_t n) {
    if (n > tailroom()) grow_back(n);
    std::uint8_t* p = data() + len_;
    len_ += n;
    return p;
  }

  // Drop n bytes from the tail (m_adj negative).
  void trim(std::size_t n) noexcept {
    if (n > len_) n = len_;
    len_ -= n;
  }

  // ---- metadata (mbuf pkthdr equivalent) ----
  netbase::SimTime arrival{0};  // timestamped at driver receive
  IfIndex in_iface{0};
  IfIndex out_iface{kAnyIface};

  // Flow index: row in the AIU flow table, set by the first gate's
  // classification; kNoFlow until then (Section 3.2 "Associating the packet
  // with a flow index").
  FlowIndex fix{kNoFlow};

  // Parsed six-tuple; filled once by the core's header parse.
  FlowKey key{};
  bool key_valid{false};

  netbase::IpVersion ip_version{netbase::IpVersion::v4};
  std::uint16_t l4_offset{0};  // offset of the transport header

  // Hash-once cache over `key`: the burst path hashes every packet of a
  // burst up front (to prefetch flow-table buckets) and the flow lookup
  // then reuses the same value, so the mix runs once per packet no matter
  // how many gates probe. Invalidated whenever `key` is (re)derived.
  std::uint64_t flow_hash() noexcept {
    if (!key_hash_valid_) {
      key_hash_ = key.hash();
      key_hash_valid_ = true;
    }
    return key_hash_;
  }
  void invalidate_flow_hash() noexcept { key_hash_valid_ = false; }

 private:
  friend class PacketPool;
  friend struct PacketDeleter;

  // Pool-internal: adopt a chunk's inline buffer without owning it. The
  // buffer stays the chunk's until the packet outgrows it (grow_* detaches
  // to a heap buffer; the chunk still returns to the pool on release).
  Packet(std::uint8_t* storage, std::size_t cap, std::size_t len,
         std::size_t headroom, PoolCore* core) noexcept
      : buf_(storage),
        cap_(cap),
        head_(headroom),
        len_(len),
        pool_(core),
        buf_owned_(false) {}

  // Slow paths (packet.cpp): reallocate to a heap buffer, preserving
  // contents and — for grow_front — opening n-head_+kDefaultHeadroom new
  // front bytes, exactly the old vector-backed semantics.
  void grow_front(std::size_t n);
  void grow_back(std::size_t n);

  std::uint8_t* buf_;
  std::size_t cap_;
  std::size_t head_;
  std::size_t len_;
  PoolCore* pool_{nullptr};  // owning pool; null = plain heap packet
  bool buf_owned_{true};     // buf_ was new[]ed here (vs chunk-inline)
  std::uint64_t key_hash_{0};
  bool key_hash_valid_{false};
};

// Releases through the pool when the packet is pooled, through the heap
// otherwise — so `PacketPtr` keeps the exact ABI it had as a plain
// unique_ptr while pools stay invisible to all packet consumers.
struct PacketDeleter {
  void operator()(Packet* p) const noexcept;
};

using PacketPtr = std::unique_ptr<Packet, PacketDeleter>;

// Allocates from the calling thread's scoped PacketPool when one is active
// (PacketPool::Use), from the heap otherwise. Defined in packet_pool.cpp.
PacketPtr make_packet(std::size_t len,
                      std::size_t headroom = Packet::kDefaultHeadroom);

// Deep copy (used by tests and by plugins that need to duplicate traffic).
PacketPtr clone_packet(const Packet& p);

}  // namespace rp::pkt

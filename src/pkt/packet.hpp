// Packet — the user-space equivalent of the BSD mbuf chain the paper's
// kernel implementation manipulates.
//
// A Packet owns one contiguous buffer with reserved headroom so plugins
// (e.g. ESP) can prepend headers without copying, mirroring how mbufs allow
// M_PREPEND. The metadata block plays the role of the mbuf packet header
// plus the paper's additions: most importantly the **flow index (FIX)** —
// the pointer into the AIU flow table that lets every gate after the first
// reach its plugin instance with a single indirect call (Section 3.2).
#pragma once

#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <vector>

#include "netbase/clock.hpp"
#include "pkt/flow_key.hpp"

namespace rp::pkt {

// Index of a flow-table row; carried in the packet like the FIX in the mbuf.
using FlowIndex = std::int32_t;
constexpr FlowIndex kNoFlow = -1;

class Packet {
 public:
  static constexpr std::size_t kDefaultHeadroom = 128;

  Packet() : Packet(0) {}
  explicit Packet(std::size_t len, std::size_t headroom = kDefaultHeadroom)
      : buf_(headroom + len), head_(headroom), len_(len) {}

  Packet(const Packet&) = delete;
  Packet& operator=(const Packet&) = delete;
  Packet(Packet&&) noexcept = default;
  Packet& operator=(Packet&&) noexcept = default;

  std::uint8_t* data() noexcept { return buf_.data() + head_; }
  const std::uint8_t* data() const noexcept { return buf_.data() + head_; }
  std::size_t size() const noexcept { return len_; }
  std::span<std::uint8_t> bytes() noexcept { return {data(), len_}; }
  std::span<const std::uint8_t> bytes() const noexcept { return {data(), len_}; }

  std::size_t headroom() const noexcept { return head_; }
  std::size_t tailroom() const noexcept { return buf_.size() - head_ - len_; }

  // Grow the packet at the front (M_PREPEND). Returns pointer to the new
  // first byte. Reallocates only if headroom is exhausted.
  std::uint8_t* prepend(std::size_t n) {
    if (n > head_) {
      std::size_t grow = n - head_ + kDefaultHeadroom;
      buf_.insert(buf_.begin(), grow, 0);
      head_ += grow;
    }
    head_ -= n;
    len_ += n;
    return data();
  }

  // Drop n bytes from the front (m_adj positive).
  void pull(std::size_t n) noexcept {
    if (n > len_) n = len_;
    head_ += n;
    len_ -= n;
  }

  // Grow the packet at the tail; returns pointer to the appended region.
  std::uint8_t* append(std::size_t n) {
    if (n > tailroom()) buf_.resize(head_ + len_ + n);
    std::uint8_t* p = data() + len_;
    len_ += n;
    return p;
  }

  // Drop n bytes from the tail (m_adj negative).
  void trim(std::size_t n) noexcept {
    if (n > len_) n = len_;
    len_ -= n;
  }

  // ---- metadata (mbuf pkthdr equivalent) ----
  netbase::SimTime arrival{0};  // timestamped at driver receive
  IfIndex in_iface{0};
  IfIndex out_iface{kAnyIface};

  // Flow index: row in the AIU flow table, set by the first gate's
  // classification; kNoFlow until then (Section 3.2 "Associating the packet
  // with a flow index").
  FlowIndex fix{kNoFlow};

  // Parsed six-tuple; filled once by the core's header parse.
  FlowKey key{};
  bool key_valid{false};

  netbase::IpVersion ip_version{netbase::IpVersion::v4};
  std::uint16_t l4_offset{0};  // offset of the transport header

  // Hash-once cache over `key`: the burst path hashes every packet of a
  // burst up front (to prefetch flow-table buckets) and the flow lookup
  // then reuses the same value, so the mix runs once per packet no matter
  // how many gates probe. Invalidated whenever `key` is (re)derived.
  std::uint64_t flow_hash() noexcept {
    if (!key_hash_valid_) {
      key_hash_ = key.hash();
      key_hash_valid_ = true;
    }
    return key_hash_;
  }
  void invalidate_flow_hash() noexcept { key_hash_valid_ = false; }

 private:
  std::vector<std::uint8_t> buf_;
  std::size_t head_;
  std::size_t len_;
  std::uint64_t key_hash_{0};
  bool key_hash_valid_{false};
};

using PacketPtr = std::unique_ptr<Packet>;

inline PacketPtr make_packet(std::size_t len,
                             std::size_t headroom = Packet::kDefaultHeadroom) {
  return std::make_unique<Packet>(len, headroom);
}

// Deep copy (used by tests and by plugins that need to duplicate traffic).
PacketPtr clone_packet(const Packet& p);

}  // namespace rp::pkt

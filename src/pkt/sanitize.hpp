// Ingress sanitization: canonical validation of untrusted wire bytes before
// the packet reaches classification or any plugin. Every check has its own
// counter slot so telemetry can say *which* invariant adversarial traffic is
// probing (see docs/wire_hardening.md for the threat model).
#pragma once

#include <cstdint>
#include <string_view>

#include "pkt/packet.hpp"

namespace rp::pkt {

// One slot per validation rule. Order is stable: counters are exported by
// index (CoreCounters::sanitize_drops, pmgr `sanitize`).
enum class SanitizeCheck : std::uint8_t {
  ok = 0,
  runt,            // empty / too short to carry a version nibble
  bad_version,     // version nibble is neither 4 nor 6
  v4_header,       // capture < 20B, IHL < 5, or options run past capture
  v4_total_len,    // total_len < header or > capture (length-field lie)
  v4_frag_range,   // fragment's reassembled end would pass 64KiB
  l4_tcp,          // TCP data offset < 5 or header past the datagram end
  l4_udp,          // UDP length < 8 or past the datagram end
  v6_header,       // capture < 40B
  v6_payload_len,  // payload_len claims more bytes than were captured
  v6_ext_chain,    // ext-header chain truncated, looping, or too deep
  kCount
};

std::string_view to_string(SanitizeCheck c) noexcept;

// Validates `p` against every check above. Returns SanitizeCheck::ok and
// canonicalizes the packet (trailing capture padding beyond the L3 datagram
// length is trimmed, `trimmed` set) on success; returns the first failing
// check otherwise, leaving the packet untouched. L4 length checks apply only
// to unfragmented datagrams — a first fragment's UDP length legitimately
// describes the reassembled datagram, not the piece in hand.
SanitizeCheck sanitize_packet(Packet& p, bool& trimmed) noexcept;

inline SanitizeCheck sanitize_packet(Packet& p) noexcept {
  bool trimmed = false;
  return sanitize_packet(p, trimmed);
}

}  // namespace rp::pkt

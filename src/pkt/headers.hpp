// Wire-format header codecs for IPv4, IPv6 (+ extension headers), UDP, TCP
// and ICMP. Parsing never throws; each `parse` returns false on truncated
// or malformed input and leaves the output unspecified.
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "netbase/ip.hpp"
#include "pkt/flow_key.hpp"

namespace rp::pkt {

struct Ipv4Header {
  static constexpr std::size_t kMinSize = 20;

  std::uint8_t ihl{5};  // in 32-bit words
  std::uint8_t tos{0};
  std::uint16_t total_len{0};
  std::uint16_t id{0};
  std::uint8_t flags{0};        // 3 bits
  std::uint16_t frag_off{0};    // 13 bits, in 8-byte units
  std::uint8_t ttl{64};
  std::uint8_t proto{0};
  std::uint16_t checksum{0};
  netbase::Ipv4Addr src{};
  netbase::Ipv4Addr dst{};

  std::size_t header_len() const noexcept { return std::size_t{ihl} * 4; }

  bool parse(std::span<const std::uint8_t> b) noexcept;
  // Writes header_len() bytes; checksum field is written as-is (callers use
  // finalize_checksum to compute it in place).
  void write(std::uint8_t* out) const noexcept;
  // Recomputes and patches the checksum of an already-written header.
  static void finalize_checksum(std::uint8_t* hdr, std::size_t hdr_len) noexcept;
  static bool verify_checksum(std::span<const std::uint8_t> hdr) noexcept;
};

struct Ipv6Header {
  static constexpr std::size_t kSize = 40;

  std::uint8_t traffic_class{0};
  std::uint32_t flow_label{0};  // 20 bits
  std::uint16_t payload_len{0};
  std::uint8_t next_header{0};
  std::uint8_t hop_limit{64};
  netbase::Ipv6Addr src{};
  netbase::Ipv6Addr dst{};

  bool parse(std::span<const std::uint8_t> b) noexcept;
  void write(std::uint8_t* out) const noexcept;
};

struct UdpHeader {
  static constexpr std::size_t kSize = 8;

  std::uint16_t sport{0};
  std::uint16_t dport{0};
  std::uint16_t length{0};
  std::uint16_t checksum{0};

  bool parse(std::span<const std::uint8_t> b) noexcept;
  void write(std::uint8_t* out) const noexcept;
};

struct TcpHeader {
  static constexpr std::size_t kMinSize = 20;

  std::uint16_t sport{0};
  std::uint16_t dport{0};
  std::uint32_t seq{0};
  std::uint32_t ack{0};
  std::uint8_t data_off{5};  // in 32-bit words
  std::uint8_t flags{0};
  std::uint16_t window{0};
  std::uint16_t checksum{0};
  std::uint16_t urgent{0};

  std::size_t header_len() const noexcept { return std::size_t{data_off} * 4; }

  bool parse(std::span<const std::uint8_t> b) noexcept;
  void write(std::uint8_t* out) const noexcept;
};

struct IcmpHeader {
  static constexpr std::size_t kSize = 8;

  std::uint8_t type{0};
  std::uint8_t code{0};
  std::uint16_t checksum{0};
  std::uint32_t rest{0};

  bool parse(std::span<const std::uint8_t> b) noexcept;
  void write(std::uint8_t* out) const noexcept;
};

// A generic IPv6 extension header (hop-by-hop / destination options /
// routing): <next header, hdr ext len (8-byte units minus 1), data...>.
struct Ipv6ExtHeader {
  std::uint8_t next_header{0};
  std::uint8_t hdr_ext_len{0};  // (length/8) - 1
  std::size_t byte_len() const noexcept {
    return (std::size_t{hdr_ext_len} + 1) * 8;
  }
};

// Result of walking an IPv6 extension-header chain. `l4_proto`/`l4_offset`
// describe the first non-extension header; the fragment fields are filled
// when a Fragment (44) header was seen on the way.
struct Ipv6ExtWalk {
  std::uint8_t l4_proto{0};
  std::size_t l4_offset{0};
  bool has_fragment{false};
  std::uint16_t frag_off{0};  // in 8-byte units
  bool frag_more{false};
};

// Walks IPv6 extension headers starting at `b` (which begins with the header
// of type `first_nh`), stopping at the first non-extension header. Handles
// the generic TLV layout (hop-by-hop / routing / destination options), the
// Fragment header's fixed 8-byte layout (byte 1 is reserved, not a length),
// and AH's 4-byte length units. Returns false on truncation or a chain
// deeper than the defensive limit.
bool walk_ipv6_ext_headers(std::span<const std::uint8_t> b,
                           std::uint8_t first_nh, Ipv6ExtWalk& out) noexcept;

// Legacy wrapper around walk_ipv6_ext_headers: returns the final (transport)
// next-header value and sets `l4_offset` to its offset within `b`.
std::optional<std::uint8_t> skip_ipv6_ext_headers(
    std::span<const std::uint8_t> b, std::uint8_t first_nh,
    std::size_t& l4_offset) noexcept;

inline bool is_ipv6_ext_header(std::uint8_t nh) noexcept {
  return nh == static_cast<std::uint8_t>(IpProto::hopopt) ||
         nh == static_cast<std::uint8_t>(IpProto::ipv6_route) ||
         nh == static_cast<std::uint8_t>(IpProto::ipv6_frag) ||
         nh == static_cast<std::uint8_t>(IpProto::ah) ||
         nh == static_cast<std::uint8_t>(IpProto::ipv6_dstopts);
}

}  // namespace rp::pkt

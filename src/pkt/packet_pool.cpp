#include "pkt/packet_pool.hpp"

#include <cstddef>
#include <cstring>
#include <new>

namespace rp::pkt {

// Shared between the pool handle and every outstanding packet. refs =
// outstanding chunks + 1 for the handle; the last unref frees the arena, so
// packets may outlive their pool without dangling chunk memory.
struct PoolCore {
  std::atomic<PoolChunk*> returned{nullptr};  // MPSC Treiber stack
  std::atomic<std::uint64_t> refs{1};
  std::atomic<bool> closed{false};
  std::atomic<std::uint64_t> recycles{0};
  std::atomic<std::uint64_t> grows{0};
  std::vector<char*> arena;  // every chunk allocation, freed by last unref

  static void unref(PoolCore* c) noexcept {
    if (c->refs.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      for (char* a : c->arena) delete[] a;
      delete c;
    }
  }
};

// [ Chunk | inline buffer (buf_bytes) ]. pkt_mem hosts the Packet object
// while the chunk is out; standard-layout so offsetof is valid.
struct PoolChunk {
  PoolChunk* next{nullptr};
  PoolCore* core{nullptr};
  alignas(std::max_align_t) unsigned char pkt_mem[sizeof(Packet)];
};

namespace {

thread_local PacketPool* tl_pool = nullptr;

std::uint8_t* chunk_buf(PoolChunk* c) noexcept {
  return reinterpret_cast<std::uint8_t*>(c) + sizeof(PoolChunk);
}

PoolChunk* chunk_of(Packet* p) noexcept {
  return reinterpret_cast<PoolChunk*>(
      reinterpret_cast<char*>(p) - offsetof(PoolChunk, pkt_mem));
}

}  // namespace

namespace detail {
void note_pool_grow(PoolCore* core) noexcept {
  core->grows.fetch_add(1, std::memory_order_relaxed);
}
}  // namespace detail

PacketPool::PacketPool() : PacketPool(Options{}) {}

PacketPool::PacketPool(const Options& opt)
    : core_(new PoolCore),
      buf_bytes_(opt.buf_bytes ? opt.buf_bytes : 2048),
      n_chunks_(opt.chunks) {
  core_->arena.reserve(n_chunks_);
  for (std::size_t i = 0; i < n_chunks_; ++i) {
    char* mem = new char[sizeof(PoolChunk) + buf_bytes_];
    core_->arena.push_back(mem);
    auto* c = new (mem) PoolChunk;
    c->core = core_;
    std::memset(chunk_buf(c), 0, buf_bytes_);  // deterministic first handout
    c->next = free_;
    free_ = c;
  }
  free_count_ = n_chunks_;
}

PacketPool::~PacketPool() {
  core_->closed.store(true, std::memory_order_release);
  PoolCore::unref(core_);
}

PoolChunk* PacketPool::pop_free() noexcept {
  if (!free_) {
    // Drain the MPSC return stack wholesale: one exchange takes the whole
    // list, so concurrent pushes never race a traversal (no ABA).
    free_ = core_->returned.exchange(nullptr, std::memory_order_acquire);
    for (PoolChunk* c = free_; c; c = c->next) ++free_count_;
  }
  PoolChunk* c = free_;
  if (c) {
    free_ = c->next;
    --free_count_;
  }
  return c;
}

PacketPtr PacketPool::alloc(std::size_t len, std::size_t headroom) {
  ++allocs_;
  if (len + headroom <= buf_bytes_) {
    if (PoolChunk* c = pop_free()) {
      ++hits_;
      core_->refs.fetch_add(1, std::memory_order_relaxed);
      // Heap packets hand out a zeroed [0, headroom+len) (value-initialized
      // new[]); recycled chunks must match or sparse writers (builders that
      // leave payload zeroed, runt constructors) would see stale bytes.
      std::memset(chunk_buf(c), 0, headroom + len);
      Packet* p =
          new (c->pkt_mem) Packet(chunk_buf(c), buf_bytes_, len, headroom,
                                  core_);
      return PacketPtr(p);
    }
  }
  ++fallbacks_;
  return PacketPtr(new Packet(len, headroom));
}

PoolStats PacketPool::stats() const noexcept {
  PoolStats s;
  s.allocs = allocs_;
  s.pool_hits = hits_;
  s.heap_fallbacks = fallbacks_;
  s.recycles = core_->recycles.load(std::memory_order_relaxed);
  s.grows_detached = core_->grows.load(std::memory_order_relaxed);
  s.outstanding = static_cast<std::size_t>(
      core_->refs.load(std::memory_order_relaxed) - 1);
  s.free_chunks = free_count_;
  return s;
}

PacketPool::Use::Use(PacketPool& p) noexcept : prev_(tl_pool) { tl_pool = &p; }
PacketPool::Use::~Use() { tl_pool = prev_; }
PacketPool* PacketPool::current() noexcept { return tl_pool; }

// ---------------------------------------------------------------------------
// Release path — shared by every PacketPtr in the system.

void PacketDeleter::operator()(Packet* p) const noexcept {
  PoolCore* core = p->pool_;
  if (!core) {
    delete p;
    return;
  }
  PoolChunk* c = chunk_of(p);
  p->~Packet();  // frees a detached (grown) heap buffer, if any
  core->recycles.fetch_add(1, std::memory_order_relaxed);
  if (!core->closed.load(std::memory_order_acquire)) {
    PoolChunk* head = core->returned.load(std::memory_order_relaxed);
    do {
      c->next = head;
    } while (!core->returned.compare_exchange_weak(
        head, c, std::memory_order_release, std::memory_order_relaxed));
  }
  PoolCore::unref(core);
}

PacketPtr make_packet(std::size_t len, std::size_t headroom) {
  if (PacketPool* pool = tl_pool) return pool->alloc(len, headroom);
  return PacketPtr(new Packet(len, headroom));
}

}  // namespace rp::pkt

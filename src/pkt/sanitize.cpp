#include "pkt/sanitize.hpp"

#include "netbase/byteorder.hpp"
#include "pkt/headers.hpp"

namespace rp::pkt {

using netbase::load_be16;

namespace {

// L4 sanity for an unfragmented datagram: `l4` is the transport offset,
// `limit` the end of the L3 datagram (both within the capture).
SanitizeCheck check_l4(std::span<const std::uint8_t> b, std::uint8_t proto,
                       std::size_t l4, std::size_t limit) noexcept {
  if (proto == static_cast<std::uint8_t>(IpProto::tcp)) {
    if (l4 + TcpHeader::kMinSize > limit) return SanitizeCheck::l4_tcp;
    const std::size_t doff = std::size_t{b[l4 + 12] >> 4} * 4;
    if (doff < TcpHeader::kMinSize || l4 + doff > limit)
      return SanitizeCheck::l4_tcp;
  } else if (proto == static_cast<std::uint8_t>(IpProto::udp)) {
    if (l4 + UdpHeader::kSize > limit) return SanitizeCheck::l4_udp;
    const std::size_t ulen = load_be16(&b[l4 + 4]);
    if (ulen < UdpHeader::kSize || l4 + ulen > limit)
      return SanitizeCheck::l4_udp;
  }
  return SanitizeCheck::ok;
}

}  // namespace

std::string_view to_string(SanitizeCheck c) noexcept {
  switch (c) {
    case SanitizeCheck::ok: return "ok";
    case SanitizeCheck::runt: return "runt";
    case SanitizeCheck::bad_version: return "bad-version";
    case SanitizeCheck::v4_header: return "v4-header";
    case SanitizeCheck::v4_total_len: return "v4-total-len";
    case SanitizeCheck::v4_frag_range: return "v4-frag-range";
    case SanitizeCheck::l4_tcp: return "l4-tcp";
    case SanitizeCheck::l4_udp: return "l4-udp";
    case SanitizeCheck::v6_header: return "v6-header";
    case SanitizeCheck::v6_payload_len: return "v6-payload-len";
    case SanitizeCheck::v6_ext_chain: return "v6-ext-chain";
    case SanitizeCheck::kCount: break;
  }
  return "?";
}

SanitizeCheck sanitize_packet(Packet& p, bool& trimmed) noexcept {
  trimmed = false;
  auto b = p.bytes();
  if (b.empty()) return SanitizeCheck::runt;

  std::size_t datagram_len = 0;
  const unsigned ver = b[0] >> 4;
  if (ver == 4) {
    if (b.size() < Ipv4Header::kMinSize) return SanitizeCheck::v4_header;
    const std::size_t hlen = std::size_t{b[0] & 0x0f} * 4;
    if (hlen < Ipv4Header::kMinSize || hlen > b.size())
      return SanitizeCheck::v4_header;
    const std::size_t total_len = load_be16(&b[2]);
    if (total_len < hlen || total_len > b.size())
      return SanitizeCheck::v4_total_len;
    const std::uint16_t ff = load_be16(&b[6]);
    const std::size_t frag_off = std::size_t{ff} & 0x1fff;
    const bool more = (ff & 0x2000) != 0;
    if (frag_off != 0 || more) {
      // The reassembled datagram must still fit a 16-bit total length.
      if (hlen + frag_off * 8 + (total_len - hlen) > 65535)
        return SanitizeCheck::v4_frag_range;
    } else {
      auto c = check_l4(b, b[9], hlen, total_len);
      if (c != SanitizeCheck::ok) return c;
    }
    datagram_len = total_len;
  } else if (ver == 6) {
    if (b.size() < Ipv6Header::kSize) return SanitizeCheck::v6_header;
    const std::size_t payload_len = load_be16(&b[4]);
    if (Ipv6Header::kSize + payload_len > b.size())
      return SanitizeCheck::v6_payload_len;
    Ipv6ExtWalk walk;
    if (!walk_ipv6_ext_headers(
            b.subspan(Ipv6Header::kSize, payload_len), b[6], walk))
      return SanitizeCheck::v6_ext_chain;
    datagram_len = Ipv6Header::kSize + payload_len;
    if (!walk.has_fragment) {
      auto c = check_l4(b, walk.l4_proto, Ipv6Header::kSize + walk.l4_offset,
                        datagram_len);
      if (c != SanitizeCheck::ok) return c;
    }
  } else {
    return SanitizeCheck::bad_version;
  }

  // Canonicalize: drop capture padding (e.g. Ethernet minimum-frame pad)
  // beyond the L3 datagram so every later stage sees exactly the datagram.
  if (b.size() > datagram_len) {
    p.trim(b.size() - datagram_len);
    trimmed = true;
  }
  return SanitizeCheck::ok;
}

}  // namespace rp::pkt

#include "pkt/headers.hpp"

#include "netbase/byteorder.hpp"
#include "netbase/checksum.hpp"

namespace rp::pkt {

using netbase::load_be16;
using netbase::load_be32;
using netbase::store_be16;
using netbase::store_be32;

bool Ipv4Header::parse(std::span<const std::uint8_t> b) noexcept {
  if (b.size() < kMinSize) return false;
  if ((b[0] >> 4) != 4) return false;
  ihl = b[0] & 0x0f;
  if (ihl < 5 || header_len() > b.size()) return false;
  tos = b[1];
  total_len = load_be16(&b[2]);
  // The length field is attacker-controlled: it must cover at least the
  // header it describes and never claim more bytes than were captured.
  // Capture longer than total_len (L2 padding) is accepted here; the
  // ingress sanitizer trims it (see docs/wire_hardening.md).
  if (total_len < header_len() || total_len > b.size()) return false;
  id = load_be16(&b[4]);
  std::uint16_t ff = load_be16(&b[6]);
  flags = static_cast<std::uint8_t>(ff >> 13);
  frag_off = ff & 0x1fff;
  ttl = b[8];
  proto = b[9];
  checksum = load_be16(&b[10]);
  src = netbase::Ipv4Addr(load_be32(&b[12]));
  dst = netbase::Ipv4Addr(load_be32(&b[16]));
  return true;
}

void Ipv4Header::write(std::uint8_t* out) const noexcept {
  out[0] = static_cast<std::uint8_t>((4 << 4) | (ihl & 0x0f));
  out[1] = tos;
  store_be16(&out[2], total_len);
  store_be16(&out[4], id);
  store_be16(&out[6], static_cast<std::uint16_t>((flags << 13) | (frag_off & 0x1fff)));
  out[8] = ttl;
  out[9] = proto;
  store_be16(&out[10], checksum);
  store_be32(&out[12], src.v);
  store_be32(&out[16], dst.v);
  // Options (if ihl > 5) are the caller's responsibility.
}

void Ipv4Header::finalize_checksum(std::uint8_t* hdr, std::size_t hdr_len) noexcept {
  store_be16(&hdr[10], 0);
  store_be16(&hdr[10], netbase::checksum(hdr, hdr_len));
}

bool Ipv4Header::verify_checksum(std::span<const std::uint8_t> hdr) noexcept {
  return netbase::checksum_partial(hdr.data(), hdr.size()) == 0xffff;
}

bool Ipv6Header::parse(std::span<const std::uint8_t> b) noexcept {
  if (b.size() < kSize) return false;
  if ((b[0] >> 4) != 6) return false;
  std::uint32_t vtf = load_be32(&b[0]);
  traffic_class = static_cast<std::uint8_t>((vtf >> 20) & 0xff);
  flow_label = vtf & 0xfffff;
  payload_len = load_be16(&b[4]);
  next_header = b[6];
  hop_limit = b[7];
  src = netbase::Ipv6Addr::from_bytes(&b[8]);
  dst = netbase::Ipv6Addr::from_bytes(&b[24]);
  return true;
}

void Ipv6Header::write(std::uint8_t* out) const noexcept {
  store_be32(&out[0], (std::uint32_t{6} << 28) |
                          (std::uint32_t{traffic_class} << 20) |
                          (flow_label & 0xfffff));
  store_be16(&out[4], payload_len);
  out[6] = next_header;
  out[7] = hop_limit;
  src.to_bytes(&out[8]);
  dst.to_bytes(&out[24]);
}

bool UdpHeader::parse(std::span<const std::uint8_t> b) noexcept {
  if (b.size() < kSize) return false;
  sport = load_be16(&b[0]);
  dport = load_be16(&b[2]);
  length = load_be16(&b[4]);
  // A UDP length below the header size is always a lie. Containment within
  // the IP payload is checked by the caller (the span may be a prefix).
  if (length < kSize) return false;
  checksum = load_be16(&b[6]);
  return true;
}

void UdpHeader::write(std::uint8_t* out) const noexcept {
  store_be16(&out[0], sport);
  store_be16(&out[2], dport);
  store_be16(&out[4], length);
  store_be16(&out[6], checksum);
}

bool TcpHeader::parse(std::span<const std::uint8_t> b) noexcept {
  if (b.size() < kMinSize) return false;
  sport = load_be16(&b[0]);
  dport = load_be16(&b[2]);
  seq = load_be32(&b[4]);
  ack = load_be32(&b[8]);
  data_off = b[12] >> 4;
  if (data_off < 5 || header_len() > b.size()) return false;
  flags = b[13];
  window = load_be16(&b[14]);
  checksum = load_be16(&b[16]);
  urgent = load_be16(&b[18]);
  return true;
}

void TcpHeader::write(std::uint8_t* out) const noexcept {
  store_be16(&out[0], sport);
  store_be16(&out[2], dport);
  store_be32(&out[4], seq);
  store_be32(&out[8], ack);
  out[12] = static_cast<std::uint8_t>(data_off << 4);
  out[13] = flags;
  store_be16(&out[14], window);
  store_be16(&out[16], checksum);
  store_be16(&out[18], urgent);
}

bool IcmpHeader::parse(std::span<const std::uint8_t> b) noexcept {
  if (b.size() < kSize) return false;
  type = b[0];
  code = b[1];
  checksum = load_be16(&b[2]);
  rest = load_be32(&b[4]);
  return true;
}

void IcmpHeader::write(std::uint8_t* out) const noexcept {
  out[0] = type;
  out[1] = code;
  store_be16(&out[2], checksum);
  store_be32(&out[4], rest);
}

bool walk_ipv6_ext_headers(std::span<const std::uint8_t> b,
                           std::uint8_t first_nh, Ipv6ExtWalk& out) noexcept {
  std::uint8_t nh = first_nh;
  std::size_t off = 0;
  // Bounded walk: at most 8 chained extension headers (defensive limit).
  for (int depth = 0; depth < 8; ++depth) {
    if (!is_ipv6_ext_header(nh)) {
      out.l4_proto = nh;
      out.l4_offset = off;
      return true;
    }
    if (off + 2 > b.size()) return false;
    std::uint8_t next = b[off];
    std::size_t len;
    if (nh == static_cast<std::uint8_t>(IpProto::ipv6_frag)) {
      // Fragment header: fixed 8 bytes; byte 1 is reserved, NOT a length.
      len = 8;
      if (off + len > b.size()) return false;
      std::uint16_t fo = load_be16(&b[off + 2]);
      out.has_fragment = true;
      out.frag_off = fo >> 3;
      out.frag_more = (fo & 0x1) != 0;
    } else if (nh == static_cast<std::uint8_t>(IpProto::ah)) {
      // AH measures its length in 4-byte units: (payload_len + 2) * 4.
      len = (std::size_t{b[off + 1]} + 2) * 4;
    } else {
      len = (std::size_t{b[off + 1]} + 1) * 8;
    }
    if (off + len > b.size()) return false;
    nh = next;
    off += len;
  }
  return false;
}

std::optional<std::uint8_t> skip_ipv6_ext_headers(
    std::span<const std::uint8_t> b, std::uint8_t first_nh,
    std::size_t& l4_offset) noexcept {
  Ipv6ExtWalk walk;
  if (!walk_ipv6_ext_headers(b, first_nh, walk)) return std::nullopt;
  l4_offset = walk.l4_offset;
  return walk.l4_proto;
}

}  // namespace rp::pkt

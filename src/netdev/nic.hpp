// Simulated network interface.
//
// Stands in for the ATM device driver of the paper's testbed. The receive
// ring timestamps packets on arrival (the paper instruments the driver with
// a cycle-counter timestamp right after DMA completes); the transmit side
// models link serialization so schedulers see a real bottleneck.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <span>
#include <string>

#include "netbase/clock.hpp"
#include "pkt/packet.hpp"

namespace rp::netdev {

struct NicCounters {
  std::uint64_t rx_packets{0};
  std::uint64_t rx_bytes{0};
  std::uint64_t rx_drops{0};  // receive ring overflow
  std::uint64_t tx_packets{0};
  std::uint64_t tx_bytes{0};
};

class SimNic {
 public:
  // A sink receives every transmitted packet together with the virtual time
  // at which its last bit leaves the wire.
  using TxSink = std::function<void(pkt::PacketPtr, netbase::SimTime)>;

  SimNic(std::string name, pkt::IfIndex index,
         std::uint64_t bandwidth_bps = 155'000'000,  // OC-3, like the paper
         netbase::SimTime propagation_delay = 0,
         std::size_t rx_ring_size = 1024,
         std::size_t mtu = 9180)  // ATM AAL5, the paper's testbed MTU
      : name_(std::move(name)),
        index_(index),
        bandwidth_bps_(bandwidth_bps),
        prop_delay_(propagation_delay),
        rx_ring_size_(rx_ring_size),
        mtu_(mtu) {}

  const std::string& name() const noexcept { return name_; }
  pkt::IfIndex index() const noexcept { return index_; }
  std::uint64_t bandwidth_bps() const noexcept { return bandwidth_bps_; }
  std::size_t mtu() const noexcept { return mtu_; }
  void set_mtu(std::size_t mtu) noexcept { mtu_ = mtu; }
  const NicCounters& counters() const noexcept { return counters_; }

  // ---- receive side (wire -> router) ----

  // Delivers a packet from the wire into the receive ring; drops on
  // overflow (false, counted in rx_drops — callers that must not lose
  // packets check the result). `now` becomes the packet's arrival timestamp
  // and the packet's in_iface is stamped with this NIC's index.
  bool deliver(pkt::PacketPtr p, netbase::SimTime now) {
    if (rx_ring_.size() >= rx_ring_size_) {
      ++counters_.rx_drops;
      return false;
    }
    p->arrival = now;
    p->in_iface = index_;
    counters_.rx_packets++;
    counters_.rx_bytes += p->size();
    rx_ring_.push_back(std::move(p));
    return true;
  }

  bool rx_pending() const noexcept { return !rx_ring_.empty(); }
  std::size_t rx_depth() const noexcept { return rx_ring_.size(); }
  std::size_t rx_capacity() const noexcept { return rx_ring_size_; }

  pkt::PacketPtr rx_pop() {
    if (rx_ring_.empty()) return nullptr;
    auto p = std::move(rx_ring_.front());
    rx_ring_.pop_front();
    return p;
  }

  // Burst drain: pops up to out.size() packets from the receive ring in
  // arrival order (what a DPDK-style rx_burst does against a descriptor
  // ring). Returns the number of slots filled.
  std::size_t rx_burst(std::span<pkt::PacketPtr> out) {
    std::size_t n = 0;
    while (n < out.size() && !rx_ring_.empty()) {
      out[n++] = std::move(rx_ring_.front());
      rx_ring_.pop_front();
    }
    return n;
  }

  // ---- transmit side (router -> wire) ----

  void set_tx_sink(TxSink sink) { tx_sink_ = std::move(sink); }

  // True if the transmitter can start a new packet at time `now`.
  bool tx_idle(netbase::SimTime now) const noexcept {
    return now >= tx_busy_until_;
  }
  netbase::SimTime tx_busy_until() const noexcept { return tx_busy_until_; }

  // Serialization time of a packet on this link. Rounded UP: truncating let
  // schedulers systematically over-admit (64B @ OC-3 lost ~3ns of wire time
  // per packet, a cumulative virtual-time drift); a link may never transmit
  // faster than its bit rate.
  netbase::SimTime tx_duration(std::size_t bytes) const noexcept {
    const auto bits_ns = static_cast<netbase::SimTime>(bytes) * 8 *
                         netbase::kNsPerSec;
    const auto bps = static_cast<netbase::SimTime>(bandwidth_bps_);
    return (bits_ns + bps - 1) / bps;
  }

  // Starts transmitting at max(now, busy_until); returns the completion
  // time. The packet reaches the sink at completion + propagation delay.
  netbase::SimTime transmit(pkt::PacketPtr p, netbase::SimTime now) {
    netbase::SimTime start = now > tx_busy_until_ ? now : tx_busy_until_;
    netbase::SimTime done = start + tx_duration(p->size());
    tx_busy_until_ = done;
    counters_.tx_packets++;
    counters_.tx_bytes += p->size();
    if (tx_sink_) tx_sink_(std::move(p), done + prop_delay_);
    return done;
  }

  void reset_counters() noexcept { counters_ = {}; }

 private:
  std::string name_;
  pkt::IfIndex index_;
  std::uint64_t bandwidth_bps_;
  netbase::SimTime prop_delay_;
  std::size_t rx_ring_size_;
  std::size_t mtu_;

  std::deque<pkt::PacketPtr> rx_ring_;
  netbase::SimTime tx_busy_until_{0};
  TxSink tx_sink_;
  NicCounters counters_;
};

}  // namespace rp::netdev

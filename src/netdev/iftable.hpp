// Interface table: owns the router's NICs and maps interface indices to
// them. Interface index 0 is valid (the paper's filters treat the incoming
// interface as just another tuple field; kAnyIface is the wildcard).
#pragma once

#include <memory>
#include <string_view>
#include <vector>

#include "netdev/nic.hpp"

namespace rp::netdev {

class InterfaceTable {
 public:
  // Creates and registers a NIC; its index is its position in the table.
  SimNic& add(std::string name, std::uint64_t bandwidth_bps = 155'000'000,
              netbase::SimTime propagation_delay = 0,
              std::size_t rx_ring = 1024) {
    auto idx = static_cast<pkt::IfIndex>(nics_.size());
    nics_.push_back(std::make_unique<SimNic>(std::move(name), idx,
                                             bandwidth_bps, propagation_delay,
                                             rx_ring));
    return *nics_.back();
  }

  SimNic* by_index(pkt::IfIndex i) noexcept {
    return i < nics_.size() ? nics_[i].get() : nullptr;
  }
  const SimNic* by_index(pkt::IfIndex i) const noexcept {
    return i < nics_.size() ? nics_[i].get() : nullptr;
  }

  SimNic* by_name(std::string_view name) noexcept {
    for (auto& n : nics_)
      if (n->name() == name) return n.get();
    return nullptr;
  }

  std::size_t size() const noexcept { return nics_.size(); }

  // Summed counters across every NIC — the "are we losing packets at the
  // driver?" read the telemetry surface reports (rx_drops in particular
  // used to be counted but never aggregated anywhere).
  NicCounters totals() const noexcept {
    NicCounters t{};
    for (const auto& n : nics_) {
      const NicCounters& c = n->counters();
      t.rx_packets += c.rx_packets;
      t.rx_bytes += c.rx_bytes;
      t.rx_drops += c.rx_drops;
      t.tx_packets += c.tx_packets;
      t.tx_bytes += c.tx_bytes;
    }
    return t;
  }

  auto begin() noexcept { return nics_.begin(); }
  auto end() noexcept { return nics_.end(); }
  auto begin() const noexcept { return nics_.begin(); }
  auto end() const noexcept { return nics_.end(); }

 private:
  std::vector<std::unique_ptr<SimNic>> nics_;
};

}  // namespace rp::netdev

// netdev is header-only; this TU anchors the static library.
#include "netdev/iftable.hpp"
#include "netdev/nic.hpp"

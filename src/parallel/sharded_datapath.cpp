#include "parallel/sharded_datapath.hpp"

#include <latch>

#include "pkt/builder.hpp"

namespace rp::parallel {

ShardedDatapath::ShardedDatapath(const Options& opt, const Setup& setup) {
  const std::uint32_t n = opt.workers ? opt.workers : 1;
  workers_.reserve(n);
  reader_slots_.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    auto w = std::make_unique<Worker>(i, opt.shard, opt.ring_capacity);
    w->set_measure_busy(opt.measure_busy);
    reader_slots_.push_back(w->register_reader());
    if (setup) setup(w->ctx());
    workers_.push_back(std::move(w));
  }
  for (auto& w : workers_) w->start();
}

ShardedDatapath::~ShardedDatapath() { stop(); }

void ShardedDatapath::set_tx_handler(Worker::TxHandler h) {
  for (auto& w : workers_) w->set_tx_handler(h);
}

void ShardedDatapath::submit(pkt::PacketPtr p) {
  std::uint32_t target;
  if (pkt::extract_flow_key(*p)) {
    target = shard_of(p->flow_hash());
  } else {
    target = static_cast<std::uint32_t>(rr_++ % workers_.size());
  }
  workers_[target]->submit_blocking(std::move(p));
}

std::uint64_t ShardedDatapath::submitted() const noexcept {
  std::uint64_t n = 0;
  for (const auto& w : workers_) n += w->submitted();
  return n;
}

void ShardedDatapath::broadcast(Worker::Command c) {
  for (auto& w : workers_) w->post(c);
}

void ShardedDatapath::gather(const std::function<void(ShardContext&)>& fn) {
  std::latch done(static_cast<std::ptrdiff_t>(workers_.size()));
  for (auto& w : workers_)
    w->post([&fn, &done](ShardContext& ctx) {
      fn(ctx);
      done.count_down();
    });
  done.wait();
}

void ShardedDatapath::quiesce() {
  for (auto& w : workers_) w->quiesce();
}

void ShardedDatapath::reset_counters() {
  gather([](ShardContext& ctx) { ctx.core().reset_counters(); });
}

void ShardedDatapath::sweep_flows(netbase::SimTime cutoff) {
  gather([cutoff](ShardContext& ctx) {
    ctx.aiu().flow_table().expire_idle(cutoff);
  });
}

core::CoreCounters ShardedDatapath::aggregate_counters() {
  std::vector<core::CoreCounters> per(workers_.size());
  gather([&per](ShardContext& ctx) {
    per[ctx.id()] = ctx.core().counters();
  });
  core::CoreCounters sum{};
  for (const auto& c : per) {
    sum.received += c.received;
    sum.forwarded += c.forwarded;
    for (std::size_t i = 0; i < std::size(sum.drops); ++i)
      sum.drops[i] += c.drops[i];
    sum.gate_calls += c.gate_calls;
    sum.icmp_errors_sent += c.icmp_errors_sent;
    sum.fragments_created += c.fragments_created;
    sum.bursts += c.bursts;
    sum.burst_packets += c.burst_packets;
    sum.gate_groups += c.gate_groups;
    sum.gate_group_pkts += c.gate_group_pkts;
    sum.fused_bursts += c.fused_bursts;
    for (std::size_t i = 0; i < std::size(sum.group_size_hist); ++i)
      sum.group_size_hist[i] += c.group_size_hist[i];
    for (std::size_t i = 0; i < std::size(sum.sanitize_drops); ++i)
      sum.sanitize_drops[i] += c.sanitize_drops[i];
    sum.sanitize_trimmed += c.sanitize_trimmed;
  }
  return sum;
}

ShardSnapshot ShardedDatapath::status(std::uint32_t shard) const {
  return workers_[shard]->snapshot(reader_slots_[shard]);
}

std::vector<ShardSnapshot> ShardedDatapath::status_all() const {
  std::vector<ShardSnapshot> out;
  out.reserve(workers_.size());
  for (std::uint32_t i = 0; i < workers_.size(); ++i)
    out.push_back(workers_[i]->snapshot(reader_slots_[i]));
  return out;
}

void ShardedDatapath::stop() {
  for (auto& w : workers_) w->stop_and_join();
}

}  // namespace rp::parallel

#include "parallel/sharded_datapath.hpp"

#include <latch>
#include <thread>

#include "pkt/builder.hpp"

namespace rp::parallel {

ShardedDatapath::ShardedDatapath(const Options& opt, const Setup& setup) {
  const std::uint32_t n = opt.workers ? opt.workers : 1;
  if (opt.io.mode == IoOptions::Mode::multiq) {
    mq_ = std::make_unique<io::MemQueueBackend>(io::MemQueueOptions{
        .queues = n, .ring_capacity = opt.ring_capacity});
    migrate_threshold_ = opt.io.migrate_threshold;
    migrate_depth_ = static_cast<std::size_t>(
        migrate_threshold_ * static_cast<double>(opt.ring_capacity));
  }
  workers_.reserve(n);
  reader_slots_.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    auto w = std::make_unique<Worker>(i, opt.shard, opt.ring_capacity);
    w->set_measure_busy(opt.measure_busy);
    if (mq_) w->set_rx_source(mq_.get(), i);
    reader_slots_.push_back(w->register_reader());
    if (setup) setup(w->ctx());
    workers_.push_back(std::move(w));
  }
  for (auto& w : workers_) w->start();
}

ShardedDatapath::~ShardedDatapath() { stop(); }

void ShardedDatapath::set_tx_handler(Worker::TxHandler h) {
  for (auto& w : workers_) w->set_tx_handler(h);
}

void ShardedDatapath::submit(pkt::PacketPtr p) {
  if (mq_) {
    submit_multiq(std::move(p));
    return;
  }
  std::uint32_t target;
  if (pkt::extract_flow_key(*p)) {
    target = shard_of(p->flow_hash());
  } else {
    target = static_cast<std::uint32_t>(rr_++ % workers_.size());
  }
  workers_[target]->submit_blocking(std::move(p));
}

void ShardedDatapath::submit_multiq(pkt::PacketPtr p) {
  std::uint32_t q;
  if (pkt::extract_flow_key(*p)) {
    const std::uint32_t bucket =
        io::MemQueueBackend::bucket_of(p->flow_hash());
    if (mig_.active) {
      // Opportunistically retire a finished migration; a packet of the
      // migrating bucket itself must wait for the barrier (per-flow FIFO:
      // the victim drains everything submitted before the rebind before
      // the new queue sees this flow).
      if (workers_[mig_.from]->processed() >= mig_.barrier ||
          bucket == mig_.bucket) {
        block_until_barrier();
      }
    }
    if (!mig_.active && migrate_depth_ > 0 && workers_.size() > 1)
      maybe_migrate(bucket);
    if (mig_.active && bucket == mig_.bucket) block_until_barrier();
    q = mq_->reta(bucket);
  } else {
    q = static_cast<std::uint32_t>(rr_++ % workers_.size());
  }
  Worker& w = *workers_[q];
  w.note_submitted();
  while (!mq_->try_deliver(q, p, p->arrival)) {
    // Queue full: the worker is behind. Lossless fabric — yield so the
    // worker can run (essential on single-CPU hosts), never drop.
    w.doorbell();
    std::this_thread::yield();
  }
  w.doorbell();
}

void ShardedDatapath::maybe_migrate(std::uint32_t bucket) {
  const std::uint32_t from = mq_->reta(bucket);
  const std::size_t depth = mq_->rx_depth(from);
  if (depth <= migrate_depth_) return;
  // Steal target: the least-loaded queue; only worth it if it is doing
  // meaningfully better than the victim (avoids thrash when every queue
  // is saturated).
  std::uint32_t to = from;
  std::size_t best = depth;
  for (std::uint32_t i = 0; i < workers_.size(); ++i) {
    const std::size_t d = mq_->rx_depth(i);
    if (d < best) {
      best = d;
      to = i;
    }
  }
  if (to == from || best * 2 > depth) return;
  mq_->set_reta(bucket, to);
  mig_ = {.active = true,
          .bucket = bucket,
          .from = from,
          .barrier = workers_[from]->submitted()};
  ++migrations_;
}

void ShardedDatapath::block_until_barrier() {
  Worker& victim = *workers_[mig_.from];
  while (victim.processed() < mig_.barrier) {
    victim.doorbell();
    std::this_thread::yield();
  }
  mig_.active = false;
}

std::uint64_t ShardedDatapath::submitted() const noexcept {
  std::uint64_t n = 0;
  for (const auto& w : workers_) n += w->submitted();
  return n;
}

void ShardedDatapath::broadcast(Worker::Command c) {
  for (auto& w : workers_) w->post(c);
}

void ShardedDatapath::gather(const std::function<void(ShardContext&)>& fn) {
  std::latch done(static_cast<std::ptrdiff_t>(workers_.size()));
  for (auto& w : workers_)
    w->post([&fn, &done](ShardContext& ctx) {
      fn(ctx);
      done.count_down();
    });
  done.wait();
}

void ShardedDatapath::quiesce() {
  for (auto& w : workers_) w->quiesce();
}

void ShardedDatapath::reset_counters() {
  gather([](ShardContext& ctx) { ctx.core().reset_counters(); });
}

void ShardedDatapath::sweep_flows(netbase::SimTime cutoff) {
  gather([cutoff](ShardContext& ctx) {
    ctx.aiu().flow_table().expire_idle(cutoff);
  });
}

core::CoreCounters ShardedDatapath::aggregate_counters() {
  std::vector<core::CoreCounters> per(workers_.size());
  gather([&per](ShardContext& ctx) {
    per[ctx.id()] = ctx.core().counters();
  });
  core::CoreCounters sum{};
  for (const auto& c : per) {
    sum.received += c.received;
    sum.forwarded += c.forwarded;
    for (std::size_t i = 0; i < std::size(sum.drops); ++i)
      sum.drops[i] += c.drops[i];
    sum.gate_calls += c.gate_calls;
    sum.icmp_errors_sent += c.icmp_errors_sent;
    sum.fragments_created += c.fragments_created;
    sum.bursts += c.bursts;
    sum.burst_packets += c.burst_packets;
    sum.gate_groups += c.gate_groups;
    sum.gate_group_pkts += c.gate_group_pkts;
    sum.fused_bursts += c.fused_bursts;
    for (std::size_t i = 0; i < std::size(sum.group_size_hist); ++i)
      sum.group_size_hist[i] += c.group_size_hist[i];
    for (std::size_t i = 0; i < std::size(sum.sanitize_drops); ++i)
      sum.sanitize_drops[i] += c.sanitize_drops[i];
    sum.sanitize_trimmed += c.sanitize_trimmed;
  }
  return sum;
}

netdev::NicCounters ShardedDatapath::aggregate_nic_counters() {
  std::vector<netdev::NicCounters> per(workers_.size());
  gather([&per](ShardContext& ctx) {
    per[ctx.id()] = ctx.interfaces().totals();
  });
  netdev::NicCounters sum{};
  for (const auto& c : per) {
    sum.rx_packets += c.rx_packets;
    sum.rx_bytes += c.rx_bytes;
    sum.rx_drops += c.rx_drops;
    sum.tx_packets += c.tx_packets;
    sum.tx_bytes += c.tx_bytes;
  }
  return sum;
}

io::QueueStats ShardedDatapath::queue_stats(std::uint32_t q) const {
  if (mq_) return mq_->queue_stats(q);
  io::QueueStats s;
  const Worker& w = *workers_[q];
  s.rx_enqueued = w.submitted();
  s.rx_drained = w.processed();
  return s;
}

ShardSnapshot ShardedDatapath::status(std::uint32_t shard) const {
  return workers_[shard]->snapshot(reader_slots_[shard]);
}

std::vector<ShardSnapshot> ShardedDatapath::status_all() const {
  std::vector<ShardSnapshot> out;
  out.reserve(workers_.size());
  for (std::uint32_t i = 0; i < workers_.size(); ++i)
    out.push_back(workers_[i]->snapshot(reader_slots_[i]));
  return out;
}

void ShardedDatapath::stop() {
  for (auto& w : workers_) w->stop_and_join();
}

}  // namespace rp::parallel

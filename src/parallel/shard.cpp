#include "parallel/shard.hpp"

#include <ctime>

namespace rp::parallel {

namespace {

telemetry::ExportReason export_reason(aiu::FlowTable::RemoveReason why) {
  using R = aiu::FlowTable::RemoveReason;
  switch (why) {
    case R::recycled: return telemetry::ExportReason::recycled;
    case R::expired: return telemetry::ExportReason::expired;
    case R::purged: return telemetry::ExportReason::purged;
    case R::cleared: return telemetry::ExportReason::cleared;
    case R::removed: break;
  }
  return telemetry::ExportReason::removed;
}

std::uint64_t thread_cpu_ns() noexcept {
  timespec ts{};
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000'000ULL +
         static_cast<std::uint64_t>(ts.tv_nsec);
}

// Snapshots are refreshed at least this often while traffic flows (also
// once whenever the worker goes idle, so a drained shard reads exact).
constexpr std::uint64_t kPublishEveryBursts = 16;

}  // namespace

// ---------------------------------------------------------------------------
// ShardContext — RouterKernel's subsystem wiring, minus the event loop.

ShardContext::ShardContext(std::uint32_t shard_id, const ShardOptions& opt)
    : id_(shard_id),
      loader_(pcu_),
      routes_(opt.route_engine),
      telemetry_(std::make_unique<telemetry::Telemetry>(opt.telemetry)),
      resil_(std::make_unique<resilience::Supervisor>(opt.resilience)),
      aiu_(std::make_unique<aiu::Aiu>(pcu_, clock_, opt.aiu)),
      core_(std::make_unique<core::IpCore>(*aiu_, routes_, ifs_, clock_,
                                           opt.core)) {
  pcu_.add_purge_hook([this](plugin::PluginInstance* inst) {
    core_->detach_scheduler(inst);
    resil_->forget(inst);
  });
  core_->set_telemetry(telemetry_.get());
  resil_->set_aiu(aiu_.get());
  resil_->set_clock(&clock_);
  core_->set_resilience(resil_.get());
  aiu_->flow_table().set_remove_hook(
      [this](const aiu::FlowRecord& r, aiu::FlowTable::RemoveReason why) {
        telemetry_->flow_closed({r.key, r.packets, r.bytes, r.first_seen,
                                 r.last_used, export_reason(why)});
      });
}

ShardContext::~ShardContext() = default;

// ---------------------------------------------------------------------------
// Worker

Worker::Worker(std::uint32_t shard_id, const ShardOptions& opt,
               std::size_t ring_capacity)
    : ctx_(shard_id, opt), ring_(ring_capacity), status_(status_domain_) {}

Worker::~Worker() { stop_and_join(); }

void Worker::start() {
  if (thread_.joinable()) return;
  stop_.store(false, std::memory_order_relaxed);
  thread_ = std::thread(&Worker::run, this);
}

void Worker::stop_and_join() {
  if (!thread_.joinable()) return;
  stop_.store(true, std::memory_order_seq_cst);
  wake();
  thread_.join();
  // The thread exits only with both rings drained; publish a final exact
  // snapshot (we are the only "writer" left, so this is single-threaded).
  publish_snapshot();
}

bool Worker::try_submit(pkt::PacketPtr& p) {
  if (!ring_.try_push(p)) return false;
  ++submitted_;
  wake();
  return true;
}

void Worker::submit_blocking(pkt::PacketPtr p) {
  while (!try_submit(p)) {
    // Ring full: the worker is behind. Yield so it can run (essential on
    // single-CPU hosts), never drop — the differential harness depends on
    // lossless delivery.
    wake();
    std::this_thread::yield();
  }
}

void Worker::post(Command c) {
  while (!commands_.try_push(c)) {
    wake();
    std::this_thread::yield();
  }
  wake();
}

void Worker::quiesce() {
  const std::uint64_t target = submitted_;
  while (processed_.load(std::memory_order_acquire) < target) {
    wake();
    std::this_thread::yield();
  }
  // All packets are through; now fence the command ring (FIFO, so every
  // command posted before this one has run when the fence fires).
  std::atomic<bool> done{false};
  post([&done](ShardContext&) { done.store(true, std::memory_order_release); });
  while (!done.load(std::memory_order_acquire)) {
    wake();
    std::this_thread::yield();
  }
}

ShardSnapshot Worker::snapshot(std::size_t reader_slot) const {
  EpochGuard g(status_domain_, reader_slot);
  const ShardSnapshot* s = status_.load();
  return s ? *s : ShardSnapshot{.shard_id = ctx_.id()};
}

void Worker::publish_snapshot() {
  auto s = std::make_unique<ShardSnapshot>();
  s->shard_id = ctx_.id();
  s->packets_processed = processed_.load(std::memory_order_relaxed);
  s->bursts = bursts_;
  s->counters = ctx_.core().counters();
  s->flows_active = ctx_.aiu().flow_table().active();
  s->telemetry_samples = ctx_.telemetry().samples();
  s->faults_total = ctx_.resilience().faults_total();
  status_.publish(std::move(s));
  since_publish_ = 0;
}

bool Worker::drain_commands() {
  bool any = false;
  Command c;
  while (commands_.try_pop(c)) {
    c(ctx_);
    c = nullptr;
    any = true;
  }
  // Commands mutate shard state (resets, sweeps, filter changes); mark the
  // snapshot dirty so the next idle pass republishes even with no new bursts.
  if (any && since_publish_ == 0) since_publish_ = 1;
  return any;
}

void Worker::drain_tx() {
  core::IpCore& core = ctx_.core();
  const std::size_t nifs = ctx_.interfaces().size();
  for (std::size_t i = 0; i < nifs; ++i) {
    const auto iface = static_cast<pkt::IfIndex>(i);
    if (!core.tx_backlog(iface)) continue;
    while (pkt::PacketPtr p = core.next_for_tx(iface, ctx_.clock().now())) {
      if (tx_) tx_(ctx_, iface, std::move(p));
    }
  }
}

void Worker::wake() {
  if (sleeping_.load(std::memory_order_seq_cst)) {
    std::lock_guard<std::mutex> lk(nap_mu_);
    nap_cv_.notify_one();
  }
}

void Worker::run() {
  std::vector<pkt::PacketPtr> burst(kBurst);
  unsigned idle_spins = 0;
  for (;;) {
    const std::size_t n =
        rx_be_ ? rx_be_->rx_burst(rx_queue_, {burst.data(), kBurst})
               : ring_.pop_burst({burst.data(), kBurst});
    if (n > 0) {
      idle_spins = 0;
      // Virtual time advances with the shard's own arrivals (monotone per
      // flow, since a flow's packets reach exactly this worker in order).
      netbase::SimTime t = ctx_.clock().now();
      for (std::size_t i = 0; i < n; ++i)
        if (burst[i]->arrival > t) t = burst[i]->arrival;
      ctx_.clock().advance_to(t);

      const std::uint64_t t0 = measure_busy_ ? thread_cpu_ns() : 0;
      ctx_.core().process_burst({burst.data(), n});
      drain_tx();
      if (measure_busy_)
        busy_ns_.fetch_add(thread_cpu_ns() - t0, std::memory_order_relaxed);

      ++bursts_;
      processed_.fetch_add(n, std::memory_order_release);
      if (++since_publish_ >= kPublishEveryBursts) publish_snapshot();
      // Burst boundary: the quiesce hook. Control-path mutations (filter
      // changes, counter resets, flow sweeps/evictions) run only here,
      // never mid-burst.
      drain_commands();
      continue;
    }
    if (drain_commands()) {
      idle_spins = 0;
      continue;
    }
    if (stop_.load(std::memory_order_acquire)) break;

    if (idle_spins == 0 && since_publish_ > 0) publish_snapshot();
    if (++idle_spins < 64) {
      std::this_thread::yield();
      continue;
    }
    // Park until the doorbell rings (Dekker handshake with try_submit/post;
    // the bounded wait is a belt-and-braces backstop, not a correctness
    // requirement).
    sleeping_.store(true, std::memory_order_seq_cst);
    if (!rx_idle() || !commands_.empty() ||
        stop_.load(std::memory_order_seq_cst)) {
      sleeping_.store(false, std::memory_order_relaxed);
      continue;
    }
    {
      std::unique_lock<std::mutex> lk(nap_mu_);
      nap_cv_.wait_for(lk, std::chrono::milliseconds(2));
    }
    sleeping_.store(false, std::memory_order_relaxed);
    idle_spins = 0;
  }
}

}  // namespace rp::parallel

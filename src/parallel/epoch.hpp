// Epoch-based reclamation for read-mostly shared state — the RCU of the
// sharded datapath.
//
// A `Versioned<T>` holds one atomic pointer to an immutable snapshot. The
// single writer replaces it with `publish()` and *retires* the old snapshot
// into an EpochDomain instead of deleting it; readers access the current
// snapshot through an `EpochGuard`, which pins the reader's slot for the
// duration of the read so retired snapshots they may still hold are never
// freed under them. Neither side ever takes a lock: a read is two atomic
// stores and two loads, a publish is an exchange plus a bounded scan of the
// reader slots. This is how worker shards export status snapshots that the
// control plane reads while traffic flows, and how control-plane config
// reaches packet-path readers without a lock (docs/concurrency.md).
//
// Correctness sketch (single writer per domain, up to kMaxReaders readers):
// a reader first marks its slot kBusy (seq_cst), then loads the domain
// epoch and stores it into the slot, then loads the versioned pointer. The
// writer swaps the pointer, tags the retired snapshot with the pre-bump
// epoch E, bumps the epoch, then scans the slots. If the scan saw the
// reader's kBusy/E pin, the snapshot survives; if it saw the slot idle, the
// seq_cst total order forces the reader's subsequent epoch load to observe
// E+1 — and the epoch bump happens after the pointer swap, so that reader
// can only have loaded the *new* pointer. Either way no reader is left
// holding freed memory.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

namespace rp::parallel {

class EpochDomain {
 public:
  static constexpr std::size_t kMaxReaders = 16;
  static constexpr std::uint64_t kIdle = 0;
  static constexpr std::uint64_t kBusy = ~std::uint64_t{0};

  EpochDomain() = default;
  EpochDomain(const EpochDomain&) = delete;
  EpochDomain& operator=(const EpochDomain&) = delete;
  ~EpochDomain() { reclaim_all(); }

  // Claims a reader slot (control path; typically once per thread). Slots
  // are never reused within a domain's lifetime — kMaxReaders is a bound on
  // distinct reader registrations, not concurrency.
  std::size_t register_reader() {
    const std::size_t i = n_readers_.fetch_add(1, std::memory_order_acq_rel);
    return i < kMaxReaders ? i : kMaxReaders - 1;  // clamp (see docs)
  }

  std::uint64_t epoch() const noexcept {
    return epoch_.load(std::memory_order_seq_cst);
  }

  // -- writer side (one writer per domain) --

  // Called by Versioned::publish: takes ownership of `old` tagged with the
  // pre-bump epoch, bumps the epoch, and frees whatever became unreachable.
  void retire(std::function<void()> deleter) {
    const std::uint64_t tag = epoch_.fetch_add(1, std::memory_order_seq_cst);
    limbo_.push_back({tag, std::move(deleter)});
    try_reclaim();
  }

  // Frees every retired snapshot no pinned reader can still hold.
  void try_reclaim() {
    std::uint64_t safe_before = epoch_.load(std::memory_order_seq_cst);
    const std::size_t n = std::min(
        n_readers_.load(std::memory_order_acquire), kMaxReaders);
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t e = slots_[i].epoch.load(std::memory_order_seq_cst);
      if (e == kIdle) continue;
      if (e == kBusy) {
        safe_before = 0;  // reader mid-pin: epoch unknown, free nothing
        break;
      }
      if (e < safe_before) safe_before = e;
    }
    std::erase_if(limbo_, [safe_before](Retired& r) {
      if (r.tag >= safe_before) return false;
      r.deleter();
      return true;
    });
  }

  // Writer teardown: spins until readers unpin, then frees everything.
  void reclaim_all() {
    while (!limbo_.empty()) try_reclaim();
  }

  std::size_t limbo_size() const noexcept { return limbo_.size(); }

 private:
  friend class EpochGuard;

  struct alignas(64) Slot {
    std::atomic<std::uint64_t> epoch{kIdle};
  };
  struct Retired {
    std::uint64_t tag;
    std::function<void()> deleter;
  };

  // Epochs start at 1 so kIdle (0) never collides with a real pin.
  std::atomic<std::uint64_t> epoch_{1};
  std::atomic<std::size_t> n_readers_{0};
  Slot slots_[kMaxReaders];
  std::vector<Retired> limbo_;  // writer-owned
};

// Pins one reader slot for the scope of a read-side critical section.
class EpochGuard {
 public:
  EpochGuard(EpochDomain& d, std::size_t slot) : slot_(d.slots_[slot]) {
    slot_.epoch.store(EpochDomain::kBusy, std::memory_order_seq_cst);
    slot_.epoch.store(d.epoch_.load(std::memory_order_seq_cst),
                      std::memory_order_seq_cst);
  }
  ~EpochGuard() {
    slot_.epoch.store(EpochDomain::kIdle, std::memory_order_release);
  }
  EpochGuard(const EpochGuard&) = delete;
  EpochGuard& operator=(const EpochGuard&) = delete;

 private:
  EpochDomain::Slot& slot_;
};

// A versioned pointer to an immutable snapshot. One writer publishes; any
// registered reader of the domain loads under an EpochGuard.
template <typename T>
class Versioned {
 public:
  explicit Versioned(EpochDomain& d) : domain_(d) {}
  ~Versioned() {
    delete ptr_.exchange(nullptr, std::memory_order_acq_rel);
  }
  Versioned(const Versioned&) = delete;
  Versioned& operator=(const Versioned&) = delete;

  // Writer: swaps in a new snapshot, retires the old one into the domain.
  void publish(std::unique_ptr<T> next) {
    T* old = ptr_.exchange(next.release(), std::memory_order_acq_rel);
    if (old)
      domain_.retire([old] { delete old; });
    else
      domain_.try_reclaim();
  }

  // Reader: valid only while an EpochGuard for this domain is live, and
  // only until the guard is released. May be null before the first publish.
  const T* load() const noexcept {
    return ptr_.load(std::memory_order_acquire);
  }

 private:
  EpochDomain& domain_;
  std::atomic<T*> ptr_{nullptr};
};

}  // namespace rp::parallel

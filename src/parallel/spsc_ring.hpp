// Fixed-size single-producer / single-consumer ring — the steering fabric of
// the sharded datapath. One ring connects the ingress thread to each worker
// (packets) and the control thread to each worker (commands), so a flow's
// packets are delivered to its owning worker in submission order and the
// packet path never takes a lock.
//
// Classic Lamport queue with C++11 atomics and free-running indices: the
// producer owns `tail_`, the consumer owns `head_`, and each side keeps a
// cached copy of the other's index so the common case touches only its own
// cache line (the cached peer index is refreshed — one acquire load — only
// when the ring looks full or empty). Indices count monotonically and are
// masked into the power-of-two slot array only at access, so `capacity()`
// is exactly the requested capacity: no slot is sacrificed to tell full
// from empty, and a power-of-two request no longer silently allocates
// double (the old `bit_ceil(capacity+1)` sizing).
#pragma once

#include <atomic>
#include <bit>
#include <cstddef>
#include <span>
#include <utility>
#include <vector>

namespace rp::parallel {

template <typename T>
class SpscRing {
 public:
  explicit SpscRing(std::size_t capacity)
      : slots_(std::bit_ceil(capacity < 1 ? std::size_t{1} : capacity)),
        mask_(slots_.size() - 1),
        cap_(capacity < 1 ? std::size_t{1} : capacity) {}

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  // Exactly the requested capacity (enforced even when the slot array is
  // rounded up to a power of two for cheap masking).
  std::size_t capacity() const noexcept { return cap_; }

  // ---- producer side ----

  bool try_push(T& v) {
    const std::size_t t = tail_.load(std::memory_order_relaxed);
    if (t - head_cache_ >= cap_) {
      head_cache_ = head_.load(std::memory_order_acquire);
      if (t - head_cache_ >= cap_) return false;  // full
    }
    slots_[t & mask_] = std::move(v);
    tail_.store(t + 1, std::memory_order_release);
    return true;
  }
  bool try_push(T&& v) { return try_push(v); }

  // Pushes as many of `batch` as fit; returns how many were consumed.
  std::size_t push_burst(std::span<T> batch) {
    std::size_t n = 0;
    for (auto& v : batch) {
      if (!try_push(v)) break;
      ++n;
    }
    return n;
  }

  // ---- consumer side ----

  bool try_pop(T& out) {
    const std::size_t h = head_.load(std::memory_order_relaxed);
    if (h == tail_cache_) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      if (h == tail_cache_) return false;  // empty
    }
    out = std::move(slots_[h & mask_]);
    head_.store(h + 1, std::memory_order_release);
    return true;
  }

  // Pops up to out.size() elements; returns how many were written.
  std::size_t pop_burst(std::span<T> out) {
    std::size_t n = 0;
    for (auto& slot : out) {
      if (!try_pop(slot)) break;
      ++n;
    }
    return n;
  }

  // ---- either side (approximate between threads, exact within one) ----

  bool empty() const noexcept {
    return head_.load(std::memory_order_acquire) ==
           tail_.load(std::memory_order_acquire);
  }
  std::size_t size_approx() const noexcept {
    const std::size_t h = head_.load(std::memory_order_acquire);
    const std::size_t t = tail_.load(std::memory_order_acquire);
    return t - h;
  }

 private:
  std::vector<T> slots_;
  const std::size_t mask_;
  const std::size_t cap_;

  // Producer line: tail + cached head. Consumer line: head + cached tail.
  alignas(64) std::atomic<std::size_t> tail_{0};
  std::size_t head_cache_{0};
  alignas(64) std::atomic<std::size_t> head_{0};
  std::size_t tail_cache_{0};
};

}  // namespace rp::parallel

// The N-worker datapath: RSS-style flow sharding over private router stacks.
//
// Ingress steers each packet by the *high* 32 bits of its flow hash (the
// fixed-point range map in shard_index below), because the per-shard
// FlowTable indexes buckets with the low bits (`hash & (buckets-1)`); using
// disjoint bit ranges keeps every shard's flow table fully utilised. A
// flow's packets always land on one worker, in submission order, so
// per-flow semantics (gate order, flow state, drop reasons, byte counts)
// are exactly those of the single-threaded path — the differential test
// holds the two to bit-equality.
//
// Two I/O modes (Options::io):
//   * steered (default) — the submitting thread computes the shard and
//     pushes onto the owning worker's SPSC ring: the central-ingress model.
//   * multiq — packets go through a MemQueueBackend: RETA steering, one
//     queue pair per worker, workers drain rx directly. Optionally, when a
//     queue's backlog crosses a threshold, the hot RETA bucket is migrated
//     to the least-loaded queue at a submission boundary, with an ordering
//     barrier (the victim drains everything submitted before the rebind
//     first) so per-flow FIFO survives the move.
//
// Control-plane interaction is lock-free on the packet path:
//   * mutations  — broadcast() posts a command to every worker's command
//     ring; workers apply it at the next burst boundary (the quiesce hook);
//   * aggregation — gather() runs a closure on each worker thread (exact,
//     race-free reads of worker-owned state) and joins on a latch;
//   * monitoring — status() copies the worker's latest epoch-protected
//     snapshot without stopping it (see parallel/epoch.hpp).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "parallel/shard.hpp"

namespace rp::parallel {

// Fixed-point range map: spreads the hash's high 32 bits evenly over n.
// Replaces `(flow_hash >> 56) % n`, which collapsed the key space to 256
// values and carried modulo bias for non-power-of-two n (the chi-square
// test in tests/test_iobackend.cpp holds this one to uniformity). The low
// 32 bits stay untouched — they index flow-table buckets.
inline std::uint32_t shard_index(std::uint64_t flow_hash,
                                 std::uint32_t n) noexcept {
  return static_cast<std::uint32_t>(((flow_hash >> 32) * n) >> 32);
}

class ShardedDatapath {
 public:
  struct IoOptions {
    enum class Mode {
      steered,  // central ingress steers onto per-worker SPSC rings
      multiq,   // RSS queue pair per worker (io::MemQueueBackend)
    };
    Mode mode{Mode::steered};
    // multiq only: when a queue's depth exceeds this fraction of
    // ring_capacity, migrate its hottest RETA bucket to the least-loaded
    // queue. 0 disables migration (the differential-equivalence setting:
    // migration preserves aggregates and per-flow FIFO but moves soft
    // state between shards).
    double migrate_threshold{0.0};
  };

  struct Options {
    std::uint32_t workers{1};
    std::size_t ring_capacity{1024};
    ShardOptions shard{};
    bool measure_busy{false};
    IoOptions io{};
  };

  // Runs on each shard before its worker thread starts: install routes,
  // interfaces, plugin instances, filters. Replicated configuration is the
  // sharing model — every shard gets the same control state.
  using Setup = std::function<void(ShardContext&)>;

  explicit ShardedDatapath(const Options& opt, const Setup& setup = nullptr);
  ~ShardedDatapath();

  ShardedDatapath(const ShardedDatapath&) = delete;
  ShardedDatapath& operator=(const ShardedDatapath&) = delete;

  std::uint32_t workers() const noexcept {
    return static_cast<std::uint32_t>(workers_.size());
  }
  Worker& worker(std::uint32_t i) noexcept { return *workers_[i]; }

  // Which worker a packet with this flow hash is steered to (steered mode;
  // multiq steers through the backend's RETA, which starts out equivalent).
  std::uint32_t shard_of(std::uint64_t flow_hash) const noexcept {
    return shard_index(flow_hash,
                       static_cast<std::uint32_t>(workers_.size()));
  }

  // The multi-queue backend, null in steered mode.
  io::MemQueueBackend* backend() noexcept { return mq_.get(); }
  // RETA-bucket migrations performed so far (multiq + migration enabled).
  std::uint64_t migrations() const noexcept { return migrations_; }
  // Per-queue stats; in steered mode synthesized from the worker's ring.
  io::QueueStats queue_stats(std::uint32_t q) const;

  // Per-packet egress callback, set before traffic (forwarded to workers).
  void set_tx_handler(Worker::TxHandler h);

  // -- ingress (single submitting thread) --

  // Parses the six-tuple if needed, steers by flow hash, and enqueues on the
  // owning worker's ring (blocking while full — lossless). Unparseable
  // packets round-robin; they carry no flow state, so placement is free.
  void submit(pkt::PacketPtr p);
  std::uint64_t submitted() const noexcept;

  // -- control (single control thread; may be the submitting thread) --

  // Posts `c` to every worker, to run at its next burst boundary.
  void broadcast(Worker::Command c);
  // Runs `fn` on every worker thread at a burst boundary and blocks until
  // all have run — the exact-aggregation primitive.
  void gather(const std::function<void(ShardContext&)>& fn);
  // Blocks until every submitted packet and posted command has completed.
  void quiesce();

  // Control-path mutations proven safe mid-traffic (the quiesce-hook fix):
  // both run at burst boundaries on the owning worker, never mid-burst.
  void reset_counters();
  void sweep_flows(netbase::SimTime cutoff);

  // Exact aggregate across all shards (uses gather(); waits for a burst
  // boundary on each worker).
  core::CoreCounters aggregate_counters();
  // Summed NIC counters across every shard's interface table (surfaces
  // driver-level rx_drops, which used to be counted but never reported).
  netdev::NicCounters aggregate_nic_counters();

  // Lock-free monitoring reads from the workers' published snapshots —
  // slightly stale (≤16 bursts), never blocks the packet path.
  ShardSnapshot status(std::uint32_t shard) const;
  std::vector<ShardSnapshot> status_all() const;

  void stop();  // drain + join all workers (idempotent; dtor calls it)

 private:
  void submit_multiq(pkt::PacketPtr p);
  void maybe_migrate(std::uint32_t bucket);
  void block_until_barrier();

  std::vector<std::unique_ptr<Worker>> workers_;
  // Control thread's reader slot in each worker's status domain.
  std::vector<std::size_t> reader_slots_;
  std::uint64_t rr_{0};  // round-robin cursor for unparseable packets

  // Multi-queue state (submit-thread owned).
  std::unique_ptr<io::MemQueueBackend> mq_;
  double migrate_threshold_{0.0};
  std::size_t migrate_depth_{0};  // threshold in packets (precomputed)
  std::uint64_t migrations_{0};
  struct {
    bool active{false};
    std::uint32_t bucket{0};
    std::uint32_t from{0};
    std::uint64_t barrier{0};  // victim's submitted() at RETA rebind
  } mig_;
};

}  // namespace rp::parallel

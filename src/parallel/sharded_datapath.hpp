// The N-worker datapath: RSS-style flow sharding over private router stacks.
//
// Ingress steers each packet to worker `(flow_hash >> 56) % N` — the *high*
// bits, because the per-shard FlowTable indexes buckets with the low bits
// (`hash & (buckets-1)`); using disjoint bit ranges keeps every shard's flow
// table fully utilised. A flow's packets always land on one worker, in
// submission order, so per-flow semantics (gate order, flow state, drop
// reasons, byte counts) are exactly those of the single-threaded path — the
// differential test holds the two to bit-equality.
//
// Control-plane interaction is lock-free on the packet path:
//   * mutations  — broadcast() posts a command to every worker's command
//     ring; workers apply it at the next burst boundary (the quiesce hook);
//   * aggregation — gather() runs a closure on each worker thread (exact,
//     race-free reads of worker-owned state) and joins on a latch;
//   * monitoring — status() copies the worker's latest epoch-protected
//     snapshot without stopping it (see parallel/epoch.hpp).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "parallel/shard.hpp"

namespace rp::parallel {

class ShardedDatapath {
 public:
  struct Options {
    std::uint32_t workers{1};
    std::size_t ring_capacity{1024};
    ShardOptions shard{};
    bool measure_busy{false};
  };

  // Runs on each shard before its worker thread starts: install routes,
  // interfaces, plugin instances, filters. Replicated configuration is the
  // sharing model — every shard gets the same control state.
  using Setup = std::function<void(ShardContext&)>;

  explicit ShardedDatapath(const Options& opt, const Setup& setup = nullptr);
  ~ShardedDatapath();

  ShardedDatapath(const ShardedDatapath&) = delete;
  ShardedDatapath& operator=(const ShardedDatapath&) = delete;

  std::uint32_t workers() const noexcept {
    return static_cast<std::uint32_t>(workers_.size());
  }
  Worker& worker(std::uint32_t i) noexcept { return *workers_[i]; }

  // Which worker a packet with this flow hash is steered to.
  std::uint32_t shard_of(std::uint64_t flow_hash) const noexcept {
    return static_cast<std::uint32_t>((flow_hash >> 56) % workers_.size());
  }

  // Per-packet egress callback, set before traffic (forwarded to workers).
  void set_tx_handler(Worker::TxHandler h);

  // -- ingress (single submitting thread) --

  // Parses the six-tuple if needed, steers by flow hash, and enqueues on the
  // owning worker's ring (blocking while full — lossless). Unparseable
  // packets round-robin; they carry no flow state, so placement is free.
  void submit(pkt::PacketPtr p);
  std::uint64_t submitted() const noexcept;

  // -- control (single control thread; may be the submitting thread) --

  // Posts `c` to every worker, to run at its next burst boundary.
  void broadcast(Worker::Command c);
  // Runs `fn` on every worker thread at a burst boundary and blocks until
  // all have run — the exact-aggregation primitive.
  void gather(const std::function<void(ShardContext&)>& fn);
  // Blocks until every submitted packet and posted command has completed.
  void quiesce();

  // Control-path mutations proven safe mid-traffic (the quiesce-hook fix):
  // both run at burst boundaries on the owning worker, never mid-burst.
  void reset_counters();
  void sweep_flows(netbase::SimTime cutoff);

  // Exact aggregate across all shards (uses gather(); waits for a burst
  // boundary on each worker).
  core::CoreCounters aggregate_counters();

  // Lock-free monitoring reads from the workers' published snapshots —
  // slightly stale (≤16 bursts), never blocks the packet path.
  ShardSnapshot status(std::uint32_t shard) const;
  std::vector<ShardSnapshot> status_all() const;

  void stop();  // drain + join all workers (idempotent; dtor calls it)

 private:
  std::vector<std::unique_ptr<Worker>> workers_;
  // Control thread's reader slot in each worker's status domain.
  std::vector<std::size_t> reader_slots_;
  std::uint64_t rr_{0};  // round-robin cursor for unparseable packets
};

}  // namespace rp::parallel

// One shard of the parallel datapath: a worker thread that owns a complete,
// private EISR stack — PCU, plugin instances, AIU (filter tables + flow
// table), routing table, interfaces, IP core, telemetry, and resilience
// supervisor. Nothing on the packet path is shared between shards, so the
// per-packet machinery runs exactly the single-threaded code (the
// differential test in tests/test_shard_diff.cpp holds it to that).
//
// Cross-thread traffic happens on exactly three fabrics, all lock-free on
// the packet path:
//   * the packet ring   (ingress -> worker, SPSC, per-flow FIFO),
//   * the command ring  (control -> worker, SPSC; commands run only at
//     burst boundaries — this is the quiesce hook that makes control-path
//     mutations like filter add/remove, IpCore::reset_counters and
//     flow-table eviction-export safe while traffic flows),
//   * the status snapshot (worker -> control, RCU-style Versioned pointer;
//     the control plane reads it without stopping the worker).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "aiu/aiu.hpp"
#include "core/ip_core.hpp"
#include "io/io_backend.hpp"
#include "netdev/iftable.hpp"
#include "parallel/epoch.hpp"
#include "parallel/spsc_ring.hpp"
#include "plugin/loader.hpp"
#include "plugin/pcu.hpp"
#include "resilience/resilience.hpp"
#include "route/routing_table.hpp"
#include "telemetry/telemetry.hpp"

namespace rp::parallel {

// Per-shard stack configuration — the same knobs RouterKernel::Options
// exposes for the single-threaded kernel.
struct ShardOptions {
  aiu::Aiu::Options aiu{};
  core::CoreConfig core{};
  std::string route_engine{"bsl"};
  telemetry::Telemetry::Options telemetry{};
  resilience::Supervisor::Options resilience{};
};

// A complete private router stack, wired exactly like RouterKernel wires its
// subsystems (telemetry attached to the core, supervisor guarding gates,
// flow-table removals exported as flow records, purge hooks installed).
class ShardContext {
 public:
  ShardContext(std::uint32_t shard_id, const ShardOptions& opt);
  ~ShardContext();

  ShardContext(const ShardContext&) = delete;
  ShardContext& operator=(const ShardContext&) = delete;

  std::uint32_t id() const noexcept { return id_; }
  netbase::SimClock& clock() noexcept { return clock_; }
  plugin::PluginControlUnit& pcu() noexcept { return pcu_; }
  plugin::PluginLoader& loader() noexcept { return loader_; }
  aiu::Aiu& aiu() noexcept { return *aiu_; }
  netdev::InterfaceTable& interfaces() noexcept { return ifs_; }
  route::RoutingTable& routes() noexcept { return routes_; }
  core::IpCore& core() noexcept { return *core_; }
  telemetry::Telemetry& telemetry() noexcept { return *telemetry_; }
  resilience::Supervisor& resilience() noexcept { return *resil_; }

 private:
  std::uint32_t id_;
  netbase::SimClock clock_;
  plugin::PluginControlUnit pcu_;
  plugin::PluginLoader loader_;
  netdev::InterfaceTable ifs_;
  route::RoutingTable routes_;
  // Destruction order mirrors RouterKernel: telemetry outlives the AIU
  // (flow-table teardown exports records), the supervisor outlives the core.
  std::unique_ptr<telemetry::Telemetry> telemetry_;
  std::unique_ptr<resilience::Supervisor> resil_;
  std::unique_ptr<aiu::Aiu> aiu_;
  std::unique_ptr<core::IpCore> core_;
};

// Lock-free status snapshot a worker publishes at burst boundaries; the
// control plane reads the latest without quiescing (pmgr `shard status`).
struct ShardSnapshot {
  std::uint32_t shard_id{0};
  std::uint64_t packets_processed{0};
  std::uint64_t bursts{0};
  core::CoreCounters counters{};
  std::size_t flows_active{0};
  std::uint64_t telemetry_samples{0};
  std::uint64_t faults_total{0};
};

// The worker: one thread draining its packet ring through the private stack.
class Worker {
 public:
  // Runs on the worker thread, at a burst boundary (never mid-burst).
  using Command = std::function<void(ShardContext&)>;
  // Invoked on the worker thread for every packet leaving via an output
  // port. Null = transmit-and-free (the packet is accounted in the core's
  // `forwarded` counter either way).
  using TxHandler = std::function<void(ShardContext&, pkt::IfIndex,
                                       pkt::PacketPtr)>;

  static constexpr std::size_t kBurst = aiu::Aiu::kMaxBurst;

  Worker(std::uint32_t shard_id, const ShardOptions& opt,
         std::size_t ring_capacity);
  ~Worker();

  // -- setup (before start) --
  ShardContext& ctx() noexcept { return ctx_; }
  void set_tx_handler(TxHandler h) { tx_ = std::move(h); }
  // Multi-queue mode: the worker drains rx directly from its own backend
  // queue instead of its SPSC ring — no central ingress thread in between.
  // The producer delivers into the backend, then calls note_submitted() +
  // doorbell() so quiesce accounting and parking keep working.
  void set_rx_source(io::IoBackend* be, std::uint32_t queue) noexcept {
    rx_be_ = be;
    rx_queue_ = queue;
  }
  // Record per-burst thread-CPU time so benches can report per-worker
  // service capacity (off by default: two clock_gettime calls per burst).
  void set_measure_busy(bool on) noexcept { measure_busy_ = on; }

  void start();
  void stop_and_join();  // drains the ring and pending commands first
  bool running() const noexcept { return thread_.joinable(); }

  // -- ingress side (single producer) --

  // False when the ring is full (caller may spin/yield and retry).
  bool try_submit(pkt::PacketPtr& p);
  void submit_blocking(pkt::PacketPtr p);
  std::uint64_t submitted() const noexcept { return submitted_; }
  // Producer-side accounting + wakeup for packets delivered around the ring
  // (i.e. straight into this worker's backend rx queue).
  void note_submitted() noexcept { ++submitted_; }
  void doorbell() noexcept { wake(); }

  // -- control side (single control thread; may be the ingress thread) --

  // Enqueues a command for the next burst boundary (blocking if the command
  // ring is momentarily full).
  void post(Command c);
  // Blocks until every packet submitted so far is processed and every
  // command posted so far has run.
  void quiesce();

  // Packets fully processed (released or queued), published by the worker.
  std::uint64_t processed() const noexcept {
    return processed_.load(std::memory_order_acquire);
  }
  // Thread-CPU nanoseconds spent inside burst processing (see
  // set_measure_busy); 0 when measurement is off.
  std::uint64_t busy_ns() const noexcept {
    return busy_ns_.load(std::memory_order_acquire);
  }

  // Claims a reader slot in this worker's status domain (each worker is the
  // sole epoch writer of its own domain — that invariant is what makes the
  // domain's limbo list safely writer-owned).
  std::size_t register_reader() { return status_domain_.register_reader(); }
  // Latest published snapshot copied out under an epoch guard; zeroed
  // snapshot before the worker first publishes. `reader_slot` comes from
  // register_reader().
  ShardSnapshot snapshot(std::size_t reader_slot) const;

 private:
  void run();
  bool drain_commands();
  void drain_tx();
  void publish_snapshot();
  void wake();

  // True when there is nothing to pop from the packet source right now.
  bool rx_idle() const {
    return rx_be_ ? !rx_be_->rx_pending(rx_queue_) : ring_.empty();
  }

  ShardContext ctx_;
  SpscRing<pkt::PacketPtr> ring_;
  SpscRing<Command> commands_{64};
  TxHandler tx_;
  io::IoBackend* rx_be_{nullptr};  // null = drain the SPSC ring (steered)
  std::uint32_t rx_queue_{0};

  // Declared before status_ (the Versioned's destructor retires into it).
  mutable EpochDomain status_domain_;
  Versioned<ShardSnapshot> status_;

  std::thread thread_;
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> processed_{0};
  std::atomic<std::uint64_t> busy_ns_{0};
  std::uint64_t submitted_{0};  // producer-owned
  bool measure_busy_{false};
  std::uint64_t bursts_{0};           // worker-owned
  std::uint64_t since_publish_{0};    // worker-owned

  // Parking: the worker naps when both rings are empty; producers ring the
  // doorbell after pushing to a possibly-sleeping worker. The Dekker-style
  // seq_cst flag plus a bounded wait makes the handoff lost-wakeup-free.
  std::atomic<bool> sleeping_{false};
  std::mutex nap_mu_;
  std::condition_variable nap_cv_;
};

}  // namespace rp::parallel

#include "io/io_backend.hpp"

#include "parallel/spsc_ring.hpp"

namespace rp::io {

// Per-queue state, cache-line separated so one queue's producer/consumer
// traffic never false-shares with a neighbour's. Counters are relaxed
// atomics: each is written by exactly one side but read by the control
// plane's queue_stats() while traffic flows.
struct alignas(64) MemQueueBackend::Queue {
  explicit Queue(std::size_t cap) : ring(cap) {}

  parallel::SpscRing<pkt::PacketPtr> ring;

  // Producer-written.
  std::atomic<std::uint64_t> enqueued{0};
  std::atomic<std::uint64_t> drops{0};
  std::atomic<std::uint64_t> waits{0};
  std::atomic<std::uint64_t> occupancy_sum{0};
  std::atomic<std::uint64_t> occupancy_samples{0};
  std::atomic<std::uint64_t> migrations_in{0};
  std::atomic<std::uint64_t> migrations_out{0};
  // Consumer-written.
  std::atomic<std::uint64_t> drained{0};
};

MemQueueBackend::MemQueueBackend(const MemQueueOptions& opt)
    : n_queues_(opt.queues ? opt.queues : 1) {
  queues_.reserve(n_queues_);
  for (std::uint32_t i = 0; i < n_queues_; ++i)
    queues_.push_back(std::make_unique<Queue>(opt.ring_capacity));
  // Initial RETA: the same fixed-point spread the shard steering uses, so
  // a fresh multi-queue backend steers exactly like the steered path.
  for (std::uint32_t b = 0; b < kRetaSize; ++b)
    reta_[b] = static_cast<std::uint32_t>(
        (static_cast<std::uint64_t>(b) * n_queues_) / kRetaSize);
}

MemQueueBackend::~MemQueueBackend() = default;

void MemQueueBackend::set_reta(std::uint32_t bucket,
                               std::uint32_t queue) noexcept {
  const std::uint32_t from = reta_[bucket];
  if (from == queue) return;
  reta_[bucket] = queue;
  queues_[from]->migrations_out.fetch_add(1, std::memory_order_relaxed);
  queues_[queue]->migrations_in.fetch_add(1, std::memory_order_relaxed);
}

bool MemQueueBackend::try_deliver(std::uint32_t queue, pkt::PacketPtr& p,
                                  netbase::SimTime /*now*/) {
  Queue& q = *queues_[queue];
  const std::size_t depth = q.ring.size_approx();
  if (!q.ring.try_push(p)) {
    q.waits.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  q.occupancy_sum.fetch_add(depth, std::memory_order_relaxed);
  q.occupancy_samples.fetch_add(1, std::memory_order_relaxed);
  q.enqueued.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void MemQueueBackend::note_drop(std::uint32_t queue) {
  queues_[queue]->drops.fetch_add(1, std::memory_order_relaxed);
}

std::size_t MemQueueBackend::rx_burst(std::uint32_t queue,
                                      std::span<pkt::PacketPtr> out) {
  Queue& q = *queues_[queue];
  const std::size_t n = q.ring.pop_burst(out);
  if (n) q.drained.fetch_add(n, std::memory_order_relaxed);
  return n;
}

bool MemQueueBackend::rx_pending(std::uint32_t queue) const {
  return !queues_[queue]->ring.empty();
}

std::size_t MemQueueBackend::rx_depth(std::uint32_t queue) const {
  return queues_[queue]->ring.size_approx();
}

QueueStats MemQueueBackend::queue_stats(std::uint32_t queue) const {
  const Queue& q = *queues_[queue];
  QueueStats s;
  s.rx_enqueued = q.enqueued.load(std::memory_order_relaxed);
  s.rx_drained = q.drained.load(std::memory_order_relaxed);
  s.rx_drops = q.drops.load(std::memory_order_relaxed);
  s.rx_waits = q.waits.load(std::memory_order_relaxed);
  s.occupancy_sum = q.occupancy_sum.load(std::memory_order_relaxed);
  s.occupancy_samples = q.occupancy_samples.load(std::memory_order_relaxed);
  s.migrations_in = q.migrations_in.load(std::memory_order_relaxed);
  s.migrations_out = q.migrations_out.load(std::memory_order_relaxed);
  return s;
}

}  // namespace rp::io

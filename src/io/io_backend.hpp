// IoBackend — the device-facing seam of the datapath (the fastclick
// dpdkdevice/netmap/xdp split, sized for this codebase).
//
// Everything above the backend (core burst loop, sharded workers) talks to
// rx queues through this interface; everything below it decides what a
// "queue" physically is. Two implementations ship:
//
//   * SimNicBackend  — the existing single-queue simulated device: one rx
//     queue per SimNic, driver-timestamping on deliver, counters on the
//     NIC. RouterKernel drains its receive path through this adapter.
//   * MemQueueBackend — a multi-queue in-memory backend: N SPSC rings, an
//     RSS indirection table (RETA) steering flow hashes to queues, per-
//     queue occupancy/migration counters. Each sharded worker owns one
//     queue pair and drains rx directly — no central ingress thread sits
//     between the producer and the worker.
//
// Threading contract (both backends): each queue is single-producer,
// single-consumer. try_deliver is the producer side; rx_burst/rx_pending/
// rx_depth belong to the queue's owning consumer. queue_stats() may be read
// from any thread (counters are relaxed atomics in the multi-queue backend,
// quiescent-state reads for the NIC adapter).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "netbase/clock.hpp"
#include "netdev/iftable.hpp"
#include "pkt/packet.hpp"

namespace rp::io {

struct QueueStats {
  std::uint64_t rx_enqueued{0};       // accepted into the queue
  std::uint64_t rx_drained{0};        // popped by the consumer
  std::uint64_t rx_drops{0};          // dropped: queue full, producer gave up
  std::uint64_t rx_waits{0};          // full-queue retry spins (backpressure)
  std::uint64_t occupancy_sum{0};     // sum of depth samples at accept
  std::uint64_t occupancy_samples{0};
  std::uint64_t migrations_in{0};     // RETA buckets moved onto this queue
  std::uint64_t migrations_out{0};    // RETA buckets moved off this queue
};

class IoBackend {
 public:
  virtual ~IoBackend() = default;

  virtual std::string_view name() const noexcept = 0;
  virtual std::uint32_t n_queues() const noexcept = 0;

  // RSS: the rx queue a flow hash steers to (single-queue backends: 0).
  virtual std::uint32_t steer(std::uint64_t flow_hash) const noexcept = 0;

  // Producer side. False = queue full; the packet stays in `p` so a
  // lossless producer can retry (counted as rx_waits) and a lossy one can
  // drop it — calling note_drop so the loss is visible in rx_drops.
  virtual bool try_deliver(std::uint32_t queue, pkt::PacketPtr& p,
                           netbase::SimTime now) = 0;
  virtual void note_drop(std::uint32_t /*queue*/) {}

  // Consumer side — only queue `queue`'s owning thread.
  virtual std::size_t rx_burst(std::uint32_t queue,
                               std::span<pkt::PacketPtr> out) = 0;
  virtual bool rx_pending(std::uint32_t queue) const = 0;
  virtual std::size_t rx_depth(std::uint32_t queue) const = 0;

  virtual QueueStats queue_stats(std::uint32_t queue) const = 0;
};

// ---------------------------------------------------------------------------
// SimNicBackend — one rx queue per SimNic of an InterfaceTable. deliver
// keeps the driver model: arrival timestamping, in_iface stamping, ring-
// overflow drops counted on the NIC (satellite: those drops now surface
// through queue_stats and the owning kernel's accounting).

class SimNicBackend final : public IoBackend {
 public:
  explicit SimNicBackend(netdev::InterfaceTable& ifs) noexcept : ifs_(&ifs) {}

  std::string_view name() const noexcept override { return "simnic"; }
  std::uint32_t n_queues() const noexcept override {
    return static_cast<std::uint32_t>(ifs_->size());
  }
  std::uint32_t steer(std::uint64_t) const noexcept override { return 0; }

  // Driver semantics, not fabric semantics: an overflowed packet is
  // dropped-and-counted by the NIC (rx_drops), not handed back for retry —
  // a wire cannot be asked to wait.
  bool try_deliver(std::uint32_t queue, pkt::PacketPtr& p,
                   netbase::SimTime now) override {
    netdev::SimNic* nic = ifs_->by_index(static_cast<pkt::IfIndex>(queue));
    if (!nic) return false;
    return nic->deliver(std::move(p), now);
  }

  std::size_t rx_burst(std::uint32_t queue,
                       std::span<pkt::PacketPtr> out) override {
    netdev::SimNic* nic = ifs_->by_index(static_cast<pkt::IfIndex>(queue));
    return nic ? nic->rx_burst(out) : 0;
  }
  bool rx_pending(std::uint32_t queue) const override {
    const netdev::SimNic* nic =
        ifs_->by_index(static_cast<pkt::IfIndex>(queue));
    return nic && nic->rx_pending();
  }
  std::size_t rx_depth(std::uint32_t queue) const override {
    const netdev::SimNic* nic =
        ifs_->by_index(static_cast<pkt::IfIndex>(queue));
    return nic ? nic->rx_depth() : 0;
  }

  QueueStats queue_stats(std::uint32_t queue) const override {
    QueueStats s;
    const netdev::SimNic* nic =
        ifs_->by_index(static_cast<pkt::IfIndex>(queue));
    if (!nic) return s;
    const netdev::NicCounters& c = nic->counters();
    s.rx_enqueued = c.rx_packets;
    s.rx_drops = c.rx_drops;
    s.rx_drained = c.rx_packets - nic->rx_depth();
    return s;
  }

 private:
  netdev::InterfaceTable* ifs_;
};

// ---------------------------------------------------------------------------
// MemQueueBackend — multi-queue in-memory fabric. Steering goes through a
// 256-bucket indirection table exactly like hardware RSS: the fixed-point
// range map ((hash>>32)*256)>>32 picks a bucket from the hash's high bits
// (low bits stay reserved for flow-table indexing), the RETA maps the
// bucket to a queue. Rebinding one bucket (set_reta) is the flow-migration
// primitive — it moves ~1/256th of the flow space without touching the
// rest. The packet itself is never modified: an in-memory fabric preserves
// whatever arrival timestamp the producer stamped.

struct MemQueueOptions {
  std::uint32_t queues{1};
  std::size_t ring_capacity{1024};
};

class MemQueueBackend final : public IoBackend {
 public:
  static constexpr std::uint32_t kRetaSize = 256;

  explicit MemQueueBackend(const MemQueueOptions& opt);
  ~MemQueueBackend() override;

  std::string_view name() const noexcept override { return "memq"; }
  std::uint32_t n_queues() const noexcept override { return n_queues_; }

  // The RETA bucket a flow hash lands in (same fixed-point map as the
  // shard steering fix, spread over kRetaSize instead of N workers).
  static std::uint32_t bucket_of(std::uint64_t flow_hash) noexcept {
    return static_cast<std::uint32_t>(((flow_hash >> 32) * kRetaSize) >> 32);
  }

  std::uint32_t steer(std::uint64_t flow_hash) const noexcept override {
    return reta_[bucket_of(flow_hash)];
  }

  // RETA access — steering-thread only (the single producer of record).
  std::uint32_t reta(std::uint32_t bucket) const noexcept {
    return reta_[bucket];
  }
  void set_reta(std::uint32_t bucket, std::uint32_t queue) noexcept;

  bool try_deliver(std::uint32_t queue, pkt::PacketPtr& p,
                   netbase::SimTime now) override;
  void note_drop(std::uint32_t queue) override;
  std::size_t rx_burst(std::uint32_t queue,
                       std::span<pkt::PacketPtr> out) override;
  bool rx_pending(std::uint32_t queue) const override;
  std::size_t rx_depth(std::uint32_t queue) const override;
  QueueStats queue_stats(std::uint32_t queue) const override;

 private:
  struct Queue;

  std::uint32_t n_queues_;
  std::vector<std::unique_ptr<Queue>> queues_;
  std::uint32_t reta_[kRetaSize];
};

}  // namespace rp::io

// HMAC-SHA-256 (RFC 2104) for the AH/ESP integrity check value. The plugins
// use the 128-bit truncated form (as in HMAC-SHA-256-128).
#pragma once

#include <span>
#include <vector>

#include "ipsec/sha256.hpp"

namespace rp::ipsec {

class HmacSha256 {
 public:
  static constexpr std::size_t kDigestSize = Sha256::kDigestSize;

  explicit HmacSha256(std::span<const std::uint8_t> key);

  void reset();
  void update(std::span<const std::uint8_t> data) { inner_.update(data); }
  Sha256::Digest finish();

  static Sha256::Digest mac(std::span<const std::uint8_t> key,
                            std::span<const std::uint8_t> data) {
    HmacSha256 h(key);
    h.update(data);
    return h.finish();
  }

 private:
  std::array<std::uint8_t, Sha256::kBlockSize> ipad_;
  std::array<std::uint8_t, Sha256::kBlockSize> opad_;
  Sha256 inner_;
};

// Constant-time comparison of two MACs.
bool mac_equal(std::span<const std::uint8_t> a,
               std::span<const std::uint8_t> b) noexcept;

}  // namespace rp::ipsec

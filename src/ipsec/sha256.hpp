// SHA-256 (FIPS 180-4), implemented from scratch for the IP security
// plugins. Streaming interface plus a one-shot helper.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>

namespace rp::ipsec {

class Sha256 {
 public:
  static constexpr std::size_t kDigestSize = 32;
  static constexpr std::size_t kBlockSize = 64;
  using Digest = std::array<std::uint8_t, kDigestSize>;

  Sha256() { reset(); }

  void reset();
  void update(const std::uint8_t* data, std::size_t len);
  void update(std::span<const std::uint8_t> data) {
    update(data.data(), data.size());
  }
  Digest finish();

  static Digest digest(std::span<const std::uint8_t> data) {
    Sha256 h;
    h.update(data);
    return h.finish();
  }

 private:
  void compress(const std::uint8_t* block);

  std::uint32_t h_[8];
  std::uint8_t buf_[kBlockSize];
  std::size_t buf_len_;
  std::uint64_t total_len_;
};

}  // namespace rp::ipsec

// IP security plugins (Section 4: one of the four plugin types of the
// paper's implementation; RFC 1825-era AH and ESP in transport mode).
//
// An instance is one direction of one transform:
//   mode=ah-add      insert an AH header + HMAC-SHA-256-128 ICV
//   mode=ah-verify   verify + strip AH (drops on bad ICV or replay)
//   mode=esp-encrypt insert ESP header, ChaCha20-encrypt payload, add ICV
//   mode=esp-decrypt verify ICV + anti-replay, decrypt, strip
//
// SAs are installed with the plugin-level `addsa` message
// (spi, auth_key=<hex> [, enc_key=<hex>]); instances reference them by SPI.
// Binding instances to filters at the IP security gate is what makes this a
// per-flow VPN entry/exit point (the paper's firewall/VPN use case).
#pragma once

#include <memory>
#include <string>

#include "ipsec/sadb.hpp"
#include "plugin/loader.hpp"
#include "plugin/plugin.hpp"

namespace rp::ipsec {

class IpsecPlugin;

enum class IpsecMode { ah_add, ah_verify, esp_encrypt, esp_decrypt };

class IpsecInstance final : public plugin::PluginInstance {
 public:
  IpsecInstance(IpsecPlugin& owner, IpsecMode mode, std::uint32_t spi)
      : plugin_(owner), mode_(mode), spi_(spi) {}

  plugin::Verdict handle_packet(pkt::Packet& p, void** flow_soft) override;
  // Batch-native: one SADB probe for the whole run (every packet of a run
  // uses this instance's SA) and one processed-counter add.
  void handle_burst(plugin::PacketRun& run) override;

  struct Counters {
    std::uint64_t processed{0};
    std::uint64_t auth_failures{0};
    std::uint64_t replay_drops{0};
    std::uint64_t malformed{0};
  };
  const Counters& counters() const noexcept { return counters_; }

  netbase::Status handle_message(const plugin::PluginMsg& msg,
                                 plugin::PluginReply& reply) override;

 private:
  plugin::Verdict ah_add(pkt::Packet& p, SecurityAssociation& sa);
  plugin::Verdict ah_verify(pkt::Packet& p, SecurityAssociation& sa);
  plugin::Verdict esp_encrypt(pkt::Packet& p, SecurityAssociation& sa);
  plugin::Verdict esp_decrypt(pkt::Packet& p, SecurityAssociation& sa);

  IpsecPlugin& plugin_;
  IpsecMode mode_;
  std::uint32_t spi_;
  Counters counters_;
};

class IpsecPlugin final : public plugin::Plugin {
 public:
  IpsecPlugin() : Plugin("ipsec", plugin::PluginType::ipsec) {}

  SecurityAssociationDb& sadb() noexcept { return sadb_; }

  netbase::Status handle_message(const plugin::PluginMsg& msg,
                                 plugin::PluginReply& reply) override;

 protected:
  std::unique_ptr<plugin::PluginInstance> make_instance(
      const plugin::Config& cfg) override;

 private:
  SecurityAssociationDb sadb_;
};

void register_ipsec_plugins();

}  // namespace rp::ipsec

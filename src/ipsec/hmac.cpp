#include "ipsec/hmac.hpp"

#include <cstring>

namespace rp::ipsec {

HmacSha256::HmacSha256(std::span<const std::uint8_t> key) {
  std::array<std::uint8_t, Sha256::kBlockSize> k{};
  if (key.size() > Sha256::kBlockSize) {
    auto d = Sha256::digest(key);
    std::memcpy(k.data(), d.data(), d.size());
  } else {
    std::memcpy(k.data(), key.data(), key.size());
  }
  for (std::size_t i = 0; i < k.size(); ++i) {
    ipad_[i] = static_cast<std::uint8_t>(k[i] ^ 0x36);
    opad_[i] = static_cast<std::uint8_t>(k[i] ^ 0x5c);
  }
  reset();
}

void HmacSha256::reset() {
  inner_.reset();
  inner_.update(ipad_.data(), ipad_.size());
}

Sha256::Digest HmacSha256::finish() {
  auto inner_digest = inner_.finish();
  Sha256 outer;
  outer.update(opad_.data(), opad_.size());
  outer.update(inner_digest.data(), inner_digest.size());
  reset();
  return outer.finish();
}

bool mac_equal(std::span<const std::uint8_t> a,
               std::span<const std::uint8_t> b) noexcept {
  if (a.size() != b.size()) return false;
  std::uint8_t diff = 0;
  for (std::size_t i = 0; i < a.size(); ++i) diff |= a[i] ^ b[i];
  return diff == 0;
}

}  // namespace rp::ipsec

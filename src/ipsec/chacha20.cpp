#include "ipsec/chacha20.hpp"

#include <bit>
#include <cstring>

namespace rp::ipsec {

namespace {

inline std::uint32_t load_le32(const std::uint8_t* p) {
  return std::uint32_t{p[0]} | (std::uint32_t{p[1]} << 8) |
         (std::uint32_t{p[2]} << 16) | (std::uint32_t{p[3]} << 24);
}

inline void quarter_round(std::uint32_t& a, std::uint32_t& b, std::uint32_t& c,
                          std::uint32_t& d) {
  a += b; d ^= a; d = std::rotl(d, 16);
  c += d; b ^= c; b = std::rotl(b, 12);
  a += b; d ^= a; d = std::rotl(d, 8);
  c += d; b ^= c; b = std::rotl(b, 7);
}

}  // namespace

ChaCha20::ChaCha20(std::span<const std::uint8_t> key,
                   std::span<const std::uint8_t> nonce, std::uint32_t counter) {
  // "expand 32-byte k"
  state_[0] = 0x61707865;
  state_[1] = 0x3320646e;
  state_[2] = 0x79622d32;
  state_[3] = 0x6b206574;
  std::uint8_t k[kKeySize] = {};
  std::memcpy(k, key.data(), key.size() < kKeySize ? key.size() : kKeySize);
  for (int i = 0; i < 8; ++i) state_[4 + i] = load_le32(k + 4 * i);
  state_[12] = counter;
  std::uint8_t n[kNonceSize] = {};
  std::memcpy(n, nonce.data(),
              nonce.size() < kNonceSize ? nonce.size() : kNonceSize);
  for (int i = 0; i < 3; ++i) state_[13 + i] = load_le32(n + 4 * i);
}

void ChaCha20::block(std::uint8_t out[64]) {
  std::array<std::uint32_t, 16> x = state_;
  for (int round = 0; round < 10; ++round) {
    quarter_round(x[0], x[4], x[8], x[12]);
    quarter_round(x[1], x[5], x[9], x[13]);
    quarter_round(x[2], x[6], x[10], x[14]);
    quarter_round(x[3], x[7], x[11], x[15]);
    quarter_round(x[0], x[5], x[10], x[15]);
    quarter_round(x[1], x[6], x[11], x[12]);
    quarter_round(x[2], x[7], x[8], x[13]);
    quarter_round(x[3], x[4], x[9], x[14]);
  }
  for (int i = 0; i < 16; ++i) {
    std::uint32_t v = x[i] + state_[i];
    out[4 * i] = static_cast<std::uint8_t>(v);
    out[4 * i + 1] = static_cast<std::uint8_t>(v >> 8);
    out[4 * i + 2] = static_cast<std::uint8_t>(v >> 16);
    out[4 * i + 3] = static_cast<std::uint8_t>(v >> 24);
  }
  ++state_[12];
}

void ChaCha20::crypt(std::uint8_t* data, std::size_t len) {
  while (len) {
    if (ks_used_ == 64) {
      block(keystream_);
      ks_used_ = 0;
    }
    std::size_t take = 64 - ks_used_;
    if (take > len) take = len;
    for (std::size_t i = 0; i < take; ++i) data[i] ^= keystream_[ks_used_ + i];
    data += take;
    len -= take;
    ks_used_ += take;
  }
}

}  // namespace rp::ipsec

#include "ipsec/ipsec_plugins.hpp"

#include <cstring>
#include <vector>

#include "ipsec/chacha20.hpp"
#include "ipsec/hmac.hpp"
#include "netbase/byteorder.hpp"
#include "pkt/headers.hpp"

namespace rp::ipsec {

using netbase::IpVersion;
using netbase::load_be32;
using netbase::store_be32;
using netbase::Status;
using plugin::Verdict;

namespace {

constexpr std::size_t kAhHeaderSize = 28;  // 12 fixed + 16 ICV
constexpr std::size_t kEspHeaderSize = 8;  // spi + seq
constexpr std::size_t kEspTrailerSize = 2; // pad_len + next_header
constexpr std::size_t kIcvSize = 16;       // HMAC-SHA-256-128

std::size_t ip_header_len(const pkt::Packet& p) {
  return p.ip_version == IpVersion::v4
             ? std::size_t{static_cast<std::size_t>(p.data()[0] & 0x0f)} * 4
             : pkt::Ipv6Header::kSize;
}

std::uint8_t get_ip_proto(const pkt::Packet& p) {
  return p.ip_version == IpVersion::v4 ? p.data()[9] : p.data()[6];
}

void set_ip_proto(pkt::Packet& p, std::uint8_t proto) {
  if (p.ip_version == IpVersion::v4)
    p.data()[9] = proto;
  else
    p.data()[6] = proto;
}

// Adjusts the L3 length field by `delta` bytes and refreshes the IPv4
// header checksum.
void fix_lengths(pkt::Packet& p, std::ptrdiff_t delta) {
  std::uint8_t* h = p.data();
  if (p.ip_version == IpVersion::v4) {
    std::uint16_t len = netbase::load_be16(&h[2]);
    netbase::store_be16(&h[2], static_cast<std::uint16_t>(len + delta));
    pkt::Ipv4Header::finalize_checksum(h, ip_header_len(p));
  } else {
    std::uint16_t len = netbase::load_be16(&h[4]);
    netbase::store_be16(&h[4], static_cast<std::uint16_t>(len + delta));
  }
}

void refresh_v4_checksum(pkt::Packet& p) {
  if (p.ip_version == IpVersion::v4)
    pkt::Ipv4Header::finalize_checksum(p.data(), ip_header_len(p));
}

// ICV over the whole packet with mutable fields (TTL/hop limit, IPv4 header
// checksum) and the ICV field itself zeroed.
Sha256::Digest compute_icv(const pkt::Packet& p,
                           std::span<const std::uint8_t> key,
                           std::size_t icv_off) {
  std::vector<std::uint8_t> scratch(p.data(), p.data() + p.size());
  if (p.ip_version == IpVersion::v4) {
    scratch[8] = 0;                  // TTL
    scratch[10] = scratch[11] = 0;   // header checksum
  } else {
    scratch[7] = 0;  // hop limit
  }
  std::memset(scratch.data() + icv_off, 0, kIcvSize);
  return HmacSha256::mac(key, scratch);
}

}  // namespace

std::vector<std::uint8_t> parse_hex_key(std::string_view hex) {
  if (hex.size() % 2) return {};
  auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
  };
  std::vector<std::uint8_t> out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    int hi = nibble(hex[i]), lo = nibble(hex[i + 1]);
    if (hi < 0 || lo < 0) return {};
    out.push_back(static_cast<std::uint8_t>((hi << 4) | lo));
  }
  return out;
}

Verdict IpsecInstance::handle_packet(pkt::Packet& p, void** /*flow_soft*/) {
  SecurityAssociation* sa = plugin_.sadb().find(spi_);
  if (!sa) {
    ++counters_.malformed;
    return Verdict::drop;
  }
  ++counters_.processed;
  switch (mode_) {
    case IpsecMode::ah_add: return ah_add(p, *sa);
    case IpsecMode::ah_verify: return ah_verify(p, *sa);
    case IpsecMode::esp_encrypt: return esp_encrypt(p, *sa);
    case IpsecMode::esp_decrypt: return esp_decrypt(p, *sa);
  }
  return Verdict::cont;
}

void IpsecInstance::handle_burst(plugin::PacketRun& run) {
  SecurityAssociation* sa = plugin_.sadb().find(spi_);
  if (!sa) {
    counters_.malformed += run.size();
    for (std::size_t i = 0; i < run.size(); ++i)
      run.set_verdict(i, Verdict::drop);
    return;
  }
  counters_.processed += run.size();
  for (std::size_t i = 0; i < run.size(); ++i) {
    pkt::Packet& p = run.packet(i);
    Verdict v = Verdict::cont;
    switch (mode_) {
      case IpsecMode::ah_add: v = ah_add(p, *sa); break;
      case IpsecMode::ah_verify: v = ah_verify(p, *sa); break;
      case IpsecMode::esp_encrypt: v = esp_encrypt(p, *sa); break;
      case IpsecMode::esp_decrypt: v = esp_decrypt(p, *sa); break;
    }
    if (v != Verdict::cont) run.set_verdict(i, v);
  }
}

Verdict IpsecInstance::ah_add(pkt::Packet& p, SecurityAssociation& sa) {
  const std::size_t iphl = ip_header_len(p);
  const std::uint8_t orig_proto = get_ip_proto(p);

  p.prepend(kAhHeaderSize);
  std::memmove(p.data(), p.data() + kAhHeaderSize, iphl);
  std::uint8_t* ah = p.data() + iphl;
  ah[0] = orig_proto;
  ah[1] = kAhHeaderSize / 4 - 2;  // RFC 2402 payload length
  ah[2] = ah[3] = 0;
  store_be32(&ah[4], sa.spi);
  store_be32(&ah[8], static_cast<std::uint32_t>(++sa.tx_seq));
  std::memset(&ah[12], 0, kIcvSize);

  set_ip_proto(p, static_cast<std::uint8_t>(pkt::IpProto::ah));
  fix_lengths(p, static_cast<std::ptrdiff_t>(kAhHeaderSize));

  auto icv = compute_icv(p, sa.auth_key, iphl + 12);
  std::memcpy(&ah[12], icv.data(), kIcvSize);
  refresh_v4_checksum(p);
  return Verdict::cont;
}

Verdict IpsecInstance::ah_verify(pkt::Packet& p, SecurityAssociation& sa) {
  const std::size_t iphl = ip_header_len(p);
  if (get_ip_proto(p) != static_cast<std::uint8_t>(pkt::IpProto::ah) ||
      p.size() < iphl + kAhHeaderSize) {
    ++counters_.malformed;
    return Verdict::drop;
  }
  std::uint8_t* ah = p.data() + iphl;
  if (load_be32(&ah[4]) != sa.spi) {
    ++counters_.malformed;
    return Verdict::drop;
  }
  const std::uint32_t seq = load_be32(&ah[8]);

  auto icv = compute_icv(p, sa.auth_key, iphl + 12);
  if (!mac_equal({&ah[12], kIcvSize}, {icv.data(), kIcvSize})) {
    ++counters_.auth_failures;
    return Verdict::drop;
  }
  if (!sa.replay_check_and_update(seq)) {
    ++counters_.replay_drops;
    return Verdict::drop;
  }

  const std::uint8_t next = ah[0];
  set_ip_proto(p, next);
  fix_lengths(p, -static_cast<std::ptrdiff_t>(kAhHeaderSize));
  std::memmove(p.data() + kAhHeaderSize, p.data(), iphl);
  p.pull(kAhHeaderSize);
  refresh_v4_checksum(p);
  return Verdict::cont;
}

Verdict IpsecInstance::esp_encrypt(pkt::Packet& p, SecurityAssociation& sa) {
  const std::size_t iphl = ip_header_len(p);
  const std::uint8_t orig_proto = get_ip_proto(p);

  // Insert the ESP header right after the IP header.
  p.prepend(kEspHeaderSize);
  std::memmove(p.data(), p.data() + kEspHeaderSize, iphl);
  std::uint8_t* esp = p.data() + iphl;
  const std::uint32_t seq = static_cast<std::uint32_t>(++sa.tx_seq);
  store_be32(&esp[0], sa.spi);
  store_be32(&esp[4], seq);

  // Append the trailer, then encrypt payload+trailer.
  std::uint8_t* trailer = p.append(kEspTrailerSize);
  trailer[0] = 0;  // pad length (stream cipher: no padding)
  trailer[1] = orig_proto;

  std::uint8_t nonce[ChaCha20::kNonceSize] = {};
  store_be32(&nonce[0], sa.spi);
  store_be32(&nonce[4], seq);
  ChaCha20 cipher(sa.enc_key, nonce);
  std::uint8_t* payload = p.data() + iphl + kEspHeaderSize;
  cipher.crypt(payload, p.size() - iphl - kEspHeaderSize);

  // ICV over ESP header + ciphertext.
  auto icv = HmacSha256::mac(
      sa.auth_key, {p.data() + iphl, p.size() - iphl});
  std::memcpy(p.append(kIcvSize), icv.data(), kIcvSize);

  set_ip_proto(p, static_cast<std::uint8_t>(pkt::IpProto::esp));
  fix_lengths(p, static_cast<std::ptrdiff_t>(kEspHeaderSize +
                                             kEspTrailerSize + kIcvSize));
  return Verdict::cont;
}

Verdict IpsecInstance::esp_decrypt(pkt::Packet& p, SecurityAssociation& sa) {
  const std::size_t iphl = ip_header_len(p);
  const std::size_t min_size =
      iphl + kEspHeaderSize + kEspTrailerSize + kIcvSize;
  if (get_ip_proto(p) != static_cast<std::uint8_t>(pkt::IpProto::esp) ||
      p.size() < min_size) {
    ++counters_.malformed;
    return Verdict::drop;
  }
  std::uint8_t* esp = p.data() + iphl;
  if (load_be32(&esp[0]) != sa.spi) {
    ++counters_.malformed;
    return Verdict::drop;
  }
  const std::uint32_t seq = load_be32(&esp[4]);

  auto icv = HmacSha256::mac(
      sa.auth_key, {p.data() + iphl, p.size() - iphl - kIcvSize});
  if (!mac_equal({p.data() + p.size() - kIcvSize, kIcvSize},
                 {icv.data(), kIcvSize})) {
    ++counters_.auth_failures;
    return Verdict::drop;
  }
  if (!sa.replay_check_and_update(seq)) {
    ++counters_.replay_drops;
    return Verdict::drop;
  }

  std::uint8_t nonce[ChaCha20::kNonceSize] = {};
  store_be32(&nonce[0], sa.spi);
  store_be32(&nonce[4], seq);
  ChaCha20 cipher(sa.enc_key, nonce);
  std::uint8_t* payload = p.data() + iphl + kEspHeaderSize;
  const std::size_t enc_len = p.size() - iphl - kEspHeaderSize - kIcvSize;
  cipher.crypt(payload, enc_len);

  const std::uint8_t pad_len = payload[enc_len - 2];
  const std::uint8_t next = payload[enc_len - 1];
  if (pad_len + kEspTrailerSize > enc_len) {
    ++counters_.malformed;
    return Verdict::drop;
  }

  p.trim(kIcvSize + kEspTrailerSize + pad_len);
  std::memmove(p.data() + kEspHeaderSize, p.data(), iphl);
  p.pull(kEspHeaderSize);
  set_ip_proto(p, next);
  fix_lengths(p, -static_cast<std::ptrdiff_t>(kEspHeaderSize +
                                              kEspTrailerSize + pad_len +
                                              kIcvSize));
  return Verdict::cont;
}

Status IpsecInstance::handle_message(const plugin::PluginMsg& msg,
                                     plugin::PluginReply& reply) {
  if (msg.custom_name == "stats") {
    reply.text = "processed=" + std::to_string(counters_.processed) +
                 " auth_failures=" + std::to_string(counters_.auth_failures) +
                 " replay_drops=" + std::to_string(counters_.replay_drops) +
                 " malformed=" + std::to_string(counters_.malformed);
    return Status::ok;
  }
  return Status::unsupported;
}

std::unique_ptr<plugin::PluginInstance> IpsecPlugin::make_instance(
    const plugin::Config& cfg) {
  auto mode_str = cfg.get_or("mode", "");
  IpsecMode mode;
  if (mode_str == "ah-add") mode = IpsecMode::ah_add;
  else if (mode_str == "ah-verify") mode = IpsecMode::ah_verify;
  else if (mode_str == "esp-encrypt") mode = IpsecMode::esp_encrypt;
  else if (mode_str == "esp-decrypt") mode = IpsecMode::esp_decrypt;
  else return nullptr;
  auto spi = cfg.get_int("spi");
  if (!spi || *spi <= 0) return nullptr;
  return std::make_unique<IpsecInstance>(*this, mode,
                                         static_cast<std::uint32_t>(*spi));
}

Status IpsecPlugin::handle_message(const plugin::PluginMsg& msg,
                                   plugin::PluginReply& reply) {
  if (msg.custom_name == "addsa") {
    auto spi = msg.args.get_int("spi");
    auto akey = msg.args.get("auth_key");
    if (!spi || *spi <= 0 || !akey) return Status::invalid_argument;
    auto auth = parse_hex_key(*akey);
    if (auth.empty()) return Status::invalid_argument;
    std::vector<std::uint8_t> enc;
    if (auto ekey = msg.args.get("enc_key")) {
      enc = parse_hex_key(*ekey);
      if (enc.empty()) return Status::invalid_argument;
    }
    sadb_.add(static_cast<std::uint32_t>(*spi), std::move(auth),
              std::move(enc));
    reply.text = "sa installed";
    return Status::ok;
  }
  return Status::unsupported;
}

void register_ipsec_plugins() {
  plugin::PluginLoader::register_module(
      "ipsec", [] { return std::make_unique<IpsecPlugin>(); });
}

}  // namespace rp::ipsec

// ChaCha20 stream cipher (RFC 8439), from scratch, used by the ESP plugin
// for payload confidentiality. Encryption and decryption are the same
// keystream XOR.
#pragma once

#include <array>
#include <cstdint>
#include <span>

namespace rp::ipsec {

class ChaCha20 {
 public:
  static constexpr std::size_t kKeySize = 32;
  static constexpr std::size_t kNonceSize = 12;

  ChaCha20(std::span<const std::uint8_t> key,
           std::span<const std::uint8_t> nonce, std::uint32_t counter = 1);

  // XORs the keystream into `data` in place.
  void crypt(std::uint8_t* data, std::size_t len);
  void crypt(std::span<std::uint8_t> data) { crypt(data.data(), data.size()); }

 private:
  void block(std::uint8_t out[64]);

  std::array<std::uint32_t, 16> state_;
  std::uint8_t keystream_[64];
  std::size_t ks_used_{64};  // force generation on first use
};

}  // namespace rp::ipsec

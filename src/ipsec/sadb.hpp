// Security Association Database for the AH/ESP plugins (RFC 1825 model):
// an SA, identified by SPI, carries the authentication and encryption keys
// plus transmit sequence and receive anti-replay state.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string_view>
#include <vector>

namespace rp::ipsec {

struct SecurityAssociation {
  std::uint32_t spi{0};
  std::vector<std::uint8_t> auth_key;  // HMAC-SHA-256 key
  std::vector<std::uint8_t> enc_key;   // ChaCha20 key (ESP only)

  // Transmit side.
  std::uint64_t tx_seq{0};

  // Receive side: 64-packet sliding anti-replay window.
  std::uint64_t rx_highest{0};
  std::uint64_t rx_window{0};

  // Returns true if `seq` is fresh (and records it); false on replay.
  bool replay_check_and_update(std::uint32_t seq) {
    if (seq == 0) return false;
    if (seq > rx_highest) {
      std::uint64_t shift = seq - rx_highest;
      rx_window = shift >= 64 ? 0 : rx_window << shift;
      rx_window |= 1;
      rx_highest = seq;
      return true;
    }
    std::uint64_t off = rx_highest - seq;
    if (off >= 64) return false;                  // too old
    if (rx_window & (1ULL << off)) return false;  // already seen
    rx_window |= 1ULL << off;
    return true;
  }
};

// Parses a hex key string ("0f1e2d...") into bytes; empty on bad input.
std::vector<std::uint8_t> parse_hex_key(std::string_view hex);

class SecurityAssociationDb {
 public:
  SecurityAssociation* add(std::uint32_t spi,
                           std::vector<std::uint8_t> auth_key,
                           std::vector<std::uint8_t> enc_key = {}) {
    auto& sa = sas_[spi];
    sa.spi = spi;
    sa.auth_key = std::move(auth_key);
    sa.enc_key = std::move(enc_key);
    return &sa;
  }

  SecurityAssociation* find(std::uint32_t spi) {
    auto it = sas_.find(spi);
    return it == sas_.end() ? nullptr : &it->second;
  }

  std::size_t size() const noexcept { return sas_.size(); }

 private:
  std::map<std::uint32_t, SecurityAssociation> sas_;
};

}  // namespace rp::ipsec

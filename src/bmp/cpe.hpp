// Controlled prefix expansion (Srinivasan & Varghese, SIGMETRICS '98): a
// fixed-stride multibit trie; prefixes are expanded to the next stride
// boundary. The paper cites CPE as the state-of-the-art BMP to pair with
// the DAG classifier ("our solution when used with a state-of-the-art best
// matching prefix algorithm (e.g., controlled prefix expansion) is more or
// less independent of the number of filters").
//
// Lookup cost: at most width/stride counted memory accesses (4 for IPv4,
// 16 for IPv6 at the default 8-bit stride).
#pragma once

#include <vector>

#include "bmp/lpm.hpp"

namespace rp::bmp {

class CpeTrie final : public LpmEngine {
 public:
  explicit CpeTrie(unsigned width, unsigned stride = 8);

  Status insert(U128 key, std::uint8_t plen, LpmValue value) override;
  Status remove(U128 key, std::uint8_t plen) override;
  bool lookup(U128 key, LpmMatch& out) const override;

  std::string_view name() const override { return "cpe"; }
  unsigned width() const override { return width_; }
  std::size_t size() const override { return raw_.size(); }

  unsigned stride() const noexcept { return stride_; }
  std::size_t node_count() const noexcept { return nodes_.size(); }

  // Number of full from-scratch rebuilds this trie has performed. remove()
  // is incremental (a prefix only ever wrote slots of its own target-level
  // node, so undoing it is local), so this stays 0 under normal churn; it
  // only moves on the defensive fallback path. Tests assert on it.
  std::size_t rebuild_count() const noexcept { return rebuilds_; }

 private:
  struct Slot {
    bool has{false};
    LpmMatch match{};        // match.plen is the *original* prefix length
    std::int32_t child{-1};
  };
  struct Node {
    std::vector<Slot> slots;  // 2^stride entries
  };

  std::int32_t alloc_node() {
    nodes_.push_back(Node{std::vector<Slot>(std::size_t{1} << stride_)});
    return static_cast<std::int32_t>(nodes_.size() - 1);
  }

  // Extracts the stride-sized chunk starting at bit offset `off`.
  std::size_t chunk(const U128& key, unsigned off) const noexcept {
    U128 shifted = key << off;
    return static_cast<std::size_t>((shifted >> (128 - stride_)).lo);
  }

  void insert_into_trie(U128 key, std::uint8_t plen, LpmValue value);
  void rebuild();

  unsigned width_;
  unsigned stride_;
  PrefixMap raw_;
  std::vector<Node> nodes_;
  std::size_t rebuilds_{0};
};

}  // namespace rp::bmp

// Path-compressed binary radix trie ("PATRICIA"), the paper's slower but
// freely available BMP plugin (Section 5.1.1), in the style of the BSD
// radix routing table.
//
// Nodes carry a compressed bit segment; prefixes terminate exactly at node
// boundaries (insertion splits segments as needed). Lookup walks at most
// O(prefix length) nodes, one counted memory access per node.
#pragma once

#include <vector>

#include "bmp/lpm.hpp"

namespace rp::bmp {

class PatriciaTrie final : public LpmEngine {
 public:
  explicit PatriciaTrie(unsigned width) : width_(width) {}

  Status insert(U128 key, std::uint8_t plen, LpmValue value) override;
  Status remove(U128 key, std::uint8_t plen) override;
  bool lookup(U128 key, LpmMatch& out) const override;

  std::string_view name() const override { return "patricia"; }
  unsigned width() const override { return width_; }
  std::size_t size() const override { return count_; }

  // Max node visits over all present prefixes (diagnostic for benches).
  std::size_t depth() const;

 private:
  struct Node {
    U128 seg{};            // left-aligned segment bits below the parent
    std::uint8_t seg_len{0};
    std::int32_t child[2]{-1, -1};
    bool has_value{false};
    LpmValue value{0};
  };

  static constexpr std::int32_t kNil = -1;

  std::int32_t alloc_node() {
    nodes_.push_back({});
    return static_cast<std::int32_t>(nodes_.size() - 1);
  }

  unsigned width_;
  std::vector<Node> nodes_;  // nodes_[0] is the root (created lazily)
  std::size_t count_{0};
};

}  // namespace rp::bmp

// Best-matching-prefix (BMP) engine interface.
//
// The paper treats BMP lookup itself as a plugin type: the DAG classifier's
// address levels call into whichever BMP plugin is configured (Section 5.1.1
// — "the matching function itself ... is implemented as a plugin"). All
// engines work on left-aligned 128-bit keys so one implementation serves
// IPv4 (width 32) and IPv6 (width 128).
//
// Engines call netbase::MemAccess::count() at every dependent memory access
// (node hop / hash probe) so benches can reproduce the paper's Table 2
// memory-access accounting.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>

#include "netbase/status.hpp"
#include "netbase/u128.hpp"

namespace rp::bmp {

using netbase::Status;
using netbase::U128;

// Value associated with a prefix (opaque to the engine; the classifier
// stores edge ids, the routing table stores next-hop ids).
using LpmValue = std::uint32_t;

struct LpmMatch {
  LpmValue value{0};
  std::uint8_t plen{0};
};

class LpmEngine {
 public:
  virtual ~LpmEngine() = default;

  // Key is left-aligned: bit 0 of the prefix is the MSB of `key`.
  virtual Status insert(U128 key, std::uint8_t plen, LpmValue value) = 0;
  virtual Status remove(U128 key, std::uint8_t plen) = 0;

  // Longest matching prefix for `key`; false if none matches.
  virtual bool lookup(U128 key, LpmMatch& out) const = 0;

  // Force any deferred (lazy) rebuild now, on the control path, so the
  // next lookup pays nothing. Engines with incremental mutation keep the
  // default no-op; engines that rebuild lazily on the first dirty lookup
  // (bsl) override it so batched control-plane updates never stall the
  // packet path.
  virtual void prepare() {}

  virtual std::string_view name() const = 0;
  virtual unsigned width() const = 0;
  virtual std::size_t size() const = 0;
};

// Engines registered by name: "patricia", "bsl" (binary search on prefix
// lengths), "cpe" (controlled prefix expansion). Returns nullptr for an
// unknown name. `width` is 32 or 128.
std::unique_ptr<LpmEngine> make_lpm_engine(std::string_view name,
                                           unsigned width);

// Shared raw prefix store used by engines that rebuild on remove.
using PrefixMap = std::map<std::pair<U128, std::uint8_t>, LpmValue>;

}  // namespace rp::bmp

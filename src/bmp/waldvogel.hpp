// Binary search on prefix lengths (Waldvogel, Varghese, Turner, Plattner —
// SIGCOMM '97): the paper's fast BMP plugin, a clean-room reimplementation
// from the published algorithm.
//
// One hash table per distinct prefix length; lookup binary-searches over the
// lengths. Markers are inserted on each prefix's binary-search path so the
// search knows when to probe longer lengths, and every marker precomputes
// its best-matching prefix so backtracking is never needed: at most
// ceil(log2(#lengths)) hash probes per lookup — 5 for IPv4, 7 for IPv6,
// exactly the Table 2 accounting (2 * log2(W) / 2 accesses per address).
//
// Mutations update a raw prefix set and mark the search structure dirty; it
// is rebuilt lazily on the next lookup (classifier/routing updates are
// control-path operations in the paper's architecture).
#pragma once

#include <unordered_map>
#include <vector>

#include "bmp/lpm.hpp"

namespace rp::bmp {

class WaldvogelBsl final : public LpmEngine {
 public:
  explicit WaldvogelBsl(unsigned width) : width_(width) {}

  Status insert(U128 key, std::uint8_t plen, LpmValue value) override;
  Status remove(U128 key, std::uint8_t plen) override;
  bool lookup(U128 key, LpmMatch& out) const override;

  std::string_view name() const override { return "bsl"; }
  unsigned width() const override { return width_; }
  std::size_t size() const override { return raw_.size(); }

  // Run the deferred rebuild eagerly (control path) instead of on the
  // first post-update lookup (packet path).
  void prepare() override {
    if (dirty_) rebuild();
  }

  // Worst-case hash probes for the current table (diagnostics/benches).
  unsigned max_probes() const;

 private:
  struct KeyHash {
    std::size_t operator()(const U128& k) const noexcept {
      std::uint64_t h = k.hi * 0x9e3779b97f4a7c15ULL;
      h ^= (k.lo + 0xc2b2ae3d27d4eb4fULL) + (h << 6) + (h >> 2);
      h ^= h >> 31;
      return static_cast<std::size_t>(h);
    }
  };

  struct Entry {
    bool is_prefix{false};
    LpmValue value{0};
    bool has_bmp{false};
    LpmMatch bmp{};
  };

  using LengthTable = std::unordered_map<U128, Entry, KeyHash>;

  void rebuild() const;

  unsigned width_;
  PrefixMap raw_;

  mutable bool dirty_{true};
  mutable std::vector<std::uint8_t> lengths_;   // sorted, ascending, no 0
  mutable std::vector<LengthTable> tables_;     // parallel to lengths_
  mutable bool has_default_{false};
  mutable LpmValue default_value_{0};
};

}  // namespace rp::bmp

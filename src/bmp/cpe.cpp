#include "bmp/cpe.hpp"

#include <algorithm>

#include "netbase/memaccess.hpp"

namespace rp::bmp {

CpeTrie::CpeTrie(unsigned width, unsigned stride)
    : width_(width), stride_(stride) {
  alloc_node();  // root
}

Status CpeTrie::insert(U128 key, std::uint8_t plen, LpmValue value) {
  if (plen > width_) return Status::invalid_argument;
  key = key & U128::prefix_mask(plen);
  raw_[{key, plen}] = value;
  insert_into_trie(key, plen, value);
  return Status::ok;
}

void CpeTrie::insert_into_trie(U128 key, std::uint8_t plen, LpmValue value) {
  // Expand to the next stride boundary; level 0 slots cover lengths
  // (0, stride], so plen == 0 expands across the whole root node.
  const unsigned target_level = plen == 0 ? 0 : (plen - 1) / stride_;

  std::int32_t cur = 0;
  for (unsigned lvl = 0; lvl < target_level; ++lvl) {
    // All bits of this chunk are within plen, so the path is unique.
    const std::size_t idx = chunk(key, lvl * stride_);
    std::int32_t child = nodes_[cur].slots[idx].child;
    if (child < 0) {
      child = alloc_node();
      nodes_[cur].slots[idx].child = child;
    }
    cur = child;
  }

  // Expand within the final node: the prefix covers all slots whose top
  // (plen - target_level*stride) bits equal the prefix's final chunk bits.
  const unsigned covered = plen - target_level * stride_;  // 0..stride
  const std::size_t base = chunk(key, target_level * stride_);
  const std::size_t span = std::size_t{1} << (stride_ - covered);
  const std::size_t first = base & ~(span - 1);
  for (std::size_t i = first; i < first + span; ++i) {
    Slot& s = nodes_[cur].slots[i];
    if (!s.has || s.match.plen <= plen) {
      s.has = true;
      s.match = {value, plen};
    }
  }
}

Status CpeTrie::remove(U128 key, std::uint8_t plen) {
  if (plen > width_) return Status::invalid_argument;
  key = key & U128::prefix_mask(plen);
  if (raw_.erase({key, plen}) == 0) return Status::not_found;

  // Incremental maintenance: a prefix of length plen only ever wrote slots
  // inside its own target-level node, so removal is a local edit — walk the
  // unique path, then restore each slot it owned to the best remaining
  // covering prefix from the same node, or clear it so lookup falls back to
  // the match recorded at a shallower level. O(span + stride) per remove.
  const unsigned target_level = plen == 0 ? 0 : (plen - 1) / stride_;
  std::int32_t cur = 0;
  for (unsigned lvl = 0; lvl < target_level; ++lvl) {
    cur = nodes_[cur].slots[chunk(key, lvl * stride_)].child;
    if (cur < 0) {  // path missing: trie out of sync with raw_, start over
      rebuild();
      return Status::ok;
    }
  }

  const unsigned covered = plen - target_level * stride_;
  const std::size_t base = chunk(key, target_level * stride_);
  const std::size_t span = std::size_t{1} << (stride_ - covered);
  const std::size_t first = base & ~(span - 1);

  // Best remaining ancestor expanded into this node. A same-node prefix
  // shorter than plen that covers one slot of our span covers all of them
  // (its aligned span strictly contains ours), so a single probe per
  // candidate length — at most stride_ of them — settles the whole span.
  bool have_anc = false;
  LpmMatch anc{};
  const unsigned level_lo = target_level * stride_;
  for (unsigned p = plen; p-- > level_lo + 1;) {
    auto it = raw_.find(
        {key & U128::prefix_mask(p), static_cast<std::uint8_t>(p)});
    if (it != raw_.end()) {
      anc = {it->second, static_cast<std::uint8_t>(p)};
      have_anc = true;
      break;
    }
  }
  if (!have_anc && target_level == 0 && plen != 0) {
    auto it = raw_.find({U128{}, 0});  // default route expands at the root
    if (it != raw_.end()) {
      anc = {it->second, 0};
      have_anc = true;
    }
  }

  for (std::size_t i = first; i < first + span; ++i) {
    Slot& s = nodes_[cur].slots[i];
    // Within the span, only the removed prefix can own a slot at exactly
    // this plen (a sibling of equal length covers a disjoint span); slots
    // held by longer prefixes are untouched. Child pointers stay — lookup
    // tolerates empty slots and interior nodes are shared with siblings.
    if (!s.has || s.match.plen != plen) continue;
    if (have_anc) {
      s.match = anc;
    } else {
      s.has = false;
      s.match = {};
    }
  }
  return Status::ok;
}

void CpeTrie::rebuild() {
  ++rebuilds_;
  nodes_.clear();
  alloc_node();
  // Reinsert shortest-first so the plen-overwrite rule reproduces the
  // longest-match expansion exactly.
  std::vector<std::pair<std::pair<U128, std::uint8_t>, LpmValue>> sorted(
      raw_.begin(), raw_.end());
  std::sort(sorted.begin(), sorted.end(), [](const auto& a, const auto& b) {
    return a.first.second < b.first.second;
  });
  for (const auto& [kp, v] : sorted) insert_into_trie(kp.first, kp.second, v);
}

bool CpeTrie::lookup(U128 key, LpmMatch& out) const {
  bool found = false;
  std::int32_t cur = 0;
  for (unsigned lvl = 0; lvl * stride_ < width_; ++lvl) {
    netbase::MemAccess::count();  // node slot fetch
    const Slot& s = nodes_[cur].slots[chunk(key, lvl * stride_)];
    if (s.has) {
      out = s.match;
      found = true;
    }
    if (s.child < 0) break;
    cur = s.child;
  }
  return found;
}

}  // namespace rp::bmp

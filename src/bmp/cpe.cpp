#include "bmp/cpe.hpp"

#include <algorithm>

#include "netbase/memaccess.hpp"

namespace rp::bmp {

CpeTrie::CpeTrie(unsigned width, unsigned stride)
    : width_(width), stride_(stride) {
  alloc_node();  // root
}

Status CpeTrie::insert(U128 key, std::uint8_t plen, LpmValue value) {
  if (plen > width_) return Status::invalid_argument;
  key = key & U128::prefix_mask(plen);
  raw_[{key, plen}] = value;
  insert_into_trie(key, plen, value);
  return Status::ok;
}

void CpeTrie::insert_into_trie(U128 key, std::uint8_t plen, LpmValue value) {
  // Expand to the next stride boundary; level 0 slots cover lengths
  // (0, stride], so plen == 0 expands across the whole root node.
  const unsigned target_level = plen == 0 ? 0 : (plen - 1) / stride_;

  std::int32_t cur = 0;
  for (unsigned lvl = 0; lvl < target_level; ++lvl) {
    // All bits of this chunk are within plen, so the path is unique.
    const std::size_t idx = chunk(key, lvl * stride_);
    std::int32_t child = nodes_[cur].slots[idx].child;
    if (child < 0) {
      child = alloc_node();
      nodes_[cur].slots[idx].child = child;
    }
    cur = child;
  }

  // Expand within the final node: the prefix covers all slots whose top
  // (plen - target_level*stride) bits equal the prefix's final chunk bits.
  const unsigned covered = plen - target_level * stride_;  // 0..stride
  const std::size_t base = chunk(key, target_level * stride_);
  const std::size_t span = std::size_t{1} << (stride_ - covered);
  const std::size_t first = base & ~(span - 1);
  for (std::size_t i = first; i < first + span; ++i) {
    Slot& s = nodes_[cur].slots[i];
    if (!s.has || s.match.plen <= plen) {
      s.has = true;
      s.match = {value, plen};
    }
  }
}

Status CpeTrie::remove(U128 key, std::uint8_t plen) {
  key = key & U128::prefix_mask(plen);
  if (raw_.erase({key, plen}) == 0) return Status::not_found;
  rebuild();
  return Status::ok;
}

void CpeTrie::rebuild() {
  nodes_.clear();
  alloc_node();
  // Reinsert shortest-first so the plen-overwrite rule reproduces the
  // longest-match expansion exactly.
  std::vector<std::pair<std::pair<U128, std::uint8_t>, LpmValue>> sorted(
      raw_.begin(), raw_.end());
  std::sort(sorted.begin(), sorted.end(), [](const auto& a, const auto& b) {
    return a.first.second < b.first.second;
  });
  for (const auto& [kp, v] : sorted) insert_into_trie(kp.first, kp.second, v);
}

bool CpeTrie::lookup(U128 key, LpmMatch& out) const {
  bool found = false;
  std::int32_t cur = 0;
  for (unsigned lvl = 0; lvl * stride_ < width_; ++lvl) {
    netbase::MemAccess::count();  // node slot fetch
    const Slot& s = nodes_[cur].slots[chunk(key, lvl * stride_)];
    if (s.has) {
      out = s.match;
      found = true;
    }
    if (s.child < 0) break;
    cur = s.child;
  }
  return found;
}

}  // namespace rp::bmp

#include "bmp/patricia.hpp"

#include <bit>

#include "netbase/memaccess.hpp"

namespace rp::bmp {

namespace {

unsigned leading_zeros(const U128& v) noexcept {
  if (v.hi) return static_cast<unsigned>(std::countl_zero(v.hi));
  if (v.lo) return 64 + static_cast<unsigned>(std::countl_zero(v.lo));
  return 128;
}

// Number of identical leading bits of two left-aligned bit strings, capped.
unsigned common_prefix_len(const U128& a, const U128& b, unsigned cap) noexcept {
  unsigned n = leading_zeros(a ^ b);
  return n < cap ? n : cap;
}

// The `len` bits of `v` starting at bit offset `off`, left-aligned.
U128 slice(const U128& v, unsigned off, unsigned len) noexcept {
  return (v << off) & U128::prefix_mask(len);
}

}  // namespace

Status PatriciaTrie::insert(U128 key, std::uint8_t plen, LpmValue value) {
  if (plen > width_) return Status::invalid_argument;
  key = key & U128::prefix_mask(plen);
  if (nodes_.empty()) alloc_node();  // root, empty segment

  std::int32_t cur = 0;
  unsigned depth = 0;
  while (true) {
    if (depth == plen) {
      if (!nodes_[cur].has_value) ++count_;
      nodes_[cur].has_value = true;
      nodes_[cur].value = value;
      return Status::ok;
    }
    const unsigned bit = key.bit(depth) ? 1 : 0;
    std::int32_t child = nodes_[cur].child[bit];
    if (child == kNil) {
      std::int32_t leaf = alloc_node();
      nodes_[leaf].seg = slice(key, depth, plen - depth);
      nodes_[leaf].seg_len = static_cast<std::uint8_t>(plen - depth);
      nodes_[leaf].has_value = true;
      nodes_[leaf].value = value;
      nodes_[cur].child[bit] = leaf;
      ++count_;
      return Status::ok;
    }

    Node& c = nodes_[child];
    const unsigned want = plen - depth;
    const unsigned common =
        common_prefix_len(slice(key, depth, want), c.seg,
                          want < c.seg_len ? want : c.seg_len);
    if (common == c.seg_len) {
      depth += c.seg_len;
      cur = child;
      continue;
    }

    // Split the child's segment at `common`.
    std::int32_t mid = alloc_node();
    // (alloc may have reallocated nodes_; re-fetch references by index)
    nodes_[mid].seg = slice(nodes_[child].seg, 0, common);
    nodes_[mid].seg_len = static_cast<std::uint8_t>(common);
    const unsigned old_bit = nodes_[child].seg.bit(common) ? 1 : 0;
    nodes_[mid].child[old_bit] = child;
    nodes_[child].seg = slice(nodes_[child].seg, common,
                              nodes_[child].seg_len - common);
    nodes_[child].seg_len =
        static_cast<std::uint8_t>(nodes_[child].seg_len - common);
    nodes_[cur].child[bit] = mid;

    if (depth + common == plen) {
      nodes_[mid].has_value = true;
      nodes_[mid].value = value;
    } else {
      std::int32_t leaf = alloc_node();
      const unsigned off = depth + common;
      nodes_[leaf].seg = slice(key, off, plen - off);
      nodes_[leaf].seg_len = static_cast<std::uint8_t>(plen - off);
      nodes_[leaf].has_value = true;
      nodes_[leaf].value = value;
      nodes_[mid].child[key.bit(off) ? 1 : 0] = leaf;
    }
    ++count_;
    return Status::ok;
  }
}

Status PatriciaTrie::remove(U128 key, std::uint8_t plen) {
  if (plen > width_ || nodes_.empty()) return Status::not_found;
  key = key & U128::prefix_mask(plen);
  std::int32_t cur = 0;
  unsigned depth = 0;
  while (true) {
    if (depth == plen) {
      if (!nodes_[cur].has_value) return Status::not_found;
      nodes_[cur].has_value = false;
      --count_;
      return Status::ok;
    }
    std::int32_t child = nodes_[cur].child[key.bit(depth) ? 1 : 0];
    if (child == kNil) return Status::not_found;
    const Node& c = nodes_[child];
    if (depth + c.seg_len > plen) return Status::not_found;
    if (slice(key, depth, c.seg_len) != c.seg) return Status::not_found;
    depth += c.seg_len;
    cur = child;
  }
}

bool PatriciaTrie::lookup(U128 key, LpmMatch& out) const {
  if (nodes_.empty()) return false;
  netbase::MemAccess::count();  // root access
  bool found = false;
  if (nodes_[0].has_value) {
    out = {nodes_[0].value, 0};
    found = true;
  }
  std::int32_t cur = 0;
  unsigned depth = 0;
  while (depth < width_) {
    std::int32_t child = nodes_[cur].child[key.bit(depth) ? 1 : 0];
    if (child == kNil) break;
    netbase::MemAccess::count();  // node fetch
    const Node& c = nodes_[child];
    if (depth + c.seg_len > width_) break;
    if (slice(key, depth, c.seg_len) != c.seg) break;
    depth += c.seg_len;
    cur = child;
    if (c.has_value) {
      out = {c.value, static_cast<std::uint8_t>(depth)};
      found = true;
    }
  }
  return found;
}

std::size_t PatriciaTrie::depth() const {
  // BFS computing max node depth.
  if (nodes_.empty()) return 0;
  std::vector<std::pair<std::int32_t, std::size_t>> stack{{0, 1}};
  std::size_t max_depth = 0;
  while (!stack.empty()) {
    auto [n, d] = stack.back();
    stack.pop_back();
    if (d > max_depth) max_depth = d;
    for (int b = 0; b < 2; ++b)
      if (nodes_[n].child[b] != kNil) stack.push_back({nodes_[n].child[b], d + 1});
  }
  return max_depth;
}

}  // namespace rp::bmp

#include "bmp/waldvogel.hpp"

#include <algorithm>

#include "bmp/patricia.hpp"
#include "netbase/memaccess.hpp"

namespace rp::bmp {

Status WaldvogelBsl::insert(U128 key, std::uint8_t plen, LpmValue value) {
  if (plen > width_) return Status::invalid_argument;
  key = key & U128::prefix_mask(plen);
  raw_[{key, plen}] = value;
  dirty_ = true;
  return Status::ok;
}

Status WaldvogelBsl::remove(U128 key, std::uint8_t plen) {
  key = key & U128::prefix_mask(plen);
  if (raw_.erase({key, plen}) == 0) return Status::not_found;
  dirty_ = true;
  return Status::ok;
}

void WaldvogelBsl::rebuild() const {
  lengths_.clear();
  tables_.clear();
  has_default_ = false;

  // Collect distinct lengths (0 handled separately as the default).
  for (const auto& [kp, v] : raw_) {
    if (kp.second == 0) {
      has_default_ = true;
      default_value_ = v;
      continue;
    }
    if (!std::binary_search(lengths_.begin(), lengths_.end(), kp.second)) {
      lengths_.insert(
          std::lower_bound(lengths_.begin(), lengths_.end(), kp.second),
          kp.second);
    }
  }
  tables_.resize(lengths_.size());

  auto level_of = [&](std::uint8_t len) {
    return static_cast<int>(std::lower_bound(lengths_.begin(), lengths_.end(),
                                             len) -
                            lengths_.begin());
  };

  // Insert real prefixes and the markers on their binary-search paths.
  for (const auto& [kp, v] : raw_) {
    const auto& [key, plen] = kp;
    if (plen == 0) continue;
    const int target = level_of(plen);
    int lo = 0, hi = static_cast<int>(lengths_.size()) - 1;
    while (lo <= hi) {
      const int mid = (lo + hi) / 2;
      if (mid == target) {
        Entry& e = tables_[mid][key];
        e.is_prefix = true;
        e.value = v;
        break;
      }
      if (mid < target) {
        // Search must branch toward longer lengths here: leave a marker.
        U128 mkey = key & U128::prefix_mask(lengths_[mid]);
        tables_[mid].try_emplace(mkey);  // keeps existing prefix entry intact
        lo = mid + 1;
      } else {
        hi = mid - 1;
      }
    }
  }

  // Precompute each entry's best matching prefix, processing levels in
  // ascending length order with an auxiliary trie of all shorter-or-equal
  // real prefixes.
  PatriciaTrie aux(width_);
  if (has_default_) aux.insert({}, 0, default_value_);
  for (std::size_t lvl = 0; lvl < lengths_.size(); ++lvl) {
    const std::uint8_t len = lengths_[lvl];
    for (const auto& [key, e] : tables_[lvl]) {
      if (e.is_prefix) aux.insert(key, len, e.value);
    }
    for (auto& [key, e] : tables_[lvl]) {
      LpmMatch m;
      if (aux.lookup(key, m)) {
        e.has_bmp = true;
        e.bmp = m;
      }
    }
  }
  // The aux trie's bookkeeping accesses are build-time only: they must not
  // pollute the data-path access counts.
  dirty_ = false;
}

bool WaldvogelBsl::lookup(U128 key, LpmMatch& out) const {
  if (dirty_) {
    auto saved = netbase::MemAccess::total();
    rebuild();
    // rebuild() used PatriciaTrie lookups which count accesses; restore.
    netbase::MemAccess::reset();
    netbase::MemAccess::count(saved);
  }

  bool found = false;
  if (has_default_) {
    out = {default_value_, 0};
    found = true;
  }
  int lo = 0, hi = static_cast<int>(lengths_.size()) - 1;
  while (lo <= hi) {
    const int mid = (lo + hi) / 2;
    const U128 probe = key & U128::prefix_mask(lengths_[mid]);
    netbase::MemAccess::count();  // one hash-table probe
    auto it = tables_[mid].find(probe);
    if (it != tables_[mid].end()) {
      if (it->second.has_bmp) {
        out = it->second.bmp;
        found = true;
      }
      lo = mid + 1;  // try longer prefixes
    } else {
      hi = mid - 1;  // only shorter can match
    }
  }
  return found;
}

unsigned WaldvogelBsl::max_probes() const {
  if (dirty_) rebuild();
  unsigned n = static_cast<unsigned>(lengths_.size());
  unsigned probes = 0;
  while (n) {
    ++probes;
    n >>= 1;
  }
  return probes;
}

}  // namespace rp::bmp

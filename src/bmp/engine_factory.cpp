#include "bmp/cpe.hpp"
#include "bmp/lpm.hpp"
#include "bmp/patricia.hpp"
#include "bmp/waldvogel.hpp"

namespace rp::bmp {

std::unique_ptr<LpmEngine> make_lpm_engine(std::string_view name,
                                           unsigned width) {
  if (name == "patricia") return std::make_unique<PatriciaTrie>(width);
  if (name == "bsl") return std::make_unique<WaldvogelBsl>(width);
  if (name == "cpe") return std::make_unique<CpeTrie>(width);
  return nullptr;
}

}  // namespace rp::bmp

// Routing table built on a pluggable BMP engine.
//
// In the paper's core, the route lookup is one of the per-packet costs the
// gates sit alongside; routing-as-classification (L4 switching) is the
// future-work item covered by route::RoutePlugin instead. This table is the
// classic destination-prefix lookup: prefix -> (output interface, gateway).
//
// Built for control-plane churn (docs/control_plane.md): a next-hop change
// for an existing prefix — the common case in a BGP update stream — rewrites
// the hop record in place without touching the BMP engine, withdrawn
// prefixes recycle their hop slots through a free list so the table stays
// flat under add/withdraw cycling, and apply_batch() applies a whole update
// burst followed by one prepare() so lazily-rebuilt engines never stall the
// packet path.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string_view>
#include <tuple>
#include <vector>

#include "bmp/lpm.hpp"
#include "netbase/ip.hpp"
#include "pkt/flow_key.hpp"

namespace rp::route {

struct NextHop {
  pkt::IfIndex out_iface{pkt::kAnyIface};
  netbase::IpAddr gateway{};  // unused when directly connected
  bool valid() const noexcept { return out_iface != pkt::kAnyIface; }
};

// One element of a control-plane route batch.
struct RouteOp {
  enum class Kind : std::uint8_t { add, withdraw };
  Kind kind{Kind::add};
  netbase::IpPrefix prefix{};
  NextHop hop{};  // ignored for withdraw
};

// Per-batch accounting returned by apply_batch().
struct RouteBatchResult {
  std::size_t added{0};      // new prefixes inserted into the engine
  std::size_t updated{0};    // in-place next-hop rewrites (engine untouched)
  std::size_t withdrawn{0};  // prefixes removed
  std::size_t failed{0};     // withdraw of an unknown prefix, bad plen, ...
};

class RoutingTable {
 public:
  // `engine` selects the BMP plugin: "patricia" | "bsl" | "cpe".
  explicit RoutingTable(std::string_view engine = "bsl");

  netbase::Status add(const netbase::IpPrefix& prefix, NextHop hop);
  netbase::Status remove(const netbase::IpPrefix& prefix);

  // Applies a batch of adds/withdraws, then prepare()s both engines so any
  // deferred rebuild runs here — on the control path — not on the next
  // packet's lookup.
  RouteBatchResult apply_batch(const RouteOp* ops, std::size_t n);
  RouteBatchResult apply_batch(const std::vector<RouteOp>& ops) {
    return apply_batch(ops.data(), ops.size());
  }

  // Force any deferred engine rebuild now (no-op for incremental engines).
  void prepare();

  // Longest-prefix-match route lookup.
  const NextHop* lookup(const netbase::IpAddr& dst) const;

  std::size_t size() const noexcept;

  // Diagnostics for churn tests/benches: total hop slots ever allocated and
  // how many are currently on the free list. Steady-state churn should keep
  // hop_slots() flat while free_hop_count() oscillates.
  std::size_t hop_slots() const noexcept { return hops_.size(); }
  std::size_t free_hop_count() const noexcept { return free_hops_.size(); }
  std::string_view engine_name() const { return v4_->name(); }

 private:
  // (version, masked key, plen) -> hop id. Tracks which hop slot a live
  // prefix owns so adds of an existing prefix become in-place updates and
  // withdraws can recycle the slot.
  using PrefixKey = std::tuple<std::uint8_t, netbase::U128, std::uint8_t>;

  static PrefixKey key_of(const netbase::IpPrefix& prefix) {
    return {static_cast<std::uint8_t>(prefix.addr.ver),
            prefix.addr.key() & netbase::U128::prefix_mask(prefix.len),
            prefix.len};
  }

  bmp::LpmEngine& engine_for(netbase::IpVersion v) const {
    return v == netbase::IpVersion::v4 ? *v4_ : *v6_;
  }

  std::uint32_t alloc_hop(NextHop hop);

  std::unique_ptr<bmp::LpmEngine> v4_;
  std::unique_ptr<bmp::LpmEngine> v6_;
  std::vector<NextHop> hops_;
  std::vector<std::uint32_t> free_hops_;
  std::map<PrefixKey, std::uint32_t> owner_;
};

}  // namespace rp::route

// Routing table built on a pluggable BMP engine.
//
// In the paper's core, the route lookup is one of the per-packet costs the
// gates sit alongside; routing-as-classification (L4 switching) is the
// future-work item covered by route::RoutePlugin instead. This table is the
// classic destination-prefix lookup: prefix -> (output interface, gateway).
#pragma once

#include <memory>
#include <string_view>
#include <vector>

#include "bmp/lpm.hpp"
#include "netbase/ip.hpp"
#include "pkt/flow_key.hpp"

namespace rp::route {

struct NextHop {
  pkt::IfIndex out_iface{pkt::kAnyIface};
  netbase::IpAddr gateway{};  // unused when directly connected
  bool valid() const noexcept { return out_iface != pkt::kAnyIface; }
};

class RoutingTable {
 public:
  // `engine` selects the BMP plugin: "patricia" | "bsl" | "cpe".
  explicit RoutingTable(std::string_view engine = "bsl");

  netbase::Status add(const netbase::IpPrefix& prefix, NextHop hop);
  netbase::Status remove(const netbase::IpPrefix& prefix);

  // Longest-prefix-match route lookup.
  const NextHop* lookup(const netbase::IpAddr& dst) const;

  std::size_t size() const noexcept;

 private:
  bmp::LpmEngine& engine_for(netbase::IpVersion v) const {
    return v == netbase::IpVersion::v4 ? *v4_ : *v6_;
  }

  std::unique_ptr<bmp::LpmEngine> v4_;
  std::unique_ptr<bmp::LpmEngine> v6_;
  std::vector<NextHop> hops_;
};

}  // namespace rp::route

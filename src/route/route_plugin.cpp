#include "route/route_plugin.hpp"

namespace rp::route {

// Explicit module registration: static-initializer tricks are unreliable in
// static libraries (the linker drops unreferenced objects), so each module
// publishes its plugins through a function the application calls — the
// equivalent of the modules being present on disk for modload.
void register_route_plugins() {
  plugin::PluginLoader::register_module(
      "l4route", [] { return std::make_unique<RoutePlugin>(); });
}

}  // namespace rp::route

// Routing plugin — the paper's future-work item (§8): "By unifying routing
// and packet classification, we get QoS-based routing / Level 4 switching
// for free."
//
// An instance represents a forwarding decision (output interface [+ next
// hop]); binding instances to six-tuple filters turns the AIU classifier
// into an L4 switch: flows matching a filter are forwarded by the bound
// instance regardless of the destination-only routing table.
#pragma once

#include <memory>

#include "plugin/loader.hpp"
#include "plugin/plugin.hpp"

namespace rp::route {

class RouteInstance final : public plugin::PluginInstance {
 public:
  explicit RouteInstance(pkt::IfIndex out_iface) : out_iface_(out_iface) {}

  plugin::Verdict handle_packet(pkt::Packet& p, void** /*flow_soft*/) override {
    p.out_iface = out_iface_;
    ++routed_;
    return plugin::Verdict::cont;
  }

  netbase::Status handle_message(const plugin::PluginMsg& msg,
                                 plugin::PluginReply& reply) override {
    if (msg.custom_name == "stats") {
      reply.text = "routed=" + std::to_string(routed_);
      return netbase::Status::ok;
    }
    return netbase::Status::unsupported;
  }

  pkt::IfIndex out_iface() const noexcept { return out_iface_; }

 private:
  pkt::IfIndex out_iface_;
  std::uint64_t routed_{0};
};

class RoutePlugin final : public plugin::Plugin {
 public:
  RoutePlugin() : Plugin("l4route", plugin::PluginType::routing) {}

 protected:
  std::unique_ptr<plugin::PluginInstance> make_instance(
      const plugin::Config& cfg) override {
    auto iface = cfg.get_int("iface");
    if (!iface || *iface < 0 || *iface >= pkt::kAnyIface) return nullptr;
    return std::make_unique<RouteInstance>(static_cast<pkt::IfIndex>(*iface));
  }
};

// Registers the module with the PluginLoader registry ("puts it on disk").
void register_route_plugins();

}  // namespace rp::route

#include "route/routing_table.hpp"

namespace rp::route {

using netbase::Status;

RoutingTable::RoutingTable(std::string_view engine)
    : v4_(bmp::make_lpm_engine(engine, 32)),
      v6_(bmp::make_lpm_engine(engine, 128)) {
  if (!v4_ || !v6_) {  // unknown engine name: fall back to the default
    v4_ = bmp::make_lpm_engine("bsl", 32);
    v6_ = bmp::make_lpm_engine("bsl", 128);
  }
}

std::uint32_t RoutingTable::alloc_hop(NextHop hop) {
  if (!free_hops_.empty()) {
    const std::uint32_t id = free_hops_.back();
    free_hops_.pop_back();
    hops_[id] = hop;
    return id;
  }
  hops_.push_back(hop);
  return static_cast<std::uint32_t>(hops_.size() - 1);
}

Status RoutingTable::add(const netbase::IpPrefix& prefix, NextHop hop) {
  const PrefixKey k = key_of(prefix);
  if (auto it = owner_.find(k); it != owner_.end()) {
    // Existing prefix: a next-hop change. Rewrite the hop record in place;
    // the engine still maps the prefix to the same hop id, so no trie or
    // hash structure is touched at all.
    hops_[it->second] = hop;
    return Status::ok;
  }
  const std::uint32_t id = alloc_hop(hop);
  const Status st =
      engine_for(prefix.addr.ver).insert(prefix.addr.key(), prefix.len, id);
  if (st != Status::ok) {
    free_hops_.push_back(id);
    return st;
  }
  owner_.emplace(k, id);
  return st;
}

Status RoutingTable::remove(const netbase::IpPrefix& prefix) {
  const Status st =
      engine_for(prefix.addr.ver).remove(prefix.addr.key(), prefix.len);
  if (st != Status::ok) return st;
  if (auto it = owner_.find(key_of(prefix)); it != owner_.end()) {
    free_hops_.push_back(it->second);
    owner_.erase(it);
  }
  return st;
}

RouteBatchResult RoutingTable::apply_batch(const RouteOp* ops, std::size_t n) {
  RouteBatchResult res;
  for (std::size_t i = 0; i < n; ++i) {
    const RouteOp& op = ops[i];
    if (op.kind == RouteOp::Kind::add) {
      const bool existed = owner_.contains(key_of(op.prefix));
      if (add(op.prefix, op.hop) != Status::ok)
        ++res.failed;
      else if (existed)
        ++res.updated;
      else
        ++res.added;
    } else {
      if (remove(op.prefix) != Status::ok)
        ++res.failed;
      else
        ++res.withdrawn;
    }
  }
  prepare();
  return res;
}

void RoutingTable::prepare() {
  v4_->prepare();
  v6_->prepare();
}

const NextHop* RoutingTable::lookup(const netbase::IpAddr& dst) const {
  bmp::LpmMatch m;
  if (!engine_for(dst.ver).lookup(dst.key(), m)) return nullptr;
  return &hops_[m.value];
}

std::size_t RoutingTable::size() const noexcept {
  return v4_->size() + v6_->size();
}

}  // namespace rp::route

#include "route/routing_table.hpp"

namespace rp::route {

using netbase::Status;

RoutingTable::RoutingTable(std::string_view engine)
    : v4_(bmp::make_lpm_engine(engine, 32)),
      v6_(bmp::make_lpm_engine(engine, 128)) {
  if (!v4_ || !v6_) {  // unknown engine name: fall back to the default
    v4_ = bmp::make_lpm_engine("bsl", 32);
    v6_ = bmp::make_lpm_engine("bsl", 128);
  }
}

Status RoutingTable::add(const netbase::IpPrefix& prefix, NextHop hop) {
  hops_.push_back(hop);
  auto value = static_cast<bmp::LpmValue>(hops_.size() - 1);
  return engine_for(prefix.addr.ver)
      .insert(prefix.addr.key(), prefix.len, value);
}

Status RoutingTable::remove(const netbase::IpPrefix& prefix) {
  return engine_for(prefix.addr.ver).remove(prefix.addr.key(), prefix.len);
}

const NextHop* RoutingTable::lookup(const netbase::IpAddr& dst) const {
  bmp::LpmMatch m;
  if (!engine_for(dst.ver).lookup(dst.key(), m)) return nullptr;
  return &hops_[m.value];
}

std::size_t RoutingTable::size() const noexcept {
  return v4_->size() + v6_->size();
}

}  // namespace rp::route

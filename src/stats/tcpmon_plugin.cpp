#include "stats/tcpmon_plugin.hpp"

#include "pkt/headers.hpp"

namespace rp::stats {

using netbase::Status;
using plugin::Verdict;

TcpMonInstance::~TcpMonInstance() {
  for (auto& f : flows_)
    if (f->soft_slot) *f->soft_slot = nullptr;
}

TcpMonInstance::FlowState* TcpMonInstance::state_for(const pkt::Packet& p,
                                                     void** flow_soft) {
  if (flow_soft && *flow_soft) return static_cast<FlowState*>(*flow_soft);
  auto owned = std::make_unique<FlowState>();
  owned->key = p.key;
  owned->soft_slot = flow_soft;
  FlowState* fs = owned.get();
  flows_.push_back(std::move(owned));
  if (flow_soft) *flow_soft = fs;
  return fs;
}

Verdict TcpMonInstance::handle_packet(pkt::Packet& p, void** flow_soft) {
  if (p.key.proto != static_cast<std::uint8_t>(pkt::IpProto::tcp))
    return Verdict::cont;
  pkt::TcpHeader tcp;
  if (p.l4_offset >= p.size() || !tcp.parse(p.bytes().subspan(p.l4_offset)))
    return Verdict::cont;

  FlowState* fs = state_for(p, flow_soft);
  ++fs->segments;
  ++segments_;

  const std::size_t seg_len = p.size() - p.l4_offset - tcp.header_len();
  const std::uint32_t seq_end =
      tcp.seq + static_cast<std::uint32_t>(seg_len);

  if (fs->seen && seg_len > 0 &&
      static_cast<std::int32_t>(tcp.seq - fs->highest_seq) < 0) {
    // Data at or below the highest byte already seen: a retransmission
    // (or, rarely, reordering — indistinguishable one hop away).
    ++fs->retransmits;
    ++retransmits_;

    // Backoff detection: consecutive at-least-doubling arrival gaps while
    // retransmitting mirror exponential RTO backoff.
    const netbase::SimTime gap = p.arrival - fs->last_arrival;
    if (fs->last_gap > 0 && gap >= 2 * fs->last_gap) {
      if (++fs->doubling_gaps >= 2) {
        ++fs->backoff_events;
        ++backoffs_;
        fs->doubling_gaps = 0;
      }
    } else {
      fs->doubling_gaps = 0;
    }
    fs->last_gap = gap;
  } else if (static_cast<std::int32_t>(seq_end - fs->highest_seq) > 0 ||
             !fs->seen) {
    fs->highest_seq = seq_end;
    fs->seen = true;
    fs->doubling_gaps = 0;
    fs->last_gap = fs->last_arrival > 0 ? p.arrival - fs->last_arrival : 0;
  }
  fs->last_arrival = p.arrival;
  return Verdict::cont;
}

void TcpMonInstance::flow_removed(void* flow_soft) {
  auto* fs = static_cast<FlowState*>(flow_soft);
  if (!fs) return;
  flows_.remove_if([fs](const auto& up) { return up.get() == fs; });
}

Status TcpMonInstance::handle_message(const plugin::PluginMsg& msg,
                                      plugin::PluginReply& reply) {
  if (msg.custom_name == "report") {
    reply.text = "segments=" + std::to_string(segments_) +
                 " retransmits=" + std::to_string(retransmits_) +
                 " backoff_events=" + std::to_string(backoffs_) + "\n";
    for (const auto& f : flows_) {
      if (f->retransmits == 0) continue;  // report congestion-limited flows
      reply.text += f->key.to_string() +
                    " segs=" + std::to_string(f->segments) +
                    " rexmt=" + std::to_string(f->retransmits) +
                    " backoffs=" + std::to_string(f->backoff_events) + "\n";
    }
    return Status::ok;
  }
  return Status::unsupported;
}

void register_tcpmon_plugin() {
  plugin::PluginLoader::register_module(
      "tcpmon", [] { return std::make_unique<TcpMonPlugin>(); });
}

}  // namespace rp::stats

#include "stats/stats_plugin.hpp"

#include "telemetry/telemetry.hpp"

namespace rp::stats {

using netbase::Status;
using plugin::Verdict;

StatsInstance::StatsInstance(Mode mode) : mode_(mode) {
  // Export the aggregate counters through the telemetry metric registry
  // (`pmgr> telemetry metrics`); the data path keeps incrementing the same
  // members it always did — registration is a control-path pointer hand-off.
  // The worked example for docs/plugin_authoring.md §8.
  static std::atomic<std::uint64_t> next_tag{0};
  const std::string prefix = "stats." + std::to_string(next_tag++) + ".";
  telemetry::metrics().add(prefix + "total_packets", &total_packets_, this);
  telemetry::metrics().add(prefix + "total_bytes", &total_bytes_, this);
}

StatsInstance::~StatsInstance() {
  telemetry::metrics().remove_owner(this);
  for (auto& f : flows_)
    if (f->soft_slot) *f->soft_slot = nullptr;
}

StatsInstance::FlowCounter* StatsInstance::counter_for(const pkt::Packet& p,
                                                       void** flow_soft) {
  if (flow_soft && *flow_soft) return static_cast<FlowCounter*>(*flow_soft);
  auto owned = std::make_unique<FlowCounter>();
  owned->key = p.key;
  owned->soft_slot = flow_soft;
  FlowCounter* fc = owned.get();
  flows_.push_back(std::move(owned));
  if (flow_soft) *flow_soft = fc;
  return fc;
}

void StatsInstance::count(FlowCounter& fc, const pkt::Packet& p) {
  ++fc.packets;
  if (mode_ == Mode::bytes || mode_ == Mode::sizes) fc.bytes += p.size();
  if (mode_ == Mode::sizes) {
    const std::size_t s = p.size();
    int b = s <= 64 ? 0 : s <= 256 ? 1 : s <= 1024 ? 2 : s <= 4096 ? 3 : 4;
    ++fc.size_hist[b];
  }
}

Verdict StatsInstance::handle_packet(pkt::Packet& p, void** flow_soft) {
  total_packets_.fetch_add(1, std::memory_order_relaxed);
  total_bytes_.fetch_add(p.size(), std::memory_order_relaxed);
  count(*counter_for(p, flow_soft), p);
  return Verdict::cont;
}

void StatsInstance::handle_burst(plugin::PacketRun& run) {
  // The aggregate counters are the shared (atomic) state: batch them into
  // one fetch_add each per run. The per-flow counter stays a pointer chase
  // through the soft slot, memoized for the back-to-back packets of a train.
  std::uint64_t bytes = 0;
  FlowCounter* fc = nullptr;
  void** memo_soft = nullptr;
  for (std::size_t i = 0; i < run.size(); ++i) {
    const pkt::Packet& p = run.packet(i);
    bytes += p.size();
    void** soft = run.soft(i);
    if (!fc || !soft || soft != memo_soft) {
      fc = counter_for(p, soft);
      memo_soft = soft;
    }
    count(*fc, p);
  }
  total_packets_.fetch_add(run.size(), std::memory_order_relaxed);
  total_bytes_.fetch_add(bytes, std::memory_order_relaxed);
}

bool StatsInstance::migrate_flow(plugin::PluginInstance* from,
                                 const pkt::FlowKey& key, void** flow_soft) {
  (void)key;
  auto* prev = dynamic_cast<StatsInstance*>(from);
  if (!prev || !flow_soft || !*flow_soft) return false;
  auto* fc = static_cast<FlowCounter*>(*flow_soft);
  for (auto it = prev->flows_.begin(); it != prev->flows_.end(); ++it) {
    if (it->get() != fc) continue;
    // Steal the counter wholesale: per-flow history survives the upgrade,
    // and the aggregate totals it contributed move with it.
    flows_.push_back(std::move(*it));
    prev->flows_.erase(it);
    total_packets_.fetch_add(fc->packets, std::memory_order_relaxed);
    total_bytes_.fetch_add(fc->bytes, std::memory_order_relaxed);
    prev->total_packets_.fetch_sub(fc->packets, std::memory_order_relaxed);
    prev->total_bytes_.fetch_sub(fc->bytes, std::memory_order_relaxed);
    return true;
  }
  return false;  // not a counter this plugin family owns
}

void StatsInstance::flow_removed(void* flow_soft) {
  auto* fc = static_cast<FlowCounter*>(flow_soft);
  if (!fc) return;
  // Keep counting totals; the per-flow record dies with the flow entry.
  flows_.remove_if([fc](const auto& up) { return up.get() == fc; });
}

Status StatsInstance::handle_message(const plugin::PluginMsg& msg,
                                     plugin::PluginReply& reply) {
  if (msg.custom_name == "report") {
    reply.text = "total_packets=" + std::to_string(total_packets_) +
                 " total_bytes=" + std::to_string(total_bytes_) +
                 " flows=" + std::to_string(flows_.size()) + "\n";
    for (const auto& f : flows_) {
      reply.text += f->key.to_string() + " pkts=" + std::to_string(f->packets) +
                    " bytes=" + std::to_string(f->bytes) + "\n";
    }
    return Status::ok;
  }
  if (msg.custom_name == "setmode") {
    auto m = msg.args.get_or("mode", "");
    if (m == "packets") mode_ = Mode::packets;
    else if (m == "bytes") mode_ = Mode::bytes;
    else if (m == "sizes") mode_ = Mode::sizes;
    else return Status::invalid_argument;
    return Status::ok;
  }
  if (msg.custom_name == "reset") {
    total_packets_ = total_bytes_ = 0;
    for (auto& f : flows_) {
      f->packets = f->bytes = 0;
      for (auto& h : f->size_hist) h = 0;
    }
    return Status::ok;
  }
  return Status::unsupported;
}

std::unique_ptr<plugin::PluginInstance> StatsPlugin::make_instance(
    const plugin::Config& cfg) {
  auto m = cfg.get_or("mode", "bytes");
  StatsInstance::Mode mode;
  if (m == "packets") mode = StatsInstance::Mode::packets;
  else if (m == "bytes") mode = StatsInstance::Mode::bytes;
  else if (m == "sizes") mode = StatsInstance::Mode::sizes;
  else return nullptr;
  return std::make_unique<StatsInstance>(mode);
}

void register_stats_plugins() {
  plugin::PluginLoader::register_module(
      "stats", [] { return std::make_unique<StatsPlugin>(); });
}

}  // namespace rp::stats

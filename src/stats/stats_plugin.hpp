// Statistics-gathering plugin — the paper's network-management use case:
// "monitor transit traffic ... gather and report various statistics ...
// change the kinds of statistics being collected without incurring
// significant overhead on the data path."
//
// Per-flow counters live in the flow table's soft-state slot (so the data
// path cost is one pointer chase and two increments); aggregate counters and
// a per-flow report are available via the `report` message. The counting
// mode can be changed at run time with `setmode` (packets|bytes|sizes),
// demonstrating run-time reconfiguration of monitoring.
#pragma once

#include <atomic>
#include <list>
#include <memory>
#include <string>

#include "plugin/loader.hpp"
#include "plugin/plugin.hpp"

namespace rp::stats {

class StatsInstance final : public plugin::PluginInstance {
 public:
  enum class Mode { packets, bytes, sizes };

  explicit StatsInstance(Mode mode);
  ~StatsInstance() override;

  plugin::Verdict handle_packet(pkt::Packet& p, void** flow_soft) override;
  // Batch-native entry point: one pair of atomic adds for the whole run
  // instead of two fetch_adds per packet (every packet continues, so the
  // prefilled verdicts stand untouched).
  void handle_burst(plugin::PacketRun& run) override;
  void flow_removed(void* flow_soft) override;
  // Versioned-upgrade handoff: adopts the per-flow counter a previous
  // StatsInstance owns, so an upgrade loses neither per-flow history nor
  // the aggregate totals derived from it (docs/plugin_authoring.md §13).
  bool migrate_flow(plugin::PluginInstance* from, const pkt::FlowKey& key,
                    void** flow_soft) override;
  netbase::Status handle_message(const plugin::PluginMsg& msg,
                                 plugin::PluginReply& reply) override;

  struct FlowCounter {
    pkt::FlowKey key{};
    std::uint64_t packets{0};
    std::uint64_t bytes{0};
    // size histogram buckets: <=64, <=256, <=1024, <=4096, larger
    std::uint64_t size_hist[5]{};
    void** soft_slot{nullptr};
  };

  std::uint64_t total_packets() const noexcept { return total_packets_; }
  std::uint64_t total_bytes() const noexcept { return total_bytes_; }
  std::size_t tracked_flows() const noexcept { return flows_.size(); }

 private:
  FlowCounter* counter_for(const pkt::Packet& p, void** flow_soft);
  void count(FlowCounter& fc, const pkt::Packet& p);

  Mode mode_;
  std::list<std::unique_ptr<FlowCounter>> flows_;
  // Atomic (relaxed): registered with telemetry::metrics(), whose report()
  // may run on the control thread while this instance counts on a worker.
  std::atomic<std::uint64_t> total_packets_{0};
  std::atomic<std::uint64_t> total_bytes_{0};
};

class StatsPlugin final : public plugin::Plugin {
 public:
  StatsPlugin() : Plugin("stats", plugin::PluginType::stats) {}

 protected:
  std::unique_ptr<plugin::PluginInstance> make_instance(
      const plugin::Config& cfg) override;
};

void register_stats_plugins();

}  // namespace rp::stats

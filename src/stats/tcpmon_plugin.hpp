// TCP congestion-backoff monitoring plugin — one of the envisioned plugin
// types in Section 4 ("a plugin monitoring TCP congestion backoff
// behaviour"). A transit router cannot see the sender's congestion window,
// but it can observe its footprint: retransmissions (sequence numbers at or
// below the highest seen) and idle gaps consistent with RTO backoff.
//
// Per-flow soft state tracks the highest sequence seen, retransmit and
// reordering counts, and a crude backoff detector (an arrival gap that at
// least doubles twice in a row while retransmitting). The `report` message
// lists flows that look congestion-limited — the kind of signal a
// network-management application would export.
#pragma once

#include <list>
#include <memory>

#include "netbase/clock.hpp"
#include "plugin/loader.hpp"
#include "plugin/plugin.hpp"

namespace rp::stats {

class TcpMonInstance final : public plugin::PluginInstance {
 public:
  struct FlowState {
    pkt::FlowKey key{};
    bool seen{false};
    std::uint32_t highest_seq{0};   // highest sequence + segment length
    netbase::SimTime last_arrival{0};
    netbase::SimTime last_gap{0};
    int doubling_gaps{0};           // consecutive gap >= 2 * previous gap

    std::uint64_t segments{0};
    std::uint64_t retransmits{0};
    std::uint64_t backoff_events{0};
    void** soft_slot{nullptr};
  };

  ~TcpMonInstance() override;

  plugin::Verdict handle_packet(pkt::Packet& p, void** flow_soft) override;
  void flow_removed(void* flow_soft) override;
  netbase::Status handle_message(const plugin::PluginMsg& msg,
                                 plugin::PluginReply& reply) override;

  std::uint64_t total_retransmits() const noexcept { return retransmits_; }
  std::uint64_t total_backoff_events() const noexcept { return backoffs_; }
  std::size_t tracked_flows() const noexcept { return flows_.size(); }

 private:
  FlowState* state_for(const pkt::Packet& p, void** flow_soft);

  std::list<std::unique_ptr<FlowState>> flows_;
  std::uint64_t segments_{0};
  std::uint64_t retransmits_{0};
  std::uint64_t backoffs_{0};
};

class TcpMonPlugin final : public plugin::Plugin {
 public:
  TcpMonPlugin() : Plugin("tcpmon", plugin::PluginType::stats) {}

 protected:
  std::unique_ptr<plugin::PluginInstance> make_instance(
      const plugin::Config&) override {
    return std::make_unique<TcpMonInstance>();
  }
};

void register_tcpmon_plugin();

}  // namespace rp::stats

#include "aiu/filter_table.hpp"

#include <algorithm>
#include <unordered_set>

#include "netbase/memaccess.hpp"

namespace rp::aiu {

using netbase::IpVersion;
using netbase::MemAccess;

DagFilterTable::DagFilterTable() = default;
DagFilterTable::DagFilterTable(Options opt) : opt_(std::move(opt)) {}
DagFilterTable::~DagFilterTable() = default;

FilterRecord* DagFilterTable::insert(const Filter& f,
                                     plugin::PluginInstance* inst) {
  for (auto& r : records_) {
    if (r->filter == f) {  // rebind an existing filter
      r->instance = inst;
      return r.get();
    }
  }
  auto rec = std::make_unique<FilterRecord>();
  rec->filter = f;
  rec->instance = inst;
  rec->id = next_id_++;
  FilterRecord* out = rec.get();
  records_.push_back(std::move(rec));
  dirty_ = true;
  return out;
}

Status DagFilterTable::remove(const Filter& f) {
  for (auto it = records_.begin(); it != records_.end(); ++it) {
    if ((*it)->filter == f) {
      graveyard_.push_back(std::move(*it));
      records_.erase(it);
      dirty_ = true;
      return Status::ok;
    }
  }
  return Status::not_found;
}

std::size_t DagFilterTable::purge_instance(const plugin::PluginInstance* inst) {
  std::size_t before = records_.size();
  for (auto& r : records_)
    if (r->instance == inst) graveyard_.push_back(std::move(r));
  std::erase_if(records_, [](auto& r) { return !r; });
  if (records_.size() != before) dirty_ = true;
  return before - records_.size();
}

std::size_t DagFilterTable::rebind_instance(plugin::PluginInstance* from,
                                            plugin::PluginInstance* to) {
  std::size_t n = 0;
  for (auto& r : records_) {
    if (r->instance == from) {
      r->instance = to;
      ++n;
    }
  }
  // No dirty_: the DAG's leaves point at the records, whose filters are
  // unchanged — only the binding moved.
  return n;
}

std::vector<const FilterRecord*> DagFilterTable::records() const {
  std::vector<const FilterRecord*> out;
  out.reserve(records_.size());
  for (auto& r : records_) out.push_back(r.get());
  return out;
}

void DagFilterTable::rebuild() const {
  nodes_.clear();
  memo_.clear();
  graveyard_.clear();
  ++rebuilds_;
  dirty_ = false;
  if (records_.empty()) {
    root_ = -1;
    return;
  }
  std::vector<const FilterRecord*> all;
  all.reserve(records_.size());
  for (auto& r : records_) all.push_back(r.get());
  root_ = build(kSrc, all);
  // memo_ stays resident: patch() reuses it to share subgraphs across
  // incremental updates.
}

void DagFilterTable::patch() const {
  if (!dirty_) return;
  dirty_ = false;
  ++patches_;
  if (records_.empty()) {
    root_ = -1;
  } else {
    std::vector<const FilterRecord*> all;
    all.reserve(records_.size());
    for (auto& r : records_) all.push_back(r.get());
    root_ = build(kSrc, all);
  }
  // Compact once garbage dominates the arena (the slack keeps small tables
  // from ever bothering). Mark-and-copy, not rebuild: a rebuild would clear
  // the memo and make the next patch pay a from-scratch build, turning
  // steady churn into a rebuild-every-batch cycle.
  const std::size_t live = reachable_node_count();
  if (nodes_.size() > 2 * live + 64) compact();
}

void DagFilterTable::compact() const {
  if (root_ < 0) {
    nodes_.clear();
    memo_.clear();
    graveyard_.clear();
    return;
  }
  // Mark: discovery order becomes the new arena order.
  std::vector<std::int32_t> remap(nodes_.size(), -1);
  std::vector<std::int32_t> order;
  std::vector<std::int32_t> stack;
  auto mark = [&](std::int32_t t) {
    if (t >= 0 && remap[static_cast<std::size_t>(t)] < 0) {
      remap[static_cast<std::size_t>(t)] =
          static_cast<std::int32_t>(order.size());
      order.push_back(t);
      stack.push_back(t);
    }
  };
  mark(root_);
  while (!stack.empty()) {
    const Node& n = nodes_[static_cast<std::size_t>(stack.back())];
    stack.pop_back();
    for (std::int32_t t : n.addr_targets) mark(t);
    for (const auto& [v, t] : n.exact) mark(t);
    for (const auto& [v, t] : n.port_exact) mark(t);
    for (const auto& [s, t] : n.ranges) mark(t);
    mark(n.wild);
  }
  // Copy live nodes, rewriting every edge through the remap.
  std::vector<Node> live;
  live.reserve(order.size());
  auto fix = [&](std::int32_t& t) {
    if (t >= 0) t = remap[static_cast<std::size_t>(t)];
  };
  for (std::int32_t old : order) {
    Node n = std::move(nodes_[static_cast<std::size_t>(old)]);
    for (auto& t : n.addr_targets) fix(t);
    for (auto& [v, t] : n.exact) fix(t);
    for (auto& [v, t] : n.port_exact) fix(t);
    for (auto& [s, t] : n.ranges) fix(t);
    fix(n.wild);
    live.push_back(std::move(n));
  }
  nodes_ = std::move(live);
  root_ = remap[static_cast<std::size_t>(root_)];
  // Memo entries follow their node; entries for swept nodes — and entries
  // whose key names a removed record id, which can never be queried again —
  // are dropped so the memo stays proportional to the live graph.
  std::unordered_set<std::uint32_t> live_ids;
  live_ids.reserve(records_.size());
  for (const auto& r : records_) live_ids.insert(r->id);
  for (auto it = memo_.begin(); it != memo_.end();) {
    const std::int32_t t = remap[static_cast<std::size_t>(it->second)];
    bool keep = t >= 0;
    if (keep)
      for (std::uint32_t id : it->first.second)
        if (!live_ids.contains(id)) {
          keep = false;
          break;
        }
    if (!keep) {
      it = memo_.erase(it);
    } else {
      it->second = t;
      ++it;
    }
  }
  // Nothing reachable references a tombstoned record any more.
  graveyard_.clear();
}

std::size_t DagFilterTable::reachable_node_count() const {
  if (root_ < 0) return 0;
  std::vector<char> seen(nodes_.size(), 0);
  std::vector<std::int32_t> stack;
  auto push = [&](std::int32_t t) {
    if (t >= 0 && !seen[static_cast<std::size_t>(t)]) {
      seen[static_cast<std::size_t>(t)] = 1;
      stack.push_back(t);
    }
  };
  push(root_);
  std::size_t count = 0;
  while (!stack.empty()) {
    const Node& n = nodes_[static_cast<std::size_t>(stack.back())];
    stack.pop_back();
    ++count;
    for (std::int32_t t : n.addr_targets) push(t);
    for (const auto& [v, t] : n.exact) push(t);
    for (const auto& [v, t] : n.port_exact) push(t);
    for (const auto& [s, t] : n.ranges) push(t);
    push(n.wild);
  }
  return count;
}

std::int32_t DagFilterTable::build(
    int level, const std::vector<const FilterRecord*>& cand) const {
  // DAG node sharing: identical (level, candidate-set) pairs map to one
  // node — including leaves, which otherwise replicate heavily.
  std::vector<std::uint32_t> sig;
  sig.reserve(cand.size());
  for (const FilterRecord* r : cand) sig.push_back(r->id);
  std::sort(sig.begin(), sig.end());
  auto memo_key = std::make_pair(level, std::move(sig));
  if (auto it = memo_.find(memo_key); it != memo_.end()) return it->second;

  if (level == kLeaf) {
    // Every candidate here matches any key that reached this leaf; the
    // best (most specific; ties broken by installation order) wins.
    const FilterRecord* best = cand.front();
    for (const FilterRecord* r : cand) {
      int c = compare_specificity(r->filter, best->filter);
      if (c > 0 || (c == 0 && r->id < best->id)) best = r;
    }
    nodes_.push_back({});
    Node& n = nodes_.back();
    n.level = kLeaf;
    n.leaf = best;
    const auto idx = static_cast<std::int32_t>(nodes_.size() - 1);
    memo_[memo_key] = idx;
    return idx;
  }

  // §5.1.2 node collapsing: if no candidate constrains this field, the test
  // is a no-op — point the parent directly at the next level.
  if (opt_.collapse) {
    bool all_wild = true;
    for (const FilterRecord* r : cand) {
      const Filter& f = r->filter;
      bool wild = (level == kSrc && f.src.len == 0) ||
                  (level == kDst && f.dst.len == 0) ||
                  (level == kProto && f.proto.wild) ||
                  (level == kSport && f.sport.is_wild()) ||
                  (level == kDport && f.dport.is_wild()) ||
                  (level == kIface && f.in_iface.wild);
      if (!wild) {
        all_wild = false;
        break;
      }
    }
    if (all_wild) {
      std::int32_t skipped = build(level + 1, cand);
      memo_[memo_key] = skipped;
      return skipped;
    }
  }

  const std::int32_t me = static_cast<std::int32_t>(nodes_.size());
  nodes_.push_back({});
  nodes_[me].level = static_cast<std::uint8_t>(level);
  memo_[memo_key] = me;

  auto covered = [&](auto pred) {
    std::vector<const FilterRecord*> out;
    for (const FilterRecord* r : cand)
      if (pred(r->filter)) out.push_back(r);
    return out;
  };

  if (level == kSrc || level == kDst) {
    auto field = [&](const Filter& f) -> const netbase::IpPrefix& {
      return level == kSrc ? f.src : f.dst;
    };
    // Group candidates by exact prefix so each edge's child set is found
    // with one hash probe per present length instead of a full scan (keeps
    // the build near O(edges * lengths) even for 50k-filter tables).
    struct PrefixKey {
      netbase::IpVersion ver;
      netbase::U128 bits;
      std::uint8_t len;
      bool operator<(const PrefixKey& o) const {
        if (ver != o.ver) return ver < o.ver;
        if (len != o.len) return len < o.len;
        return bits < o.bits;
      }
    };
    std::map<PrefixKey, std::vector<const FilterRecord*>> by_prefix;
    // len-0 filters (either family) are hoisted onto the node's wild edge
    // instead of being replicated into every subtree: lookup descends both
    // and keeps the more specific result. This is what keeps churn of a
    // wildcard filter from invalidating every memoized subgraph.
    std::vector<const FilterRecord*> wild;
    std::vector<netbase::IpPrefix> specs;
    for (const FilterRecord* r : cand) {
      netbase::IpPrefix p = field(r->filter);
      if (p.len == 0) {
        wild.push_back(r);
        continue;
      }
      PrefixKey pk{p.addr.ver, p.addr.key(), p.len};
      auto [it, inserted] = by_prefix.try_emplace(pk);
      if (inserted) specs.push_back(p);
      it->second.push_back(r);
    }
    // Distinct lengths present, per family.
    std::vector<std::uint8_t> lengths4, lengths6;
    for (const auto& [pk, v] : by_prefix) {
      auto& lens = pk.ver == IpVersion::v4 ? lengths4 : lengths6;
      if (lens.empty() || lens.back() != pk.len) lens.push_back(pk.len);
    }
    std::sort(lengths4.begin(), lengths4.end());
    lengths4.erase(std::unique(lengths4.begin(), lengths4.end()),
                   lengths4.end());
    std::sort(lengths6.begin(), lengths6.end());
    lengths6.erase(std::unique(lengths6.begin(), lengths6.end()),
                   lengths6.end());

    for (const auto& p : specs) {
      // Set-pruning replication: the subtree under edge `p` holds every
      // filter whose prefix covers p (matches at least everything p does) —
      // wildcards excepted, they live on the wild edge.
      std::vector<const FilterRecord*> child_set;
      const auto& lens = p.addr.ver == IpVersion::v4 ? lengths4 : lengths6;
      for (std::uint8_t l : lens) {
        if (l > p.len) break;
        PrefixKey pk{p.addr.ver,
                     p.addr.key() & netbase::U128::prefix_mask(l), l};
        if (auto it = by_prefix.find(pk); it != by_prefix.end())
          child_set.insert(child_set.end(), it->second.begin(),
                           it->second.end());
      }
      std::int32_t child = build(level + 1, child_set);
      Node& n = nodes_[me];
      auto edge = static_cast<bmp::LpmValue>(n.addr_targets.size());
      n.addr_targets.push_back(child);
      auto& lpm = p.addr.ver == IpVersion::v4 ? n.lpm4 : n.lpm6;
      if (!lpm)
        lpm = bmp::make_lpm_engine(opt_.bmp_engine,
                                   p.addr.ver == IpVersion::v4 ? 32 : 128);
      lpm->insert(p.addr.key(), p.len, edge);
    }
    if (!wild.empty()) {
      const std::int32_t w = build(level + 1, wild);
      nodes_[me].wild = w;
    }
    return me;
  }

  if (level == kProto || level == kIface) {
    auto wildp = [&](const Filter& f) {
      return level == kProto ? f.proto.wild : f.in_iface.wild;
    };
    auto value = [&](const Filter& f) -> std::uint32_t {
      return level == kProto ? f.proto.value : f.in_iface.value;
    };
    std::vector<std::uint32_t> vals;
    bool any_wild = false;
    for (const FilterRecord* r : cand) {
      if (wildp(r->filter)) {
        any_wild = true;
      } else if (std::find(vals.begin(), vals.end(), value(r->filter)) ==
                 vals.end()) {
        vals.push_back(value(r->filter));
      }
    }
    for (std::uint32_t v : vals) {
      // Wild filters are on the wild edge, not replicated under each value.
      auto child_set = covered(
          [&](const Filter& f) { return !wildp(f) && value(f) == v; });
      std::int32_t child = build(level + 1, child_set);
      nodes_[me].exact[v] = child;
    }
    if (any_wild) {
      auto child_set = covered([&](const Filter& f) { return wildp(f); });
      nodes_[me].wild = build(level + 1, child_set);
    }
    return me;
  }

  // Port levels: close the distinct specs under pairwise intersection so
  // that for any key the most specific matching edge is unique (this is the
  // filter-ambiguity resolution of §5.1.2 applied to ranges).
  auto field = [&](const Filter& f) -> const PortSpec& {
    return level == kSport ? f.sport : f.dport;
  };
  std::vector<PortSpec> specs;
  for (const FilterRecord* r : cand) {
    const auto& p = field(r->filter);
    if (p.is_wild()) continue;  // hoisted onto the wild edge below
    if (std::find(specs.begin(), specs.end(), p) == specs.end())
      specs.push_back(p);
  }
  // (j restarts from 0 so intersections involving appended specs are also
  // closed — the loop reaches a fixpoint because each addition is narrower.)
  for (std::size_t i = 0; i < specs.size(); ++i) {
    for (std::size_t j = 0; j < i; ++j) {
      if (specs[i].overlaps(specs[j])) {
        PortSpec x = specs[i].intersect(specs[j]);
        if (std::find(specs.begin(), specs.end(), x) == specs.end())
          specs.push_back(x);
      }
    }
  }
  // Narrowest-first: lookup scans in this order and stops at the first hit.
  std::sort(specs.begin(), specs.end(), [](const PortSpec& a, const PortSpec& b) {
    if (a.width() != b.width()) return a.width() < b.width();
    return a.lo < b.lo;
  });
  for (const auto& s : specs) {
    auto child_set = covered([&](const Filter& f) {
      return !field(f).is_wild() && field(f).covers(s);
    });
    std::int32_t child = build(level + 1, child_set);
    Node& n = nodes_[me];
    if (s.is_exact())
      n.port_exact[s.lo] = child;
    else
      n.ranges.emplace_back(s, child);
  }
  auto wild_set = covered([&](const Filter& f) { return field(f).is_wild(); });
  if (!wild_set.empty()) {
    const std::int32_t w = build(level + 1, wild_set);
    nodes_[me].wild = w;
  }
  return me;
}

std::int32_t DagFilterTable::walk(const Node& n, const pkt::FlowKey& key) const {
  MemAccess::count();  // fetch of this node's edge structure
  switch (n.level) {
    case kSrc:
    case kDst: {
      const netbase::IpAddr& a = n.level == kSrc ? key.src : key.dst;
      const auto& lpm = a.ver == IpVersion::v4 ? n.lpm4 : n.lpm6;
      if (!lpm) return -1;
      bmp::LpmMatch m;
      if (!lpm->lookup(a.key(), m)) return -1;  // engine counts its probes
      return n.addr_targets[m.value];
    }
    case kProto:
    case kIface: {
      const std::uint32_t v =
          n.level == kProto ? key.proto : std::uint32_t{key.in_iface};
      if (!n.exact.empty()) {
        MemAccess::count();  // exact hash probe
        auto it = n.exact.find(v);
        if (it != n.exact.end()) return it->second;
      }
      return -1;  // the wild edge is descended separately by match_from
    }
    case kSport:
    case kDport: {
      const std::uint16_t v = n.level == kSport ? key.sport : key.dport;
      if (!n.port_exact.empty()) {
        MemAccess::count();  // exact hash probe
        auto it = n.port_exact.find(v);
        if (it != n.port_exact.end()) return it->second;
      }
      for (const auto& [spec, target] : n.ranges) {
        MemAccess::count();  // range entry inspection
        if (spec.matches(v)) return target;
      }
      return -1;
    }
    default:
      return -1;
  }
}

namespace {

// The same total order the leaves use: most specific wins, ties broken by
// installation order. Merging two sub-DAG results with it is therefore
// identical to picking the best over the union of their candidate sets.
const FilterRecord* more_specific(const FilterRecord* a,
                                  const FilterRecord* b) noexcept {
  if (!a) return b;
  if (!b) return a;
  const int c = compare_specificity(a->filter, b->filter);
  if (c != 0) return c > 0 ? a : b;
  return a->id < b->id ? a : b;
}

}  // namespace

const FilterRecord* DagFilterTable::match_from(std::int32_t idx,
                                               const pkt::FlowKey& key) const {
  const FilterRecord* best = nullptr;
  while (idx >= 0) {
    const Node& n = nodes_[static_cast<std::size_t>(idx)];
    if (n.level == kLeaf) return more_specific(best, n.leaf);
    // Two-way descent: the field-specific edge and the wild edge are
    // disjoint candidate sets; keep the better of both leaves.
    if (n.wild >= 0) best = more_specific(best, match_from(n.wild, key));
    idx = walk(n, key);
  }
  return best;
}

const FilterRecord* DagFilterTable::lookup(const pkt::FlowKey& key) const {
  if (dirty_) rebuild();
  return match_from(root_, key);
}

std::string DagFilterTable::dump_dot() const {
  if (dirty_) rebuild();
  static constexpr const char* kLevelNames[] = {"src",   "dst",   "proto",
                                                "sport", "dport", "iface",
                                                "leaf"};
  std::string out = "digraph filter_dag {\n  rankdir=TB;\n";
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const Node& n = nodes_[i];
    if (n.level == kLeaf) {
      out += "  n" + std::to_string(i) + " [shape=box,label=\"" +
             (n.leaf ? n.leaf->filter.to_string() : "-") + "\"];\n";
      continue;
    }
    out += "  n" + std::to_string(i) + " [label=\"" +
           kLevelNames[n.level] + "\"];\n";
    auto edge = [&](std::int32_t target, const std::string& label) {
      if (target < 0) return;
      out += "  n" + std::to_string(i) + " -> n" + std::to_string(target) +
             " [label=\"" + label + "\"];\n";
    };
    for (std::size_t e = 0; e < n.addr_targets.size(); ++e)
      edge(n.addr_targets[e], "p" + std::to_string(e));
    for (const auto& [v, t] : n.exact) edge(t, std::to_string(v));
    for (const auto& [v, t] : n.port_exact) edge(t, std::to_string(v));
    for (const auto& [spec, t] : n.ranges) edge(t, spec.to_string());
    edge(n.wild, "*");
  }
  out += "}\n";
  return out;
}

// ---------------------------------------------------------------------------

FilterRecord* LinearFilterTable::insert(const Filter& f,
                                        plugin::PluginInstance* inst) {
  for (auto& r : records_) {
    if (r->filter == f) {
      r->instance = inst;
      return r.get();
    }
  }
  auto rec = std::make_unique<FilterRecord>();
  rec->filter = f;
  rec->instance = inst;
  rec->id = next_id_++;
  FilterRecord* out = rec.get();
  records_.push_back(std::move(rec));
  return out;
}

Status LinearFilterTable::remove(const Filter& f) {
  auto before = records_.size();
  std::erase_if(records_, [&](auto& r) { return r->filter == f; });
  return records_.size() != before ? Status::ok : Status::not_found;
}

const FilterRecord* LinearFilterTable::lookup(const pkt::FlowKey& key) const {
  const FilterRecord* best = nullptr;
  for (const auto& r : records_) {
    MemAccess::count();  // every record is inspected: the O(n) baseline
    if (!r->filter.matches(key)) continue;
    if (!best || compare_specificity(r->filter, best->filter) > 0 ||
        (compare_specificity(r->filter, best->filter) == 0 && r->id < best->id))
      best = r.get();
  }
  return best;
}

std::size_t LinearFilterTable::purge_instance(const plugin::PluginInstance* inst) {
  auto before = records_.size();
  std::erase_if(records_, [&](auto& r) { return r->instance == inst; });
  return before - records_.size();
}

std::size_t LinearFilterTable::rebind_instance(plugin::PluginInstance* from,
                                               plugin::PluginInstance* to) {
  std::size_t n = 0;
  for (auto& r : records_) {
    if (r->instance == from) {
      r->instance = to;
      ++n;
    }
  }
  return n;
}

std::vector<const FilterRecord*> LinearFilterTable::records() const {
  std::vector<const FilterRecord*> out;
  out.reserve(records_.size());
  for (auto& r : records_) out.push_back(r.get());
  return out;
}

std::unique_ptr<FilterTableBase> make_filter_table(
    std::string_view kind, const DagFilterTable::Options& dag_opt) {
  if (kind == "dag") return std::make_unique<DagFilterTable>(dag_opt);
  if (kind == "linear") return std::make_unique<LinearFilterTable>();
  return nullptr;
}

}  // namespace rp::aiu

// Filters (Section 3): a filter specifies a set of flows as a six-tuple
//   <source address, destination address, protocol,
//    source port, destination port, incoming interface>
// where any field may be wildcarded and address fields may be partially
// wildcarded with a prefix. Port fields additionally support ranges
// (Section 5.1.1: "For port numbers, matching can be done on ranges").
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "netbase/ip.hpp"
#include "pkt/flow_key.hpp"

namespace rp::aiu {

// Port specification: [lo, hi] inclusive; full range = wildcard.
struct PortSpec {
  std::uint16_t lo{0};
  std::uint16_t hi{65535};

  static constexpr PortSpec any() { return {}; }
  static constexpr PortSpec exact(std::uint16_t p) { return {p, p}; }

  constexpr bool is_wild() const noexcept { return lo == 0 && hi == 65535; }
  constexpr bool is_exact() const noexcept { return lo == hi; }
  constexpr std::uint32_t width() const noexcept {
    return std::uint32_t{hi} - lo;
  }

  constexpr bool matches(std::uint16_t p) const noexcept {
    return p >= lo && p <= hi;
  }
  // True if this spec matches everything `o` matches.
  constexpr bool covers(const PortSpec& o) const noexcept {
    return lo <= o.lo && hi >= o.hi;
  }
  constexpr bool overlaps(const PortSpec& o) const noexcept {
    return lo <= o.hi && o.lo <= hi;
  }
  constexpr PortSpec intersect(const PortSpec& o) const noexcept {
    return {lo > o.lo ? lo : o.lo, hi < o.hi ? hi : o.hi};
  }

  friend constexpr bool operator==(const PortSpec&, const PortSpec&) = default;
  friend constexpr auto operator<=>(const PortSpec&, const PortSpec&) = default;

  std::string to_string() const;
  static std::optional<PortSpec> parse(std::string_view s);
};

// Exact-or-wildcard specification for protocol / incoming interface.
template <typename T>
struct ExactSpec {
  bool wild{true};
  T value{};

  static constexpr ExactSpec any() { return {}; }
  static constexpr ExactSpec exact(T v) { return {false, v}; }

  constexpr bool matches(T v) const noexcept { return wild || value == v; }
  constexpr bool covers(const ExactSpec& o) const noexcept {
    return wild || (!o.wild && value == o.value);
  }

  friend constexpr bool operator==(const ExactSpec&, const ExactSpec&) = default;
};

using ProtoSpec = ExactSpec<std::uint8_t>;
using IfaceSpec = ExactSpec<pkt::IfIndex>;

struct Filter {
  netbase::IpPrefix src{};   // len 0 == fully wildcarded
  netbase::IpPrefix dst{};
  ProtoSpec proto{};
  PortSpec sport{};
  PortSpec dport{};
  IfaceSpec in_iface{};

  bool matches(const pkt::FlowKey& k) const noexcept {
    return src.contains(k.src) && dst.contains(k.dst) &&
           proto.matches(k.proto) && sport.matches(k.sport) &&
           dport.matches(k.dport) && in_iface.matches(k.in_iface);
  }

  // A fully-specified filter identifies exactly one flow (Section 5.2:
  // flow-table entries are filters without wildcards).
  bool fully_specified() const noexcept {
    return src.len == src.addr.width() && dst.len == dst.addr.width() &&
           !proto.wild && sport.is_exact() && dport.is_exact() &&
           !in_iface.wild;
  }

  friend bool operator==(const Filter&, const Filter&) = default;

  std::string to_string() const;

  // Parses "<src, dst, proto, sport, dport, iface>" — the paper's notation,
  // e.g. "<129.0.0.0/8, 192.94.233.10, TCP, *, *, *>" — or the same six
  // fields space-separated without the angle brackets/commas.
  static std::optional<Filter> parse(std::string_view s);
};

// Specificity order for the best-matching-filter rule. The DAG resolves
// field by field in tuple order (most-specific edge first), which is a
// lexicographic comparison on per-field specificity; this function is the
// reference implementation used by the linear classifier and by tests.
// Returns >0 if a is more specific than b, <0 if less, 0 if tied.
int compare_specificity(const Filter& a, const Filter& b) noexcept;

}  // namespace rp::aiu

#include "aiu/aiu.hpp"

#include <algorithm>

#include "pkt/builder.hpp"

namespace rp::aiu {

Aiu::Aiu(plugin::PluginControlUnit& pcu, netbase::SimClock& clock)
    : Aiu(pcu, clock, Options{}) {}

Aiu::Aiu(plugin::PluginControlUnit& pcu, netbase::SimClock& clock, Options opt)
    : pcu_(pcu),
      clock_(clock),
      opt_(std::move(opt)),
      flows_(opt_.flow_buckets, opt_.initial_flows, opt_.max_flows) {
  install_pcu_hooks();
}

void Aiu::install_pcu_hooks() {
  // The AIU publishes its registration functions to the PCU (Section 4:
  // "This message would result in a call to a registration function that is
  // published by the AIU").
  pcu_.set_register_hook(
      [this](plugin::PluginInstance* inst, const std::string& spec) {
        auto f = Filter::parse(spec);
        if (!f) return Status::invalid_argument;
        return create_filter(inst->owner()->type(), *f, inst);
      });
  pcu_.set_deregister_hook(
      [this](plugin::PluginInstance* inst, const std::string& spec) {
        auto f = Filter::parse(spec);
        if (!f) return Status::invalid_argument;
        auto gate = inst->owner()->type();
        auto* table = tables_[gate_index(gate)].get();
        if (!table) return Status::not_found;
        return remove_filter(gate, *f);
      });
  pcu_.add_purge_hook([this](plugin::PluginInstance* inst) {
    flows_.purge_instance(inst);
    for (auto& t : tables_)
      if (t) t->purge_instance(inst);
  });
  // Verdict-cache offload (L7): clear one flow's binding at the caller's
  // gate so the bound_mask skip makes the gate free for that flow. Fails
  // closed on anything stale: with the cache disabled gate_lookup hands out
  // scratch bindings (nothing to clear), and a recycled entry no longer
  // matches the caller's instance+soft pair. The caller has already
  // released the soft state, so the binding is just wiped.
  pcu_.set_flow_offload_hook([this](pkt::FlowIndex fix,
                                    plugin::PluginInstance* inst,
                                    plugin::PluginType gate,
                                    void* expected_soft) {
    if (!opt_.flow_cache_enabled || !inst) return false;
    if (fix < 0 || fix >= static_cast<pkt::FlowIndex>(flows_.capacity()))
      return false;
    FlowRecord& r = flows_.rec(fix);
    const std::size_t gi = gate_index(gate);
    GateBinding& g = r.gates[gi];
    if (!r.in_use || g.instance != inst || g.soft != expected_soft)
      return false;
    g = {};
    r.bound_mask &= ~(std::uint32_t{1} << gi);
    ++stats_.flows_offloaded;
    return true;
  });
}

Status Aiu::create_filter(plugin::PluginType gate, const Filter& f,
                          plugin::PluginInstance* inst) {
  if (gate == plugin::PluginType::none) return Status::invalid_argument;
  auto& table = tables_[gate_index(gate)];
  if (!table) {
    table = make_filter_table(opt_.classifier, opt_.dag);
    if (!table) return Status::invalid_argument;
  }
  if (!table->insert(f, inst)) return Status::error;
  // Cached bindings may now be stale; drop them so the next packet of each
  // flow re-runs classification.
  flush_cache();
  return Status::ok;
}

Status Aiu::remove_filter(plugin::PluginType gate, const Filter& f) {
  auto* table = tables_[gate_index(gate)].get();
  if (!table) return Status::not_found;
  Status s = table->remove(f);
  if (s == Status::ok) flush_cache();
  return s;
}

Aiu::FilterBatchResult Aiu::apply_filter_batch(std::span<const FilterOp> ops) {
  FilterBatchResult res;
  // Phase 1: resolve what the batch can affect, before any mutation, so
  // every record pointer compared below is still alive regardless of the
  // table implementation's record lifetime.
  struct Removed {
    std::size_t gi;
    const FilterRecord* rec;
  };
  std::vector<Removed> removed;
  std::vector<const Filter*> added;
  for (const FilterOp& op : ops) {
    if (op.gate == plugin::PluginType::none) continue;
    if (op.kind == FilterOp::Kind::add) {
      added.push_back(&op.filter);
      continue;
    }
    const std::size_t gi = gate_index(op.gate);
    if (!tables_[gi]) continue;
    for (const FilterRecord* r : tables_[gi]->records()) {
      if (r->filter == op.filter) {
        removed.push_back({gi, r});
        break;
      }
    }
  }

  // Phase 2: selective invalidation. Only flows whose classification could
  // have changed are dropped: a binding derived from a removed record, or a
  // key an added filter matches (it may now be the more specific winner, and
  // an add of an existing filter rebinds its record's instance in place).
  // Everything else keeps its cached bindings — no full flush.
  if ((!removed.empty() || !added.empty()) && flows_.active() != 0) {
    const auto cap = static_cast<pkt::FlowIndex>(flows_.capacity());
    for (pkt::FlowIndex fix = 0; fix < cap; ++fix) {
      const FlowRecord& r = flows_.rec(fix);
      if (!r.in_use) continue;
      bool stale = false;
      for (const auto& rm : removed) {
        if (r.gates[rm.gi].filter == rm.rec) {
          stale = true;
          break;
        }
      }
      if (!stale) {
        for (const Filter* f : added) {
          if (f->matches(r.key)) {
            stale = true;
            break;
          }
        }
      }
      if (stale) {
        flows_.remove(fix, FlowTable::RemoveReason::purged);
        ++res.flows_invalidated;
      }
    }
  }
  stats_.flows_invalidated += res.flows_invalidated;

  // Phase 3: mutate the tables.
  bool touched[kNumGates] = {};
  for (const FilterOp& op : ops) {
    if (op.gate == plugin::PluginType::none) {
      ++res.failed;
      continue;
    }
    const std::size_t gi = gate_index(op.gate);
    if (op.kind == FilterOp::Kind::add) {
      auto& table = tables_[gi];
      if (!table) {
        table = make_filter_table(opt_.classifier, opt_.dag);
        if (!table) {
          ++res.failed;
          continue;
        }
      }
      if (!table->insert(op.filter, op.instance)) {
        ++res.failed;
        continue;
      }
      touched[gi] = true;
      ++res.added;
    } else {
      auto* table = tables_[gi].get();
      if (!table || table->remove(op.filter) != Status::ok) {
        ++res.failed;
        continue;
      }
      touched[gi] = true;
      ++res.removed;
    }
  }

  // Phase 4: patch the touched tables now, on the control path, so the next
  // packet's lookup finds them clean (no from-scratch rebuild, no stall).
  for (std::size_t gi = 0; gi < kNumGates; ++gi)
    if (touched[gi] && tables_[gi]) tables_[gi]->patch();
  return res;
}

Aiu::HandoffResult Aiu::handoff_instance(plugin::PluginInstance* from,
                                         plugin::PluginInstance* to) {
  HandoffResult res;
  if (!from || !to || from == to) return res;
  for (auto& t : tables_)
    if (t) res.filters_rebound += t->rebind_instance(from, to);
  const auto cap = static_cast<pkt::FlowIndex>(flows_.capacity());
  for (pkt::FlowIndex fix = 0; fix < cap; ++fix) {
    FlowRecord& r = flows_.rec(fix);
    if (!r.in_use) continue;
    for (std::size_t g = 0; g < kNumGates; ++g) {
      GateBinding& b = r.gates[g];
      if (b.instance != from) continue;
      b.instance = to;  // bound_mask bit stays set: `to` is non-null
      ++res.flows_rebound;
      if (!b.soft) continue;
      if (to->migrate_flow(from, r.key, &b.soft)) {
        ++res.state_migrated;
      } else {
        from->flow_removed(b.soft);
        b.soft = nullptr;
        ++res.state_dropped;
      }
    }
  }
  stats_.flows_migrated += res.state_migrated;
  return res;
}

std::size_t Aiu::rebind_instance(const plugin::PluginInstance* inst) {
  const std::size_t purged = flows_.purge_instance(inst);
  stats_.flows_rebound += purged;
  return purged;
}

void Aiu::flush_cache() {
  if (flows_.active() != 0) {
    flows_.clear();
    ++stats_.cache_flushes;
  }
}

const FilterRecord* Aiu::classify_uncached(const pkt::FlowKey& key,
                                           plugin::PluginType gate) {
  auto* table = tables_[gate_index(gate)].get();
  if (!table) return nullptr;
  ++stats_.filter_lookups;
  return table->lookup(key);
}

pkt::FlowIndex Aiu::create_flow_entry(pkt::Packet& p) {
  pkt::FlowIndex i = flows_.insert(p.key, p.flow_hash(), clock_.now());
  FlowRecord& r = flows_.rec(i);
  // The creating packet is packet #1 of the flow. insert() itself stays
  // neutral (it is also used to pre-create entries), so count it here.
  r.packets = 1;
  // n gates -> n filter-table lookups, one flow entry (Section 3.2).
  for (std::size_t g = 0; g < kNumGates; ++g) {
    if (!tables_[g]) continue;
    ++stats_.filter_lookups;
    const FilterRecord* fr = tables_[g]->lookup(p.key);
    if (fr) {
      r.gates[g].instance = fr->instance;
      r.gates[g].filter = fr;
      if (fr->instance) r.bound_mask |= std::uint32_t{1} << g;
    }
  }
  ++stats_.uncached_classifications;
  return i;
}

GateBinding* Aiu::gate_lookup(pkt::Packet& p, plugin::PluginType gate) {
  const std::size_t gi = gate_index(gate);

  // Fast path: FIX already in the packet — direct array access.
  if (p.fix != pkt::kNoFlow) return &flows_.rec(p.fix).gates[gi];

  if (!p.key_valid && !pkt::extract_flow_key(p)) return nullptr;

  if (!opt_.flow_cache_enabled) {
    // Ablation path: classify at this gate only, no caching. Soft state is
    // not persisted (only stateless plugins are meaningful here).
    thread_local GateBinding tmp;
    tmp = {};
    const FilterRecord* fr =
        tables_[gi] ? (++stats_.filter_lookups, tables_[gi]->lookup(p.key))
                    : nullptr;
    if (fr) {
      tmp.instance = fr->instance;
      tmp.filter = fr;
    }
    return &tmp;
  }

  pkt::FlowIndex i = flows_.lookup(p.key, p.flow_hash(), clock_.now());
  if (i == pkt::kNoFlow) i = create_flow_entry(p);
  p.fix = i;
  // Ingress byte accounting (once per packet: fix was kNoFlow until here);
  // the record line is already hot from the probe.
  flows_.rec(i).bytes += p.size();
  return &flows_.rec(i).gates[gi];
}

void Aiu::resolve_flows_burst(std::span<pkt::Packet* const> pkts) {
  if (!opt_.flow_cache_enabled) return;
  const netbase::SimTime now = clock_.now();

  std::uint64_t hashes[kMaxBurst];
  bool parsed[kMaxBurst];
  for (std::size_t base = 0; base < pkts.size(); base += kMaxBurst) {
    const std::size_t n = std::min(kMaxBurst, pkts.size() - base);
    auto chunk = pkts.subspan(base, n);

    // Pass 1: hash every key once and start pulling the bucket heads.
    for (std::size_t i = 0; i < n; ++i) {
      pkt::Packet& p = *chunk[i];
      parsed[i] = p.key_valid || pkt::extract_flow_key(p);
      if (!parsed[i]) continue;
      hashes[i] = p.flow_hash();
      flows_.prefetch(hashes[i]);
    }
    // Pass 2: bucket heads are (becoming) resident; chase one level into
    // the chain so the FlowRecords arrive before the probe loop needs them.
    for (std::size_t i = 0; i < n; ++i)
      if (parsed[i]) flows_.prefetch_record(hashes[i]);

    // Pass 3: resolve. A small memo of the chunk's recent flows turns both
    // packet trains (back-to-back packets of one flow) and round-robin
    // interleavings of a few flows into straight LRU touches, skipping the
    // hash-chain probe. The memo keys on hash *and* full key equality, so a
    // collision can never bind a packet to the wrong flow; a memo hit's
    // accounting (touch + bytes) is exactly a lookup hit's.
    constexpr std::size_t kMemo = 4;
    const pkt::Packet* mpkt[kMemo] = {};
    std::uint64_t mhash[kMemo] = {};
    pkt::FlowIndex mfix[kMemo] = {};
    std::size_t mn = 0, mvict = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (!parsed[i]) continue;
      pkt::Packet& p = *chunk[i];
      if (p.fix != pkt::kNoFlow) continue;  // e.g. reprocessed fragment
      bool hit = false;
      for (std::size_t s = 0; s < mn; ++s) {
        if (mhash[s] == hashes[i] && p.key == mpkt[s]->key) {
          flows_.touch(mfix[s], now);
          p.fix = mfix[s];
          flows_.rec(mfix[s]).bytes += p.size();
          hit = true;
          break;
        }
      }
      if (hit) continue;
      pkt::FlowIndex f = flows_.lookup(p.key, hashes[i], now);
      if (f == pkt::kNoFlow) f = create_flow_entry(p);
      p.fix = f;
      flows_.rec(f).bytes += p.size();
      const std::size_t s = mn < kMemo ? mn++ : mvict++ % kMemo;
      mpkt[s] = &p;
      mhash[s] = hashes[i];
      mfix[s] = f;
    }
  }
}

void Aiu::gate_lookup_burst(std::span<pkt::Packet* const> pkts,
                            plugin::PluginType gate, GateBinding** out) {
  if (!opt_.flow_cache_enabled) {
    // Ablation: classify each packet at this gate only, like gate_lookup,
    // but into per-burst scratch slots so the bindings don't alias.
    burst_tmp_.assign(pkts.size(), GateBinding{});
    for (std::size_t i = 0; i < pkts.size(); ++i) {
      pkt::Packet& p = *pkts[i];
      if (!p.key_valid && !pkt::extract_flow_key(p)) {
        out[i] = nullptr;
        continue;
      }
      if (const FilterRecord* fr = classify_uncached(p.key, gate)) {
        burst_tmp_[i].instance = fr->instance;
        burst_tmp_[i].filter = fr;
      }
      out[i] = &burst_tmp_[i];
    }
    return;
  }
  resolve_flows_burst(pkts);
  const std::size_t gi = gate_index(gate);
  for (std::size_t i = 0; i < pkts.size(); ++i)
    out[i] = pkts[i]->fix != pkt::kNoFlow
                 ? &flows_.rec(pkts[i]->fix).gates[gi]
                 : nullptr;
}

}  // namespace rp::aiu

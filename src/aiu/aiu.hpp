// Association Identification Unit (Section 5) — the facade tying together
// packet classification (filter tables, one per gate), the flow cache, and
// the binding between flows and plugin instances.
//
// Data path (Section 3.2): a gate calls `gate_lookup(packet, gate)`.
//  * If the packet already carries a flow index (FIX), the binding is a
//    direct array access — the gate then makes one indirect function call.
//  * Otherwise the flow table is probed; on a hit the FIX is stored in the
//    packet. On a miss, *all* gates' filter tables are looked up once and a
//    flow-table entry is created ("the processing of the first packet of a
//    new flow with n gates involves n filter table lookups").
//
// Control path: the AIU publishes registration functions, installed into the
// PCU as hooks, so register_instance/deregister_instance messages create and
// remove filter bindings.
#pragma once

#include <array>
#include <memory>

#include "aiu/filter_table.hpp"
#include "aiu/flow_table.hpp"
#include "netbase/clock.hpp"
#include "plugin/pcu.hpp"

namespace rp::aiu {

class Aiu {
 public:
  struct Options {
    std::string classifier{"dag"};  // "dag" | "linear" (evaluation baseline)
    DagFilterTable::Options dag{};
    std::size_t flow_buckets{32768};  // §5.2 default
    std::size_t initial_flows{1024};  // §5.2 default
    std::size_t max_flows{1 << 20};
    bool flow_cache_enabled{true};    // ablation switch (bench F-G)
  };

  struct Stats {
    std::uint64_t uncached_classifications{0};  // flow-entry creations
    std::uint64_t filter_lookups{0};
    std::uint64_t cache_flushes{0};
  };

  Aiu(plugin::PluginControlUnit& pcu, netbase::SimClock& clock);
  Aiu(plugin::PluginControlUnit& pcu, netbase::SimClock& clock, Options opt);

  // -- control path --

  Status create_filter(plugin::PluginType gate, const Filter& f,
                       plugin::PluginInstance* inst);
  Status remove_filter(plugin::PluginType gate, const Filter& f);

  FilterTableBase* filter_table(plugin::PluginType gate) noexcept {
    return tables_[gate_index(gate)].get();
  }
  FlowTable& flow_table() noexcept { return flows_; }
  const Stats& stats() const noexcept { return stats_; }

  // -- data path --

  // The body of the gate macro: returns the binding (instance + per-flow
  // soft-state slot) for this packet at this gate, or nullptr when the
  // packet is unparseable. A binding with a null instance means no filter
  // matched — the gate simply continues.
  GateBinding* gate_lookup(pkt::Packet& p, plugin::PluginType gate);

  // One-gate classification without touching the cache (used by benches and
  // by the no-cache ablation path).
  const FilterRecord* classify_uncached(const pkt::FlowKey& key,
                                        plugin::PluginType gate);

 private:
  pkt::FlowIndex create_flow_entry(pkt::Packet& p);
  void flush_cache();
  void install_pcu_hooks();

  plugin::PluginControlUnit& pcu_;
  netbase::SimClock& clock_;
  Options opt_;
  std::array<std::unique_ptr<FilterTableBase>, kNumGates> tables_;
  FlowTable flows_;
  Stats stats_;
};

}  // namespace rp::aiu

// Association Identification Unit (Section 5) — the facade tying together
// packet classification (filter tables, one per gate), the flow cache, and
// the binding between flows and plugin instances.
//
// Data path (Section 3.2): a gate calls `gate_lookup(packet, gate)`.
//  * If the packet already carries a flow index (FIX), the binding is a
//    direct array access — the gate then makes one indirect function call.
//  * Otherwise the flow table is probed; on a hit the FIX is stored in the
//    packet. On a miss, *all* gates' filter tables are looked up once and a
//    flow-table entry is created ("the processing of the first packet of a
//    new flow with n gates involves n filter table lookups").
//
// Control path: the AIU publishes registration functions, installed into the
// PCU as hooks, so register_instance/deregister_instance messages create and
// remove filter bindings.
#pragma once

#include <array>
#include <memory>
#include <span>
#include <vector>

#include "aiu/filter_table.hpp"
#include "aiu/flow_table.hpp"
#include "netbase/clock.hpp"
#include "plugin/pcu.hpp"

namespace rp::aiu {

class Aiu {
 public:
  struct Options {
    std::string classifier{"dag"};  // "dag" | "linear" (evaluation baseline)
    DagFilterTable::Options dag{};
    std::size_t flow_buckets{32768};  // §5.2 default
    std::size_t initial_flows{1024};  // §5.2 default
    std::size_t max_flows{1 << 20};
    bool flow_cache_enabled{true};    // ablation switch (bench F-G)
  };

  struct Stats {
    std::uint64_t uncached_classifications{0};  // flow-entry creations
    std::uint64_t filter_lookups{0};
    std::uint64_t cache_flushes{0};
    std::uint64_t flows_rebound{0};  // entries purged by rebind_instance
    // Bindings cleared through the flow-offload hook (L7 verdict cache:
    // a flow judged clean bypasses its inspection gate from then on).
    std::uint64_t flows_offloaded{0};
    // Control-plane churn (docs/control_plane.md): flows selectively
    // re-classified by apply_filter_batch (instead of a full cache flush)
    // and soft-state transfers performed by handoff_instance.
    std::uint64_t flows_invalidated{0};
    std::uint64_t flows_migrated{0};
  };

  // One element of a control-plane filter batch.
  struct FilterOp {
    enum class Kind : std::uint8_t { add, remove };
    Kind kind{Kind::add};
    plugin::PluginType gate{plugin::PluginType::none};
    Filter filter{};
    plugin::PluginInstance* instance{nullptr};  // add only
  };

  struct FilterBatchResult {
    std::size_t added{0};
    std::size_t removed{0};
    std::size_t failed{0};
    std::size_t flows_invalidated{0};  // entries selectively re-classified
  };

  // Outcome of a versioned-instance handoff.
  struct HandoffResult {
    std::size_t filters_rebound{0};  // filter records moved from -> to
    std::size_t flows_rebound{0};    // gate bindings moved from -> to
    std::size_t state_migrated{0};   // soft states adopted via migrate_flow
    std::size_t state_dropped{0};    // soft states the new version declined
  };

  Aiu(plugin::PluginControlUnit& pcu, netbase::SimClock& clock);
  Aiu(plugin::PluginControlUnit& pcu, netbase::SimClock& clock, Options opt);

  // -- control path --

  Status create_filter(plugin::PluginType gate, const Filter& f,
                       plugin::PluginInstance* inst);
  Status remove_filter(plugin::PluginType gate, const Filter& f);

  // Applies a batch of filter adds/removes with *selective* flow
  // invalidation: instead of the full cache flush create_filter/
  // remove_filter pay, only flows whose classification could have changed
  // (key matches an added filter, or binding derives from a removed record)
  // are dropped for re-classification. Affected tables are then patch()ed —
  // DAG subgraph reuse — so the packet path never sees a dirty table. Call
  // between bursts only, like every other control-path mutation.
  FilterBatchResult apply_filter_batch(std::span<const FilterOp> ops);

  // Versioned-upgrade handoff (docs/plugin_authoring.md §13): rebinds every
  // filter record and live flow binding from `from` onto `to`, offering each
  // flow's soft state to `to` via migrate_flow. Declined state is released
  // through `from->flow_removed` and the flow restarts stateless under `to`;
  // either way the flow entry survives, so no packets are dropped and no
  // re-classification happens. Call between bursts only.
  HandoffResult handoff_instance(plugin::PluginInstance* from,
                                 plugin::PluginInstance* to);

  // Purges every flow-table entry bound to `inst` so the next packet of each
  // affected flow re-classifies against the filter tables and binds to
  // whatever matches now. Used by the resilience supervisor when an
  // instance's circuit breaker opens (call only between bursts: in-flight
  // GateBindings point into the purged entries). Returns entries purged.
  std::size_t rebind_instance(const plugin::PluginInstance* inst);

  FilterTableBase* filter_table(plugin::PluginType gate) noexcept {
    return tables_[gate_index(gate)].get();
  }
  FlowTable& flow_table() noexcept { return flows_; }
  const Stats& stats() const noexcept { return stats_; }

  // Whether the flow cache is on. The grouped gate dispatcher requires it:
  // with the cache disabled gate_lookup hands out aliasing scratch bindings
  // (see below), so the core falls back to the per-packet gate loop there.
  bool flow_cache_enabled() const noexcept { return opt_.flow_cache_enabled; }

  // -- data path --

  // The body of the gate macro: returns the binding (instance + per-flow
  // soft-state slot) for this packet at this gate, or nullptr when the
  // packet is unparseable. A binding with a null instance means no filter
  // matched — the gate simply continues.
  GateBinding* gate_lookup(pkt::Packet& p, plugin::PluginType gate);

  // Inline fast path of gate_lookup for packets already resolved by
  // resolve_flows_burst in this chunk (p.fix set): a direct flow-table array
  // access, no out-of-line call. Falls back to the full lookup for the rare
  // unresolved packet, so the result always matches gate_lookup exactly.
  // `gi` must be gate_index(gate), hoisted by the caller.
  GateBinding* gate_lookup_resolved(pkt::Packet& p, plugin::PluginType gate,
                                    std::size_t gi) {
    if (p.fix != pkt::kNoFlow) [[likely]] return &flows_.rec(p.fix).gates[gi];
    return gate_lookup(p, gate);
  }

  // Burst data path. Packets are processed in chunks of at most kMaxBurst.
  static constexpr std::size_t kMaxBurst = 32;

  // Resolves the flow index for every packet of a burst and stores it in the
  // packet (p->fix), after which each gate's lookup is a direct array
  // access. Three passes per chunk: (1) hash every key once (cached on the
  // packet) and prefetch the flow-table bucket heads, (2) prefetch the
  // chained FlowRecords, (3) probe with the precomputed hashes — where a
  // single-entry "last flow" memo lets back-to-back packets of one flow
  // skip even the hash probe. Packets must have a valid key (the core
  // parses headers before classification); with the flow cache disabled
  // this is a no-op and the per-gate ablation path applies.
  //
  // Note: like the single-packet path, resolved indices assume the entry
  // survives until the packet leaves the core; keep max_flows well above
  // kMaxBurst so LRU recycling cannot evict a burst-mate's flow.
  void resolve_flows_burst(std::span<pkt::Packet* const> pkts);

  // Burst variant of gate_lookup: resolve_flows_burst + gather the bindings
  // at `gate` into `out[i]` (null where the packet is unparseable). `out`
  // must have room for pkts.size() entries.
  void gate_lookup_burst(std::span<pkt::Packet* const> pkts,
                         plugin::PluginType gate, GateBinding** out);

  // One-gate classification without touching the cache (used by benches and
  // by the no-cache ablation path).
  const FilterRecord* classify_uncached(const pkt::FlowKey& key,
                                        plugin::PluginType gate);

 private:
  pkt::FlowIndex create_flow_entry(pkt::Packet& p);
  void flush_cache();
  void install_pcu_hooks();

  plugin::PluginControlUnit& pcu_;
  netbase::SimClock& clock_;
  Options opt_;
  std::array<std::unique_ptr<FilterTableBase>, kNumGates> tables_;
  FlowTable flows_;
  Stats stats_;
  // Scratch bindings for gate_lookup_burst under the no-cache ablation
  // (nothing persists across packets there; see gate_lookup).
  std::vector<GateBinding> burst_tmp_;
};

}  // namespace rp::aiu

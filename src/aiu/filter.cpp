#include "aiu/filter.hpp"

#include <charconv>
#include <vector>

namespace rp::aiu {

namespace {

std::optional<std::uint32_t> parse_num(std::string_view s, std::uint32_t max) {
  std::uint32_t v = 0;
  auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || p != s.data() + s.size() || v > max)
    return std::nullopt;
  return v;
}

std::optional<std::uint8_t> parse_proto(std::string_view s) {
  if (s == "tcp" || s == "TCP") return static_cast<std::uint8_t>(pkt::IpProto::tcp);
  if (s == "udp" || s == "UDP") return static_cast<std::uint8_t>(pkt::IpProto::udp);
  if (s == "icmp" || s == "ICMP") return static_cast<std::uint8_t>(pkt::IpProto::icmp);
  if (s == "icmp6" || s == "ICMP6") return static_cast<std::uint8_t>(pkt::IpProto::icmpv6);
  if (s == "esp" || s == "ESP") return static_cast<std::uint8_t>(pkt::IpProto::esp);
  if (s == "ah" || s == "AH") return static_cast<std::uint8_t>(pkt::IpProto::ah);
  auto n = parse_num(s, 255);
  if (!n) return std::nullopt;
  return static_cast<std::uint8_t>(*n);
}

// Splits on commas or whitespace, trimming "<", ">" and blanks.
std::vector<std::string_view> tokenize(std::string_view s) {
  std::vector<std::string_view> out;
  std::size_t i = 0;
  auto is_sep = [](char c) {
    return c == ',' || c == ' ' || c == '\t' || c == '<' || c == '>';
  };
  while (i < s.size()) {
    while (i < s.size() && is_sep(s[i])) ++i;
    std::size_t j = i;
    while (j < s.size() && !is_sep(s[j])) ++j;
    if (j > i) out.push_back(s.substr(i, j - i));
    i = j;
  }
  return out;
}

// Per-field specificity ranks; larger = more specific.
int rank_prefix(const netbase::IpPrefix& p) { return p.len; }
std::int64_t rank_port(const PortSpec& p) {
  return 65535 - static_cast<std::int64_t>(p.width());
}
template <typename T>
int rank_exact(const ExactSpec<T>& e) {
  return e.wild ? 0 : 1;
}

}  // namespace

std::string PortSpec::to_string() const {
  if (is_wild()) return "*";
  if (is_exact()) return std::to_string(lo);
  return std::to_string(lo) + "-" + std::to_string(hi);
}

std::optional<PortSpec> PortSpec::parse(std::string_view s) {
  if (s == "*") return PortSpec::any();
  std::size_t dash = s.find('-');
  if (dash == std::string_view::npos) {
    auto v = parse_num(s, 65535);
    if (!v) return std::nullopt;
    return PortSpec::exact(static_cast<std::uint16_t>(*v));
  }
  auto lo = parse_num(s.substr(0, dash), 65535);
  auto hi = parse_num(s.substr(dash + 1), 65535);
  if (!lo || !hi || *lo > *hi) return std::nullopt;
  return PortSpec{static_cast<std::uint16_t>(*lo),
                  static_cast<std::uint16_t>(*hi)};
}

std::string Filter::to_string() const {
  auto addr_str = [](const netbase::IpPrefix& p) {
    if (p.len == 0) return std::string("*");
    if (p.len == p.addr.width()) return p.addr.to_string();
    return p.to_string();
  };
  std::string proto_s = proto.wild ? "*" : std::to_string(proto.value);
  std::string iface_s = in_iface.wild ? "*" : std::to_string(in_iface.value);
  return "<" + addr_str(src) + ", " + addr_str(dst) + ", " + proto_s + ", " +
         sport.to_string() + ", " + dport.to_string() + ", " + iface_s + ">";
}

std::optional<Filter> Filter::parse(std::string_view s) {
  auto tok = tokenize(s);
  if (tok.size() != 6) return std::nullopt;

  Filter f;
  // Address family: default v4; if either address token looks v6, both
  // wildcards inherit v6.
  auto family = netbase::IpVersion::v4;
  for (int i = 0; i < 2; ++i)
    if (tok[i].find(':') != std::string_view::npos)
      family = netbase::IpVersion::v6;

  auto src = netbase::IpPrefix::parse(tok[0], family);
  auto dst = netbase::IpPrefix::parse(tok[1], family);
  if (!src || !dst) return std::nullopt;
  f.src = *src;
  f.dst = *dst;

  if (tok[2] == "*") {
    f.proto = ProtoSpec::any();
  } else {
    auto p = parse_proto(tok[2]);
    if (!p) return std::nullopt;
    f.proto = ProtoSpec::exact(*p);
  }

  auto sp = PortSpec::parse(tok[3]);
  auto dp = PortSpec::parse(tok[4]);
  if (!sp || !dp) return std::nullopt;
  f.sport = *sp;
  f.dport = *dp;

  if (tok[5] == "*") {
    f.in_iface = IfaceSpec::any();
  } else {
    std::string_view it = tok[5];
    if (it.starts_with("if")) it.remove_prefix(2);
    auto v = parse_num(it, 0xfffe);
    if (!v) return std::nullopt;
    f.in_iface = IfaceSpec::exact(static_cast<pkt::IfIndex>(*v));
  }
  return f;
}

int compare_specificity(const Filter& a, const Filter& b) noexcept {
  if (int d = rank_prefix(a.src) - rank_prefix(b.src)) return d;
  if (int d = rank_prefix(a.dst) - rank_prefix(b.dst)) return d;
  if (int d = rank_exact(a.proto) - rank_exact(b.proto)) return d;
  if (auto d = rank_port(a.sport) - rank_port(b.sport))
    return d > 0 ? 1 : -1;
  if (auto d = rank_port(a.dport) - rank_port(b.dport))
    return d > 0 ? 1 : -1;
  if (int d = rank_exact(a.in_iface) - rank_exact(b.in_iface)) return d;
  return 0;
}

}  // namespace rp::aiu

// Grid-of-tries classifier (Srinivasan, Varghese, Suri & Waldvogel — "Fast
// and Scalable Level Four Switching", the paper's reference [26]).
//
// §5.1.2/§8 of Router Plugins: "More advanced techniques such as
// grid-of-tries can provide better memory utilization without sacrificing
// performance, but work only in the special case of two-dimensional
// filters" and "we plan to ... incorporate enhanced implementations and
// algorithms (such as those in [26]) into our framework." This is that
// incorporation: a drop-in FilterTableBase for 2D (source, destination)
// filters. `insert` rejects filters that constrain protocol, ports, or the
// interface.
//
// Structure (dimensions swapped relative to the original so the result
// follows this library's src-major specificity order):
//  * a binary trie over source prefixes;
//  * per source prefix, a destination trie of that prefix's filters;
//  * switch pointers let the destination walk jump from T(S) to the
//    destination trie of a shorter source prefix without restarting, so a
//    lookup costs O(W_src + W_dst) node visits with *linear* memory —
//    the set-pruning DAG trades memory for the same bound;
//  * every node precomputes `stored`, the best filter with src in S's
//    ancestor chain and dst a prefix of the node path; the lookup keeps a
//    running maximum of `stored` over visited nodes.
#pragma once

#include <memory>
#include <vector>

#include "aiu/filter_table.hpp"

namespace rp::aiu {

class GridOfTries final : public FilterTableBase {
 public:
  GridOfTries();
  ~GridOfTries() override;

  // Only 2D filters (proto/ports/iface wild) are accepted; others yield
  // nullptr.
  FilterRecord* insert(const Filter& f, plugin::PluginInstance* inst) override;
  Status remove(const Filter& f) override;
  const FilterRecord* lookup(const pkt::FlowKey& key) const override;
  std::size_t size() const override { return records_.size(); }
  std::size_t purge_instance(const plugin::PluginInstance* inst) override;
  // Pure pointer rewrite: lookup structures key on filters, not instances,
  // so no rebuild is needed.
  std::size_t rebind_instance(plugin::PluginInstance* from,
                              plugin::PluginInstance* to) override {
    std::size_t n = 0;
    for (auto& r : records_)
      if (r->instance == from) {
        r->instance = to;
        ++n;
      }
    return n;
  }
  std::vector<const FilterRecord*> records() const override;
  void prepare() const override {
    if (dirty_) rebuild();
  }

  std::size_t node_count() const {
    prepare();
    return src_nodes_.size() + total_dst_nodes_;
  }

 private:
  static constexpr std::int32_t kNil = -1;

  struct DstNode {
    std::int32_t child[2]{kNil, kNil};
    std::int32_t jump[2]{kNil, kNil};  // switch pointers (global dst index)
    const FilterRecord* exact{nullptr};  // filter ending exactly here
    const FilterRecord* stored{nullptr};
    std::uint8_t depth{0};
  };

  struct SrcNode {
    std::int32_t child[2]{kNil, kNil};
    std::int32_t trie_root{kNil};  // root DstNode of T(S); kNil if no filters
    std::int32_t parent{kNil};
    std::uint8_t depth{0};
    bool is_prefix{false};  // some filter has exactly this src
  };

  // Build-time sidecar for each DstNode (kept off the lookup path).
  struct PathInfo {
    netbase::U128 path{};
    unsigned len{0};
    std::int32_t trie_of_src{kNil};
  };

  void rebuild() const;
  std::int32_t src_insert(netbase::U128 key, unsigned len) const;
  std::int32_t dst_insert(std::int32_t trie_root, netbase::U128 key,
                          unsigned len) const;
  // Deepest DstNode on `path` (length `len`) within the trie rooted at
  // `root`; returns kNil if the root is kNil.
  std::int32_t deepest_on_path(std::int32_t root, netbase::U128 path,
                               unsigned len, bool* exact_len) const;
  static const FilterRecord* better(const FilterRecord* a,
                                    const FilterRecord* b);

  std::vector<std::unique_ptr<FilterRecord>> records_;
  std::uint32_t next_id_{1};

  mutable bool dirty_{false};
  mutable std::vector<SrcNode> src_nodes_;  // [0]=v4 root, [1]=v6 root
  mutable std::vector<DstNode> dst_nodes_;  // all dst tries share this pool
  mutable std::vector<PathInfo> paths_;     // parallel to dst_nodes_
  mutable std::size_t src_root_current_{0};
  mutable std::size_t total_dst_nodes_{0};
};

}  // namespace rp::aiu

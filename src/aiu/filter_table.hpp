// Filter tables (Section 5.1): best-matching-filter lookup for packets on
// uncached flows. One filter table exists per gate.
//
// Two implementations:
//  * DagFilterTable — the paper's contribution: a set-pruning-trie DAG with
//    one level per tuple field. Address levels are matched with a pluggable
//    BMP engine (longest prefix match), port levels on ranges, protocol and
//    interface levels by exact match. Filters that leave a field
//    unconstrained sit on a per-node wild edge descended alongside the
//    specific edge (results merged by specificity) instead of being
//    replicated into every subtree — lookup visits O(fields) nodes per
//    explored wild branch, and incremental patch() reuse survives wildcard
//    churn because untouched subgraph memo keys stay unchanged.
//  * LinearFilterTable — the O(n) scan that "typical filter algorithms used
//    in existing implementations" amount to; the evaluation baseline.
//
// Both count memory accesses via netbase::MemAccess using the same
// accounting as the paper's Table 2.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "aiu/filter.hpp"
#include "bmp/lpm.hpp"
#include "netbase/status.hpp"
#include "plugin/plugin.hpp"

namespace rp::aiu {

using netbase::Status;

// A filter installed in a table, bound to a plugin instance. Leaf nodes of
// the DAG point at these records; flow-table entries keep back-pointers to
// them. `private_data` is the opaque per-filter (hard) state the paper lets
// plugins attach to installed filters (Section 5.1.1).
struct FilterRecord {
  Filter filter{};
  plugin::PluginInstance* instance{nullptr};
  void* private_data{nullptr};
  std::uint32_t id{0};
};

class FilterTableBase {
 public:
  virtual ~FilterTableBase() = default;

  // Installs (or rebinds) a filter; returns the stable record.
  virtual FilterRecord* insert(const Filter& f,
                               plugin::PluginInstance* inst) = 0;
  virtual Status remove(const Filter& f) = 0;

  // Best matching filter for a fully-specified key; nullptr if none.
  virtual const FilterRecord* lookup(const pkt::FlowKey& key) const = 0;

  virtual std::size_t size() const = 0;

  // Removes every filter bound to `inst` (module unload / free_instance);
  // returns how many were removed.
  virtual std::size_t purge_instance(const plugin::PluginInstance* inst) = 0;

  // Rebinds every record bound to `from` onto `to` — the versioned-upgrade
  // primitive. Purely a record mutation: leaves/scan entries point at
  // records, so no structural rebuild happens. Returns records rebound.
  virtual std::size_t rebind_instance(plugin::PluginInstance* from,
                                      plugin::PluginInstance* to) = 0;

  virtual std::vector<const FilterRecord*> records() const = 0;

  // Eagerly performs any pending (lazy) rebuild; keeps construction work
  // out of measured lookup paths. No-op for tables that build eagerly.
  virtual void prepare() const {}

  // Applies pending mutations by patching the existing structure in place
  // where the implementation supports it (DAG subgraph reuse); the default
  // falls back to prepare(). Control-plane batches call this at burst
  // boundaries so the packet path never pays a from-scratch build.
  virtual void patch() const { prepare(); }
};

// ---------------------------------------------------------------------------

class DagFilterTable final : public FilterTableBase {
 public:
  struct Options {
    std::string bmp_engine{"bsl"};  // per-level BMP plugin: patricia|bsl|cpe
    bool collapse{true};            // §5.1.2: skip levels all-wildcarded
  };

  DagFilterTable();
  explicit DagFilterTable(Options opt);
  ~DagFilterTable() override;

  FilterRecord* insert(const Filter& f, plugin::PluginInstance* inst) override;
  Status remove(const Filter& f) override;
  const FilterRecord* lookup(const pkt::FlowKey& key) const override;
  std::size_t size() const override { return records_.size(); }
  std::size_t purge_instance(const plugin::PluginInstance* inst) override;
  std::size_t rebind_instance(plugin::PluginInstance* from,
                              plugin::PluginInstance* to) override;
  std::vector<const FilterRecord*> records() const override;

  // Diagnostics for benches/tests (force a rebuild if one is pending).
  std::size_t node_count() const {
    if (dirty_) rebuild();
    return nodes_.size();
  }
  // Graphviz dump of the DAG (nodes labelled by level, leaves by filter) —
  // a debugging aid for filter-set authors.
  std::string dump_dot() const;
  std::size_t rebuild_count() const { return rebuilds_; }
  void prepare() const override {
    if (dirty_) rebuild();
  }

  // Incremental update: re-derives the root with the build memo retained, so
  // every (level, candidate-set) pair untouched by the batch resolves to the
  // node already in the arena and only affected paths are built anew. Record
  // ids are never reused and filters are immutable, which is what makes a
  // memo hit safe: the reused subgraph can only reference ids in its key,
  // all live. Superseded nodes become garbage swept by the next compaction.
  void patch() const override;
  std::size_t patch_count() const { return patches_; }
  // Nodes reachable from the root — excludes garbage retained by patching.
  std::size_t reachable_node_count() const;

 private:
  // Field indices in tuple order; 6 == leaf.
  enum : int { kSrc = 0, kDst, kProto, kSport, kDport, kIface, kLeaf };

  struct Node {
    std::uint8_t level{kLeaf};
    // kSrc/kDst: per-family LPM over edge prefixes; value = edge index.
    std::unique_ptr<bmp::LpmEngine> lpm4;
    std::unique_ptr<bmp::LpmEngine> lpm6;
    std::vector<std::int32_t> addr_targets;
    // kSport/kDport: exact ports fast path + ranges sorted narrowest-first.
    std::unordered_map<std::uint16_t, std::int32_t> port_exact;
    std::vector<std::pair<PortSpec, std::int32_t>> ranges;
    // kProto/kIface: exact map.
    std::unordered_map<std::uint32_t, std::int32_t> exact;
    // Every non-leaf level: sub-DAG over the filters that leave this field
    // unconstrained. Hoisting them here (rather than replicating them into
    // every specific edge's subtree, classic set-pruning) keeps subgraph
    // memo keys stable under wildcard churn; lookup descends this edge in
    // addition to the matched specific edge and keeps the better result.
    std::int32_t wild{-1};
    // kLeaf:
    const FilterRecord* leaf{nullptr};
  };

  void rebuild() const;
  // Mark-and-copy GC over the arena: drops garbage nodes, remaps the memo,
  // frees the graveyard. Keeps patch() incremental across compactions.
  void compact() const;
  std::int32_t build(int level,
                     const std::vector<const FilterRecord*>& cand) const;
  std::int32_t walk(const Node& n, const pkt::FlowKey& key) const;
  const FilterRecord* match_from(std::int32_t idx,
                                 const pkt::FlowKey& key) const;

  Options opt_{};
  std::vector<std::unique_ptr<FilterRecord>> records_;
  std::uint32_t next_id_{1};

  // Removed records are tombstoned here instead of destroyed: until the
  // next patch/rebuild, garbage nodes may still hold leaf pointers to them
  // (never dereferenced on lookup — they are unreachable — but dump_dot
  // walks the whole arena). Compaction finally frees them.
  mutable std::vector<std::unique_ptr<FilterRecord>> graveyard_;

  // Mutations mark the structure dirty; it is rebuilt lazily on the next
  // lookup (filter installation is a control-path operation) unless the
  // control plane patches it in first.
  mutable bool dirty_{false};
  mutable std::vector<Node> nodes_;
  mutable std::int32_t root_{-1};
  mutable std::size_t rebuilds_{0};
  mutable std::size_t patches_{0};

  // Build memoization: (level, candidate ids) -> node; this is what makes
  // the structure a DAG rather than a tree. Persisted across builds so
  // patch() can reuse subgraphs; rebuild() resets it with the arena.
  mutable std::map<std::pair<int, std::vector<std::uint32_t>>, std::int32_t>
      memo_;
};

// ---------------------------------------------------------------------------

class LinearFilterTable final : public FilterTableBase {
 public:
  FilterRecord* insert(const Filter& f, plugin::PluginInstance* inst) override;
  Status remove(const Filter& f) override;
  const FilterRecord* lookup(const pkt::FlowKey& key) const override;
  std::size_t size() const override { return records_.size(); }
  std::size_t purge_instance(const plugin::PluginInstance* inst) override;
  std::size_t rebind_instance(plugin::PluginInstance* from,
                              plugin::PluginInstance* to) override;
  std::vector<const FilterRecord*> records() const override;

 private:
  std::vector<std::unique_ptr<FilterRecord>> records_;
  std::uint32_t next_id_{1};
};

// Factory: "dag" or "linear".
std::unique_ptr<FilterTableBase> make_filter_table(
    std::string_view kind, const DagFilterTable::Options& dag_opt = {});

}  // namespace rp::aiu

#include "aiu/flow_table.hpp"

#include <bit>
#include <cassert>

#include "netbase/memaccess.hpp"

namespace rp::aiu {

using netbase::MemAccess;

FlowTable::FlowTable(std::size_t buckets, std::size_t initial_records,
                     std::size_t max_records)
    : max_records_(max_records) {
  buckets_.assign(std::bit_ceil(buckets), -1);
  recs_.resize(initial_records == 0 ? 1 : initial_records);
  for (std::size_t i = 0; i < recs_.size(); ++i)
    recs_[i].hash_next = i + 1 < recs_.size() ? static_cast<std::int32_t>(i + 1)
                                              : -1;
  free_head_ = 0;
}

void FlowTable::grow_free_list() {
  // Exponential growth: 1024, 2048, 4096, ... "to adapt to the environment
  // as fast as possible" (§5.2).
  std::size_t old = recs_.size();
  std::size_t grown = old * 2;
  if (grown > max_records_) grown = max_records_;
  if (grown <= old) return;
  recs_.resize(grown);
  for (std::size_t i = old; i < grown; ++i)
    recs_[i].hash_next = i + 1 < grown ? static_cast<std::int32_t>(i + 1) : -1;
  free_head_ = static_cast<std::int32_t>(old);
  ++stats_.grown;
}

void FlowTable::lru_push_front(pkt::FlowIndex i) {
  recs_[i].lru_prev = -1;
  recs_[i].lru_next = lru_head_;
  if (lru_head_ >= 0) recs_[lru_head_].lru_prev = i;
  lru_head_ = i;
  if (lru_tail_ < 0) lru_tail_ = i;
}

void FlowTable::lru_unlink(pkt::FlowIndex i) {
  auto& r = recs_[i];
  if (r.lru_prev >= 0)
    recs_[r.lru_prev].lru_next = r.lru_next;
  else
    lru_head_ = r.lru_next;
  if (r.lru_next >= 0)
    recs_[r.lru_next].lru_prev = r.lru_prev;
  else
    lru_tail_ = r.lru_prev;
  r.lru_prev = r.lru_next = -1;
}

void FlowTable::lru_touch(pkt::FlowIndex i) {
  if (lru_head_ == i) return;
  lru_unlink(i);
  lru_push_front(i);
}

void FlowTable::unchain(pkt::FlowIndex i) {
  auto& r = recs_[i];
  std::int32_t* link = &buckets_[r.bucket];
  while (*link >= 0 && *link != i) link = &recs_[*link].hash_next;
  assert(*link == i);
  *link = r.hash_next;
  r.hash_next = -1;
}

pkt::FlowIndex FlowTable::lookup(const pkt::FlowKey& key, std::uint64_t hash,
                                 netbase::SimTime now) {
  MemAccess::count();  // bucket head probe
  std::int32_t i = buckets_[bucket_of(hash)];
  while (i >= 0) {
    MemAccess::count();  // chain entry fetch
    FlowRecord& r = recs_[i];
    if (r.hash == hash && r.key == key) {
      r.last_used = now;
      r.packets++;
      lru_touch(i);
      ++stats_.hits;
      return i;
    }
    i = r.hash_next;
  }
  ++stats_.misses;
  return pkt::kNoFlow;
}

pkt::FlowIndex FlowTable::insert(const pkt::FlowKey& key, std::uint64_t hash,
                                 netbase::SimTime now) {
  if (free_head_ < 0 && recs_.size() < max_records_) grow_free_list();
  pkt::FlowIndex i;
  if (free_head_ >= 0) {
    i = free_head_;
    free_head_ = recs_[i].hash_next;
  } else {
    // Record cap reached: recycle the oldest entry (§5.2 item 4).
    i = lru_tail_;
    assert(i >= 0);
    remove(i, RemoveReason::recycled);
    ++stats_.recycled;
    --stats_.removed;  // recycling is not an explicit removal
    i = free_head_;
    free_head_ = recs_[i].hash_next;
  }

  FlowRecord& r = recs_[i];
  r = FlowRecord{};
  r.key = key;
  r.hash = hash;
  r.last_used = now;
  r.first_seen = now;
  r.in_use = true;
  r.bucket = bucket_of(hash);
  r.hash_next = buckets_[r.bucket];
  buckets_[r.bucket] = i;
  lru_push_front(i);
  ++active_;
  ++stats_.inserts;
  return i;
}

void FlowTable::remove(pkt::FlowIndex i, RemoveReason why) {
  FlowRecord& r = recs_[i];
  if (!r.in_use) return;
  // Give each plugin a chance to free its per-flow soft state.
  for (auto& g : r.gates) {
    if (g.instance && g.soft) g.instance->flow_removed(g.soft);
    g = {};
  }
  // Accounting export point: the record still holds key/packets/bytes.
  if (remove_hook_) remove_hook_(r, why);
  unchain(i);
  lru_unlink(i);
  r.in_use = false;
  r.hash_next = free_head_;
  free_head_ = i;
  --active_;
  ++stats_.removed;
}

std::size_t FlowTable::purge_instance(const plugin::PluginInstance* inst) {
  std::size_t n = 0;
  for (std::size_t i = 0; i < recs_.size(); ++i) {
    if (!recs_[i].in_use) continue;
    for (const auto& g : recs_[i].gates) {
      if (g.instance == inst) {
        remove(static_cast<pkt::FlowIndex>(i), RemoveReason::purged);
        ++n;
        break;
      }
    }
  }
  return n;
}

std::size_t FlowTable::purge_filter(const FilterRecord* filter) {
  std::size_t n = 0;
  for (std::size_t i = 0; i < recs_.size(); ++i) {
    if (!recs_[i].in_use) continue;
    for (const auto& g : recs_[i].gates) {
      if (g.filter == filter) {
        remove(static_cast<pkt::FlowIndex>(i), RemoveReason::purged);
        ++n;
        break;
      }
    }
  }
  return n;
}

std::size_t FlowTable::expire_idle(netbase::SimTime cutoff) {
  std::size_t n = 0;
  // Walk from the LRU tail; stop at the first fresh entry.
  while (lru_tail_ >= 0 && recs_[lru_tail_].last_used < cutoff) {
    remove(lru_tail_, RemoveReason::expired);
    ++n;
  }
  return n;
}

void FlowTable::clear() {
  for (std::size_t i = 0; i < recs_.size(); ++i)
    if (recs_[i].in_use)
      remove(static_cast<pkt::FlowIndex>(i), RemoveReason::cleared);
}

}  // namespace rp::aiu

#include "aiu/grid_of_tries.hpp"

#include <algorithm>

#include "netbase/memaccess.hpp"

namespace rp::aiu {

using netbase::IpVersion;
using netbase::MemAccess;
using netbase::U128;

GridOfTries::GridOfTries() = default;
GridOfTries::~GridOfTries() = default;

const FilterRecord* GridOfTries::better(const FilterRecord* a,
                                        const FilterRecord* b) {
  if (!a) return b;
  if (!b) return a;
  int c = compare_specificity(a->filter, b->filter);
  if (c > 0) return a;
  if (c < 0) return b;
  return a->id <= b->id ? a : b;
}

FilterRecord* GridOfTries::insert(const Filter& f,
                                  plugin::PluginInstance* inst) {
  // Two-dimensional filters only.
  if (!f.proto.wild || !f.sport.is_wild() || !f.dport.is_wild() ||
      !f.in_iface.wild)
    return nullptr;
  for (auto& r : records_) {
    if (r->filter == f) {
      r->instance = inst;
      return r.get();
    }
  }
  auto rec = std::make_unique<FilterRecord>();
  rec->filter = f;
  rec->instance = inst;
  rec->id = next_id_++;
  FilterRecord* out = rec.get();
  records_.push_back(std::move(rec));
  dirty_ = true;
  return out;
}

Status GridOfTries::remove(const Filter& f) {
  auto before = records_.size();
  std::erase_if(records_, [&](auto& r) { return r->filter == f; });
  if (records_.size() == before) return Status::not_found;
  dirty_ = true;
  return Status::ok;
}

std::size_t GridOfTries::purge_instance(const plugin::PluginInstance* inst) {
  auto before = records_.size();
  std::erase_if(records_, [&](auto& r) { return r->instance == inst; });
  if (records_.size() != before) dirty_ = true;
  return before - records_.size();
}

std::vector<const FilterRecord*> GridOfTries::records() const {
  std::vector<const FilterRecord*> out;
  out.reserve(records_.size());
  for (auto& r : records_) out.push_back(r.get());
  return out;
}

std::int32_t GridOfTries::src_insert(U128 key, unsigned len) const {
  // One bit per level from the (family) root created by rebuild().
  std::int32_t cur = static_cast<std::int32_t>(src_root_current_);
  for (unsigned d = 0; d < len; ++d) {
    int b = key.bit(d) ? 1 : 0;
    if (src_nodes_[cur].child[b] == kNil) {
      src_nodes_.push_back({});
      src_nodes_.back().parent = cur;
      src_nodes_.back().depth = static_cast<std::uint8_t>(d + 1);
      src_nodes_[cur].child[b] = static_cast<std::int32_t>(src_nodes_.size() - 1);
    }
    cur = src_nodes_[cur].child[b];
  }
  return cur;
}

std::int32_t GridOfTries::dst_insert(std::int32_t trie_root, U128 key,
                                     unsigned len) const {
  std::int32_t cur = trie_root;
  for (unsigned d = 0; d < len; ++d) {
    int b = key.bit(d) ? 1 : 0;
    if (dst_nodes_[cur].child[b] == kNil) {
      dst_nodes_.push_back({});
      dst_nodes_.back().depth = static_cast<std::uint8_t>(d + 1);
      PathInfo pi;
      pi.path = (paths_[cur].path) |
                (b ? (U128{0x8000000000000000ULL, 0} >> d) : U128{});
      pi.len = d + 1;
      pi.trie_of_src = paths_[cur].trie_of_src;
      paths_.push_back(pi);
      dst_nodes_[cur].child[b] = static_cast<std::int32_t>(dst_nodes_.size() - 1);
    }
    cur = dst_nodes_[cur].child[b];
  }
  return cur;
}

std::int32_t GridOfTries::deepest_on_path(std::int32_t root, U128 path,
                                          unsigned len, bool* exact_len) const {
  if (root == kNil) {
    if (exact_len) *exact_len = false;
    return kNil;
  }
  std::int32_t cur = root;
  unsigned d = 0;
  while (d < len) {
    std::int32_t next = dst_nodes_[cur].child[path.bit(d) ? 1 : 0];
    if (next == kNil) break;
    cur = next;
    ++d;
  }
  if (exact_len) *exact_len = (d == len);
  return cur;
}

void GridOfTries::rebuild() const {
  src_nodes_.clear();
  dst_nodes_.clear();
  paths_.clear();
  dirty_ = false;

  // Family roots: index 0 = IPv4 source root, 1 = IPv6 source root.
  src_nodes_.push_back({});
  src_nodes_.push_back({});

  auto ensure_trie = [&](std::int32_t snode) {
    if (src_nodes_[snode].trie_root == kNil) {
      dst_nodes_.push_back({});
      paths_.push_back({});
      paths_.back().trie_of_src = snode;
      src_nodes_[snode].trie_root =
          static_cast<std::int32_t>(dst_nodes_.size() - 1);
    }
    return src_nodes_[snode].trie_root;
  };

  auto insert_into_family = [&](std::size_t root, const FilterRecord* r) {
    src_root_current_ = root;
    std::int32_t snode = src_insert(r->filter.src.addr.key(), r->filter.src.len);
    src_nodes_[snode].is_prefix = true;
    std::int32_t troot = ensure_trie(snode);
    std::int32_t dnode =
        dst_insert(troot, r->filter.dst.addr.key(), r->filter.dst.len);
    dst_nodes_[dnode].exact = better(dst_nodes_[dnode].exact, r);
  };

  for (const auto& r : records_) {
    const auto& f = r->filter;
    bool v4 = false, v6 = false;
    if (f.src.len > 0)
      (f.src.addr.ver == IpVersion::v4 ? v4 : v6) = true;
    else if (f.dst.len > 0)
      (f.dst.addr.ver == IpVersion::v4 ? v4 : v6) = true;
    else
      v4 = v6 = true;  // fully wildcarded addresses match both families
    if (v4) insert_into_family(0, r.get());
    if (v6) insert_into_family(1, r.get());
  }
  total_dst_nodes_ = dst_nodes_.size();

  // Order src nodes by depth so ancestor tries are finished first.
  std::vector<std::int32_t> src_order;
  src_order.reserve(src_nodes_.size());
  for (std::size_t i = 0; i < src_nodes_.size(); ++i)
    src_order.push_back(static_cast<std::int32_t>(i));
  std::sort(src_order.begin(), src_order.end(),
            [&](std::int32_t a, std::int32_t b) {
              return src_nodes_[a].depth < src_nodes_[b].depth;
            });

  auto nearest_ancestor_trie = [&](std::int32_t snode) {
    for (std::int32_t s = src_nodes_[snode].parent; s != kNil;
         s = src_nodes_[s].parent)
      if (src_nodes_[s].trie_root != kNil) return src_nodes_[s].trie_root;
    return kNil;
  };

  // stored + switch pointers, per source node in depth order, dst nodes in
  // BFS order within each trie.
  for (std::int32_t snode : src_order) {
    std::int32_t troot = src_nodes_[snode].trie_root;
    if (troot == kNil) continue;
    std::int32_t anc_root = nearest_ancestor_trie(snode);

    std::vector<std::pair<std::int32_t, std::int32_t>> bfs{{troot, kNil}};
    for (std::size_t i = 0; i < bfs.size(); ++i) {
      auto [u, parent] = bfs[i];
      DstNode& n = dst_nodes_[u];
      n.stored = better(n.exact, parent == kNil ? nullptr
                                                : dst_nodes_[parent].stored);
      // Inherit the best filter visible at this path in ancestor tries.
      if (anc_root != kNil) {
        std::int32_t inh =
            deepest_on_path(anc_root, paths_[u].path, paths_[u].len, nullptr);
        if (inh != kNil) n.stored = better(n.stored, dst_nodes_[inh].stored);
      }
      for (int b = 0; b < 2; ++b) {
        if (n.child[b] != kNil) {
          bfs.emplace_back(n.child[b], u);
          continue;
        }
        // Switch pointer: the node at path·b in the nearest source
        // ancestor's trie that actually contains it.
        U128 ext = paths_[u].path |
                   (b ? (U128{0x8000000000000000ULL, 0} >> paths_[u].len)
                      : U128{});
        for (std::int32_t s = src_nodes_[snode].parent; s != kNil;
             s = src_nodes_[s].parent) {
          if (src_nodes_[s].trie_root == kNil) continue;
          bool exact = false;
          std::int32_t t = deepest_on_path(src_nodes_[s].trie_root, ext,
                                           paths_[u].len + 1, &exact);
          if (t != kNil && exact) {
            n.jump[b] = t;
            break;
          }
        }
      }
    }
  }
}

const FilterRecord* GridOfTries::lookup(const pkt::FlowKey& key) const {
  if (dirty_) rebuild();
  if (src_nodes_.empty()) return nullptr;

  const std::size_t root = key.src.ver == IpVersion::v4 ? 0 : 1;
  const U128 src = key.src.key();
  const U128 dst = key.dst.key();
  const unsigned width = key.src.width();

  // Walk the source trie along the packet bits; remember the deepest node
  // with a destination trie (its stored/jump structure reaches ancestors).
  std::int32_t cur = static_cast<std::int32_t>(root);
  std::int32_t start = src_nodes_[cur].trie_root;
  MemAccess::count();
  for (unsigned d = 0; d < width; ++d) {
    std::int32_t next = src_nodes_[cur].child[src.bit(d) ? 1 : 0];
    if (next == kNil) break;
    MemAccess::count();
    cur = next;
    if (src_nodes_[cur].trie_root != kNil) start = src_nodes_[cur].trie_root;
  }
  if (start == kNil) return nullptr;

  const FilterRecord* best = nullptr;
  std::int32_t u = start;
  MemAccess::count();
  best = better(best, dst_nodes_[u].stored);
  const unsigned dwidth = key.dst.width();
  for (unsigned d = 0; d < dwidth; ++d) {
    const int b = dst.bit(d) ? 1 : 0;
    std::int32_t next = dst_nodes_[u].child[b];
    if (next == kNil) next = dst_nodes_[u].jump[b];
    if (next == kNil) break;
    MemAccess::count();
    u = next;
    best = better(best, dst_nodes_[u].stored);
  }
  return best;
}

}  // namespace rp::aiu

// Flow table (Section 5.2): the hash-based cache of per-flow state.
//
// Each entry corresponds to one fully-specified flow and stores, for every
// gate in the core, the bound plugin instance plus a per-flow soft-state
// pointer for that instance, and a back-pointer to the filter record the
// binding was derived from. Collisions chain on a singly linked list; the
// bucket array (default 32768) is allocated up front. Records come from a
// free list seeded with 1024 entries that doubles on exhaustion
// (1024, 2048, 4096, ...) up to a configurable maximum, after which the
// least recently used entries are recycled — all exactly as in §5.2.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "aiu/filter_table.hpp"
#include "netbase/clock.hpp"
#include "pkt/packet.hpp"

namespace rp::aiu {

// One gate slot per plugin type (types 1..9; slot 0 unused).
constexpr std::size_t kNumGates = 10;
static_assert(kNumGates <= 32, "FlowRecord::bound_mask is a 32-bit mask");

constexpr std::size_t gate_index(plugin::PluginType t) noexcept {
  return static_cast<std::size_t>(t);
}

struct GateBinding {
  plugin::PluginInstance* instance{nullptr};
  void* soft{nullptr};                   // per-flow soft state for the plugin
  const FilterRecord* filter{nullptr};   // filter this binding derives from
};

struct FlowRecord {
  pkt::FlowKey key{};
  std::uint64_t hash{0};  // full key hash, compared before the key itself
  // Bit `gate_index(g)` set iff gates[gate_index(g)] has a bound instance.
  // Written at classification time, so the core can skip a whole gate for a
  // burst chunk with one mask test instead of touching every binding. Any
  // filter change flushes the cache; the only in-place mutation is the L7
  // verdict-cache offload (Aiu's flow-offload hook clears one binding and
  // its mask bit once a flow is judged clean — same-thread with dispatch,
  // and only ever *removing* work, so in-flight chunks stay correct).
  std::uint32_t bound_mask{0};
  GateBinding gates[kNumGates]{};
  netbase::SimTime last_used{0};
  netbase::SimTime first_seen{0};
  std::uint64_t packets{0};
  // L3 bytes at ingress, accumulated by the AIU's burst resolver; together
  // with packets/first_seen/last_used this makes every entry a NetFlow-style
  // accounting record the telemetry subsystem exports when the entry dies.
  std::uint64_t bytes{0};
  bool in_use{false};

  std::int32_t hash_next{-1};
  std::uint32_t bucket{0};
  std::int32_t lru_prev{-1};
  std::int32_t lru_next{-1};
};

class FlowTable {
 public:
  // Why an entry is leaving the table; forwarded to the remove hook so a
  // flow-export subsystem can label its records.
  enum class RemoveReason : std::uint8_t {
    removed = 0,  // explicit remove()
    recycled,     // LRU eviction at the record cap
    expired,      // idle-timeout sweep
    purged,       // instance/filter teardown
    cleared,      // table flush
  };
  // Observes every entry removal, after the flow_removed plugin callbacks
  // and before the record is wiped (control path only; remove is never on
  // the per-packet fast path).
  using RemoveHook = std::function<void(const FlowRecord&, RemoveReason)>;

  struct Stats {
    std::uint64_t hits{0};
    std::uint64_t misses{0};
    std::uint64_t inserts{0};
    std::uint64_t recycled{0};   // LRU evictions at the record cap
    std::uint64_t removed{0};
    std::uint64_t grown{0};      // free-list doubling events
  };

  explicit FlowTable(std::size_t buckets = 32768,
                     std::size_t initial_records = 1024,
                     std::size_t max_records = 1 << 20);

  // Destruction notifies every bound instance (flow_removed) so plugins
  // drop their soft-state back-pointers into this table before it is freed.
  ~FlowTable() { clear(); }

  // Data-path lookup; counts one memory access for the bucket probe plus one
  // per chain link traversed. A hit refreshes LRU position and last_used.
  pkt::FlowIndex lookup(const pkt::FlowKey& key, netbase::SimTime now) {
    return lookup(key, key.hash(), now);
  }
  // Two-stage variant: the burst path hashes a whole burst first (issuing
  // prefetches in between), then probes with the precomputed hash.
  pkt::FlowIndex lookup(const pkt::FlowKey& key, std::uint64_t hash,
                        netbase::SimTime now);

  // Inserts a record for `key` (which must not be present). May grow the
  // free list or recycle the LRU entry. Never fails.
  pkt::FlowIndex insert(const pkt::FlowKey& key, netbase::SimTime now) {
    return insert(key, key.hash(), now);
  }
  pkt::FlowIndex insert(const pkt::FlowKey& key, std::uint64_t hash,
                        netbase::SimTime now);

  // Pulls the bucket head for `hash` toward the cache ahead of a lookup.
  void prefetch(std::uint64_t hash) const noexcept {
    __builtin_prefetch(&buckets_[bucket_of(hash)]);
  }
  // Second prefetch stage: once the bucket head is resident, pull the first
  // chained FlowRecord. Two lines: the first covers key+hash (the compare),
  // the second the start of the gate bindings the core reads right after.
  void prefetch_record(std::uint64_t hash) const noexcept {
    const std::int32_t i = buckets_[bucket_of(hash)];
    if (i >= 0) {
      const char* r = reinterpret_cast<const char*>(&recs_[i]);
      __builtin_prefetch(r);
      __builtin_prefetch(r + 64);
    }
  }

  // Refreshes a known-live entry without re-probing the hash chain — the
  // burst path's last-flow memo uses this so back-to-back packets of one
  // flow skip the probe entirely. Accounting matches a lookup hit.
  void touch(pkt::FlowIndex i, netbase::SimTime now) {
    FlowRecord& r = recs_[i];
    r.last_used = now;
    r.packets++;
    lru_touch(i);
    ++stats_.hits;
  }

  FlowRecord& rec(pkt::FlowIndex i) noexcept { return recs_[i]; }
  const FlowRecord& rec(pkt::FlowIndex i) const noexcept { return recs_[i]; }

  // Removes an entry, invoking each bound instance's flow_removed callback
  // for its soft state.
  void remove(pkt::FlowIndex i) { remove(i, RemoveReason::removed); }
  void remove(pkt::FlowIndex i, RemoveReason why);

  void set_remove_hook(RemoveHook hook) { remove_hook_ = std::move(hook); }

  // Removes every flow with a binding to `inst` / derived from `filter`.
  std::size_t purge_instance(const plugin::PluginInstance* inst);
  std::size_t purge_filter(const FilterRecord* filter);
  // Removes flows idle since before `cutoff`; returns how many.
  std::size_t expire_idle(netbase::SimTime cutoff);
  void clear();

  std::size_t active() const noexcept { return active_; }
  std::size_t capacity() const noexcept { return recs_.size(); }
  std::size_t max_records() const noexcept { return max_records_; }
  std::size_t bucket_count() const noexcept { return buckets_.size(); }
  const Stats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = {}; }

 private:
  std::uint32_t bucket_of(std::uint64_t hash) const noexcept {
    return static_cast<std::uint32_t>(hash & (buckets_.size() - 1));
  }
  void grow_free_list();
  void lru_push_front(pkt::FlowIndex i);
  void lru_unlink(pkt::FlowIndex i);
  void lru_touch(pkt::FlowIndex i);
  void unchain(pkt::FlowIndex i);

  std::vector<FlowRecord> recs_;
  std::vector<std::int32_t> buckets_;
  std::int32_t free_head_{-1};
  std::int32_t lru_head_{-1};  // most recently used
  std::int32_t lru_tail_{-1};  // least recently used
  std::size_t max_records_;
  std::size_t active_{0};
  Stats stats_;
  RemoveHook remove_hook_;
};

}  // namespace rp::aiu

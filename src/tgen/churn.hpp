// Control-plane churn schedules: seeded, replayable route and filter
// add/withdraw batch streams, shared by the differential churn tests
// (tests/test_churn.cpp) and bench_t11_churn. Like everything in tgen the
// generators are pure functions of their spec, so a failing seed replays
// exactly (REPLAY-style) in a regression test.
#pragma once

#include <cstdint>
#include <vector>

#include "aiu/filter.hpp"
#include "route/routing_table.hpp"
#include "tgen/workload.hpp"

namespace rp::tgen {

// -- route churn -----------------------------------------------------------

struct RouteChurnSpec {
  std::size_t base_prefixes{10000};  // initial table size (deduplicated)
  std::size_t ops{1000};             // total churn operations
  std::size_t batch_size{64};        // ops per published batch
  // Per-op mix; the remainder adds a fresh prefix. Withdraw/nexthop ops
  // always target a currently-live prefix, so every batch is applicable.
  double p_withdraw{0.3};
  double p_nexthop_change{0.3};
  netbase::IpVersion ver{netbase::IpVersion::v4};
  unsigned min_len{16}, max_len{24};  // plen band for fresh prefixes
  std::uint32_t ifaces{4};            // next hops drawn from if0..if(n-1)
  std::uint64_t seed{11};
};

struct RouteChurn {
  // Initial table: base[i] routed to base_hops[i].
  std::vector<netbase::IpPrefix> base;
  std::vector<route::NextHop> base_hops;
  // The churn schedule, already cut into batches.
  std::vector<std::vector<route::RouteOp>> batches;
};

RouteChurn route_churn(const RouteChurnSpec& spec);

// -- filter churn ----------------------------------------------------------

struct FilterChurnOp {
  bool remove{false};
  aiu::Filter filter{};
};

struct FilterChurnSpec {
  FilterSetSpec base{};       // initial filter set (count, distributions)
  std::size_t ops{500};
  std::size_t batch_size{32};
  double p_remove{0.5};       // removes target a currently-live filter
  std::uint64_t seed{13};
};

struct FilterChurn {
  std::vector<aiu::Filter> base;
  std::vector<std::vector<FilterChurnOp>> batches;
};

FilterChurn filter_churn(const FilterChurnSpec& spec);

}  // namespace rp::tgen

#include "tgen/trace.hpp"

#include <charconv>
#include <cstdio>

#include "pkt/headers.hpp"

namespace rp::tgen {

std::size_t write_trace(const std::vector<Arrival>& arrivals,
                        std::string& out) {
  std::size_t n = 0;
  char line[256];
  for (const auto& a : arrivals) {
    if (!a.p) continue;
    const auto& k = a.p->key;
    const bool udp = k.proto == static_cast<std::uint8_t>(pkt::IpProto::udp);
    const bool tcp = k.proto == static_cast<std::uint8_t>(pkt::IpProto::tcp);
    if (!udp && !tcp) continue;
    const std::size_t l4_hdr =
        udp ? pkt::UdpHeader::kSize : pkt::TcpHeader::kMinSize;
    const std::size_t payload = a.p->size() - a.p->l4_offset - l4_hdr;
    const std::uint8_t ttl = a.p->ip_version == netbase::IpVersion::v4
                                 ? a.p->data()[8]
                                 : a.p->data()[7];
    std::snprintf(line, sizeof line, "%lld %u %s %s %s %u %u %zu %u\n",
                  static_cast<long long>(a.t), a.iface, udp ? "udp" : "tcp",
                  k.src.to_string().c_str(), k.dst.to_string().c_str(),
                  k.sport, k.dport, payload, ttl);
    out += line;
    ++n;
  }
  return n;
}

bool read_trace(std::string_view text, std::vector<Arrival>& out,
                std::size_t* error_line) {
  std::size_t line_no = 0;
  std::size_t pos = 0;
  auto fail = [&] {
    if (error_line) *error_line = line_no;
    return false;
  };

  while (pos < text.size()) {
    ++line_no;
    std::size_t nl = text.find('\n', pos);
    std::string_view line =
        text.substr(pos, nl == std::string_view::npos ? nl : nl - pos);
    pos = nl == std::string_view::npos ? text.size() : nl + 1;

    // Tokenize on spaces.
    std::vector<std::string_view> tok;
    std::size_t i = 0;
    while (i < line.size()) {
      while (i < line.size() && line[i] == ' ') ++i;
      std::size_t j = i;
      while (j < line.size() && line[j] != ' ') ++j;
      if (j > i) tok.push_back(line.substr(i, j - i));
      i = j;
    }
    if (tok.empty() || tok[0][0] == '#') continue;
    if (tok.size() < 8 || tok.size() > 9) return fail();

    auto num = [](std::string_view s, long long& v) {
      auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
      return ec == std::errc{} && p == s.data() + s.size();
    };
    long long t, iface, sport, dport, payload, ttl = 64;
    if (!num(tok[0], t) || !num(tok[1], iface) || !num(tok[5], sport) ||
        !num(tok[6], dport) || !num(tok[7], payload))
      return fail();
    if (tok.size() == 9 && !num(tok[8], ttl)) return fail();
    if (iface < 0 || iface >= pkt::kAnyIface || sport < 0 || sport > 65535 ||
        dport < 0 || dport > 65535 || payload < 0 || payload > 65000 ||
        ttl < 1 || ttl > 255 || t < 0)
      return fail();
    auto src = netbase::IpAddr::parse(tok[3]);
    auto dst = netbase::IpAddr::parse(tok[4]);
    if (!src || !dst || src->ver != dst->ver) return fail();

    pkt::PacketPtr p;
    if (tok[2] == "udp") {
      pkt::UdpSpec s;
      s.src = *src;
      s.dst = *dst;
      s.sport = static_cast<std::uint16_t>(sport);
      s.dport = static_cast<std::uint16_t>(dport);
      s.payload_len = static_cast<std::size_t>(payload);
      s.ttl = static_cast<std::uint8_t>(ttl);
      p = pkt::build_udp(s);
    } else if (tok[2] == "tcp") {
      pkt::TcpSpec s;
      s.src = *src;
      s.dst = *dst;
      s.sport = static_cast<std::uint16_t>(sport);
      s.dport = static_cast<std::uint16_t>(dport);
      s.payload_len = static_cast<std::size_t>(payload);
      s.ttl = static_cast<std::uint8_t>(ttl);
      p = pkt::build_tcp(s);
    } else {
      return fail();
    }
    out.push_back({t, static_cast<pkt::IfIndex>(iface), std::move(p)});
  }
  return true;
}

}  // namespace rp::tgen

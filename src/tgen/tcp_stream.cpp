#include "tgen/tcp_stream.hpp"

#include <algorithm>

namespace rp::tgen {

namespace {

constexpr std::uint8_t kSyn = 0x02;
constexpr std::uint8_t kAck = 0x10;
constexpr std::uint8_t kFin = 0x01;

// One wire segment before packetization. `pinned` marks arrivals the
// evasion mutator must not displace (per-direction sequence-base anchors).
struct Seg {
  bool reverse{false};  // server -> client
  std::uint32_t seq{0};
  std::uint32_t ack{0};
  std::uint8_t flags{kAck};
  std::vector<std::uint8_t> bytes;
  bool pinned{false};
  bool data{false};  // carries true stream payload (mutation target)
};

std::vector<Seg> conversation(const TcpStreamSpec& spec) {
  std::vector<Seg> segs;
  const std::uint32_t cbase = spec.client_isn + 1;
  const std::uint32_t sbase = spec.server_isn + 1;

  if (spec.handshake) {
    segs.push_back({false, spec.client_isn, 0, kSyn, {}, true, false});
    segs.push_back(
        {true, spec.server_isn, cbase, kSyn | kAck, {}, true, false});
    segs.push_back({false, cbase, sbase, kAck, {}, false, false});
  }

  // Cut both streams into MSS segments, interleaved round-robin so the two
  // directions progress together (a request/response-ish shape without
  // modeling application turns).
  const std::size_t mss = spec.mss ? spec.mss : 512;
  std::size_t coff = 0, soff = 0;
  bool cfirst = true, sfirst = true;
  while (coff < spec.payload.size() || soff < spec.reverse_payload.size()) {
    if (coff < spec.payload.size()) {
      const std::size_t n = std::min(mss, spec.payload.size() - coff);
      Seg s{false, static_cast<std::uint32_t>(cbase + coff), sbase, kAck,
            {spec.payload.begin() + coff, spec.payload.begin() + coff + n},
            false, true};
      // Without a handshake the first data segment is the sync anchor.
      s.pinned = !spec.handshake && cfirst;
      cfirst = false;
      segs.push_back(std::move(s));
      coff += n;
    }
    if (soff < spec.reverse_payload.size()) {
      const std::size_t n =
          std::min(mss, spec.reverse_payload.size() - soff);
      Seg s{true, static_cast<std::uint32_t>(sbase + soff), cbase, kAck,
            {spec.reverse_payload.begin() + soff,
             spec.reverse_payload.begin() + soff + n},
            false, true};
      s.pinned = !spec.handshake && sfirst;
      sfirst = false;
      segs.push_back(std::move(s));
      soff += n;
    }
  }

  if (spec.fin) {
    segs.push_back({false, static_cast<std::uint32_t>(cbase + coff), sbase,
                    kFin | kAck, {}, false, false});
    segs.push_back({true, static_cast<std::uint32_t>(sbase + soff), cbase,
                    kFin | kAck, {}, false, false});
  }
  return segs;
}

std::vector<Arrival> packetize(const TcpStreamSpec& spec,
                               const std::vector<Seg>& segs) {
  std::vector<Arrival> out;
  out.reserve(segs.size());
  netbase::SimTime t = spec.start;
  for (const Seg& s : segs) {
    pkt::TcpSpec ts;
    if (s.reverse) {
      ts.src = spec.ep.dst;
      ts.dst = spec.ep.src;
      ts.sport = spec.ep.dport;
      ts.dport = spec.ep.sport;
    } else {
      ts.src = spec.ep.src;
      ts.dst = spec.ep.dst;
      ts.sport = spec.ep.sport;
      ts.dport = spec.ep.dport;
    }
    ts.seq = s.seq;
    ts.ack = s.ack;
    ts.flags = s.flags;
    ts.payload_len = s.bytes.size();
    ts.payload = s.bytes.empty() ? nullptr : s.bytes.data();
    Arrival a;
    a.t = t;
    a.iface = s.reverse ? spec.reverse_iface : spec.ep.in_iface;
    a.p = pkt::build_tcp(ts);
    a.p->arrival = t;
    a.p->in_iface = a.iface;
    // build_tcp caches the flow key before the arrival iface is known;
    // restamp it so the packet looks exactly like one extracted on ingress.
    a.p->key.in_iface = a.iface;
    a.p->invalidate_flow_hash();
    out.push_back(std::move(a));
    t += spec.interval;
  }
  return out;
}

}  // namespace

std::vector<Arrival> tcp_stream(const TcpStreamSpec& spec) {
  return packetize(spec, conversation(spec));
}

std::vector<Arrival> tcp_stream_evasion(const TcpStreamSpec& spec,
                                        const EvasionSpec& ev) {
  netbase::Rng rng(ev.seed);
  std::vector<Seg> segs = conversation(spec);

  // 1. Tiny-segment splitting: replace a data segment with consecutive
  //    1-8 byte slivers covering the same sequence range (true content, so
  //    any later passes may still move them freely).
  if (ev.tiny_split_prob > 0) {
    std::vector<Seg> split;
    split.reserve(segs.size());
    for (Seg& s : segs) {
      if (!s.data || s.pinned || s.bytes.size() <= 1 ||
          !rng.chance(ev.tiny_split_prob)) {
        split.push_back(std::move(s));
        continue;
      }
      std::size_t off = 0;
      bool first = true;
      while (off < s.bytes.size()) {
        const std::size_t n = std::min<std::size_t>(
            rng.range(1, 8), s.bytes.size() - off);
        Seg t{s.reverse, static_cast<std::uint32_t>(s.seq + off), s.ack,
              s.flags,
              {s.bytes.begin() + off, s.bytes.begin() + off + n},
              s.pinned && first, true};
        first = false;
        split.push_back(std::move(t));
        off += n;
      }
    }
    segs = std::move(split);
  }

  // 2. Bounded reordering of true segments. All content is true at this
  //    point, so any permutation keeps the first-wins oracle — except for
  //    the pinned per-direction anchors, which must stay put.
  if (ev.reorder_window > 0) {
    for (std::size_t i = 0; i < segs.size(); ++i) {
      if (segs[i].pinned) continue;
      const std::size_t hi =
          std::min(segs.size() - 1, i + ev.reorder_window);
      std::size_t j = rng.range(i, hi);
      if (j != i && !segs[j].pinned) std::swap(segs[i], segs[j]);
    }
  }

  // 3. Overlap rewrites: immediately after a true data segment, emit a
  //    garbage copy of the same sequence range. Arriving second, the
  //    first-wins policy discards every byte of it; a last-wins or
  //    unnormalized inspector would see the garbage instead.
  // 3b. Spanning rewrites: a data segment [a,b) is replaced by its true
  //    suffix [m,b) followed by a full-range copy whose suffix is garbage.
  //    The garbage copy arrives with [m,b) already buffered, so it spans a
  //    piece whose boundaries differ from its own — first-wins must clip
  //    the in-order delivery around the buffered first copy.
  // 4. Exact-duplicate retransmits: true content re-sent at the tail of
  //    the conversation (late retransmit permutation — safe anywhere).
  std::vector<Seg> out;
  std::vector<Seg> late;
  out.reserve(segs.size());
  for (Seg& s : segs) {
    const bool data = s.data;
    const bool rewrite = data && rng.chance(ev.overlap_rewrite_prob);
    const bool span = data && !s.pinned && s.bytes.size() >= 2 &&
                      rng.chance(ev.span_rewrite_prob);
    const bool dup = data && rng.chance(ev.dup_prob);
    if (dup) late.push_back(s);
    Seg garbage;
    if (rewrite) {
      garbage = s;
      garbage.pinned = false;
      garbage.data = false;
      for (auto& b : garbage.bytes)
        b = static_cast<std::uint8_t>(rng.below(256));
    }
    if (span) {
      const std::size_t m = rng.range(1, s.bytes.size() - 1);
      Seg tail{s.reverse, static_cast<std::uint32_t>(s.seq + m), s.ack,
               s.flags,
               {s.bytes.begin() + static_cast<std::ptrdiff_t>(m),
                s.bytes.end()},
               false, true};
      Seg whole = s;  // true prefix [a,m), garbage suffix [m,b)
      whole.pinned = false;
      whole.data = false;
      for (std::size_t k = m; k < whole.bytes.size(); ++k)
        whole.bytes[k] = static_cast<std::uint8_t>(rng.below(256));
      out.push_back(std::move(tail));
      out.push_back(std::move(whole));
    } else {
      out.push_back(std::move(s));
    }
    if (rewrite) out.push_back(std::move(garbage));
  }
  for (Seg& s : late) {
    s.pinned = false;
    out.push_back(std::move(s));
  }

  return packetize(spec, out);
}

std::vector<std::uint8_t> http_request(const std::string& method,
                                       const std::string& target,
                                       const std::string& host,
                                       const std::string& extra_headers) {
  std::string req = method + " " + target + " HTTP/1.1\r\n" +
                    "Host: " + host + "\r\n" +
                    "User-Agent: rp-tgen\r\n" + extra_headers + "\r\n";
  return {req.begin(), req.end()};
}

std::vector<std::uint8_t> plant(
    std::size_t n, std::uint64_t seed,
    const std::vector<std::pair<std::size_t, std::string>>& patterns) {
  netbase::Rng rng(seed);
  std::vector<std::uint8_t> out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>('a' + rng.below(26));
  for (const auto& [off, pat] : patterns) {
    if (off + pat.size() > out.size()) continue;
    std::copy(pat.begin(), pat.end(), out.begin() + off);
  }
  return out;
}

}  // namespace rp::tgen

// Structure-aware adversarial packet generation for wire-path fuzzing.
//
// Unlike random byte noise, every mutant starts from a well-formed packet
// (built with pkt/builder) and applies one targeted corruption class —
// truncation, length-field lies, extension-header chain abuse, fragment
// overlap/teardrop/oversize series — so the mutants land exactly on the
// branches the ingress sanitizer and parsers must defend. Everything is
// driven by an explicit seed (same replay discipline as test_filter_fuzz:
// one seed reproduces the whole stream).
#pragma once

#include <cstdint>
#include <deque>
#include <string_view>

#include "netbase/rng.hpp"
#include "pkt/packet.hpp"

namespace rp::tgen {

enum class MutationKind : std::uint8_t {
  clean = 0,         // well-formed packet (control group: must forward)
  truncate,          // capture cut short anywhere in the header stack
  v4_total_len_lie,  // total_len inflated past the capture or under the IHL
  v4_ihl_abuse,      // IHL < 5, options past capture/total_len
  udp_len_lie,       // UDP length < 8 or past the datagram end
  tcp_off_abuse,     // TCP data offset < 5 or past the datagram end
  v6_payload_lie,    // payload_len past the capture
  v6_ext_chain,      // ext-header chain: bad lengths, deep chains, frag/AH
  frag_series,       // v4 fragment series: overlap, teardrop, oversize, runs
  random_bytes,      // unstructured garbage (version nibble random too)
  kCount
};

std::string_view to_string(MutationKind k) noexcept;

// Seeded stream of adversarial packets. next() returns one mutant per call
// (fragment series are internally queued and drained one packet at a time,
// so every call yields exactly one packet). The same seed yields the same
// byte-exact stream; `last_kind()`/`index()` label failures for replay.
class AdversarialGen {
 public:
  explicit AdversarialGen(std::uint64_t seed) : rng_(seed) {}

  pkt::PacketPtr next();

  MutationKind last_kind() const noexcept { return kind_; }
  std::uint64_t index() const noexcept { return index_; }  // packets emitted

 private:
  pkt::PacketPtr base_packet();
  pkt::PacketPtr mutate(pkt::PacketPtr p, MutationKind k);
  void queue_frag_series();

  netbase::Rng rng_;
  std::deque<pkt::PacketPtr> pending_;  // rest of a fragment series
  MutationKind kind_{MutationKind::clean};
  std::uint64_t index_{0};
  std::uint16_t next_ip_id_{1};
};

}  // namespace rp::tgen

#include "tgen/churn.hpp"

#include <map>
#include <set>
#include <utility>

namespace rp::tgen {

using netbase::IpAddr;
using netbase::IpPrefix;
using netbase::IpVersion;
using netbase::Rng;
using netbase::U128;

namespace {

IpAddr churn_addr(Rng& rng, IpVersion ver) {
  if (ver == IpVersion::v4)
    return IpAddr(netbase::Ipv4Addr(static_cast<std::uint32_t>(rng.next())));
  return IpAddr(netbase::Ipv6Addr(U128{rng.next(), rng.next()}));
}

route::NextHop random_hop(Rng& rng, std::uint32_t ifaces) {
  route::NextHop hop;
  hop.out_iface = static_cast<pkt::IfIndex>(rng.below(ifaces ? ifaces : 1));
  return hop;
}

}  // namespace

RouteChurn route_churn(const RouteChurnSpec& spec) {
  Rng rng(spec.seed);
  RouteChurn out;

  // Live-set tracking so withdraws always hit and fresh adds never alias an
  // existing prefix (an aliasing add would silently be a next-hop change and
  // skew the op mix).
  using Key = std::pair<U128, std::uint8_t>;
  std::map<Key, std::size_t> index;  // key -> position in live
  std::vector<IpPrefix> live;

  auto fresh_prefix = [&] {
    for (;;) {
      const unsigned len =
          static_cast<unsigned>(rng.range(spec.min_len, spec.max_len));
      IpPrefix p(churn_addr(rng, spec.ver), len);
      if (!index.contains({p.addr.key(), p.len})) return p;
    }
  };
  auto add_live = [&](const IpPrefix& p) {
    index[{p.addr.key(), p.len}] = live.size();
    live.push_back(p);
  };
  auto drop_live = [&](std::size_t i) {
    index.erase({live[i].addr.key(), live[i].len});
    if (i + 1 != live.size()) {
      live[i] = live.back();
      index[{live[i].addr.key(), live[i].len}] = i;
    }
    live.pop_back();
  };

  out.base.reserve(spec.base_prefixes);
  out.base_hops.reserve(spec.base_prefixes);
  while (out.base.size() < spec.base_prefixes) {
    IpPrefix p = fresh_prefix();
    add_live(p);
    out.base.push_back(p);
    out.base_hops.push_back(random_hop(rng, spec.ifaces));
  }

  std::vector<route::RouteOp> batch;
  const std::size_t batch_size = spec.batch_size ? spec.batch_size : 1;
  batch.reserve(batch_size);
  for (std::size_t i = 0; i < spec.ops; ++i) {
    route::RouteOp op;
    const double r = rng.uniform01();
    if (r < spec.p_withdraw && !live.empty()) {
      const std::size_t victim = rng.below(live.size());
      op.kind = route::RouteOp::Kind::withdraw;
      op.prefix = live[victim];
      drop_live(victim);
    } else if (r < spec.p_withdraw + spec.p_nexthop_change && !live.empty()) {
      op.kind = route::RouteOp::Kind::add;  // re-add = next-hop change
      op.prefix = live[rng.below(live.size())];
      op.hop = random_hop(rng, spec.ifaces);
    } else {
      op.kind = route::RouteOp::Kind::add;
      op.prefix = fresh_prefix();
      op.hop = random_hop(rng, spec.ifaces);
      add_live(op.prefix);
    }
    batch.push_back(op);
    if (batch.size() == batch_size) {
      out.batches.push_back(std::move(batch));
      batch = {};
      batch.reserve(batch_size);
    }
  }
  if (!batch.empty()) out.batches.push_back(std::move(batch));
  return out;
}

FilterChurn filter_churn(const FilterChurnSpec& spec) {
  FilterChurn out;
  out.base = random_filters(spec.base);

  // Track liveness by filter value (textual form is the stable identity the
  // management plane uses, too).
  std::set<std::string> live_keys;
  std::vector<aiu::Filter> live;
  auto add_live = [&](const aiu::Filter& f) {
    if (!live_keys.insert(f.to_string()).second) return false;
    live.push_back(f);
    return true;
  };
  for (const auto& f : out.base) add_live(f);

  // Fresh filters come from an independent stream with a derived seed so
  // base and churn sets overlap only by chance-of-construction (dedup below
  // keeps adds genuinely fresh either way).
  FilterSetSpec fresh_spec = spec.base;
  fresh_spec.count = spec.ops;  // upper bound on fresh adds needed
  fresh_spec.seed = spec.seed * 0x9e3779b97f4a7c15ULL + 1;
  std::vector<aiu::Filter> fresh = random_filters(fresh_spec);
  std::size_t fresh_next = 0;

  Rng rng(spec.seed);
  std::vector<FilterChurnOp> batch;
  const std::size_t batch_size = spec.batch_size ? spec.batch_size : 1;
  for (std::size_t i = 0; i < spec.ops; ++i) {
    FilterChurnOp op;
    if (rng.chance(spec.p_remove) && !live.empty()) {
      const std::size_t victim = rng.below(live.size());
      op.remove = true;
      op.filter = live[victim];
      live_keys.erase(op.filter.to_string());
      live[victim] = live.back();
      live.pop_back();
    } else {
      while (fresh_next < fresh.size() && !add_live(fresh[fresh_next]))
        ++fresh_next;
      if (fresh_next >= fresh.size()) continue;  // stream exhausted by dups
      op.remove = false;
      op.filter = fresh[fresh_next++];
    }
    batch.push_back(std::move(op));
    if (batch.size() == batch_size) {
      out.batches.push_back(std::move(batch));
      batch = {};
    }
  }
  if (!batch.empty()) out.batches.push_back(std::move(batch));
  return out;
}

}  // namespace rp::tgen

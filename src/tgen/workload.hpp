// Workload generation: synthetic flow-structured traffic (the substitute
// for the paper's ATM testbed traffic) and random filter databases (the
// substitute for real-world filter patterns, which the paper likewise notes
// are not publicly available — §7.2).
//
// Everything is driven by explicit seeds for reproducibility.
#pragma once

#include <vector>

#include "aiu/filter.hpp"
#include "netbase/clock.hpp"
#include "netbase/rng.hpp"
#include "pkt/builder.hpp"
#include "pkt/packet.hpp"

namespace rp::tgen {

// One scheduled packet arrival at the router.
struct Arrival {
  netbase::SimTime t{0};
  pkt::IfIndex iface{0};
  pkt::PacketPtr p;
};

struct FlowEndpoints {
  netbase::IpAddr src{};
  netbase::IpAddr dst{};
  std::uint8_t proto{static_cast<std::uint8_t>(pkt::IpProto::udp)};
  std::uint16_t sport{0};
  std::uint16_t dport{0};
  pkt::IfIndex in_iface{0};

  pkt::FlowKey key() const {
    return {src, dst, proto, sport, dport, in_iface};
  }
};

FlowEndpoints random_flow(netbase::Rng& rng,
                          netbase::IpVersion ver = netbase::IpVersion::v4,
                          pkt::IfIndex iface = 0);

// Builds one UDP (or TCP) packet for the given endpoints.
pkt::PacketPtr packet_for(const FlowEndpoints& ep, std::size_t payload_len,
                          std::uint8_t ttl = 64);

// Constant-bit-rate flow: `count` packets spaced `interval` apart.
struct CbrSpec {
  FlowEndpoints ep{};
  std::size_t payload_len{512};
  std::size_t count{100};
  netbase::SimTime start{0};
  netbase::SimTime interval{netbase::kNsPerMs};
};
std::vector<Arrival> cbr(const CbrSpec& spec);

// Seeded Zipf(s) sampler over ranks [0, n): inverse-CDF lookup, O(log n)
// per sample, fully reproducible. This is the steering-imbalance knob for
// the multi-queue I/O benches — rank 0 is the hot flow, and with s ≈ 1.1
// the head of the distribution concentrates enough load on one RSS queue
// to make work stealing observable. s = 0 degenerates to uniform.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double s, std::uint64_t seed);
  std::size_t next();                 // a rank in [0, n)
  std::size_t ranks() const noexcept { return cdf_.size(); }
  double s() const noexcept { return s_; }

 private:
  std::vector<double> cdf_;
  double s_;
  netbase::Rng rng_;
};

// Flow mix with Zipf-distributed flow popularity and per-flow packet trains
// (bursts) — the "flow-like characteristics of Internet traffic" the flow
// cache exploits.
struct MixSpec {
  std::size_t n_flows{100};
  std::size_t n_packets{10000};
  double zipf_s{1.0};         // 0 = uniform popularity
  std::size_t burst_len{8};   // consecutive packets from the same flow
  std::size_t payload_len{512};
  netbase::SimTime duration{netbase::kNsPerSec};
  netbase::IpVersion ver{netbase::IpVersion::v4};
  pkt::IfIndex iface{0};
  std::uint64_t seed{1};
};
std::vector<Arrival> flow_mix(const MixSpec& spec);

// Merges pre-sorted arrival streams into one time-sorted stream.
std::vector<Arrival> merge(std::vector<std::vector<Arrival>> streams);

// ---------------------------------------------------------------------------
// Random filter databases.

struct FilterSetSpec {
  std::size_t count{1000};
  netbase::IpVersion ver{netbase::IpVersion::v4};
  double p_wild_src{0.2};    // probability the source address is "*"
  double p_wild_dst{0.2};
  double p_wild_proto{0.3};
  double p_port_exact{0.4};  // else wildcard (ranges added via p_port_range)
  double p_port_range{0.1};
  // Prefix length bands (inclusive) for non-wildcard addresses.
  unsigned v4_min_len{8}, v4_max_len{32};
  unsigned v6_min_len{16}, v6_max_len{64};
  std::uint64_t seed{7};
};

std::vector<aiu::Filter> random_filters(const FilterSetSpec& spec);

// A fully-specified key guaranteed to match `f` (random in the wildcarded
// dimensions).
pkt::FlowKey matching_key(const aiu::Filter& f, netbase::Rng& rng);

// A uniformly random fully-specified key.
pkt::FlowKey random_key(netbase::Rng& rng,
                        netbase::IpVersion ver = netbase::IpVersion::v4);

// Random prefix database for the BMP benches (lengths biased to the 16-24
// band for IPv4, 32-64 for IPv6, like real routing tables).
std::vector<netbase::IpPrefix> random_prefixes(std::size_t count,
                                               netbase::IpVersion ver,
                                               std::uint64_t seed);

}  // namespace rp::tgen

#include "tgen/workload.hpp"

#include <algorithm>
#include <cmath>

namespace rp::tgen {

using netbase::IpAddr;
using netbase::IpVersion;
using netbase::Rng;
using netbase::U128;

namespace {

IpAddr random_addr(Rng& rng, IpVersion ver) {
  if (ver == IpVersion::v4)
    return IpAddr(netbase::Ipv4Addr(static_cast<std::uint32_t>(rng.next())));
  return IpAddr(netbase::Ipv6Addr(U128{rng.next(), rng.next()}));
}

}  // namespace

FlowEndpoints random_flow(Rng& rng, IpVersion ver, pkt::IfIndex iface) {
  FlowEndpoints ep;
  ep.src = random_addr(rng, ver);
  ep.dst = random_addr(rng, ver);
  ep.proto = rng.chance(0.5) ? static_cast<std::uint8_t>(pkt::IpProto::udp)
                             : static_cast<std::uint8_t>(pkt::IpProto::tcp);
  ep.sport = static_cast<std::uint16_t>(rng.range(1024, 65535));
  ep.dport = static_cast<std::uint16_t>(rng.range(1, 1023));
  ep.in_iface = iface;
  return ep;
}

pkt::PacketPtr packet_for(const FlowEndpoints& ep, std::size_t payload_len,
                          std::uint8_t ttl) {
  pkt::PacketPtr p;
  if (ep.proto == static_cast<std::uint8_t>(pkt::IpProto::tcp)) {
    pkt::TcpSpec spec;
    spec.src = ep.src;
    spec.dst = ep.dst;
    spec.sport = ep.sport;
    spec.dport = ep.dport;
    spec.payload_len = payload_len;
    spec.ttl = ttl;
    p = pkt::build_tcp(spec);
  } else {
    pkt::UdpSpec spec;
    spec.src = ep.src;
    spec.dst = ep.dst;
    spec.sport = ep.sport;
    spec.dport = ep.dport;
    spec.payload_len = payload_len;
    spec.ttl = ttl;
    p = pkt::build_udp(spec);
  }
  // The builders cache the flow key before the ingress iface is known;
  // restamp it so iface-qualified filters see the endpoint's iface.
  p->in_iface = ep.in_iface;
  p->key.in_iface = ep.in_iface;
  p->invalidate_flow_hash();
  return p;
}

std::vector<Arrival> cbr(const CbrSpec& spec) {
  std::vector<Arrival> out;
  out.reserve(spec.count);
  for (std::size_t i = 0; i < spec.count; ++i) {
    Arrival a;
    a.t = spec.start + static_cast<netbase::SimTime>(i) * spec.interval;
    a.iface = spec.ep.in_iface;
    a.p = packet_for(spec.ep, spec.payload_len);
    out.push_back(std::move(a));
  }
  return out;
}

ZipfSampler::ZipfSampler(std::size_t n, double s, std::uint64_t seed)
    : cdf_(std::max<std::size_t>(1, n)), s_(s), rng_(seed) {
  double sum = 0;
  for (std::size_t i = 0; i < cdf_.size(); ++i) {
    sum += s == 0 ? 1.0
                  : 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf_[i] = sum;
  }
  for (auto& c : cdf_) c /= sum;
}

std::size_t ZipfSampler::next() {
  const double u = rng_.uniform01();
  std::size_t i =
      static_cast<std::size_t>(std::lower_bound(cdf_.begin(), cdf_.end(), u) -
                               cdf_.begin());
  return i < cdf_.size() ? i : cdf_.size() - 1;
}

std::vector<Arrival> flow_mix(const MixSpec& spec) {
  Rng rng(spec.seed);
  std::vector<FlowEndpoints> flows;
  flows.reserve(spec.n_flows);
  for (std::size_t i = 0; i < spec.n_flows; ++i)
    flows.push_back(random_flow(rng, spec.ver, spec.iface));

  // Flow popularity: rank i of the Zipf sampler is flow i (sub-seed keeps
  // the pick stream independent of the endpoint stream).
  ZipfSampler pick(spec.n_flows, spec.zipf_s, spec.seed ^ 0x9e3779b97f4a7c15u);

  std::vector<Arrival> out;
  out.reserve(spec.n_packets);
  const netbase::SimTime step =
      spec.duration / static_cast<netbase::SimTime>(
                          std::max<std::size_t>(1, spec.n_packets));
  std::size_t emitted = 0;
  while (emitted < spec.n_packets) {
    // Pick a flow by popularity, then emit a burst (packet train) from it.
    std::size_t fi = pick.next();
    std::size_t burst = 1 + rng.below(std::max<std::size_t>(1, spec.burst_len));
    for (std::size_t b = 0; b < burst && emitted < spec.n_packets; ++b) {
      Arrival a;
      a.t = static_cast<netbase::SimTime>(emitted) * step;
      a.iface = spec.iface;
      a.p = packet_for(flows[fi], spec.payload_len);
      out.push_back(std::move(a));
      ++emitted;
    }
  }
  return out;
}

std::vector<Arrival> merge(std::vector<std::vector<Arrival>> streams) {
  std::vector<Arrival> out;
  std::size_t total = 0;
  for (auto& s : streams) total += s.size();
  out.reserve(total);
  for (auto& s : streams)
    for (auto& a : s) out.push_back(std::move(a));
  std::stable_sort(out.begin(), out.end(),
                   [](const Arrival& a, const Arrival& b) { return a.t < b.t; });
  return out;
}

// ---------------------------------------------------------------------------

std::vector<aiu::Filter> random_filters(const FilterSetSpec& spec) {
  Rng rng(spec.seed);
  const unsigned width = spec.ver == IpVersion::v4 ? 32 : 128;
  std::vector<aiu::Filter> out;
  out.reserve(spec.count);

  auto random_prefix = [&](double p_wild) {
    if (rng.chance(p_wild)) return netbase::IpPrefix{};
    unsigned len;
    if (spec.ver == IpVersion::v4)
      len = static_cast<unsigned>(rng.range(spec.v4_min_len, spec.v4_max_len));
    else
      len = static_cast<unsigned>(rng.range(spec.v6_min_len, spec.v6_max_len));
    (void)width;
    return netbase::IpPrefix(random_addr(rng, spec.ver), len);
  };
  auto random_port = [&]() {
    if (rng.chance(spec.p_port_exact))
      return aiu::PortSpec::exact(static_cast<std::uint16_t>(rng.below(65536)));
    if (rng.chance(spec.p_port_range / (1.0 - spec.p_port_exact))) {
      auto lo = static_cast<std::uint16_t>(rng.below(60000));
      auto hi = static_cast<std::uint16_t>(lo + rng.range(1, 4096));
      return aiu::PortSpec{lo, hi};
    }
    return aiu::PortSpec::any();
  };

  for (std::size_t i = 0; i < spec.count; ++i) {
    aiu::Filter f;
    f.src = random_prefix(spec.p_wild_src);
    f.dst = random_prefix(spec.p_wild_dst);
    if (!rng.chance(spec.p_wild_proto)) {
      f.proto = aiu::ProtoSpec::exact(
          rng.chance(0.5) ? static_cast<std::uint8_t>(pkt::IpProto::udp)
                          : static_cast<std::uint8_t>(pkt::IpProto::tcp));
    }
    f.sport = random_port();
    f.dport = random_port();
    // The incoming interface is usually wildcarded in practice.
    if (rng.chance(0.1))
      f.in_iface = aiu::IfaceSpec::exact(static_cast<pkt::IfIndex>(rng.below(4)));
    out.push_back(f);
  }
  return out;
}

pkt::FlowKey matching_key(const aiu::Filter& f, Rng& rng) {
  pkt::FlowKey k;
  auto fill_addr = [&](const netbase::IpPrefix& p, IpVersion fallback_ver) {
    IpVersion ver = p.len == 0 ? fallback_ver : p.addr.ver;
    IpAddr a = random_addr(rng, ver);
    if (p.len > 0) {
      // Keep the prefix bits, randomize the rest.
      U128 mask = U128::prefix_mask(p.len);
      U128 key = (p.addr.key() & mask) | (a.key() & ~mask);
      a.ver = ver;
      a.v = ver == IpVersion::v4 ? (key >> 96) : key;
    }
    return a;
  };
  IpVersion ver = f.src.len > 0   ? f.src.addr.ver
                  : f.dst.len > 0 ? f.dst.addr.ver
                                  : IpVersion::v4;
  k.src = fill_addr(f.src, ver);
  k.dst = fill_addr(f.dst, ver);
  k.proto = f.proto.wild ? static_cast<std::uint8_t>(rng.below(256))
                         : f.proto.value;
  k.sport = static_cast<std::uint16_t>(rng.range(f.sport.lo, f.sport.hi));
  k.dport = static_cast<std::uint16_t>(rng.range(f.dport.lo, f.dport.hi));
  k.in_iface = f.in_iface.wild ? static_cast<pkt::IfIndex>(rng.below(4))
                               : f.in_iface.value;
  return k;
}

pkt::FlowKey random_key(Rng& rng, IpVersion ver) {
  pkt::FlowKey k;
  k.src = random_addr(rng, ver);
  k.dst = random_addr(rng, ver);
  k.proto = static_cast<std::uint8_t>(rng.below(256));
  k.sport = static_cast<std::uint16_t>(rng.below(65536));
  k.dport = static_cast<std::uint16_t>(rng.below(65536));
  k.in_iface = static_cast<pkt::IfIndex>(rng.below(4));
  return k;
}

std::vector<netbase::IpPrefix> random_prefixes(std::size_t count,
                                               IpVersion ver,
                                               std::uint64_t seed) {
  Rng rng(seed);
  std::vector<netbase::IpPrefix> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    unsigned len = ver == IpVersion::v4
                       ? static_cast<unsigned>(rng.range(8, 32))
                       : static_cast<unsigned>(rng.range(16, 64));
    // Bias toward the real-world sweet spot.
    if (ver == IpVersion::v4 && rng.chance(0.6))
      len = static_cast<unsigned>(rng.range(16, 24));
    out.emplace_back(random_addr(rng, ver), len);
  }
  return out;
}

}  // namespace rp::tgen

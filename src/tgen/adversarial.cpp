#include "tgen/adversarial.hpp"

#include <algorithm>
#include <cstring>

#include "netbase/byteorder.hpp"
#include "pkt/builder.hpp"
#include "pkt/headers.hpp"

namespace rp::tgen {

using netbase::IpAddr;
using netbase::IpVersion;
using netbase::load_be16;
using netbase::store_be16;
using netbase::U128;

namespace {

// Mutations rewrite header bytes under the parser's feet: every cached
// parse result is stale and must be rebuilt by the datapath.
void invalidate(pkt::Packet& p) {
  p.key_valid = false;
  p.fix = pkt::kNoFlow;
  p.invalidate_flow_hash();
}

// Refreshes the v4 header checksum so a mutant is rejected for its length
// lie, not masked by an incidental checksum failure.
void refresh_v4_checksum(pkt::Packet& p) {
  if ((p.data()[0] >> 4) != 4 || p.size() < pkt::Ipv4Header::kMinSize) return;
  const std::size_t hlen = std::size_t{p.data()[0] & 0x0fu} * 4;
  if (hlen >= pkt::Ipv4Header::kMinSize && hlen <= p.size())
    pkt::Ipv4Header::finalize_checksum(p.data(), hlen);
}

}  // namespace

std::string_view to_string(MutationKind k) noexcept {
  switch (k) {
    case MutationKind::clean: return "clean";
    case MutationKind::truncate: return "truncate";
    case MutationKind::v4_total_len_lie: return "v4-total-len-lie";
    case MutationKind::v4_ihl_abuse: return "v4-ihl-abuse";
    case MutationKind::udp_len_lie: return "udp-len-lie";
    case MutationKind::tcp_off_abuse: return "tcp-off-abuse";
    case MutationKind::v6_payload_lie: return "v6-payload-lie";
    case MutationKind::v6_ext_chain: return "v6-ext-chain";
    case MutationKind::frag_series: return "frag-series";
    case MutationKind::random_bytes: return "random-bytes";
    case MutationKind::kCount: break;
  }
  return "?";
}

pkt::PacketPtr AdversarialGen::base_packet() {
  const IpVersion ver = rng_.chance(0.35) ? IpVersion::v6 : IpVersion::v4;
  const std::size_t payload = rng_.below(256);
  if (rng_.chance(0.4)) {
    pkt::TcpSpec s;
    s.src = ver == IpVersion::v4
                ? IpAddr(netbase::Ipv4Addr(static_cast<std::uint32_t>(rng_.next())))
                : IpAddr(netbase::Ipv6Addr(U128{rng_.next(), rng_.next()}));
    s.dst = ver == IpVersion::v4
                ? IpAddr(netbase::Ipv4Addr(static_cast<std::uint32_t>(rng_.next())))
                : IpAddr(netbase::Ipv6Addr(U128{rng_.next(), rng_.next()}));
    s.sport = static_cast<std::uint16_t>(rng_.range(1, 65535));
    s.dport = static_cast<std::uint16_t>(rng_.range(1, 65535));
    s.payload_len = payload;
    return pkt::build_tcp(s);
  }
  pkt::UdpSpec s;
  s.src = ver == IpVersion::v4
              ? IpAddr(netbase::Ipv4Addr(static_cast<std::uint32_t>(rng_.next())))
              : IpAddr(netbase::Ipv6Addr(U128{rng_.next(), rng_.next()}));
  s.dst = ver == IpVersion::v4
              ? IpAddr(netbase::Ipv4Addr(static_cast<std::uint32_t>(rng_.next())))
              : IpAddr(netbase::Ipv6Addr(U128{rng_.next(), rng_.next()}));
  s.sport = static_cast<std::uint16_t>(rng_.range(1, 65535));
  s.dport = static_cast<std::uint16_t>(rng_.range(1, 65535));
  s.payload_len = payload;
  return pkt::build_udp(s);
}

// Queues a v4 fragment series for one UDP datagram, then corrupts it with
// one of the classic reassembly attacks. Fragments are built by hand so the
// series can lie in ways the output fragmenter never would.
void AdversarialGen::queue_frag_series() {
  const std::uint16_t id = next_ip_id_++;
  const std::size_t n_frags = rng_.range(2, 5);
  const std::size_t frag_payload = 8 * rng_.range(1, 8);  // 8..64B each

  auto make_frag = [&](std::size_t off_units, std::size_t len, bool mf,
                       std::uint8_t fill) {
    auto p = pkt::make_packet(pkt::Ipv4Header::kMinSize + len);
    pkt::Ipv4Header h;
    h.total_len = static_cast<std::uint16_t>(pkt::Ipv4Header::kMinSize + len);
    h.id = id;
    h.flags = mf ? 1 : 0;
    h.frag_off = static_cast<std::uint16_t>(off_units);
    h.proto = static_cast<std::uint8_t>(pkt::IpProto::udp);
    h.src = netbase::Ipv4Addr(0x0a000001u + (id % 7));
    h.dst = netbase::Ipv4Addr(0x14000001u + (id % 5));
    h.write(p->data());
    pkt::Ipv4Header::finalize_checksum(p->data(), pkt::Ipv4Header::kMinSize);
    std::memset(p->data() + pkt::Ipv4Header::kMinSize, fill, len);
    return p;
  };

  // Start from a well-formed series...
  for (std::size_t i = 0; i < n_frags; ++i) {
    const bool last = i + 1 == n_frags;
    pending_.push_back(make_frag(i * frag_payload / 8, frag_payload, !last,
                                 static_cast<std::uint8_t>(i)));
  }
  // ...then corrupt it.
  switch (rng_.below(5)) {
    case 0:  // clean series (control; must account like any other packets)
      break;
    case 1: {  // teardrop: overlapping rewrite with different content
      pending_.push_back(make_frag(rng_.below(n_frags) * frag_payload / 8,
                                   frag_payload, true, 0xAA));
      break;
    }
    case 2: {  // oversize: reassembled end past 64KiB
      pending_.push_back(
          make_frag(0x1fff, frag_payload, rng_.chance(0.5), 0xBB));
      break;
    }
    case 3:  // incomplete: drop the last fragment (reassembly state leak)
      pending_.pop_back();
      break;
    case 4: {  // conflicting "last" fragment: different datagram end
      pending_.push_back(
          make_frag((n_frags + 2) * frag_payload / 8, frag_payload, false,
                    0xCC));
      break;
    }
  }
}

pkt::PacketPtr AdversarialGen::mutate(pkt::PacketPtr p, MutationKind k) {
  std::uint8_t* b = p->data();
  switch (k) {
    case MutationKind::truncate:
      p->trim(rng_.range(1, p->size()));
      break;
    case MutationKind::v4_total_len_lie: {
      switch (rng_.below(3)) {
        case 0:  // shorter than the IPv4 header itself
          store_be16(&b[2], static_cast<std::uint16_t>(rng_.below(20)));
          break;
        case 1:  // claims more bytes than captured
          store_be16(&b[2], static_cast<std::uint16_t>(
                                std::min<std::uint64_t>(
                                    65535, p->size() + rng_.range(1, 2000))));
          break;
        case 2:  // shorter than capture: legal, capture padding gets trimmed
          store_be16(&b[2], static_cast<std::uint16_t>(
                                rng_.range(28, p->size())));
          break;
      }
      refresh_v4_checksum(*p);
      break;
    }
    case MutationKind::v4_ihl_abuse:
      b[0] = static_cast<std::uint8_t>(0x40 | rng_.below(16));
      refresh_v4_checksum(*p);
      break;
    case MutationKind::udp_len_lie: {
      const std::size_t l4 = p->l4_offset;
      if (l4 + 6 <= p->size()) {
        store_be16(&b[l4 + 4],
                   rng_.chance(0.5)
                       ? static_cast<std::uint16_t>(rng_.below(8))
                       : static_cast<std::uint16_t>(
                             p->size() - l4 + rng_.range(1, 400)));
      }
      break;
    }
    case MutationKind::tcp_off_abuse: {
      const std::size_t l4 = p->l4_offset;
      if (l4 + 13 <= p->size())
        b[l4 + 12] = static_cast<std::uint8_t>(rng_.below(16) << 4);
      break;
    }
    case MutationKind::v6_payload_lie:
      store_be16(&b[4], static_cast<std::uint16_t>(
                            std::min<std::uint64_t>(
                                65535, p->size() + rng_.range(1, 3000))));
      break;
    case MutationKind::random_bytes: {
      const std::size_t n = rng_.range(1, 120);
      p = pkt::make_packet(n);
      for (std::size_t i = 0; i < n; ++i)
        p->data()[i] = static_cast<std::uint8_t>(rng_.next());
      break;
    }
    case MutationKind::clean:
    case MutationKind::v6_ext_chain:
    case MutationKind::frag_series:
    case MutationKind::kCount:
      break;
  }
  invalidate(*p);
  return p;
}

pkt::PacketPtr AdversarialGen::next() {
  ++index_;
  if (!pending_.empty()) {
    auto p = std::move(pending_.front());
    pending_.pop_front();
    invalidate(*p);
    return p;
  }

  const auto k = static_cast<MutationKind>(
      rng_.below(static_cast<std::uint64_t>(MutationKind::kCount)));
  kind_ = k;
  switch (k) {
    case MutationKind::clean:
      return base_packet();
    case MutationKind::frag_series: {
      queue_frag_series();
      auto p = std::move(pending_.front());
      pending_.pop_front();
      invalidate(*p);
      return p;
    }
    case MutationKind::v6_ext_chain: {
      // Hand-built v6 header + ext chain; variants cover bogus TLV lengths,
      // over-deep chains, fragment headers (first and non-first), and AH.
      const std::size_t variant = rng_.below(4);
      const std::size_t n_ext = variant == 1 ? rng_.range(9, 12)  // too deep
                                             : rng_.range(1, 3);
      const std::size_t udp_payload = rng_.below(64);
      const std::size_t udp_len = pkt::UdpHeader::kSize + udp_payload;
      auto p = pkt::make_packet(pkt::Ipv6Header::kSize + n_ext * 8 + udp_len);
      pkt::Ipv6Header ip;
      ip.payload_len = static_cast<std::uint16_t>(n_ext * 8 + udp_len);
      ip.next_header = static_cast<std::uint8_t>(
          variant == 2 ? pkt::IpProto::ipv6_frag : pkt::IpProto::hopopt);
      ip.src = netbase::Ipv6Addr(U128{rng_.next(), rng_.next()});
      ip.dst = netbase::Ipv6Addr(U128{rng_.next(), rng_.next()});
      ip.write(p->data());
      std::uint8_t* ext = p->data() + pkt::Ipv6Header::kSize;
      for (std::size_t i = 0; i < n_ext; ++i) {
        const bool last = i + 1 == n_ext;
        ext[0] = static_cast<std::uint8_t>(
            last ? pkt::IpProto::udp
                 : (variant == 2 && i == 0 ? pkt::IpProto::ipv6_frag
                                           : pkt::IpProto::hopopt));
        // Variant 0 lies about the TLV length; fragment headers use byte 1
        // as reserved, everything else as (len/8)-1.
        ext[1] = variant == 0 ? static_cast<std::uint8_t>(rng_.below(256))
                              : 0;
        if (variant == 2 && i == 0) {
          // Fragment header: random offset (0 = first fragment, which has
          // an L4 header; >0 = non-first, which must be treated portless).
          store_be16(&ext[2], static_cast<std::uint16_t>(
                                  (rng_.below(32) << 3) |
                                  (rng_.chance(0.5) ? 1 : 0)));
          store_be16(&ext[4], 0);
          store_be16(&ext[6], next_ip_id_++);
        } else if (variant == 3 && i == 0) {
          // AH: length in 4-byte units; 1 means the 8-byte slot we built.
          ext[0] = static_cast<std::uint8_t>(
              last ? pkt::IpProto::udp : pkt::IpProto::hopopt);
          // Overwrite this slot's type by patching the *previous* next
          // header: simplest is to rewrite the IP next_header to AH.
          p->data()[6] = static_cast<std::uint8_t>(pkt::IpProto::ah);
          ext[1] = rng_.chance(0.7) ? 0 : static_cast<std::uint8_t>(
                                              rng_.below(256));
        } else {
          std::memset(ext + 2, 0, 6);
        }
        ext += 8;
      }
      pkt::UdpHeader udp;
      udp.sport = static_cast<std::uint16_t>(rng_.range(1, 65535));
      udp.dport = static_cast<std::uint16_t>(rng_.range(1, 65535));
      udp.length = static_cast<std::uint16_t>(udp_len);
      udp.write(ext);
      std::memset(ext + pkt::UdpHeader::kSize, 0x5A, udp_payload);
      invalidate(*p);
      return p;
    }
    default:
      break;
  }

  auto p = base_packet();
  const bool v4 = (p->data()[0] >> 4) == 4;
  // Re-roll kind-specific mismatches (e.g. a v4-only mutation on a v6
  // packet) into truncation so every call still mutates something.
  MutationKind eff = k;
  if (!v4 && (k == MutationKind::v4_total_len_lie ||
              k == MutationKind::v4_ihl_abuse))
    eff = MutationKind::truncate;
  if (v4 && k == MutationKind::v6_payload_lie) eff = MutationKind::truncate;
  if (k == MutationKind::udp_len_lie &&
      p->key.proto != static_cast<std::uint8_t>(pkt::IpProto::udp))
    eff = MutationKind::tcp_off_abuse;
  if (k == MutationKind::tcp_off_abuse &&
      p->key.proto != static_cast<std::uint8_t>(pkt::IpProto::tcp))
    eff = MutationKind::truncate;
  kind_ = eff;
  return mutate(std::move(p), eff);
}

}  // namespace rp::tgen

// Stateful TCP/HTTP traffic generation for the L7 inspection subsystem.
//
// `tcp_stream` produces a sequence-correct bidirectional TCP conversation:
// optional three-way handshake, the client and server byte streams cut into
// MSS-sized segments with correct sequence numbers, optional FIN. On top of
// it, `tcp_stream_evasion` applies segment-level adversarial rewrites —
// bounded reordering, tiny-segment splitting, exact-duplicate retransmits,
// and overlap rewrites (a garbage copy of a segment's sequence range) — all
// constrained so that a first-wins reassembler provably reconstructs the
// original stream:
//
//   * for every byte offset, the first-arriving segment covering it carries
//     the true content (garbage copies are only ever emitted *after* their
//     true counterpart; exact duplicates are true content and go anywhere);
//   * each direction's first arrival (SYN, or the first data segment when
//     no handshake) is never displaced, so sequence-base sync is stable.
//
// The spanning rewrite (span_rewrite_prob) is the misaligned-overlap
// evasion: a data segment [a,b) becomes its true suffix [m,b) arriving
// first, followed by a full-range copy of [a,b) whose prefix [a,m) is true
// and whose suffix [m,b) is garbage. The suffix's first copy is the true
// one, so first-wins still reconstructs the stream — but the garbage copy
// reaches the reassembler as an in-order segment *spanning* an
// already-buffered piece with different boundaries, the shape a rewrite
// aligned to true segment edges never produces.
//
// Under these rules, the reassembled stream must equal the original payload
// byte-for-byte — the invariant the l7 differential fuzz tests check.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "tgen/workload.hpp"

namespace rp::tgen {

struct TcpStreamSpec {
  FlowEndpoints ep{};  // client -> server (proto is forced to TCP)
  std::vector<std::uint8_t> payload;          // client -> server stream
  std::vector<std::uint8_t> reverse_payload;  // server -> client stream
  std::size_t mss{512};
  bool handshake{true};
  bool fin{false};
  std::uint32_t client_isn{0x10000};
  std::uint32_t server_isn{0x20000};
  pkt::IfIndex reverse_iface{1};  // server->client packets arrive here
  netbase::SimTime start{0};
  netbase::SimTime interval{1000};  // ns between consecutive arrivals
};

// In-order, loss-free rendition of the conversation.
std::vector<Arrival> tcp_stream(const TcpStreamSpec& spec);

struct EvasionSpec {
  std::size_t reorder_window{0};     // max displacement; 0 = no reordering
  double tiny_split_prob{0.0};       // split a data segment into 1-8B slivers
  double dup_prob{0.0};              // re-emit an exact duplicate late
  double overlap_rewrite_prob{0.0};  // garbage copy right after the true one
  double span_rewrite_prob{0.0};     // misaligned spanning rewrite (below)
  std::uint64_t seed{1};
};

// The same conversation mutated per `ev` (see the invariants above).
std::vector<Arrival> tcp_stream_evasion(const TcpStreamSpec& spec,
                                        const EvasionSpec& ev);

// A minimal well-formed HTTP/1.1 request (request line + Host + User-Agent
// + `extra_headers`, each "Name: value\r\n", then the blank line).
std::vector<std::uint8_t> http_request(const std::string& method,
                                       const std::string& target,
                                       const std::string& host,
                                       const std::string& extra_headers = "");

// A pseudo-random lowercase filler stream of `n` bytes with `patterns`
// copied in at the given offsets (offset + pattern must fit). Lowercase
// filler lets tests plant patterns containing other character classes
// without accidental extra matches.
std::vector<std::uint8_t> plant(
    std::size_t n, std::uint64_t seed,
    const std::vector<std::pair<std::size_t, std::string>>& patterns);

}  // namespace rp::tgen

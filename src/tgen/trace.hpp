// Trace capture and replay: a plain-text, line-oriented trace format so
// workloads can be captured from one run (or written by hand / external
// tools) and replayed identically into a router — the stand-in for the
// trace-driven evaluation the paper notes it could not do for filters
// ("appropriate data sets of real-world filter patterns are not
// available", §7.2), applied to traffic instead.
//
// Format (one packet per line, '#' comments):
//   <time_ns> <iface> udp|tcp <src> <dst> <sport> <dport> <payload_len> [ttl]
#pragma once

#include <string>
#include <vector>

#include "tgen/workload.hpp"

namespace rp::tgen {

// Serializes arrivals to the text format. Packets must be UDP or TCP
// (others are skipped; the return value counts written lines).
std::size_t write_trace(const std::vector<Arrival>& arrivals,
                        std::string& out);

// Parses a trace; returns std::nullopt-like empty vector + false on the
// first malformed line (line number reported via `error_line`).
bool read_trace(std::string_view text, std::vector<Arrival>& out,
                std::size_t* error_line = nullptr);

}  // namespace rp::tgen

#include "netbase/checksum.hpp"

namespace rp::netbase {

std::uint16_t checksum_partial(const std::uint8_t* data, std::size_t len,
                               std::uint32_t initial) noexcept {
  std::uint32_t sum = initial;
  while (len >= 2) {
    sum += (std::uint32_t{data[0]} << 8) | data[1];
    data += 2;
    len -= 2;
  }
  if (len) sum += std::uint32_t{data[0]} << 8;
  while (sum >> 16) sum = (sum & 0xffff) + (sum >> 16);
  return static_cast<std::uint16_t>(sum);
}

std::uint16_t checksum(const std::uint8_t* data, std::size_t len) noexcept {
  return static_cast<std::uint16_t>(~checksum_partial(data, len));
}

std::uint16_t checksum_update16(std::uint16_t old_cksum, std::uint16_t old_word,
                                std::uint16_t new_word) noexcept {
  // HC' = ~(~HC + ~m + m')   (RFC 1624)
  std::uint32_t sum = static_cast<std::uint16_t>(~old_cksum);
  sum += static_cast<std::uint16_t>(~old_word);
  sum += new_word;
  while (sum >> 16) sum = (sum & 0xffff) + (sum >> 16);
  return static_cast<std::uint16_t>(~sum);
}

}  // namespace rp::netbase

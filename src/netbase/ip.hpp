// IPv4/IPv6 address and prefix value types.
//
// Addresses are stored in host-order integer form (IPv4 in a uint32_t, IPv6
// in a U128, both most-significant-byte-first) so that prefix masking and
// longest-prefix-match comparisons are plain integer operations.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "netbase/u128.hpp"

namespace rp::netbase {

struct Ipv4Addr {
  std::uint32_t v{0};

  constexpr Ipv4Addr() = default;
  constexpr explicit Ipv4Addr(std::uint32_t raw) : v(raw) {}
  constexpr Ipv4Addr(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                     std::uint8_t d)
      : v((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
          (std::uint32_t{c} << 8) | d) {}

  friend constexpr auto operator<=>(const Ipv4Addr&, const Ipv4Addr&) = default;

  std::string to_string() const;
  static std::optional<Ipv4Addr> parse(std::string_view s);
};

struct Ipv6Addr {
  U128 v{};

  constexpr Ipv6Addr() = default;
  constexpr explicit Ipv6Addr(U128 raw) : v(raw) {}

  static Ipv6Addr from_bytes(const std::uint8_t* b);
  void to_bytes(std::uint8_t* out) const;

  friend constexpr auto operator<=>(const Ipv6Addr&, const Ipv6Addr&) = default;

  std::string to_string() const;
  static std::optional<Ipv6Addr> parse(std::string_view s);
};

enum class IpVersion : std::uint8_t { v4 = 4, v6 = 6 };

// An address of either family. The 6-tuple filter machinery and LPM engines
// treat both families through this one type.
struct IpAddr {
  IpVersion ver{IpVersion::v4};
  U128 v{};  // IPv4 addresses live in the low 32 bits.

  constexpr IpAddr() = default;
  constexpr IpAddr(Ipv4Addr a) : ver(IpVersion::v4), v(std::uint64_t{a.v}) {}
  constexpr IpAddr(Ipv6Addr a) : ver(IpVersion::v6), v(a.v) {}

  constexpr unsigned width() const { return ver == IpVersion::v4 ? 32 : 128; }

  // The address as a left-aligned (MSB-first) 128-bit key: IPv4 addresses
  // are shifted into the top 32 bits so prefix masks apply uniformly.
  constexpr U128 key() const {
    return ver == IpVersion::v4 ? (v << 96) : v;
  }

  constexpr Ipv4Addr v4() const { return Ipv4Addr(static_cast<std::uint32_t>(v.lo)); }
  constexpr Ipv6Addr v6() const { return Ipv6Addr(v); }

  friend constexpr bool operator==(const IpAddr&, const IpAddr&) = default;

  std::string to_string() const;
  static std::optional<IpAddr> parse(std::string_view s);
};

// Address prefix (addr/len). `len` counts from the most significant bit;
// bits past `len` are guaranteed zero (normalized on construction).
struct IpPrefix {
  IpAddr addr{};
  std::uint8_t len{0};

  constexpr IpPrefix() = default;
  IpPrefix(IpAddr a, unsigned l);

  bool contains(const IpAddr& a) const;
  // True if *this contains every address `other` contains.
  bool covers(const IpPrefix& other) const;

  friend bool operator==(const IpPrefix&, const IpPrefix&) = default;

  std::string to_string() const;
  // Parses "a.b.c.d/len", "a.b.c.d" (len=32), v6 equivalents, or "*" (len 0,
  // family given by `family_hint`).
  static std::optional<IpPrefix> parse(std::string_view s,
                                       IpVersion family_hint = IpVersion::v4);
};

}  // namespace rp::netbase

// Memory-access accounting.
//
// Table 2 of the paper characterizes the DAG classifier by the worst-case
// number of memory accesses per filter lookup. We reproduce that metric
// directly: the classifier and the BMP engines call `count()` at every
// pointer dereference / hash-bucket probe that would be a dependent memory
// access in the kernel implementation. Counting is a plain increment on a
// thread-local counter; benches snapshot it around lookups. Thread-local
// (not a shared global) so the sharded datapath's workers count their own
// accesses without a contended atomic on the per-packet path.
#pragma once

#include <cstdint>

namespace rp::netbase {

class MemAccess {
 public:
  static void count(std::uint64_t n = 1) noexcept { total_ += n; }
  static std::uint64_t total() noexcept { return total_; }
  static void reset() noexcept { total_ = 0; }

 private:
  static inline thread_local std::uint64_t total_{0};
};

// Snapshot helper: accesses since construction.
class MemAccessScope {
 public:
  MemAccessScope() : start_(MemAccess::total()) {}
  std::uint64_t elapsed() const noexcept { return MemAccess::total() - start_; }

 private:
  std::uint64_t start_;
};

}  // namespace rp::netbase

// Simulated clock. The router kernel, link models, and schedulers run on
// virtual time so experiments are deterministic and independent of host
// machine load; benches that measure real CPU cost use std::chrono directly.
#pragma once

#include <cstdint>

namespace rp::netbase {

// Nanoseconds of virtual time.
using SimTime = std::int64_t;

constexpr SimTime kNsPerUs = 1000;
constexpr SimTime kNsPerMs = 1000 * 1000;
constexpr SimTime kNsPerSec = 1000 * 1000 * 1000;

class SimClock {
 public:
  SimTime now() const noexcept { return now_; }

  void advance(SimTime delta) noexcept { now_ += delta; }
  void advance_to(SimTime t) noexcept {
    if (t > now_) now_ = t;
  }
  void reset() noexcept { now_ = 0; }

 private:
  SimTime now_{0};
};

}  // namespace rp::netbase

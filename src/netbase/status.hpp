// Lightweight status codes for data-path and control-path results.
// The data path never throws; functions return Status (or values + Status).
#pragma once

#include <string_view>

namespace rp::netbase {

enum class Status : int {
  ok = 0,
  error,            // generic failure
  not_found,        // lookup miss / unknown name
  already_exists,   // duplicate registration
  invalid_argument, // malformed input / bad config
  out_of_range,     // index/length violation
  resource_limit,   // table full, queue full
  unsupported,      // feature not provided by this plugin
};

constexpr bool ok(Status s) noexcept { return s == Status::ok; }

constexpr std::string_view to_string(Status s) noexcept {
  switch (s) {
    case Status::ok: return "ok";
    case Status::error: return "error";
    case Status::not_found: return "not_found";
    case Status::already_exists: return "already_exists";
    case Status::invalid_argument: return "invalid_argument";
    case Status::out_of_range: return "out_of_range";
    case Status::resource_limit: return "resource_limit";
    case Status::unsupported: return "unsupported";
  }
  return "unknown";
}

}  // namespace rp::netbase

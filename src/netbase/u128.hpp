// Minimal 128-bit unsigned integer used to hold IPv6 addresses as a single
// comparable/shiftable key, so the LPM engines can be written once and
// instantiated for both 32-bit (IPv4) and 128-bit (IPv6) keys.
#pragma once

#include <compare>
#include <cstdint>

namespace rp::netbase {

struct U128 {
  std::uint64_t hi{0};
  std::uint64_t lo{0};

  constexpr U128() = default;
  constexpr U128(std::uint64_t h, std::uint64_t l) : hi(h), lo(l) {}
  constexpr explicit U128(std::uint64_t l) : hi(0), lo(l) {}

  friend constexpr bool operator==(const U128&, const U128&) = default;
  friend constexpr auto operator<=>(const U128& a, const U128& b) {
    if (auto c = a.hi <=> b.hi; c != 0) return c;
    return a.lo <=> b.lo;
  }

  friend constexpr U128 operator&(const U128& a, const U128& b) {
    return {a.hi & b.hi, a.lo & b.lo};
  }
  friend constexpr U128 operator|(const U128& a, const U128& b) {
    return {a.hi | b.hi, a.lo | b.lo};
  }
  friend constexpr U128 operator^(const U128& a, const U128& b) {
    return {a.hi ^ b.hi, a.lo ^ b.lo};
  }
  friend constexpr U128 operator~(const U128& a) { return {~a.hi, ~a.lo}; }

  friend constexpr U128 operator<<(const U128& a, unsigned n) {
    if (n == 0) return a;
    if (n >= 128) return {};
    if (n >= 64) return {a.lo << (n - 64), 0};
    return {(a.hi << n) | (a.lo >> (64 - n)), a.lo << n};
  }
  friend constexpr U128 operator>>(const U128& a, unsigned n) {
    if (n == 0) return a;
    if (n >= 128) return {};
    if (n >= 64) return {0, a.hi >> (n - 64)};
    return {a.hi >> n, (a.lo >> n) | (a.hi << (64 - n))};
  }

  // Mask keeping the top `len` bits (len in [0,128]).
  static constexpr U128 prefix_mask(unsigned len) {
    if (len == 0) return {};
    if (len >= 128) return {~0ULL, ~0ULL};
    if (len <= 64) return {~0ULL << (64 - len), 0};
    return {~0ULL, ~0ULL << (128 - len)};
  }

  // Most-significant bit first: bit(0) is the top bit.
  constexpr bool bit(unsigned i) const {
    return i < 64 ? ((hi >> (63 - i)) & 1) != 0 : ((lo >> (127 - i)) & 1) != 0;
  }
};

}  // namespace rp::netbase

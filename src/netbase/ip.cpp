#include "netbase/ip.hpp"

#include <charconv>
#include <cstdio>
#include <vector>

namespace rp::netbase {

namespace {

bool parse_u16(std::string_view s, unsigned base, std::uint32_t max,
               std::uint32_t& out) {
  if (s.empty()) return false;
  std::uint32_t v = 0;
  auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), v, base);
  if (ec != std::errc{} || p != s.data() + s.size() || v > max) return false;
  out = v;
  return true;
}

}  // namespace

std::string Ipv4Addr::to_string() const {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%u.%u.%u.%u", (v >> 24) & 0xff,
                (v >> 16) & 0xff, (v >> 8) & 0xff, v & 0xff);
  return buf;
}

std::optional<Ipv4Addr> Ipv4Addr::parse(std::string_view s) {
  std::uint32_t parts[4];
  std::size_t pos = 0;
  for (int i = 0; i < 4; ++i) {
    std::size_t dot = (i < 3) ? s.find('.', pos) : s.size();
    if (dot == std::string_view::npos) return std::nullopt;
    if (!parse_u16(s.substr(pos, dot - pos), 10, 255, parts[i]))
      return std::nullopt;
    pos = dot + 1;
  }
  return Ipv4Addr(static_cast<std::uint8_t>(parts[0]),
                  static_cast<std::uint8_t>(parts[1]),
                  static_cast<std::uint8_t>(parts[2]),
                  static_cast<std::uint8_t>(parts[3]));
}

Ipv6Addr Ipv6Addr::from_bytes(const std::uint8_t* b) {
  U128 v;
  for (int i = 0; i < 8; ++i) v.hi = (v.hi << 8) | b[i];
  for (int i = 8; i < 16; ++i) v.lo = (v.lo << 8) | b[i];
  return Ipv6Addr(v);
}

void Ipv6Addr::to_bytes(std::uint8_t* out) const {
  for (int i = 0; i < 8; ++i)
    out[i] = static_cast<std::uint8_t>(v.hi >> (56 - 8 * i));
  for (int i = 0; i < 8; ++i)
    out[8 + i] = static_cast<std::uint8_t>(v.lo >> (56 - 8 * i));
}

std::string Ipv6Addr::to_string() const {
  // Canonical-ish form: longest run of zero groups compressed to "::".
  std::uint16_t g[8];
  for (int i = 0; i < 4; ++i)
    g[i] = static_cast<std::uint16_t>(v.hi >> (48 - 16 * i));
  for (int i = 0; i < 4; ++i)
    g[4 + i] = static_cast<std::uint16_t>(v.lo >> (48 - 16 * i));

  int best_start = -1, best_len = 0;
  for (int i = 0; i < 8;) {
    if (g[i] != 0) {
      ++i;
      continue;
    }
    int j = i;
    while (j < 8 && g[j] == 0) ++j;
    if (j - i > best_len) {
      best_len = j - i;
      best_start = i;
    }
    i = j;
  }
  if (best_len < 2) best_start = -1;

  std::string out;
  char buf[8];
  for (int i = 0; i < 8;) {
    if (i == best_start) {
      out += "::";  // the preceding group suppressed its trailing ':'
      i += best_len;
      continue;
    }
    std::snprintf(buf, sizeof buf, "%x", g[i]);
    out += buf;
    if (++i < 8 && i != best_start) out += ':';
  }
  if (out.empty()) out = "::";
  return out;
}

std::optional<Ipv6Addr> Ipv6Addr::parse(std::string_view s) {
  // Split on "::" first.
  std::vector<std::uint16_t> head, tail;
  auto parse_groups = [](std::string_view part,
                         std::vector<std::uint16_t>& out) {
    if (part.empty()) return true;
    std::size_t pos = 0;
    while (true) {
      std::size_t colon = part.find(':', pos);
      std::string_view grp = part.substr(
          pos, colon == std::string_view::npos ? colon : colon - pos);
      std::uint32_t v = 0;
      if (!parse_u16(grp, 16, 0xffff, v)) return false;
      out.push_back(static_cast<std::uint16_t>(v));
      if (colon == std::string_view::npos) break;
      pos = colon + 1;
    }
    return true;
  };

  std::size_t dc = s.find("::");
  bool ok;
  if (dc == std::string_view::npos) {
    ok = parse_groups(s, head) && head.size() == 8;
  } else {
    ok = parse_groups(s.substr(0, dc), head) &&
         parse_groups(s.substr(dc + 2), tail) &&
         head.size() + tail.size() < 8;
  }
  if (!ok) return std::nullopt;

  std::uint16_t g[8] = {};
  for (std::size_t i = 0; i < head.size(); ++i) g[i] = head[i];
  for (std::size_t i = 0; i < tail.size(); ++i)
    g[8 - tail.size() + i] = tail[i];

  U128 v;
  for (int i = 0; i < 4; ++i) v.hi = (v.hi << 16) | g[i];
  for (int i = 0; i < 4; ++i) v.lo = (v.lo << 16) | g[4 + i];
  return Ipv6Addr(v);
}

std::string IpAddr::to_string() const {
  return ver == IpVersion::v4 ? v4().to_string() : v6().to_string();
}

std::optional<IpAddr> IpAddr::parse(std::string_view s) {
  if (s.find(':') != std::string_view::npos) {
    if (auto a = Ipv6Addr::parse(s)) return IpAddr(*a);
    return std::nullopt;
  }
  if (auto a = Ipv4Addr::parse(s)) return IpAddr(*a);
  return std::nullopt;
}

IpPrefix::IpPrefix(IpAddr a, unsigned l) : addr(a), len(static_cast<std::uint8_t>(l)) {
  if (l > a.width()) len = static_cast<std::uint8_t>(a.width());
  // Normalize: zero the bits past the prefix length.
  U128 key = a.key() & U128::prefix_mask(len);
  addr.v = a.ver == IpVersion::v4 ? (key >> 96) : key;
}

bool IpPrefix::contains(const IpAddr& a) const {
  if (len == 0) return true;  // a full wildcard matches either family
  if (a.ver != addr.ver) return false;
  return (a.key() & U128::prefix_mask(len)) == addr.key();
}

bool IpPrefix::covers(const IpPrefix& other) const {
  if (len == 0) return true;  // a full wildcard covers either family
  if (other.addr.ver != addr.ver || other.len < len) return false;
  return (other.addr.key() & U128::prefix_mask(len)) == addr.key();
}

std::string IpPrefix::to_string() const {
  return addr.to_string() + "/" + std::to_string(len);
}

std::optional<IpPrefix> IpPrefix::parse(std::string_view s,
                                        IpVersion family_hint) {
  if (s == "*") {
    IpAddr a;
    a.ver = family_hint;
    return IpPrefix(a, 0);
  }
  std::size_t slash = s.find('/');
  auto addr = IpAddr::parse(slash == std::string_view::npos
                                ? s
                                : s.substr(0, slash));
  if (!addr) return std::nullopt;
  unsigned len = addr->width();
  if (slash != std::string_view::npos) {
    std::uint32_t l = 0;
    if (!parse_u16(s.substr(slash + 1), 10, addr->width(), l))
      return std::nullopt;
    len = l;
  }
  return IpPrefix(*addr, len);
}

}  // namespace rp::netbase

// RFC 1071 Internet checksum, plus RFC 1624 incremental update — the IP core
// uses the incremental form when it decrements TTL so the per-packet cost
// stays constant, exactly as a BSD kernel does.
#pragma once

#include <cstddef>
#include <cstdint>

namespace rp::netbase {

// One's-complement sum of `len` bytes folded to 16 bits (not inverted).
std::uint16_t checksum_partial(const std::uint8_t* data, std::size_t len,
                               std::uint32_t initial = 0) noexcept;

// Final Internet checksum (inverted fold) over a buffer.
std::uint16_t checksum(const std::uint8_t* data, std::size_t len) noexcept;

// RFC 1624 eqn. 3: recompute `old_cksum` after a 16-bit field changed from
// `old_word` to `new_word`.
std::uint16_t checksum_update16(std::uint16_t old_cksum, std::uint16_t old_word,
                                std::uint16_t new_word) noexcept;

}  // namespace rp::netbase

// Big-endian (network order) load/store helpers.
//
// All wire formats in this library are defined in network byte order; these
// helpers are the single place where host byte order is dealt with.
#pragma once

#include <cstdint>
#include <cstring>

namespace rp::netbase {

constexpr std::uint16_t load_be16(const std::uint8_t* p) noexcept {
  return static_cast<std::uint16_t>((std::uint16_t{p[0]} << 8) | p[1]);
}

constexpr std::uint32_t load_be32(const std::uint8_t* p) noexcept {
  return (std::uint32_t{p[0]} << 24) | (std::uint32_t{p[1]} << 16) |
         (std::uint32_t{p[2]} << 8) | std::uint32_t{p[3]};
}

constexpr std::uint64_t load_be64(const std::uint8_t* p) noexcept {
  return (std::uint64_t{load_be32(p)} << 32) | load_be32(p + 4);
}

constexpr void store_be16(std::uint8_t* p, std::uint16_t v) noexcept {
  p[0] = static_cast<std::uint8_t>(v >> 8);
  p[1] = static_cast<std::uint8_t>(v);
}

constexpr void store_be32(std::uint8_t* p, std::uint32_t v) noexcept {
  p[0] = static_cast<std::uint8_t>(v >> 24);
  p[1] = static_cast<std::uint8_t>(v >> 16);
  p[2] = static_cast<std::uint8_t>(v >> 8);
  p[3] = static_cast<std::uint8_t>(v);
}

constexpr void store_be64(std::uint8_t* p, std::uint64_t v) noexcept {
  store_be32(p, static_cast<std::uint32_t>(v >> 32));
  store_be32(p + 4, static_cast<std::uint32_t>(v));
}

}  // namespace rp::netbase

#include "resilience/resilience.hpp"

#include <algorithm>
#include <utility>

#include "aiu/aiu.hpp"
#include "telemetry/telemetry.hpp"

namespace rp::resilience {

Supervisor::Supervisor() : Supervisor(Options{}) {}

Supervisor::Supervisor(Options opt)
    : opt_(opt), cfg_(opt.breaker), injector_(opt.inject_seed) {
  // Default fallback matrix (ISSUE 3): security fails closed, the scheduler
  // degrades to the port FIFO, option/statistics/policy gates fail open.
  for (auto& f : fallback_) f = Fallback::fail_open;
  fallback_[aiu::gate_index(plugin::PluginType::ipsec)] = Fallback::fail_closed;
  fallback_[kSchedGate] = Fallback::best_effort;
  register_metrics();
}

Supervisor::~Supervisor() {
  telemetry::metrics().remove_owner(this);
  // Instances outlive this supervisor only at kernel teardown (RouterKernel
  // destroys the supervisor before the PCU); null the cached slots so a
  // later supervisor never trusts a stale pointer.
  for (auto& [inst, g] : guards_)
    const_cast<plugin::PluginInstance*>(inst)->set_resil_slot(nullptr);
}

void Supervisor::register_metrics() {
  auto& m = telemetry::metrics();
  m.add("resilience.faults_total", &faults_total_, this);
  m.add("resilience.faults_injected", &injected_total_, this);
  m.add("resilience.breaker_opens", &opens_total_, this);
  m.add("resilience.bypassed", &bypassed_total_, this);
  m.add("resilience.fallback_drops", &fallback_drops_, this);
  m.add("resilience.flows_rebound", &flows_rebound_, this);
  for (std::size_t k = 0; k < kFaultKinds; ++k)
    m.add("resilience.faults." +
              std::string(to_string(static_cast<FaultKind>(k))),
          &kind_total_[k], this);
}

InstanceGuard& Supervisor::make_guard(plugin::PluginInstance& inst) {
  auto g = std::make_unique<InstanceGuard>();
  g->inst = &inst;
  InstanceGuard& ref = *g;
  guards_[&inst] = std::move(g);
  inst.set_resil_slot(&ref);
  return ref;
}

Decision Supervisor::dispatch_slow(plugin::PluginType gate, std::size_t gi,
                                   InstanceGuard& g, aiu::GateBinding& b,
                                   pkt::Packet& p) {
  if (g.breaker.should_bypass(cfg_)) {
    ++g.bypassed;
    ++bypassed_total_;
    if (fallback_[gi] == Fallback::fail_closed) {
      ++fallback_drops_;
      return {plugin::Verdict::drop, true};
    }
    return {plugin::Verdict::cont, false};
  }
  FaultKind inj{};
  const bool do_inject = armed_ && injector_.pick(gate, inj);
  const std::uint64_t budget = cycle_budget_[gi];
  const std::uint64_t t0 = budget != 0 ? telemetry::cycles() : 0;
  plugin::Verdict v;
  try {
    if (do_inject && inj == FaultKind::exception) throw InjectedFault{};
    v = b.instance->handle_packet(p, &b.soft);
    if (do_inject && inj == FaultKind::bad_verdict)
      v = static_cast<plugin::Verdict>(0x6b);
  } catch (const std::exception& e) {
    return fault_decision(g, gate, gi, FaultKind::exception, do_inject, 0,
                          e.what());
  } catch (...) {
    return fault_decision(g, gate, gi, FaultKind::exception, do_inject, 0,
                          "non-standard exception");
  }
  if (static_cast<std::uint8_t>(v) > kMaxVerdict)
    return fault_decision(g, gate, gi, FaultKind::bad_verdict, do_inject, 0,
                          {});
  if (budget != 0 || (do_inject && inj == FaultKind::budget_overrun)) {
    std::uint64_t elapsed = budget != 0 ? telemetry::cycles() - t0 : 0;
    bool overrun = budget != 0 && elapsed > budget;
    if (do_inject && inj == FaultKind::budget_overrun) {
      overrun = true;
      if (elapsed <= budget) elapsed = budget + kInjectedOverrunCycles;
    }
    if (overrun) {
      // The plugin already rendered a valid verdict; it stands. The overrun
      // only feeds the breaker (repeat offenders get bypassed).
      note_fault(g, gate, gi, FaultKind::budget_overrun, do_inject, elapsed,
                 {});
      return {v, false};
    }
  }
  if (g.breaker.on_success(cfg_)) refresh_quiet();
  return {v, false};
}

SchedAdmit Supervisor::sched_admit_slow(InstanceGuard& g) {
  if (!g.breaker.should_bypass(cfg_)) return SchedAdmit::admit;
  ++g.bypassed;
  ++bypassed_total_;
  if (fallback_[kSchedGate] == Fallback::fail_closed) {
    ++fallback_drops_;
    return SchedAdmit::drop;
  }
  return SchedAdmit::bypass;  // best_effort / fail_open: port FIFO
}

Decision Supervisor::fault_decision(InstanceGuard& g, plugin::PluginType gate,
                                    std::size_t gi, FaultKind kind,
                                    bool injected, std::uint64_t cycles,
                                    std::string detail) {
  note_fault(g, gate, gi, kind, injected, cycles, std::move(detail));
  if (fallback_[gi] == Fallback::fail_closed) {
    ++fallback_drops_;
    return {plugin::Verdict::drop, true};
  }
  return {plugin::Verdict::cont, false};
}

void Supervisor::note_fault(InstanceGuard& g, plugin::PluginType gate,
                            std::size_t gi, FaultKind kind, bool injected,
                            std::uint64_t cycles, std::string detail) {
  ++g.faults;
  ++faults_total_;
  ++kind_total_[static_cast<std::size_t>(kind)];
  ++gate_faults_[gi][static_cast<std::size_t>(kind)];
  if (injected) ++injected_total_;

  FaultEvent ev;
  ev.plugin = g.inst->owner() ? g.inst->owner()->name() : std::string("?");
  ev.instance = g.inst->id();
  ev.gate = gate;
  ev.kind = kind;
  ev.injected = injected;
  ev.cycles = cycles;
  ev.when = clock_ ? clock_->now() : 0;
  ev.detail = std::move(detail);
  events_.push_back(std::move(ev));
  if (events_.size() > opt_.fault_ring) events_.pop_front();

  if (g.breaker.on_fault(cfg_, *invocations_)) breaker_opened(g);
}

void Supervisor::breaker_opened(InstanceGuard& g) {
  ++opens_total_;
  refresh_quiet();
  if (std::find(pending_rebinds_.begin(), pending_rebinds_.end(), g.inst) ==
      pending_rebinds_.end())
    pending_rebinds_.push_back(g.inst);
}

void Supervisor::apply_rebinds() {
  if (aiu_) {
    for (plugin::PluginInstance* inst : pending_rebinds_)
      flows_rebound_ += aiu_->rebind_instance(inst);
  }
  pending_rebinds_.clear();
}

void Supervisor::forget(const plugin::PluginInstance* inst) {
  auto it = guards_.find(inst);
  if (it == guards_.end()) return;
  const_cast<plugin::PluginInstance*>(inst)->set_resil_slot(nullptr);
  guards_.erase(it);
  refresh_quiet();
  pending_rebinds_.erase(
      std::remove(pending_rebinds_.begin(), pending_rebinds_.end(), inst),
      pending_rebinds_.end());
}

void Supervisor::trip(plugin::PluginInstance& inst) {
  InstanceGuard& g = guard_of(inst);
  g.breaker.trip();
  breaker_opened(g);  // counts the open and queues the flow rebind
}

void Supervisor::reset(plugin::PluginInstance& inst) {
  InstanceGuard& g = guard_of(inst);
  g.breaker.reset();
  refresh_quiet();
}

void Supervisor::reset_all() {
  for (auto& [inst, g] : guards_) {
    g->breaker.reset();
    g->faults = 0;
    g->bypassed = 0;
  }
  pending_rebinds_.clear();
  events_.clear();
  faults_total_ = 0;
  injected_total_ = 0;
  opens_total_ = 0;
  bypassed_total_ = 0;
  fallback_drops_ = 0;
  flows_rebound_ = 0;
  for (auto& k : kind_total_) k = 0;
  for (auto& per_gate : gate_faults_)
    for (auto& k : per_gate) k = 0;
  refresh_quiet();
}

}  // namespace rp::resilience

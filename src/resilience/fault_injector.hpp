// Fault-injection harness for chaos testing the datapath (compiled in
// always, zero-cost when disarmed: the supervisor checks one bool before
// consulting any rule).
//
// A rule targets one (plugin type, fault kind) pair and fires either
// deterministically (every Nth dispatch at that gate) or probabilistically
// (Bernoulli per dispatch, seeded xoshiro so runs reproduce). Injected
// faults flow through exactly the machinery real faults do — guard, fault
// ring, breaker, fallback — which is the point: the chaos soak proves the
// containment path under load, not a simulation of it.
#pragma once

#include <cstdint>
#include <string_view>

#include "netbase/rng.hpp"
#include "plugin/code.hpp"

namespace rp::resilience {

// Mirrors telemetry::kGateSlots / aiu::kNumGates without depending on either.
constexpr std::size_t kGateSlots = 10;

enum class FaultKind : std::uint8_t {
  exception = 0,   // handle_packet threw
  bad_verdict,     // returned a value outside the Verdict enum
  budget_overrun,  // exceeded the gate's cycle budget
  kCount,
};

constexpr std::string_view to_string(FaultKind k) noexcept {
  switch (k) {
    case FaultKind::exception: return "exception";
    case FaultKind::bad_verdict: return "bad_verdict";
    case FaultKind::budget_overrun: return "budget_overrun";
    case FaultKind::kCount: break;
  }
  return "?";
}

constexpr std::size_t kFaultKinds = static_cast<std::size_t>(FaultKind::kCount);

class FaultInjector {
 public:
  struct Rule {
    std::uint32_t every{0};    // deterministic: fire every Nth dispatch
    double probability{0.0};   // probabilistic: Bernoulli per dispatch
    std::uint32_t counter{0};  // deterministic-mode progress
    bool active() const noexcept { return every > 0 || probability > 0.0; }
  };

  explicit FaultInjector(std::uint64_t seed = 0x5eedf00dULL) : rng_(seed) {}

  void reseed(std::uint64_t seed) { rng_.reseed(seed); }

  // Installs (or, with an inactive rule, removes) the rule for one
  // (gate, kind) pair. `gate` indexes by plugin type.
  void set(plugin::PluginType gate, FaultKind kind, Rule r) {
    Rule& slot = rules_[gate_slot(gate)][static_cast<std::size_t>(kind)];
    if (slot.active()) --active_;
    slot = r;
    slot.counter = 0;
    if (slot.active()) ++active_;
  }

  void clear() {
    for (auto& per_gate : rules_)
      for (auto& r : per_gate) r = Rule{};
    active_ = 0;
  }

  bool armed() const noexcept { return active_ > 0; }

  const Rule& rule(plugin::PluginType gate, FaultKind kind) const noexcept {
    return rules_[gate_slot(gate)][static_cast<std::size_t>(kind)];
  }

  // Consulted once per guarded dispatch at `gate` (only when armed). At most
  // one fault fires per dispatch; kinds are tried in enum order.
  bool pick(plugin::PluginType gate, FaultKind& out) noexcept {
    auto& per_gate = rules_[gate_slot(gate)];
    for (std::size_t k = 0; k < kFaultKinds; ++k) {
      Rule& r = per_gate[k];
      if (r.every > 0) {
        if (++r.counter >= r.every) {
          r.counter = 0;
          out = static_cast<FaultKind>(k);
          return true;
        }
      } else if (r.probability > 0.0 && rng_.chance(r.probability)) {
        out = static_cast<FaultKind>(k);
        return true;
      }
    }
    return false;
  }

 private:
  static std::size_t gate_slot(plugin::PluginType gate) noexcept {
    const auto g = static_cast<std::size_t>(gate);
    return g < kGateSlots ? g : 0;
  }

  Rule rules_[kGateSlots][kFaultKinds]{};
  std::uint32_t active_{0};
  netbase::Rng rng_;
};

}  // namespace rp::resilience

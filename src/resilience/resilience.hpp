// Resilience supervisor — the containment layer between the IP core's gates
// and third-party plugin code.
//
// The paper trusts dynamically loaded plugins with every packet; this layer
// makes that trust survivable. Every gate dispatch is routed through
// Supervisor::dispatch, which
//   1. catches anything handle_packet throws,
//   2. rejects verdicts outside the Verdict enum,
//   3. enforces an optional per-gate cycle budget (telemetry/cycles.hpp), and
//   4. feeds every violation into the instance's circuit breaker
//      (breaker.hpp) as a FaultEvent instead of letting it crash the router.
// When a breaker opens, the instance is bypassed and the packet follows the
// gate's fallback policy (fail open / fail closed / best effort); flows
// bound to the tripped instance are queued for AIU rebinding, applied at
// burst boundaries so no in-flight GateBinding pointer dangles.
//
// Cost model: while the supervisor is *quiet* — nothing armed, no cycle
// budget set, every breaker closed, i.e. the steady state of a healthy
// router — a dispatch is one branch on the `quiet_` flag ahead of the
// virtual call and a verdict range check after it. No per-instance state
// is touched (guards materialize lazily on the first fault or non-quiet
// dispatch), and no stores happen at all: the breaker's error window is
// anchored to the IP core's gate-dispatch counter (set_invocation_clock)
// instead of a counter of its own, so every piece of bookkeeping lives on
// the fault path. Exception handling uses table-based unwinding (free
// until a throw). bench_t6_resilience measures this via burst-level
// baseline/guarded interleaving; the disarmed guard is indistinguishable
// from no supervisor (<= 1% acceptance budget, ~0% measured).
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "aiu/flow_table.hpp"
#include "netbase/clock.hpp"
#include "pkt/packet.hpp"
#include "plugin/plugin.hpp"
#include "resilience/breaker.hpp"
#include "resilience/fault_injector.hpp"
#include "telemetry/cycles.hpp"

namespace rp::aiu {
class Aiu;
}

namespace rp::resilience {

// What a gate does with a packet when its instance is bypassed or faults.
enum class Fallback : std::uint8_t {
  fail_open,    // pass: packet continues along the IP core path
  fail_closed,  // drop: packet discarded (DropReason::plugin_fault)
  best_effort,  // degrade: meaningful at the scheduling gate (FIFO bypass);
                // elsewhere identical to fail_open
};

constexpr std::string_view to_string(Fallback f) noexcept {
  switch (f) {
    case Fallback::fail_open: return "fail_open";
    case Fallback::fail_closed: return "fail_closed";
    case Fallback::best_effort: return "best_effort";
  }
  return "?";
}

// Outcome of a guarded dispatch. `fault_drop` distinguishes a containment
// drop (counted under DropReason::plugin_fault) from a plugin's own verdict.
struct Decision {
  plugin::Verdict verdict{plugin::Verdict::cont};
  bool fault_drop{false};
};

// Outcome of the scheduling-gate admission check (breaker consult before
// ownership of the packet transfers into the scheduler).
enum class SchedAdmit : std::uint8_t {
  admit,   // breaker closed / probing: call the scheduler
  bypass,  // breaker open, best_effort/fail_open: use the port FIFO
  drop,    // breaker open, fail_closed
};

// Thrown by the injector through the real containment path (never escapes
// the supervisor; catching std::exception handles it like any plugin bug).
struct InjectedFault : std::runtime_error {
  InjectedFault() : std::runtime_error("injected fault") {}
};

// One recorded containment event (ring buffer, newest last).
struct FaultEvent {
  std::string plugin;  // owning plugin's name (copied: instance may die)
  plugin::InstanceId instance{plugin::kNoInstance};
  plugin::PluginType gate{};
  FaultKind kind{};
  bool injected{false};
  std::uint64_t cycles{0};  // elapsed cycles (budget overruns only)
  netbase::SimTime when{0};
  std::string detail;  // exception what(), when there was one
};

// Per-instance supervision state, cached in PluginInstance::resil_slot so
// the hot path costs one pointer dereference.
struct InstanceGuard {
  CircuitBreaker breaker;
  plugin::PluginInstance* inst{nullptr};
  std::uint64_t faults{0};    // lifetime faults at this instance
  std::uint64_t bypassed{0};  // lifetime bypasses (breaker open)
};

class Supervisor {
 public:
  struct Options {
    BreakerConfig breaker{};
    std::size_t fault_ring{128};  // FaultEvents retained
    std::uint64_t inject_seed{0x5eedf00dULL};
  };

  Supervisor();
  explicit Supervisor(Options opt);
  ~Supervisor();

  Supervisor(const Supervisor&) = delete;
  Supervisor& operator=(const Supervisor&) = delete;

  // -- wiring (RouterKernel / IpCore) --
  void set_aiu(aiu::Aiu* a) noexcept { aiu_ = a; }
  void set_clock(const netbase::SimClock* c) noexcept { clock_ = c; }
  // Monotonic dispatch counter the breaker windows are measured against;
  // IpCore points this at its gate_calls counter so the supervisor never
  // has to count invocations itself. Null restores the internal (frozen)
  // clock, under which windows never tumble.
  void set_invocation_clock(const std::uint64_t* c) noexcept {
    invocations_ = c ? c : &no_clock_;
  }
  std::uint64_t invocation_now() const noexcept { return *invocations_; }

  // ---------------------------------------------------------------- hot path

  // Guarded gate dispatch. `b.instance` must be non-null (the gate already
  // skipped unbound packets). Never throws.
  //
  // `quiet_` folds the whole supervisor state into one load: no injection
  // armed, no cycle budget set, every breaker closed. While quiet — the
  // steady state of a healthy router — the dispatch touches no per-instance
  // state at all: one flag, a try/catch frame (free via table-based
  // unwinding), and a verdict range check. The guard is only looked up on
  // the fault path.
  Decision dispatch(plugin::PluginType gate, aiu::GateBinding& b,
                    pkt::Packet& p) {
    if (!quiet_) [[unlikely]] return dispatch_guarded(gate, b, p);
    plugin::Verdict v;
    try {
      v = b.instance->handle_packet(p, &b.soft);
    } catch (const std::exception& e) {
      return fault_decision(guard_of(*b.instance), gate,
                            aiu::gate_index(gate), FaultKind::exception,
                            false, 0, e.what());
    } catch (...) {
      return fault_decision(guard_of(*b.instance), gate,
                            aiu::gate_index(gate), FaultKind::exception,
                            false, 0, "non-standard exception");
    }
    if (static_cast<std::uint8_t>(v) > kMaxVerdict) [[unlikely]]
      return fault_decision(guard_of(*b.instance), gate,
                            aiu::gate_index(gate), FaultKind::bad_verdict,
                            false, 0, {});
    return {v, false};
  }

  // True while nothing is armed, no cycle budget is set, and every breaker
  // is closed — the steady state. The grouped gate dispatcher reads this
  // once per *group*: while quiet it runs the whole run through one
  // contained handle_burst call; when not quiet it falls back to per-packet
  // dispatch() so injection, budgets and half-open probes keep their exact
  // per-packet semantics.
  bool quiet() const noexcept { return quiet_; }

  // Grouped-dispatch containment (quiet path only): runs `fn` — the
  // handle_burst call for one run — in the quiet-path try/catch. On success
  // returns {cont, false}; on a throw records ONE fault at `inst` and
  // returns the gate's fallback as a Decision, which the core applies to
  // every packet of the run (a partially-processed run cannot tell which
  // packets the plugin already judged, so the fallback governs all of them —
  // fail_closed drops the run, fail_open forwards it).
  template <class F>
  Decision dispatch_run(plugin::PluginType gate, plugin::PluginInstance& inst,
                        F&& fn) {
    try {
      fn();
    } catch (const std::exception& e) {
      return fault_decision(guard_of(inst), gate, aiu::gate_index(gate),
                            FaultKind::exception, false, 0, e.what());
    } catch (...) {
      return fault_decision(guard_of(inst), gate, aiu::gate_index(gate),
                            FaultKind::exception, false, 0,
                            "non-standard exception");
    }
    return {plugin::Verdict::cont, false};
  }

  // Per-packet verdict validation for the grouped path: handle_burst wrote a
  // verdict outside the enum for one packet of its run. Records the fault
  // and returns the gate's fallback, exactly as per-packet dispatch() does
  // for a bad verdict.
  Decision bad_verdict(plugin::PluginType gate, plugin::PluginInstance& inst) {
    return fault_decision(guard_of(inst), gate, aiu::gate_index(gate),
                          FaultKind::bad_verdict, false, 0, {});
  }

  // Scheduling-gate admission: consulted before OutputScheduler::enqueue,
  // because ownership of the packet moves into the plugin there (no verdict
  // comes back to validate).
  SchedAdmit sched_admit(plugin::PluginInstance& inst) {
    if (quiet_) [[likely]] return SchedAdmit::admit;
    InstanceGuard& g = guard_of(inst);
    if (!slow_path_ && g.breaker.closed()) return SchedAdmit::admit;
    return sched_admit_slow(g);
  }

  // Guards the enqueue call itself. Returns true when the call completed
  // (possibly with a recorded budget-overrun fault — the packet is already
  // queued, so the outcome stands); returns false when it threw, in which
  // case the caller applies the sched fallback to whatever remains of the
  // packet. An injected throw fires *before* `fn`, leaving the packet
  // intact; a real throw typically consumed it — the caller distinguishes by
  // testing its PacketPtr.
  template <class F>
  bool guard_enqueue(plugin::PluginInstance& inst, F&& fn) {
    if (!quiet_) [[unlikely]] {
      InstanceGuard& g = guard_of(inst);
      if (slow_path_ || !g.breaker.closed())
        return guard_enqueue_slow(g, std::forward<F>(fn));
      // Not quiet, but *this* instance is healthy and nothing is armed:
      // same contained call as the quiet path below.
    }
    try {
      fn();
    } catch (const std::exception& e) {
      note_fault(guard_of(inst), plugin::PluginType::sched, kSchedGate,
                 FaultKind::exception, false, 0, e.what());
      return false;
    } catch (...) {
      note_fault(guard_of(inst), plugin::PluginType::sched, kSchedGate,
                 FaultKind::exception, false, 0, "non-standard exception");
      return false;
    }
    return true;  // success is a no-op while the breaker is closed
  }

  // Called by IpCore when the outermost burst finishes: applies deferred
  // flow rebinds for instances whose breakers opened mid-burst (purging
  // flow-table bindings while bindings are in use would dangle pointers).
  void end_of_burst() {
    if (pending_rebinds_.empty()) [[likely]] return;
    apply_rebinds();
  }

  // -------------------------------------------------------------- control

  // PCU purge hook: the instance is being freed — drop its guard and any
  // pending rebind (the PCU already purged its flows/filters).
  void forget(const plugin::PluginInstance* inst);

  // Manual breaker control (pmgr resilience trip/reset). Unknown instances
  // get a guard on demand; trip queues a flow rebind like a real open.
  void trip(plugin::PluginInstance& inst);
  void reset(plugin::PluginInstance& inst);
  // Closes every breaker and clears fault totals, histograms, and the ring.
  void reset_all();

  // Error budget (shared by all breakers; pmgr resilience budget).
  BreakerConfig& breaker_config() noexcept { return cfg_; }
  const BreakerConfig& breaker_config() const noexcept { return cfg_; }

  // Per-gate cycle budget; 0 disables (the default — the guard then never
  // reads the cycle counter for that gate).
  void set_cycle_budget(plugin::PluginType gate, std::uint64_t cycles) {
    cycle_budget_[aiu::gate_index(gate)] = cycles;
    refresh_slow_path();
  }
  std::uint64_t cycle_budget(plugin::PluginType gate) const noexcept {
    return cycle_budget_[aiu::gate_index(gate)];
  }

  // Per-gate fallback policy.
  void set_fallback(plugin::PluginType gate, Fallback f) {
    fallback_[aiu::gate_index(gate)] = f;
  }
  Fallback fallback(plugin::PluginType gate) const noexcept {
    return fallback_[aiu::gate_index(gate)];
  }

  // Fault injection (owns the armed flag: route all rule changes here).
  void set_injection(plugin::PluginType gate, FaultKind kind,
                     FaultInjector::Rule r) {
    injector_.set(gate, kind, r);
    armed_ = injector_.armed();
    refresh_slow_path();
  }
  void clear_injection() {
    injector_.clear();
    armed_ = false;
    refresh_slow_path();
  }
  void reseed_injection(std::uint64_t seed) { injector_.reseed(seed); }
  const FaultInjector& injector() const noexcept { return injector_; }
  bool armed() const noexcept { return armed_; }

  // -------------------------------------------------------------- observe

  std::uint64_t faults_total() const noexcept { return faults_total_; }
  std::uint64_t faults_injected() const noexcept { return injected_total_; }
  std::uint64_t breaker_opens() const noexcept { return opens_total_; }
  std::uint64_t bypassed_total() const noexcept { return bypassed_total_; }
  std::uint64_t fallback_drops() const noexcept { return fallback_drops_; }
  std::uint64_t flows_rebound() const noexcept { return flows_rebound_; }
  std::uint64_t fault_kind_total(FaultKind k) const noexcept {
    return kind_total_[static_cast<std::size_t>(k)];
  }
  // Fault histogram cell: faults of `kind` observed at `gate`.
  std::uint64_t gate_faults(plugin::PluginType gate, FaultKind k) const {
    return gate_faults_[aiu::gate_index(gate)][static_cast<std::size_t>(k)];
  }

  const std::deque<FaultEvent>& events() const noexcept { return events_; }
  std::size_t guard_count() const noexcept { return guards_.size(); }
  void for_each_guard(
      const std::function<void(const InstanceGuard&)>& fn) const {
    for (const auto& [inst, g] : guards_) fn(*g);
  }
  // Null when the supervisor has never seen the instance.
  const InstanceGuard* guard(const plugin::PluginInstance& inst) const {
    return static_cast<const InstanceGuard*>(inst.resil_slot());
  }

  std::size_t pending_rebinds() const noexcept {
    return pending_rebinds_.size();
  }

 private:
  static constexpr std::uint8_t kMaxVerdict =
      static_cast<std::uint8_t>(plugin::Verdict::drop);
  static constexpr std::size_t kSchedGate =
      aiu::gate_index(plugin::PluginType::sched);
  // Synthetic "elapsed" margin recorded for injected overruns that did not
  // actually blow the budget.
  static constexpr std::uint64_t kInjectedOverrunCycles = 1'000'000;

  InstanceGuard& guard_of(plugin::PluginInstance& inst) {
    if (void* s = inst.resil_slot()) [[likely]]
      return *static_cast<InstanceGuard*>(s);
    return make_guard(inst);
  }

  // Full-featured enqueue guard: injection, cycle budget, half-open probe
  // accounting. Reached when `slow_path_` is set or the breaker is not
  // closed (sched_admit already turned an open breaker into bypass/drop, so
  // "not closed" here means a half-open probe).
  template <class F>
  bool guard_enqueue_slow(InstanceGuard& g, F&& fn) {
    constexpr auto gate = plugin::PluginType::sched;
    FaultKind inj{};
    bool do_inject = armed_ && injector_.pick(gate, inj);
    const std::uint64_t budget = cycle_budget_[kSchedGate];
    const std::uint64_t t0 = budget != 0 ? telemetry::cycles() : 0;
    try {
      // The enqueue has no verdict to corrupt, so a bad_verdict injection
      // degenerates to a throw: the containment path is the same.
      if (do_inject && inj != FaultKind::budget_overrun) [[unlikely]]
        throw InjectedFault{};
      fn();
    } catch (const std::exception& e) {
      note_fault(g, gate, kSchedGate, FaultKind::exception, do_inject, 0,
                 e.what());
      return false;
    } catch (...) {
      note_fault(g, gate, kSchedGate, FaultKind::exception, do_inject, 0,
                 "non-standard exception");
      return false;
    }
    if (budget != 0 || do_inject) {
      std::uint64_t elapsed = budget != 0 ? telemetry::cycles() - t0 : 0;
      bool overrun = budget != 0 && elapsed > budget;
      if (do_inject) {  // only budget_overrun reaches here
        overrun = true;
        if (elapsed <= budget) elapsed = budget + kInjectedOverrunCycles;
      }
      if (overrun) {
        // The packet is queued; the fault only feeds the breaker.
        note_fault(g, gate, kSchedGate, FaultKind::budget_overrun, do_inject,
                   elapsed, {});
        return true;
      }
    }
    if (g.breaker.on_success(cfg_)) refresh_quiet();
    return true;
  }

  // Per-instance dispatch, reached when the supervisor is not quiet: some
  // breaker is non-closed, injection is armed, or a cycle budget is set.
  // `slow_path_` folds the latter two into one load.
  Decision dispatch_guarded(plugin::PluginType gate, aiu::GateBinding& b,
                            pkt::Packet& p) {
    InstanceGuard& g = guard_of(*b.instance);
    if (slow_path_ || !g.breaker.closed())
      return dispatch_slow(gate, aiu::gate_index(gate), g, b, p);
    plugin::Verdict v;
    try {
      v = b.instance->handle_packet(p, &b.soft);
    } catch (const std::exception& e) {
      return fault_decision(g, gate, aiu::gate_index(gate),
                            FaultKind::exception, false, 0, e.what());
    } catch (...) {
      return fault_decision(g, gate, aiu::gate_index(gate),
                            FaultKind::exception, false, 0,
                            "non-standard exception");
    }
    if (static_cast<std::uint8_t>(v) > kMaxVerdict) [[unlikely]]
      return fault_decision(g, gate, aiu::gate_index(gate),
                            FaultKind::bad_verdict, false, 0, {});
    return {v, false};
  }

  // Keeps the precomputed fast-path discriminators in sync with the armed
  // flag and the per-gate budgets.
  void refresh_slow_path() noexcept {
    slow_path_ = armed_;
    for (std::uint64_t b : cycle_budget_)
      if (b != 0) slow_path_ = true;
    refresh_quiet();
  }

  // Recomputes `quiet_` (nothing armed, no budgets, every breaker closed).
  // Called only from cold paths: config changes, breaker transitions,
  // guard teardown.
  void refresh_quiet() noexcept {
    bool all_closed = true;
    for (const auto& [inst, g] : guards_)
      if (!g->breaker.closed()) {
        all_closed = false;
        break;
      }
    quiet_ = !slow_path_ && all_closed;
  }

  InstanceGuard& make_guard(plugin::PluginInstance& inst);
  Decision dispatch_slow(plugin::PluginType gate, std::size_t gi,
                         InstanceGuard& g, aiu::GateBinding& b,
                         pkt::Packet& p);
  SchedAdmit sched_admit_slow(InstanceGuard& g);
  // Records the fault, advances the breaker (possibly tripping it), and
  // returns the gate's fallback as a Decision.
  Decision fault_decision(InstanceGuard& g, plugin::PluginType gate,
                          std::size_t gi, FaultKind kind, bool injected,
                          std::uint64_t cycles, std::string detail);
  void note_fault(InstanceGuard& g, plugin::PluginType gate, std::size_t gi,
                  FaultKind kind, bool injected, std::uint64_t cycles,
                  std::string detail);
  void breaker_opened(InstanceGuard& g);
  void apply_rebinds();
  void register_metrics();

  Options opt_;
  BreakerConfig cfg_;
  FaultInjector injector_;
  bool armed_{false};
  // armed_ || any nonzero cycle budget — read by the per-instance paths.
  bool slow_path_{false};
  // !slow_path_ && every breaker closed — the ONE flag the hot paths read.
  bool quiet_{true};
  std::uint64_t cycle_budget_[aiu::kNumGates]{};
  Fallback fallback_[aiu::kNumGates]{};

  std::unordered_map<const plugin::PluginInstance*,
                     std::unique_ptr<InstanceGuard>>
      guards_;
  std::vector<plugin::PluginInstance*> pending_rebinds_;
  std::deque<FaultEvent> events_;

  aiu::Aiu* aiu_{nullptr};
  const netbase::SimClock* clock_{nullptr};
  std::uint64_t no_clock_{0};  // stand-in until IpCore wires the real one
  const std::uint64_t* invocations_{&no_clock_};

  // Totals (exported via telemetry::MetricRegistry, owner = this). Atomic
  // because the registry's report() may read them from the control thread
  // while a worker shard's supervisor increments on its datapath.
  std::atomic<std::uint64_t> faults_total_{0};
  std::atomic<std::uint64_t> injected_total_{0};
  std::atomic<std::uint64_t> opens_total_{0};
  std::atomic<std::uint64_t> bypassed_total_{0};
  std::atomic<std::uint64_t> fallback_drops_{0};
  std::atomic<std::uint64_t> flows_rebound_{0};
  std::atomic<std::uint64_t> kind_total_[kFaultKinds]{};
  std::uint64_t gate_faults_[aiu::kNumGates][kFaultKinds]{};
};

}  // namespace rp::resilience

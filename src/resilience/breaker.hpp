// Per-instance circuit breaker (the resilience subsystem's state machine).
//
// A plugin instance accumulates faults (exceptions, invalid verdicts, cycle
// budget overruns) against an error budget: `max_faults` faults within a
// tumbling window of `window` invocations trips the breaker
// Closed -> Open. While Open the gate bypasses the instance entirely (the
// packet follows the gate's fallback policy); after `cooldown` bypassed
// invocations the breaker goes HalfOpen and lets probe packets through.
// `probes` consecutive successful probes close it again; any probe fault
// re-opens it immediately.
//
// The breaker does not count its own invocations: the Closed-state success
// path performs no stores at all, so the guard costs nothing measurable when
// plugins behave (bench_t6_resilience). Instead the window is anchored to an
// external monotonic invocation clock — the supervisor passes the IP core's
// gate-dispatch counter, which the datapath already maintains — and all
// bookkeeping happens on the fault path.
#pragma once

#include <cstdint>
#include <string_view>

namespace rp::resilience {

enum class BreakerState : std::uint8_t { closed = 0, open, half_open };

constexpr std::string_view to_string(BreakerState s) noexcept {
  switch (s) {
    case BreakerState::closed: return "closed";
    case BreakerState::open: return "open";
    case BreakerState::half_open: return "half-open";
  }
  return "?";
}

// Runtime-configurable error budget (pmgr resilience budget ...). One config
// is shared by every breaker the supervisor owns. `window` is measured in
// ticks of the supervisor's invocation clock (router-wide gate dispatches).
struct BreakerConfig {
  std::uint32_t window{64};     // invocation-clock ticks per error window
  std::uint32_t max_faults{8};  // faults within one window that trip Open
  std::uint32_t cooldown{256};  // bypassed invocations in Open before HalfOpen
  std::uint32_t probes{4};      // consecutive HalfOpen successes to re-close
};

struct CircuitBreaker {
  BreakerState state{BreakerState::closed};
  std::uint64_t window_start{0};   // clock value when the window opened
  std::uint32_t window_faults{0};  // faults since window_start
  std::uint32_t bypassed{0};       // consecutive bypasses while Open
  std::uint32_t probe_ok{0};       // consecutive HalfOpen successes
  std::uint64_t opens{0};          // lifetime Closed/HalfOpen -> Open count

  bool closed() const noexcept { return state == BreakerState::closed; }

  // Open: count the bypass and, after the cooldown, fall to HalfOpen —
  // admitting the current call as the first probe. Returns true when the
  // caller must bypass the instance.
  bool should_bypass(const BreakerConfig& cfg) noexcept {
    if (state == BreakerState::closed) [[likely]] return false;
    if (state == BreakerState::open) {
      if (++bypassed < cfg.cooldown) return true;
      state = BreakerState::half_open;
      probe_ok = 0;
    }
    return false;  // half-open: admit the probe
  }

  // Success is a no-op while Closed (nothing to record); while HalfOpen it
  // advances the probe count toward recovery. Returns true when this
  // success closed the breaker (the supervisor re-evaluates its quiet flag
  // on that transition).
  bool on_success(const BreakerConfig& cfg) noexcept {
    if (state != BreakerState::half_open) return false;
    if (++probe_ok >= cfg.probes) {
      reset();
      return true;
    }
    return false;
  }

  // `now` is the supervisor's invocation clock. Returns true when this
  // fault tripped the breaker (-> Open).
  bool on_fault(const BreakerConfig& cfg, std::uint64_t now) noexcept {
    if (state == BreakerState::half_open) {
      trip();
      return true;
    }
    if (now - window_start > cfg.window) {  // tumbling window rolled over
      window_start = now;
      window_faults = 0;
    }
    if (++window_faults >= cfg.max_faults) {
      trip();
      return true;
    }
    return false;
  }

  // Force Open (pmgr resilience trip, or a fault over budget).
  void trip() noexcept {
    state = BreakerState::open;
    ++opens;
    bypassed = 0;
    probe_ok = 0;
    window_faults = 0;
  }

  // Force Closed and clear window state (pmgr resilience reset / recovery).
  void reset() noexcept {
    state = BreakerState::closed;
    bypassed = 0;
    probe_ok = 0;
    window_faults = 0;
  }
};

}  // namespace rp::resilience

#include "ctrl/control_plane.hpp"

#include "parallel/sharded_datapath.hpp"

namespace rp::ctrl {

route::RouteBatchResult ControlPlane::apply_route_batch(
    const std::vector<route::RouteOp>& ops) {
  const route::RouteBatchResult res = kernel_.routes().apply_batch(ops);
  if (sharded_) {
    // gather() runs the closure on each worker thread at a burst boundary:
    // the core's forwarding memo assumes routes never mutate mid-chunk, and
    // this is exactly the quiesce hook that guarantees it.
    sharded_->gather([&ops](parallel::ShardContext& ctx) {
      ctx.routes().apply_batch(ops);
    });
  }
  ++stats_.route_batches;
  stats_.routes_added += res.added;
  stats_.routes_updated += res.updated;
  stats_.routes_withdrawn += res.withdrawn;
  stats_.route_failures += res.failed;
  return res;
}

aiu::Aiu::FilterBatchResult ControlPlane::apply_filter_ops_on(
    plugin::PluginControlUnit& pcu, aiu::Aiu& a,
    const std::vector<FilterSpecOp>& ops) {
  std::vector<aiu::Aiu::FilterOp> resolved;
  resolved.reserve(ops.size());
  std::size_t unresolved = 0;
  for (const FilterSpecOp& op : ops) {
    plugin::Plugin* pl = pcu.find(op.plugin);
    if (!pl) {
      ++unresolved;
      continue;
    }
    aiu::Aiu::FilterOp out;
    out.kind = op.kind;
    out.gate = pl->type();
    out.filter = op.filter;
    if (op.kind == aiu::Aiu::FilterOp::Kind::add) {
      out.instance = pl->instance(op.instance);
      if (!out.instance) {
        ++unresolved;
        continue;
      }
    }
    resolved.push_back(std::move(out));
  }
  aiu::Aiu::FilterBatchResult res = a.apply_filter_batch(resolved);
  res.failed += unresolved;
  return res;
}

Status ControlPlane::apply_filter_batch(const std::vector<FilterSpecOp>& ops,
                                        std::string* detail) {
  const aiu::Aiu::FilterBatchResult res =
      apply_filter_ops_on(kernel_.pcu(), kernel_.aiu(), ops);
  if (sharded_) {
    sharded_->gather([&ops](parallel::ShardContext& ctx) {
      apply_filter_ops_on(ctx.pcu(), ctx.aiu(), ops);
    });
  }
  ++stats_.filter_batches;
  stats_.filters_added += res.added;
  stats_.filters_removed += res.removed;
  stats_.filter_failures += res.failed;
  stats_.flows_invalidated += res.flows_invalidated;
  if (detail) {
    *detail = "added=" + std::to_string(res.added) +
              " removed=" + std::to_string(res.removed) +
              " failed=" + std::to_string(res.failed) +
              " flows_invalidated=" + std::to_string(res.flows_invalidated);
  }
  return res.failed == 0 ? Status::ok : Status::invalid_argument;
}

Status ControlPlane::upgrade(const std::string& plugin,
                             plugin::InstanceId from, plugin::InstanceId to,
                             bool retire, std::string* detail) {
  plugin::Plugin* pl = kernel_.pcu().find(plugin);
  if (!pl) return Status::not_found;
  plugin::PluginInstance* old_inst = pl->instance(from);
  plugin::PluginInstance* new_inst = pl->instance(to);
  if (!old_inst || !new_inst || old_inst == new_inst)
    return Status::invalid_argument;

  aiu::Aiu::HandoffResult sum = kernel_.aiu().handoff_instance(old_inst,
                                                               new_inst);
  if (sharded_) {
    std::vector<aiu::Aiu::HandoffResult> per(sharded_->workers());
    sharded_->gather([&](parallel::ShardContext& ctx) {
      plugin::Plugin* spl = ctx.pcu().find(plugin);
      plugin::PluginInstance* f = spl ? spl->instance(from) : nullptr;
      plugin::PluginInstance* t = spl ? spl->instance(to) : nullptr;
      if (f && t && f != t) per[ctx.id()] = ctx.aiu().handoff_instance(f, t);
    });
    for (const auto& h : per) {
      sum.filters_rebound += h.filters_rebound;
      sum.flows_rebound += h.flows_rebound;
      sum.state_migrated += h.state_migrated;
      sum.state_dropped += h.state_dropped;
    }
  }
  if (retire) {
    // Everything is rebound, so the free's purge hooks find nothing; this is
    // the "retire-old" step of create-new -> migrate -> retire-old.
    plugin::PluginMsg msg;
    msg.kind = plugin::PluginMsg::Kind::free_instance;
    msg.plugin_name = plugin;
    msg.instance = from;
    kernel_.pcu().dispatch(msg);
    if (sharded_) {
      sharded_->gather([&](parallel::ShardContext& ctx) {
        ctx.pcu().dispatch(msg);
      });
    }
  }
  ++stats_.upgrades;
  stats_.upgrade_filters_rebound += sum.filters_rebound;
  stats_.upgrade_flows_rebound += sum.flows_rebound;
  stats_.upgrade_state_migrated += sum.state_migrated;
  stats_.upgrade_state_dropped += sum.state_dropped;
  if (detail) {
    *detail = "filters_rebound=" + std::to_string(sum.filters_rebound) +
              " flows_rebound=" + std::to_string(sum.flows_rebound) +
              " state_migrated=" + std::to_string(sum.state_migrated) +
              " state_dropped=" + std::to_string(sum.state_dropped) +
              (retire ? " retired" : "");
  }
  return Status::ok;
}

std::string ControlPlane::status_text() const {
  const Stats& s = stats_;
  std::string out;
  out += "route_batches=" + std::to_string(s.route_batches) +
         " added=" + std::to_string(s.routes_added) +
         " updated=" + std::to_string(s.routes_updated) +
         " withdrawn=" + std::to_string(s.routes_withdrawn) +
         " failed=" + std::to_string(s.route_failures);
  out += "\nfilter_batches=" + std::to_string(s.filter_batches) +
         " added=" + std::to_string(s.filters_added) +
         " removed=" + std::to_string(s.filters_removed) +
         " failed=" + std::to_string(s.filter_failures) +
         " flows_invalidated=" + std::to_string(s.flows_invalidated);
  out += "\nupgrades=" + std::to_string(s.upgrades) +
         " filters_rebound=" + std::to_string(s.upgrade_filters_rebound) +
         " flows_rebound=" + std::to_string(s.upgrade_flows_rebound) +
         " state_migrated=" + std::to_string(s.upgrade_state_migrated) +
         " state_dropped=" + std::to_string(s.upgrade_state_dropped);
  out += "\nroutes=" + std::to_string(kernel_.routes().size()) +
         " hop_slots=" + std::to_string(kernel_.routes().hop_slots()) +
         " free_hops=" + std::to_string(kernel_.routes().free_hop_count());
  return out;
}

}  // namespace rp::ctrl

// Live control plane (docs/control_plane.md): batched route updates,
// batched filter churn, and versioned plugin upgrades against a router that
// keeps forwarding while it is reconfigured.
//
// The ControlPlane drives the kernel's own stack directly (it is the
// control-plane template) and, when a ShardedDatapath is attached, mirrors
// every mutation onto each shard's private stack through gather() — the
// burst-boundary quiesce hook PR 4 introduced — so workers never observe a
// half-applied update and nothing on the packet path takes a lock:
//   * route batches   -> RoutingTable::apply_batch per stack (incremental
//     CPE maintenance / eager bsl rebuild, never on the packet path);
//   * filter batches  -> Aiu::apply_filter_batch per stack (DAG patching +
//     selective flow invalidation instead of rebuild + full flush);
//   * upgrades        -> Aiu::handoff_instance per stack (filter rebind +
//     migrate_flow soft-state transfer; zero packets, zero flow entries
//     lost), optionally retiring the old instance everywhere afterwards.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "aiu/aiu.hpp"
#include "core/router.hpp"
#include "route/routing_table.hpp"

namespace rp::parallel {
class ShardedDatapath;
}

namespace rp::ctrl {

using netbase::Status;

// A filter-batch element at the management layer: instances are named by
// (plugin, id) rather than by pointer, because each shard resolves the pair
// to its *own* private instance object.
struct FilterSpecOp {
  aiu::Aiu::FilterOp::Kind kind{aiu::Aiu::FilterOp::Kind::add};
  std::string plugin;                                // names the gate, too
  plugin::InstanceId instance{plugin::kNoInstance};  // add only
  aiu::Filter filter{};
};

class ControlPlane {
 public:
  struct Stats {
    std::uint64_t route_batches{0};
    std::uint64_t routes_added{0};
    std::uint64_t routes_updated{0};  // in-place next-hop rewrites
    std::uint64_t routes_withdrawn{0};
    std::uint64_t route_failures{0};
    std::uint64_t filter_batches{0};
    std::uint64_t filters_added{0};
    std::uint64_t filters_removed{0};
    std::uint64_t filter_failures{0};
    std::uint64_t flows_invalidated{0};
    std::uint64_t upgrades{0};
    std::uint64_t upgrade_filters_rebound{0};
    std::uint64_t upgrade_flows_rebound{0};
    std::uint64_t upgrade_state_migrated{0};
    std::uint64_t upgrade_state_dropped{0};
  };

  explicit ControlPlane(core::RouterKernel& kernel) : kernel_(kernel) {}

  // Points the mirroring at a running sharded datapath (null detaches). The
  // kernel stays the control-plane template either way.
  void attach_sharded(parallel::ShardedDatapath* dp) noexcept {
    sharded_ = dp;
  }

  // Applies the batch to the kernel table and to every shard (each on its
  // worker thread, at a burst boundary). The returned counts are the
  // kernel's; shard results are identical by construction (replicated
  // configuration) and asserted so in the churn tests.
  route::RouteBatchResult apply_route_batch(const std::vector<route::RouteOp>& ops);

  // Applies filter adds/removes as one batch per stack, with DAG patching
  // and selective flow invalidation (see Aiu::apply_filter_batch). Fails op
  // resolution (unknown plugin / instance) into the result's failed count
  // rather than aborting the batch. `detail` (optional) receives a summary.
  Status apply_filter_batch(const std::vector<FilterSpecOp>& ops,
                            std::string* detail = nullptr);

  // Versioned upgrade: rebinds filters and live flows of (plugin, from) onto
  // (plugin, to) on the kernel and on every shard, offering per-flow soft
  // state through PluginInstance::migrate_flow. With `retire`, the old
  // instance is then freed everywhere (its purge hooks find nothing bound).
  Status upgrade(const std::string& plugin, plugin::InstanceId from,
                 plugin::InstanceId to, bool retire,
                 std::string* detail = nullptr);

  const Stats& stats() const noexcept { return stats_; }
  std::string status_text() const;

 private:
  static aiu::Aiu::FilterBatchResult apply_filter_ops_on(
      plugin::PluginControlUnit& pcu, aiu::Aiu& a,
      const std::vector<FilterSpecOp>& ops);

  core::RouterKernel& kernel_;
  parallel::ShardedDatapath* sharded_{nullptr};
  Stats stats_;
};

}  // namespace rp::ctrl

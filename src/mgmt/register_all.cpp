#include "mgmt/register_all.hpp"

#include "ipopt/ipopt_plugins.hpp"
#include "ipsec/ipsec_plugins.hpp"
#include "l7/l7_plugins.hpp"
#include "mgmt/firewall_plugin.hpp"
#include "route/route_plugin.hpp"
#include "sched/register.hpp"
#include "stats/stats_plugin.hpp"
#include "stats/tcpmon_plugin.hpp"

namespace rp::mgmt {

void register_builtin_modules() {
  sched::register_sched_plugins();
  ipsec::register_ipsec_plugins();
  ipopt::register_ipopt_plugins();
  stats::register_stats_plugins();
  stats::register_tcpmon_plugin();
  route::register_route_plugins();
  l7::register_l7_plugins();
  register_firewall_plugins();
}

}  // namespace rp::mgmt

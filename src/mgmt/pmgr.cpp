#include "mgmt/pmgr.hpp"

#include <charconv>
#include <vector>

namespace rp::mgmt {

namespace {

std::vector<std::string> split_ws(std::string_view s) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && (s[i] == ' ' || s[i] == '\t')) ++i;
    std::size_t j = i;
    while (j < s.size() && s[j] != ' ' && s[j] != '\t') ++j;
    if (j > i) out.emplace_back(s.substr(i, j - i));
    i = j;
  }
  return out;
}

bool parse_u32(std::string_view s, std::uint32_t& out) {
  auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
  return ec == std::errc{} && p == s.data() + s.size();
}

bool parse_iface(std::string_view s, pkt::IfIndex& out) {
  if (s.starts_with("if")) s.remove_prefix(2);
  std::uint32_t v;
  if (!parse_u32(s, v) || v >= pkt::kAnyIface) return false;
  out = static_cast<pkt::IfIndex>(v);
  return true;
}

plugin::Config parse_kv(const std::vector<std::string>& tok, std::size_t from) {
  plugin::Config cfg;
  for (std::size_t i = from; i < tok.size(); ++i) {
    std::size_t eq = tok[i].find('=');
    if (eq == std::string::npos)
      cfg.set(tok[i], "");
    else
      cfg.set(tok[i].substr(0, eq), tok[i].substr(eq + 1));
  }
  return cfg;
}

std::string join_from(const std::vector<std::string>& tok, std::size_t from) {
  std::string out;
  for (std::size_t i = from; i < tok.size(); ++i) {
    if (!out.empty()) out += ' ';
    out += tok[i];
  }
  return out;
}

}  // namespace

PluginManager::Result PluginManager::exec(std::string_view command) {
  auto tok = split_ws(command);
  if (tok.empty() || tok[0][0] == '#') return {Status::ok, ""};
  const std::string& cmd = tok[0];

  auto usage = [&](const char* u) {
    return Result{Status::invalid_argument, std::string("usage: ") + u};
  };

  if (cmd == "modload") {
    if (tok.size() != 2) return usage("modload <module>");
    Status s = lib_.modload(tok[1]);
    return {s, s == Status::ok ? "loaded " + tok[1] : "modload failed"};
  }
  if (cmd == "modunload") {
    if (tok.size() != 2) return usage("modunload <module>");
    Status s = lib_.modunload(tok[1]);
    return {s, s == Status::ok ? "unloaded " + tok[1] : "modunload failed"};
  }
  if (cmd == "lsmod") {
    std::string text = "available:";
    for (const auto& m : plugin::PluginLoader::available_modules())
      text += " " + m;
    text += "\nloaded:";
    for (const auto& m : lib_.kernel().loader().loaded_modules())
      text += " " + m;
    return {Status::ok, text};
  }
  if (cmd == "create") {
    if (tok.size() < 2) return usage("create <plugin> [k=v ...]");
    plugin::InstanceId id;
    Status s = lib_.create_instance(tok[1], parse_kv(tok, 2), id);
    if (s != Status::ok) return {s, "create failed"};
    return {s, "instance " + std::to_string(id)};
  }
  if (cmd == "free") {
    if (tok.size() != 3) return usage("free <plugin> <id>");
    std::uint32_t id;
    if (!parse_u32(tok[2], id)) return usage("free <plugin> <id>");
    return {lib_.free_instance(tok[1], id), ""};
  }
  if (cmd == "bind" || cmd == "unbind") {
    if (tok.size() < 4) return usage("(un)bind <plugin> <id> <filter>");
    std::uint32_t id;
    if (!parse_u32(tok[2], id)) return usage("(un)bind <plugin> <id> <filter>");
    std::string spec = join_from(tok, 3);
    Status s = cmd == "bind" ? lib_.bind(tok[1], id, spec)
                             : lib_.unbind(tok[1], id, spec);
    return {s, s == Status::ok ? "" : "filter operation failed"};
  }
  if (cmd == "msg") {
    if (tok.size() < 4) return usage("msg <plugin> <id|-> <name> [k=v ...]");
    std::uint32_t id = plugin::kNoInstance;
    if (tok[2] != "-" && !parse_u32(tok[2], id))
      return usage("msg <plugin> <id|-> <name> [k=v ...]");
    auto reply = lib_.message(tok[1], id, tok[3], parse_kv(tok, 4));
    return {reply.status, reply.text};
  }
  if (cmd == "attach") {
    if (tok.size() != 4) return usage("attach <plugin> <id> <iface>");
    std::uint32_t id;
    pkt::IfIndex iface;
    if (!parse_u32(tok[2], id) || !parse_iface(tok[3], iface))
      return usage("attach <plugin> <id> <iface>");
    return {lib_.attach_scheduler(tok[1], id, iface), ""};
  }
  if (cmd == "aiu") {
    // Classifier introspection: flow-cache statistics and per-gate filter
    // counts — what an operator checks before/after reconfiguration.
    auto& a = lib_.kernel().aiu();
    const auto& ft = a.flow_table();
    const auto& fs = ft.stats();
    std::string text =
        "flows: active=" + std::to_string(ft.active()) +
        " capacity=" + std::to_string(ft.capacity()) +
        " hits=" + std::to_string(fs.hits) +
        " misses=" + std::to_string(fs.misses) +
        " recycled=" + std::to_string(fs.recycled) +
        " flushes=" + std::to_string(a.stats().cache_flushes) + "\nfilters:";
    for (std::uint16_t t = 1; t < aiu::kNumGates; ++t) {
      auto type = static_cast<plugin::PluginType>(t);
      auto* table = a.filter_table(type);
      if (table && table->size())
        text += " " + std::string(plugin::to_string(type)) + "=" +
                std::to_string(table->size());
    }
    return {Status::ok, text};
  }
  if (cmd == "route") {
    if (tok.size() == 4 && tok[1] == "add") {
      pkt::IfIndex iface;
      if (!parse_iface(tok[3], iface)) return usage("route add <prefix> <iface>");
      return {lib_.add_route(tok[2], iface), ""};
    }
    return usage("route add <prefix> <iface>");
  }
  return {Status::invalid_argument, "unknown command: " + cmd};
}

PluginManager::Result PluginManager::run_script(std::string_view script,
                                                bool keep_going) {
  Result last;
  std::size_t pos = 0;
  while (pos <= script.size()) {
    std::size_t nl = script.find('\n', pos);
    std::string_view line = script.substr(
        pos, nl == std::string_view::npos ? nl : nl - pos);
    if (!line.empty()) {
      Result r = exec(line);
      if (!r.ok()) {
        if (!keep_going) {
          r.text = "at \"" + std::string(line) + "\": " + r.text;
          return r;
        }
      }
      last = std::move(r);
    }
    if (nl == std::string_view::npos) break;
    pos = nl + 1;
  }
  return last;
}

}  // namespace rp::mgmt
